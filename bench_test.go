// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per experiment, at scales that keep `go test -bench=.`
// tractable. Each benchmark logs the experiment's rendered result on the
// first iteration, so a bench run doubles as a results report; cmd/sabaexp
// prints the same studies at paper-sized parameters.
package saba_test

import (
	"testing"
	"time"

	"saba/internal/experiments"
)

// logOnce renders an experiment result into the bench log on the first
// iteration only.
func logOnce(b *testing.B, i int, v interface{ String() string }) {
	b.Helper()
	if i == 0 {
		b.Log("\n" + v.String())
	}
}

// BenchmarkFig1aSensitivity regenerates Fig. 1a: standalone slowdown of
// the ten Table-1 workloads at 75% and 25% bandwidth.
func BenchmarkFig1aSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1a()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig1bSkewed regenerates Fig. 1b: LR+PR co-run under max-min
// versus the 75/25 skewed allocation.
func BenchmarkFig1bSkewed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1b()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig2Utilization regenerates Fig. 2: CPU/network utilization
// timelines of LR and PR at 75% and 25% bandwidth.
func BenchmarkFig2Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"LR", "PR"} {
			for _, bw := range []float64{0.75, 0.25} {
				r, err := experiments.Fig2(name, bw)
				if err != nil {
					b.Fatal(err)
				}
				logOnce(b, i, r)
			}
		}
	}
}

// BenchmarkFig5Models regenerates Fig. 5: SQL and LR sensitivity models
// at polynomial degrees 1-3.
func BenchmarkFig5Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig6aDegree regenerates Fig. 6a: R² versus polynomial degree.
func BenchmarkFig6aDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6a()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig6bDataset regenerates Fig. 6b: R² versus runtime dataset
// size (0.1x / 1x / 10x).
func BenchmarkFig6bDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6b()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig6cNodes regenerates Fig. 6c: R² versus runtime node count
// (0.5x .. 4x).
func BenchmarkFig6cNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6c()
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig8aTestbed regenerates Fig. 8a: Saba versus the baseline
// over randomized 16-job setups on the 32-server testbed (paper: 500
// setups, avg 1.88x; the bench runs 5 per iteration).
func BenchmarkFig8aTestbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(5, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig8bCDF regenerates Fig. 8b: the CDF of per-setup average
// speedups (distribution summary over the same study).
func BenchmarkFig8bCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(8, experiments.DefaultSeed+1)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.CDF) == 0 {
			b.Fatal("empty CDF")
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig9aDataset regenerates Fig. 9a: Saba speedup versus runtime
// dataset size.
func BenchmarkFig9aDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Fig9Dataset, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig9bNodes regenerates Fig. 9b: Saba speedup versus runtime
// node count.
func BenchmarkFig9bNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Fig9Nodes, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig9cDegree regenerates Fig. 9c: Saba speedup versus the
// polynomial degree used by the profiler.
func BenchmarkFig9cDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(experiments.Fig9Degree, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig10AtScale regenerates Fig. 10: Saba, ideal max-min, Homa
// and Sincronia against the simulated baseline on the spine-leaf fabric.
func BenchmarkFig10AtScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.ScaleConfig{})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig10AtScaleSharded is the same workload on the sharded
// engine (one shard per pod). Compare allocs/op against the serial
// benchmark above: the sharded hot path is allocation-free, so the two
// should stay within a fraction of a percent of each other — the
// residual is fixed per-engine setup (barrier, worker mailboxes,
// per-shard gauges and heaps) that amortizes with run length.
func BenchmarkFig10AtScaleSharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(experiments.ScaleConfig{EngineShards: -1})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig11aControllers regenerates Fig. 11a: centralized versus
// distributed controller.
func BenchmarkFig11aControllers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11a(experiments.ScaleConfig{})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig11bQueues regenerates Fig. 11b: Saba speedup versus the
// per-port queue count (2, 4, 8, 16, unlimited).
func BenchmarkFig11bQueues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11b(experiments.ScaleConfig{})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFig12Overhead regenerates Fig. 12: the centralized
// controller's weight-calculation time versus the active-application
// count and model degree.
func BenchmarkFig12Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(experiments.Fig12Config{
			AppCounts: []int{50, 250},
			Scenarios: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkAblationComputeStretch measures how the headline Fig. 8
// comparison responds to co-location compute dilation (the paper pins
// each job to one core; the stretch knob models weaker or stronger
// dilation). This is the ablation DESIGN.md calls out for the
// contention-regime design choice.
func BenchmarkAblationComputeStretch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationComputeStretch([]float64{1, 2, 4}, 2, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkAblationBaselineSeverity sweeps the baseline's crowding
// penalty: how much of Saba's testbed win comes from escaping the shared
// queue versus from sensitivity weighting.
func BenchmarkAblationBaselineSeverity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBaselineSeverity(2, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}

// BenchmarkFigOverload runs the arrival-storm admission study at a
// reduced scale: an open-loop 2x-capacity Poisson storm against the
// admission-controlled centralized controller on a virtual clock.
func BenchmarkFigOverload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.FigOverload(experiments.OverloadConfig{
			Loads:    []float64{2},
			Duration: 2 * time.Second,
			Seed:     experiments.DefaultSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, r)
	}
}
