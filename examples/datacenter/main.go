// Datacenter runs the large-scale comparison on a three-tier spine-leaf
// fabric: 20 synthetic workloads spread one-instance-per-server, under
// the baseline, ideal max-min, Saba (centralized and distributed), Homa
// and Sincronia — the §8.4 study at laptop scale.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"math/rand"

	"saba/internal/core"
	"saba/internal/metrics"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/workload"
)

func main() {
	// A scaled-down fabric with the paper's oversubscription profile.
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 3, ToRsPerPod: 3, LeavesPerPod: 7, Spines: 7,
		HostsPerToR: 8, Queues: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric: %d hosts, %d switches, %d directed links\n",
		len(top.Hosts()), len(top.Switches()), len(top.Links()))

	// 20 synthetic workloads (§8.1), profiled offline.
	rng := rand.New(rand.NewSource(42))
	specs := workload.Synthetic(workload.SynthConfig{}, rng)
	table := profiler.NewTable()
	for _, spec := range specs {
		res, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{3})
		if err != nil {
			log.Fatal(err)
		}
		if err := table.PutResult(res, 3); err != nil {
			log.Fatal(err)
		}
	}

	// One workload instance per server, randomly spread.
	hosts := append([]topology.NodeID(nil), top.Hosts()...)
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	jobs := make([]core.JobSpec, len(specs))
	for i, spec := range specs {
		var nodes []topology.NodeID
		for h := i; h < len(hosts); h += len(specs) {
			nodes = append(nodes, hosts[h])
		}
		jobs[i] = core.JobSpec{Spec: spec, Nodes: nodes}
	}

	run := func(p core.Policy) core.Result {
		res, err := core.RunJobs(top, jobs, core.RunConfig{
			Policy: p, Table: table, SimBaseline: true, Seed: 42,
		})
		if err != nil {
			log.Fatalf("%v: %v", p, err)
		}
		return res
	}

	base := run(core.PolicyBaseline)
	fmt.Printf("\n%-18s %10s %12s\n", "policy", "makespan", "avg speedup")
	fmt.Printf("%-18s %9.0fs %12s\n", core.PolicyBaseline, base.Makespan, "1.00x")
	for _, p := range []core.Policy{
		core.PolicyIdealMaxMin, core.PolicySaba,
		core.PolicySabaDistributed, core.PolicyHoma, core.PolicySincronia,
	} {
		res := run(p)
		var sp []float64
		for i := range jobs {
			sp = append(sp, base.Completions[i]/res.Completions[i])
		}
		g, err := metrics.GeoMean(sp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %9.0fs %11.2fx\n", p, res.Makespan, g)
	}
}
