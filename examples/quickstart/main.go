// Quickstart: the Saba pipeline end to end in ~60 lines of API use.
//
//  1. Profile two applications offline to learn their bandwidth
//     sensitivity (one is network-hungry, one barely cares).
//  2. Co-run them on a simulated 8-server testbed under the InfiniBand
//     baseline and under Saba.
//  3. Compare completion times: the sensitive job speeds up, the
//     insensitive one barely notices.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"saba/internal/core"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/workload"
)

func main() {
	// Step 1 — offline profiling (paper §4). The profiler throttles the
	// NICs to 5%..100% of line rate, measures completion time, and fits a
	// degree-3 polynomial sensitivity model per application.
	table := profiler.NewTable()
	for _, name := range []string{"LR", "Sort"} {
		spec, _ := workload.ByName(name)
		res, err := profiler.Profile(name, &profiler.SimRunner{Spec: spec}, nil, []int{3})
		if err != nil {
			log.Fatal(err)
		}
		if err := table.PutResult(res, 3); err != nil {
			log.Fatal(err)
		}
		model, _ := res.Model(3)
		fmt.Printf("profiled %-4s  slowdown@25%%BW=%.2fx  model: %s\n",
			name, sampleAt(res, 0.25), model)
	}

	// Step 2 — co-run both jobs on a shared 8-server cluster.
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8, Queues: 8})
	if err != nil {
		log.Fatal(err)
	}
	lr, _ := workload.ByName("LR")
	sort, _ := workload.ByName("Sort")
	jobs := []core.JobSpec{
		{Spec: lr, Nodes: top.Hosts()},
		{Spec: sort, Nodes: top.Hosts()},
	}

	base, err := core.RunJobs(top, jobs, core.RunConfig{Policy: core.PolicyBaseline})
	if err != nil {
		log.Fatal(err)
	}
	saba, err := core.RunJobs(top, jobs, core.RunConfig{Policy: core.PolicySaba, Table: table})
	if err != nil {
		log.Fatal(err)
	}

	// Step 3 — compare.
	fmt.Println("\nco-run completion times:")
	fmt.Printf("%-6s %10s %10s %9s\n", "job", "baseline", "saba", "speedup")
	for i, j := range jobs {
		fmt.Printf("%-6s %9.1fs %9.1fs %8.2fx\n",
			j.Spec.Name, base.Completions[i], saba.Completions[i],
			base.Completions[i]/saba.Completions[i])
	}
}

func sampleAt(res profiler.Result, bw float64) float64 {
	for _, s := range res.Samples {
		if s.Bandwidth == bw {
			return s.Slowdown
		}
	}
	return 0
}
