// Colocation reproduces the paper's motivating experiment (§2.2,
// Fig. 1b) through the public pieces directly — no experiment harness:
// LR (bandwidth-hungry) and PR (overlap-protected) share an 8-server
// cluster under three regimes:
//
//   - per-flow max-min fairness (the InfiniBand baseline),
//   - a hand-configured 75/25 WFQ skew in LR's favor,
//   - Saba's controller deriving the skew from profiled sensitivity.
//
// Run with: go run ./examples/colocation
package main

import (
	"fmt"
	"log"
	"math"

	"saba/internal/controller"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/sabalib"
	"saba/internal/topology"
	"saba/internal/workload"
)

func main() {
	lr, _ := workload.ByName("LR")
	pr, _ := workload.ByName("PR")

	lrAlone := standalone(lr)
	prAlone := standalone(pr)
	fmt.Printf("standalone: LR %.0fs, PR %.0fs\n\n", lrAlone, prAlone)

	fmt.Printf("%-22s %12s %12s\n", "scheme", "LR slowdown", "PR slowdown")
	for _, scheme := range []string{"max-min (baseline)", "manual 75/25 skew", "saba controller"} {
		lrT, prT := corun(scheme, lr, pr)
		fmt.Printf("%-22s %11.2fx %11.2fx\n", scheme, lrT/lrAlone, prT/prAlone)
	}
}

// standalone runs one job alone at full bandwidth.
func standalone(spec workload.Spec) float64 {
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8})
	if err != nil {
		log.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
	j := &workload.Job{ID: 1, Spec: spec, Nodes: top.Hosts(), App: 1}
	if err := j.Start(e); err != nil {
		log.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		log.Fatal(err)
	}
	return j.CompletionTime()
}

// corun runs LR and PR together under the named scheme and returns their
// completion times.
func corun(scheme string, lr, pr workload.Spec) (lrT, prT float64) {
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8, Queues: 8})
	if err != nil {
		log.Fatal(err)
	}
	net := netsim.NewNetwork(top)

	jLR := &workload.Job{ID: 1, Spec: lr, Nodes: top.Hosts(), App: 1, PL: 0}
	jPR := &workload.Job{ID: 2, Spec: pr, Nodes: top.Hosts(), App: 2, PL: 1}

	var alloc netsim.Allocator
	switch scheme {
	case "max-min (baseline)":
		alloc = netsim.NewFECN(net, 0)

	case "manual 75/25 skew":
		wfq := netsim.NewWFQ(net)
		for _, l := range top.Links() {
			if err := wfq.Configure(l.ID, netsim.PortConfig{
				Weights: []float64{0.75, 0.25},
				PLQueue: map[int]int{0: 0, 1: 1},
			}); err != nil {
				log.Fatal(err)
			}
		}
		alloc = wfq

	case "saba controller":
		// The full control plane: profile, register through the Saba
		// library, let the controller derive weights from Eq. 2 and
		// program the switch.
		table := profiler.NewTable()
		for _, spec := range []workload.Spec{lr, pr} {
			res, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{3})
			if err != nil {
				log.Fatal(err)
			}
			if err := table.PutResult(res, 3); err != nil {
				log.Fatal(err)
			}
		}
		wfq := netsim.NewWFQ(net)
		ctrl, err := controller.NewCentralized(controller.Config{
			Topology: top, Table: table, Enforcer: wfq,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, j := range []*workload.Job{jLR, jPR} {
			lib := sabalib.New(&sabalib.DirectTransport{API: ctrl})
			if err := lib.Register(j.Spec.Name); err != nil {
				log.Fatal(err)
			}
			app, _ := lib.App()
			j.App = app
			hosts := top.Hosts()
			for i := range hosts {
				if _, err := lib.ConnCreate(hosts[i], hosts[(i+1)%len(hosts)]); err != nil {
					log.Fatal(err)
				}
			}
			pl, err := lib.RefreshPL()
			if err != nil {
				log.Fatal(err)
			}
			j.PL = pl
		}
		alloc = wfq
	}

	e := netsim.NewEngine(net, alloc)
	if err := jLR.Start(e); err != nil {
		log.Fatal(err)
	}
	if err := jPR.Start(e); err != nil {
		log.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		log.Fatal(err)
	}
	return jLR.CompletionTime(), jPR.CompletionTime()
}
