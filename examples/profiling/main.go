// Profiling walks the offline-profiler workflow (paper §4): sweep the
// bandwidth throttle, fit sensitivity models at several degrees, inspect
// goodness of fit, and persist the sensitivity table the controller
// loads at startup.
//
// Run with: go run ./examples/profiling
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"saba/internal/profiler"
	"saba/internal/workload"
)

func main() {
	table := profiler.NewTable()

	fmt.Println("offline profiling sweep (5%..100% of 56 Gb/s):")
	for _, spec := range workload.Catalog() {
		res, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{1, 2, 3})
		if err != nil {
			log.Fatal(err)
		}
		// The degree the paper recommends: 3 (cubic captures the kinked
		// curves of overlap-protected workloads like SQL).
		if err := table.PutResult(res, 3); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s slowdown@25%%=%.2fx  R²: k=1 %.2f | k=2 %.2f | k=3 %.2f\n",
			spec.Name, at(res, 0.25), res.R2[1], res.R2[2], res.R2[3])
	}

	dir, err := os.MkdirTemp("", "saba-profiles")
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(dir, "sensitivity.json")
	if err := table.Save(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsensitivity table (%d entries) written to %s\n", table.Len(), path)

	// Round-trip: this is what a controller does at boot.
	loaded, err := profiler.LoadTable(path)
	if err != nil {
		log.Fatal(err)
	}
	entry, _ := loaded.Get("LR")
	fmt.Printf("reloaded LR model (degree %d, R²=%.2f): coefficients %v\n",
		entry.Degree, entry.R2, entry.Coeffs)
}

func at(res profiler.Result, bw float64) float64 {
	for _, s := range res.Samples {
		if s.Bandwidth == bw {
			return s.Slowdown
		}
	}
	return 0
}
