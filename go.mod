module saba

go 1.22
