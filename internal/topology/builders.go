package topology

import (
	"fmt"
)

// Gbps converts gigabits/second to the bits/second capacities links use.
const Gbps = 1e9

// DefaultLinkCapacity matches the paper's 56 Gb/s InfiniBand links.
const DefaultLinkCapacity = 56 * Gbps

// SingleSwitchConfig describes the hardware testbed of §8.1: N servers
// attached to one switch.
type SingleSwitchConfig struct {
	Hosts        int
	LinkCapacity float64 // bits/sec; 0 selects DefaultLinkCapacity
	Queues       int     // per-port queues; 0 selects 8 (the paper uses 8 of 9 VLs)
}

// NewSingleSwitch builds the testbed topology.
func NewSingleSwitch(cfg SingleSwitchConfig) (*Topology, error) {
	if cfg.Hosts < 1 {
		return nil, fmt.Errorf("topology: need at least 1 host, got %d", cfg.Hosts)
	}
	if cfg.LinkCapacity == 0 {
		cfg.LinkCapacity = DefaultLinkCapacity
	}
	if cfg.LinkCapacity <= 0 {
		return nil, fmt.Errorf("topology: invalid link capacity %g", cfg.LinkCapacity)
	}
	if cfg.Queues == 0 {
		cfg.Queues = 8
	}
	if cfg.Queues < 1 {
		return nil, fmt.Errorf("topology: invalid queue count %d", cfg.Queues)
	}

	var b builder
	sw := b.addNode(Switch, "sw0", cfg.Queues)
	b.setPart(sw, 0) // one switch, one partition
	hosts := make([]NodeID, cfg.Hosts)
	for i := range hosts {
		hosts[i] = b.addNode(Host, fmt.Sprintf("h%d", i), cfg.Queues)
		b.setPart(hosts[i], 0)
		b.addPair(hosts[i], sw, cfg.LinkCapacity)
	}

	// Forwarding: hosts send everything up their single uplink (a default
	// route — no per-destination entries); the switch sends to the
	// destination's access link.
	t := &b.t
	t.lft[sw] = make(map[NodeID]LinkID, cfg.Hosts)
	for _, h := range hosts {
		t.defRoute[h] = t.out[h][0]
		// Switch's port toward h is the link whose To == h.
		for _, l := range t.out[sw] {
			if t.links[l].To == h {
				t.lft[sw][h] = l
				break
			}
		}
	}
	return t, nil
}

// SpineLeafConfig describes the three-tier fabric of §8.1's simulation: a
// set of pods, each with ToR and leaf switches, plus a global spine layer
// partitioned into planes (one plane per leaf position, standard
// fabric-style striping). Every ToR connects to every leaf in its pod;
// leaf i of every pod connects to the spines of plane i.
type SpineLeafConfig struct {
	Pods         int
	ToRsPerPod   int
	LeavesPerPod int
	Spines       int
	HostsPerToR  int
	LinkCapacity float64 // 0 selects DefaultLinkCapacity
	Queues       int     // 0 selects 16 (paper: 16 VLs per port in simulation)
}

// PaperScaleConfig returns the exact configuration of the paper's
// simulated cluster: 54 spine, 102 leaf and 108 ToR switches with 18
// servers per ToR — 1,944 servers total (§8.1).
func PaperScaleConfig() SpineLeafConfig {
	return SpineLeafConfig{
		Pods:         6,
		ToRsPerPod:   18, // 6×18 = 108 ToRs
		LeavesPerPod: 17, // 6×17 = 102 leaves
		Spines:       54, // 17 planes of 3-4 spines
		HostsPerToR:  18, // 1,944 hosts
		LinkCapacity: DefaultLinkCapacity,
		Queues:       16,
	}
}

// NewSpineLeaf builds the fabric.
func NewSpineLeaf(cfg SpineLeafConfig) (*Topology, error) {
	if cfg.Pods < 1 || cfg.ToRsPerPod < 1 || cfg.LeavesPerPod < 1 || cfg.HostsPerToR < 1 {
		return nil, fmt.Errorf("topology: invalid spine-leaf shape %+v", cfg)
	}
	if cfg.Spines < cfg.LeavesPerPod {
		return nil, fmt.Errorf("topology: need at least one spine per plane (%d planes, %d spines)", cfg.LeavesPerPod, cfg.Spines)
	}
	if cfg.LinkCapacity == 0 {
		cfg.LinkCapacity = DefaultLinkCapacity
	}
	if cfg.LinkCapacity <= 0 {
		return nil, fmt.Errorf("topology: invalid link capacity %g", cfg.LinkCapacity)
	}
	if cfg.Queues == 0 {
		cfg.Queues = 16
	}
	if cfg.Queues < 1 {
		return nil, fmt.Errorf("topology: invalid queue count %d", cfg.Queues)
	}

	var b builder

	// Spine planes: spine s belongs to plane s % LeavesPerPod.
	spines := make([]NodeID, cfg.Spines)
	for s := range spines {
		spines[s] = b.addNode(Switch, fmt.Sprintf("spine%d", s), cfg.Queues)
	}
	planes := make([][]NodeID, cfg.LeavesPerPod)
	for s, id := range spines {
		p := s % cfg.LeavesPerPod
		planes[p] = append(planes[p], id)
	}

	leaves := make([][]NodeID, cfg.Pods)  // [pod][leafIdx]
	tors := make([][]NodeID, cfg.Pods)    // [pod][torIdx]
	hosts := make([][][]NodeID, cfg.Pods) // [pod][torIdx][hostIdx]

	for p := 0; p < cfg.Pods; p++ {
		leaves[p] = make([]NodeID, cfg.LeavesPerPod)
		for l := range leaves[p] {
			leaves[p][l] = b.addNode(Switch, fmt.Sprintf("leaf%d-%d", p, l), cfg.Queues)
			b.setPart(leaves[p][l], int32(p))
			for _, sp := range planes[l] {
				b.addPair(leaves[p][l], sp, cfg.LinkCapacity)
			}
		}
		tors[p] = make([]NodeID, cfg.ToRsPerPod)
		hosts[p] = make([][]NodeID, cfg.ToRsPerPod)
		for r := range tors[p] {
			tors[p][r] = b.addNode(Switch, fmt.Sprintf("tor%d-%d", p, r), cfg.Queues)
			b.setPart(tors[p][r], int32(p))
			for l := range leaves[p] {
				b.addPair(tors[p][r], leaves[p][l], cfg.LinkCapacity)
			}
			hosts[p][r] = make([]NodeID, cfg.HostsPerToR)
			for h := range hosts[p][r] {
				id := b.addNode(Host, fmt.Sprintf("h%d-%d-%d", p, r, h), cfg.Queues)
				hosts[p][r][h] = id
				b.setPart(id, int32(p))
				b.addPair(id, tors[p][r], cfg.LinkCapacity)
			}
		}
	}

	t := &b.t
	// Index: for each node, link to a given neighbor.
	linkTo := make([]map[NodeID]LinkID, len(t.nodes))
	for i := range linkTo {
		linkTo[i] = make(map[NodeID]LinkID, len(t.out[i]))
		for _, l := range t.out[i] {
			linkTo[i][t.links[l].To] = l
		}
	}

	// Populate LFTs for every destination host. Hosts get a default route
	// up their single access link instead of per-destination entries —
	// without that compression table construction is O(hosts²), which is
	// what previously capped the buildable fabric size well below the
	// hyperscale (10k+ host) configurations.
	for i := range t.lft {
		if t.nodes[i].Kind == Host {
			t.defRoute[i] = t.out[i][0]
			continue
		}
		t.lft[NodeID(i)] = make(map[NodeID]LinkID)
	}
	for p := 0; p < cfg.Pods; p++ {
		for r := 0; r < cfg.ToRsPerPod; r++ {
			for _, dst := range hosts[p][r] {
				dstToR := tors[p][r]
				plane := int(hashDst(dst, 0x5aba)) % cfg.LeavesPerPod

				// Destination ToR: down to the host.
				t.lft[dstToR][dst] = linkTo[dstToR][dst]

				// Other ToRs: up to the hashed leaf of their own pod.
				for tp := 0; tp < cfg.Pods; tp++ {
					for tr := 0; tr < cfg.ToRsPerPod; tr++ {
						tor := tors[tp][tr]
						if tor == dstToR {
							continue
						}
						t.lft[tor][dst] = linkTo[tor][leaves[tp][plane]]
					}
				}

				// Leaves: same pod → down to dst ToR; other pods → up to
				// the hashed spine of the leaf's plane.
				for lp := 0; lp < cfg.Pods; lp++ {
					for li, leaf := range leaves[lp] {
						if lp == p {
							t.lft[leaf][dst] = linkTo[leaf][dstToR]
							continue
						}
						pl := planes[li]
						sp := pl[int(hashDst(dst, uint32(li)))%len(pl)]
						t.lft[leaf][dst] = linkTo[leaf][sp]
					}
				}

				// Spines: down to the destination pod's leaf in their plane.
				for s, spID := range spines {
					pli := s % cfg.LeavesPerPod
					t.lft[spID][dst] = linkTo[spID][leaves[p][pli]]
				}
			}
		}
	}
	return t, nil
}
