package topology

import (
	"testing"
)

func partitionFabric(t *testing.T) *Topology {
	t.Helper()
	top, err := NewSpineLeaf(SpineLeafConfig{
		Pods: 3, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 4,
		HostsPerToR: 3, Queues: 8, LinkCapacity: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// Every host must map to exactly one partition, and the per-partition
// host lists must cover all hosts without overlap.
func TestPartitionHostsCoverExactlyOnce(t *testing.T) {
	top := partitionFabric(t)
	p := top.Partition()
	if p.NumParts() != 3 {
		t.Fatalf("NumParts = %d, want 3 pods", p.NumParts())
	}
	seen := map[NodeID]int{}
	for part := 0; part < p.NumParts(); part++ {
		for _, h := range p.HostsIn(part) {
			if got := p.OfNode(h); got != int32(part) {
				t.Errorf("host %d listed in part %d but OfNode says %d", h, part, got)
			}
			seen[h]++
		}
	}
	for _, h := range top.Hosts() {
		if seen[h] != 1 {
			t.Errorf("host %d appears in %d partitions, want exactly 1", h, seen[h])
		}
		if p.OfNode(h) == GlobalPart {
			t.Errorf("host %d has no partition", h)
		}
	}
	if len(seen) != len(top.Hosts()) {
		t.Errorf("partition host lists cover %d hosts, topology has %d", len(seen), len(top.Hosts()))
	}
}

// Cross-pod routes may leave their endpoint pods only over cut links;
// intra-pod routes must never touch one. Non-cut links on any path must
// lie wholly inside the partition of one of the route's endpoints.
func TestPartitionRoutesCrossOnlyCutLinks(t *testing.T) {
	top := partitionFabric(t)
	p := top.Partition()
	hosts := top.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			path, err := top.Route(src, dst)
			if err != nil {
				t.Fatalf("route %d->%d: %v", src, dst, err)
			}
			sp, dp := p.OfNode(src), p.OfNode(dst)
			for _, l := range path {
				lk, _ := top.Link(l)
				a, b := p.OfNode(lk.From), p.OfNode(lk.To)
				if p.IsCut(l) {
					if sp == dp {
						t.Fatalf("intra-pod route %d->%d (pod %d) crosses cut link %d", src, dst, sp, l)
					}
					continue
				}
				if a != b {
					t.Fatalf("link %d joins parts %d and %d but is not cut", l, a, b)
				}
				if a != sp && a != dp {
					t.Fatalf("route %d->%d (pods %d->%d) uses non-cut link %d of pod %d",
						src, dst, sp, dp, l, a)
				}
			}
		}
	}
}

// The partition view is derived from the immutable graph shape: link
// failures and restores (which bump the liveness epoch) must not change
// any node or link assignment.
func TestPartitionStableAcrossFailureEpochs(t *testing.T) {
	top := partitionFabric(t)
	before := top.Partition()
	snapNode := make([]int32, len(top.Nodes()))
	snapCut := make([]bool, len(top.Links()))
	for i := range top.Nodes() {
		snapNode[i] = before.OfNode(NodeID(i))
	}
	for i := range top.Links() {
		snapCut[i] = before.IsCut(LinkID(i))
	}

	ep0 := top.Epoch()
	for i := 0; i < len(top.Links()); i += 7 {
		if _, err := top.FailLink(LinkID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if top.Epoch() == ep0 {
		t.Fatal("failures did not bump the epoch; scenario degenerate")
	}
	mid := top.Partition()
	for i := 0; i < len(top.Links()); i += 7 {
		if _, err := top.RestoreLink(LinkID(i)); err != nil {
			t.Fatal(err)
		}
	}
	after := top.Partition()

	for _, view := range []*Partition{mid, after} {
		if view.NumParts() != before.NumParts() {
			t.Fatalf("NumParts changed across epochs: %d vs %d", view.NumParts(), before.NumParts())
		}
		for i := range top.Nodes() {
			if view.OfNode(NodeID(i)) != snapNode[i] {
				t.Fatalf("node %d changed partition across failure epochs", i)
			}
		}
		for i := range top.Links() {
			if view.IsCut(LinkID(i)) != snapCut[i] {
				t.Fatalf("link %d changed cut status across failure epochs", i)
			}
		}
	}
}

// Topologies without pod structure collapse to a single partition with
// no cut links, so the sharded engine degrades gracefully on them.
func TestPartitionSingleSwitchCollapses(t *testing.T) {
	top, err := NewSingleSwitch(SingleSwitchConfig{Hosts: 5, LinkCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	p := top.Partition()
	if p.NumParts() != 1 {
		t.Fatalf("NumParts = %d, want 1", p.NumParts())
	}
	if len(p.HostsIn(0)) != 5 {
		t.Fatalf("HostsIn(0) = %d hosts, want 5", len(p.HostsIn(0)))
	}
	for i := range top.Links() {
		if p.IsCut(LinkID(i)) {
			t.Fatalf("single-switch topology has cut link %d", i)
		}
	}
}
