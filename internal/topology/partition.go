package topology

// GlobalPart marks nodes that belong to no single fabric partition: the
// spine layer, which every pod's cross-pod traffic traverses.
const GlobalPart int32 = -1

// Partition is a static view of a topology's fabric partitioning — the
// pod structure the builders annotate. The sharded simulation engine
// keys its per-pod event loops off this view: nodes (and the links whose
// endpoints share a pod) belong to exactly one partition, while links
// touching the spine layer are "cut" links — the only edges a cross-pod
// route may use to leave its endpoint pods.
//
// The view is derived purely from the immutable graph shape, so it is
// unaffected by link failures and restores: liveness epochs never change
// which partition a node or link belongs to.
type Partition struct {
	parts  int
	ofNode []int32 // node → partition; GlobalPart for spines
	ofLink []int32 // link → owning partition (the pod side of spine links)
	cut    []bool  // link → crosses a partition boundary
	hosts  [][]NodeID
}

// Partition computes the partition view. Topologies without pod
// annotations (or with a single pod) collapse to one partition with no
// cut links, which keeps the sharded engine correct on any fabric.
func (t *Topology) Partition() *Partition {
	p := &Partition{
		ofNode: make([]int32, len(t.nodes)),
		ofLink: make([]int32, len(t.links)),
		cut:    make([]bool, len(t.links)),
	}
	maxPart := int32(-1)
	annotated := len(t.partOf) == len(t.nodes)
	for i := range t.nodes {
		part := int32(0)
		if annotated {
			part = t.partOf[i]
		}
		p.ofNode[i] = part
		if part > maxPart {
			maxPart = part
		}
	}
	if maxPart < 0 {
		// Every node is global (degenerate annotation): one partition.
		maxPart = 0
		for i := range p.ofNode {
			p.ofNode[i] = 0
		}
	}
	p.parts = int(maxPart) + 1
	p.hosts = make([][]NodeID, p.parts)
	for _, h := range t.hosts {
		part := p.ofNode[h]
		if part == GlobalPart {
			part = 0 // hosts are never spines; defensive for odd annotations
		}
		p.hosts[part] = append(p.hosts[part], h)
	}
	for i := range t.links {
		a, b := p.ofNode[t.links[i].From], p.ofNode[t.links[i].To]
		switch {
		case a == b && a != GlobalPart:
			p.ofLink[i] = a
		case a == GlobalPart && b == GlobalPart:
			p.ofLink[i], p.cut[i] = 0, true // spine-spine (not built today)
		case a == GlobalPart:
			p.ofLink[i], p.cut[i] = b, true
		case b == GlobalPart:
			p.ofLink[i], p.cut[i] = a, true
		default:
			// Endpoints in different pods: own it to the lower pod so the
			// assignment is deterministic, and mark the boundary.
			if a < b {
				p.ofLink[i] = a
			} else {
				p.ofLink[i] = b
			}
			p.cut[i] = true
		}
	}
	return p
}

// NumParts returns the number of partitions (≥ 1).
func (p *Partition) NumParts() int { return p.parts }

// OfNode returns a node's partition, or GlobalPart for spine-layer nodes.
func (p *Partition) OfNode(n NodeID) int32 {
	if int(n) < 0 || int(n) >= len(p.ofNode) {
		return GlobalPart
	}
	return p.ofNode[n]
}

// OfLink returns the partition that owns a link: the common partition of
// its endpoints, or the pod side of a spine-touching (cut) link.
func (p *Partition) OfLink(l LinkID) int32 {
	if int(l) < 0 || int(l) >= len(p.ofLink) {
		return 0
	}
	return p.ofLink[l]
}

// IsCut reports whether a link crosses the partition boundary (one of
// its endpoints is outside the owning partition). Cross-pod routes enter
// and leave pods only over cut links.
func (p *Partition) IsCut(l LinkID) bool {
	if int(l) < 0 || int(l) >= len(p.cut) {
		return false
	}
	return p.cut[l]
}

// HostsIn returns the hosts of one partition. The slice is owned by the
// Partition; callers must not mutate it.
func (p *Partition) HostsIn(part int) []NodeID {
	if part < 0 || part >= len(p.hosts) {
		return nil
	}
	return p.hosts[part]
}
