package topology

import (
	"errors"
	"testing"
)

// pathLive reports whether every link of a path is up.
func pathLive(t *testing.T, top *Topology, path []LinkID) bool {
	t.Helper()
	for _, l := range path {
		if !top.LinkUp(l) {
			return false
		}
	}
	return true
}

// checkPath asserts contiguity and endpoint correctness.
func checkPath(t *testing.T, top *Topology, src, dst NodeID, path []LinkID) {
	t.Helper()
	if len(path) == 0 {
		t.Fatalf("empty path %d→%d", src, dst)
	}
	first, _ := top.Link(path[0])
	last, _ := top.Link(path[len(path)-1])
	if first.From != src || last.To != dst {
		t.Fatalf("path endpoints wrong for %d→%d", src, dst)
	}
	for i := 1; i < len(path); i++ {
		prev, _ := top.Link(path[i-1])
		cur, _ := top.Link(path[i])
		if prev.To != cur.From {
			t.Fatalf("discontiguous path %d→%d at hop %d", src, dst, i)
		}
	}
}

func TestFailLinkReroutes(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	// An inter-pod pair: its LFT path crosses ToR→leaf→spine→leaf→ToR,
	// every inter-switch hop of which has alternates.
	src, dst := hosts[0], hosts[len(hosts)-1]
	orig, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Fail a middle (switch-to-switch) hop of the original path.
	mid := orig[len(orig)/2]
	if changed, err := top.FailLink(mid); err != nil || !changed {
		t.Fatalf("FailLink(%d) = %v, %v", mid, changed, err)
	}
	if top.LinkUp(mid) {
		t.Fatal("failed link still reported up")
	}
	if top.NumDown() != 1 {
		t.Fatalf("NumDown = %d, want 1", top.NumDown())
	}
	alt, err := top.Route(src, dst)
	if err != nil {
		t.Fatalf("no reroute around failed link: %v", err)
	}
	checkPath(t, top, src, dst, alt)
	for _, l := range alt {
		if l == mid {
			t.Fatal("rerouted path crosses the failed link")
		}
	}
	if !pathLive(t, top, alt) {
		t.Fatal("rerouted path uses a down link")
	}

	// Unaffected pairs keep their exact LFT path (bit-identity of the
	// fast path matters for the differential gate).
	o2, _ := top.Route(hosts[1], hosts[2])
	if changed, err := top.RestoreLink(mid); err != nil || !changed {
		t.Fatalf("RestoreLink(%d) = %v, %v", mid, changed, err)
	}
	r2, _ := top.Route(hosts[1], hosts[2])
	if len(o2) != len(r2) {
		t.Fatal("restore changed an unaffected route")
	}
	for i := range o2 {
		if o2[i] != r2[i] {
			t.Fatal("restore changed an unaffected route")
		}
	}
	// After restore, the original route comes back.
	back, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if back[i] != orig[i] {
			t.Fatal("LFT route not restored after RestoreLink")
		}
	}
}

func TestFailLinkIdempotentAndEpoch(t *testing.T) {
	top := smallFabric(t)
	l := top.Links()[0].ID
	e0 := top.Epoch()
	if ch, err := top.FailLink(l); err != nil || !ch {
		t.Fatalf("first FailLink = %v, %v", ch, err)
	}
	if top.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", top.Epoch(), e0+1)
	}
	if ch, err := top.FailLink(l); err != nil || ch {
		t.Fatalf("second FailLink = %v, %v (want no-op)", ch, err)
	}
	if top.Epoch() != e0+1 {
		t.Fatal("idempotent fail bumped the epoch")
	}
	if ch, err := top.RestoreLink(l); err != nil || !ch {
		t.Fatalf("RestoreLink = %v, %v", ch, err)
	}
	if ch, err := top.RestoreLink(l); err != nil || ch {
		t.Fatalf("second RestoreLink = %v, %v (want no-op)", ch, err)
	}
	if top.NumDown() != 0 {
		t.Fatalf("NumDown = %d after full restore", top.NumDown())
	}
	if _, err := top.FailLink(LinkID(len(top.Links()))); err == nil {
		t.Fatal("unknown link should error")
	}
}

func TestHostCutOffReturnsErrNoRoute(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	src, dst := hosts[0], hosts[1]
	// A host has a single uplink: failing it cuts the host off.
	up := top.OutLinks(src)
	if len(up) != 1 {
		t.Fatalf("host %d has %d uplinks, want 1", src, len(up))
	}
	if _, err := top.FailLink(up[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := top.Route(src, dst); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Route from cut-off host: %v, want ErrNoRoute", err)
	}
	// The reverse direction is still alive (directed liveness).
	if _, err := top.Route(dst, src); err != nil {
		t.Fatalf("reverse direction should still route: %v", err)
	}
}

func TestFailSwitch(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	src, dst := hosts[0], hosts[len(hosts)-1]
	orig, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the first spine-level switch on the path (a middle hop's
	// destination node).
	lk, _ := top.Link(orig[len(orig)/2])
	sw := lk.From
	changed, err := top.FailSwitch(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("FailSwitch changed no links")
	}
	for _, l := range changed {
		if top.LinkUp(l) {
			t.Fatalf("link %d still up after FailSwitch", l)
		}
		k, _ := top.Link(l)
		if k.From != sw && k.To != sw {
			t.Fatalf("FailSwitch touched unrelated link %d", l)
		}
	}
	alt, err := top.Route(src, dst)
	if err != nil {
		t.Fatalf("no reroute around failed switch: %v", err)
	}
	checkPath(t, top, src, dst, alt)
	for _, l := range alt {
		k, _ := top.Link(l)
		if k.From == sw || k.To == sw {
			t.Fatal("rerouted path crosses the failed switch")
		}
	}
	restored, err := top.RestoreSwitch(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(changed) {
		t.Fatalf("RestoreSwitch changed %d links, FailSwitch changed %d", len(restored), len(changed))
	}
	if top.NumDown() != 0 {
		t.Fatalf("NumDown = %d after RestoreSwitch", top.NumDown())
	}
	// Failing a host must be rejected.
	if _, err := top.FailSwitch(hosts[0]); err == nil {
		t.Fatal("FailSwitch on a host should error")
	}
}
