// Package topology models the datacenter networks Saba runs on: hosts,
// switches, directed links (one per physical port direction), and
// destination-based linear forwarding tables (LFTs) like InfiniBand's
// subnet manager installs. The controller's path detection (paper §7.2,
// "gets the forwarding tables of switches in the network to detect the
// path of each connection") walks these tables.
//
// Two builders are provided: the 32-server single-switch testbed of §8.1
// and the three-tier spine-leaf fabric of the large-scale simulation
// (54 spine / 102 leaf / 108 ToR switches, 18 hosts per ToR → 1,944
// hosts), both parameterized so scaled-down variants can run in tests.
package topology

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// NodeID identifies a host or switch.
type NodeID int

// LinkID identifies one directed link (an output port of its From node).
type LinkID int

// NodeKind distinguishes hosts from switches.
type NodeKind int

// Node kinds.
const (
	Host NodeKind = iota
	Switch
)

func (k NodeKind) String() string {
	switch k {
	case Host:
		return "host"
	case Switch:
		return "switch"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a network element.
type Node struct {
	ID     NodeID
	Kind   NodeKind
	Name   string
	Queues int // per-output-port queue count (switches and host NICs)
}

// Link is a directed link: an output port of node From feeding node To.
type Link struct {
	ID       LinkID
	From, To NodeID
	Capacity float64 // bits per second
}

// Topology is a network graph with forwarding state. The graph shape and
// forwarding tables are immutable after construction; the only mutable
// state is link liveness (FailLink/RestoreLink), versioned by an epoch so
// route memos and controller solution caches can detect change.
type Topology struct {
	nodes []Node
	links []Link
	out   [][]LinkID          // out[node] = outgoing links
	lft   []map[NodeID]LinkID // lft[node][dstHost] = out link (hosts have single uplink)
	hosts []NodeID
	sws   []NodeID

	// defRoute[node] is the forwarding entry used for any destination the
	// node's LFT has no explicit entry for, or -1. Hosts have exactly one
	// uplink, so builders install it here instead of materializing one LFT
	// entry per (host, destination) pair — that compression is what keeps
	// table construction O(switches × hosts) rather than O(hosts²) and
	// makes the 10k+ host hyperscale fabrics buildable.
	defRoute []LinkID

	// partOf[node] is the fabric partition (pod) a node belongs to, or
	// GlobalPart for nodes shared by every pod (the spine layer). Builders
	// that have a pod structure annotate it; an empty slice means the
	// topology has no partitioning and Partition() collapses to one part.
	partOf []int32

	// Failure state. down is nil until the first failure, so a topology
	// that never fails pays nothing. epoch increments on every liveness
	// change; readers use it to invalidate derived state.
	mu    sync.RWMutex
	down  []bool
	nDown int
	epoch atomic.Uint64
}

// Errors returned by topology operations.
var (
	ErrUnknownNode = errors.New("topology: unknown node")
	ErrNotHost     = errors.New("topology: endpoint is not a host")
	ErrNoRoute     = errors.New("topology: no route")
)

// builder assembles a Topology.
type builder struct {
	t Topology
}

func (b *builder) addNode(kind NodeKind, name string, queues int) NodeID {
	id := NodeID(len(b.t.nodes))
	b.t.nodes = append(b.t.nodes, Node{ID: id, Kind: kind, Name: name, Queues: queues})
	b.t.out = append(b.t.out, nil)
	b.t.lft = append(b.t.lft, nil)
	b.t.partOf = append(b.t.partOf, GlobalPart)
	b.t.defRoute = append(b.t.defRoute, -1)
	if kind == Host {
		b.t.hosts = append(b.t.hosts, id)
	} else {
		b.t.sws = append(b.t.sws, id)
	}
	return id
}

// setPart annotates a node's fabric partition (pod).
func (b *builder) setPart(id NodeID, part int32) { b.t.partOf[id] = part }

// addPair adds both directions of a physical cable.
func (b *builder) addPair(a, c NodeID, capacity float64) (LinkID, LinkID) {
	l1 := b.addLink(a, c, capacity)
	l2 := b.addLink(c, a, capacity)
	return l1, l2
}

func (b *builder) addLink(from, to NodeID, capacity float64) LinkID {
	id := LinkID(len(b.t.links))
	b.t.links = append(b.t.links, Link{ID: id, From: from, To: to, Capacity: capacity})
	b.t.out[from] = append(b.t.out[from], id)
	return id
}

// Nodes returns all nodes in ID order.
func (t *Topology) Nodes() []Node { return t.nodes }

// Node returns the node with the given ID.
func (t *Topology) Node(id NodeID) (Node, error) {
	if int(id) < 0 || int(id) >= len(t.nodes) {
		return Node{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return t.nodes[id], nil
}

// Hosts returns the IDs of all hosts.
func (t *Topology) Hosts() []NodeID { return t.hosts }

// Switches returns the IDs of all switches.
func (t *Topology) Switches() []NodeID { return t.sws }

// Links returns all directed links in ID order.
func (t *Topology) Links() []Link { return t.links }

// Link returns the link with the given ID.
func (t *Topology) Link(id LinkID) (Link, error) {
	if int(id) < 0 || int(id) >= len(t.links) {
		return Link{}, fmt.Errorf("topology: unknown link %d", id)
	}
	return t.links[id], nil
}

// OutLinks returns the outgoing link IDs of a node (its output ports).
func (t *Topology) OutLinks(n NodeID) []LinkID {
	if int(n) < 0 || int(n) >= len(t.out) {
		return nil
	}
	return t.out[n]
}

// ForwardingTable returns the LFT of a node: destination host → output
// link. This is what the controller's path detection reads.
func (t *Topology) ForwardingTable(n NodeID) map[NodeID]LinkID {
	if int(n) < 0 || int(n) >= len(t.lft) {
		return nil
	}
	return t.lft[n]
}

// QueuesAt returns the per-port queue count at the node that owns link id.
func (t *Topology) QueuesAt(id LinkID) int {
	l, err := t.Link(id)
	if err != nil {
		return 0
	}
	return t.nodes[l.From].Queues
}

// Route returns the directed links a flow from src to dst traverses,
// following the forwarding tables hop by hop — exactly the path-detection
// procedure of paper §7.2. src and dst must be hosts.
//
// While every link is up the forwarding-table walk is authoritative. When
// failures exist and the table path crosses a down link, Route falls back
// to the shortest live detour (deterministic BFS over up links, expanding
// ports in ID order — what the subnet manager's rerouting computes), and
// returns ErrNoRoute only when no live path exists at all.
func (t *Topology) Route(src, dst NodeID) ([]LinkID, error) {
	sn, err := t.Node(src)
	if err != nil {
		return nil, err
	}
	dn, err := t.Node(dst)
	if err != nil {
		return nil, err
	}
	if sn.Kind != Host || dn.Kind != Host {
		return nil, ErrNotHost
	}
	if src == dst {
		return nil, nil // loopback traffic does not touch the network
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.nDown == 0 {
		return t.routeLFT(src, dst)
	}
	path, err := t.routeLFT(src, dst)
	if err == nil && t.pathUpLocked(path) {
		return path, nil
	}
	return t.routeBFSLocked(src, dst)
}

// routeLFT walks the forwarding tables hop by hop, ignoring liveness.
// Nodes with no explicit entry for dst fall back to their default route
// (hosts: the single uplink).
func (t *Topology) routeLFT(src, dst NodeID) ([]LinkID, error) {
	var path []LinkID
	cur := src
	for cur != dst {
		next, ok := t.lft[cur][dst]
		if !ok {
			if d := t.defRoute[cur]; d >= 0 {
				next = d
			} else {
				return nil, fmt.Errorf("%w: from %d to %d (stuck at %d)", ErrNoRoute, src, dst, cur)
			}
		}
		path = append(path, next)
		cur = t.links[next].To
		if len(path) > len(t.nodes) {
			return nil, fmt.Errorf("topology: forwarding loop from %d to %d", src, dst)
		}
	}
	return path, nil
}

// pathUpLocked reports whether every link of a path is live.
func (t *Topology) pathUpLocked(path []LinkID) bool {
	for _, l := range path {
		if t.down[l] {
			return false
		}
	}
	return true
}

// routeBFSLocked computes the shortest live path by breadth-first search
// over up links. Hosts do not forward, so only src and dst may be hosts
// on the path. Expansion visits out-links in ID order and keeps the first
// parent found, so the detour is deterministic for a given failure set.
func (t *Topology) routeBFSLocked(src, dst NodeID) ([]LinkID, error) {
	prev := make([]LinkID, len(t.nodes))
	for i := range prev {
		prev[i] = -1
	}
	seen := make([]bool, len(t.nodes))
	seen[src] = true
	queue := make([]NodeID, 0, len(t.nodes))
	queue = append(queue, src)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			break
		}
		if cur != src && t.nodes[cur].Kind == Host {
			continue // hosts terminate paths; they never forward
		}
		for _, l := range t.out[cur] {
			if t.down[l] {
				continue
			}
			to := t.links[l].To
			if seen[to] {
				continue
			}
			seen[to] = true
			prev[to] = l
			queue = append(queue, to)
		}
	}
	if prev[dst] < 0 {
		return nil, fmt.Errorf("%w: from %d to %d (no live path)", ErrNoRoute, src, dst)
	}
	var path []LinkID
	for cur := dst; cur != src; {
		l := prev[cur]
		path = append(path, l)
		cur = t.links[l].From
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// FailLink marks a directed link down, reporting whether the state
// changed (failing an already-down link is an idempotent no-op). Every
// change bumps the topology epoch.
func (t *Topology) FailLink(id LinkID) (bool, error) {
	if int(id) < 0 || int(id) >= len(t.links) {
		return false, fmt.Errorf("topology: unknown link %d", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down == nil {
		t.down = make([]bool, len(t.links))
	}
	if t.down[id] {
		return false, nil
	}
	t.down[id] = true
	t.nDown++
	t.epoch.Add(1)
	return true, nil
}

// RestoreLink brings a failed link back up, reporting whether the state
// changed. Every change bumps the topology epoch.
func (t *Topology) RestoreLink(id LinkID) (bool, error) {
	if int(id) < 0 || int(id) >= len(t.links) {
		return false, fmt.Errorf("topology: unknown link %d", id)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down == nil || !t.down[id] {
		return false, nil
	}
	t.down[id] = false
	t.nDown--
	t.epoch.Add(1)
	return true, nil
}

// FailSwitch fails every link attached to a switch (both directions of
// each cable — a powered-off switch neither sends nor receives) and
// returns the links whose state actually changed, in ID order.
func (t *Topology) FailSwitch(n NodeID) ([]LinkID, error) {
	return t.setSwitchLinks(n, (*Topology).FailLink)
}

// RestoreSwitch restores every link attached to a switch, returning the
// links whose state actually changed, in ID order.
func (t *Topology) RestoreSwitch(n NodeID) ([]LinkID, error) {
	return t.setSwitchLinks(n, (*Topology).RestoreLink)
}

func (t *Topology) setSwitchLinks(n NodeID, op func(*Topology, LinkID) (bool, error)) ([]LinkID, error) {
	node, err := t.Node(n)
	if err != nil {
		return nil, err
	}
	if node.Kind != Switch {
		return nil, fmt.Errorf("topology: node %d is not a switch", n)
	}
	var changed []LinkID
	for i := range t.links {
		if t.links[i].From != n && t.links[i].To != n {
			continue
		}
		ch, err := op(t, LinkID(i))
		if err != nil {
			return changed, err
		}
		if ch {
			changed = append(changed, LinkID(i))
		}
	}
	return changed, nil
}

// LinkUp reports whether a link is live (unknown links are not).
func (t *Topology) LinkUp(id LinkID) bool {
	if int(id) < 0 || int(id) >= len(t.links) {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.down == nil || !t.down[id]
}

// NumDown returns the count of currently failed links.
func (t *Topology) NumDown() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nDown
}

// Epoch returns the liveness version: it increments on every FailLink or
// RestoreLink that changes state. Derived caches (route memos, solution
// caches) compare epochs to detect staleness without tracking individual
// links.
func (t *Topology) Epoch() uint64 { return t.epoch.Load() }

// hashDst provides the deterministic spreading the subnet manager applies
// when several equal-cost uplinks exist: destination-based so that all
// traffic to one host takes a stable path.
func hashDst(dst NodeID, salt uint32) uint32 {
	h := fnv.New32a()
	var buf [8]byte
	v := uint64(dst)<<32 | uint64(salt)
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum32()
}
