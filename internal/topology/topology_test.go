package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleSwitchShape(t *testing.T) {
	top, err := NewSingleSwitch(SingleSwitchConfig{Hosts: 32})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(top.Hosts()); got != 32 {
		t.Errorf("hosts = %d, want 32", got)
	}
	if got := len(top.Switches()); got != 1 {
		t.Errorf("switches = %d, want 1", got)
	}
	// 32 cables, 2 directed links each.
	if got := len(top.Links()); got != 64 {
		t.Errorf("links = %d, want 64", got)
	}
	for _, l := range top.Links() {
		if l.Capacity != DefaultLinkCapacity {
			t.Fatalf("link %d capacity = %g, want default 56G", l.ID, l.Capacity)
		}
	}
}

func TestSingleSwitchValidation(t *testing.T) {
	if _, err := NewSingleSwitch(SingleSwitchConfig{Hosts: 0}); err == nil {
		t.Error("0 hosts should fail")
	}
	if _, err := NewSingleSwitch(SingleSwitchConfig{Hosts: 4, LinkCapacity: -1}); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := NewSingleSwitch(SingleSwitchConfig{Hosts: 4, Queues: -2}); err == nil {
		t.Error("negative queues should fail")
	}
}

func TestSingleSwitchRoutes(t *testing.T) {
	top, err := NewSingleSwitch(SingleSwitchConfig{Hosts: 8})
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	path, err := top.Route(hosts[0], hosts[5])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Fatalf("path length = %d, want 2 (host→switch→host)", len(path))
	}
	l0, _ := top.Link(path[0])
	l1, _ := top.Link(path[1])
	if l0.From != hosts[0] || l1.To != hosts[5] {
		t.Errorf("path endpoints wrong: %+v %+v", l0, l1)
	}
	sw := top.Switches()[0]
	if l0.To != sw || l1.From != sw {
		t.Errorf("path does not traverse the switch: %+v %+v", l0, l1)
	}
}

func TestRouteSelf(t *testing.T) {
	top, _ := NewSingleSwitch(SingleSwitchConfig{Hosts: 4})
	h := top.Hosts()[0]
	path, err := top.Route(h, h)
	if err != nil || path != nil {
		t.Errorf("self route = %v, %v; want nil, nil", path, err)
	}
}

func TestRouteValidation(t *testing.T) {
	top, _ := NewSingleSwitch(SingleSwitchConfig{Hosts: 4})
	if _, err := top.Route(NodeID(999), top.Hosts()[0]); err == nil {
		t.Error("unknown src should fail")
	}
	if _, err := top.Route(top.Hosts()[0], top.Switches()[0]); err == nil {
		t.Error("switch as dst should fail")
	}
}

func smallFabric(t *testing.T) *Topology {
	t.Helper()
	top, err := NewSpineLeaf(SpineLeafConfig{
		Pods: 3, ToRsPerPod: 3, LeavesPerPod: 2, Spines: 4, HostsPerToR: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestSpineLeafShape(t *testing.T) {
	top := smallFabric(t)
	if got := len(top.Hosts()); got != 3*3*4 {
		t.Errorf("hosts = %d, want 36", got)
	}
	// 4 spines + 3 pods × (2 leaves + 3 ToRs).
	if got := len(top.Switches()); got != 4+3*(2+3) {
		t.Errorf("switches = %d, want 19", got)
	}
}

func TestSpineLeafAllPairsRoutable(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	for _, src := range hosts {
		for _, dst := range hosts {
			if src == dst {
				continue
			}
			path, err := top.Route(src, dst)
			if err != nil {
				t.Fatalf("Route(%d,%d): %v", src, dst, err)
			}
			// Path must start at src, end at dst, and chain contiguously.
			first, _ := top.Link(path[0])
			last, _ := top.Link(path[len(path)-1])
			if first.From != src || last.To != dst {
				t.Fatalf("path endpoints wrong for %d→%d", src, dst)
			}
			for i := 1; i < len(path); i++ {
				prev, _ := top.Link(path[i-1])
				cur, _ := top.Link(path[i])
				if prev.To != cur.From {
					t.Fatalf("discontiguous path %d→%d at hop %d", src, dst, i)
				}
			}
		}
	}
}

func TestSpineLeafIntraPodStaysInPod(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	// Hosts 0..11 are pod 0 (3 ToRs × 4 hosts); any pair within the pod
	// must not traverse a spine (path length 4: host,ToR,leaf,ToR,host).
	src, dst := hosts[0], hosts[5] // different ToRs, same pod
	path, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 {
		t.Fatalf("intra-pod path length = %d, want 4", len(path))
	}
	for _, lid := range path {
		l, _ := top.Link(lid)
		n, _ := top.Node(l.From)
		if n.Kind == Switch && len(n.Name) >= 5 && n.Name[:5] == "spine" {
			t.Errorf("intra-pod path traverses spine %s", n.Name)
		}
	}
}

func TestSpineLeafInterPodCrossesSpine(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	src := hosts[0]            // pod 0
	dst := hosts[len(hosts)-1] // last pod
	path, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// host→ToR→leaf→spine→leaf→ToR→host = 6 hops.
	if len(path) != 6 {
		t.Fatalf("inter-pod path length = %d, want 6", len(path))
	}
	sawSpine := false
	for _, lid := range path {
		l, _ := top.Link(lid)
		n, _ := top.Node(l.From)
		if len(n.Name) >= 5 && n.Name[:5] == "spine" {
			sawSpine = true
		}
	}
	if !sawSpine {
		t.Error("inter-pod path does not traverse a spine")
	}
}

func TestSpineLeafDeterministicRouting(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	a, _ := top.Route(hosts[1], hosts[30])
	b, _ := top.Route(hosts[1], hosts[30])
	if len(a) != len(b) {
		t.Fatal("routing not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("routing not deterministic")
		}
	}
}

func TestSpineLeafPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale topology build skipped in -short")
	}
	top, err := NewSpineLeaf(PaperScaleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(top.Hosts()); got != 1944 {
		t.Errorf("hosts = %d, want 1944", got)
	}
	if got := len(top.Switches()); got != 54+102+108 {
		t.Errorf("switches = %d, want 264", got)
	}
	// Spot-check long-distance routes.
	hosts := top.Hosts()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst {
			continue
		}
		if _, err := top.Route(src, dst); err != nil {
			t.Fatalf("Route(%d,%d): %v", src, dst, err)
		}
	}
}

func TestSpineLeafValidation(t *testing.T) {
	if _, err := NewSpineLeaf(SpineLeafConfig{}); err == nil {
		t.Error("zero config should fail")
	}
	if _, err := NewSpineLeaf(SpineLeafConfig{Pods: 2, ToRsPerPod: 2, LeavesPerPod: 4, Spines: 2, HostsPerToR: 2}); err == nil {
		t.Error("fewer spines than planes should fail")
	}
}

func TestQueuesAt(t *testing.T) {
	top, _ := NewSingleSwitch(SingleSwitchConfig{Hosts: 2, Queues: 5})
	for _, l := range top.Links() {
		if q := top.QueuesAt(l.ID); q != 5 {
			t.Errorf("QueuesAt(%d) = %d, want 5", l.ID, q)
		}
	}
	if q := top.QueuesAt(LinkID(999)); q != 0 {
		t.Errorf("QueuesAt(bad) = %d, want 0", q)
	}
}

func TestForwardingTableCoversAllHosts(t *testing.T) {
	top := smallFabric(t)
	hosts := top.Hosts()
	for _, sw := range top.Switches() {
		ft := top.ForwardingTable(sw)
		for _, h := range hosts {
			if _, ok := ft[h]; !ok {
				t.Fatalf("switch %d LFT missing host %d", sw, h)
			}
		}
	}
}

func TestNodeKindString(t *testing.T) {
	if Host.String() != "host" || Switch.String() != "switch" {
		t.Error("NodeKind.String broken")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown NodeKind should still render")
	}
}

func TestRoutePathLinksBelongToPathNodes(t *testing.T) {
	// Property over random fabrics: every route is loop-free (no repeated
	// node).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := SpineLeafConfig{
			Pods:         2 + rng.Intn(2),
			ToRsPerPod:   1 + rng.Intn(3),
			LeavesPerPod: 1 + rng.Intn(2),
			Spines:       2 + rng.Intn(3),
			HostsPerToR:  1 + rng.Intn(3),
		}
		if cfg.Spines < cfg.LeavesPerPod {
			cfg.Spines = cfg.LeavesPerPod
		}
		top, err := NewSpineLeaf(cfg)
		if err != nil {
			return false
		}
		hosts := top.Hosts()
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst {
			return true
		}
		path, err := top.Route(src, dst)
		if err != nil {
			return false
		}
		seen := map[NodeID]bool{src: true}
		for _, lid := range path {
			l, err := top.Link(lid)
			if err != nil {
				return false
			}
			if seen[l.To] {
				return false // loop
			}
			seen[l.To] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
