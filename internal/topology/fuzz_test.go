package topology

import (
	"errors"
	"math/rand"
	"testing"
)

// FuzzRoute drives Route over a small spine-leaf fabric with a seeded
// random set of failed links, checking the routing contract against an
// independent BFS oracle:
//
//   - a returned path is contiguous, starts at src, ends at dst, and
//     crosses no failed link;
//   - ErrNoRoute is returned exactly when the oracle finds no live path
//     (under the same rule that hosts do not forward transit traffic).
func FuzzRoute(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(1))
	f.Add(int64(2), uint8(3), uint8(0), uint8(7))
	f.Add(int64(3), uint8(10), uint8(2), uint8(5))
	f.Add(int64(4), uint8(40), uint8(6), uint8(3))
	f.Add(int64(5), uint8(255), uint8(1), uint8(6))

	f.Fuzz(func(t *testing.T, seed int64, nFails, srcSel, dstSel uint8) {
		top, err := NewSpineLeaf(SpineLeafConfig{
			Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2, HostsPerToR: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		links := top.Links()
		rng := rand.New(rand.NewSource(seed))
		fails := int(nFails) % (len(links) + 1)
		for i := 0; i < fails; i++ {
			if _, err := top.FailLink(LinkID(rng.Intn(len(links)))); err != nil {
				t.Fatal(err)
			}
		}
		hosts := top.Hosts()
		src := hosts[int(srcSel)%len(hosts)]
		dst := hosts[int(dstSel)%len(hosts)]
		if src == dst {
			return
		}

		path, err := top.Route(src, dst)
		reachable := liveReachable(top, src, dst)
		if err != nil {
			if !errors.Is(err, ErrNoRoute) {
				t.Fatalf("Route(%d,%d) unexpected error class: %v", src, dst, err)
			}
			if reachable {
				t.Fatalf("Route(%d,%d) = ErrNoRoute but a live path exists", src, dst)
			}
			return
		}
		if !reachable {
			t.Fatalf("Route(%d,%d) found a path the oracle says cannot exist", src, dst)
		}
		if len(path) == 0 {
			t.Fatalf("Route(%d,%d) returned an empty path", src, dst)
		}
		first, _ := top.Link(path[0])
		last, _ := top.Link(path[len(path)-1])
		if first.From != src || last.To != dst {
			t.Fatalf("path endpoints wrong for %d→%d", src, dst)
		}
		for i, l := range path {
			if !top.LinkUp(l) {
				t.Fatalf("path %d→%d crosses failed link %d", src, dst, l)
			}
			if i > 0 {
				prev, _ := top.Link(path[i-1])
				cur, _ := top.Link(l)
				if prev.To != cur.From {
					t.Fatalf("discontiguous path %d→%d at hop %d", src, dst, i)
				}
			}
		}

		// Restoring everything must always make the pair routable again.
		for _, l := range links {
			if _, err := top.RestoreLink(l.ID); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := top.Route(src, dst); err != nil {
			t.Fatalf("Route(%d,%d) after full restore: %v", src, dst, err)
		}
	})
}

// liveReachable is the oracle: BFS over up links only, with hosts not
// forwarding transit traffic (the same constraint real fabrics have).
func liveReachable(top *Topology, src, dst NodeID) bool {
	nodes := top.Nodes()
	seen := make([]bool, len(nodes))
	queue := []NodeID{src}
	seen[src] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == dst {
			return true
		}
		if cur != src && nodes[cur].Kind == Host {
			continue
		}
		for _, l := range top.OutLinks(cur) {
			if !top.LinkUp(l) {
				continue
			}
			lk, _ := top.Link(l)
			if !seen[lk.To] {
				seen[lk.To] = true
				queue = append(queue, lk.To)
			}
		}
	}
	return false
}
