package controller

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"saba/internal/netsim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// recordingEnforcer keeps the last configuration pushed to each port,
// deep-copied per the Enforcer contract (configurations may be shared
// cache entries).
type recordingEnforcer struct {
	mu    sync.Mutex
	ports map[topology.LinkID]netsim.PortConfig
	calls int
}

func newRecordingEnforcer() *recordingEnforcer {
	return &recordingEnforcer{ports: map[topology.LinkID]netsim.PortConfig{}}
}

func (r *recordingEnforcer) Configure(port topology.LinkID, cfg netsim.PortConfig) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := netsim.PortConfig{
		Weights:      append([]float64(nil), cfg.Weights...),
		PLQueue:      make(map[int]int, len(cfg.PLQueue)),
		DefaultQueue: cfg.DefaultQueue,
	}
	for pl, q := range cfg.PLQueue {
		cp.PLQueue[pl] = q
	}
	r.ports[port] = cp
	r.calls++
	return nil
}

func (r *recordingEnforcer) snapshot() map[topology.LinkID]netsim.PortConfig {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[topology.LinkID]netsim.PortConfig, len(r.ports))
	for p, c := range r.ports {
		out[p] = c
	}
	return out
}

// fabricRig builds a controller over a small spine-leaf fabric with a
// recording enforcer and a private telemetry registry.
func fabricRig(t *testing.T, workers int, noCache, perPort bool) (*Centralized, *recordingEnforcer, []topology.NodeID, *telemetry.Registry) {
	t.Helper()
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2, HostsPerToR: 4, Queues: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	enf := newRecordingEnforcer()
	reg := telemetry.NewRegistry()
	c, err := NewCentralized(Config{
		Topology:        top,
		Table:           testTable(t),
		Enforcer:        enf,
		PLs:             8,
		Seed:            1,
		Workers:         workers,
		NoSolutionCache: noCache,
		PerPortWeights:  perPort,
		Telemetry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, enf, top.Hosts(), reg
}

// driveOps applies a deterministic op sequence — batch registration,
// connection churn, a deregistration, full recomputes — and returns the
// final enforced state. The sequence is a pure function of the seed, so
// two controllers driven with the same seed saw identical inputs.
func driveOps(t *testing.T, c *Centralized, enf *recordingEnforcer, hosts []topology.NodeID, seed int64) map[topology.LinkID]netsim.PortConfig {
	t.Helper()
	names := []string{"steep", "flat", "mid1", "mid2", "steep", "mid1"}
	ids, err := c.RegisterBatch(names)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var conns []ConnID
	var owners []AppID
	for i := 0; i < 60; i++ {
		id := ids[rng.Intn(len(ids))]
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst {
			continue
		}
		cid, err := c.ConnCreate(id, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, cid)
		owners = append(owners, id)
	}
	if _, err := c.RecomputeAll(); err != nil {
		t.Fatal(err)
	}
	// Destroy every third connection plus everything owned by the last
	// app, which is then deregistered.
	victim := ids[len(ids)-1]
	for i := range conns {
		if i%3 == 0 || owners[i] == victim {
			if err := c.ConnDestroy(conns[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Deregister(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecomputeAll(); err != nil {
		t.Fatal(err)
	}
	return enf.snapshot()
}

// TestSerialParallelEnforceIdentical is the differential gate of the
// parallel control plane: the serial uncached controller and the
// parallel cached one must enforce bit-identical configurations on
// every port, under both weight strategies. CI runs it under -race.
func TestSerialParallelEnforceIdentical(t *testing.T) {
	for _, perPort := range []bool{false, true} {
		t.Run(fmt.Sprintf("perPort=%v", perPort), func(t *testing.T) {
			serialCtrl, serialEnf, hosts, _ := fabricRig(t, 1, true, perPort)
			parCtrl, parEnf, _, _ := fabricRig(t, 8, false, perPort)
			serial := driveOps(t, serialCtrl, serialEnf, hosts, 7)
			parallel := driveOps(t, parCtrl, parEnf, hosts, 7)
			if len(serial) != len(parallel) {
				t.Fatalf("port sets differ: serial %d, parallel %d", len(serial), len(parallel))
			}
			for port, want := range serial {
				got, ok := parallel[port]
				if !ok {
					t.Fatalf("port %d configured serially but not in parallel", port)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("port %d config diverges:\nserial   %+v\nparallel %+v", port, want, got)
				}
			}
		})
	}
}

// TestSolutionCacheEpochInvalidation exercises the cache unit directly:
// hits within an epoch, wholesale invalidation across epochs, and — the
// collision case — the same key bytes at a new epoch recomputing rather
// than serving the stale entry.
func TestSolutionCacheEpochInvalidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := newSolutionCache(reg.Counter("hits"), reg.Counter("misses"))
	key := []byte("port-set-a")
	mk := func(w float64) func() (netsim.PortConfig, error) {
		return func() (netsim.PortConfig, error) {
			return netsim.PortConfig{Weights: []float64{w}}, nil
		}
	}
	cfg, err := sc.get(1, key, mk(0.25))
	if err != nil || cfg.Weights[0] != 0.25 {
		t.Fatalf("first get = %v, %v", cfg, err)
	}
	// Same epoch, same key: served from cache, compute not invoked.
	cfg, err = sc.get(1, key, mk(0.99))
	if err != nil || cfg.Weights[0] != 0.25 {
		t.Fatalf("cached get = %v, %v; want the epoch-1 solution", cfg, err)
	}
	if h, m := reg.Counter("hits").Value(), reg.Counter("misses").Value(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	// New epoch, identical key bytes: the stale entry must not collide.
	cfg, err = sc.get(2, key, mk(0.5))
	if err != nil || cfg.Weights[0] != 0.5 {
		t.Fatalf("cross-epoch get = %v, %v; stale entry served", cfg, err)
	}
	if sc.len() != 1 {
		t.Fatalf("cache holds %d entries after epoch change, want 1", sc.len())
	}
}

// TestCacheInvalidatedOnRecluster is the controller-level collision
// case: a port whose app set (and so cache key) never changes must still
// be reconfigured when a registration elsewhere re-clusters the PLs and
// shifts the global solve.
func TestCacheInvalidatedOnRecluster(t *testing.T) {
	c, enf, hosts, _ := fabricRig(t, 4, false, false)
	a, _, err := c.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(a, hosts[0], hosts[1]); err != nil {
		t.Fatal(err)
	}
	before := enf.snapshot()
	if len(before) == 0 {
		t.Fatal("no ports enforced")
	}
	epoch := c.solEpoch
	// A second app with conns on disjoint hosts: a's ports keep the app
	// set {a}, but a's global weight must shrink.
	b, _, err := c.Register("flat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[2], hosts[3]); err != nil {
		t.Fatal(err)
	}
	if c.solEpoch == epoch {
		t.Fatal("registration did not bump the solve epoch")
	}
	after := enf.snapshot()
	changed := false
	for port, cfg := range before {
		if !reflect.DeepEqual(cfg, after[port]) {
			changed = true
		}
	}
	if !changed {
		t.Error("no port configuration changed after the global solve shifted — stale cache entry served")
	}
}

// TestPerPortWeightsBypassSharedSolve checks the literal per-port mode:
// weights are solved over only the port's own applications, so activity
// on disjoint ports cannot move them, and no global solution is built.
func TestPerPortWeightsBypassSharedSolve(t *testing.T) {
	c, enf, hosts, _ := fabricRig(t, 4, false, true)
	a, _, err := c.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(a, hosts[0], hosts[1]); err != nil {
		t.Fatal(err)
	}
	before := enf.snapshot()
	b, _, err := c.Register("flat")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[2], hosts[3]); err != nil {
		t.Fatal(err)
	}
	if c.globalW != nil {
		t.Error("per-port mode built a global solution")
	}
	after := enf.snapshot()
	// hosts[0]↔hosts[1] share a ToR; those ports carry only app a before
	// and after, so per-port solves must leave them untouched.
	for port, cfg := range before {
		if _, stillA := after[port]; !stillA {
			continue
		}
		if aps := c.ports[port]; aps == nil || len(aps.appConns) != 1 {
			continue // port also picked up app b traffic
		}
		if !reflect.DeepEqual(cfg, after[port]) {
			t.Errorf("port %d carries only app %d but its config moved under per-port weights", port, a)
		}
	}
	_ = b
}

// TestCacheSharesSolutionsAcrossPorts: with every app spanning every
// host, the inter-switch ports all carry the identical set and must hit
// the shared solution instead of re-solving per port.
func TestCacheSharesSolutionsAcrossPorts(t *testing.T) {
	c, _, hosts, reg := fabricRig(t, 4, false, true)
	ids, err := c.RegisterBatch([]string{"steep", "flat", "mid1"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		for h := range hosts {
			if _, err := c.PreloadConn(id, hosts[h], hosts[(h+1)%len(hosts)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := c.RecomputeAll(); err != nil {
		t.Fatal(err)
	}
	hits := reg.Counter(telemetry.Label("controller.solcache_hits", "deploy", "centralized")).Value()
	misses := reg.Counter(telemetry.Label("controller.solcache_misses", "deploy", "centralized")).Value()
	if misses == 0 {
		t.Fatal("recompute recorded no cache misses — cache not exercised")
	}
	if hits == 0 {
		t.Errorf("identical app sets across ports produced no cache hits (misses=%d)", misses)
	}
	if c.sols.len() != int(misses) {
		t.Errorf("cache holds %d entries, misses=%d; one entry per distinct key expected", c.sols.len(), misses)
	}
}

// TestDefaultQueueTieBreak pins the regression: on equal queue weights
// the default queue is the lowest index, never a map-iteration accident.
func TestDefaultQueueTieBreak(t *testing.T) {
	cases := []struct {
		weights []float64
		want    int
	}{
		{[]float64{0.5, 0.5}, 0},
		{[]float64{0.25, 0.25, 0.25, 0.25}, 0},
		{[]float64{0.2, 0.4, 0.4}, 1},
		{[]float64{0.4, 0.2, 0.4}, 0},
		{[]float64{0.1, 0.9}, 1},
		{[]float64{1}, 0},
	}
	for _, tc := range cases {
		if got := defaultQueue(tc.weights); got != tc.want {
			t.Errorf("defaultQueue(%v) = %d, want %d", tc.weights, got, tc.want)
		}
	}
}

// TestDefaultQueueStableAcrossRecomputes drives repeated full recomputes
// and checks the chosen default queue never flaps for a fixed state.
func TestDefaultQueueStableAcrossRecomputes(t *testing.T) {
	c, enf, hosts, _ := fabricRig(t, 4, true, false)
	ids, err := c.RegisterBatch([]string{"steep", "flat", "mid1", "mid2"})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if _, err := c.ConnCreate(id, hosts[i], hosts[len(hosts)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	base := enf.snapshot()
	for round := 0; round < 5; round++ {
		if _, err := c.RecomputeAll(); err != nil {
			t.Fatal(err)
		}
		for port, cfg := range enf.snapshot() {
			if cfg.DefaultQueue != base[port].DefaultQueue {
				t.Fatalf("round %d: port %d default queue flapped %d→%d",
					round, port, base[port].DefaultQueue, cfg.DefaultQueue)
			}
		}
	}
}

// TestSolveHistogramOneSamplePerBatch pins the double-observation fix:
// every enforcement batch — whatever the entry point — records exactly
// one solve-time sample.
func TestSolveHistogramOneSamplePerBatch(t *testing.T) {
	c, _, hosts, reg := fabricRig(t, 1, true, false)
	hist := reg.Histogram(telemetry.Label("controller.solve_seconds", "deploy", "centralized"))
	want := uint64(0)
	check := func(op string) {
		t.Helper()
		want++
		if got := hist.Count(); got != want {
			t.Fatalf("after %s: solve histogram has %d samples, want %d", op, got, want)
		}
	}
	a, _, err := c.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	check("Register")
	cid, err := c.ConnCreate(a, hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	check("ConnCreate")
	if _, err := c.RecomputeAll(); err != nil {
		t.Fatal(err)
	}
	check("RecomputeAll")
	if err := c.ConnDestroy(cid); err != nil {
		t.Fatal(err)
	}
	check("ConnDestroy")
	if err := c.Deregister(a); err != nil {
		t.Fatal(err)
	}
	check("Deregister")
}
