// Admission control and load shedding: the controller's overload
// protection. Three mechanisms compose into an explicit degradation
// ladder instead of an unbounded backlog:
//
//  1. Token buckets (internal/ratelimit) bound the admission-path rate:
//     one ingress bucket bounds how many synchronous Eq. 2 enforcement
//     batches the controller performs per second, and a per-tenant
//     bucket bounds each tenant's connection-create rate so one noisy
//     tenant cannot starve the rest. Exhausted budgets produce a typed
//     RejectedError with a retry-after hint — a fast "no", never a
//     silent queue.
//  2. A bounded pending-enforcement queue defers port reconfiguration
//     when the ingress budget is exhausted: the connection is admitted
//     and its ports keep running on their last (cached) plans until
//     Flush batches one solve over everything pending. Entries carry
//     the enqueue time; Flush sheds entries older than QueueDeadline to
//     baseline fair share instead of solving for them.
//  3. The degradation ladder is driven by queue occupancy: below
//     CachedFrac the controller runs full synchronous Eq. 2 (rung 0);
//     between CachedFrac and FairFrac new work is deferred onto cached
//     plans (rung 1); past FairFrac arriving connections drop straight
//     to baseline per-flow fair share (rung 2) — the same degraded
//     stance the reconvergence watchdog uses — so the queue cannot grow
//     without bound even before the hard QueueLimit.
//
// The zero AdmissionConfig disables all of it, preserving the exact
// pre-admission behavior for every existing path.
package controller

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"saba/internal/ratelimit"
	"saba/internal/topology"
)

// AdmissionConfig parameterizes overload protection.
type AdmissionConfig struct {
	// Enabled turns admission control on. False (the zero value) keeps
	// the controller's original always-admit, always-synchronous behavior.
	Enabled bool
	// IngressRate/IngressBurst budget the synchronous enforcement path in
	// operations per second. 0 selects 200/50.
	IngressRate  float64
	IngressBurst float64
	// TenantRate/TenantBurst budget each tenant's connection creates.
	// 0 selects 100/25.
	TenantRate  float64
	TenantBurst float64
	// QueueLimit bounds the pending-enforcement queue. 0 selects 1024.
	QueueLimit int
	// QueueDeadline is how long a deferred enforcement may wait before
	// Flush sheds it to baseline fair share. 0 selects 250ms.
	QueueDeadline time.Duration
	// CachedFrac and FairFrac are the ladder thresholds as fractions of
	// QueueLimit occupancy: full Eq. 2 below CachedFrac, cached plans
	// below FairFrac, fair share above. 0 selects 0.5 and 0.9.
	CachedFrac float64
	FairFrac   float64
	// RetryAfter is the hint attached to rejections. 0 selects 50ms.
	RetryAfter time.Duration
	// Clock drives bucket refill, queue deadlines, and the enforcement
	// latency histogram. nil selects the wall clock; experiments inject
	// virtual time.
	Clock ratelimit.Clock
}

func (a *AdmissionConfig) fill() error {
	if !a.Enabled {
		return nil
	}
	if a.IngressRate == 0 {
		a.IngressRate = 200
	}
	if a.IngressBurst == 0 {
		a.IngressBurst = 50
	}
	if a.TenantRate == 0 {
		a.TenantRate = 100
	}
	if a.TenantBurst == 0 {
		a.TenantBurst = 25
	}
	if a.IngressRate < 0 || a.IngressBurst < 0 || a.TenantRate < 0 || a.TenantBurst < 0 {
		return fmt.Errorf("controller: negative admission rate/burst")
	}
	if a.QueueLimit == 0 {
		a.QueueLimit = 1024
	}
	if a.QueueLimit < 1 {
		return fmt.Errorf("controller: admission QueueLimit %d < 1", a.QueueLimit)
	}
	if a.QueueDeadline == 0 {
		a.QueueDeadline = 250 * time.Millisecond
	}
	if a.CachedFrac == 0 {
		a.CachedFrac = 0.5
	}
	if a.FairFrac == 0 {
		a.FairFrac = 0.9
	}
	if a.CachedFrac < 0 || a.CachedFrac > a.FairFrac || a.FairFrac > 1 {
		return fmt.Errorf("controller: ladder thresholds %g/%g out of order", a.CachedFrac, a.FairFrac)
	}
	if a.RetryAfter == 0 {
		a.RetryAfter = 50 * time.Millisecond
	}
	if a.Clock == nil {
		a.Clock = ratelimit.WallClock{}
	}
	return nil
}

// rejectedMarker is the stable wire form of a RejectedError; AsRejected
// parses it back out of a flattened RPC error string.
const rejectedMarker = "admission rejected reason="

// RejectedError is the typed fast-fail of admission control: the
// request was not executed and will not be — the caller should back off
// for RetryAfter before trying again (or route around the controller).
type RejectedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RejectedError) Error() string {
	return fmt.Sprintf("controller: %s%s retry_after_ms=%d",
		rejectedMarker, e.Reason, e.RetryAfter.Milliseconds())
}

// AsRejected extracts a RejectedError from err, looking through both
// wrapped local errors and errors flattened to strings by the RPC layer
// (a RemoteError only carries the message).
func AsRejected(err error) (*RejectedError, bool) {
	if err == nil {
		return nil, false
	}
	var re *RejectedError
	if errors.As(err, &re) {
		return re, true
	}
	s := err.Error()
	i := strings.Index(s, rejectedMarker)
	if i < 0 {
		return nil, false
	}
	var reason string
	var ms int64
	if _, serr := fmt.Sscanf(s[i+len(rejectedMarker):], "%s retry_after_ms=%d", &reason, &ms); serr != nil {
		return nil, false
	}
	return &RejectedError{Reason: reason, RetryAfter: time.Duration(ms) * time.Millisecond}, true
}

// IsInfeasible reports whether err is (or wraps, locally or across the
// RPC string flattening) the guarantee-infeasibility rejection.
func IsInfeasible(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrInfeasible) || strings.Contains(err.Error(), ErrInfeasible.Error())
}

// Degradation ladder rungs, as reported by the ladder_level gauge.
const (
	LadderFull   = 0 // synchronous full Eq. 2
	LadderCached = 1 // admit on cached plans, defer the solve
	LadderFair   = 2 // baseline per-flow fair share
)

// pendingEntry is one deferred enforcement: the unique ports of an
// admitted connection's path, stamped with the admission-clock enqueue
// time Flush checks against QueueDeadline.
type pendingEntry struct {
	ports []topology.LinkID
	enq   time.Time
}

// admissionState is the runtime half of AdmissionConfig.
type admissionState struct {
	cfg     *AdmissionConfig
	ingress *ratelimit.TokenBucket
	tenants map[TenantID]*ratelimit.TokenBucket
	pending []pendingEntry
}

// newAdmissionState builds the bucket set; nil when admission is off.
// cfg must already be filled (validated), so bucket construction cannot
// fail; a zero rate still yields a never-refilling bucket via a tiny
// positive epsilon, meaning "reject everything" as configured.
func newAdmissionState(cfg *AdmissionConfig, tel ctrlMetrics) *admissionState {
	if !cfg.Enabled {
		return nil
	}
	mk := func(rate, burst float64) *ratelimit.TokenBucket {
		if rate <= 0 {
			rate = 1e-12
		}
		if burst <= 0 {
			burst = 1e-12
		}
		b, err := ratelimit.New(rate, burst, cfg.Clock)
		if err != nil {
			panic(fmt.Sprintf("controller: admission bucket: %v", err)) // unreachable: fill validated
		}
		return b
	}
	_ = tel
	return &admissionState{
		cfg:     cfg,
		ingress: mk(cfg.IngressRate, cfg.IngressBurst),
		tenants: map[TenantID]*ratelimit.TokenBucket{},
	}
}

// tenantBucket lazily creates the per-tenant conn-create budget.
func (a *admissionState) tenantBucket(t TenantID) *ratelimit.TokenBucket {
	b := a.tenants[t]
	if b == nil {
		rate, burst := a.cfg.TenantRate, a.cfg.TenantBurst
		if rate <= 0 {
			rate = 1e-12
		}
		if burst <= 0 {
			burst = 1e-12
		}
		b, _ = ratelimit.New(rate, burst, a.cfg.Clock)
		a.tenants[t] = b
	}
	return b
}

// rejectLocked counts and constructs a typed rejection.
func (c *Centralized) rejectLocked(reason string) error {
	c.tel.admitRejects.Inc()
	return &RejectedError{Reason: reason, RetryAfter: c.cfg.Admission.RetryAfter}
}

// admitTenantLocked gates tenant registration through the ingress
// budget (a registration storm must not stall the enforcement path).
func (c *Centralized) admitTenantLocked(min float64) error {
	_ = min
	a := c.admission
	if a == nil {
		return nil
	}
	if !a.ingress.TryTake(1) {
		return c.rejectLocked("ingress")
	}
	return nil
}

// admitConnLocked gates a connection create through its tenant's
// budget. Untenanted apps skip the tenant bucket (they have no
// guarantee to protect and are already bounded by the ingress ladder).
func (c *Centralized) admitConnLocked(tenant TenantID) error {
	a := c.admission
	if a == nil || tenant == 0 {
		return nil
	}
	if !a.tenantBucket(tenant).TryTake(1) {
		return c.rejectLocked("tenant_rate")
	}
	return nil
}

// ladderLevelLocked derives the current rung from queue occupancy.
func (c *Centralized) ladderLevelLocked() int {
	a := c.admission
	if a == nil {
		return LadderFull
	}
	occ := float64(len(a.pending)) / float64(a.cfg.QueueLimit)
	switch {
	case occ >= a.cfg.FairFrac:
		return LadderFair
	case occ >= a.cfg.CachedFrac:
		return LadderCached
	default:
		return LadderFull
	}
}

// LadderLevel reports the controller's current degradation rung.
func (c *Centralized) LadderLevel() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ladderLevelLocked()
}

// PendingEnforcements reports the deferred-enforcement queue depth.
func (c *Centralized) PendingEnforcements() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.admission == nil {
		return 0
	}
	return len(c.admission.pending)
}

// enforcePathAdmittedLocked enforces an admitted connection's path
// according to the degradation ladder. Never returns a rejection — the
// connection is already admitted; only rung 0's synchronous enforcement
// can fail (and then the caller rolls back as before).
func (c *Centralized) enforcePathAdmittedLocked(path []topology.LinkID) error {
	a := c.admission
	if a == nil {
		return c.enforcePortsLocked(path)
	}
	level := c.ladderLevelLocked()
	if level == LadderFull && !a.ingress.TryTake(1) {
		// Enforcement budget exhausted: step down one rung.
		level = LadderCached
	}
	c.tel.ladderLevel.Set(float64(level))
	switch level {
	case LadderFull:
		if err := c.enforcePortsLocked(path); err != nil {
			return err
		}
		c.tel.enforceLatency.Observe(c.lastCalc.Seconds())
		return nil
	case LadderCached:
		if len(a.pending) >= a.cfg.QueueLimit {
			// The hard bound (normally unreachable below FairFrac):
			// shed rather than grow without limit.
			c.shedPortsLocked(uniquePorts(path))
			return nil
		}
		a.pending = append(a.pending, pendingEntry{
			ports: uniquePorts(path),
			enq:   a.cfg.Clock.Now(),
		})
		c.tel.admitQueued.Inc()
		c.tel.pendingDepth.Set(float64(len(a.pending)))
		return nil
	default: // LadderFair
		c.shedPortsLocked(uniquePorts(path))
		return nil
	}
}

// shedPortsLocked drops ports to baseline per-flow fair share — the
// ladder's last rung — and clears their enforcement memos so the next
// real enforcement cannot be skipped against a stale "already live"
// signature.
func (c *Centralized) shedPortsLocked(ports []topology.LinkID) {
	for _, l := range ports {
		ps := c.ports[l]
		if ps == nil {
			continue
		}
		deconfigure(c.cfg.Enforcer, l)
		ps.lastKey = ps.lastKey[:0]
		ps.lastEpoch = 0
	}
	c.tel.admitSheds.Inc()
	c.tel.enforceLatency.Observe(0)
}

// Flush drains the pending-enforcement queue: entries younger than
// QueueDeadline are batched into one Eq. 2 enforcement pass; older
// entries are shed to baseline fair share. Call it periodically (the
// open-loop experiments tick it on the virtual clock) or after a storm
// subsides. The enforcement-latency histogram is fed the request→drain
// age of every entry, shed or served.
func (c *Centralized) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushPendingLocked()
}

func (c *Centralized) flushPendingLocked() error {
	a := c.admission
	if a == nil || len(a.pending) == 0 {
		return nil
	}
	now := a.cfg.Clock.Now()
	seen := map[topology.LinkID]bool{}
	var due []topology.LinkID
	sheds := 0
	for _, e := range a.pending {
		age := now.Sub(e.enq)
		c.tel.enforceLatency.Observe(age.Seconds())
		if age > a.cfg.QueueDeadline {
			for _, l := range e.ports {
				if c.ports[l] != nil && !seen[l] {
					deconfigure(c.cfg.Enforcer, l)
					c.ports[l].lastKey = c.ports[l].lastKey[:0]
					c.ports[l].lastEpoch = 0
				}
			}
			sheds++
			continue
		}
		for _, l := range e.ports {
			if !seen[l] {
				seen[l] = true
				due = append(due, l)
			}
		}
	}
	a.pending = a.pending[:0]
	if sheds > 0 {
		c.tel.admitSheds.Add(uint64(sheds))
	}
	c.tel.pendingDepth.Set(0)
	c.tel.ladderLevel.Set(float64(c.ladderLevelLocked()))
	if len(due) == 0 {
		return nil
	}
	sortLinkIDs(due)
	return c.enforceBatchLocked(due)
}
