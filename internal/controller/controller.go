// Package controller implements Saba's bandwidth controller (paper §5):
// it tracks registered applications and their connections, detects each
// connection's switch path from the forwarding tables, assigns
// applications to Priority Levels with k-means over their sensitivity
// coefficients, maps PLs to switch queues with the precomputed clustering
// hierarchy, solves Eq. 2 per switch output port, and pushes the
// resulting queue weights to the switches through an Enforcer.
//
// Both deployment models of §5.4 are provided: Centralized re-clusters on
// every registration change and holds all state; Distributed shards
// switch ownership across controller instances that share an offline
// mapping database.
package controller

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"saba/internal/cluster"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/solver"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// ctrlMetrics holds the controller instruments (resolved once; the
// enforcement hot path touches only atomics). Both deployments report
// the same inventory so dashboards work across §5.4 variants.
type ctrlMetrics struct {
	solve            *telemetry.Histogram // Eq. 2 full-recompute wall time (Fig. 12)
	ports            *telemetry.Counter   // port configurations pushed
	reclusters       *telemetry.Counter   // app→PL k-means reruns
	rollbacks        *telemetry.Counter   // transactional conn op unwinds
	registers        *telemetry.Counter
	deregisters      *telemetry.Counter
	connCreates      *telemetry.Counter
	connDestroys     *telemetry.Counter
	failovers        *telemetry.Counter // shard failovers (mesh only)
	solHits          *telemetry.Counter // cross-port solution cache hits
	solMisses        *telemetry.Counter // cross-port solution cache misses
	reconverges      *telemetry.Counter // topology-change reconvergence passes
	reconvDegr       *telemetry.Counter // reconvergences past deadline → fair-share
	quarantines      *telemetry.Counter // apps quarantined for profile drift
	unquarants       *telemetry.Counter // apps released from quarantine
	profileRefits    *telemetry.Counter // learned models promoted (learner.go)
	refitRejected    *telemetry.Counter // refits failing validation or the R² bar
	profileRollbacks *telemetry.Counter // promoted models rolled back in probation
	floorLifts       *telemetry.Counter // tenant guarantee water-fill interventions
	admitRejects     *telemetry.Counter // admission-control rejections (admission.go)
	admitQueued      *telemetry.Counter // enforcements deferred to the pending queue
	admitSheds       *telemetry.Counter // pending enforcements shed past deadline
	apps             *telemetry.Gauge
	conns            *telemetry.Gauge
	quarApps         *telemetry.Gauge // apps currently quarantined
	tenants          *telemetry.Gauge
	pendingDepth     *telemetry.Gauge     // admission pending-queue occupancy
	ladderLevel      *telemetry.Gauge     // current degradation-ladder rung (0/1/2)
	enforceLatency   *telemetry.Histogram // request→enforced latency (admission clock)
}

func newCtrlMetrics(reg *telemetry.Registry, deploy string) ctrlMetrics {
	l := func(name string) string { return telemetry.Label(name, "deploy", deploy) }
	return ctrlMetrics{
		solve:            reg.Histogram(l("controller.solve_seconds")),
		ports:            reg.Counter(l("controller.ports_configured")),
		reclusters:       reg.Counter(l("controller.reclusters")),
		rollbacks:        reg.Counter(l("controller.rollbacks")),
		registers:        reg.Counter(l("controller.registers")),
		deregisters:      reg.Counter(l("controller.deregisters")),
		connCreates:      reg.Counter(l("controller.conn_creates")),
		connDestroys:     reg.Counter(l("controller.conn_destroys")),
		failovers:        reg.Counter(l("controller.failovers")),
		solHits:          reg.Counter(l("controller.solcache_hits")),
		solMisses:        reg.Counter(l("controller.solcache_misses")),
		reconverges:      reg.Counter(l("controller.reconverges")),
		reconvDegr:       reg.Counter(l("controller.reconverge_degraded")),
		quarantines:      reg.Counter(l("controller.quarantines")),
		unquarants:       reg.Counter(l("controller.unquarantines")),
		profileRefits:    reg.Counter(l("controller.profile_refits")),
		refitRejected:    reg.Counter(l("controller.refit_rejected")),
		profileRollbacks: reg.Counter(l("controller.profile_rollbacks")),
		floorLifts:       reg.Counter(l("controller.tenant_floor_lifts")),
		admitRejects:     reg.Counter(l("controller.admission_rejects")),
		admitQueued:      reg.Counter(l("controller.admission_queued")),
		admitSheds:       reg.Counter(l("controller.admission_sheds")),
		apps:             reg.Gauge(l("controller.apps")),
		conns:            reg.Gauge(l("controller.conns")),
		quarApps:         reg.Gauge(l("controller.quarantined_apps")),
		tenants:          reg.Gauge(l("controller.tenants")),
		pendingDepth:     reg.Gauge(l("controller.admission_pending")),
		ladderLevel:      reg.Gauge(l("controller.ladder_level")),
		enforceLatency:   reg.Histogram(l("controller.enforce_latency_seconds")),
	}
}

// AppID identifies a registered application (matches the data plane's
// netsim.AppID space so flows can carry it).
type AppID = netsim.AppID

// ConnID identifies a tracked connection.
type ConnID int64

// Enforcer pushes queue configurations to switch output ports. The fluid
// simulator's WFQ allocator implements it; a hardware deployment would
// program SL→VL tables here. Controllers memoize solutions across ports,
// so the cfg passed to Configure may be shared between calls: an
// implementation must copy what it retains and never mutate cfg
// (netsim.WFQ deep-copies).
type Enforcer interface {
	Configure(port topology.LinkID, cfg netsim.PortConfig) error
}

// Deconfigurer is the optional enforcer extension for clearing a port's
// configuration when its last Saba connection leaves, reverting it to
// baseline per-flow fairness (netsim.WFQ implements it). Controllers
// call it best-effort; an enforcer without it just keeps the stale
// (harmless) last config.
type Deconfigurer interface {
	Deconfigure(port topology.LinkID)
}

// deconfigure clears a port's config if the enforcer supports it.
func deconfigure(e Enforcer, port topology.LinkID) {
	if d, ok := e.(Deconfigurer); ok {
		d.Deconfigure(port)
	}
}

// Config parameterizes a controller.
type Config struct {
	Topology *topology.Topology
	Table    *profiler.Table // sensitivity table from the profiler
	Enforcer Enforcer
	// PLs is the number of priority levels the fabric supports
	// (InfiniBand: 16 service levels). 0 selects 16.
	PLs int
	// CSaba is the fraction of link capacity reserved for Saba-compliant
	// applications (paper's C_saba; the evaluation uses 1.0). 0 selects 1.
	CSaba float64
	// MinShare is the floor weight any application keeps (no starvation).
	// 0 lets the optimizer choose min(5%, half the fair share) — the
	// profiled-domain floor.
	MinShare float64
	// Seed makes k-means seeding deterministic.
	Seed int64
	// DefaultCoeffs is the sensitivity model assumed for applications
	// missing from the table (an average-sensitivity profile). nil selects
	// a moderate default.
	DefaultCoeffs []float64
	// PerPortWeights selects the paper's literal per-port Eq. 2 (weights
	// solved over only the applications present at each port) instead of
	// the default hop-consistent global solve. See enforcePortLocked.
	PerPortWeights bool
	// Workers bounds the worker pool that fans per-port solves out
	// during batch enforcement. 0 selects GOMAXPROCS; 1 forces the
	// serial path. Results are bit-identical at any setting.
	Workers int
	// NoSolutionCache disables the cross-port solution memo, forcing a
	// fresh Eq. 2 solve and PL→queue mapping per port. For A/B
	// benchmarking; determinism is unaffected.
	NoSolutionCache bool
	// ReconvergeDeadline bounds a topology-change reconvergence pass
	// (TopologyChanged). If the pass errors or overruns the deadline, the
	// controller degrades every configured port to baseline fair-share —
	// the port-level analogue of PR 1's control-plane degradation — and
	// recovers on the next successful enforcement. 0 disables the
	// watchdog, which also keeps the simulation paths free of wall-clock
	// reads.
	ReconvergeDeadline time.Duration
	// GuaranteeCap bounds the sum of tenant guaranteed minimums the
	// controller will admit, as a fraction of the Saba budget. 0 selects 1
	// (the full budget); values in (0,1) hold back headroom so the Eq. 2
	// solve keeps slack to optimize inside even when every guarantee is
	// claimed. RegisterTenant returns ErrInfeasible past the cap.
	GuaranteeCap float64
	// Admission parameterizes overload protection (see admission.go). The
	// zero value disables it: no rate limiting, no pending queue, every
	// enforcement synchronous — the pre-admission behavior.
	Admission AdmissionConfig
	// Drift parameterizes the profile-drift quarantine (see quarantine.go).
	Drift DriftConfig
	// Telemetry is the registry the controller reports into. nil selects
	// telemetry.Default.
	Telemetry *telemetry.Registry
}

func (c *Config) fill() error {
	if c.Topology == nil {
		return errors.New("controller: nil topology")
	}
	if c.Table == nil {
		return errors.New("controller: nil sensitivity table")
	}
	if c.Enforcer == nil {
		return errors.New("controller: nil enforcer")
	}
	if c.PLs == 0 {
		c.PLs = 16
	}
	if c.PLs < 1 {
		return fmt.Errorf("controller: invalid PL count %d", c.PLs)
	}
	if c.CSaba == 0 {
		c.CSaba = 1
	}
	if c.CSaba <= 0 || c.CSaba > 1 {
		return fmt.Errorf("controller: CSaba %g out of (0,1]", c.CSaba)
	}
	if c.DefaultCoeffs == nil {
		// A moderate sensitivity: slowdown 2x at 25% bandwidth.
		c.DefaultCoeffs = []float64{2.4, -1.87, 0.47}
	}
	if c.GuaranteeCap == 0 {
		c.GuaranteeCap = 1
	}
	if c.GuaranteeCap < 0 || c.GuaranteeCap > 1 {
		return fmt.Errorf("controller: GuaranteeCap %g out of (0,1]", c.GuaranteeCap)
	}
	if err := c.Admission.fill(); err != nil {
		return err
	}
	c.Drift.fill()
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Default
	}
	return nil
}

// appState tracks one registered application.
type appState struct {
	id     AppID
	name   string
	coeffs []float64
	pl     int
	conns  int
	tenant TenantID // 0 = untenanted (no guarantee floor)
}

// connState tracks one connection.
type connState struct {
	app  AppID
	src  topology.NodeID
	dst  topology.NodeID
	path []topology.LinkID
}

// portState tracks the applications whose connections cross a port,
// plus a memo of the last successfully enforced input signature: the
// port's sorted app set and the clustering epoch it was computed under.
// A re-enforcement with the same signature is a no-op by construction
// (the Eq. 2 weights and PL→queue mapping depend on nothing else), so
// enforcePortLocked skips it outright.
type portState struct {
	appConns  map[AppID]int // connection count per app
	lastKey   []byte        // appSetKey of the last enforced membership
	lastEpoch uint64        // solEpoch of the last enforcement
}

// Centralized is the centralized controller of §5.4: a single instance
// holding global state, re-clustering on registration changes and
// recomputing weights on connection changes.
type Centralized struct {
	mu    sync.Mutex
	cfg   Config
	apps  map[AppID]*appState
	conns map[ConnID]connState
	ports map[topology.LinkID]*portState

	hier      *cluster.Hierarchy
	plPoints  []cluster.Point // centroid per PL
	minQueues int

	nextApp  AppID
	nextConn ConnID
	rng      *rand.Rand

	// tenants is the guarantee layer above apps (tenant.go): each tenant
	// carries a guaranteed minimum share that solveWeights water-fills
	// into the Eq. 2 output. tenantByName makes registration idempotent —
	// the mechanism that keeps a crash-replayed registration storm from
	// double-counting guarantees.
	tenants      map[TenantID]*tenantState
	tenantByName map[string]TenantID
	nextTenant   TenantID

	// admission is the overload-protection state (admission.go); nil when
	// disabled.
	admission *admissionState

	// sols memoizes complete port configurations (Eq. 2 weights plus
	// PL→queue mapping) per (application set, queue count): many ports
	// carry the same mix of applications, and the configuration depends
	// on nothing else. globalW caches the global solve. Both are
	// invalidated whenever the registered set or PL assignment changes.
	sols    *solutionCache
	globalW map[AppID]float64
	// solEpoch versions the global inputs of a port enforcement (PL
	// assignment, hierarchy, and — under the global strategy — the
	// registered set). Ports remember the epoch they were enforced under
	// (see portState) and sols discards entries from other epochs.
	solEpoch uint64

	// lastTopoEpoch is the topology liveness epoch the last enforcement
	// ran under; a mismatch means links failed or recovered since, so
	// every memoized plan (port memos and the solution cache) is suspect
	// and solEpoch is bumped before any plan is reused.
	lastTopoEpoch uint64
	// degraded records that the last reconvergence overran its deadline
	// (or failed) and the fabric was dropped to baseline fair-share.
	degraded bool

	// drift tracks per-app residuals between observed slowdowns and the
	// polynomial model, driving quarantine (see quarantine.go). Lazily
	// allocated: nil until the first observation.
	drift map[AppID]*driftState

	// lastCalc is how long the most recent full weight recomputation
	// took; the same durations feed tel.solve, whose histogram is the
	// durable Fig. 12 record (LastCalcDuration only sees the latest).
	lastCalc time.Duration
	tel      ctrlMetrics
}

// NewCentralized creates a centralized controller.
func NewCentralized(cfg Config) (*Centralized, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	minQ := 0
	for _, n := range cfg.Topology.Nodes() {
		if n.Queues > 0 && (minQ == 0 || n.Queues < minQ) {
			minQ = n.Queues
		}
	}
	if minQ == 0 {
		minQ = 1
	}
	tel := newCtrlMetrics(cfg.Telemetry, "centralized")
	c := &Centralized{
		cfg:          cfg,
		apps:         map[AppID]*appState{},
		conns:        map[ConnID]connState{},
		ports:        map[topology.LinkID]*portState{},
		tenants:      map[TenantID]*tenantState{},
		tenantByName: map[string]TenantID{},
		minQueues:    minQ,
		nextApp:      1,
		nextConn:     1,
		nextTenant:   1,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		sols:         newSolutionCache(tel.solHits, tel.solMisses),
		tel:          tel,
	}
	c.admission = newAdmissionState(&c.cfg.Admission, tel)
	return c, nil
}

// Errors returned by controller operations.
var (
	ErrUnknownApp  = errors.New("controller: unknown application")
	ErrUnknownConn = errors.New("controller: unknown connection")
	ErrHasConns    = errors.New("controller: application still has connections")
)

// Register admits an application (paper Fig. 7 step ①-③): it looks up the
// sensitivity model, re-runs the application→PL clustering, and returns
// the assigned app ID and PL.
func (c *Centralized) Register(name string) (AppID, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.registerLocked(name, 0)
}

// registerLocked admits one application, optionally under a tenant (0 =
// untenanted), re-clusters, and re-enforces. Caller holds mu.
func (c *Centralized) registerLocked(name string, tenant TenantID) (AppID, int, error) {
	coeffs := c.cfg.DefaultCoeffs
	if e, ok := c.cfg.Table.Get(name); ok {
		coeffs = e.Coeffs
	}
	id := c.nextApp
	c.nextApp++
	c.apps[id] = &appState{id: id, name: name, coeffs: coeffs, tenant: tenant}
	if tenant != 0 {
		c.tenants[tenant].apps++
	}
	if err := c.reclusterLocked(); err != nil {
		delete(c.apps, id)
		if tenant != 0 {
			c.tenants[tenant].apps--
		}
		return 0, 0, err
	}
	if err := c.enforceAllLocked(); err != nil {
		return 0, 0, err
	}
	c.tel.registers.Inc()
	c.tel.apps.Set(float64(len(c.apps)))
	return id, c.apps[id].pl, nil
}

// RegisterBatch admits many applications with a single re-clustering
// pass — the bulk-load path used when a controller boots against an
// already-running cluster, and by the overhead study (Fig. 12), where
// registering hundreds of applications one by one would measure k-means
// churn rather than allocation time.
func (c *Centralized) RegisterBatch(names []string) ([]AppID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]AppID, len(names))
	for i, name := range names {
		coeffs := c.cfg.DefaultCoeffs
		if e, ok := c.cfg.Table.Get(name); ok {
			coeffs = e.Coeffs
		}
		id := c.nextApp
		c.nextApp++
		c.apps[id] = &appState{id: id, name: name, coeffs: coeffs}
		ids[i] = id
	}
	if err := c.reclusterLocked(); err != nil {
		for _, id := range ids {
			delete(c.apps, id)
		}
		return nil, err
	}
	c.tel.registers.Add(uint64(len(ids)))
	c.tel.apps.Set(float64(len(c.apps)))
	return ids, c.enforceAllLocked()
}

// PreloadConn records a connection without recomputing any port weights;
// callers follow up with RecomputeAll. It exists for bulk scenario
// construction (the Fig. 12 overhead study loads tens of thousands of
// connections before timing one full recomputation).
func (c *Centralized) PreloadConn(id AppID, src, dst topology.NodeID) (ConnID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	path, err := c.cfg.Topology.Route(src, dst)
	if err != nil {
		return 0, fmt.Errorf("controller: path detection: %w", err)
	}
	cid := c.nextConn
	c.nextConn++
	c.conns[cid] = connState{app: id, src: src, dst: dst, path: path}
	app.conns++
	c.addPathLocked(id, path)
	return cid, nil
}

// Deregister removes an application with no remaining connections.
// Deliberately, no re-clustering happens here: renumbering PLs under
// applications whose live connections already carry their Service Level
// would desynchronize packets from the switch tables. The departed app's
// weight is reclaimed by re-enforcing every port; the next registration
// re-clusters.
func (c *Centralized) Deregister(id AppID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	if app.conns > 0 {
		return fmt.Errorf("%w: %d has %d", ErrHasConns, id, app.conns)
	}
	delete(c.apps, id)
	if app.tenant != 0 {
		if t := c.tenants[app.tenant]; t != nil {
			t.apps--
		}
	}
	if c.drift[id] != nil {
		delete(c.drift, id)
		c.updateQuarGaugeLocked()
	}
	if len(c.apps) == 0 {
		c.hier = nil
		c.plPoints = nil
	}
	c.globalW = nil
	if !c.cfg.PerPortWeights {
		// The global solve spans every registered app, so departures
		// change the surviving apps' weights at unchanged ports. The
		// epoch bump also invalidates the solution cache. (Under
		// PerPortWeights neither holds: a departed app had no
		// connections, so no port's app set — and no cache key —
		// references it, and per-set solutions stay valid.)
		c.solEpoch++
	}
	c.tel.deregisters.Inc()
	c.tel.apps.Set(float64(len(c.apps)))
	return c.enforceAllLocked()
}

// PL returns the current priority level of an application.
func (c *Centralized) PL(id AppID) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	return app.pl, nil
}

// ConnCreate records a connection (Fig. 7 steps ④-⑦): it detects the
// path from the forwarding tables and reconfigures every port on it.
// The operation is transactional: if any port's enforcement fails, the
// port counters are rolled back, the touched ports are re-enforced with
// their pre-call membership, and no connection state is committed.
// With admission control enabled the create is first gated through the
// tenant's rate budget (typed RejectedError on exhaustion) and the
// enforcement follows the degradation ladder (admission.go).
func (c *Centralized) ConnCreate(id AppID, src, dst topology.NodeID) (ConnID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	if err := c.admitConnLocked(app.tenant); err != nil {
		return 0, err
	}
	path, err := c.cfg.Topology.Route(src, dst)
	if err != nil {
		return 0, fmt.Errorf("controller: path detection: %w", err)
	}
	c.addPathLocked(id, path)
	if err := c.enforcePathAdmittedLocked(path); err != nil {
		c.removePathLocked(id, path)
		c.reenforceBestEffortLocked(path)
		c.tel.rollbacks.Inc()
		return 0, err
	}
	cid := c.nextConn
	c.nextConn++
	c.conns[cid] = connState{app: id, src: src, dst: dst, path: path}
	app.conns++
	c.tel.connCreates.Inc()
	c.tel.conns.Set(float64(len(c.conns)))
	return cid, nil
}

// ConnDestroy removes a connection (Fig. 7 steps ⑧-⑪) and reallocates the
// ports it crossed. On an enforcement failure the port counters are
// restored and the connection stays tracked.
func (c *Centralized) ConnDestroy(cid ConnID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, ok := c.conns[cid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownConn, cid)
	}
	c.removePathLocked(conn.app, conn.path)
	if err := c.enforcePathAdmittedLocked(conn.path); err != nil {
		c.addPathLocked(conn.app, conn.path)
		c.reenforceBestEffortLocked(conn.path)
		c.tel.rollbacks.Inc()
		return err
	}
	delete(c.conns, cid)
	if app, ok := c.apps[conn.app]; ok {
		app.conns--
	}
	c.tel.connDestroys.Inc()
	c.tel.conns.Set(float64(len(c.conns)))
	return nil
}

// addPathLocked increments the per-port membership of an app's
// connection along a path.
func (c *Centralized) addPathLocked(id AppID, path []topology.LinkID) {
	for _, l := range path {
		ps := c.ports[l]
		if ps == nil {
			ps = &portState{appConns: map[AppID]int{}}
			c.ports[l] = ps
		}
		ps.appConns[id]++
	}
}

// removePathLocked undoes addPathLocked, deconfiguring emptied ports.
func (c *Centralized) removePathLocked(id AppID, path []topology.LinkID) {
	for _, l := range path {
		ps := c.ports[l]
		if ps == nil {
			continue
		}
		ps.appConns[id]--
		if ps.appConns[id] <= 0 {
			delete(ps.appConns, id)
		}
		if len(ps.appConns) == 0 {
			delete(c.ports, l)
			deconfigure(c.cfg.Enforcer, l)
		}
	}
}

// reenforceBestEffortLocked re-pushes the current (rolled-back) state of
// a path's ports, ignoring enforcement errors.
func (c *Centralized) reenforceBestEffortLocked(path []topology.LinkID) {
	for _, l := range path {
		if c.ports[l] != nil {
			_ = c.enforcePortLocked(l)
		}
	}
}

// Apps returns the registered application count.
func (c *Centralized) Apps() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.apps)
}

// Conns returns the tracked connection count.
func (c *Centralized) Conns() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.conns)
}

// LastCalcDuration reports the wall-clock time of the most recent full
// weight recomputation (Fig. 12's metric).
func (c *Centralized) LastCalcDuration() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastCalc
}

// RecomputeAll recomputes and enforces the weights of every active port,
// returning the wall-clock calculation time.
func (c *Centralized) RecomputeAll() (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.solEpoch++ // force: bypass every port's enforcement memo
	if err := c.enforceAllLocked(); err != nil {
		return 0, err
	}
	return c.lastCalc, nil
}

// reclusterLocked re-runs the application→PL k-means and rebuilds the
// PL hierarchy (paper §5.3). Caller holds mu.
func (c *Centralized) reclusterLocked() error {
	c.globalW = nil
	if len(c.apps) == 0 {
		return nil
	}
	c.tel.reclusters.Inc()
	ids := make([]AppID, 0, len(c.apps))
	for id := range c.apps {
		ids = append(ids, id)
	}
	// Deterministic order for reproducible clustering.
	sortAppIDs(ids)
	dim := 0
	for _, id := range ids {
		if len(c.apps[id].coeffs) > dim {
			dim = len(c.apps[id].coeffs)
		}
	}
	points := make([]cluster.Point, len(ids))
	for i, id := range ids {
		p := make(cluster.Point, dim)
		copy(p, c.apps[id].coeffs)
		points[i] = p
	}
	res, err := cluster.KMeans(points, c.cfg.PLs, c.rng)
	if err != nil {
		return fmt.Errorf("controller: app→PL clustering: %w", err)
	}
	for i, id := range ids {
		c.apps[id].pl = res.Assignment[i]
	}
	c.plPoints = res.Centroids
	hier, err := cluster.BuildHierarchy(res.Centroids, c.minQueues)
	if err != nil {
		return fmt.Errorf("controller: PL hierarchy: %w", err)
	}
	c.hier = hier
	c.solEpoch++
	return nil
}

// enforceAllLocked recomputes every active port (concurrently when the
// batch is large enough), timing the whole batch once into both
// LastCalcDuration and the solve-time histogram (Fig. 12).
func (c *Centralized) enforceAllLocked() error {
	ports := make([]topology.LinkID, 0, len(c.ports))
	for l := range c.ports {
		ports = append(ports, l)
	}
	sortLinkIDs(ports)
	return c.enforceBatchLocked(ports)
}

// enforcePortsLocked recomputes the unique ports of a path as one timed
// batch.
func (c *Centralized) enforcePortsLocked(path []topology.LinkID) error {
	return c.enforceBatchLocked(uniquePorts(path))
}

// enforceBatchLocked is the single enforcement entry point: it computes
// a plan per port — fanned out across the worker pool — and applies the
// plans through the Enforcer in ascending port order. Exactly one
// solve-histogram sample is recorded per batch, whoever the caller is;
// per-port paths (rollback re-enforcement) go through enforcePortLocked
// and record nothing.
func (c *Centralized) enforceBatchLocked(ports []topology.LinkID) error {
	c.syncTopoEpochLocked()
	start := time.Now()
	defer func() {
		c.lastCalc = time.Since(start)
		c.tel.solve.Observe(c.lastCalc.Seconds())
	}()
	plans, err := c.computePlansLocked(ports)
	if err != nil {
		return err
	}
	for i := range plans {
		if err := c.applyPlanLocked(&plans[i]); err != nil {
			return err
		}
	}
	return nil
}

// computePlansLocked computes every port's configuration without
// touching the enforcer or any port memo. The per-port computations
// only read state that is fixed for the duration of the batch (the app
// registry, PL assignment, hierarchy, port memberships and the global
// solve), so they run concurrently on the worker pool; see parallel.go
// for the determinism argument.
func (c *Centralized) computePlansLocked(ports []topology.LinkID) ([]portPlan, error) {
	if len(ports) == 0 || c.hier == nil {
		return nil, nil
	}
	if !c.cfg.PerPortWeights && len(c.apps) > 0 {
		// The global solve is shared by every port: do it once, up
		// front, so workers only read the result.
		if _, err := c.globalWeightsLocked(); err != nil {
			return nil, err
		}
	}
	return computePlans(len(ports), resolveWorkers(c.cfg.Workers),
		func(i int, sc *planScratch) (portPlan, error) {
			return c.computePortPlan(ports[i], sc)
		})
}

// computePortPlan computes one port's target configuration. It is
// read-only with respect to controller state and safe to call from
// several workers at once (sc is per-worker scratch).
func (c *Centralized) computePortPlan(port topology.LinkID, sc *planScratch) (portPlan, error) {
	ps := c.ports[port]
	if ps == nil || len(ps.appConns) == 0 || c.hier == nil {
		return portPlan{port: port, skip: true}, nil
	}
	// Applications with flows through this port, in deterministic order.
	ids := sc.ids[:0]
	for id := range ps.appConns {
		ids = append(ids, id)
	}
	sortAppIDs(ids)
	sc.ids = ids
	key := appendAppSetKey(sc.key[:0], ids)
	if ps.lastEpoch == c.solEpoch && string(ps.lastKey) == string(key) {
		sc.key = key
		return portPlan{port: port, skip: true}, nil // same apps, same clustering: already live
	}
	keyLen := len(key)
	queues := c.cfg.Topology.QueuesAt(port)
	if queues < 1 {
		queues = 1
	}
	var cfg netsim.PortConfig
	var err error
	if c.cfg.NoSolutionCache {
		cfg, err = c.buildPortConfig(ids, port, queues)
	} else {
		// Cache key: app set + queue count (ports differing only in
		// queue count need different mappings).
		key = appendVarint(key, uint64(queues))
		cfg, err = c.sols.get(c.solEpoch, key, func() (netsim.PortConfig, error) {
			return c.buildPortConfig(ids, port, queues)
		})
	}
	sc.key = key
	if err != nil {
		return portPlan{}, err
	}
	return portPlan{
		port: port,
		cfg:  cfg,
		key:  append([]byte(nil), key[:keyLen]...),
	}, nil
}

// buildPortConfig computes the Eq. 2 weights and PL→queue mapping for a
// (sorted) application set at a port (paper §5.1-§5.3).
func (c *Centralized) buildPortConfig(ids []AppID, port topology.LinkID, queues int) (netsim.PortConfig, error) {
	weights, err := c.weightsFor(ids, port)
	if err != nil {
		return netsim.PortConfig{}, err
	}

	// PL→queue mapping for the PLs present at this port.
	present := map[int]bool{}
	for _, id := range ids {
		present[c.apps[id].pl] = true
	}
	presentPLs := make([]int, 0, len(present))
	for pl := range present {
		presentPLs = append(presentPLs, pl)
	}
	sortInts(presentPLs)
	clusters, errMap := c.hier.MapToQueues(presentPLs, queues)
	if errMap != nil {
		return netsim.PortConfig{}, fmt.Errorf("controller: PL→queue on port %d: %w", port, errMap)
	}

	// Queue weight = Σ of the Eq. 2 weights of the applications mapped to
	// it (§5.3.2).
	plToQueue := map[int]int{}
	for q, cl := range clusters {
		for _, pl := range cl.Members {
			plToQueue[pl] = q
		}
	}
	qWeights := make([]float64, len(clusters))
	for i, id := range ids {
		q, ok := plToQueue[c.apps[id].pl]
		if !ok {
			// PL not in the mapping (cannot happen: built from present set)
			continue
		}
		qWeights[q] += weights[i]
	}
	return netsim.PortConfig{
		Weights:      qWeights,
		PLQueue:      plToQueue,
		DefaultQueue: defaultQueue(qWeights),
	}, nil
}

// applyPlanLocked pushes a computed plan to the enforcer and updates the
// port's enforcement memo. Called serially, in ascending port order.
func (c *Centralized) applyPlanLocked(p *portPlan) error {
	if p.skip {
		return nil
	}
	ps := c.ports[p.port]
	if ps == nil {
		return nil
	}
	if err := c.cfg.Enforcer.Configure(p.port, p.cfg); err != nil {
		return err
	}
	ps.lastKey = append(ps.lastKey[:0], p.key...)
	ps.lastEpoch = c.solEpoch
	c.tel.ports.Inc()
	return nil
}

// enforcePortLocked recomputes and pushes a single port outside any
// timed batch — the rollback re-enforcement path.
func (c *Centralized) enforcePortLocked(port topology.LinkID) error {
	c.syncTopoEpochLocked()
	var sc planScratch
	plan, err := c.computePortPlan(port, &sc)
	if err != nil {
		return err
	}
	return c.applyPlanLocked(&plan)
}

// syncTopoEpochLocked invalidates every memoized plan when the topology's
// liveness epoch moved since the last enforcement: a link failure or
// recovery can change a port's capacity context or queue set, so a stale
// cached (app set, queue count) plan must never be applied afterwards.
// With a static topology the epoch never moves and this is a no-op.
func (c *Centralized) syncTopoEpochLocked() {
	if ep := c.cfg.Topology.Epoch(); ep != c.lastTopoEpoch {
		c.lastTopoEpoch = ep
		c.solEpoch++
	}
}

// weightsFor returns the Eq. 2 weights for the given (sorted) apps at a
// port. Two weighting strategies are supported:
//
//   - Global (default): Eq. 2 is solved once over every registered
//     application, and each port's queues carry the global weights of the
//     applications present there. Flows cross several switches, and a
//     flow's rate is governed by its *minimum* share along the path;
//     solving each port in isolation gives the same application different
//     relative weights at different hops, and the per-hop minima
//     systematically under-serve everyone. Hop-consistent ratios avoid
//     that composition loss.
//   - PerPortWeights: the paper's literal formulation — Eq. 2 over only
//     the applications whose connections cross this port. This bypasses
//     the shared global solve entirely; cross-port sharing then comes
//     from the solution cache alone.
func (c *Centralized) weightsFor(ids []AppID, port topology.LinkID) ([]float64, error) {
	if !c.cfg.PerPortWeights {
		// The batch precomputed the global solve; select the present
		// apps' weights (ratios preserved; WFQ normalizes per port).
		global := c.globalW
		if global == nil {
			return nil, errors.New("controller: global solve missing (batch precompute skipped)")
		}
		weights := make([]float64, len(ids))
		for i, id := range ids {
			weights[i] = global[id]
		}
		return weights, nil
	}
	weights, err := c.solveWeights(ids)
	if err != nil {
		return nil, fmt.Errorf("controller: Eq.2 on port %d: %w", port, err)
	}
	return weights, nil
}

// solveWeights runs Eq. 2 over the (sorted) apps, pinning quarantined
// applications at the plain fair share CSaba/len(ids) and solving the
// model-driven optimization over the remainder with the leftover budget.
// Tenant guarantee floors are then water-filled into the result
// (tenant.go); with nothing quarantined and no tenants (the steady
// state) this is exactly the original solve. Read-only with respect to
// controller state; safe from plan workers.
func (c *Centralized) solveWeights(ids []AppID) ([]float64, error) {
	weights, err := c.solveModelWeights(ids)
	if err != nil {
		return nil, err
	}
	return c.applyTenantFloors(ids, weights), nil
}

// solveModelWeights is the pre-tenant Eq. 2 solve with quarantine
// pinning.
func (c *Centralized) solveModelWeights(ids []AppID) ([]float64, error) {
	fair := c.cfg.CSaba / float64(len(ids))
	nq := 0
	for _, id := range ids {
		if ds := c.drift[id]; ds != nil && ds.quarantined {
			nq++
		}
	}
	if nq == len(ids) {
		weights := make([]float64, len(ids))
		for i := range weights {
			weights[i] = fair
		}
		return weights, nil
	}
	modeled := ids
	if nq > 0 {
		modeled = make([]AppID, 0, len(ids)-nq)
		for _, id := range ids {
			if ds := c.drift[id]; ds == nil || !ds.quarantined {
				modeled = append(modeled, id)
			}
		}
	}
	objs := make([]solver.Objective, len(modeled))
	for i, id := range modeled {
		objs[i] = solver.NewMonotonePoly(c.apps[id].coeffs)
	}
	solved, err := solver.Minimize(objs, solver.Options{
		Total:    c.cfg.CSaba - fair*float64(nq),
		MinShare: c.cfg.MinShare,
	})
	if err != nil {
		return nil, err
	}
	if nq == 0 {
		return solved, nil
	}
	weights := make([]float64, len(ids))
	k := 0
	for i, id := range ids {
		if ds := c.drift[id]; ds != nil && ds.quarantined {
			weights[i] = fair
		} else {
			weights[i] = solved[k]
			k++
		}
	}
	return weights, nil
}

// globalWeightsLocked solves Eq. 2 once over all registered applications.
func (c *Centralized) globalWeightsLocked() (map[AppID]float64, error) {
	if c.globalW != nil {
		return c.globalW, nil
	}
	all := make([]AppID, 0, len(c.apps))
	for id := range c.apps {
		all = append(all, id)
	}
	sortAppIDs(all)
	weights, err := c.solveWeights(all)
	if err != nil {
		return nil, fmt.Errorf("controller: global Eq.2: %w", err)
	}
	c.globalW = make(map[AppID]float64, len(all))
	for i, id := range all {
		c.globalW[id] = weights[i]
	}
	return c.globalW, nil
}

// appendAppSetKey appends the encoding of a sorted application-ID set.
func appendAppSetKey(b []byte, ids []AppID) []byte {
	for _, id := range ids {
		b = appendVarint(b, uint64(id))
	}
	return b
}

func appendVarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func sortAppIDs(ids []AppID) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for k := i; k > 0 && xs[k] < xs[k-1]; k-- {
			xs[k], xs[k-1] = xs[k-1], xs[k]
		}
	}
}
