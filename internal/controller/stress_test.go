package controller

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"saba/internal/rpc"
	"saba/internal/topology"
)

// stressService drives parallel Register/ConnCreate/ConnDestroy/Deregister
// lifecycles through the RPC service and returns the worker error, if any.
func stressService(t *testing.T, ctrl API, top *topology.Topology) {
	t.Helper()
	srv := rpc.NewServer()
	if err := Serve(srv, ctrl); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hosts := top.Hosts()
	names := []string{"steep", "flat", "mid1", "mid2"}
	const workers = 8
	const rounds = 10

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cli := rpc.NewClient(addr, rpc.Options{
				Timeout:     2 * time.Second,
				MaxRetries:  3,
				BackoffBase: time.Millisecond,
				Seed:        int64(w + 1),
			})
			defer cli.Close()
			for r := 0; r < rounds; r++ {
				var reg RegisterReply
				if err := cli.Call(MethodAppRegister, RegisterArgs{Name: names[(w+r)%len(names)]}, &reg); err != nil {
					errs <- fmt.Errorf("worker %d round %d register: %w", w, r, err)
					return
				}
				src := hosts[(w*rounds+r)%len(hosts)]
				dst := hosts[(w*rounds+r+1)%len(hosts)]
				var cc ConnCreateReply
				if err := cli.Call(MethodConnCreate, ConnCreateArgs{App: reg.App, Src: src, Dst: dst}, &cc); err != nil {
					errs <- fmt.Errorf("worker %d round %d conn create: %w", w, r, err)
					return
				}
				var plReply PLReply
				if err := cli.Call(MethodAppPL, PLArgs{App: reg.App}, &plReply); err != nil {
					errs <- fmt.Errorf("worker %d round %d pl: %w", w, r, err)
					return
				}
				if err := cli.Call(MethodConnDestroy, ConnDestroyArgs{Conn: cc.Conn}, nil); err != nil {
					errs <- fmt.Errorf("worker %d round %d conn destroy: %w", w, r, err)
					return
				}
				if err := cli.Call(MethodAppDeregister, DeregisterArgs{App: reg.App}, nil); err != nil {
					errs <- fmt.Errorf("worker %d round %d deregister: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestStressCentralizedOverRPC(t *testing.T) {
	c, _, top := rigController(t, 8, 16)
	stressService(t, c, top)
	if c.Apps() != 0 {
		t.Errorf("Apps = %d after full teardown, want 0", c.Apps())
	}
	if c.Conns() != 0 {
		t.Errorf("Conns = %d after full teardown, want 0", c.Conns())
	}
}

func TestStressMeshOverRPC(t *testing.T) {
	m, wfq, top := rigMesh(t, 3)
	stressService(t, m, top)
	if m.Apps() != 0 {
		t.Errorf("Apps = %d after full teardown, want 0", m.Apps())
	}
	if m.Conns() != 0 {
		t.Errorf("Conns = %d after full teardown, want 0", m.Conns())
	}
	// Every port reverted to baseline fairness once its last conn left.
	for _, l := range top.Links() {
		if wfq.Config(l.ID) != nil {
			t.Errorf("port %d still configured after full teardown", l.ID)
		}
	}
}
