package controller

import (
	"encoding/json"
	"testing"
	"time"

	"saba/internal/netsim"
	"saba/internal/rpc"
	"saba/internal/topology"
)

// TestMeshServedOverRPC runs the distributed controller behind the real
// TCP RPC service and drives the full Fig. 7 lifecycle through raw
// client calls — the deployment §5.4 describes, where the library talks
// to whichever controller shard is closest.
func TestMeshServedOverRPC(t *testing.T) {
	m, wfq, top := rigMesh(t, 3)
	srv := rpc.NewServer()
	if err := Serve(srv, m); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := rpc.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	var reg RegisterReply
	if err := cli.Call(MethodAppRegister, RegisterArgs{Name: "steep"}, &reg); err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	var cc ConnCreateReply
	err = cli.Call(MethodConnCreate, ConnCreateArgs{
		App: reg.App, Src: hosts[0], Dst: hosts[len(hosts)-1],
	}, &cc)
	if err != nil {
		t.Fatal(err)
	}
	// The cross-pod path must be configured by the shards.
	path, _ := top.Route(hosts[0], hosts[len(hosts)-1])
	for _, l := range path {
		if wfq.Config(l) == nil {
			t.Errorf("port %d not configured through RPC path", l)
		}
	}
	// PL query round-trips (on its own wire types).
	var plReply PLReply
	if err := cli.Call(MethodAppPL, PLArgs{App: reg.App}, &plReply); err != nil {
		t.Fatal(err)
	}
	if plReply.PL != reg.PL {
		t.Errorf("PL drifted: %d vs %d", plReply.PL, reg.PL)
	}
	if err := cli.Call(MethodConnDestroy, ConnDestroyArgs{Conn: cc.Conn}, nil); err != nil {
		t.Fatal(err)
	}
	if err := cli.Call(MethodAppDeregister, DeregisterArgs{App: reg.App}, nil); err != nil {
		t.Fatal(err)
	}
	// Malformed arguments surface as remote errors, not crashes.
	if err := cli.Call(MethodAppRegister, json.RawMessage(`"not an object"`), nil); err == nil {
		t.Error("malformed register should fail")
	}
}

func TestRegisterBatchMatchesIncremental(t *testing.T) {
	// Batch registration must produce the same PL separation the
	// incremental path gives.
	c, _, _ := rigController(t, 4, 16)
	ids, err := c.RegisterBatch([]string{"steep", "flat", "mid1", "mid2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	plSteep, err := c.PL(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	plFlat, err := c.PL(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if plSteep == plFlat {
		t.Error("batch registration merged steep and flat into one PL")
	}
	if c.Apps() != 4 {
		t.Errorf("Apps = %d, want 4", c.Apps())
	}
}

func TestPreloadConnThenRecompute(t *testing.T) {
	c, wfq, top := rigController(t, 6, 16)
	ids, err := c.RegisterBatch([]string{"steep", "flat"})
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	// Preload does not enforce...
	if _, err := c.PreloadConn(ids[0], hosts[0], hosts[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PreloadConn(ids[1], hosts[1], hosts[5]); err != nil {
		t.Fatal(err)
	}
	// ...but RecomputeAll does.
	if _, err := c.RecomputeAll(); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[5])
	cfg := wfq.Config(path[len(path)-1])
	if cfg == nil {
		t.Fatal("shared port not configured after RecomputeAll")
	}
	if len(cfg.PLQueue) != 2 {
		t.Errorf("PLQueue covers %d PLs, want 2", len(cfg.PLQueue))
	}
	// Preload validation.
	if _, err := c.PreloadConn(AppID(999), hosts[0], hosts[1]); err == nil {
		t.Error("preload for unknown app should fail")
	}
	if _, err := c.PreloadConn(ids[0], hosts[0], topology.NodeID(9999)); err == nil {
		t.Error("unroutable preload should fail")
	}
}

func TestPerPortWeightsMode(t *testing.T) {
	// The paper's literal per-port Eq. 2: a port carrying only insensitive
	// apps splits evenly among them regardless of sensitive apps elsewhere,
	// whereas the global mode keeps the global ratios.
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 6, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	c, err := NewCentralized(Config{
		Topology: top, Table: testTable(t), Enforcer: wfq,
		PLs: 16, Seed: 1, PerPortWeights: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	steep, _, _ := c.Register("steep")
	flat, _, _ := c.Register("flat")
	mid, _, _ := c.Register("mid1")
	// steep+flat share h5's downlink; mid is alone toward h4.
	if _, err := c.ConnCreate(steep, hosts[0], hosts[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(flat, hosts[1], hosts[5]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(mid, hosts[2], hosts[4]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[5])
	cfg := wfq.Config(path[len(path)-1])
	if cfg == nil {
		t.Fatal("shared port not configured")
	}
	// Per-port: the two apps' weights sum to CSaba (1.0) on this port,
	// with the steep app favored.
	sum := 0.0
	for _, w := range cfg.Weights {
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("per-port weights sum to %g, want 1", sum)
	}
	plSteep, _ := c.PL(steep)
	plFlat, _ := c.PL(flat)
	if cfg.Weights[cfg.PLQueue[plSteep]] <= cfg.Weights[cfg.PLQueue[plFlat]] {
		t.Error("per-port mode did not favor the sensitive app")
	}
}

func TestCSabaReservedHeadroom(t *testing.T) {
	// §3 co-existence: with CSaba < 1, Saba-managed queue weights sum to
	// CSaba, leaving the remainder for a statically-reserved queue of
	// non-compliant applications.
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 4, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	c, err := NewCentralized(Config{
		Topology: top, Table: testTable(t), Enforcer: wfq,
		PLs: 16, Seed: 1, CSaba: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[1], hosts[3]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[3])
	cfg := wfq.Config(path[len(path)-1])
	if cfg == nil {
		t.Fatal("port not configured")
	}
	sum := 0.0
	for _, w := range cfg.Weights {
		sum += w
	}
	if sum < 0.79 || sum > 0.81 {
		t.Errorf("Saba queue weights sum to %g, want CSaba=0.8", sum)
	}
}
