package controller

import (
	"encoding/json"
	"errors"
	"fmt"

	"saba/internal/rpc"
	"saba/internal/topology"
)

// API is the control-plane surface both controller deployments expose;
// the Saba library calls it over RPC (paper Fig. 7). PL re-reads the
// application's current priority level: a registration burst can
// re-cluster, so the library refreshes its cached PL before creating
// connections.
type API interface {
	Register(name string) (AppID, int, error)
	Deregister(id AppID) error
	ConnCreate(id AppID, src, dst topology.NodeID) (ConnID, error)
	ConnDestroy(cid ConnID) error
	PL(id AppID) (int, error)
}

// SlowdownObserver is the optional API extension for runtime slowdown
// feedback (the drift quarantine and online profile learner, see
// quarantine.go and learner.go). Centralized implements it; Mesh does
// not — the distributed design reads an offline mapping database by
// construction (§5.4) and has no feedback channel.
type SlowdownObserver interface {
	ObserveSlowdown(id AppID, bwFraction, observed float64) (bool, error)
}

// TenantRegistrar is the optional API extension for the tenant
// guarantee layer (tenant.go) and admission control. Centralized
// implements it; Mesh does not — sharded guarantee accounting needs a
// consensus the offline-mapping design deliberately avoids.
type TenantRegistrar interface {
	// RegisterTenant is idempotent by name (see Centralized.RegisterTenant):
	// retrying a registration whose reply was lost is always safe.
	RegisterTenant(name string, min float64) (TenantID, error)
	RegisterIn(tenant TenantID, name string) (AppID, int, error)
}

// Statically assert both deployments implement the API, and that the
// centralized one observes slowdowns and registers tenants.
var (
	_ API              = (*Centralized)(nil)
	_ API              = (*Mesh)(nil)
	_ SlowdownObserver = (*Centralized)(nil)
	_ TenantRegistrar  = (*Centralized)(nil)
)

// RPC method names (the software interface of §6).
const (
	MethodAppRegister     = "saba.app_register"
	MethodAppDeregister   = "saba.app_deregister"
	MethodAppPL           = "saba.app_pl"
	MethodConnCreate      = "saba.conn_create"
	MethodConnDestroy     = "saba.conn_destroy"
	MethodObserveSlowdown = "saba.observe_slowdown"
	MethodTenantRegister  = "saba.tenant_register"
	MethodAppRegisterIn   = "saba.app_register_in"
)

// ErrNoObserver is returned for observe_slowdown calls against a
// controller deployment without runtime feedback (Mesh).
var ErrNoObserver = errors.New("controller: deployment does not support slowdown observation")

// ErrNoTenants is returned for tenant calls against a deployment
// without the guarantee layer (Mesh).
var ErrNoTenants = errors.New("controller: deployment does not support tenants")

// Wire formats shared by the service and the Saba library client.
type (
	// RegisterArgs requests application registration.
	RegisterArgs struct {
		Name string `json:"name"`
	}
	// RegisterReply returns the assigned ID and priority level.
	RegisterReply struct {
		App AppID `json:"app"`
		PL  int   `json:"pl"`
	}
	// DeregisterArgs requests application removal.
	DeregisterArgs struct {
		App AppID `json:"app"`
	}
	// ConnCreateArgs announces a new connection.
	ConnCreateArgs struct {
		App AppID           `json:"app"`
		Src topology.NodeID `json:"src"`
		Dst topology.NodeID `json:"dst"`
	}
	// ConnCreateReply returns the tracked connection ID.
	ConnCreateReply struct {
		Conn ConnID `json:"conn"`
	}
	// ConnDestroyArgs announces a finished connection.
	ConnDestroyArgs struct {
		Conn ConnID `json:"conn"`
	}
	// PLArgs requests an application's current priority level. The wire
	// shape (just the "app" field) matches what DeregisterArgs used to
	// carry for this method, so old and new peers interoperate.
	PLArgs struct {
		App AppID `json:"app"`
	}
	// PLReply returns the priority level (the "app"/"pl" field names keep
	// compatibility with the RegisterReply this method used to reuse).
	PLReply struct {
		App AppID `json:"app"`
		PL  int   `json:"pl"`
	}
	// ObserveArgs reports one runtime slowdown measurement: the bandwidth
	// fraction the application saw over the window and the slowdown
	// relative to its unthrottled baseline.
	ObserveArgs struct {
		App      AppID   `json:"app"`
		Fraction float64 `json:"fraction"`
		Slowdown float64 `json:"slowdown"`
	}
	// ObserveReply reports whether the observation changed the app's
	// allocation (quarantine entry/exit, model promotion or rollback).
	ObserveReply struct {
		Changed bool `json:"changed"`
	}
	// TenantRegisterArgs requests (idempotent) tenant admission with a
	// guaranteed minimum share.
	TenantRegisterArgs struct {
		Name string  `json:"name"`
		Min  float64 `json:"min"`
	}
	// TenantRegisterReply returns the tenant ID.
	TenantRegisterReply struct {
		Tenant TenantID `json:"tenant"`
	}
	// RegisterInArgs requests application registration under a tenant.
	RegisterInArgs struct {
		Tenant TenantID `json:"tenant"`
		Name   string   `json:"name"`
	}
)

// Serve registers the controller API on an RPC server.
func Serve(srv *rpc.Server, api API) error {
	if err := srv.Handle(MethodAppRegister, func(raw json.RawMessage) (any, error) {
		var args RegisterArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad register args: %w", err)
		}
		id, pl, err := api.Register(args.Name)
		if err != nil {
			return nil, err
		}
		return RegisterReply{App: id, PL: pl}, nil
	}); err != nil {
		return err
	}
	if err := srv.Handle(MethodAppDeregister, func(raw json.RawMessage) (any, error) {
		var args DeregisterArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad deregister args: %w", err)
		}
		return nil, api.Deregister(args.App)
	}); err != nil {
		return err
	}
	if err := srv.Handle(MethodConnCreate, func(raw json.RawMessage) (any, error) {
		var args ConnCreateArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad conn_create args: %w", err)
		}
		cid, err := api.ConnCreate(args.App, args.Src, args.Dst)
		if err != nil {
			return nil, err
		}
		return ConnCreateReply{Conn: cid}, nil
	}); err != nil {
		return err
	}
	if err := srv.Handle(MethodConnDestroy, func(raw json.RawMessage) (any, error) {
		var args ConnDestroyArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad conn_destroy args: %w", err)
		}
		return nil, api.ConnDestroy(args.Conn)
	}); err != nil {
		return err
	}
	if err := srv.Handle(MethodAppPL, func(raw json.RawMessage) (any, error) {
		var args PLArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad app_pl args: %w", err)
		}
		pl, err := api.PL(args.App)
		if err != nil {
			return nil, err
		}
		return PLReply{App: args.App, PL: pl}, nil
	}); err != nil {
		return err
	}
	if err := srv.Handle(MethodTenantRegister, func(raw json.RawMessage) (any, error) {
		var args TenantRegisterArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad tenant_register args: %w", err)
		}
		tr, ok := api.(TenantRegistrar)
		if !ok {
			return nil, ErrNoTenants
		}
		tid, err := tr.RegisterTenant(args.Name, args.Min)
		if err != nil {
			return nil, err
		}
		return TenantRegisterReply{Tenant: tid}, nil
	}); err != nil {
		return err
	}
	if err := srv.Handle(MethodAppRegisterIn, func(raw json.RawMessage) (any, error) {
		var args RegisterInArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad app_register_in args: %w", err)
		}
		tr, ok := api.(TenantRegistrar)
		if !ok {
			return nil, ErrNoTenants
		}
		id, pl, err := tr.RegisterIn(args.Tenant, args.Name)
		if err != nil {
			return nil, err
		}
		return RegisterReply{App: id, PL: pl}, nil
	}); err != nil {
		return err
	}
	// observe_slowdown is registered unconditionally so the wire surface
	// is deployment-independent; a deployment without feedback answers
	// with a permanent (non-retryable) error.
	return srv.Handle(MethodObserveSlowdown, func(raw json.RawMessage) (any, error) {
		var args ObserveArgs
		if err := json.Unmarshal(raw, &args); err != nil {
			return nil, fmt.Errorf("controller: bad observe_slowdown args: %w", err)
		}
		obs, ok := api.(SlowdownObserver)
		if !ok {
			return nil, ErrNoObserver
		}
		changed, err := obs.ObserveSlowdown(args.App, args.Fraction, args.Slowdown)
		if err != nil {
			return nil, err
		}
		return ObserveReply{Changed: changed}, nil
	})
}
