package controller

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"saba/internal/netsim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// This file is the parallel enforcement core shared by both controller
// deployments: a bounded worker pool that fans independent per-port
// Eq. 2 solves out across cores, and a cross-port solution cache that
// memoizes the complete port configuration (weights + PL→queue mapping)
// per (application set, queue count, epoch).
//
// Determinism argument. A port's enforced configuration is a pure
// function of (sorted app set, queue count, solve epoch): the Eq. 2
// weights depend on the apps' sensitivity coefficients (immutable per
// app ID) or on the global solve (fixed per epoch), and the PL→queue
// mapping depends on the PL assignment and hierarchy (fixed per epoch).
// The compute phase only reads that state, so plans may be computed in
// any order — including concurrently — and the apply phase pushes them
// through the Enforcer strictly in ascending port order, one goroutine,
// so the switch-programming sequence is identical whatever the worker
// count. Errors are deterministic too: the lowest-port failure wins.

// portPlan is one computed-but-not-yet-applied port configuration.
type portPlan struct {
	port topology.LinkID
	cfg  netsim.PortConfig
	key  []byte // appSetKey of the membership the plan was computed for
	skip bool   // enforcement memo hit (or empty port): nothing to push
}

// planScratch is per-worker scratch for plan computation, so concurrent
// workers never share the controller-level buffers.
type planScratch struct {
	ids []AppID
	key []byte
}

// parallelThreshold is the batch size below which fanning out is not
// worth the goroutine setup (a ConnCreate path is a handful of ports).
const parallelThreshold = 8

// computePlans evaluates fn(i) for every port index across a bounded
// worker pool, collecting plans positionally so assembly is independent
// of completion order. The first error by *index* (not by completion
// time) is returned, keeping failures deterministic under concurrency.
func computePlans(n, workers int, fn func(i int, sc *planScratch) (portPlan, error)) ([]portPlan, error) {
	plans := make([]portPlan, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < parallelThreshold {
		var sc planScratch
		for i := 0; i < n; i++ {
			p, err := fn(i, &sc)
			if err != nil {
				return nil, err
			}
			plans[i] = p
		}
		return plans, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc planScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				plans[i], errs[i] = fn(i, &sc)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return plans, nil
}

// resolveWorkers maps a Config.Workers value to a concrete pool size.
func resolveWorkers(configured int) int {
	if configured > 0 {
		return configured
	}
	return runtime.GOMAXPROCS(0)
}

// solutionCache memoizes enforced port configurations across ports:
// on fat-tree fabrics most ports carry one of a handful of application
// mixes, so sharing the solution turns O(ports) Eq. 2 solves into
// O(distinct app sets). Entries are keyed by (app set, queue count) and
// validated against an epoch — any change to the global solve inputs
// (re-clustering, and under the global strategy the registered set)
// bumps the epoch and atomically invalidates everything.
//
// Concurrent workers that race on the same key solve it exactly once:
// the loser parks on the winner's sync.Once instead of re-solving.
type solutionCache struct {
	mu      sync.Mutex
	epoch   uint64
	entries map[string]*solEntry
	hits    *telemetry.Counter
	misses  *telemetry.Counter
}

// solEntry is one memoized solution; once guards its single computation.
type solEntry struct {
	once sync.Once
	cfg  netsim.PortConfig
	err  error
}

func newSolutionCache(hits, misses *telemetry.Counter) *solutionCache {
	return &solutionCache{
		entries: map[string]*solEntry{},
		hits:    hits,
		misses:  misses,
	}
}

// get returns the cached configuration for key at epoch, computing it
// via compute on the first request. Stale-epoch entries are discarded
// wholesale: a key built under another epoch must never collide with
// the same byte string built under this one.
func (sc *solutionCache) get(epoch uint64, key []byte, compute func() (netsim.PortConfig, error)) (netsim.PortConfig, error) {
	sc.mu.Lock()
	if sc.epoch != epoch {
		sc.entries = map[string]*solEntry{}
		sc.epoch = epoch
	}
	e, ok := sc.entries[string(key)]
	if !ok {
		e = &solEntry{}
		sc.entries[string(key)] = e
		sc.misses.Inc()
	} else {
		sc.hits.Inc()
	}
	sc.mu.Unlock()
	e.once.Do(func() { e.cfg, e.err = compute() })
	return e.cfg, e.err
}

// len reports the live entry count (tests).
func (sc *solutionCache) len() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.entries)
}

// defaultQueue picks the port's default queue: the heaviest one, so
// unmapped traffic degrades softly, breaking ties toward the lowest
// queue index. The tie-break is explicit so the choice can never depend
// on any map-iteration order upstream.
func defaultQueue(qWeights []float64) int {
	def := 0
	for q, w := range qWeights {
		if w > qWeights[def] {
			def = q
		}
	}
	return def
}

// uniquePorts returns the sorted, deduplicated port set of a path.
func uniquePorts(path []topology.LinkID) []topology.LinkID {
	ports := make([]topology.LinkID, 0, len(path))
	ports = append(ports, path...)
	sortLinkIDs(ports)
	out := ports[:0]
	for i, p := range ports {
		if i == 0 || p != ports[i-1] {
			out = append(out, p)
		}
	}
	return out
}

func sortLinkIDs(ids []topology.LinkID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
