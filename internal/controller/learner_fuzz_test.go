package controller

import (
	"math"
	"math/rand"
	"testing"

	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/regression"
	"saba/internal/topology"
)

// FuzzFitPromote drives the online learner with adversarial observation
// streams — random sample clouds, spikes, NaN/Inf poison, sub-floor
// slowdowns — and asserts the promotion invariant after every single
// observation: an installed learned model is always monotone
// non-increasing and ≥ 1 over [0, 1]. The CI smoke runs it for 10s like
// FuzzRoute; `go test` alone replays the seed corpus.
func FuzzFitPromote(f *testing.F) {
	f.Add(int64(1), uint8(40))
	f.Add(int64(42), uint8(64))
	f.Add(int64(-7), uint8(200))
	f.Add(int64(987654321), uint8(13))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 4, Queues: 8})
		if err != nil {
			t.Fatal(err)
		}
		net := netsim.NewNetwork(top)
		wfq := netsim.NewWFQ(net)
		c, err := NewCentralized(Config{
			Topology: top,
			Table:    profiler_testTable(),
			Enforcer: wfq,
			Seed:     1,
			// A permissive learner so refits actually trigger inside short
			// fuzz streams: the guardrails under test must hold even with
			// the evidence gates at their weakest useful settings.
			Drift: DriftConfig{
				Learn:        true,
				MinSamples:   6,
				RingSize:     24,
				MinSpread:    0.05,
				R2Bar:        0.5,
				HoldoutEvery: 3,
				Windows:      2,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		id, _, err := c.Register("steep")
		if err != nil {
			t.Fatal(err)
		}
		hosts := top.Hosts()
		if _, err := c.ConnCreate(id, hosts[0], hosts[1]); err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(seed))
		n := 16 + int(steps)
		for i := 0; i < n; i++ {
			b := rng.Float64()
			var d float64
			switch rng.Intn(10) {
			case 0:
				d = math.NaN()
			case 1:
				d = math.Inf(1)
			case 2:
				d = rng.Float64() // sub-floor
			case 3:
				d = 1 + rng.ExpFloat64()*100 // wild spike
			default:
				d = 1 + rng.ExpFloat64()*3
			}
			if _, err := c.ObserveSlowdown(id, b, d); err != nil {
				t.Fatal(err)
			}
			coeffs, learned, err := c.ModelOf(id)
			if err != nil {
				t.Fatal(err)
			}
			if learned && !c.Quarantined(id) {
				p := regression.Polynomial{Coeffs: coeffs}
				if !regression.ValidateSlowdownModel(p, 0) {
					t.Fatalf("observation %d promoted an invalid model: %v", i+1, coeffs)
				}
			}
		}
	})
}

// profiler_testTable builds the table without a *testing.T (fuzz workers
// construct it inside the fuzz function).
func profiler_testTable() *profiler.Table {
	tab := profiler.NewTable()
	_ = tab.Put(profiler.Entry{Name: "steep", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}, R2: 0.95})
	return tab
}
