package controller

import (
	"testing"
	"time"

	"saba/internal/netsim"
	"saba/internal/topology"
)

// rigFabricController is rigController on a spine-leaf fabric, where
// failed links have live alternates for reconvergence to find.
func rigFabricController(t *testing.T) (*Centralized, *netsim.WFQ, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2,
		HostsPerToR: 4, Queues: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	c, err := NewCentralized(Config{
		Topology: top,
		Table:    testTable(t),
		Enforcer: wfq,
		PLs:      16,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, wfq, top
}

func TestTopologyChangedReroutesPorts(t *testing.T) {
	c, wfq, top := rigFabricController(t)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	src, dst := hosts[0], hosts[len(hosts)-1]
	if _, err := c.ConnCreate(a, src, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[1], dst); err != nil {
		t.Fatal(err)
	}
	orig, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	mid := orig[len(orig)/2]
	if wfq.Config(mid) == nil {
		t.Fatalf("port %d on the connection's path not configured", mid)
	}

	// A no-op reconvergence (nothing failed) keeps the fabric enforced.
	if err := c.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if wfq.Config(mid) == nil {
		t.Fatal("no-op reconvergence dropped a configured port")
	}

	if _, err := top.FailLink(mid); err != nil {
		t.Fatal(err)
	}
	if err := c.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Fatal("clean reconvergence reported degraded")
	}
	if wfq.Config(mid) != nil {
		t.Fatalf("failed link %d still configured after reconvergence", mid)
	}
	alt, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range alt {
		if wfq.Config(l) == nil {
			t.Errorf("rerouted path port %d not configured", l)
		}
	}

	// Healing the link converges back onto the original LFT path.
	if _, err := top.RestoreLink(mid); err != nil {
		t.Fatal(err)
	}
	if err := c.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if wfq.Config(mid) == nil {
		t.Fatal("restored link not re-configured after reconvergence")
	}
}

func TestTopologyChangedCutOffConnKeepsState(t *testing.T) {
	c, wfq, top := rigFabricController(t)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	src, dst := hosts[0], hosts[len(hosts)-1]
	if _, err := c.ConnCreate(a, src, dst); err != nil {
		t.Fatal(err)
	}
	uplink := top.OutLinks(src)[0]
	if _, err := top.FailLink(uplink); err != nil {
		t.Fatal(err)
	}
	// The connection has no live path: reconvergence keeps it registered
	// but occupying no ports, exactly like the simulator stalling the flow.
	if err := c.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if c.Conns() != 1 {
		t.Fatalf("Conns = %d after cut-off, want 1 (kept, pathless)", c.Conns())
	}
	orig, _ := top.Route(dst, src) // reverse stays live; forward ports must be gone
	_ = orig
	if wfq.Config(uplink) != nil {
		t.Fatal("cut-off connection's uplink still configured")
	}
	// Healing re-detects the path and re-enforces it.
	if _, err := top.RestoreLink(uplink); err != nil {
		t.Fatal(err)
	}
	if err := c.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if wfq.Config(uplink) == nil {
		t.Fatal("healed connection not re-enforced")
	}
}

func TestReconvergeDeadlineDegradesAndRecovers(t *testing.T) {
	c, wfq, top := rigFabricController(t)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[len(hosts)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[1], hosts[len(hosts)-1]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[len(hosts)-1])

	// A 1ns watchdog cannot be met by any real pass: the controller must
	// degrade every port to fair-share rather than leave stale weights.
	c.cfg.ReconvergeDeadline = time.Nanosecond
	if _, err := top.FailLink(path[len(path)/2]); err != nil {
		t.Fatal(err)
	}
	if err := c.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if !c.Degraded() {
		t.Fatal("deadline overrun did not degrade the controller")
	}
	for _, l := range path {
		if wfq.Config(l) != nil {
			t.Fatalf("degraded controller left port %d configured", l)
		}
	}

	// With a generous deadline the next pass recovers full enforcement.
	c.cfg.ReconvergeDeadline = time.Hour
	if err := c.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Fatal("controller still degraded after a passing reconvergence")
	}
	alt, err := top.Route(hosts[0], hosts[len(hosts)-1])
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range alt {
		if wfq.Config(l) == nil {
			t.Errorf("recovered pass left port %d unconfigured", l)
		}
	}
}

func TestMeshTopologyChangedReplaysConns(t *testing.T) {
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2,
		HostsPerToR: 4, Queues: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	db, err := BuildMappingDB(testTable(t), 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMesh(top, db, wfq, 2, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	a, _, _ := m.Register("steep")
	src, dst := hosts[0], hosts[len(hosts)-1]
	if _, err := m.ConnCreate(a, src, dst); err != nil {
		t.Fatal(err)
	}
	orig, _ := top.Route(src, dst)
	mid := orig[len(orig)/2]
	if wfq.Config(mid) == nil {
		t.Fatalf("port %d not configured by the mesh", mid)
	}
	if _, err := top.FailLink(mid); err != nil {
		t.Fatal(err)
	}
	if err := m.TopologyChanged(); err != nil {
		t.Fatal(err)
	}
	if wfq.Config(mid) != nil {
		t.Fatal("mesh left the failed link configured")
	}
	alt, err := top.Route(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range alt {
		if wfq.Config(l) == nil {
			t.Errorf("mesh rerouted path port %d not configured", l)
		}
	}
}

func TestQuarantineOnProfileDrift(t *testing.T) {
	c, wfq, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[1], hosts[2]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[2])
	down := path[len(path)-1]
	plA, _ := c.PL(a)
	plB, _ := c.PL(b)
	before := wfq.Config(down)
	if before == nil {
		t.Fatal("shared port not configured")
	}
	wA0 := before.Weights[before.PLQueue[plA]]
	wB0 := before.Weights[before.PLQueue[plB]]
	if wA0 <= wB0 {
		t.Fatalf("precondition: steep weight %g should exceed flat %g", wA0, wB0)
	}

	// "steep" at bwFraction 0.5 predicts 5.2 - 6.0*0.5 + 1.8*0.25 = 2.65;
	// observing 10 is a ~277% residual — far over the default 25%.
	const granted, drifted, clean = 0.5, 10.0, 2.65
	for i := 0; i < 2; i++ {
		changed, err := c.ObserveSlowdown(a, granted, drifted)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			t.Fatalf("quarantined after %d windows, want %d", i+1, 3)
		}
	}
	changed, err := c.ObserveSlowdown(a, granted, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || !c.Quarantined(a) {
		t.Fatalf("changed=%v quarantined=%v after 3 drifted windows", changed, c.Quarantined(a))
	}
	during := wfq.Config(down)
	wA1 := during.Weights[during.PLQueue[plA]]
	wB1 := during.Weights[during.PLQueue[plB]]
	if wA1 >= wA0 {
		t.Errorf("quarantined app's weight did not drop: %g → %g", wA0, wA1)
	}
	if wA1 > wB1 {
		t.Errorf("quarantined app still outweighs its neighbor: %g vs %g", wA1, wB1)
	}

	// One clean window is not enough; a full consecutive run releases.
	if changed, _ := c.ObserveSlowdown(a, granted, clean); changed {
		t.Fatal("released after a single clean window")
	}
	// A drifted window resets the clean streak.
	if _, err := c.ObserveSlowdown(a, granted, drifted); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if changed, _ := c.ObserveSlowdown(a, granted, clean); changed {
			t.Fatalf("released after %d clean windows post-reset", i+1)
		}
	}
	changed, err = c.ObserveSlowdown(a, granted, clean)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || c.Quarantined(a) {
		t.Fatalf("changed=%v quarantined=%v after 3 clean windows", changed, c.Quarantined(a))
	}
	after := wfq.Config(down)
	wA2 := after.Weights[after.PLQueue[plA]]
	if wA2 != wA0 {
		t.Errorf("released weights differ from pre-quarantine: %g vs %g", wA2, wA0)
	}

	if _, err := c.ObserveSlowdown(AppID(404), granted, clean); err == nil {
		t.Fatal("ObserveSlowdown on unknown app should error")
	}
}
