package controller

import (
	"errors"
	"sync"
	"testing"
	"time"

	"saba/internal/netsim"
	"saba/internal/topology"
)

// simClock is a virtual clock for admission tests: deadlines and bucket
// refills advance only when the test says so.
type simClock struct {
	mu  sync.Mutex
	now time.Time
}

func newSimClock() *simClock { return &simClock{now: time.Unix(0, 0)} }

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func (c *simClock) advance(d time.Duration) { c.Sleep(d) }

// rigAdmission builds a controller with admission control on a virtual
// clock.
func rigAdmission(t *testing.T, adm AdmissionConfig) (*Centralized, *netsim.WFQ, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 6, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	c, err := NewCentralized(Config{
		Topology:  top,
		Table:     testTable(t),
		Enforcer:  wfq,
		PLs:       16,
		Seed:      1,
		Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, wfq, top
}

func TestAdmissionZeroValueDisabled(t *testing.T) {
	c, _, top := rigController(t, 4, 16)
	if c.admission != nil {
		t.Fatal("zero AdmissionConfig must leave admission off")
	}
	hosts := top.Hosts()
	id, _, _ := c.Register("steep")
	for i := 0; i < 50; i++ {
		cid, err := c.ConnCreate(id, hosts[0], hosts[1])
		if err != nil {
			t.Fatalf("create %d rejected with admission off: %v", i, err)
		}
		if err := c.ConnDestroy(cid); err != nil {
			t.Fatal(err)
		}
	}
	if c.PendingEnforcements() != 0 || c.LadderLevel() != LadderFull {
		t.Error("disabled admission must report an empty queue at rung 0")
	}
}

func TestTenantRateRejectsTyped(t *testing.T) {
	clk := newSimClock()
	c, _, top := rigAdmission(t, AdmissionConfig{
		Enabled:     true,
		TenantRate:  0.001, // effectively no refill during the test
		TenantBurst: 2,
		RetryAfter:  80 * time.Millisecond,
		Clock:       clk,
	})
	hosts := top.Hosts()
	tid, err := c.RegisterTenant("busy", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	id, _, err := c.RegisterIn(tid, "steep")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := c.ConnCreate(id, hosts[0], hosts[1]); err != nil {
			t.Fatalf("create %d within burst rejected: %v", i, err)
		}
	}
	_, err = c.ConnCreate(id, hosts[0], hosts[1])
	re, ok := AsRejected(err)
	if !ok {
		t.Fatalf("over-budget create = %v, want RejectedError", err)
	}
	if re.Reason != "tenant_rate" {
		t.Errorf("reason = %q, want tenant_rate", re.Reason)
	}
	if re.RetryAfter != 80*time.Millisecond {
		t.Errorf("retry-after = %v, want 80ms", re.RetryAfter)
	}
	if got := c.Conns(); got != 2 {
		t.Errorf("Conns = %d after rejection, want 2 (rejected create not committed)", got)
	}
	// An untenanted app is not subject to the tenant bucket.
	free, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(free, hosts[2], hosts[3]); err != nil {
		t.Errorf("untenanted create hit the tenant bucket: %v", err)
	}
}

func TestAsRejectedParsesFlattenedError(t *testing.T) {
	orig := &RejectedError{Reason: "tenant_rate", RetryAfter: 120 * time.Millisecond}
	// Simulate the RPC boundary: only the string survives.
	flat := errors.New("rpc: remote saba.conn_create: " + orig.Error())
	re, ok := AsRejected(flat)
	if !ok {
		t.Fatalf("AsRejected failed on %q", flat)
	}
	if re.Reason != orig.Reason || re.RetryAfter != orig.RetryAfter {
		t.Errorf("parsed %+v, want %+v", re, orig)
	}
	if _, ok := AsRejected(errors.New("some other error")); ok {
		t.Error("AsRejected matched an unrelated error")
	}
}

func TestLadderDefersWhenIngressExhausted(t *testing.T) {
	clk := newSimClock()
	c, wfq, top := rigAdmission(t, AdmissionConfig{
		Enabled:      true,
		IngressRate:  0.001, // no refill during the test
		IngressBurst: 2,
		QueueLimit:   8,
		Clock:        clk,
	})
	hosts := top.Hosts()
	tid, _ := c.RegisterTenant("acme", 0.2)
	a, _, err := c.RegisterIn(tid, "steep")
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := c.Register("flat")
	// RegisterTenant consumed one ingress token; one remains: the first
	// create enforces synchronously, the second defers onto cached plans.
	if _, err := c.ConnCreate(a, hosts[0], hosts[5]); err != nil {
		t.Fatal(err)
	}
	if c.PendingEnforcements() != 0 {
		t.Fatalf("first create deferred, want synchronous (pending=%d)", c.PendingEnforcements())
	}
	if _, err := c.ConnCreate(b, hosts[1], hosts[5]); err != nil {
		t.Fatalf("deferred create errored: %v", err)
	}
	if got := c.PendingEnforcements(); got != 1 {
		t.Fatalf("pending = %d after budget exhausted, want 1", got)
	}
	// The shared downlink still runs the first create's plan: one queue
	// weight set (only app a), not two.
	path, _ := top.Route(hosts[1], hosts[5])
	down := path[len(path)-1]
	before := wfq.Config(down)
	if before == nil {
		t.Fatal("shared port lost its pre-storm config")
	}
	// Flush within the deadline batches the real solve.
	clk.advance(10 * time.Millisecond)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingEnforcements(); got != 0 {
		t.Errorf("pending = %d after Flush, want 0", got)
	}
	after := wfq.Config(down)
	if after == nil {
		t.Fatal("shared port deconfigured by a within-deadline Flush")
	}
	if len(after.Weights) == len(before.Weights) && c.Conns() == 2 && len(after.Weights) < 2 {
		t.Errorf("Flush did not re-enforce the deferred port: weights %v", after.Weights)
	}
}

func TestFlushShedsPastDeadline(t *testing.T) {
	clk := newSimClock()
	c, wfq, top := rigAdmission(t, AdmissionConfig{
		Enabled:       true,
		IngressRate:   0.001,
		IngressBurst:  1, // consumed by RegisterTenant below
		QueueLimit:    8,
		QueueDeadline: 100 * time.Millisecond,
		Clock:         clk,
	})
	hosts := top.Hosts()
	tid, _ := c.RegisterTenant("acme", 0.2)
	a, _, err := c.RegisterIn(tid, "steep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(a, hosts[0], hosts[5]); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingEnforcements(); got != 1 {
		t.Fatalf("pending = %d, want 1 (ingress bucket empty)", got)
	}
	clk.advance(time.Second) // blow the deadline
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := c.PendingEnforcements(); got != 0 {
		t.Errorf("pending = %d after shed, want 0", got)
	}
	// Shed to baseline fair share = the port is deconfigured.
	path, _ := top.Route(hosts[0], hosts[5])
	down := path[len(path)-1]
	if cfg := wfq.Config(down); cfg != nil {
		t.Errorf("shed port still configured: %+v", cfg)
	}
	// A later real enforcement must not be memo-skipped against the shed
	// state.
	if _, err := c.RecomputeAll(); err != nil {
		t.Fatal(err)
	}
	if cfg := wfq.Config(down); cfg == nil {
		t.Error("post-shed RecomputeAll left the port unconfigured")
	}
}

func TestFairRungShedsImmediately(t *testing.T) {
	clk := newSimClock()
	c, _, top := rigAdmission(t, AdmissionConfig{
		Enabled:      true,
		IngressRate:  0.001,
		IngressBurst: 1,
		QueueLimit:   4,
		CachedFrac:   0.25,
		FairFrac:     0.5,
		Clock:        clk,
	})
	hosts := top.Hosts()
	tid, _ := c.RegisterTenant("acme", 0.2)
	a, _, err := c.RegisterIn(tid, "steep")
	if err != nil {
		t.Fatal(err)
	}
	// Queue two deferred creates (occupancy 2/4 = FairFrac).
	for i := 0; i < 2; i++ {
		if _, err := c.ConnCreate(a, hosts[i], hosts[5]); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.PendingEnforcements(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	if got := c.LadderLevel(); got != LadderFair {
		t.Fatalf("ladder level = %d at FairFrac occupancy, want %d", got, LadderFair)
	}
	// The next create is admitted but shed straight to fair share: the
	// queue must not grow.
	if _, err := c.ConnCreate(a, hosts[2], hosts[5]); err != nil {
		t.Fatalf("fair-rung create errored: %v", err)
	}
	if got := c.PendingEnforcements(); got != 2 {
		t.Errorf("pending = %d after fair-rung create, want 2 (no growth)", got)
	}
	if got := c.Conns(); got != 3 {
		t.Errorf("Conns = %d, want 3 (fair-rung conn still admitted)", got)
	}
}

func TestAdmissionConfigValidation(t *testing.T) {
	bad := []AdmissionConfig{
		{Enabled: true, IngressRate: -1},
		{Enabled: true, QueueLimit: -2},
		{Enabled: true, CachedFrac: 0.9, FairFrac: 0.5},
		{Enabled: true, FairFrac: 1.5},
	}
	for i, adm := range bad {
		if err := adm.fill(); err == nil {
			t.Errorf("bad admission config %d accepted", i)
		}
	}
	var off AdmissionConfig
	if err := off.fill(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
