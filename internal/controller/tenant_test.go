package controller

import (
	"errors"
	"math"
	"testing"
)

func TestRegisterTenantIdempotent(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	a, err := c.RegisterTenant("acme", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.RegisterTenant("acme", 0.3)
	if err != nil {
		t.Fatalf("idempotent re-registration failed: %v", err)
	}
	if a != b {
		t.Errorf("re-registration returned %d, want original %d", b, a)
	}
	if got := c.GuaranteedSum(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("GuaranteedSum = %g after replay, want 0.3 (counted once)", got)
	}
	if _, err := c.RegisterTenant("acme", 0.4); !errors.Is(err, ErrTenantMismatch) {
		t.Errorf("conflicting guarantee = %v, want ErrTenantMismatch", err)
	}
	if c.Tenants() != 1 {
		t.Errorf("Tenants = %d, want 1", c.Tenants())
	}
}

func TestRegisterTenantInfeasible(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	if _, err := c.RegisterTenant("big", 0.6); err != nil {
		t.Fatal(err)
	}
	_, err := c.RegisterTenant("greedy", 0.5)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("over-cap guarantee = %v, want ErrInfeasible", err)
	}
	if !IsInfeasible(err) {
		t.Error("IsInfeasible(err) = false for a local ErrInfeasible")
	}
	// The string-flattened form (what an RPC client sees) must still
	// classify.
	if !IsInfeasible(errors.New(err.Error())) {
		t.Error("IsInfeasible failed on the flattened message")
	}
	if got := c.GuaranteedSum(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("GuaranteedSum = %g after rejection, want 0.6", got)
	}
	// Freeing the guarantee makes room again.
	if err := c.DeregisterTenant(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterTenant("greedy", 0.5); err != nil {
		t.Fatalf("guarantee after release rejected: %v", err)
	}
}

func TestRegisterTenantValidation(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	for _, min := range []float64{-0.1, 1.0, 1.5, math.NaN()} {
		if _, err := c.RegisterTenant("x", min); err == nil {
			t.Errorf("guarantee %g accepted", min)
		}
	}
	if _, err := c.RegisterTenant("", 0.1); err == nil {
		t.Error("empty tenant name accepted")
	}
	if _, _, err := c.RegisterIn(99, "steep"); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("RegisterIn(unknown) = %v, want ErrUnknownTenant", err)
	}
}

func TestTenantFloorLifted(t *testing.T) {
	c, _, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	// "flat" is nearly insensitive: the plain Eq. 2 solve gives it close
	// to the MinShare floor. A 50% guarantee on its tenant must lift it.
	tid, err := c.RegisterTenant("latency-tier", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	flat, _, err := c.RegisterIn(tid, "flat")
	if err != nil {
		t.Fatal(err)
	}
	steep, _, _ := c.Register("steep")
	mid, _, _ := c.Register("mid1")
	if _, err := c.ConnCreate(flat, hosts[0], hosts[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(steep, hosts[1], hosts[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(mid, hosts[2], hosts[3]); err != nil {
		t.Fatal(err)
	}
	shares, err := c.TenantShares()
	if err != nil {
		t.Fatal(err)
	}
	if got := shares[tid]; got < 0.5-1e-9 {
		t.Errorf("tenant share = %g, want >= guaranteed 0.5", got)
	}
	if tt, err := c.TenantOf(flat); err != nil || tt != tid {
		t.Errorf("TenantOf(flat) = %d,%v, want %d", tt, err, tid)
	}
	if tt, _ := c.TenantOf(steep); tt != 0 {
		t.Errorf("TenantOf(steep) = %d, want 0 (untenanted)", tt)
	}
}

func TestTenantFloorsWorkConserving(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	// A tenant with a large guarantee but no registered applications must
	// not reserve anything: the present apps' solve is untouched.
	if _, err := c.RegisterTenant("ghost", 0.8); err != nil {
		t.Fatal(err)
	}
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	ids := []AppID{a, b}
	withGhost, err := c.solveWeights(ids)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range withGhost {
		sum += w
	}
	if math.Abs(sum-c.cfg.CSaba) > 1e-9 {
		t.Errorf("weight sum = %g, want CSaba %g (budget conserved)", sum, c.cfg.CSaba)
	}
	// Same solve with the ghost tenant gone must be bit-identical.
	c2, _, _ := rigController(t, 4, 16)
	a2, _, _ := c2.Register("steep")
	b2, _, _ := c2.Register("flat")
	plain, err := c2.solveWeights([]AppID{a2, b2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if withGhost[i] != plain[i] {
			t.Errorf("weight[%d] = %g with absent tenant, want %g (no reservation)", i, withGhost[i], plain[i])
		}
	}
}

func TestTenantFloorsPreserveBudgetUnderLift(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	tid, _ := c.RegisterTenant("guaranteed", 0.6)
	fa, _, err := c.RegisterIn(tid, "flat")
	if err != nil {
		t.Fatal(err)
	}
	sa, _, _ := c.Register("steep")
	ma, _, _ := c.Register("mid1")
	ids := []AppID{fa, sa, ma}
	sortAppIDs(ids)
	weights, err := c.solveWeights(ids)
	if err != nil {
		t.Fatal(err)
	}
	var sum, tenantSum float64
	for i, id := range ids {
		sum += weights[i]
		if id == fa {
			tenantSum += weights[i]
		}
	}
	if math.Abs(sum-c.cfg.CSaba) > 1e-9 {
		t.Errorf("lifted weight sum = %g, want %g", sum, c.cfg.CSaba)
	}
	if tenantSum < 0.6*c.cfg.CSaba-1e-9 {
		t.Errorf("tenant mass = %g, want >= floor %g", tenantSum, 0.6*c.cfg.CSaba)
	}
	for i, w := range weights {
		if w < 0 {
			t.Errorf("weight[%d] = %g went negative under water-fill", i, w)
		}
	}
}

func TestDeregisterTenantWithApps(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	tid, _ := c.RegisterTenant("busy", 0.2)
	id, _, err := c.RegisterIn(tid, "mid2")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeregisterTenant(tid); err == nil {
		t.Error("DeregisterTenant with live apps should fail")
	}
	if err := c.Deregister(id); err != nil {
		t.Fatal(err)
	}
	if err := c.DeregisterTenant(tid); err != nil {
		t.Errorf("DeregisterTenant after app removal: %v", err)
	}
	if c.GuaranteedSum() != 0 {
		t.Errorf("GuaranteedSum = %g after removal, want 0", c.GuaranteedSum())
	}
}
