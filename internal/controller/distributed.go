package controller

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"saba/internal/cluster"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/solver"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// MappingDB is the shared database of the distributed design (§5.4): the
// profiler computes the application→PL mapping and the PL clustering
// hierarchy offline over the full sensitivity table and stores them here;
// the distributed controllers only read. Because the mapping is built
// from profiled applications rather than the live registered set, it can
// be slightly stale — the accuracy/scalability trade-off the paper
// measures in study 7 (1.23x vs 1.27x speedup).
type MappingDB struct {
	mu      sync.RWMutex
	plOf    map[string]int // workload name → PL
	coeffs  map[string][]float64
	hier    *cluster.Hierarchy
	defCoef []float64
	defPL   int
}

// BuildMappingDB clusters every profiled application into PLs and builds
// the hierarchy, exactly as the profiler does after each profiling run.
func BuildMappingDB(table *profiler.Table, pls, minQueues int, seed int64) (*MappingDB, error) {
	names := table.Names()
	if len(names) == 0 {
		return nil, errors.New("controller: empty sensitivity table")
	}
	dim := 0
	coeffs := map[string][]float64{}
	for _, n := range names {
		e, ok := table.Get(n)
		if !ok {
			continue
		}
		coeffs[n] = e.Coeffs
		if len(e.Coeffs) > dim {
			dim = len(e.Coeffs)
		}
	}
	points := make([]cluster.Point, len(names))
	for i, n := range names {
		p := make(cluster.Point, dim)
		copy(p, coeffs[n])
		points[i] = p
	}
	res, err := cluster.KMeans(points, pls, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("controller: offline app→PL clustering: %w", err)
	}
	hier, err := cluster.BuildHierarchy(res.Centroids, minQueues)
	if err != nil {
		return nil, fmt.Errorf("controller: offline PL hierarchy: %w", err)
	}
	db := &MappingDB{
		plOf:    map[string]int{},
		coeffs:  coeffs,
		hier:    hier,
		defCoef: []float64{2.4, -1.87, 0.47},
	}
	for i, n := range names {
		db.plOf[n] = res.Assignment[i]
	}
	// Unknown applications borrow the PL of the densest cluster.
	counts := make([]int, len(res.Centroids))
	for _, a := range res.Assignment {
		counts[a]++
	}
	for pl, n := range counts {
		if n > counts[db.defPL] {
			db.defPL = pl
		}
	}
	return db, nil
}

// Lookup returns the PL and coefficients for an application name.
func (db *MappingDB) Lookup(name string) (pl int, coeffs []float64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if p, ok := db.plOf[name]; ok {
		return p, db.coeffs[name]
	}
	return db.defPL, db.defCoef
}

// Hierarchy returns the offline PL clustering hierarchy.
func (db *MappingDB) Hierarchy() *cluster.Hierarchy {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.hier
}

// Distributed is one shard of the distributed controller: it owns a
// subset of the switches and maintains only the port state of those
// switches. Connection setup walks the path shard by shard (the paper's
// "communicating with the next controller on the path"), implemented by
// the Mesh coordinator below.
type Distributed struct {
	mu       sync.Mutex
	id       int
	db       *MappingDB
	topo     *topology.Topology
	enforcer Enforcer
	owned    map[topology.NodeID]bool // switches this shard owns
	ports    map[topology.LinkID]*portState
	appPL    map[AppID]int
	appCoef  map[AppID][]float64
	csaba    float64
	minShare float64
	// sols memoizes full port configurations per (app set, queue
	// count); gen is its epoch, bumped whenever the shard's app table
	// changes so stale solutions can never be served.
	sols *solutionCache
	gen  uint64
	dead bool
	tel  *ctrlMetrics // shared with the owning Mesh
}

// Mesh is the collective of distributed controller shards plus the shared
// registration state (app IDs are global, like the subnet manager's LID
// space).
type Mesh struct {
	mu       sync.Mutex
	shards   []*Distributed
	ownerOf  map[topology.NodeID]*Distributed
	topo     *topology.Topology
	db       *MappingDB
	apps     map[AppID]string
	appConns map[AppID]int
	conns    map[ConnID]connState
	nextApp  AppID
	nextConn ConnID
	lastCalc time.Duration
	tel      ctrlMetrics
}

// SetTelemetry rebinds the mesh's (and its shards') instruments to a
// registry; call it right after NewMesh, before serving traffic.
func (m *Mesh) SetTelemetry(reg *telemetry.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tel = newCtrlMetrics(reg, "mesh")
	for _, sh := range m.shards {
		sh.mu.Lock()
		sh.tel = &m.tel
		// Rebuild the solution cache so its hit/miss counters follow
		// the new registry (drops any cached entries; callers rebind
		// right after NewMesh, before serving traffic).
		sh.sols = newSolutionCache(m.tel.solHits, m.tel.solMisses)
		sh.mu.Unlock()
	}
}

// NewMesh builds `shards` distributed controllers over the topology,
// assigning switches round-robin, all enforcing through the same
// enforcer (in a hardware deployment each shard programs its own
// switches).
func NewMesh(topo *topology.Topology, db *MappingDB, enforcer Enforcer, shards int, csaba, minShare float64) (*Mesh, error) {
	if shards < 1 {
		return nil, fmt.Errorf("controller: need at least one shard, got %d", shards)
	}
	if csaba == 0 {
		csaba = 1
	}
	m := &Mesh{
		ownerOf:  map[topology.NodeID]*Distributed{},
		topo:     topo,
		db:       db,
		apps:     map[AppID]string{},
		appConns: map[AppID]int{},
		conns:    map[ConnID]connState{},
		nextApp:  1,
		nextConn: 1,
		tel:      newCtrlMetrics(telemetry.Default, "mesh"),
	}
	for i := 0; i < shards; i++ {
		m.shards = append(m.shards, &Distributed{
			id:       i,
			db:       db,
			topo:     topo,
			enforcer: enforcer,
			owned:    map[topology.NodeID]bool{},
			ports:    map[topology.LinkID]*portState{},
			appPL:    map[AppID]int{},
			appCoef:  map[AppID][]float64{},
			csaba:    csaba,
			minShare: minShare,
			sols:     newSolutionCache(m.tel.solHits, m.tel.solMisses),
			tel:      &m.tel,
		})
	}
	// Hosts' egress ports are owned alongside their switch? Assign every
	// node (hosts included — their NIC VL arbiters are configured too)
	// round-robin across shards.
	for i, n := range topo.Nodes() {
		sh := m.shards[i%shards]
		sh.owned[n.ID] = true
		m.ownerOf[n.ID] = sh
	}
	return m, nil
}

// Register assigns a global app ID and fetches the offline PL from the
// database — no re-clustering happens online (§5.4).
func (m *Mesh) Register(name string) (AppID, int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextApp
	m.nextApp++
	m.apps[id] = name
	pl, coeffs := m.db.Lookup(name)
	for _, sh := range m.shards {
		sh.admit(id, pl, coeffs)
	}
	m.tel.registers.Inc()
	m.tel.apps.Set(float64(len(m.apps)))
	return id, pl, nil
}

// Deregister removes an application with no remaining connections.
func (m *Mesh) Deregister(id AppID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.apps[id]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	if m.appConns[id] > 0 {
		return fmt.Errorf("%w: %d", ErrHasConns, id)
	}
	delete(m.apps, id)
	delete(m.appConns, id)
	for _, sh := range m.shards {
		sh.evict(id)
	}
	m.tel.deregisters.Inc()
	m.tel.apps.Set(float64(len(m.apps)))
	return nil
}

// PL returns the (offline, immutable) priority level of an application.
func (m *Mesh) PL(id AppID) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name, ok := m.apps[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	pl, _ := m.db.Lookup(name)
	return pl, nil
}

// ConnCreate detects the path and walks it shard by shard: each shard
// updates and enforces the ports it owns, then hands off to the next.
// The walk is transactional: if any hop fails, the hops already applied
// are un-enforced and no mesh state is committed, so a mid-path
// enforcement failure cannot leak connection or port state.
func (m *Mesh) ConnCreate(id AppID, src, dst topology.NodeID) (ConnID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.apps[id]; !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	path, err := m.topo.Route(src, dst)
	if err != nil {
		return 0, fmt.Errorf("controller: path detection: %w", err)
	}
	start := time.Now()
	defer func() {
		m.lastCalc = time.Since(start)
		m.tel.solve.Observe(m.lastCalc.Seconds())
	}()
	hops := shardHops(m.ownerOf, m.topo, path)
	var applied []shardHop
	for _, hop := range hops {
		if err := hop.shard.addConn(id, hop.ports); err != nil {
			for k := len(applied) - 1; k >= 0; k-- {
				// Best-effort unwind; addConn already rolled back the
				// failing hop's own partial ports.
				_ = applied[k].shard.removeConn(id, applied[k].ports)
			}
			m.tel.rollbacks.Inc()
			return 0, err
		}
		applied = append(applied, hop)
	}
	cid := m.nextConn
	m.nextConn++
	m.conns[cid] = connState{app: id, src: src, dst: dst, path: path}
	m.appConns[id]++
	m.tel.connCreates.Inc()
	m.tel.conns.Set(float64(len(m.conns)))
	return cid, nil
}

// ConnDestroy removes a connection and re-enforces the affected shards.
// Like ConnCreate, it is transactional: a failed hop re-applies the hops
// already removed and keeps the connection tracked.
func (m *Mesh) ConnDestroy(cid ConnID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	conn, ok := m.conns[cid]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownConn, cid)
	}
	start := time.Now()
	defer func() {
		m.lastCalc = time.Since(start)
		m.tel.solve.Observe(m.lastCalc.Seconds())
	}()
	hops := shardHops(m.ownerOf, m.topo, conn.path)
	var removed []shardHop
	for _, hop := range hops {
		if err := hop.shard.removeConn(conn.app, hop.ports); err != nil {
			for k := len(removed) - 1; k >= 0; k-- {
				_ = removed[k].shard.addConn(conn.app, removed[k].ports)
			}
			m.tel.rollbacks.Inc()
			return err
		}
		removed = append(removed, hop)
	}
	delete(m.conns, cid)
	m.appConns[conn.app]--
	if m.appConns[conn.app] <= 0 {
		delete(m.appConns, conn.app)
	}
	m.tel.connDestroys.Inc()
	m.tel.conns.Set(float64(len(m.conns)))
	return nil
}

// Errors returned by the failover path.
var (
	ErrShardDead = errors.New("controller: shard is dead")
	ErrLastShard = errors.New("controller: cannot kill the last live shard")
)

// KillShard marks a shard dead and fails its switches over to the
// surviving shards: ownership is reassigned round-robin and the affected
// port state is replayed from the mesh's connection log (`conns` is the
// recovery source of truth), so every moved port ends up enforced with
// exactly the weights it had before the failure.
func (m *Mesh) KillShard(idx int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx < 0 || idx >= len(m.shards) {
		return fmt.Errorf("controller: no shard %d", idx)
	}
	victim := m.shards[idx]
	if victim.isDead() {
		return fmt.Errorf("%w: %d", ErrShardDead, idx)
	}
	var survivors []*Distributed
	for _, sh := range m.shards {
		if sh != victim && !sh.isDead() {
			survivors = append(survivors, sh)
		}
	}
	if len(survivors) == 0 {
		return ErrLastShard
	}
	victim.kill()
	m.tel.failovers.Inc()
	// Reassign the victim's nodes round-robin across survivors.
	moved := map[topology.NodeID]bool{}
	i := 0
	for _, n := range m.topo.Nodes() {
		if m.ownerOf[n.ID] != victim {
			continue
		}
		heir := survivors[i%len(survivors)]
		i++
		m.ownerOf[n.ID] = heir
		heir.own(n.ID)
		moved[n.ID] = true
	}
	// Replay the moved ports from the connection log.
	var firstErr error
	for _, conn := range m.conns {
		for _, l := range conn.path {
			lk, err := m.topo.Link(l)
			if err != nil || !moved[lk.From] {
				continue
			}
			if err := m.ownerOf[lk.From].addConn(conn.app, []topology.LinkID{l}); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("controller: failover replay of port %d: %w", l, err)
			}
		}
	}
	return firstErr
}

// AliveShards counts the shards still serving.
func (m *Mesh) AliveShards() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, sh := range m.shards {
		if !sh.isDead() {
			n++
		}
	}
	return n
}

// Apps returns the registered application count.
func (m *Mesh) Apps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.apps)
}

// Conns returns the tracked connection count.
func (m *Mesh) Conns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.conns)
}

// LastCalcDuration reports the most recent allocation walk's duration.
func (m *Mesh) LastCalcDuration() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastCalc
}

// shardHop groups consecutive path ports by owning shard.
type shardHop struct {
	shard *Distributed
	ports []topology.LinkID
}

func shardHops(ownerOf map[topology.NodeID]*Distributed, topo *topology.Topology, path []topology.LinkID) []shardHop {
	var hops []shardHop
	for _, l := range path {
		lk, err := topo.Link(l)
		if err != nil {
			continue
		}
		owner := ownerOf[lk.From]
		if owner == nil {
			continue
		}
		if len(hops) > 0 && hops[len(hops)-1].shard == owner {
			hops[len(hops)-1].ports = append(hops[len(hops)-1].ports, l)
			continue
		}
		hops = append(hops, shardHop{shard: owner, ports: []topology.LinkID{l}})
	}
	return hops
}

// admit introduces an application to the shard.
func (d *Distributed) admit(id AppID, pl int, coeffs []float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.appPL[id] = pl
	d.appCoef[id] = coeffs
	d.gen++ // invalidate memoized solutions
}

// evict removes an application from the shard.
func (d *Distributed) evict(id AppID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.appPL, id)
	delete(d.appCoef, id)
	d.gen++ // invalidate memoized solutions
}

// isDead reports whether the shard has been killed.
func (d *Distributed) isDead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dead
}

// kill marks the shard dead and drops its port state: its switches are
// about to be re-owned and replayed by the survivors.
func (d *Distributed) kill() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dead = true
	d.owned = map[topology.NodeID]bool{}
	d.ports = map[topology.LinkID]*portState{}
	d.gen++ // invalidate memoized solutions
}

// own transfers a node to this shard during failover.
func (d *Distributed) own(n topology.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.owned[n] = true
}

// addConn registers a connection on the shard's ports and re-enforces.
// On an enforcement failure it rolls back its own partial port updates,
// so a hop is all-or-nothing.
func (d *Distributed) addConn(id AppID, ports []topology.LinkID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return fmt.Errorf("%w: %d", ErrShardDead, d.id)
	}
	for i, l := range ports {
		ps := d.ports[l]
		if ps == nil {
			ps = &portState{appConns: map[AppID]int{}}
			d.ports[l] = ps
		}
		ps.appConns[id]++
		if err := d.enforcePortLocked(l); err != nil {
			d.rollbackAddLocked(id, ports[:i+1])
			return err
		}
	}
	return nil
}

// rollbackAddLocked undoes addConn's increments on the given ports,
// re-enforcing (or deconfiguring) each best-effort.
func (d *Distributed) rollbackAddLocked(id AppID, ports []topology.LinkID) {
	for _, l := range ports {
		ps := d.ports[l]
		if ps == nil {
			continue
		}
		ps.appConns[id]--
		if ps.appConns[id] <= 0 {
			delete(ps.appConns, id)
		}
		if len(ps.appConns) == 0 {
			delete(d.ports, l)
			deconfigure(d.enforcer, l)
			continue
		}
		_ = d.enforcePortLocked(l)
	}
}

// removeConn drops a connection from the shard's ports and re-enforces.
// On an enforcement failure it re-applies the ports already removed, so
// a hop is all-or-nothing.
func (d *Distributed) removeConn(id AppID, ports []topology.LinkID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.dead {
		return fmt.Errorf("%w: %d", ErrShardDead, d.id)
	}
	for i, l := range ports {
		ps := d.ports[l]
		if ps == nil {
			continue
		}
		ps.appConns[id]--
		if ps.appConns[id] <= 0 {
			delete(ps.appConns, id)
		}
		if len(ps.appConns) == 0 {
			delete(d.ports, l)
			deconfigure(d.enforcer, l)
			continue
		}
		if err := d.enforcePortLocked(l); err != nil {
			// Re-apply the decrements made so far (including this port's).
			for _, r := range ports[:i+1] {
				ps := d.ports[r]
				if ps == nil {
					ps = &portState{appConns: map[AppID]int{}}
					d.ports[r] = ps
				}
				ps.appConns[id]++
				_ = d.enforcePortLocked(r)
			}
			return err
		}
	}
	return nil
}

// enforcePortLocked mirrors the centralized per-port computation but uses
// the offline hierarchy and PL assignments. Full configurations are
// memoized per (app set, queue count) in the shard's solution cache.
func (d *Distributed) enforcePortLocked(port topology.LinkID) error {
	ps := d.ports[port]
	if ps == nil || len(ps.appConns) == 0 {
		return nil
	}
	ids := make([]AppID, 0, len(ps.appConns))
	for id := range ps.appConns {
		ids = append(ids, id)
	}
	sortAppIDs(ids)
	queues := d.topo.QueuesAt(port)
	if queues < 1 {
		queues = 1
	}
	key := appendVarint(appendAppSetKey(make([]byte, 0, len(ids)*3+2), ids), uint64(queues))
	cfg, err := d.sols.get(d.gen, key, func() (netsim.PortConfig, error) {
		return d.buildPortConfig(ids, port, queues)
	})
	if err != nil {
		return err
	}
	if err := d.enforcer.Configure(port, cfg); err != nil {
		return err
	}
	d.tel.ports.Inc()
	return nil
}

// buildPortConfig solves Eq. 2 over the port's (sorted) app set and maps
// the present PLs to the port's queues via the offline hierarchy.
func (d *Distributed) buildPortConfig(ids []AppID, port topology.LinkID, queues int) (netsim.PortConfig, error) {
	objs := make([]solver.Objective, len(ids))
	for i, id := range ids {
		objs[i] = solver.NewMonotonePoly(d.appCoef[id])
	}
	weights, err := solver.Minimize(objs, solver.Options{Total: d.csaba, MinShare: d.minShare})
	if err != nil {
		return netsim.PortConfig{}, fmt.Errorf("controller: shard %d Eq.2 on port %d: %w", d.id, port, err)
	}

	present := map[int]bool{}
	for _, id := range ids {
		present[d.appPL[id]] = true
	}
	presentPLs := make([]int, 0, len(present))
	for pl := range present {
		presentPLs = append(presentPLs, pl)
	}
	sortInts(presentPLs)
	clusters, err := d.db.Hierarchy().MapToQueues(presentPLs, queues)
	if err != nil {
		return netsim.PortConfig{}, fmt.Errorf("controller: shard %d PL→queue on port %d: %w", d.id, port, err)
	}
	plToQueue := map[int]int{}
	for q, cl := range clusters {
		for _, pl := range cl.Members {
			plToQueue[pl] = q
		}
	}
	qWeights := make([]float64, len(clusters))
	for i, id := range ids {
		if q, ok := plToQueue[d.appPL[id]]; ok {
			qWeights[q] += weights[i]
		}
	}
	return netsim.PortConfig{
		Weights:      qWeights,
		PLQueue:      plToQueue,
		DefaultQueue: defaultQueue(qWeights),
	}, nil
}
