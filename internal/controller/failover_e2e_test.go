// End-to-end fault-tolerance acceptance test: a sharded mesh served over
// the real TCP RPC stack, with ~20% of control-plane traffic dropped or
// reset and one shard killed mid-run, must converge to exactly the port
// state a fault-free run produces, leaking nothing.
//
// This lives in an external test package so it can compose faults (which
// imports controller) with sabalib (which faults must not import).
package controller_test

import (
	"math"
	"net"
	"testing"
	"time"

	"saba/internal/controller"
	"saba/internal/faults"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/rpc"
	"saba/internal/sabalib"
	"saba/internal/topology"
)

func e2eTable(t *testing.T) *profiler.Table {
	t.Helper()
	tab := profiler.NewTable()
	entries := []profiler.Entry{
		{Name: "steep", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}, R2: 0.95},
		{Name: "flat", Degree: 2, Coeffs: []float64{1.5, -0.6, 0.1}, R2: 0.9},
		{Name: "mid1", Degree: 2, Coeffs: []float64{2.8, -2.4, 0.6}, R2: 0.92},
		{Name: "mid2", Degree: 2, Coeffs: []float64{3.2, -3.0, 0.8}, R2: 0.93},
	}
	for _, e := range entries {
		if err := tab.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func e2eMesh(t *testing.T) (*controller.Mesh, *netsim.WFQ, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2, HostsPerToR: 3, Queues: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	wfq := netsim.NewWFQ(netsim.NewNetwork(top))
	db, err := controller.BuildMappingDB(e2eTable(t), 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := controller.NewMesh(top, db, wfq, 3, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return m, wfq, top
}

func configsEqual(a, b *netsim.PortConfig) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Weights) != len(b.Weights) || a.DefaultQueue != b.DefaultQueue || len(a.PLQueue) != len(b.PLQueue) {
		return false
	}
	for i := range a.Weights {
		if math.Abs(a.Weights[i]-b.Weights[i]) > 1e-9 {
			return false
		}
	}
	for pl, q := range a.PLQueue {
		if b.PLQueue[pl] != q {
			return false
		}
	}
	return true
}

// e2eOp is one scripted control-plane action, replayed identically against
// the faulty deployment and the fault-free reference.
type e2eOp struct {
	app      int // index into the app list
	src, dst int // index into hosts
	destroy  int // if >= 0, destroy the conn created by ops[destroy]
}

func TestFaultyMeshConvergesToFaultFreeState(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection e2e is slow")
	}
	names := []string{"steep", "flat", "mid1", "mid2"}
	// The scripted run: three conns per app, with two torn down again.
	// Indices chosen to cross pods so every shard's ports participate.
	// The 2-pod spine-leaf rig has 12 hosts: 0-5 in pod 0, 6-11 in pod 1.
	ops := []e2eOp{
		{app: 0, src: 0, dst: 11, destroy: -1},
		{app: 1, src: 1, dst: 10, destroy: -1},
		{app: 2, src: 2, dst: 9, destroy: -1},
		{app: 3, src: 3, dst: 8, destroy: -1},
		{app: 0, src: 4, dst: 7, destroy: -1},
		{app: 1, src: 5, dst: 6, destroy: -1},
		// KillShard(1) fires here, between ops[5] and ops[6].
		{app: 2, src: 6, dst: 1, destroy: -1},
		{app: 3, src: 7, dst: 0, destroy: -1},
		{app: 0, src: 0, dst: 5, destroy: -1},
		{destroy: 1}, // tears down ops[1]'s conn through the faulty network
		{destroy: 2}, // tears down ops[2]'s conn
		{app: 3, src: 8, dst: 2, destroy: -1},
	}

	// --- Faulty deployment: mesh behind RPC, listener injecting faults.
	m, wfq, top := e2eMesh(t)
	srv := rpc.NewServer()
	if err := controller.Serve(srv, m); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Config{Seed: 99, DropRate: 0.2, ResetRate: 0.2})
	addr, err := srv.Serve(inj.WrapListener(ln))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	hosts := top.Hosts()
	libs := make([]*sabalib.Library, len(names))
	for i, name := range names {
		tr := sabalib.DialControllerOptions(addr, rpc.Options{
			Timeout:     250 * time.Millisecond,
			MaxRetries:  30,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
			Seed:        int64(i + 1),
		})
		lib := sabalib.New(tr)
		if err := lib.Register(name); err != nil {
			t.Fatalf("register %s through faulty network: %v", name, err)
		}
		libs[i] = lib
	}
	conns := map[int]*sabalib.Conn{} // op index -> live conn
	for i, op := range ops {
		if i == 6 {
			if err := m.KillShard(1); err != nil {
				t.Fatalf("KillShard mid-run: %v", err)
			}
		}
		if op.destroy >= 0 {
			if err := conns[op.destroy].Destroy(); err != nil {
				t.Fatalf("op %d destroy through faulty network: %v", i, err)
			}
			delete(conns, op.destroy)
			continue
		}
		c, err := libs[op.app].ConnCreate(hosts[op.src], hosts[op.dst])
		if err != nil {
			t.Fatalf("op %d conn create through faulty network: %v", i, err)
		}
		conns[i] = c
	}
	st := inj.Stats()
	if st.Drops == 0 || st.Resets == 0 {
		t.Fatalf("fault injection never fired: %+v", st)
	}
	t.Logf("injected faults: %+v", st)

	// --- Fault-free reference: same script against a direct mesh.
	ref, refWFQ, refTop := e2eMesh(t)
	refApps := make([]controller.AppID, len(names))
	for i, name := range names {
		id, _, err := ref.Register(name)
		if err != nil {
			t.Fatal(err)
		}
		refApps[i] = id
	}
	refHosts := refTop.Hosts()
	refConns := map[int]controller.ConnID{}
	for i, op := range ops {
		if op.destroy >= 0 {
			if err := ref.ConnDestroy(refConns[op.destroy]); err != nil {
				t.Fatal(err)
			}
			delete(refConns, op.destroy)
			continue
		}
		cid, err := ref.ConnCreate(refApps[op.app], refHosts[op.src], refHosts[op.dst])
		if err != nil {
			t.Fatal(err)
		}
		refConns[i] = cid
	}

	// --- Convergence: every port enforces exactly the reference config.
	mismatches := 0
	for _, l := range top.Links() {
		if !configsEqual(refWFQ.Config(l.ID), wfq.Config(l.ID)) {
			mismatches++
			t.Errorf("port %d: faulty run config diverges from fault-free run", l.ID)
		}
	}
	if mismatches == 0 {
		t.Logf("all %d ports converged to the fault-free configuration", len(top.Links()))
	}

	// --- No leaked state despite retries, resets, and the dead shard.
	if m.Conns() != ref.Conns() {
		t.Errorf("faulty mesh tracks %d conns, reference %d", m.Conns(), ref.Conns())
	}
	if m.Conns() != len(conns) {
		t.Errorf("mesh tracks %d conns, clients hold %d", m.Conns(), len(conns))
	}
	if m.Apps() != len(names) {
		t.Errorf("Apps = %d, want %d", m.Apps(), len(names))
	}
	if m.AliveShards() != 2 {
		t.Errorf("AliveShards = %d, want 2", m.AliveShards())
	}

	// Full teardown still works through the faulty network and returns
	// every port to baseline fairness.
	for _, c := range conns {
		if err := c.Destroy(); err != nil {
			t.Fatalf("teardown destroy: %v", err)
		}
	}
	for _, lib := range libs {
		if err := lib.Deregister(); err != nil {
			t.Fatalf("teardown deregister: %v", err)
		}
		lib.Close()
	}
	if m.Conns() != 0 || m.Apps() != 0 {
		t.Errorf("state leaked after teardown: %d conns, %d apps", m.Conns(), m.Apps())
	}
	for _, l := range top.Links() {
		if wfq.Config(l.ID) != nil {
			t.Errorf("port %d still configured after teardown", l.ID)
		}
	}
}
