// Tenant layer: the guarantee abstraction above applications (ProNet
// arXiv 2305.02560, EyeQ arXiv 1405.0631 — predictable tenant-level
// sharing needs bandwidth minimums plus admission control). A tenant
// groups applications and carries a guaranteed minimum share of the
// Saba budget. Guarantees are folded into Eq. 2 work-conservingly: the
// floor of a tenant with no registered applications in the solved set
// is not reserved — its budget redistributes to whoever is present —
// and a present tenant whose Eq. 2 outcome falls below its floor is
// lifted to exactly the floor by a deterministic water-fill that
// preserves the intra-tenant ratios the solver chose.
package controller

import (
	"errors"
	"fmt"
	"math"
)

// TenantID identifies a registered tenant. 0 is reserved for
// "untenanted" applications, which receive no floor.
type TenantID int64

// tenantState tracks one tenant.
type tenantState struct {
	id   TenantID
	name string
	min  float64 // guaranteed minimum, fraction of the Saba budget
	apps int     // registered applications under this tenant
}

// Errors returned by the tenant layer.
var (
	ErrUnknownTenant = errors.New("controller: unknown tenant")
	// ErrTenantMismatch marks a re-registration of an existing tenant name
	// with a different guarantee: the caller's view of the tenant disagrees
	// with the controller's, which is never resolved silently.
	ErrTenantMismatch = errors.New("controller: tenant exists with different guarantee")
	// ErrInfeasible marks a guarantee the controller cannot admit: the sum
	// of guaranteed minimums would exceed the feasible capacity cap. The
	// request is rejected outright — queueing an infeasible guarantee
	// would only convert an honest "no" into a deferred lie.
	ErrInfeasible = errors.New("controller: guarantees infeasible")
)

// guaranteeEps absorbs float accumulation when comparing guarantee sums
// against the cap.
const guaranteeEps = 1e-9

// RegisterTenant admits a tenant with a guaranteed minimum share
// (fraction of the Saba budget, in [0,1)). Registration is idempotent
// by name: re-registering an existing tenant with the same guarantee
// returns the original TenantID without re-counting the guarantee —
// this is what makes a crash-replayed registration storm safe, since a
// client that never saw its first reply can simply send again. A
// re-registration with a *different* guarantee fails with
// ErrTenantMismatch, and a new guarantee that would push the admitted
// sum past Config.GuaranteeCap fails with ErrInfeasible.
func (c *Centralized) RegisterTenant(name string, min float64) (TenantID, error) {
	if name == "" {
		return 0, errors.New("controller: empty tenant name")
	}
	if math.IsNaN(min) || min < 0 || min >= 1 {
		return 0, fmt.Errorf("controller: tenant %q guarantee %g out of [0,1)", name, min)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if tid, ok := c.tenantByName[name]; ok {
		t := c.tenants[tid]
		if math.Abs(t.min-min) > 1e-12 {
			return 0, fmt.Errorf("%w: %q holds %g, requested %g", ErrTenantMismatch, name, t.min, min)
		}
		return tid, nil
	}
	if err := c.admitTenantLocked(min); err != nil {
		return 0, err
	}
	sum := c.guaranteedSumLocked()
	if sum+min > c.cfg.GuaranteeCap+guaranteeEps {
		c.tel.admitRejects.Inc()
		return 0, fmt.Errorf("%w: Σ minimums %.4g + %.4g exceeds cap %.4g",
			ErrInfeasible, sum, min, c.cfg.GuaranteeCap)
	}
	id := c.nextTenant
	c.nextTenant++
	c.tenants[id] = &tenantState{id: id, name: name, min: min}
	c.tenantByName[name] = id
	c.tel.tenants.Set(float64(len(c.tenants)))
	return id, nil
}

// RegisterIn admits an application under a tenant, so its Eq. 2 weight
// counts toward the tenant's guaranteed minimum.
func (c *Centralized) RegisterIn(tenant TenantID, name string) (AppID, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tenants[tenant] == nil {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownTenant, tenant)
	}
	return c.registerLocked(name, tenant)
}

// DeregisterTenant removes a tenant with no remaining applications,
// releasing its guarantee back to the admissible budget.
func (c *Centralized) DeregisterTenant(id TenantID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenants[id]
	if t == nil {
		return fmt.Errorf("%w: %d", ErrUnknownTenant, id)
	}
	if t.apps > 0 {
		return fmt.Errorf("controller: tenant %d still has %d applications", id, t.apps)
	}
	delete(c.tenants, id)
	delete(c.tenantByName, t.name)
	c.tel.tenants.Set(float64(len(c.tenants)))
	return nil
}

// TenantOf reports which tenant an application was registered under
// (0 for untenanted applications).
func (c *Centralized) TenantOf(id AppID) (TenantID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	return app.tenant, nil
}

// Tenants returns the registered tenant count.
func (c *Centralized) Tenants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tenants)
}

// GuaranteedSum returns the sum of admitted tenant minimums — the
// quantity the feasibility check bounds by Config.GuaranteeCap.
func (c *Centralized) GuaranteedSum() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.guaranteedSumLocked()
}

func (c *Centralized) guaranteedSumLocked() float64 {
	var sum float64
	for _, t := range c.tenants {
		sum += t.min
	}
	return sum
}

// TenantShares returns each tenant's share of the global Eq. 2 solve
// (floors applied) — the quantity FigOverload checks against the
// guarantees. Tenants with no registered applications are absent: their
// minimums are redistributed, not reserved.
func (c *Centralized) TenantShares() (map[TenantID]float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.apps) == 0 {
		return map[TenantID]float64{}, nil
	}
	global, err := c.globalWeightsLocked()
	if err != nil {
		return nil, err
	}
	var total float64
	for _, w := range global {
		total += w
	}
	shares := map[TenantID]float64{}
	if total <= 0 {
		return shares, nil
	}
	for id, w := range global {
		if t := c.apps[id].tenant; t != 0 {
			shares[t] += w / total
		}
	}
	return shares, nil
}

// applyTenantFloors water-fills tenant guaranteed minimums into an
// Eq. 2 weight vector. Work-conserving by construction: floors are
// computed only for tenants present in ids, over the weight mass the
// solver actually produced, so absent tenants' guarantees implicitly
// redistribute. Deficit tenants are frozen at exactly their floor and
// everyone else is rescaled into the remaining budget; freezing is
// monotone (the rescale factor only shrinks), so the loop terminates in
// at most one round per present tenant. Intra-tenant ratios from the
// solve are preserved. Mutates and returns weights. Read-only with
// respect to controller state; safe from plan workers.
func (c *Centralized) applyTenantFloors(ids []AppID, weights []float64) []float64 {
	if len(c.tenants) == 0 {
		return weights
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return weights
	}
	type group struct {
		idx    []int
		cur    float64
		floor  float64
		frozen bool
	}
	var order []TenantID
	byTenant := map[TenantID]*group{}
	var freeSum float64 // untenanted weight mass (rescalable, no floor)
	for i, id := range ids {
		tid := c.apps[id].tenant
		t := c.tenants[tid]
		if tid == 0 || t == nil {
			freeSum += weights[i]
			continue
		}
		g := byTenant[tid]
		if g == nil {
			g = &group{floor: t.min * total}
			byTenant[tid] = g
			order = append(order, tid)
		}
		g.idx = append(g.idx, i)
		g.cur += weights[i]
	}
	if len(order) == 0 {
		return weights
	}
	sortTenantIDs(order)
	// The admission cap keeps Σ minimums ≤ 1, but guard anyway (a test
	// can force-load state): floors beyond the budget scale down
	// proportionally rather than driving the flexible mass negative.
	var sumFloor float64
	for _, tid := range order {
		sumFloor += byTenant[tid].floor
	}
	if sumFloor > total {
		for _, tid := range order {
			byTenant[tid].floor *= total / sumFloor
		}
	}
	// Find the fixed point of (frozen set, rescale factor). Each round
	// can only freeze more tenants, so len(order) rounds suffice — plus
	// one final pass to recompute the scale after the last freeze.
	scale := 1.0
	for round := 0; round <= len(order); round++ {
		var frozenFloor, flexSum float64
		for _, tid := range order {
			g := byTenant[tid]
			if g.frozen {
				frozenFloor += g.floor
			} else {
				flexSum += g.cur
			}
		}
		flexSum += freeSum
		remain := total - frozenFloor
		if remain < 0 {
			remain = 0
		}
		if flexSum > 0 {
			scale = remain / flexSum
		} else {
			scale = 0
		}
		grew := false
		for _, tid := range order {
			g := byTenant[tid]
			if !g.frozen && g.cur*scale < g.floor*(1-1e-12) {
				g.frozen = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	anyFrozen := false
	for _, tid := range order {
		if byTenant[tid].frozen {
			anyFrozen = true
			break
		}
	}
	if !anyFrozen {
		return weights // every guarantee already met by the plain solve
	}
	c.tel.floorLifts.Inc()
	applied := map[int]bool{}
	for _, tid := range order {
		g := byTenant[tid]
		if !g.frozen {
			continue
		}
		if g.cur > 0 {
			f := g.floor / g.cur
			for _, i := range g.idx {
				weights[i] *= f
				applied[i] = true
			}
		} else {
			even := g.floor / float64(len(g.idx))
			for _, i := range g.idx {
				weights[i] = even
				applied[i] = true
			}
		}
	}
	for i := range weights {
		if !applied[i] {
			weights[i] *= scale
		}
	}
	return weights
}

func sortTenantIDs(ids []TenantID) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
}
