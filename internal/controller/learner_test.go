package controller

import (
	"math"
	"testing"

	"saba/internal/netsim"
	"saba/internal/regression"
	"saba/internal/topology"
)

// rigLearner is rigController with the online profile learner enabled.
func rigLearner(t *testing.T, hosts, pls int, drift DriftConfig) (*Centralized, *netsim.WFQ, *topology.Topology) {
	t.Helper()
	drift.Learn = true
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: hosts, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	c, err := NewCentralized(Config{
		Topology: top,
		Table:    testTable(t),
		Enforcer: wfq,
		PLs:      pls,
		Seed:     1,
		Drift:    drift,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, wfq, top
}

// newTruth is the post-drift reality the learner should recover in these
// tests: a valid slowdown curve (monotone non-increasing, ≥ 1, D(1)=1)
// that disagrees sharply with the "steep" profile at low bandwidth.
var newTruth = regression.Polynomial{Coeffs: []float64{2.2, -1.5, 0.3}}

func TestResidualDenominatorClamp(t *testing.T) {
	// A mis-fit model can predict ≤ 0 near full bandwidth. The residual
	// must clamp only the DENOMINATOR to the slowdown floor: the numerator
	// keeps the full |observed − predicted| so a garbage model still looks
	// as wrong as it is.
	misfit := []float64{0.5, -2.0} // predicts -1.5 at b=1
	r := driftResidual(misfit, 1.0, 1.0)
	if math.IsNaN(r) || math.IsInf(r, 0) {
		t.Fatalf("residual of negative prediction = %v, want finite", r)
	}
	// predicted=-1.5, denom clamps to 1: |1.0 − (−1.5)|/1 = 2.5.
	if math.Abs(r-2.5) > 1e-12 {
		t.Errorf("residual = %g, want 2.5 (numerator unclamped, denominator floored)", r)
	}

	// A positive but sub-1 prediction also floors the denominator.
	r = driftResidual([]float64{0.5}, 0.5, 1.0)
	if math.Abs(r-0.5) > 1e-12 {
		t.Errorf("residual with prediction 0.5 = %g, want 0.5", r)
	}

	// Non-finite predictions and observations are maximally drifted, not
	// silently clean: NaN compares false against any threshold, so without
	// this a broken model would wedge the counters in the clean state.
	if r := driftResidual([]float64{math.NaN()}, 0.5, 2.0); !math.IsInf(r, 1) {
		t.Errorf("NaN prediction residual = %v, want +Inf", r)
	}
	if r := driftResidual([]float64{2.0}, 0.5, math.NaN()); !math.IsInf(r, 1) {
		t.Errorf("NaN observation residual = %v, want +Inf", r)
	}
	if r := driftResidual([]float64{2.0}, 0.5, math.Inf(1)); !math.IsInf(r, 1) {
		t.Errorf("Inf observation residual = %v, want +Inf", r)
	}
}

// driveToQuarantine feeds drifted observations (reality = newTruth) until
// the app is quarantined, returning how many were needed.
func driveToQuarantine(t *testing.T, c *Centralized, id AppID, fractions []float64) int {
	t.Helper()
	for i, b := range fractions {
		changed, err := c.ObserveSlowdown(id, b, newTruth.Eval(b))
		if err != nil {
			t.Fatal(err)
		}
		if changed && c.Quarantined(id) {
			return i + 1
		}
	}
	t.Fatal("app never quarantined")
	return 0
}

// driveToPromotion continues the observation stream until the learner
// promotes a refit, returning how many post-quarantine observations it
// took.
func driveToPromotion(t *testing.T, c *Centralized, id AppID, fractions []float64) int {
	t.Helper()
	for i, b := range fractions {
		changed, err := c.ObserveSlowdown(id, b, newTruth.Eval(b))
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			if c.Quarantined(id) {
				t.Fatalf("observation %d re-quarantined instead of promoting", i+1)
			}
			return i + 1
		}
	}
	t.Fatal("learner never promoted a model")
	return 0
}

// Fractions kept ≤ 0.7: above that the old "steep" model happens to agree
// with newTruth within the drift threshold, and three consecutive such
// observations would release the quarantine through the transient path.
var (
	quarFractions  = []float64{0.5, 0.3, 0.6}
	learnFractions = []float64{0.1, 0.7, 0.2, 0.45, 0.55, 0.35, 0.65, 0.25, 0.15, 0.4, 0.3, 0.5, 0.6, 0.22, 0.68}
)

func TestOnlineRelearnPromotes(t *testing.T) {
	c, wfq, top := rigLearner(t, 4, 16, DriftConfig{})
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[1], hosts[2]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[2])
	down := path[len(path)-1]
	plA, _ := c.PL(a)
	before := wfq.Config(down)
	wA0 := before.Weights[before.PLQueue[plA]]

	if n := driveToQuarantine(t, c, a, quarFractions); n != 3 {
		t.Fatalf("quarantined after %d windows, want 3", n)
	}
	quarantined := wfq.Config(down)
	wAq := quarantined.Weights[quarantined.PLQueue[plA]]
	if wAq >= wA0 {
		t.Fatalf("quarantine did not drop the weight: %g → %g", wA0, wAq)
	}

	refits0 := c.tel.profileRefits.Value()
	driveToPromotion(t, c, a, learnFractions)
	if c.Quarantined(a) {
		t.Fatal("promoted app still quarantined")
	}
	if got := c.tel.profileRefits.Value(); got != refits0+1 {
		t.Fatalf("profile_refits = %d, want %d", got, refits0+1)
	}

	coeffs, learned, err := c.ModelOf(a)
	if err != nil {
		t.Fatal(err)
	}
	if !learned {
		t.Fatal("ModelOf reports the promoted model as not learned")
	}
	// The observations were exact evaluations of newTruth (which already
	// satisfies D(1)=1, matching the anchor), so the refit must recover it.
	fit := regression.Polynomial{Coeffs: coeffs}
	for _, bw := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
		if got, want := fit.Eval(bw), newTruth.Eval(bw); math.Abs(got-want) > 0.05 {
			t.Errorf("learned model at b=%g: %g, want ≈%g", bw, got, want)
		}
	}
	if !regression.ValidateSlowdownModel(fit, 0) {
		t.Errorf("promoted model fails the sanity check: %v", coeffs)
	}

	// The promoted model must drive enforcement: the app comes off the
	// fair-share pin and back into the Eq. 2 solve (newTruth is still the
	// more sensitive of the two apps, so it wins more than fair share).
	after := wfq.Config(down)
	wA2 := after.Weights[after.PLQueue[plA]]
	if wA2 <= wAq {
		t.Errorf("promoted model did not lift the app off fair share: weight %g, pinned %g", wA2, wAq)
	}
}

func TestQuarantineStateChangeInvalidatesSolutionCache(t *testing.T) {
	// PR 4's solution cache memoizes full port configurations per app set;
	// a quarantine state change alters the weights behind an UNCHANGED app
	// set, so serving a cached entry across the transition would silently
	// re-apply stale weights. Every transition must bump the solve epoch
	// (entries from other epochs are discarded wholesale).
	c, wfq, top := rigLearner(t, 4, 16, DriftConfig{})
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[1], hosts[2]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[2])
	down := path[len(path)-1]
	plA, _ := c.PL(a)
	weightOf := func() float64 {
		cfg := wfq.Config(down)
		return cfg.Weights[cfg.PLQueue[plA]]
	}

	w0 := weightOf()
	epoch0 := c.solEpoch

	// Entry: quarantine pins "steep" at fair share.
	driveToQuarantine(t, c, a, quarFractions)
	if c.solEpoch <= epoch0 {
		t.Fatalf("quarantine entry did not bump the solve epoch: %d → %d", epoch0, c.solEpoch)
	}
	w1 := weightOf()
	if w1 == w0 {
		t.Fatal("stale solution served across quarantine entry: weight unchanged")
	}

	// Promotion: the learned model replaces the stale one.
	epoch1 := c.solEpoch
	driveToPromotion(t, c, a, learnFractions)
	if c.solEpoch <= epoch1 {
		t.Fatalf("promotion did not bump the solve epoch: %d → %d", epoch1, c.solEpoch)
	}
	if w2 := weightOf(); w2 == w1 {
		t.Fatal("stale solution served across promotion: weight unchanged")
	}

	// Transient release (separate controller): quarantine then feed clean
	// observations of the ORIGINAL model; the release must restore the
	// original weights through a fresh solve, not a stale cache entry.
	c2, wfq2, top2 := rigLearner(t, 4, 16, DriftConfig{})
	hosts2 := top2.Hosts()
	a2, _, _ := c2.Register("steep")
	b2, _, _ := c2.Register("flat")
	if _, err := c2.ConnCreate(a2, hosts2[0], hosts2[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ConnCreate(b2, hosts2[1], hosts2[2]); err != nil {
		t.Fatal(err)
	}
	_ = b2
	path2, _ := top2.Route(hosts2[0], hosts2[2])
	down2 := path2[len(path2)-1]
	plA2, _ := c2.PL(a2)
	weightOf2 := func() float64 {
		cfg := wfq2.Config(down2)
		return cfg.Weights[cfg.PLQueue[plA2]]
	}
	v0 := weightOf2()
	driveToQuarantine(t, c2, a2, quarFractions)
	epoch2 := c2.solEpoch
	steep := regression.Polynomial{Coeffs: []float64{5.2, -6.0, 1.8}}
	for i := 0; i < 3; i++ {
		if _, err := c2.ObserveSlowdown(a2, 0.5, steep.Eval(0.5)); err != nil {
			t.Fatal(err)
		}
	}
	if c2.Quarantined(a2) {
		t.Fatal("clean observations did not release the quarantine")
	}
	if c2.solEpoch <= epoch2 {
		t.Fatalf("release did not bump the solve epoch: %d → %d", epoch2, c2.solEpoch)
	}
	if v2 := weightOf2(); v2 != v0 {
		t.Errorf("release restored weight %g, want pre-quarantine %g", v2, v0)
	}
}

func TestPromotedModelRollsBackWithinWindows(t *testing.T) {
	c, wfq, top := rigLearner(t, 4, 16, DriftConfig{})
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	bApp, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(bApp, hosts[1], hosts[2]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[2])
	down := path[len(path)-1]
	plA, _ := c.PL(a)
	weightOf := func() float64 {
		cfg := wfq.Config(down)
		return cfg.Weights[cfg.PLQueue[plA]]
	}

	driveToQuarantine(t, c, a, quarFractions)
	wFair := weightOf()
	driveToPromotion(t, c, a, learnFractions)
	origNeed := c.cfg.Drift.MinSamples

	// The workload flaps again: observations contradict the freshly
	// promoted model during its probation window. Rollback must land
	// within Windows observations — deterministic, not probabilistic.
	windows := c.cfg.Drift.Windows
	rolledBack := false
	for i := 0; i < windows; i++ {
		changed, err := c.ObserveSlowdown(a, 0.5, 10.0) // newTruth predicts 1.525
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			if i != windows-1 {
				t.Fatalf("rollback after %d observations, want exactly %d", i+1, windows)
			}
			rolledBack = true
		}
	}
	if !rolledBack || !c.Quarantined(a) {
		t.Fatalf("promoted model did not roll back within %d observations", windows)
	}
	if got := c.tel.profileRollbacks.Value(); got != 1 {
		t.Fatalf("profile_rollbacks = %d, want 1", got)
	}

	// Rolled back to fair share...
	if w := weightOf(); w != wFair {
		t.Errorf("rollback weight %g, want fair-share %g", w, wFair)
	}
	// ...with the pre-learning coefficients restored...
	coeffs, learned, err := c.ModelOf(a)
	if err != nil {
		t.Fatal(err)
	}
	if learned {
		t.Error("rolled-back model still marked learned")
	}
	orig := []float64{5.2, -6.0, 1.8}
	for i := range orig {
		if math.Abs(coeffs[i]-orig[i]) > 1e-12 {
			t.Fatalf("rollback coeffs = %v, want original %v", coeffs, orig)
		}
	}
	// ...and a widened evidence requirement (hysteresis).
	ds := c.drift[a]
	if want := origNeed * c.cfg.Drift.Widen; ds.need != want {
		t.Errorf("post-rollback sample requirement = %d, want %d", ds.need, want)
	}
	if len(ds.ring) != 0 {
		t.Errorf("post-rollback ring holds %d stale samples, want 0", len(ds.ring))
	}
}

func TestProbationPassMakesModelPermanent(t *testing.T) {
	c, _, top := rigLearner(t, 4, 16, DriftConfig{})
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	bApp, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(bApp, hosts[1], hosts[2]); err != nil {
		t.Fatal(err)
	}
	driveToQuarantine(t, c, a, quarFractions)
	driveToPromotion(t, c, a, learnFractions)

	ds := c.drift[a]
	if !ds.promoted || ds.probation != c.cfg.Drift.Probation {
		t.Fatalf("post-promotion state: promoted=%v probation=%d", ds.promoted, ds.probation)
	}
	// Clean observations (matching the learned model) walk probation down.
	for i := 0; i < c.cfg.Drift.Probation; i++ {
		if changed, err := c.ObserveSlowdown(a, 0.5, newTruth.Eval(0.5)); err != nil || changed {
			t.Fatalf("probation observation %d: changed=%v err=%v", i+1, changed, err)
		}
	}
	if ds.promoted || ds.probation != 0 {
		t.Fatalf("probation did not clear: promoted=%v probation=%d", ds.promoted, ds.probation)
	}
	if _, learned, _ := c.ModelOf(a); !learned {
		t.Error("model no longer marked learned after clearing probation")
	}
	if ds.need != c.cfg.Drift.MinSamples {
		t.Errorf("hysteresis did not reset: need=%d, want %d", ds.need, c.cfg.Drift.MinSamples)
	}
}

func TestFlatTruthPromotesDespiteDegenerateR2(t *testing.T) {
	// An app that drifts to near-insensitivity (slowdown ≈ constant) is
	// the degenerate case for the R² gate: the holdout samples have no
	// variance for the model to explain, so even a near-perfect fit
	// scores 0 and would be vetoed forever. The residual fallback must
	// promote it: every holdout prediction sits well within half the
	// drift threshold.
	flatTruth := regression.Polynomial{Coeffs: []float64{1.05}}
	c, _, top := rigLearner(t, 4, 16, DriftConfig{})
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	bApp, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(bApp, hosts[1], hosts[2]); err != nil {
		t.Fatal(err)
	}

	// "steep" predicts 2.2–3.6 at these fractions; a constant 1.05 is far
	// drifted, so the third window quarantines.
	for _, b := range quarFractions {
		if _, err := c.ObserveSlowdown(a, b, flatTruth.Eval(b)); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Quarantined(a) {
		t.Fatal("flat reality did not quarantine the steep profile")
	}

	promoted := false
	for _, b := range learnFractions {
		changed, err := c.ObserveSlowdown(a, b, flatTruth.Eval(b))
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			promoted = true
			break
		}
	}
	if !promoted || c.Quarantined(a) {
		t.Fatal("flat-truth refit was never promoted (degenerate-R² fallback broken)")
	}
	coeffs, learned, err := c.ModelOf(a)
	if err != nil {
		t.Fatal(err)
	}
	if !learned {
		t.Fatal("promoted flat model not marked learned")
	}
	fit := regression.Polynomial{Coeffs: coeffs}
	if !regression.ValidateSlowdownModel(fit, 0) {
		t.Fatalf("promoted flat model fails the sanity check: %v", coeffs)
	}
	// The learned curve must be flat-ish: between the floor and the true
	// constant (the (1,1) anchor pulls the full-bandwidth end down).
	for _, bw := range []float64{0.1, 0.3, 0.5, 0.7} {
		if got := fit.Eval(bw); got < 1 || got > 1.15 {
			t.Errorf("learned flat model at b=%g: %g, want within [1, 1.15]", bw, got)
		}
	}
}

func TestObservationRingBounded(t *testing.T) {
	ds := &driftState{}
	for i := 0; i < 100; i++ {
		ds.record(0.5, 2, 8)
	}
	if len(ds.ring) != 8 {
		t.Fatalf("ring length %d, want 8", len(ds.ring))
	}
	// Poison samples are refused.
	ds.record(math.NaN(), 2, 8)
	ds.record(0.5, math.Inf(1), 8)
	ds.record(-0.1, 2, 8)
	ds.record(1.5, 2, 8)
	if len(ds.ring) != 8 {
		t.Fatalf("ring accepted poison samples: length %d", len(ds.ring))
	}
	// Sub-floor slowdowns clamp to the floor rather than being dropped.
	ds.record(0.9, 0.5, 8)
	if got := ds.ring[len(ds.ring)-1].d; got != 1 {
		t.Errorf("sub-floor slowdown recorded as %g, want 1", got)
	}
}
