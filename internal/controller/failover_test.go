package controller

import (
	"errors"
	"math"
	"testing"

	"saba/internal/netsim"
	"saba/internal/topology"
)

// failEnforcer wraps an enforcer and fails Configure on one armed port.
type failEnforcer struct {
	inner    Enforcer
	failPort topology.LinkID
	armed    bool
}

func (f *failEnforcer) Configure(port topology.LinkID, cfg netsim.PortConfig) error {
	if f.armed && port == f.failPort {
		return errors.New("enforcer: injected configure failure")
	}
	return f.inner.Configure(port, cfg)
}

func (f *failEnforcer) Deconfigure(port topology.LinkID) {
	if d, ok := f.inner.(Deconfigurer); ok {
		d.Deconfigure(port)
	}
}

// sameConfig compares the controller-visible fields of two PortConfigs.
func sameConfig(a, b *netsim.PortConfig) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Weights) != len(b.Weights) || a.DefaultQueue != b.DefaultQueue || len(a.PLQueue) != len(b.PLQueue) {
		return false
	}
	for i := range a.Weights {
		if math.Abs(a.Weights[i]-b.Weights[i]) > 1e-9 {
			return false
		}
	}
	for pl, q := range a.PLQueue {
		if b.PLQueue[pl] != q {
			return false
		}
	}
	return true
}

func TestMeshShardFailoverReplaysPortState(t *testing.T) {
	m, wfq, top := rigMesh(t, 3)
	hosts := top.Hosts()
	a, _, err := m.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Register("flat")
	if err != nil {
		t.Fatal(err)
	}
	// Cross-pod connections touch ports of every shard.
	if _, err := m.ConnCreate(a, hosts[0], hosts[len(hosts)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnCreate(b, hosts[1], hosts[len(hosts)-1]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnCreate(a, hosts[2], hosts[3]); err != nil {
		t.Fatal(err)
	}
	// Snapshot every configured port.
	before := map[topology.LinkID]*netsim.PortConfig{}
	for _, l := range top.Links() {
		if cfg := wfq.Config(l.ID); cfg != nil {
			before[l.ID] = cfg
		}
	}
	if len(before) == 0 {
		t.Fatal("no ports configured before failover")
	}

	if err := m.KillShard(1); err != nil {
		t.Fatalf("KillShard: %v", err)
	}
	if m.AliveShards() != 2 {
		t.Errorf("AliveShards = %d, want 2", m.AliveShards())
	}
	// The replay from the connection log must reconstruct identical
	// enforcement on every port.
	for _, l := range top.Links() {
		if !sameConfig(before[l.ID], wfq.Config(l.ID)) {
			t.Errorf("port %d config changed across failover", l.ID)
		}
	}

	// The mesh keeps serving: new connections and teardown work, with the
	// dead shard's switches now owned by survivors.
	cid, err := m.ConnCreate(b, hosts[0], hosts[len(hosts)-1])
	if err != nil {
		t.Fatalf("ConnCreate after failover: %v", err)
	}
	if err := m.ConnDestroy(cid); err != nil {
		t.Fatalf("ConnDestroy after failover: %v", err)
	}

	// Double kill fails; killing all but one, then the last, fails.
	if err := m.KillShard(1); !errors.Is(err, ErrShardDead) {
		t.Errorf("double kill err = %v, want ErrShardDead", err)
	}
	if err := m.KillShard(0); err != nil {
		t.Fatal(err)
	}
	if err := m.KillShard(2); !errors.Is(err, ErrLastShard) {
		t.Errorf("killing last shard err = %v, want ErrLastShard", err)
	}
	if err := m.KillShard(7); err == nil {
		t.Error("killing an unknown shard should fail")
	}
}

func TestMeshConnCreateRollsBackOnEnforceFailure(t *testing.T) {
	// Arm a failure on the last port of the path: shards before it have
	// already enforced, so the walk must unwind them.
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2, HostsPerToR: 3, Queues: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	fe := &failEnforcer{inner: wfq}
	db, err := BuildMappingDB(testTable(t), 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMesh(top, db, fe, 3, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	a, _, err := m.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	src, dst := hosts[0], hosts[len(hosts)-1]
	path, _ := top.Route(src, dst)
	fe.failPort = path[len(path)-1]
	fe.armed = true

	if _, err := m.ConnCreate(a, src, dst); err == nil {
		t.Fatal("ConnCreate with failing enforcement should error")
	}
	// No state leaked: no tracked conns, the app can deregister (its conn
	// count rolled back), and no port kept a config.
	if m.Conns() != 0 {
		t.Errorf("Conns = %d after failed create, want 0", m.Conns())
	}
	for _, l := range path {
		if wfq.Config(l) != nil {
			t.Errorf("port %d still configured after rollback", l)
		}
	}
	if err := m.Deregister(a); err != nil {
		t.Errorf("Deregister after rolled-back create: %v", err)
	}

	// Disarm: the identical create now succeeds end to end.
	fe.armed = false
	a2, _, err := m.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnCreate(a2, src, dst); err != nil {
		t.Fatalf("ConnCreate after disarm: %v", err)
	}
	for _, l := range path {
		if wfq.Config(l) == nil {
			t.Errorf("port %d not configured after successful create", l)
		}
	}
}

func TestCentralizedConnCreateRollsBackOnEnforceFailure(t *testing.T) {
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 6, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	fe := &failEnforcer{inner: wfq}
	c, err := NewCentralized(Config{Topology: top, Table: testTable(t), Enforcer: fe, PLs: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	a, _, err := c.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[1])
	fe.failPort = path[len(path)-1]
	fe.armed = true
	if _, err := c.ConnCreate(a, hosts[0], hosts[1]); err == nil {
		t.Fatal("ConnCreate with failing enforcement should error")
	}
	if c.Conns() != 0 {
		t.Errorf("Conns = %d after failed create, want 0", c.Conns())
	}
	if err := c.Deregister(a); err != nil {
		t.Errorf("Deregister after rolled-back create: %v", err)
	}
}

func TestCentralizedDeconfiguresEmptiedPorts(t *testing.T) {
	c, wfq, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	cid, err := c.ConnCreate(a, hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[1])
	if wfq.Config(path[0]) == nil {
		t.Fatal("port not configured")
	}
	if err := c.ConnDestroy(cid); err != nil {
		t.Fatal(err)
	}
	// The last connection left: the port reverts to baseline fairness.
	for _, l := range path {
		if wfq.Config(l) != nil {
			t.Errorf("port %d still configured after its last conn left", l)
		}
	}
}
