package controller

import (
	"math"
	"strconv"

	"saba/internal/regression"
	"saba/internal/telemetry"
)

// Online profile learner: the relearn → validate → promote → (rollback)
// half of the drift state machine started in quarantine.go.
//
// While an app is quarantined its observations keep flowing through
// ObserveSlowdown, and — unlike the profiler's dedicated sweeps — they
// arrive at whatever bandwidth fractions the work-conserving fabric
// happened to grant: roughly the fair share under contention, much more
// when neighbors go idle. That natural variance is the free probing
// signal the learner fits against. Guardrails, in order:
//
//   - evidence gate: at least `need` ring samples spanning at least
//     MinSpread of bandwidth fraction (a cluster of near-identical
//     fractions is ill-conditioned by construction);
//   - fit: regression.FitWeighted at Degree with recency-decayed
//     1/slowdown² weights plus a heavily weighted (1, 1) anchor — the
//     slowdown normalization guarantees D(1)=1 exactly, and the anchor
//     keeps a fit over a partial bandwidth window from extrapolating
//     wildly near full bandwidth;
//   - floor repair: lift the curve by the amount it dips below 1 (small
//     LSQ undershoot near full bandwidth is shape noise, not signal);
//   - sanity: regression.ValidateSlowdownModel — monotone non-increasing
//     and ≥ 1 over [0, 1]; a failed fit is retried at degree 1 before
//     rejection, because a monotone line is the sanest minimal model;
//   - skill: CrossValidateR2 on held-out ring samples must clear R2Bar,
//     or — for flat curves that leave R² no variance to explain — every
//     holdout residual must sit within half the drift threshold.
//
// Promotion swaps the app's coefficients atomically under the controller
// lock, bumps the solve epoch (invalidating the cross-port solution
// cache and every port memo) and re-enforces. Deliberately, promotion
// does NOT re-run the app→PL clustering: renumbering PLs under live
// connections would desynchronize packets from the switch tables (the
// same argument as Deregister); the next registration re-clusters.
//
// A promoted model is on probation for Probation clean observations. If
// drift re-triggers inside that window, rollbackLocked restores the
// pre-learning coefficients, re-quarantines, and widens the sample
// requirement (capped at the ring size) — hysteresis, so a flapping
// workload presents more evidence each round instead of oscillating the
// solver.

// record appends an observation to the bounded recency ring, dropping
// the oldest sample when full. Non-finite observations are poison (the
// drift counters already treat them as maximally drifted) and slowdowns
// below 1 are outside the model's domain, so both are clamped out.
func (ds *driftState) record(b, d float64, cap int) {
	if math.IsNaN(b) || math.IsInf(b, 0) || math.IsNaN(d) || math.IsInf(d, 0) {
		return
	}
	if b <= 0 || b > 1 {
		return
	}
	if d < 1 {
		d = 1
	}
	if len(ds.ring) >= cap {
		copy(ds.ring, ds.ring[1:])
		ds.ring = ds.ring[:len(ds.ring)-1]
	}
	ds.ring = append(ds.ring, obsSample{b: b, d: d})
}

// ringSpread returns the bandwidth-fraction span covered by the ring.
func (ds *driftState) ringSpread() float64 {
	if len(ds.ring) == 0 {
		return 0
	}
	lo, hi := ds.ring[0].b, ds.ring[0].b
	for _, s := range ds.ring[1:] {
		if s.b < lo {
			lo = s.b
		}
		if s.b > hi {
			hi = s.b
		}
	}
	return hi - lo
}

// tryRefitLocked attempts to learn a replacement model for a quarantined
// app from its observation ring. It returns true if a model was promoted
// (the caller must bump the solve epoch and re-enforce). Evidence-gate
// misses are not refit attempts and are not counted; fits that reach the
// validator and fail increment refit_rejected.
func (c *Centralized) tryRefitLocked(app *appState, ds *driftState) bool {
	d := &c.cfg.Drift
	if len(ds.ring) < ds.need || ds.ringSpread() < d.MinSpread {
		return false
	}

	// Split the ring into train and holdout: every HoldoutEvery-th sample
	// is held out, so the holdout spans the same recency and bandwidth
	// range as the training set.
	var train, hold []regression.Sample
	var weights []float64
	n := len(ds.ring)
	wsum := 0.0
	for i, s := range ds.ring {
		if (i+1)%d.HoldoutEvery == 0 {
			hold = append(hold, regression.Sample{Bandwidth: s.b, Slowdown: s.d})
			continue
		}
		train = append(train, regression.Sample{Bandwidth: s.b, Slowdown: s.d})
		w := math.Pow(d.Decay, float64(n-1-i)) / (s.d * s.d)
		weights = append(weights, w)
		wsum += w
	}
	if len(hold) == 0 || len(train) <= d.Degree+1 {
		return false
	}
	// Anchor: the slowdown normalization makes D(1)=1 exact, so pin the
	// full-bandwidth end with the combined weight of every real sample.
	train = append(train, regression.Sample{Bandwidth: 1, Slowdown: 1})
	weights = append(weights, wsum)

	fit, ok := fitSane(train, weights, d.Degree)
	if !ok {
		c.tel.refitRejected.Inc()
		return false
	}
	if regression.CrossValidateR2(fit, hold) < d.R2Bar && !holdoutWithin(fit, hold, d.Threshold/2) {
		// R² is the variance explained on held-out samples — but an app
		// whose true curve is flat leaves no variance to explain, and R²
		// degenerates for it (a near-perfect fit can score arbitrarily
		// low). The fallback acceptance is self-consistent with the
		// detector instead: if every holdout prediction sits within half
		// the drift threshold of the observation, the promoted model
		// cannot re-trigger detection on the data that vetted it.
		c.tel.refitRejected.Inc()
		return false
	}

	// Promote: atomic under the controller lock. The ring is cleared so
	// the fresh model is judged only by observations it has seen.
	app.coeffs = fit.Coeffs
	ds.quarantined = false
	ds.promoted = true
	ds.learned = true
	ds.probation = d.Probation
	ds.ring = ds.ring[:0]
	ds.bad, ds.good = 0, 0
	ds.modelAge = 0
	ds.ageGauge.Set(0)
	c.tel.profileRefits.Inc()
	c.updateQuarGaugeLocked()
	return true
}

// holdoutWithin reports whether the model's relative residual stays
// within tol on every holdout sample (the degenerate-R² acceptance path
// of tryRefitLocked).
func holdoutWithin(fit regression.Polynomial, hold []regression.Sample, tol float64) bool {
	for _, h := range hold {
		if driftResidual(fit.Coeffs, h.Bandwidth, h.Slowdown) > tol {
			return false
		}
	}
	return true
}

// fitSane fits a polynomial of the given degree (falling back to degree
// 1) and repairs/validates it as a slowdown model. The returned model is
// guaranteed to satisfy regression.ValidateSlowdownModel(·, 0).
func fitSane(train []regression.Sample, weights []float64, degree int) (regression.Polynomial, bool) {
	for deg := degree; deg >= 1; deg-- {
		fit, err := regression.FitWeighted(train, deg, weights)
		if err != nil {
			continue
		}
		fit = liftToFloor(fit)
		if regression.ValidateSlowdownModel(fit, 0) {
			return fit, true
		}
	}
	return regression.Polynomial{}, false
}

// liftToFloor shifts the curve up by the amount it dips below the
// slowdown floor over [0, 1], if any. LSQ fits of decreasing data
// commonly undershoot 1 by a hair near full bandwidth; lifting preserves
// the fitted shape (and therefore Eq. 2's derivative structure) while
// restoring the physical floor.
func liftToFloor(p regression.Polynomial) regression.Polynomial {
	if len(p.Coeffs) == 0 {
		return p
	}
	min := math.Inf(1)
	for i := 0; i < 257; i++ {
		v := p.Eval(float64(i) / 256)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return p // validator will reject
		}
		if v < min {
			min = v
		}
	}
	if min >= 1 {
		return p
	}
	lifted := append([]float64(nil), p.Coeffs...)
	lifted[0] += 1 - min
	return regression.Polynomial{Coeffs: lifted}
}

// rollbackLocked handles drift re-triggering during a promoted model's
// probation: restore the pre-learning coefficients, return the app to
// fair share, and widen the evidence requirement.
func (c *Centralized) rollbackLocked(app *appState, ds *driftState) {
	if ds.origCoeffs != nil {
		app.coeffs = append([]float64(nil), ds.origCoeffs...)
	}
	ds.promoted = false
	ds.learned = false
	ds.probation = 0
	ds.need *= c.cfg.Drift.Widen
	if ds.need > c.cfg.Drift.RingSize {
		ds.need = c.cfg.Drift.RingSize
	}
	ds.ring = ds.ring[:0]
	ds.modelAge = 0
	ds.ageGauge.Set(0)
	c.tel.profileRollbacks.Inc()
	c.quarantineLocked(app, ds)
}

// modelAgeGauge resolves the per-app model-age gauge (observations since
// the app's current model was installed).
func (c *Centralized) modelAgeGauge(id AppID) *telemetry.Gauge {
	name := telemetry.Label("controller.model_age",
		"deploy", "centralized", "app", strconv.FormatInt(int64(id), 10))
	return c.cfg.Telemetry.Gauge(name)
}

// ModelOf returns a copy of the app's current sensitivity coefficients
// and whether they were learned online (as opposed to the registration
// -time profile). Experiment harnesses export promoted models through it.
func (c *Centralized) ModelOf(id AppID) ([]float64, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return nil, false, ErrUnknownApp
	}
	learned := false
	if ds := c.drift[id]; ds != nil {
		learned = ds.learned
	}
	return append([]float64(nil), app.coeffs...), learned, nil
}

// ShareOf returns the app's weight in the current global Eq. 2 solve —
// the bandwidth fraction the controller intends it to receive under full
// contention. Quarantined apps report the fair share they are pinned at.
func (c *Centralized) ShareOf(id AppID) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.apps[id]; !ok {
		return 0, ErrUnknownApp
	}
	w, err := c.globalWeightsLocked()
	if err != nil {
		return 0, err
	}
	return w[id], nil
}
