package controller

import (
	"math"
	"testing"

	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/topology"
)

// testTable builds a sensitivity table with one steep (sensitive) and one
// flat (insensitive) application plus two mid-range ones.
func testTable(t *testing.T) *profiler.Table {
	t.Helper()
	tab := profiler.NewTable()
	entries := []profiler.Entry{
		{Name: "steep", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}, R2: 0.95},
		{Name: "flat", Degree: 2, Coeffs: []float64{1.5, -0.6, 0.1}, R2: 0.9},
		{Name: "mid1", Degree: 2, Coeffs: []float64{2.8, -2.4, 0.6}, R2: 0.92},
		{Name: "mid2", Degree: 2, Coeffs: []float64{3.2, -3.0, 0.8}, R2: 0.93},
	}
	for _, e := range entries {
		if err := tab.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func rigController(t *testing.T, hosts, pls int) (*Centralized, *netsim.WFQ, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: hosts, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	c, err := NewCentralized(Config{
		Topology: top,
		Table:    testTable(t),
		Enforcer: wfq,
		PLs:      pls,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, wfq, top
}

func TestConfigValidation(t *testing.T) {
	top, _ := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 2})
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	tab := profiler.NewTable()
	bad := []Config{
		{Table: tab, Enforcer: wfq},
		{Topology: top, Enforcer: wfq},
		{Topology: top, Table: tab},
		{Topology: top, Table: tab, Enforcer: wfq, PLs: -1},
		{Topology: top, Table: tab, Enforcer: wfq, CSaba: 2},
	}
	for i, cfg := range bad {
		if _, err := NewCentralized(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRegisterAssignsPLs(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	a, plA, err := c.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	b, plB, err := c.Register("flat")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("distinct registrations share an app ID")
	}
	// With 16 PLs and 2 very different apps, they must land on distinct
	// PLs.
	if plA == plB {
		t.Errorf("steep and flat share PL %d", plA)
	}
	if got, err := c.PL(a); err != nil || got != plA {
		t.Errorf("PL(a) = %d,%v", got, err)
	}
	if c.Apps() != 2 {
		t.Errorf("Apps = %d, want 2", c.Apps())
	}
}

func TestRegisterUnknownAppUsesDefault(t *testing.T) {
	c, _, _ := rigController(t, 4, 16)
	if _, _, err := c.Register("never-profiled"); err != nil {
		t.Fatalf("unknown app should register with default sensitivity: %v", err)
	}
}

func TestFewPLsGroupSimilarApps(t *testing.T) {
	// With 2 PLs, the two mid-sensitivity apps must share a PL while
	// steep and flat stay apart from each other.
	c, _, _ := rigController(t, 4, 2)
	_, plSteep, _ := c.Register("steep")
	_, plFlat, _ := c.Register("flat")
	_, plM1, _ := c.Register("mid1")
	_, plM2, _ := c.Register("mid2")
	if plSteep == plFlat {
		t.Errorf("steep and flat share a PL with k=2")
	}
	if plM1 != plM2 {
		t.Errorf("mid1 (PL %d) and mid2 (PL %d) should cluster together", plM1, plM2)
	}
}

func TestConnCreateConfiguresPath(t *testing.T) {
	c, wfq, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	b, _, _ := c.Register("flat")
	if _, err := c.ConnCreate(a, hosts[0], hosts[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ConnCreate(b, hosts[1], hosts[2]); err != nil {
		t.Fatal(err)
	}
	// The shared downlink (switch→h2) must now be configured with two
	// queues whose weights favor the steep app.
	path, _ := top.Route(hosts[0], hosts[2])
	down := path[len(path)-1]
	cfg := wfq.Config(down)
	if cfg == nil {
		t.Fatal("shared port not configured")
	}
	plA, _ := c.PL(a)
	plB, _ := c.PL(b)
	qA, okA := cfg.PLQueue[plA]
	qB, okB := cfg.PLQueue[plB]
	if !okA || !okB {
		t.Fatalf("PLs not mapped: %+v", cfg.PLQueue)
	}
	if qA == qB {
		t.Fatalf("steep and flat mapped to the same queue")
	}
	if cfg.Weights[qA] <= cfg.Weights[qB] {
		t.Errorf("steep queue weight %g <= flat %g", cfg.Weights[qA], cfg.Weights[qB])
	}
	// Weights approximate the skewed split of §2.2 (more than 60% to the
	// sensitive app).
	total := cfg.Weights[qA] + cfg.Weights[qB]
	if cfg.Weights[qA]/total < 0.6 {
		t.Errorf("steep share = %.2f, want > 0.6", cfg.Weights[qA]/total)
	}
	if c.Conns() != 2 {
		t.Errorf("Conns = %d, want 2", c.Conns())
	}
}

func TestConnDestroyReleasesState(t *testing.T) {
	c, _, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	cid, err := c.ConnCreate(a, hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ConnDestroy(cid); err != nil {
		t.Fatal(err)
	}
	if c.Conns() != 0 {
		t.Errorf("Conns = %d after destroy", c.Conns())
	}
	if err := c.ConnDestroy(cid); err == nil {
		t.Error("double destroy should fail")
	}
	// Now the app can deregister.
	if err := c.Deregister(a); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(a); err == nil {
		t.Error("double deregister should fail")
	}
}

func TestDeregisterBlockedWithLiveConns(t *testing.T) {
	c, _, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	if _, err := c.ConnCreate(a, hosts[0], hosts[1]); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(a); err == nil {
		t.Error("deregister with live connections should fail")
	}
}

func TestConnCreateUnknownApp(t *testing.T) {
	c, _, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	if _, err := c.ConnCreate(AppID(99), hosts[0], hosts[1]); err == nil {
		t.Error("conn for unknown app should fail")
	}
	a, _, _ := c.Register("steep")
	if _, err := c.ConnCreate(a, hosts[0], topology.NodeID(999)); err == nil {
		t.Error("unroutable conn should fail")
	}
}

func TestSingleAppGetsFullShare(t *testing.T) {
	c, wfq, top := rigController(t, 4, 16)
	hosts := top.Hosts()
	a, _, _ := c.Register("steep")
	if _, err := c.ConnCreate(a, hosts[0], hosts[1]); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], hosts[1])
	cfg := wfq.Config(path[0])
	if cfg == nil {
		t.Fatal("port not configured")
	}
	sum := 0.0
	for _, w := range cfg.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("queue weights sum to %g, want 1 (CSaba)", sum)
	}
}

func TestRecomputeAllAndTiming(t *testing.T) {
	c, _, top := rigController(t, 8, 16)
	hosts := top.Hosts()
	var apps []AppID
	for _, name := range []string{"steep", "flat", "mid1", "mid2"} {
		id, _, err := c.Register(name)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, id)
	}
	for i, id := range apps {
		for k := 1; k <= 3; k++ {
			if _, err := c.ConnCreate(id, hosts[i], hosts[(i+k)%len(hosts)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	d, err := c.RecomputeAll()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("RecomputeAll should take measurable time")
	}
	if c.LastCalcDuration() != d {
		t.Error("LastCalcDuration mismatch")
	}
}

func TestQueueCapRespected(t *testing.T) {
	// 2-queue switch with 4 distinct apps: every configured port must have
	// at most 2 queues covering all PLs.
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 6, Queues: 2})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	c, err := NewCentralized(Config{Topology: top, Table: testTable(t), Enforcer: wfq, PLs: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	names := []string{"steep", "flat", "mid1", "mid2"}
	for i, n := range names {
		id, _, err := c.Register(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ConnCreate(id, hosts[i], hosts[5]); err != nil {
			t.Fatal(err)
		}
	}
	path, _ := top.Route(hosts[0], hosts[5])
	cfg := wfq.Config(path[len(path)-1])
	if cfg == nil {
		t.Fatal("shared port not configured")
	}
	if len(cfg.Weights) > 2 {
		t.Errorf("port has %d queues, cap is 2", len(cfg.Weights))
	}
	if len(cfg.PLQueue) != 4 {
		t.Errorf("PLQueue covers %d PLs, want 4", len(cfg.PLQueue))
	}
}
