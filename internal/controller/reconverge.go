package controller

import (
	"fmt"
	"time"

	"saba/internal/topology"
)

// Controller reconvergence after data-plane topology change. When links
// or switches fail (or recover), connection paths detected at ConnCreate
// time are stale: flows were rerouted or stalled by the simulator, so the
// per-port application membership the controller enforces from no longer
// matches the fabric. TopologyChanged rebuilds that membership by
// re-detecting every connection's path against the current liveness state
// and re-enforcing the result.
//
// The pass is bounded by Config.ReconvergeDeadline: a pass that errors or
// overruns the deadline degrades every configured port to baseline
// fair-share — the port-level analogue of PR 1's control-plane graceful
// degradation — rather than leaving half-updated weights live. The next
// successful pass recovers full Saba enforcement.

// TopologyChanged reconverges the centralized controller onto the current
// topology liveness state: it invalidates the solution cache (via the
// epoch sync), re-detects every connection's path in ascending ConnID
// order, deconfigures ports no longer crossed by any connection, and
// re-enforces the rest.
func (c *Centralized) TopologyChanged() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	c.tel.reconverges.Inc()
	c.syncTopoEpochLocked()
	if c.degraded {
		// Recovery from a degraded pass must re-push every port even if
		// memberships match the memos: the enforcer state was cleared.
		c.solEpoch++
	}
	err := c.reroutePortsLocked()
	if err == nil {
		err = c.enforceAllLocked()
	}
	if d := c.cfg.ReconvergeDeadline; d > 0 && (err != nil || time.Since(start) > d) {
		c.degradeAllLocked()
		return nil
	}
	if err != nil {
		return fmt.Errorf("controller: reconvergence: %w", err)
	}
	c.degraded = false
	return nil
}

// Degraded reports whether the last reconvergence pass dropped the fabric
// to baseline fair-share (deadline overrun or enforcement failure).
func (c *Centralized) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// reroutePortsLocked rebuilds the port membership map from re-detected
// connection paths. Connections whose endpoints are cut off keep a nil
// path (occupying no ports) until a later reconvergence finds one —
// mirroring the simulator, which stalls such flows rather than dropping
// them. Ports emptied by the rebuild are deconfigured.
func (c *Centralized) reroutePortsLocked() error {
	old := c.ports
	c.ports = make(map[topology.LinkID]*portState, len(old))
	cids := make([]ConnID, 0, len(c.conns))
	for cid := range c.conns {
		cids = append(cids, cid)
	}
	sortConnIDs(cids)
	for _, cid := range cids {
		conn := c.conns[cid]
		path, err := c.cfg.Topology.Route(conn.src, conn.dst)
		if err != nil {
			conn.path = nil
			c.conns[cid] = conn
			continue
		}
		conn.path = path
		c.conns[cid] = conn
		c.addPathLocked(conn.app, path)
	}
	abandoned := make([]topology.LinkID, 0, len(old))
	for l := range old {
		if c.ports[l] == nil {
			abandoned = append(abandoned, l)
		}
	}
	sortLinkIDs(abandoned)
	for _, l := range abandoned {
		deconfigure(c.cfg.Enforcer, l)
	}
	return nil
}

// degradeAllLocked reverts every configured port to baseline fair-share
// while keeping the membership state, so the next successful pass can
// restore Saba weights. The epoch bump defeats the per-port enforcement
// memos, which would otherwise skip the restoring push.
func (c *Centralized) degradeAllLocked() {
	ports := make([]topology.LinkID, 0, len(c.ports))
	for l := range c.ports {
		ports = append(ports, l)
	}
	sortLinkIDs(ports)
	for _, l := range ports {
		deconfigure(c.cfg.Enforcer, l)
	}
	c.solEpoch++
	c.degraded = true
	c.tel.reconvDegr.Inc()
}

// TopologyChanged reconverges the distributed mesh: every live shard
// drops its port state, and the mesh replays every connection (in
// ascending ConnID order) over re-detected paths, re-enforcing shard by
// shard. Connections whose endpoints are cut off are skipped until a
// later pass. The offline mapping database is untouched (§5.4: PL
// assignment is computed offline and does not react to runtime events).
func (m *Mesh) TopologyChanged() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tel.reconverges.Inc()
	for _, sh := range m.shards {
		if !sh.isDead() {
			sh.resetPorts()
		}
	}
	cids := make([]ConnID, 0, len(m.conns))
	for cid := range m.conns {
		cids = append(cids, cid)
	}
	sortConnIDs(cids)
	var firstErr error
	for _, cid := range cids {
		conn := m.conns[cid]
		path, err := m.topo.Route(conn.src, conn.dst)
		if err != nil {
			conn.path = nil
			m.conns[cid] = conn
			continue
		}
		conn.path = path
		m.conns[cid] = conn
		for _, hop := range shardHops(m.ownerOf, m.topo, path) {
			if err := hop.shard.addConn(conn.app, hop.ports); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("controller: reconvergence replay of conn %d: %w", cid, err)
			}
		}
	}
	return firstErr
}

// resetPorts drops the shard's port state ahead of a reconvergence
// replay, deconfiguring every previously enforced port.
func (d *Distributed) resetPorts() {
	d.mu.Lock()
	defer d.mu.Unlock()
	ports := make([]topology.LinkID, 0, len(d.ports))
	for l := range d.ports {
		ports = append(ports, l)
	}
	sortLinkIDs(ports)
	for _, l := range ports {
		deconfigure(d.enforcer, l)
	}
	d.ports = map[topology.LinkID]*portState{}
	d.gen++ // stale (app set, queues) solutions may reflect old capacity context
}

func sortConnIDs(ids []ConnID) {
	for i := 1; i < len(ids); i++ {
		for k := i; k > 0 && ids[k] < ids[k-1]; k-- {
			ids[k], ids[k-1] = ids[k-1], ids[k]
		}
	}
}
