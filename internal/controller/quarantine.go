package controller

import (
	"fmt"
	"math"

	"saba/internal/regression"
	"saba/internal/telemetry"
)

// Profile-drift quarantine. Saba's whole allocation rests on the offline
// sensitivity profiles (paper §4): if an application's behavior drifts
// from its polynomial model — a new code version, a dataset change, an
// adversarial profile — Eq. 2 optimizes against fiction and can starve
// well-behaved neighbors. The controller therefore cross-checks observed
// per-app slowdowns against the model's prediction at the granted
// bandwidth; an app whose relative residual exceeds Threshold for Windows
// consecutive observations is quarantined to the plain fair share
// (CSaba/n, see solveWeights) until the model tracks reality again for
// Windows consecutive observations.
//
// With Learn enabled the quarantine stops being a one-way door: the
// controller accumulates observed (bandwidth, slowdown) samples while an
// app is quarantined, refits its polynomial online, and promotes the new
// model once it validates — the detect → relearn → validate → promote →
// (rollback) state machine of learner.go.
//
// Quarantine is a Centralized-only feature: the distributed design reads
// an offline mapping database by construction (§5.4) and has no runtime
// feedback channel to act on.

// DriftConfig parameterizes the profile-drift quarantine and the online
// profile learner layered on top of it.
type DriftConfig struct {
	// Threshold is the relative residual |observed−predicted|/denominator
	// above which an observation window counts as drifted. 0 → 0.25.
	Threshold float64
	// Windows is the number of consecutive drifted (clean) observations
	// before an app is quarantined (released). 0 → 3.
	Windows int

	// Learn enables online profile relearning for quarantined apps (see
	// learner.go). Off by default: without it the quarantine behaves
	// exactly as before — detection and fair-share pinning only.
	Learn bool
	// RingSize bounds the per-app observation ring. 0 → 64.
	RingSize int
	// MinSamples is how many ring samples a quarantined app needs before
	// a refit is attempted (widened after a rollback). 0 → 12.
	MinSamples int
	// MinSpread is the minimum bandwidth-fraction spread (max−min) the
	// ring must cover before a refit is attempted: refitting a cluster of
	// near-identical fractions would be ill-conditioned by construction.
	// 0 → 0.2.
	MinSpread float64
	// R2Bar is the cross-validated R² a refit must clear on held-out
	// samples to be promoted. 0 → 0.9.
	R2Bar float64
	// HoldoutEvery holds out every k-th ring sample from the fit for
	// cross-validation. 0 → 4.
	HoldoutEvery int
	// Decay is the per-sample recency decay of fit weights: the i-th
	// newest sample is weighted Decay^i (times the profiler's 1/slowdown²
	// relative weighting). 0 → 0.97.
	Decay float64
	// Probation is the number of clean observations a freshly promoted
	// model must survive before it is trusted permanently; re-triggered
	// drift inside the window rolls back to fair share. 0 → 2·Windows.
	Probation int
	// Widen multiplies MinSamples after a probation rollback (hysteresis:
	// a flapping workload must present more evidence each time, so it
	// cannot oscillate the solver). 0 → 2. The requirement is capped at
	// RingSize.
	Widen int
	// Degree is the polynomial degree of online refits. 0 → 2. Refits
	// that fail validation at Degree are retried at degree 1 (a monotone
	// line is the sanest minimal slowdown model) before rejection.
	Degree int
}

func (d *DriftConfig) fill() {
	if d.Threshold <= 0 {
		d.Threshold = 0.25
	}
	if d.Windows <= 0 {
		d.Windows = 3
	}
	if d.RingSize <= 0 {
		d.RingSize = 64
	}
	if d.MinSamples <= 0 {
		d.MinSamples = 12
	}
	if d.MinSamples > d.RingSize {
		d.MinSamples = d.RingSize
	}
	if d.MinSpread <= 0 {
		d.MinSpread = 0.2
	}
	if d.R2Bar <= 0 {
		d.R2Bar = 0.9
	}
	if d.HoldoutEvery <= 0 {
		d.HoldoutEvery = 4
	}
	if d.Decay <= 0 || d.Decay > 1 {
		d.Decay = 0.97
	}
	if d.Probation <= 0 {
		d.Probation = 2 * d.Windows
	}
	if d.Widen <= 1 {
		d.Widen = 2
	}
	if d.Degree <= 0 {
		d.Degree = 2
	}
}

// obsSample is one runtime observation: granted bandwidth fraction and
// the slowdown measured there.
type obsSample struct {
	b, d float64
}

// driftState tracks one application's drift counters and, with Learn
// enabled, its online-learning state (see learner.go for the state
// machine).
type driftState struct {
	bad, good   int
	quarantined bool

	// Learning state (zero unless DriftConfig.Learn):
	ring       []obsSample // bounded recency ring of observations
	need       int         // samples required before a refit attempt
	promoted   bool        // current model is a learned one, on probation
	learned    bool        // current model was learned online
	probation  int         // clean observations left until trusted
	origCoeffs []float64   // pre-learning model, restored on rollback
	modelAge   uint64      // observations since the current model was installed
	ageGauge   *telemetry.Gauge
}

// driftResidual computes the relative residual of one observation against
// the model. The denominator is clamped to ≥ 1 (the slowdown floor): a
// mis-fit polynomial can predict ≤ 0 near full bandwidth, and dividing by
// it would emit Inf/NaN residuals that wedge the drift counters — NaN
// compares false against any threshold, so a garbage model would count
// every window as clean. Clamping only the denominator keeps the
// numerator honest about how far off the model is. Non-finite predictions
// or observations are maximally drifted by definition.
func driftResidual(coeffs []float64, bwFraction, observed float64) float64 {
	predicted := regression.Polynomial{Coeffs: coeffs}.Eval(bwFraction)
	if math.IsNaN(predicted) || math.IsInf(predicted, 0) ||
		math.IsNaN(observed) || math.IsInf(observed, 0) {
		return math.Inf(1)
	}
	denom := predicted
	if denom < 1 {
		denom = 1
	}
	return math.Abs(observed-predicted) / denom
}

// driftFor returns (creating if needed) the drift state for an app.
func (c *Centralized) driftFor(id AppID) *driftState {
	if c.drift == nil {
		c.drift = map[AppID]*driftState{}
	}
	ds := c.drift[id]
	if ds == nil {
		ds = &driftState{need: c.cfg.Drift.MinSamples}
		if c.cfg.Drift.Learn {
			ds.ageGauge = c.modelAgeGauge(id)
		}
		c.drift[id] = ds
	}
	return ds
}

// ObserveSlowdown feeds one measurement window for an application: the
// bandwidth fraction it was granted and the slowdown actually observed
// (≥ 1, same normalization as the profiler's samples). It returns whether
// the app's allocation inputs changed (quarantine entered or left, model
// promoted or rolled back); on a change the controller re-solves and
// re-enforces every port immediately.
func (c *Centralized) ObserveSlowdown(id AppID, bwFraction, observed float64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	ds := c.driftFor(id)
	learn := c.cfg.Drift.Learn

	drifted := driftResidual(app.coeffs, bwFraction, observed) > c.cfg.Drift.Threshold
	if drifted {
		ds.bad++
		ds.good = 0
	} else {
		ds.good++
		ds.bad = 0
	}
	if learn {
		ds.record(bwFraction, observed, c.cfg.Drift.RingSize)
		ds.modelAge++
		ds.ageGauge.Set(float64(ds.modelAge))
	}

	switch {
	case !ds.quarantined && ds.bad >= c.cfg.Drift.Windows:
		if learn && ds.promoted && ds.probation > 0 {
			c.rollbackLocked(app, ds)
		} else {
			c.quarantineLocked(app, ds)
		}
	case ds.quarantined && ds.good >= c.cfg.Drift.Windows:
		// The original model tracks reality again (transient drift):
		// release without relearning.
		ds.quarantined = false
		ds.bad, ds.good = 0, 0
		ds.need = c.cfg.Drift.MinSamples
		c.tel.unquarants.Inc()
		c.updateQuarGaugeLocked()
	case ds.quarantined && learn:
		if !c.tryRefitLocked(app, ds) {
			return false, nil
		}
	case learn && ds.promoted && ds.probation > 0 && !drifted:
		ds.probation--
		if ds.probation == 0 {
			// Survived probation: the learned model is now the trusted
			// baseline and the hysteresis resets.
			ds.promoted = false
			ds.need = c.cfg.Drift.MinSamples
		}
		return false, nil
	default:
		return false, nil
	}
	// Weight inputs changed: drop the global solve and every memoized
	// plan, then re-enforce the fabric with the app pinned (or restored).
	c.globalW = nil
	c.solEpoch++
	return true, c.enforceAllLocked()
}

// quarantineLocked pins the app to the fair share and, with Learn on,
// starts accumulating evidence for a refit. Ring samples observed before
// the drift window describe the old reality and would poison the fit, so
// only the Windows observations that triggered the quarantine are kept.
func (c *Centralized) quarantineLocked(app *appState, ds *driftState) {
	ds.quarantined = true
	ds.bad, ds.good = 0, 0
	if c.cfg.Drift.Learn {
		if ds.origCoeffs == nil {
			ds.origCoeffs = append([]float64(nil), app.coeffs...)
		}
		if keep := c.cfg.Drift.Windows; len(ds.ring) > keep {
			ds.ring = append(ds.ring[:0], ds.ring[len(ds.ring)-keep:]...)
		}
	}
	c.tel.quarantines.Inc()
	c.updateQuarGaugeLocked()
}

// Quarantined reports whether the application is currently pinned to the
// fair share for profile drift.
func (c *Centralized) Quarantined(id AppID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds := c.drift[id]
	return ds != nil && ds.quarantined
}

// ForceQuarantine pins an application to the fair share as if drift
// detection had fired, re-enforcing the fabric. Experiment harnesses use
// it to construct the "stale profile, already detected" starting state
// without replaying an observation stream.
func (c *Centralized) ForceQuarantine(id AppID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	ds := c.driftFor(id)
	if ds.quarantined {
		return nil
	}
	c.quarantineLocked(app, ds)
	c.globalW = nil
	c.solEpoch++
	return c.enforceAllLocked()
}

// updateQuarGaugeLocked recomputes the quarantined-apps gauge.
func (c *Centralized) updateQuarGaugeLocked() {
	n := 0
	for _, ds := range c.drift {
		if ds.quarantined {
			n++
		}
	}
	c.tel.quarApps.Set(float64(n))
}
