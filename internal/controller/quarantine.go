package controller

import (
	"fmt"
	"math"

	"saba/internal/regression"
)

// Profile-drift quarantine. Saba's whole allocation rests on the offline
// sensitivity profiles (paper §4): if an application's behavior drifts
// from its polynomial model — a new code version, a dataset change, an
// adversarial profile — Eq. 2 optimizes against fiction and can starve
// well-behaved neighbors. The controller therefore cross-checks observed
// per-app slowdowns against the model's prediction at the granted
// bandwidth; an app whose relative residual exceeds Threshold for Windows
// consecutive observations is quarantined to the plain fair share
// (CSaba/n, see solveWeights) until the model tracks reality again for
// Windows consecutive observations.
//
// Quarantine is a Centralized-only feature: the distributed design reads
// an offline mapping database by construction (§5.4) and has no runtime
// feedback channel to act on.

// DriftConfig parameterizes the profile-drift quarantine.
type DriftConfig struct {
	// Threshold is the relative residual |observed−predicted|/predicted
	// above which an observation window counts as drifted. 0 → 0.25.
	Threshold float64
	// Windows is the number of consecutive drifted (clean) observations
	// before an app is quarantined (released). 0 → 3.
	Windows int
}

func (d *DriftConfig) fill() {
	if d.Threshold <= 0 {
		d.Threshold = 0.25
	}
	if d.Windows <= 0 {
		d.Windows = 3
	}
}

// driftState tracks one application's consecutive drifted/clean windows.
type driftState struct {
	bad, good   int
	quarantined bool
}

// ObserveSlowdown feeds one measurement window for an application: the
// bandwidth fraction it was granted and the slowdown actually observed
// (≥ 1, same normalization as the profiler's samples). It returns whether
// the app's quarantine state changed; on a change the controller re-solves
// and re-enforces every port immediately.
func (c *Centralized) ObserveSlowdown(id AppID, bwFraction, observed float64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	app, ok := c.apps[id]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownApp, id)
	}
	if c.drift == nil {
		c.drift = map[AppID]*driftState{}
	}
	ds := c.drift[id]
	if ds == nil {
		ds = &driftState{}
		c.drift[id] = ds
	}
	predicted := regression.Polynomial{Coeffs: app.coeffs}.Eval(bwFraction)
	if predicted < 1 {
		predicted = 1 // a slowdown below 1 is outside the model's domain
	}
	if residual := math.Abs(observed-predicted) / predicted; residual > c.cfg.Drift.Threshold {
		ds.bad++
		ds.good = 0
	} else {
		ds.good++
		ds.bad = 0
	}
	switch {
	case !ds.quarantined && ds.bad >= c.cfg.Drift.Windows:
		ds.quarantined = true
		ds.bad, ds.good = 0, 0
		c.tel.quarantines.Inc()
	case ds.quarantined && ds.good >= c.cfg.Drift.Windows:
		ds.quarantined = false
		ds.bad, ds.good = 0, 0
		c.tel.unquarants.Inc()
	default:
		return false, nil
	}
	// Weight inputs changed: drop the global solve and every memoized
	// plan, then re-enforce the fabric with the app pinned (or restored).
	c.globalW = nil
	c.solEpoch++
	return true, c.enforceAllLocked()
}

// Quarantined reports whether the application is currently pinned to the
// fair share for profile drift.
func (c *Centralized) Quarantined(id AppID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds := c.drift[id]
	return ds != nil && ds.quarantined
}
