package controller

import (
	"testing"

	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/topology"
)

func rigMesh(t *testing.T, shards int) (*Mesh, *netsim.WFQ, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2, HostsPerToR: 3, Queues: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	db, err := BuildMappingDB(testTable(t), 16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMesh(top, db, wfq, shards, 1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return m, wfq, top
}

func TestBuildMappingDB(t *testing.T) {
	db, err := BuildMappingDB(testTable(t), 16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	plSteep, coeffsSteep := db.Lookup("steep")
	plFlat, _ := db.Lookup("flat")
	if plSteep == plFlat {
		t.Error("steep and flat share an offline PL")
	}
	if len(coeffsSteep) == 0 {
		t.Error("lookup lost coefficients")
	}
	// Unknown app gets the default PL and moderate coefficients.
	plX, coeffsX := db.Lookup("unknown")
	if len(coeffsX) == 0 {
		t.Error("unknown app has no default coefficients")
	}
	_ = plX
	if db.Hierarchy() == nil {
		t.Error("missing hierarchy")
	}
}

func TestBuildMappingDBEmptyTable(t *testing.T) {
	if _, err := BuildMappingDB(profiler.NewTable(), 16, 4, 1); err == nil {
		t.Error("empty table should fail")
	}
}

func TestMeshRegisterAndConns(t *testing.T) {
	m, wfq, top := rigMesh(t, 3)
	hosts := top.Hosts()
	a, plA, err := m.Register("steep")
	if err != nil {
		t.Fatal(err)
	}
	b, plB, err := m.Register("flat")
	if err != nil {
		t.Fatal(err)
	}
	if plA == plB {
		t.Error("steep and flat share a PL in the mesh")
	}
	// Cross-pod connection: traverses ports owned by several shards.
	src, dst := hosts[0], hosts[len(hosts)-1]
	ca, err := m.ConnCreate(a, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnCreate(b, src, dst); err != nil {
		t.Fatal(err)
	}
	// Every port on the path must be configured.
	path, _ := top.Route(src, dst)
	for _, l := range path {
		if wfq.Config(l) == nil {
			t.Errorf("port %d on path not configured", l)
		}
	}
	if m.LastCalcDuration() < 0 {
		t.Error("calc duration should be non-negative")
	}
	if err := m.ConnDestroy(ca); err != nil {
		t.Fatal(err)
	}
	if err := m.ConnDestroy(ca); err == nil {
		t.Error("double destroy should fail")
	}
}

func TestMeshDeregister(t *testing.T) {
	m, _, top := rigMesh(t, 2)
	hosts := top.Hosts()
	a, _, _ := m.Register("mid1")
	cid, err := m.ConnCreate(a, hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Deregister(a); err == nil {
		t.Error("deregister with live conns should fail")
	}
	if err := m.ConnDestroy(cid); err != nil {
		t.Fatal(err)
	}
	if err := m.Deregister(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Deregister(a); err == nil {
		t.Error("double deregister should fail")
	}
	if _, err := m.ConnCreate(a, hosts[0], hosts[1]); err == nil {
		t.Error("conn for deregistered app should fail")
	}
}

func TestMeshShardValidation(t *testing.T) {
	_, _, top := rigMesh(t, 1)
	db, _ := BuildMappingDB(testTable(t), 16, 8, 1)
	net := netsim.NewNetwork(top)
	if _, err := NewMesh(top, db, netsim.NewWFQ(net), 0, 1, 0.01); err == nil {
		t.Error("zero shards should fail")
	}
}

func TestMeshFavorsSensitiveAppLikeCentralized(t *testing.T) {
	m, wfq, top := rigMesh(t, 4)
	hosts := top.Hosts()
	a, plA, _ := m.Register("steep")
	b, plB, _ := m.Register("flat")
	dst := hosts[2]
	if _, err := m.ConnCreate(a, hosts[0], dst); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ConnCreate(b, hosts[1], dst); err != nil {
		t.Fatal(err)
	}
	path, _ := top.Route(hosts[0], dst)
	down := path[len(path)-1]
	cfg := wfq.Config(down)
	if cfg == nil {
		t.Fatal("shared port not configured")
	}
	qA, qB := cfg.PLQueue[plA], cfg.PLQueue[plB]
	if qA == qB {
		t.Fatal("PLs share a queue despite spare queues")
	}
	if cfg.Weights[qA] <= cfg.Weights[qB] {
		t.Errorf("mesh gave steep %g <= flat %g", cfg.Weights[qA], cfg.Weights[qB])
	}
}
