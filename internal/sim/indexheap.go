package sim

// IndexedHeap is a min-heap of (key, id) pairs addressable by id: the
// netsim engine keeps one entry per active flow, keyed by the flow's
// projected completion time, so finding the next completion is O(1) and
// re-projecting a flow whose rate changed is O(log n) — instead of the
// O(n) full scan per event the engine used to do. Ties order by id,
// which keeps pop order deterministic (and matches the historical
// ascending-index completion order for simultaneous finishes).
//
// Ids must be small non-negative integers; the heap allocates a dense
// position index sized by the largest id ever inserted, which fits the
// engine's recycled FlowID space exactly. The zero value is ready to use.
type IndexedHeap struct {
	ids []int
	key []float64
	pos []int32 // id → heap slot + 1; 0 = absent
}

// Len returns the number of entries.
func (h *IndexedHeap) Len() int { return len(h.ids) }

// Min returns the smallest (key, id) entry without removing it.
func (h *IndexedHeap) Min() (key float64, id int, ok bool) {
	if len(h.ids) == 0 {
		return 0, 0, false
	}
	return h.key[0], h.ids[0], true
}

// Contains reports whether id has an entry.
func (h *IndexedHeap) Contains(id int) bool {
	return id >= 0 && id < len(h.pos) && h.pos[id] != 0
}

// Key returns the current key of id, if present.
func (h *IndexedHeap) Key(id int) (float64, bool) {
	if !h.Contains(id) {
		return 0, false
	}
	return h.key[h.pos[id]-1], true
}

// Grow pre-sizes the heap for ids up to maxID and n simultaneous
// entries. A caller that knows its population — the sharded engine
// re-projecting a shard's active flows — pays one allocation per
// backing array instead of the append-growth sequence. Lengths are
// untouched; undersized arguments are a no-op.
func (h *IndexedHeap) Grow(maxID, n int) {
	// At-least-doubling keeps a Grow-per-round caller amortized: exact
	// sizing would reallocate on every round of a steadily growing
	// population, defeating the point.
	if need := maxID + 1; need > cap(h.pos) {
		if c := 2 * cap(h.pos); need < c {
			need = c
		}
		np := make([]int32, len(h.pos), need)
		copy(np, h.pos)
		h.pos = np
	}
	if n > cap(h.ids) {
		if c := 2 * cap(h.ids); n < c {
			n = c
		}
		ni := make([]int, len(h.ids), n)
		copy(ni, h.ids)
		h.ids = ni
		nk := make([]float64, len(h.key), n)
		copy(nk, h.key)
		h.key = nk
	}
}

// Fix inserts id with the given key, or re-keys it if already present,
// restoring heap order in O(log n).
func (h *IndexedHeap) Fix(id int, key float64) {
	if id < 0 {
		panic("sim: negative heap id")
	}
	for id >= len(h.pos) {
		h.pos = append(h.pos, 0)
	}
	if p := h.pos[id]; p != 0 {
		i := int(p - 1)
		old := h.key[i]
		h.key[i] = key
		if key < old {
			h.up(i)
		} else {
			h.down(i)
		}
		return
	}
	h.ids = append(h.ids, id)
	h.key = append(h.key, key)
	h.pos[id] = int32(len(h.ids))
	h.up(len(h.ids) - 1)
}

// Remove deletes id's entry; it reports whether one existed.
func (h *IndexedHeap) Remove(id int) bool {
	if !h.Contains(id) {
		return false
	}
	h.removeAt(int(h.pos[id] - 1))
	return true
}

// Pop removes and returns the smallest entry.
func (h *IndexedHeap) Pop() (key float64, id int, ok bool) {
	if len(h.ids) == 0 {
		return 0, 0, false
	}
	key, id = h.key[0], h.ids[0]
	h.removeAt(0)
	return key, id, true
}

// Reset drops all entries, retaining capacity.
func (h *IndexedHeap) Reset() {
	for _, id := range h.ids {
		h.pos[id] = 0
	}
	h.ids = h.ids[:0]
	h.key = h.key[:0]
}

func (h *IndexedHeap) removeAt(i int) {
	last := len(h.ids) - 1
	h.pos[h.ids[i]] = 0
	if i != last {
		h.ids[i] = h.ids[last]
		h.key[i] = h.key[last]
		h.pos[h.ids[i]] = int32(i + 1)
	}
	h.ids = h.ids[:last]
	h.key = h.key[:last]
	if i < last && !h.up(i) {
		h.down(i)
	}
}

func (h *IndexedHeap) less(i, j int) bool {
	if h.key[i] != h.key[j] {
		return h.key[i] < h.key[j]
	}
	return h.ids[i] < h.ids[j]
}

func (h *IndexedHeap) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.key[i], h.key[j] = h.key[j], h.key[i]
	h.pos[h.ids[i]] = int32(i + 1)
	h.pos[h.ids[j]] = int32(j + 1)
}

// up sifts i toward the root; it reports whether i moved.
func (h *IndexedHeap) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts i toward the leaves; it reports whether i moved.
func (h *IndexedHeap) down(i int) bool {
	moved := false
	n := len(h.ids)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && h.less(right, left) {
			child = right
		}
		if !h.less(child, i) {
			break
		}
		h.swap(i, child)
		i = child
		moved = true
	}
	return moved
}
