package sim

import "math"

// Barrier is a conservative virtual-time barrier for a sharded event
// loop. Each shard proposes the timestamp of its next local event; the
// coordinator advances the global clock to the minimum proposal and
// releases every shard whose work falls at (or within slack of) that
// horizon. Shards with no pending work propose nothing, and a round
// with no proposals yields +Inf — the caller's deadlock signal.
//
// The barrier itself is not concurrency-safe: the coordinator calls
// Propose from shard collection code that it has already synchronized
// (each shard owns a distinct slot), and Reset/Next only between
// phases. This mirrors how sim.Clock leaves locking to the engine.
type Barrier struct {
	next []float64
}

// NewBarrier returns a barrier coordinating n shards.
func NewBarrier(n int) *Barrier {
	b := &Barrier{next: make([]float64, n)}
	b.Reset()
	return b
}

// Reset clears all proposals. Call once per barrier round.
func (b *Barrier) Reset() {
	for i := range b.next {
		b.next[i] = math.Inf(1)
	}
}

// Propose records shard i's next-event time for this round. Proposing
// more than once keeps the earliest time, so a shard may report both a
// completion and a timer without ordering concerns.
func (b *Barrier) Propose(i int, t float64) {
	if t < b.next[i] {
		b.next[i] = t
	}
}

// Next returns the conservative horizon: the minimum proposed time
// across shards, or +Inf when no shard proposed (all idle).
func (b *Barrier) Next() float64 {
	min := math.Inf(1)
	for _, t := range b.next {
		if t < min {
			min = t
		}
	}
	return min
}

// HorizonExcept returns the bounded-lookahead horizon for the round:
// the minimum proposal among shards NOT marked local, or +Inf when every
// shard with work is local. A shard marked local this round has no
// cross-shard interaction before its next proposal, so the others may
// safely advance any event strictly below this horizon without a
// barrier round-trip — the conservative-lookahead window. local may be
// shorter than the shard count; missing entries count as not local.
func (b *Barrier) HorizonExcept(local []bool) float64 {
	min := math.Inf(1)
	for i, t := range b.next {
		if i < len(local) && local[i] {
			continue
		}
		if t < min {
			min = t
		}
	}
	return min
}

// Shards returns the number of shard slots.
func (b *Barrier) Shards() int { return len(b.next) }
