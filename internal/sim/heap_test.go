package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		q.Schedule(at, func() { got = append(got, at) })
	}
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		e.Fn()
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events fired out of order: %v", got)
	}
	if len(got) != 5 {
		t.Errorf("fired %d events, want 5", len(got))
	}
}

func TestQueueTieBreakPreservesScheduleOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.Schedule(7.0, func() { got = append(got, i) })
	}
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		e.Fn()
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestQueuePeekAndLen(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Error("PeekTime on empty queue should report !ok")
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue should report !ok")
	}
	q.Schedule(9, func() {})
	q.Schedule(2, func() {})
	if at, ok := q.PeekTime(); !ok || at != 2 {
		t.Errorf("PeekTime = %g,%v; want 2,true", at, ok)
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Schedule(1, func() { fired = true })
	if !q.Cancel(e) {
		t.Error("Cancel of pending event should return true")
	}
	if q.Cancel(e) {
		t.Error("double Cancel should return false")
	}
	if q.Cancel(nil) {
		t.Error("Cancel(nil) should return false")
	}
	if _, ok := q.Pop(); ok {
		t.Error("queue should be empty after cancel")
	}
	if fired {
		t.Error("cancelled event must not fire")
	}
}

func TestCancelMiddleKeepsHeapValid(t *testing.T) {
	var q Queue
	events := make([]*Event, 20)
	for i := range events {
		events[i] = q.Schedule(float64(i%7), func() {})
	}
	q.Cancel(events[3])
	q.Cancel(events[10])
	q.Cancel(events[19])
	prev := -1.0
	n := 0
	for {
		e, ok := q.Pop()
		if !ok {
			break
		}
		if e.At < prev {
			t.Fatalf("heap order violated after cancels: %g < %g", e.At, prev)
		}
		prev = e.At
		n++
	}
	if n != 17 {
		t.Errorf("popped %d events, want 17", n)
	}
}

func TestQueuePopOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue
		n := rng.Intn(100)
		for i := 0; i < n; i++ {
			q.Schedule(rng.Float64()*100, func() {})
		}
		prev := -1.0
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			if e.At < prev {
				return false
			}
			prev = e.At
		}
		return q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Errorf("zero clock Now = %g, want 0", c.Now())
	}
	if err := c.Advance(2.5); err != nil {
		t.Fatal(err)
	}
	if err := c.AdvanceTo(4); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 4 {
		t.Errorf("Now = %g, want 4", c.Now())
	}
	if err := c.Advance(-1); err == nil {
		t.Error("negative Advance should fail")
	}
	if err := c.AdvanceTo(3); err == nil {
		t.Error("AdvanceTo the past should fail")
	}
	if c.Now() != 4 {
		t.Errorf("failed advances must not move the clock; Now = %g", c.Now())
	}
}
