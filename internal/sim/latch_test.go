package sim

import (
	"runtime"
	"testing"
)

func TestLatchReleasesAfterAllArrivals(t *testing.T) {
	l := NewLatch()
	l.Start(3)
	results := make([]int, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			results[w] = w + 1 // plain write: Wait must order it
			l.Arrive()
		}(w)
	}
	l.Wait()
	for w, r := range results {
		if r != w+1 {
			t.Fatalf("worker %d's write not visible after Wait: got %d", w, r)
		}
	}
}

// The latch must be reusable phase after phase with no allocation and no
// leftover state; plain (non-atomic) writes across many phases let the
// race detector validate the happens-before contract.
func TestLatchReuseAcrossPhases(t *testing.T) {
	l := NewLatch()
	const phases = 200
	const workers = 4
	counter := 0
	for p := 0; p < phases; p++ {
		l.Start(workers)
		for w := 0; w < workers; w++ {
			go func() {
				l.Arrive()
			}()
		}
		l.Wait()
		counter++ // coordinator-only, ordered by the phase structure
	}
	if counter != phases {
		t.Fatalf("completed %d phases, want %d", counter, phases)
	}
}

func TestLatchStartPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	l := NewLatch()
	mustPanic("Start(0)", func() { l.Start(0) })
	mustPanic("Start(-1)", func() { l.Start(-1) })
	l.Start(2)
	mustPanic("Start while in flight", func() { l.Start(1) })
	l.Arrive()
	l.Arrive()
	l.Wait()
	// Disarmed again: a new phase must be accepted.
	l.Start(1)
	l.Arrive()
	l.Wait()
}

// Stress the fan-out/fan-in cycle with real parallelism: each phase's
// workers mutate disjoint plain slots that the coordinator sums after
// Wait. Run with -race in CI; a broken happens-before edge fails there.
func TestLatchStressParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	l := NewLatch()
	const phases = 500
	const workers = 4
	slots := make([]int, workers)
	total := 0
	for p := 0; p < phases; p++ {
		l.Start(workers)
		for w := 0; w < workers; w++ {
			go func(w, p int) {
				slots[w] = p + w
				l.Arrive()
			}(w, p)
		}
		l.Wait()
		for w, s := range slots {
			if s != p+w {
				t.Fatalf("phase %d: slot %d = %d, want %d", p, w, s, p+w)
			}
			total += s
		}
	}
	want := 0
	for p := 0; p < phases; p++ {
		for w := 0; w < workers; w++ {
			want += p + w
		}
	}
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}
