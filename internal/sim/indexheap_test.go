package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestIndexedHeapBasicOrdering(t *testing.T) {
	var h IndexedHeap
	h.Fix(3, 5.0)
	h.Fix(1, 2.0)
	h.Fix(2, 9.0)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if k, id, ok := h.Min(); !ok || id != 1 || k != 2.0 {
		t.Fatalf("Min = (%g,%d,%v), want (2,1,true)", k, id, ok)
	}
	// Re-key the min upward; id 3 becomes the min.
	h.Fix(1, 7.0)
	if _, id, _ := h.Min(); id != 3 {
		t.Fatalf("after re-key, min id = %d, want 3", id)
	}
	var got []int
	for {
		_, id, ok := h.Pop()
		if !ok {
			break
		}
		got = append(got, id)
	}
	want := []int{3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestIndexedHeapTiesOrderById(t *testing.T) {
	var h IndexedHeap
	for _, id := range []int{5, 2, 9, 0} {
		h.Fix(id, 1.0)
	}
	want := []int{0, 2, 5, 9}
	for _, w := range want {
		_, id, ok := h.Pop()
		if !ok || id != w {
			t.Fatalf("tie pop = %d, want %d", id, w)
		}
	}
}

func TestIndexedHeapRemove(t *testing.T) {
	var h IndexedHeap
	for i := 0; i < 10; i++ {
		h.Fix(i, float64(10-i))
	}
	if !h.Remove(0) { // the max
		t.Fatal("Remove(0) = false")
	}
	if h.Remove(0) {
		t.Fatal("double Remove(0) = true")
	}
	if !h.Remove(9) { // the min
		t.Fatal("Remove(9) = false")
	}
	if h.Contains(9) || !h.Contains(5) {
		t.Fatal("Contains wrong after removals")
	}
	if k, ok := h.Key(5); !ok || k != 5 {
		t.Fatalf("Key(5) = (%g,%v), want (5,true)", k, ok)
	}
	if _, id, _ := h.Min(); id != 8 {
		t.Fatalf("min after removals = %d, want 8", id)
	}
	if h.Len() != 8 {
		t.Fatalf("Len = %d, want 8", h.Len())
	}
}

func TestIndexedHeapReset(t *testing.T) {
	var h IndexedHeap
	h.Fix(1, 1)
	h.Fix(2, 2)
	h.Reset()
	if h.Len() != 0 || h.Contains(1) || h.Contains(2) {
		t.Fatal("Reset left entries behind")
	}
	h.Fix(1, 3)
	if k, id, ok := h.Min(); !ok || id != 1 || k != 3 {
		t.Fatalf("reuse after Reset broken: (%g,%d,%v)", k, id, ok)
	}
}

// TestIndexedHeapRandomized drives random Fix/Remove/Pop against a
// reference map and checks pop order and index consistency.
func TestIndexedHeapRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h IndexedHeap
	ref := map[int]float64{}
	const ids = 200
	for op := 0; op < 5000; op++ {
		id := rng.Intn(ids)
		switch rng.Intn(3) {
		case 0, 1: // insert or re-key
			k := rng.Float64() * 100
			h.Fix(id, k)
			ref[id] = k
		case 2:
			_, inRef := ref[id]
			if h.Remove(id) != inRef {
				t.Fatalf("op %d: Remove(%d) disagreed with reference", op, id)
			}
			delete(ref, id)
		}
		if h.Len() != len(ref) {
			t.Fatalf("op %d: Len %d != ref %d", op, h.Len(), len(ref))
		}
	}
	// Drain and compare with the reference sorted by (key, id).
	type kv struct {
		id int
		k  float64
	}
	var want []kv
	for id, k := range ref {
		want = append(want, kv{id, k})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].k != want[j].k {
			return want[i].k < want[j].k
		}
		return want[i].id < want[j].id
	})
	for i, w := range want {
		k, id, ok := h.Pop()
		if !ok || id != w.id || k != w.k {
			t.Fatalf("drain %d: got (%g,%d,%v), want (%g,%d)", i, k, id, ok, w.k, w.id)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty after drain")
	}
}
