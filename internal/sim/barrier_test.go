package sim

import (
	"math"
	"testing"
)

func TestBarrierMinAcrossShards(t *testing.T) {
	b := NewBarrier(3)
	if got := b.Next(); !math.IsInf(got, 1) {
		t.Fatalf("empty barrier Next = %v, want +Inf", got)
	}
	b.Propose(0, 5.0)
	b.Propose(2, 3.5)
	if got := b.Next(); got != 3.5 {
		t.Fatalf("Next = %v, want 3.5", got)
	}
	// A later, earlier proposal from the same shard wins...
	b.Propose(0, 1.25)
	if got := b.Next(); got != 1.25 {
		t.Fatalf("Next = %v, want 1.25", got)
	}
	// ...but a later, later one does not displace the earliest.
	b.Propose(0, 9.0)
	if got := b.Next(); got != 1.25 {
		t.Fatalf("Next after late proposal = %v, want 1.25", got)
	}
}

func TestBarrierResetClearsRound(t *testing.T) {
	b := NewBarrier(2)
	b.Propose(0, 1.0)
	b.Propose(1, 2.0)
	b.Reset()
	if got := b.Next(); !math.IsInf(got, 1) {
		t.Fatalf("Next after Reset = %v, want +Inf", got)
	}
	b.Propose(1, 7.0)
	if got := b.Next(); got != 7.0 {
		t.Fatalf("Next = %v, want 7.0", got)
	}
	if b.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", b.Shards())
	}
}
