package sim

import (
	"math"
	"testing"
)

func TestBarrierMinAcrossShards(t *testing.T) {
	b := NewBarrier(3)
	if got := b.Next(); !math.IsInf(got, 1) {
		t.Fatalf("empty barrier Next = %v, want +Inf", got)
	}
	b.Propose(0, 5.0)
	b.Propose(2, 3.5)
	if got := b.Next(); got != 3.5 {
		t.Fatalf("Next = %v, want 3.5", got)
	}
	// A later, earlier proposal from the same shard wins...
	b.Propose(0, 1.25)
	if got := b.Next(); got != 1.25 {
		t.Fatalf("Next = %v, want 1.25", got)
	}
	// ...but a later, later one does not displace the earliest.
	b.Propose(0, 9.0)
	if got := b.Next(); got != 1.25 {
		t.Fatalf("Next after late proposal = %v, want 1.25", got)
	}
}

func TestBarrierResetClearsRound(t *testing.T) {
	b := NewBarrier(2)
	b.Propose(0, 1.0)
	b.Propose(1, 2.0)
	b.Reset()
	if got := b.Next(); !math.IsInf(got, 1) {
		t.Fatalf("Next after Reset = %v, want +Inf", got)
	}
	b.Propose(1, 7.0)
	if got := b.Next(); got != 7.0 {
		t.Fatalf("Next = %v, want 7.0", got)
	}
	if b.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", b.Shards())
	}
}

func TestBarrierHorizonExcept(t *testing.T) {
	b := NewBarrier(4)
	b.Propose(0, 1.0)
	b.Propose(1, 2.0)
	b.Propose(2, 3.0)
	// Shard 3 idle (no proposal).
	if got := b.HorizonExcept([]bool{true, false, false, false}); got != 2.0 {
		t.Fatalf("HorizonExcept(skip 0) = %v, want 2.0", got)
	}
	if got := b.HorizonExcept([]bool{false, false, false, false}); got != 1.0 {
		t.Fatalf("HorizonExcept(skip none) = %v, want 1.0", got)
	}
	// Every proposing shard local: the horizon is unbounded.
	if got := b.HorizonExcept([]bool{true, true, true, false}); !math.IsInf(got, 1) {
		t.Fatalf("HorizonExcept(skip all proposers) = %v, want +Inf", got)
	}
	// A local slice shorter than the shard count treats the tail as
	// non-local.
	if got := b.HorizonExcept([]bool{true}); got != 2.0 {
		t.Fatalf("HorizonExcept(short slice) = %v, want 2.0", got)
	}
}
