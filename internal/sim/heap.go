// Package sim provides the discrete-event scaffolding under the fluid
// network simulator: a monotonic virtual clock and a priority heap of
// timed callbacks. The network engine interleaves flow-completion times
// (computed analytically from fluid rates) with these scheduled events
// (compute-phase completions, controller reconfigurations, job arrivals).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	At  float64 // virtual seconds
	Fn  func()
	seq int64 // tie-breaker preserving scheduling order
	idx int   // heap index; -1 when popped/cancelled
}

// Queue is a time-ordered event queue. The zero value is ready to use.
type Queue struct {
	h   eventHeap
	seq int64
}

// ErrPastEvent is returned when scheduling before the current time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Schedule enqueues fn to run at virtual time at. It returns a handle
// usable with Cancel. Scheduling before now is the caller's bug; the
// queue cannot know "now", so Engine wraps this with its clock check.
func (q *Queue) Schedule(at float64, fn func()) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op returning false.
func (q *Queue) Cancel(e *Event) bool {
	if e == nil || e.idx < 0 {
		return false
	}
	heap.Remove(&q.h, e.idx)
	e.idx = -1
	return true
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// PeekTime returns the time of the earliest pending event. ok is false
// when the queue is empty.
func (q *Queue) PeekTime() (at float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue) Pop() (*Event, bool) {
	if len(q.h) == 0 {
		return nil, false
	}
	e := heap.Pop(&q.h).(*Event)
	e.idx = -1
	return e, true
}

// eventHeap implements heap.Interface ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is a monotonic virtual clock.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds.
func (c *Clock) Advance(dt float64) error {
	if dt < 0 {
		return fmt.Errorf("sim: negative time advance %g", dt)
	}
	c.now += dt
	return nil
}

// AdvanceTo moves the clock to the absolute time t (>= now).
func (c *Clock) AdvanceTo(t float64) error {
	if t < c.now {
		return fmt.Errorf("%w: %g < now %g", ErrPastEvent, t, c.now)
	}
	c.now = t
	return nil
}
