package sim

import "sync/atomic"

// Latch is a reusable completion latch for phase-structured concurrency:
// a coordinator arms it for n arrivals, hands work to n workers, and
// blocks in Wait until the last worker Arrives. Unlike sync.WaitGroup it
// is allocation-free across reuse and its entire lifecycle is two atomic
// operations per phase on the worker side plus one channel receive on
// the coordinator side — the synchronization budget of a persistent
// shard-worker runtime, where a virtual-time step must cost two sync
// points (fan-out, fan-in) rather than O(workers) goroutine spawns.
//
// The memory-model contract matches WaitGroup's: everything a worker
// wrote before Arrive happens-before the coordinator's return from
// Wait. Start must not be called again until Wait has returned, and
// Start(n) with n <= 0 makes the subsequent Wait a panic — a phase with
// no remote workers should simply not arm the latch.
type Latch struct {
	pending atomic.Int32
	done    chan struct{}
}

// NewLatch returns an unarmed latch.
func NewLatch() *Latch {
	return &Latch{done: make(chan struct{}, 1)}
}

// Start arms the latch for n arrivals. Panics if n <= 0 or if a prior
// phase is still in flight (armed but not yet waited out).
func (l *Latch) Start(n int) {
	if n <= 0 {
		panic("sim: Latch.Start with n <= 0")
	}
	if !l.pending.CompareAndSwap(0, int32(n)) {
		panic("sim: Latch.Start while a phase is in flight")
	}
}

// Arrive records one worker's completion; the last arrival releases the
// coordinator. Panics on arrivals beyond the armed count.
func (l *Latch) Arrive() {
	n := l.pending.Add(-1)
	if n < 0 {
		panic("sim: Latch.Arrive without a matching Start")
	}
	if n == 0 {
		l.done <- struct{}{}
	}
}

// Wait blocks until every armed arrival has happened, then disarms the
// latch for reuse.
func (l *Latch) Wait() {
	<-l.done
}
