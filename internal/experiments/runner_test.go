package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"saba/internal/topology"
)

// TestSerialParallelExperimentsIdentical is the differential gate of the
// parallel experiment runner: the same study at parallelism 1 and 4 must
// produce bit-identical results — not approximately equal, DeepEqual.
// CI runs it under -race.
func TestSerialParallelExperimentsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("differential study skipped in -short")
	}
	defer SetParallelism(0)

	// Reduced fabric and workload count: the differential property —
	// bit-identical output at any parallelism — is scale-independent,
	// and this test runs under -race in CI.
	small := ScaleConfig{
		Topology: topology.SpineLeafConfig{
			Pods: 2, ToRsPerPod: 2, LeavesPerPod: 3, Spines: 3, HostsPerToR: 6, Queues: 8,
		},
		Workloads: 8,
	}

	t.Run("Fig10", func(t *testing.T) {
		SetParallelism(1)
		serial, err := Fig10(small)
		if err != nil {
			t.Fatal(err)
		}
		SetParallelism(4)
		parallel, err := Fig10(small)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Fig10 diverges:\nserial   %+v\nparallel %+v", serial, parallel)
		}
	})

	t.Run("Fig8", func(t *testing.T) {
		SetParallelism(1)
		serial, err := Fig8(3, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		SetParallelism(4)
		parallel, err := Fig8(3, DefaultSeed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Fig8 diverges:\nserial   %+v\nparallel %+v", serial, parallel)
		}
	})
}

func TestRunCellsExecutesEverySlot(t *testing.T) {
	defer SetParallelism(0)
	for _, par := range []int{1, 3, 16} {
		SetParallelism(par)
		const n = 37
		out := make([]int, n)
		if err := runCells(n, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par=%d: slot %d = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

// TestRunCellsLowestIndexErrorWins: failures are deterministic — the
// lowest-indexed failing cell's error is returned, not the first to fail
// in wall-clock order.
func TestRunCellsLowestIndexErrorWins(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	fail := map[int]bool{2: true, 5: true, 11: true}
	err := runCells(16, func(i int) error {
		if fail[i] {
			return fmt.Errorf("cell %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "cell 2" {
		t.Fatalf("got %v, want the lowest-indexed failure (cell 2)", err)
	}
}

func TestRunCellsSerialStopsAtFirstError(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1)
	var ran atomic.Int64
	sentinel := errors.New("boom")
	err := runCells(10, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if ran.Load() != 4 {
		t.Fatalf("serial path ran %d cells after the failure, want 4 total", ran.Load())
	}
}

func TestParallelismDefaultsAndClamps(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(0)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("unset parallelism = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetParallelism(-5)
	if got := Parallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative parallelism = %d, want GOMAXPROCS default", got)
	}
	SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Errorf("parallelism = %d, want 3", got)
	}
}

// TestCellRNGDeterministic: a cell's RNG depends only on (seed, coords),
// never on which worker ran it, and distinct coordinates decorrelate.
func TestCellRNGDeterministic(t *testing.T) {
	a := cellRNG(42, 1, 2, 3)
	b := cellRNG(42, 1, 2, 3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical coordinates produced diverging streams")
		}
	}
	c := cellRNG(42, 1, 2, 3)
	d := cellRNG(42, 1, 2, 4)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("adjacent coordinates correlate: %d/100 matches", same)
	}
}
