package experiments

import (
	"fmt"
	"strings"

	"saba/internal/core"
	"saba/internal/faults"
	"saba/internal/netsim"
)

// FigChurn quantifies how much of Saba's steady-state speedup over the
// FECN baseline survives data-plane churn. Phase 1 measures the
// steady-state speedup on a healthy fabric; phase 2 replays the same
// placement under seeded link-flap schedules at increasing failure rates
// (both policies see the *identical* schedule, so the comparison isolates
// the allocation discipline from the failure pattern). Retention is the
// churned speedup as a fraction of the steady one.

// ChurnConfig parameterizes FigChurn.
type ChurnConfig struct {
	Scale ScaleConfig
	// Rates are the per-cable failure probabilities per flap wave.
	// nil → {0.01, 0.05, 0.10} (the 1–10% sweep).
	Rates []float64
	// Waves is the number of flap waves spread across the steady-state
	// makespan; 0 → 20. The generator's downtime default (30% of the
	// wave period) applies.
	Waves int
}

func (c *ChurnConfig) fill() {
	c.Scale.fill()
	if c.Rates == nil {
		c.Rates = []float64{0.01, 0.05, 0.10}
	}
	if c.Waves <= 0 {
		c.Waves = 20
	}
}

// FigChurnResult reports speedup retention under link churn.
type FigChurnResult struct {
	Hosts     int
	Rates     []float64
	Steady    float64   // healthy-fabric Saba speedup over baseline
	Churned   []float64 // speedup at each failure rate
	Retention []float64 // Churned[i] / Steady
}

// FigChurn runs the churn study.
func FigChurn(cfg ChurnConfig) (*FigChurnResult, error) {
	cfg.fill()

	// Phase 1: steady state on a healthy fabric (shared, read-only env).
	env, err := newScaleEnv(cfg.Scale)
	if err != nil {
		return nil, err
	}
	base, err := env.run(core.PolicyBaseline, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("churn steady baseline: %w", err)
	}
	saba, err := env.run(core.PolicySaba, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("churn steady saba: %w", err)
	}
	steady, err := speedupOf(env, base, saba)
	if err != nil {
		return nil, err
	}

	// Size the flap schedule off the measured steady run: waves span the
	// baseline makespan, and the horizon leaves room for churn-slowed
	// runs to keep seeing flaps.
	period := base.Makespan / float64(cfg.Waves)
	horizon := 2 * maxf(base.Makespan, saba.Makespan)

	out := &FigChurnResult{
		Hosts:     len(env.top.Hosts()),
		Rates:     cfg.Rates,
		Steady:    steady,
		Churned:   make([]float64, len(cfg.Rates)),
		Retention: make([]float64, len(cfg.Rates)),
	}
	// Phase 2: one cell per failure rate. Each cell builds its own env —
	// fault injection mutates topology liveness, so cells must not share
	// the fabric the way the read-only studies do. Within a cell the two
	// policies run sequentially over the same topology; every flap
	// restores before the engine idles, so the fabric is healthy again
	// between runs.
	err = runCells(len(cfg.Rates), func(i int) error {
		cell, err := newScaleEnv(cfg.Scale)
		if err != nil {
			return err
		}
		flaps := faults.GenerateLinkFlaps(cell.top, faults.FlapScheduleConfig{
			Seed:     cfg.Scale.Seed + int64(i),
			Rate:     cfg.Rates[i],
			Period:   period,
			Horizon:  horizon,
			CoreOnly: true,
		})
		install := func(e *netsim.Engine) error { return faults.InstallLinkFlaps(e, flaps) }
		baseC, err := cell.runWith(core.PolicyBaseline, 0, install)
		if err != nil {
			return fmt.Errorf("churn rate %g baseline: %w", cfg.Rates[i], err)
		}
		sabaC, err := cell.runWith(core.PolicySaba, 0, install)
		if err != nil {
			return fmt.Errorf("churn rate %g saba: %w", cfg.Rates[i], err)
		}
		sp, err := speedupOf(cell, baseC, sabaC)
		if err != nil {
			return err
		}
		out.Churned[i] = sp
		out.Retention[i] = sp / out.Steady
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// speedupOf averages per-workload speedups of res over base on env's
// placement (the Fig. 10 aggregation).
func speedupOf(env *scaleEnv, base, res core.Result) (float64, error) {
	samples := map[string][]float64{}
	for i := range env.jobs {
		samples[env.jobs[i].Spec.Name] = append(samples[env.jobs[i].Spec.Name],
			base.Completions[i]/res.Completions[i])
	}
	sp, err := collectSpeedups(samples)
	if err != nil {
		return 0, err
	}
	return sp.Average, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// String renders the churn study.
func (r *FigChurnResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FigChurn — Saba speedup retention under link churn (%d hosts, steady %.2fx)\n",
		r.Hosts, r.Steady)
	for i, rate := range r.Rates {
		fmt.Fprintf(&b, "fail=%4.1f%%  speedup=%.2fx  retention=%.0f%%\n",
			100*rate, r.Churned[i], 100*r.Retention[i])
	}
	return b.String()
}
