package experiments

import (
	"fmt"
	"math"
	"strings"

	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/trace"
	"saba/internal/workload"
)

// Fig1aResult is the motivation study of Fig. 1a: per-workload slowdown
// under 75% and 25% of link bandwidth, measured standalone on the 8-node
// profiling testbed.
type Fig1aResult struct {
	// Slowdown[name][0] is the slowdown at 75% bandwidth, [1] at 25%.
	Slowdown map[string][2]float64
	Mean25   float64 // arithmetic mean of the 25% slowdowns (paper: 2.1x)
}

// Fig1a measures every catalog workload at 75% and 25% bandwidth.
func Fig1a() (*Fig1aResult, error) {
	out := &Fig1aResult{Slowdown: map[string][2]float64{}}
	sum := 0.0
	for _, spec := range workload.Catalog() {
		r := &profiler.SimRunner{Spec: spec}
		res, err := profiler.Profile(spec.Name, r, []float64{0.25, 0.75}, []int{1})
		if err != nil {
			return nil, err
		}
		var s75, s25 float64
		for _, s := range res.Samples {
			switch s.Bandwidth {
			case 0.75:
				s75 = s.Slowdown
			case 0.25:
				s25 = s.Slowdown
			}
		}
		out.Slowdown[spec.Name] = [2]float64{s75, s25}
		sum += s25
	}
	out.Mean25 = sum / float64(len(out.Slowdown))
	return out, nil
}

// String renders the Fig. 1a table.
func (r *Fig1aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 1a — slowdown vs available bandwidth (standalone)\n")
	b.WriteString("workload  75%BW   25%BW\n")
	for _, n := range workload.Names() {
		s := r.Slowdown[n]
		fmt.Fprintf(&b, "%-8s  %.2fx  %.2fx\n", n, s[0], s[1])
	}
	fmt.Fprintf(&b, "mean slowdown @25%% = %.2fx (paper: 2.1x)\n", r.Mean25)
	return b.String()
}

// Fig1bResult is the skewed-allocation motivation experiment (Fig. 1b):
// LR and PR co-running under per-flow max-min versus a manual 75/25 split.
type Fig1bResult struct {
	MaxMinLR, MaxMinPR float64 // slowdown vs standalone under max-min
	SkewedLR, SkewedPR float64 // slowdown vs standalone under 75/25
}

// Fig1b reproduces the experiment of §2.2: both workloads run on the same
// 8 servers; the skewed scheme statically configures every port with a
// 75/25 WFQ split in LR's favor.
func Fig1b() (*Fig1bResult, error) {
	standalone := func(spec workload.Spec) (float64, error) {
		top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: workload.RefNodes})
		if err != nil {
			return 0, err
		}
		net := netsim.NewNetwork(top)
		e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
		j := &workload.Job{ID: 1, Spec: spec, Nodes: top.Hosts(), App: 1}
		if err := j.Start(e); err != nil {
			return 0, err
		}
		if err := e.Run(math.Inf(1)); err != nil {
			return 0, err
		}
		return j.CompletionTime(), nil
	}

	lr, _ := workload.ByName("LR")
	pr, _ := workload.ByName("PR")
	lrAlone, err := standalone(lr)
	if err != nil {
		return nil, err
	}
	prAlone, err := standalone(pr)
	if err != nil {
		return nil, err
	}

	corun := func(skewed bool) (lrT, prT float64, err error) {
		top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: workload.RefNodes})
		if err != nil {
			return 0, 0, err
		}
		net := netsim.NewNetwork(top)
		var alloc netsim.Allocator
		if skewed {
			wfq := netsim.NewWFQ(net)
			for _, l := range top.Links() {
				if err := wfq.Configure(l.ID, netsim.PortConfig{
					Weights: []float64{0.75, 0.25},
					PLQueue: map[int]int{0: 0, 1: 1},
				}); err != nil {
					return 0, 0, err
				}
			}
			alloc = wfq
		} else {
			alloc = netsim.NewFECN(net, 0)
		}
		e := netsim.NewEngine(net, alloc)
		jLR := &workload.Job{ID: 1, Spec: lr, Nodes: top.Hosts(), App: 1, PL: 0}
		jPR := &workload.Job{ID: 2, Spec: pr, Nodes: top.Hosts(), App: 2, PL: 1}
		if err := jLR.Start(e); err != nil {
			return 0, 0, err
		}
		if err := jPR.Start(e); err != nil {
			return 0, 0, err
		}
		if err := e.Run(math.Inf(1)); err != nil {
			return 0, 0, err
		}
		return jLR.CompletionTime(), jPR.CompletionTime(), nil
	}

	mmLR, mmPR, err := corun(false)
	if err != nil {
		return nil, err
	}
	skLR, skPR, err := corun(true)
	if err != nil {
		return nil, err
	}
	return &Fig1bResult{
		MaxMinLR: mmLR / lrAlone, MaxMinPR: mmPR / prAlone,
		SkewedLR: skLR / lrAlone, SkewedPR: skPR / prAlone,
	}, nil
}

// String renders the Fig. 1b comparison.
func (r *Fig1bResult) String() string {
	return fmt.Sprintf(`Fig 1b — LR+PR co-run slowdown vs standalone
scheme    LR      PR
max-min   %.2fx  %.2fx   (paper: 2.26x  1.21x)
skewed    %.2fx  %.2fx   (paper: 1.48x  1.34x)
`, r.MaxMinLR, r.MaxMinPR, r.SkewedLR, r.SkewedPR)
}

// Fig2Result carries the utilization timelines of Fig. 2: CPU and network
// percent per second for one workload at one bandwidth fraction.
type Fig2Result struct {
	Workload  string
	Bandwidth float64
	Series    []trace.Point
	Completed float64 // completion time in seconds
}

// Fig2 traces a workload standalone at the given bandwidth fraction with
// 1-second buckets (the paper shows LR and PR at 75% and 25%).
func Fig2(name string, bandwidth float64) (*Fig2Result, error) {
	spec, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("unknown workload %s", name)
	}
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: workload.RefNodes})
	if err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(top)
	if bandwidth < 1 {
		for _, h := range top.Hosts() {
			if err := net.ThrottleHost(h, bandwidth); err != nil {
				return nil, err
			}
		}
	}
	e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
	rec, err := trace.NewRecorder(1, top.Hosts(), topology.DefaultLinkCapacity*bandwidth)
	if err != nil {
		return nil, err
	}
	rec.Attach(e)
	j := &workload.Job{ID: 1, Spec: spec, Nodes: top.Hosts(), App: 1}
	j.OnPhase = func(t float64, stage int, p workload.Phase) {
		if p == workload.PhaseComputeStart {
			st := j.ScaledStages()[stage]
			rec.MarkCPU(t, t+st.ComputeSeconds, len(j.Nodes))
		}
	}
	if err := j.Start(e); err != nil {
		return nil, err
	}
	if err := e.Run(math.Inf(1)); err != nil {
		return nil, err
	}
	return &Fig2Result{
		Workload:  name,
		Bandwidth: bandwidth,
		Series:    rec.Series(),
		Completed: j.CompletionTime(),
	}, nil
}

// String summarizes the timeline (full series available via Series).
func (r *Fig2Result) String() string {
	busyCPU, busyNet, both := 0, 0, 0
	for _, p := range r.Series {
		if p.CPU > 50 {
			busyCPU++
		}
		if p.Net > 50 {
			busyNet++
		}
		if p.CPU > 50 && p.Net > 50 {
			both++
		}
	}
	return fmt.Sprintf("Fig 2 — %s @%.0f%%BW: completion %.0fs; CPU-busy %ds, net-busy %ds, overlapped %ds\n",
		r.Workload, r.Bandwidth*100, r.Completed, busyCPU, busyNet, both)
}
