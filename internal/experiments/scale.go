package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"saba/internal/core"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/workload"
)

// ScaleConfig parameterizes the large-scale simulation studies
// (Fig. 10/11). The zero value selects a scaled-down fabric that keeps
// the studies fast; Full selects the paper's 1,944-server configuration.
type ScaleConfig struct {
	Topology  topology.SpineLeafConfig // zero → scaled default
	Workloads int                      // synthetic workload count; 0 → 20
	Seed      int64
	Full      bool // paper-scale 54/102/108 fabric
	// EngineShards selects the simulation engine's event-loop sharding
	// for every run of the study: 0 = serial legacy path, -1 = one shard
	// per pod, n >= 2 = n shards (core.RunConfig.EngineShards).
	EngineShards int
}

func (c *ScaleConfig) fill() {
	if c.Full {
		c.Topology = topology.PaperScaleConfig()
	} else if c.Topology.Pods == 0 {
		// Scaled-down fabric preserving the paper's oversubscription
		// profile: ~1:1 at the ToR level (18 hosts vs 17 leaf uplinks per
		// ToR) and a constricted leaf→spine level (each leaf has ~18 ToR
		// links but only 3-4 spine links), so sustained contention lives
		// in the aggregation layers like in the original topology.
		c.Topology = topology.SpineLeafConfig{
			Pods: 3, ToRsPerPod: 3, LeavesPerPod: 7, Spines: 7,
			HostsPerToR: 8, Queues: 16,
		}
	}
	if c.Workloads == 0 {
		c.Workloads = 20
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// profileCache memoizes the sensitivity tables of synthetic workload
// sets by (seed, count); see newScaleEnv. Entries carry a sync.Once so
// concurrent cells needing the same table profile it exactly once — the
// losers park on the winner instead of duplicating the work.
var (
	profileCacheMu sync.Mutex
	profileCache   = map[string]*profileEntry{}
)

type profileEntry struct {
	once  sync.Once
	table *profiler.Table
	err   error
}

// scaleEnv is the shared setup of the at-scale studies: topology,
// synthetic workloads with their profiles, and job placements (one
// instance per server, randomly spread).
type scaleEnv struct {
	top          *topology.Topology
	table        *profiler.Table
	jobs         []core.JobSpec
	seed         int64
	engineShards int
}

func newScaleEnv(cfg ScaleConfig) (*scaleEnv, error) {
	cfg.fill()
	top, err := topology.NewSpineLeaf(cfg.Topology)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := workload.Synthetic(workload.SynthConfig{Count: cfg.Workloads}, rng)

	// Profile every synthetic workload (the paper profiles on a rack-scale
	// 18-node deployment; the SimRunner uses the reference node count).
	// The table depends only on the spec set — itself a pure function of
	// (seed, count) — and profiling runs a simulation per bandwidth point
	// per spec, so every scale study reuses one table per configuration
	// instead of re-profiling the identical workloads.
	tableKey := fmt.Sprintf("%d/%d", cfg.Seed, cfg.Workloads)
	profileCacheMu.Lock()
	entry := profileCache[tableKey]
	if entry == nil {
		entry = &profileEntry{}
		profileCache[tableKey] = entry
	}
	profileCacheMu.Unlock()
	entry.once.Do(func() {
		table := profiler.NewTable()
		for _, spec := range specs {
			res, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{3})
			if err != nil {
				entry.err = fmt.Errorf("profile %s: %w", spec.Name, err)
				return
			}
			if err := table.PutResult(res, 3); err != nil {
				entry.err = err
				return
			}
		}
		entry.table = table
	})
	if entry.err != nil {
		return nil, entry.err
	}
	table := entry.table

	// Placement: shuffle hosts, deal them round-robin so every server runs
	// exactly one workload instance (§8.1).
	hosts := append([]topology.NodeID(nil), top.Hosts()...)
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	jobs := make([]core.JobSpec, len(specs))
	for i, spec := range specs {
		var nodes []topology.NodeID
		for h := i; h < len(hosts); h += len(specs) {
			nodes = append(nodes, hosts[h])
		}
		if len(nodes) < 2 {
			return nil, fmt.Errorf("scale: workload %s got %d instances; enlarge the fabric", spec.Name, len(nodes))
		}
		jobs[i] = core.JobSpec{Spec: spec, Nodes: nodes}
	}
	return &scaleEnv{top: top, table: table, jobs: jobs, seed: cfg.Seed, engineShards: cfg.EngineShards}, nil
}

// run executes the placement under a policy.
func (env *scaleEnv) run(policy core.Policy, queues int, shards int) (core.Result, error) {
	return env.runWith(policy, shards, nil)
}

// runWith is run plus an engine hook invoked just before the simulation
// starts — the churn study uses it to install fault schedules.
func (env *scaleEnv) runWith(policy core.Policy, shards int, before func(*netsim.Engine) error) (core.Result, error) {
	return core.RunJobs(env.top, env.jobs, core.RunConfig{
		Policy:       policy,
		Table:        env.table,
		Seed:         env.seed,
		PLs:          16,
		Shards:       shards,
		EngineShards: env.engineShards,
		// The large-scale studies compare against the packet-simulator
		// baseline (paper §8.4), not the hardware-testbed one. Queue
		// counts come from the topology; Fig. 11b rebuilds the env.
		SimBaseline: true,
		BeforeRun:   before,
	})
}

// Fig10Result compares Saba, ideal max-min, Homa and Sincronia against
// the baseline at scale (paper: 1.27x / 1.14x / 1.12x / 1.19x).
type Fig10Result struct {
	Hosts    int
	Averages map[string]float64   // policy name → average speedup
	PerJob   map[string][]float64 // policy name → per-job speedups
}

// Fig10 runs the large-scale comparison.
func Fig10(cfg ScaleConfig) (*Fig10Result, error) {
	env, err := newScaleEnv(cfg)
	if err != nil {
		return nil, err
	}
	base, err := env.run(core.PolicyBaseline, 0, 0)
	if err != nil {
		return nil, err
	}
	out := &Fig10Result{
		Hosts:    len(env.top.Hosts()),
		Averages: map[string]float64{},
		PerJob:   map[string][]float64{},
	}
	// Each policy run is an independent cell over the shared (read-only)
	// env; fan them out and assemble by policy index.
	policies := []core.Policy{
		core.PolicySaba, core.PolicyIdealMaxMin, core.PolicyHoma, core.PolicySincronia,
	}
	sps := make([]*Speedups, len(policies))
	err = runCells(len(policies), func(p int) error {
		res, err := env.run(policies[p], 0, 0)
		if err != nil {
			return fmt.Errorf("fig10 %v: %w", policies[p], err)
		}
		samples := map[string][]float64{}
		for i := range env.jobs {
			samples[env.jobs[i].Spec.Name] = append(samples[env.jobs[i].Spec.Name],
				base.Completions[i]/res.Completions[i])
		}
		sps[p], err = collectSpeedups(samples)
		return err
	})
	if err != nil {
		return nil, err
	}
	for p, policy := range policies {
		out.Averages[policy.String()] = sps[p].Average
		out.PerJob[policy.String()] = sps[p].All
	}
	return out, nil
}

// String renders the policy comparison.
func (r *Fig10Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 — speedup over baseline at scale (%d hosts)\n", r.Hosts)
	paper := map[string]string{
		"saba": "1.27", "ideal-maxmin": "1.14", "homa": "1.12", "sincronia": "1.19",
	}
	for _, name := range []string{"saba", "ideal-maxmin", "homa", "sincronia"} {
		fmt.Fprintf(&b, "%-14s avg=%.2f (paper %s)\n", name, r.Averages[name], paper[name])
	}
	return b.String()
}

// Fig11aResult compares the centralized and distributed controllers
// (paper: 1.27x vs 1.23x).
type Fig11aResult struct {
	Centralized float64
	Distributed float64
}

// Fig11a runs study 7.
func Fig11a(cfg ScaleConfig) (*Fig11aResult, error) {
	env, err := newScaleEnv(cfg)
	if err != nil {
		return nil, err
	}
	base, err := env.run(core.PolicyBaseline, 0, 0)
	if err != nil {
		return nil, err
	}
	avg := func(res core.Result) (float64, error) {
		samples := map[string][]float64{}
		for i := range env.jobs {
			samples[env.jobs[i].Spec.Name] = append(samples[env.jobs[i].Spec.Name],
				base.Completions[i]/res.Completions[i])
		}
		sp, err := collectSpeedups(samples)
		if err != nil {
			return 0, err
		}
		return sp.Average, nil
	}
	var cent, dist core.Result
	err = runCells(2, func(i int) error {
		var rerr error
		if i == 0 {
			cent, rerr = env.run(core.PolicySaba, 0, 0)
		} else {
			dist, rerr = env.run(core.PolicySabaDistributed, 0, 4)
		}
		return rerr
	})
	if err != nil {
		return nil, err
	}
	out := &Fig11aResult{}
	if out.Centralized, err = avg(cent); err != nil {
		return nil, err
	}
	if out.Distributed, err = avg(dist); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the controller comparison.
func (r *Fig11aResult) String() string {
	return fmt.Sprintf("Fig 11a — centralized %.2fx vs distributed %.2fx (paper 1.27 vs 1.23)\n",
		r.Centralized, r.Distributed)
}

// Fig11bResult sweeps the switch queue count (paper: 1.12x with 2 queues
// up to 1.33x with unlimited).
type Fig11bResult struct {
	Queues   []int // 0 marks the unlimited configuration
	Averages []float64
}

// Fig11b reruns the Fig. 10 Saba-vs-baseline comparison with 2, 4, 8 and
// 16 queues per port, plus an "unlimited" configuration with one queue
// per workload.
func Fig11b(cfg ScaleConfig) (*Fig11bResult, error) {
	cfg.fill()
	queueSweep := []int{2, 4, 8, 16, 0}
	out := &Fig11bResult{
		Queues:   queueSweep,
		Averages: make([]float64, len(queueSweep)),
	}
	// Each queue configuration rebuilds its own env from an independent
	// copy of cfg: a self-contained cell.
	err := runCells(len(queueSweep), func(i int) error {
		q := queueSweep[i]
		c := cfg
		c.Topology.Queues = q
		workloads := c.Workloads
		if workloads == 0 {
			workloads = 20
		}
		if q == 0 {
			c.Topology.Queues = workloads // one queue per workload = unlimited
		}
		env, err := newScaleEnv(c)
		if err != nil {
			return err
		}
		base, err := env.run(core.PolicyBaseline, 0, 0)
		if err != nil {
			return err
		}
		saba, err := env.run(core.PolicySaba, 0, 0)
		if err != nil {
			return err
		}
		samples := map[string][]float64{}
		for i := range env.jobs {
			samples[env.jobs[i].Spec.Name] = append(samples[env.jobs[i].Spec.Name],
				base.Completions[i]/saba.Completions[i])
		}
		sp, err := collectSpeedups(samples)
		if err != nil {
			return err
		}
		out.Averages[i] = sp.Average
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the queue sweep.
func (r *Fig11bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 11b — Saba speedup vs per-port queue count (paper: 2→1.12, 8→1.27, ∞→1.33)\n")
	for i, q := range r.Queues {
		label := fmt.Sprintf("%d", q)
		if q == 0 {
			label = "∞"
		}
		fmt.Fprintf(&b, "queues=%-3s avg=%.2f\n", label, r.Averages[i])
	}
	return b.String()
}
