package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"saba/internal/core"
	"saba/internal/metrics"
	"saba/internal/topology"
	"saba/internal/workload"
)

// AblationResult is a one-dimensional sweep: label → average Saba
// speedup over the baseline on the Fig. 8 co-location setup.
type AblationResult struct {
	Title    string
	Labels   []string
	Averages []float64
}

// String renders the sweep.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString(r.Title + "\n")
	for i, l := range r.Labels {
		fmt.Fprintf(&b, "%-12s avg=%.2f\n", l, r.Averages[i])
	}
	return b.String()
}

// ablationRun executes `setups` randomized co-location setups under the
// baseline and Saba with the given run-config mutators applied to both.
func ablationRun(setups int, seed int64, mutate func(*core.RunConfig)) (float64, error) {
	tab, _, err := cachedCatalog(3)
	if err != nil {
		return 0, err
	}
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: TestbedHosts, Queues: 8})
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	var all []float64
	for s := 0; s < setups; s++ {
		setup, err := workload.NewSetup(workload.SetupConfig{Servers: TestbedHosts}, rng)
		if err != nil {
			return 0, err
		}
		jobs := jobsFromSetup(setup, top.Hosts())
		baseCfg := core.RunConfig{Policy: core.PolicyBaseline, Seed: seed}
		sabaCfg := core.RunConfig{Policy: core.PolicySaba, Table: tab, Seed: seed}
		if mutate != nil {
			mutate(&baseCfg)
			mutate(&sabaCfg)
		}
		base, err := core.RunJobs(top, jobs, baseCfg)
		if err != nil {
			return 0, err
		}
		saba, err := core.RunJobs(top, jobs, sabaCfg)
		if err != nil {
			return 0, err
		}
		for i := range jobs {
			all = append(all, base.Completions[i]/saba.Completions[i])
		}
	}
	return metrics.GeoMean(all)
}

// AblationComputeStretch sweeps co-location compute dilation: how much
// slower each job's computation runs when sharing cores, relative to the
// dedicated profiling nodes. More dilation means lighter network load and
// thus less for Saba to reallocate.
func AblationComputeStretch(stretches []float64, setups int, seed int64) (*AblationResult, error) {
	out := &AblationResult{Title: "Ablation — Saba speedup vs co-location compute dilation"}
	for _, st := range stretches {
		st := st
		avg, err := ablationRun(setups, seed, func(c *core.RunConfig) { c.ComputeStretch = st })
		if err != nil {
			return nil, err
		}
		out.Labels = append(out.Labels, fmt.Sprintf("stretch=%g", st))
		out.Averages = append(out.Averages, avg)
	}
	return out, nil
}

// AblationBaselineSeverity compares the headline study against the two
// baseline congestion models: the hardware-testbed profile (severe
// many-application interference in the shared queue) and the packet-
// simulator profile (mild losses). The gap shows how much of Saba's win
// is isolation from the baseline's pathologies versus sensitivity-driven
// weighting.
func AblationBaselineSeverity(setups int, seed int64) (*AblationResult, error) {
	out := &AblationResult{Title: "Ablation — Saba speedup vs baseline severity"}
	for _, sim := range []bool{false, true} {
		sim := sim
		avg, err := ablationRun(setups, seed, func(c *core.RunConfig) {
			if c.Policy == core.PolicyBaseline {
				c.SimBaseline = sim
			}
		})
		if err != nil {
			return nil, err
		}
		label := "testbed-cc"
		if sim {
			label = "simulator-cc"
		}
		out.Labels = append(out.Labels, label)
		out.Averages = append(out.Averages, avg)
	}
	return out, nil
}
