package experiments

import (
	"fmt"
	"testing"
	"time"

	"saba/internal/controller"
	"saba/internal/faults"
	"saba/internal/netsim"
	"saba/internal/sabalib"
	"saba/internal/topology"
	"saba/internal/workload"
)

func TestFigOverloadGuaranteesUnderStorm(t *testing.T) {
	// The headline acceptance check: at 2x offered load, every admitted
	// tenant keeps >=95% of its guaranteed minimum, over-budget requests
	// fail fast and typed, and the enforcement-latency tail stays
	// bounded by the queue deadline rather than growing with the storm.
	res, err := FigOverload(OverloadConfig{
		Hosts:    8,
		Tenants:  4,
		Capacity: 200,
		Loads:    []float64{0.5, 2},
		Duration: 2 * time.Second,
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Offered == 0 {
			t.Fatalf("load %gx generated no arrivals", c.Load)
		}
		if c.Admitted+c.Rejected != c.Offered {
			t.Errorf("load %gx: admitted %d + rejected %d != offered %d (request lost)",
				c.Load, c.Admitted, c.Rejected, c.Offered)
		}
		if c.MinRetention < 0.95 {
			t.Errorf("load %gx: worst tenant kept %.1f%% of its guarantee, want >=95%%",
				c.Load, 100*c.MinRetention)
		}
		// Bounded tail: the ladder sheds rather than queueing without
		// limit, so p99 must stay within the (default 250ms) queue
		// deadline plus one flush period.
		if c.P99Latency > 0.3 {
			t.Errorf("load %gx: p99 enforcement latency %.3fs, want bounded by deadline", c.Load, c.P99Latency)
		}
	}
	over := res.Cells[1]
	if over.Rejected == 0 {
		t.Error("2x load produced no fast-fail rejections")
	}
	if over.Admitted == 0 {
		t.Error("2x load admitted nothing — shedding everything is not overload protection")
	}
	under := res.Cells[0]
	if frac := float64(under.Rejected) / float64(under.Offered); frac > 0.2 {
		t.Errorf("0.5x load rejected %.0f%% of requests — admission is biting below capacity", 100*frac)
	}
}

func TestFigOverloadDeterministic(t *testing.T) {
	cfg := OverloadConfig{
		Hosts: 8, Tenants: 3, Capacity: 150,
		Loads: []float64{2}, Duration: time.Second, Seed: 5,
	}
	a, err := FigOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FigOverload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells[0] != b.Cells[0] {
		t.Errorf("same seed diverged:\n%+v\n%+v", a.Cells[0], b.Cells[0])
	}
}

// crashRig is the tenant-registration half of the overload harness,
// shared by the crash-recovery test: a fresh admission-controlled
// controller on a virtual clock.
func crashRig(t *testing.T, clk *vclock) (*controller.Centralized, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	wfq := netsim.NewWFQ(netsim.NewNetwork(top))
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top,
		Table:    overloadTable(4),
		Enforcer: wfq,
		PLs:      16,
		Seed:     1,
		Admission: controller.AdmissionConfig{
			Enabled:      true,
			IngressRate:  1000,
			IngressBurst: 1000,
			Clock:        clk,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, top
}

func TestOverloadCrashMidStormNoDoubleAdmission(t *testing.T) {
	// A controller crash mid-storm composes with fault injection: the
	// client replays every tenant registration it is unsure about — the
	// ones whose replies were blackholed AND, after failover, the whole
	// set against the recovered controller. Idempotent-by-name admission
	// must count each guarantee exactly once both times.
	const (
		tenants   = 4
		guarantee = 0.1
	)
	clk := &vclock{now: time.Unix(0, 0)}
	ctrl, top := crashRig(t, clk)
	inj := faults.NewInjector(faults.Config{Seed: 42})
	ft := faults.NewFaultyTransport(&sabalib.DirectTransport{API: ctrl}, inj)

	// Phase 1: admit the population with every reply blackholed once —
	// the registration executes controller-side but the caller never
	// learns the ID, exactly the ambiguity a crash leaves behind.
	register := func(ft *faults.FaultyTransport) []controller.TenantID {
		tids := make([]controller.TenantID, tenants)
		for i := range tids {
			name := fmt.Sprintf("tenant-%d", i)
			inj.SetConfig(faults.Config{Seed: 42, CallBlackholeRate: 1})
			if _, err := ft.RegisterTenant(name, guarantee); err == nil {
				t.Fatal("blackholed registration returned a reply")
			}
			inj.SetConfig(faults.Config{Seed: 42})
			tid, err := ft.RegisterTenant(name, guarantee) // the retry
			if err != nil {
				t.Fatalf("retry after blackhole: %v", err)
			}
			tids[i] = tid
		}
		return tids
	}
	tids := register(ft)
	if got := ctrl.GuaranteedSum(); got != tenants*guarantee {
		t.Fatalf("GuaranteedSum = %g after blackhole+retry, want %g (each counted once)",
			got, tenants*guarantee)
	}
	// Mid-storm load against the pre-crash controller.
	storm, err := workload.NewStorm(workload.ArrivalConfig{
		Rate: 500, Duration: time.Second, Tenants: tenants, Hosts: 8, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	apps := make([]controller.AppID, tenants)
	for i, tid := range tids {
		if apps[i], _, err = ft.RegisterIn(tid, fmt.Sprintf("app-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	half := 0
	for {
		a, ok := storm.Next()
		if !ok || a.At > 500*time.Millisecond {
			break
		}
		clk.advanceTo(time.Unix(0, 0).Add(a.At))
		if _, err := ft.ConnCreate(apps[a.Tenant], top.Hosts()[a.Src], top.Hosts()[a.Dst]); err != nil {
			if _, rejected := controller.AsRejected(err); !rejected {
				t.Fatalf("pre-crash create: %v", err)
			}
		}
		half++
	}
	if half == 0 {
		t.Fatal("storm produced no pre-crash arrivals")
	}

	// Crash: the controller process dies; a replacement starts empty.
	// The client replays every tenant registration (it cannot know which
	// ones the dead controller had durably admitted) and the rest of the
	// storm.
	ctrl2, top2 := crashRig(t, clk)
	ft2 := faults.NewFaultyTransport(&sabalib.DirectTransport{API: ctrl2}, inj)
	replayed := register(ft2) // same names, same guarantees, blackhole+retry again
	for i, tid := range replayed {
		if apps[i], _, err = ft2.RegisterIn(tid, fmt.Sprintf("app-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// And once more verbatim — a second replay wave (e.g. two clients
	// racing recovery) must also be absorbed.
	for i := range replayed {
		tid, err := ft2.RegisterTenant(fmt.Sprintf("tenant-%d", i), guarantee)
		if err != nil {
			t.Fatalf("second replay wave: %v", err)
		}
		if tid != replayed[i] {
			t.Errorf("replay returned tenant %d, want %d", tid, replayed[i])
		}
	}
	if got := ctrl2.GuaranteedSum(); got != tenants*guarantee {
		t.Errorf("GuaranteedSum = %g after crash replay, want %g (no double admission)",
			got, tenants*guarantee)
	}
	if got := ctrl2.Tenants(); got != tenants {
		t.Errorf("Tenants = %d after crash replay, want %d", got, tenants)
	}
	for {
		a, ok := storm.Next()
		if !ok {
			break
		}
		clk.advanceTo(time.Unix(0, 0).Add(a.At))
		if _, err := ft2.ConnCreate(apps[a.Tenant], top2.Hosts()[a.Src], top2.Hosts()[a.Dst]); err != nil {
			if _, rejected := controller.AsRejected(err); !rejected {
				t.Fatalf("post-crash create: %v", err)
			}
		}
	}
	// The replayed guarantees still bind after the storm resumes.
	shares, err := ctrl2.TenantShares()
	if err != nil {
		t.Fatal(err)
	}
	for _, tid := range replayed {
		if shares[tid] < guarantee-1e-9 {
			t.Errorf("tenant %d share %.3f below guarantee %.3f after recovery", tid, shares[tid], guarantee)
		}
	}
}
