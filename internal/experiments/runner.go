// Parallel experiment execution. The paper's studies decompose into
// independent cells — a (figure, workload, seed, allocator) combination
// whose simulation shares nothing with its siblings — so the expensive
// runs fan out across a bounded worker pool while everything that feeds
// a shared RNG (setup generation, placement shuffles) stays serial.
// Each cell writes its result into a dedicated slot, making assembly
// independent of completion order: output is bit-for-bit identical at
// any parallelism, which TestSerialParallelExperimentsIdentical gates.
package experiments

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	parMu       sync.Mutex
	parallelism int // 0 = unset → GOMAXPROCS
)

// SetParallelism bounds the experiment worker pool (cmd/sabaexp's
// -parallel flag). n ≤ 0 resets to the default, GOMAXPROCS. Results do
// not depend on the setting; only wall-clock time does.
func SetParallelism(n int) {
	parMu.Lock()
	defer parMu.Unlock()
	if n < 0 {
		n = 0
	}
	parallelism = n
}

// Parallelism reports the current experiment worker budget.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	if parallelism == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// runCells executes fn(0..n-1) across the worker pool. fn must write its
// result to cell-private storage (typically slot i of a result slice);
// runCells returns the error of the lowest-indexed failing cell, not
// the first to fail in wall-clock order, so failures are deterministic.
func runCells(n int, fn func(i int) error) error {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// cellRNG derives an independent deterministic RNG for one cell from the
// experiment seed and the cell's coordinates, so parallel cells never
// contend on (or order-depend through) a shared rand.Rand. The mixing is
// splitmix64, whose avalanche keeps adjacent coordinates uncorrelated.
func cellRNG(seed int64, coords ...int64) *rand.Rand {
	x := uint64(seed)
	for _, c := range coords {
		x ^= uint64(c) + 0x9e3779b97f4a7c15
		x = splitmix64(x)
	}
	return rand.New(rand.NewSource(int64(splitmix64(x))))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
