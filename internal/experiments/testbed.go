package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"saba/internal/core"
	"saba/internal/metrics"
	"saba/internal/topology"
	"saba/internal/workload"
)

// TestbedHosts is the hardware testbed size (§8.1: 32 servers).
const TestbedHosts = 32

// Fig8Result is the main testbed study (§8.2): Saba versus the
// InfiniBand baseline over randomized 16-job cluster setups.
type Fig8Result struct {
	Setups    int
	Speedups  *Speedups            // per-workload + overall (Fig. 8a)
	SetupAvgs []float64            // average speedup of each setup (Fig. 8b CDF)
	CDF       []metrics.CDFPoint   // empirical CDF over SetupAvgs
	Summary   metrics.Summary      // distribution summary over SetupAvgs
	PerSetup  map[string][]float64 // raw samples per workload
}

// Fig8 runs the study with the given number of cluster setups (the paper
// uses 500; reduced counts keep CI runs fast).
func Fig8(setups int, seed int64) (*Fig8Result, error) {
	if setups < 1 {
		return nil, fmt.Errorf("fig8: need at least one setup")
	}
	tab, _, err := cachedCatalog(3)
	if err != nil {
		return nil, err
	}
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: TestbedHosts, Queues: 8})
	if err != nil {
		return nil, err
	}
	hosts := top.Hosts()
	rng := rand.New(rand.NewSource(seed))

	// Setup generation consumes the shared RNG: serial, so the setup
	// sequence is identical at every parallelism. The simulation pairs —
	// the expensive part — are independent cells and fan out.
	setupJobs := make([][]core.JobSpec, setups)
	for s := 0; s < setups; s++ {
		setup, err := workload.NewSetup(workload.SetupConfig{Servers: TestbedHosts}, rng)
		if err != nil {
			return nil, err
		}
		setupJobs[s] = jobsFromSetup(setup, hosts)
	}
	cellSamples := make([]map[string][]float64, setups)
	setupAvgs := make([]float64, setups)
	err = runCells(setups, func(s int) error {
		jobs := setupJobs[s]
		base, err := core.RunJobs(top, jobs, core.RunConfig{Policy: core.PolicyBaseline, Seed: seed})
		if err != nil {
			return err
		}
		saba, err := core.RunJobs(top, jobs, core.RunConfig{Policy: core.PolicySaba, Table: tab, Seed: seed})
		if err != nil {
			return err
		}
		cellSamples[s] = speedupsOf(jobs, base, saba)
		var all []float64
		for _, name := range sortedKeys(cellSamples[s]) {
			all = append(all, cellSamples[s][name]...)
		}
		g, err := metrics.GeoMean(all)
		if err != nil {
			return err
		}
		setupAvgs[s] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Merge per-setup samples in setup order: assembly is independent of
	// cell completion order.
	samples := map[string][]float64{}
	for s := 0; s < setups; s++ {
		for _, name := range sortedKeys(cellSamples[s]) {
			samples[name] = append(samples[name], cellSamples[s][name]...)
		}
	}

	sp, err := collectSpeedups(samples)
	if err != nil {
		return nil, err
	}
	cdf, err := metrics.CDF(setupAvgs)
	if err != nil {
		return nil, err
	}
	summary, err := metrics.Summarize(setupAvgs)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		Setups:    setups,
		Speedups:  sp,
		SetupAvgs: setupAvgs,
		CDF:       cdf,
		Summary:   summary,
		PerSetup:  samples,
	}, nil
}

// String renders Fig. 8a (per-workload speedups) and the Fig. 8b summary.
func (r *Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8a — Saba speedup over baseline (%d setups, paper avg 1.88x)\n", r.Setups)
	r.Speedups.render(&b, "speedup")
	fmt.Fprintf(&b, "Fig 8b — per-setup average speedup CDF: %s (paper range 0.94x-2.92x)\n", r.Summary)
	return b.String()
}

// Fig9Mode selects which §8.3 sensitivity study to run.
type Fig9Mode int

// Fig 9 study variants.
const (
	Fig9Dataset Fig9Mode = iota // study 1: dataset size 0.1x/1x/10x
	Fig9Nodes                   // study 2: node count 0.5x..4x
	Fig9Degree                  // study 3: polynomial degree 1..3
)

// Fig9Result is one §8.3 study: average Saba speedup per swept value.
type Fig9Result struct {
	Mode   Fig9Mode
	Labels []string
	// PerWorkload[i] is the per-workload speedup map at sweep point i.
	PerWorkload []map[string]float64
	Averages    []float64
}

// Fig9 runs the selected sensitivity study: a homogeneous setup with one
// instance of every catalog workload on every server of an 8-node
// cluster (the profiling configuration), co-run under baseline and Saba.
func Fig9(mode Fig9Mode, seed int64) (*Fig9Result, error) {
	type point struct {
		label   string
		dsScale float64
		nodes   int
		degree  int
	}
	var points []point
	switch mode {
	case Fig9Dataset:
		for _, s := range []float64{0.1, 1, 10} {
			points = append(points, point{fmt.Sprintf("%gx", s), s, workload.RefNodes, 3})
		}
	case Fig9Nodes:
		for _, m := range []float64{0.5, 1, 2, 3, 4} {
			points = append(points, point{fmt.Sprintf("%gx", m), 1, int(m * workload.RefNodes), 3})
		}
	case Fig9Degree:
		for k := 1; k <= 3; k++ {
			points = append(points, point{fmt.Sprintf("k=%d", k), 1, workload.RefNodes, k})
		}
	default:
		return nil, fmt.Errorf("fig9: unknown mode %d", mode)
	}

	out := &Fig9Result{
		Mode:        mode,
		Labels:      make([]string, len(points)),
		PerWorkload: make([]map[string]float64, len(points)),
		Averages:    make([]float64, len(points)),
	}
	err := runCells(len(points), func(i int) error {
		p := points[i]
		tab, _, err := cachedCatalog(p.degree)
		if err != nil {
			return err
		}
		top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: p.nodes, Queues: 8})
		if err != nil {
			return err
		}
		jobs := homogeneousJobs(top.Hosts(), p.dsScale)
		base, err := core.RunJobs(top, jobs, core.RunConfig{Policy: core.PolicyBaseline, Seed: seed})
		if err != nil {
			return err
		}
		saba, err := core.RunJobs(top, jobs, core.RunConfig{Policy: core.PolicySaba, Table: tab, Seed: seed})
		if err != nil {
			return err
		}
		sp, err := collectSpeedups(speedupsOf(jobs, base, saba))
		if err != nil {
			return err
		}
		out.Labels[i] = p.label
		out.PerWorkload[i] = sp.ByWorkload
		out.Averages[i] = sp.Average
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the sweep.
func (r *Fig9Result) String() string {
	titles := map[Fig9Mode]string{
		Fig9Dataset: "Fig 9a — speedup vs dataset size (paper: 1.33/1.54/1.40)",
		Fig9Nodes:   "Fig 9b — speedup vs node count (paper: 1.42/1.54/1.34/1.26/1.09)",
		Fig9Degree:  "Fig 9c — speedup vs polynomial degree (paper: 1.27/1.42/1.54)",
	}
	var b strings.Builder
	b.WriteString(titles[r.Mode] + "\n")
	for i, label := range r.Labels {
		fmt.Fprintf(&b, "%-5s avg=%.2f |", label, r.Averages[i])
		for _, n := range workload.Names() {
			if v, ok := r.PerWorkload[i][n]; ok {
				fmt.Fprintf(&b, " %s=%.2f", n, v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
