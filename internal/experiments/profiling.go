package experiments

import (
	"fmt"
	"strings"

	"saba/internal/profiler"
	"saba/internal/regression"
	"saba/internal/workload"
)

// Fig5Result carries the sensitivity models of Fig. 5: the profiling
// samples of SQL and LR plus fitted polynomials of degree 1..3.
type Fig5Result struct {
	// Samples[name] are the raw profiling points.
	Samples map[string][]regression.Sample
	// Models[name][k] is the degree-k model.
	Models map[string]map[int]regression.Polynomial
}

// Fig5 profiles SQL and LR and fits k=1..3 models.
func Fig5() (*Fig5Result, error) {
	out := &Fig5Result{
		Samples: map[string][]regression.Sample{},
		Models:  map[string]map[int]regression.Polynomial{},
	}
	for _, name := range []string{"SQL", "LR"} {
		spec, _ := workload.ByName(name)
		res, err := profiler.Profile(name, &profiler.SimRunner{Spec: spec}, nil, []int{1, 2, 3})
		if err != nil {
			return nil, err
		}
		out.Samples[name] = res.Samples
		out.Models[name] = res.Models
	}
	return out, nil
}

// String renders samples and model predictions side by side.
func (r *Fig5Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 5 — sensitivity models (samples vs fitted polynomials)\n")
	for _, name := range []string{"SQL", "LR"} {
		fmt.Fprintf(&b, "%s:\n  BW%%    sample   k=1     k=2     k=3\n", name)
		for _, s := range r.Samples[name] {
			fmt.Fprintf(&b, "  %3.0f%%   %6.2f", s.Bandwidth*100, s.Slowdown)
			for k := 1; k <= 3; k++ {
				fmt.Fprintf(&b, "  %6.2f", r.Models[name][k].Eval(s.Bandwidth))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Fig6aResult is the degree-of-polynomial accuracy study: in-sample R²
// for every workload at k = 1, 2, 3.
type Fig6aResult struct {
	R2 map[string][3]float64 // [k-1] = R² for degree k
}

// Fig6a profiles all workloads and reports R² per degree.
func Fig6a() (*Fig6aResult, error) {
	_, results, err := cachedCatalog(3)
	if err != nil {
		return nil, err
	}
	out := &Fig6aResult{R2: map[string][3]float64{}}
	for name, res := range results {
		out.R2[name] = [3]float64{res.R2[1], res.R2[2], res.R2[3]}
	}
	return out, nil
}

// String renders the R² table.
func (r *Fig6aResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 6a — R² vs degree of polynomial\nworkload   k=1    k=2    k=3\n")
	for _, n := range workload.Names() {
		v := r.R2[n]
		fmt.Fprintf(&b, "%-8s  %.3f  %.3f  %.3f\n", n, v[0], v[1], v[2])
	}
	return b.String()
}

// Fig6bResult is the dataset-size accuracy study: R² of the k=3 model
// (fitted at scale 1x) evaluated against runs at 0.1x, 1x and 10x.
type Fig6bResult struct {
	R2 map[string][3]float64 // [0]=0.1x, [1]=1x, [2]=10x
}

// Fig6b evaluates cross-scale model accuracy.
func Fig6b() (*Fig6bResult, error) {
	return crossEvalDatasets([]float64{0.1, 1, 10})
}

func crossEvalDatasets(scales []float64) (*Fig6bResult, error) {
	out := &Fig6bResult{R2: map[string][3]float64{}}
	for _, spec := range workload.Catalog() {
		base, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{3})
		if err != nil {
			return nil, err
		}
		model := base.Models[3]
		var r2s [3]float64
		for i, scale := range scales {
			eval, err := profiler.Profile(spec.Name,
				&profiler.SimRunner{Spec: spec, DatasetScale: scale}, nil, []int{3})
			if err != nil {
				return nil, err
			}
			r2s[i] = regression.CrossValidateR2(model, eval.Samples)
		}
		out.R2[spec.Name] = r2s
	}
	return out, nil
}

// String renders the dataset-size R² table.
func (r *Fig6bResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 6b — R² vs runtime dataset size (k=3 model fitted at 1x)\nworkload   0.1x   1x     10x\n")
	for _, n := range workload.Names() {
		v := r.R2[n]
		fmt.Fprintf(&b, "%-8s  %.3f  %.3f  %.3f\n", n, v[0], v[1], v[2])
	}
	return b.String()
}

// Fig6cResult is the node-count accuracy study: R² of the k=3 model
// (fitted at 8 nodes) against runs at 0.5x..4x the profiled node count.
type Fig6cResult struct {
	NodeScales []float64
	R2         map[string][]float64
}

// Fig6c evaluates cross-node-count model accuracy at the paper's scales.
func Fig6c() (*Fig6cResult, error) {
	scales := []float64{0.5, 1, 2, 3, 4}
	out := &Fig6cResult{NodeScales: scales, R2: map[string][]float64{}}
	for _, spec := range workload.Catalog() {
		base, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{3})
		if err != nil {
			return nil, err
		}
		model := base.Models[3]
		r2s := make([]float64, len(scales))
		for i, sc := range scales {
			nodes := int(sc * workload.RefNodes)
			eval, err := profiler.Profile(spec.Name,
				&profiler.SimRunner{Spec: spec, Nodes: nodes}, nil, []int{3})
			if err != nil {
				return nil, err
			}
			r2s[i] = regression.CrossValidateR2(model, eval.Samples)
		}
		out.R2[spec.Name] = r2s
	}
	return out, nil
}

// String renders the node-count R² table.
func (r *Fig6cResult) String() string {
	var b strings.Builder
	b.WriteString("Fig 6c — R² vs runtime node count (k=3 model fitted at 8 nodes)\nworkload ")
	for _, sc := range r.NodeScales {
		fmt.Fprintf(&b, "  %.1fx ", sc)
	}
	b.WriteString("\n")
	for _, n := range workload.Names() {
		fmt.Fprintf(&b, "%-8s", n)
		for _, v := range r.R2[n] {
			fmt.Fprintf(&b, "  %.3f", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
