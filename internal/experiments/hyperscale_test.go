package experiments

import (
	"strings"
	"testing"

	"saba/internal/topology"
)

// Smoke-size FigHyperscale: a small fabric, the full wave machinery,
// and the serial-vs-sharded digest comparison turned on. CI runs this
// shape; the 10k-host default is exercised by the sabaexp study and
// the bench suite.
func TestFigHyperscaleSmoke(t *testing.T) {
	res, err := FigHyperscale(HyperscaleConfig{
		Topology: topology.SpineLeafConfig{
			Pods: 3, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2,
			HostsPerToR: 4, Queues: 8,
		},
		Waves:         4,
		FlowsPerWave:  48,
		CrossPod:      0.1,
		Seed:          7,
		CompareSerial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 24 || res.Pods != 3 || res.Shards != 3 {
		t.Errorf("shape = %d hosts / %d pods / %d shards, want 24/3/3",
			res.Hosts, res.Pods, res.Shards)
	}
	if res.Flows != 4*48 || res.Completed != res.Flows {
		t.Errorf("flows=%d completed=%d, want 192 admitted and all complete",
			res.Flows, res.Completed)
	}
	if !res.DigestMatch {
		t.Error("sharded completion digest diverged from serial")
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan = %g, want > 0", res.Makespan)
	}
	if !strings.Contains(res.String(), "digest-match=true") {
		t.Errorf("String() missing serial comparison:\n%s", res.String())
	}
}

// The serial path (Shards: 1) must run the workload too — FigHyperscale
// is usable as a serial-engine scale probe.
func TestFigHyperscaleSerialPath(t *testing.T) {
	res, err := FigHyperscale(HyperscaleConfig{
		Topology: topology.SpineLeafConfig{
			Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2,
			HostsPerToR: 3, Queues: 8,
		},
		Waves:        3,
		FlowsPerWave: 16,
		Seed:         11,
		Shards:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Errorf("Shards = %d, want 1 (serial)", res.Shards)
	}
	if res.Completed != res.Flows {
		t.Errorf("completed %d of %d flows", res.Completed, res.Flows)
	}
}
