package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"saba/internal/controller"
	"saba/internal/core"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/regression"
	"saba/internal/topology"
	"saba/internal/workload"
)

// FigDrift closes the loop the drift quarantine left open: every profile
// goes stale at once, and the study measures how much of Saba's steady
// advantage over the FECN baseline each coping strategy preserves.
//
// The drift is a workload phase shift, the failure mode the quarantine
// was built for: mid-run, every application swaps behavior with its
// sensitivity-opposite catalog partner (the network-hungry job enters a
// compute-heavy phase and vice versa), so the offline profiles don't
// merely degrade — they point the Eq. 2 solver in the wrong direction.
// On the drifted cluster the study compares:
//
//   - stale: the controller keeps optimizing against the dead profiles
//     (what PR 5's detector exists to prevent).
//   - quarantine-only: drift detection pins every app to the fair share —
//     safe, but the sensitivity information is gone for good.
//   - online-learned: quarantined apps stream runtime slowdown windows;
//     the learner refits, validates, and promotes new models, restoring a
//     sensitivity-driven allocation without re-running the offline
//     profiler.
//   - oracle: an offline re-profiled table for the new phase — the
//     ceiling the online learner is chasing.

// DriftStudyConfig parameterizes FigDrift.
type DriftStudyConfig struct {
	// Hosts sizes the single-switch testbed; 0 → TestbedHosts (the Fig. 8
	// co-location configuration).
	Hosts int
	Seed  int64
	// Drift parameterizes the online learner (Learn is forced on for the
	// relearning cell). The zero value selects the controller defaults.
	Drift controller.DriftConfig
	// Fractions is the bandwidth-fraction schedule of the runtime
	// observation stream fed to the quarantined controller. The default
	// interleaves low and high fractions so the evidence ring covers the
	// operating range quickly, and stays ≤ 0.7: every sensitivity model
	// converges to 1 at full bandwidth, so high-fraction windows look
	// clean under any model and would only feed the transient-release
	// path.
	Fractions []float64
}

func (c *DriftStudyConfig) fill() {
	if c.Hosts <= 0 {
		c.Hosts = TestbedHosts
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.Fractions) == 0 {
		// Ordered so the learner's every-4th holdout (indices 3, 7, 11)
		// spans low/mid/high bandwidth rather than clustering in one
		// corner of the range: a clustered holdout judges the fit only
		// where it is flattest and vetoes perfectly good models.
		c.Fractions = []float64{
			0.10, 0.55, 0.25, 0.12, 0.70, 0.45, 0.15,
			0.40, 0.65, 0.20, 0.50, 0.68, 0.30, 0.60,
		}
	}
	c.Drift.Learn = true
	if c.Drift.Degree == 0 {
		// The catalog's sensitivity curves are close to hyperbolic in the
		// bandwidth fraction; degree 3 is what the offline profiler ships
		// (Fig. 6a), and lower degrees can miss the R² bar on the most
		// network-bound workloads.
		c.Drift.Degree = 3
	}
}

// FigDriftResult reports the drift-recovery comparison. All speedups are
// geometric-mean speedups over the FECN baseline running the same phase.
type FigDriftResult struct {
	Hosts      int
	Steady     float64 // pre-drift Saba speedup (models match reality)
	Stale      float64 // post-drift, dead models still steering Eq. 2
	Quarantine float64 // post-drift, every app pinned to fair share
	Recovered  float64 // post-drift, online-relearned models
	Oracle     float64 // post-drift, offline re-profiled table
	Recovery   float64 // Recovered / Steady
	Relearned  []string
	Released   []string // left quarantine because the old model still fit
	Failed     []string // never promoted a refit; stay at fair share
	MaxObs     int      // most observation windows any app needed
}

// phaseSwap pairs every catalog workload with its sensitivity-opposite
// partner: rank by modeled slowdown at 25% bandwidth, then pair the most
// sensitive with the least sensitive, second with second-to-last, and so
// on. The swap is an involution (a ↔ b), so the drifted phase is a
// permutation of the same cluster load.
func phaseSwap(tab *profiler.Table) map[string]string {
	names := tab.Names()
	sort.SliceStable(names, func(i, j int) bool {
		ei, _ := tab.Get(names[i])
		ej, _ := tab.Get(names[j])
		si := regression.Polynomial{Coeffs: ei.Coeffs}.Eval(0.25)
		sj := regression.Polynomial{Coeffs: ej.Coeffs}.Eval(0.25)
		return si > sj
	})
	swap := make(map[string]string, len(names))
	for i, n := range names {
		swap[n] = names[len(names)-1-i]
	}
	return swap
}

// shiftPhase rewrites each job to its partner's behavior while keeping
// its identity: the controller still sees the old name, so it consults
// the old (now dead) profile.
func shiftPhase(jobs []core.JobSpec, swap map[string]string) ([]core.JobSpec, error) {
	out := make([]core.JobSpec, len(jobs))
	for i, j := range jobs {
		truth, ok := workload.ByName(swap[j.Spec.Name])
		if !ok {
			return nil, fmt.Errorf("drift: no phase partner for %s", j.Spec.Name)
		}
		truth.Name = j.Spec.Name
		out[i] = j
		out[i].Spec = truth
	}
	return out, nil
}

// FigDrift runs the drift-recovery study.
func FigDrift(cfg DriftStudyConfig) (*FigDriftResult, error) {
	cfg.fill()
	staleTab, _, err := cachedCatalog(3)
	if err != nil {
		return nil, err
	}
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: cfg.Hosts, Queues: 8})
	if err != nil {
		return nil, err
	}
	setup, err := workload.NewSetup(workload.SetupConfig{Servers: cfg.Hosts},
		rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, err
	}
	preJobs := jobsFromSetup(setup, top.Hosts())
	swap := phaseSwap(staleTab)
	postJobs, err := shiftPhase(preJobs, swap)
	if err != nil {
		return nil, err
	}

	quarantineAll := func(api controller.API, apps []netsim.AppID) error {
		c, ok := api.(*controller.Centralized)
		if !ok {
			return fmt.Errorf("drift: quarantine requires the centralized controller")
		}
		for _, id := range apps {
			if err := c.ForceQuarantine(id); err != nil {
				return err
			}
		}
		return nil
	}

	// The seven independent cells: the pre-drift pair, the post-drift
	// baseline, the three post-drift coping strategies that need no
	// learned table, and the control-plane learning loop.
	var basePre, sabaPre, basePost, stalePost, quarPost, oraclePost core.Result
	var learn *learnOutcome
	err = runCells(7, func(i int) error {
		var cellErr error
		switch i {
		case 0:
			basePre, cellErr = core.RunJobs(top, preJobs, core.RunConfig{
				Policy: core.PolicyBaseline, Seed: cfg.Seed})
		case 1:
			sabaPre, cellErr = core.RunJobs(top, preJobs, core.RunConfig{
				Policy: core.PolicySaba, Table: staleTab, Seed: cfg.Seed})
		case 2:
			basePost, cellErr = core.RunJobs(top, postJobs, core.RunConfig{
				Policy: core.PolicyBaseline, Seed: cfg.Seed})
		case 3:
			stalePost, cellErr = core.RunJobs(top, postJobs, core.RunConfig{
				Policy: core.PolicySaba, Table: staleTab, Seed: cfg.Seed})
		case 4:
			quarPost, cellErr = core.RunJobs(top, postJobs, core.RunConfig{
				Policy: core.PolicySaba, Table: staleTab, Seed: cfg.Seed,
				AfterRegister: quarantineAll})
		case 5:
			oracle := profiler.NewTable()
			for _, name := range staleTab.Names() {
				truth, _ := workload.ByName(swap[name])
				truth.Name = name
				res, err := profiler.Profile(name, &profiler.SimRunner{Spec: truth}, nil, []int{3})
				if err != nil {
					return fmt.Errorf("drift oracle profile %s: %w", name, err)
				}
				if err := oracle.PutResult(res, 3); err != nil {
					return err
				}
			}
			oraclePost, cellErr = core.RunJobs(top, postJobs, core.RunConfig{
				Policy: core.PolicySaba, Table: oracle, Seed: cfg.Seed})
		case 6:
			learn, cellErr = learnOnline(cfg, staleTab, swap)
		}
		return cellErr
	})
	if err != nil {
		return nil, err
	}

	// Recovery run: the learned table drives the allocation; apps whose
	// refit never promoted would still be pinned in production, so pin
	// them here too instead of silently granting them their stale model.
	failed := map[string]bool{}
	for _, name := range learn.failed {
		failed[name] = true
	}
	recPost, err := core.RunJobs(top, postJobs, core.RunConfig{
		Policy: core.PolicySaba, Table: learn.table, Seed: cfg.Seed,
		AfterRegister: func(api controller.API, apps []netsim.AppID) error {
			if len(failed) == 0 {
				return nil
			}
			c, ok := api.(*controller.Centralized)
			if !ok {
				return fmt.Errorf("drift: quarantine requires the centralized controller")
			}
			for i, id := range apps {
				if failed[postJobs[i].Spec.Name] {
					if err := c.ForceQuarantine(id); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, fmt.Errorf("drift recovery run: %w", err)
	}

	avg := func(jobs []core.JobSpec, base, treat core.Result) (float64, error) {
		sp, err := collectSpeedups(speedupsOf(jobs, base, treat))
		if err != nil {
			return 0, err
		}
		return sp.Average, nil
	}
	out := &FigDriftResult{
		Hosts:     cfg.Hosts,
		Relearned: learn.relearned,
		Released:  learn.released,
		Failed:    learn.failed,
		MaxObs:    learn.maxObs,
	}
	if out.Steady, err = avg(preJobs, basePre, sabaPre); err != nil {
		return nil, err
	}
	if out.Stale, err = avg(postJobs, basePost, stalePost); err != nil {
		return nil, err
	}
	if out.Quarantine, err = avg(postJobs, basePost, quarPost); err != nil {
		return nil, err
	}
	if out.Oracle, err = avg(postJobs, basePost, oraclePost); err != nil {
		return nil, err
	}
	if out.Recovered, err = avg(postJobs, basePost, recPost); err != nil {
		return nil, err
	}
	out.Recovery = out.Recovered / out.Steady
	return out, nil
}

// learnOutcome is what the control-plane learning loop produced: the
// relearned sensitivity table and the per-app verdicts.
type learnOutcome struct {
	table     *profiler.Table
	relearned []string
	released  []string
	failed    []string
	maxObs    int
}

// learnOnline replays the drifted phase against the control plane alone:
// every catalog app starts quarantined with its stale model (drift
// detection has already fired), and its observation stream — ground-truth
// slowdowns of its new phase at the scheduled bandwidth fractions — feeds
// ObserveSlowdown until the learner promotes a refit or releases the app.
// The promoted coefficients become the recovery run's table.
func learnOnline(cfg DriftStudyConfig, stale *profiler.Table, swap map[string]string) (*learnOutcome, error) {
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{
		Hosts: workload.RefNodes, Queues: 8})
	if err != nil {
		return nil, err
	}
	net := netsim.NewNetwork(top)
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top, Table: stale, Enforcer: netsim.NewWFQ(net),
		PLs: 16, Seed: cfg.Seed, Drift: cfg.Drift,
	})
	if err != nil {
		return nil, err
	}
	out := &learnOutcome{table: profiler.NewTable()}
	// Apps learn sequentially so observation counts are deterministic.
	for _, name := range stale.Names() {
		id, _, err := ctrl.Register(name)
		if err != nil {
			return nil, err
		}
		if err := ctrl.ForceQuarantine(id); err != nil {
			return nil, err
		}
		truth, ok := workload.ByName(swap[name])
		if !ok {
			return nil, fmt.Errorf("drift: no phase partner for %s", name)
		}
		truth.Name = name
		runner := &profiler.SimRunner{Spec: truth}
		ref, err := runner.Run(1)
		if err != nil {
			return nil, err
		}
		obs := 0
		// Up to four sweeps of the schedule: a refit that misses the R²
		// bar keeps accumulating evidence and retries on the next window.
		for sweep := 0; sweep < 4 && ctrl.Quarantined(id); sweep++ {
			for _, b := range cfg.Fractions {
				if !ctrl.Quarantined(id) {
					break
				}
				tb, err := runner.Run(b)
				if err != nil {
					return nil, err
				}
				obs++
				if _, err := ctrl.ObserveSlowdown(id, b, tb/ref); err != nil {
					return nil, err
				}
			}
		}
		if obs > out.maxObs {
			out.maxObs = obs
		}
		coeffs, learned, err := ctrl.ModelOf(id)
		if err != nil {
			return nil, err
		}
		switch {
		case learned:
			out.relearned = append(out.relearned, name)
		case !ctrl.Quarantined(id):
			// Transient release: the stale model still tracked the shifted
			// phase (the mid-sensitivity pairs barely change), so no
			// relearning was warranted.
			out.released = append(out.released, name)
		default:
			out.failed = append(out.failed, name)
		}
		prev, _ := stale.Get(name)
		if err := out.table.Put(profiler.Entry{
			Name: name, Degree: len(coeffs) - 1, Coeffs: coeffs, R2: prev.R2,
		}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// String renders the drift-recovery study.
func (r *FigDriftResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FigDrift — online relearning after a cluster-wide phase shift (%d hosts)\n", r.Hosts)
	fmt.Fprintf(&b, "pre-drift   saba speedup    = %.2fx\n", r.Steady)
	fmt.Fprintf(&b, "post-drift  stale models    = %.2fx (Eq. 2 steered by dead profiles)\n", r.Stale)
	fmt.Fprintf(&b, "post-drift  quarantine-only = %.2fx (every app pinned to fair share)\n", r.Quarantine)
	fmt.Fprintf(&b, "post-drift  online-learned  = %.2fx (%.0f%% of pre-drift)\n",
		r.Recovered, 100*r.Recovery)
	fmt.Fprintf(&b, "post-drift  offline oracle  = %.2fx\n", r.Oracle)
	fmt.Fprintf(&b, "relearned %d apps, released %d (model still fit), failed %d; slowest promotion %d windows\n",
		len(r.Relearned), len(r.Released), len(r.Failed), r.MaxObs)
	return b.String()
}
