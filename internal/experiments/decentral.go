package experiments

import (
	"fmt"
	"math"
	"strings"

	"saba/internal/core"
	"saba/internal/decentral"
	"saba/internal/faults"
	"saba/internal/netsim"
	"saba/internal/solver"
	"saba/internal/telemetry"
)

// FigDecentral evaluates the controller-free deployment mode end to end:
//
//  1. Convergence probe — how many telemetry rounds (and how much
//     virtual time at the beaconing period) the decentralized iteration
//     needs to get within 5% of the centralized Eq. 2 rates for the
//     study's own profiled sensitivity models.
//  2. Fig 10 — speedup over the FECN baseline at scale, decentralized vs
//     the centralized and mesh controllers, with no controller RPC on
//     any hot path.
//  3. FigChurn — speedup retention under seeded link flaps, where
//     controller-free reconvergence (no replay, no reconvergence RPC
//     storm) should hold its own against the mesh.

// DecentralStudyConfig parameterizes FigDecentral.
type DecentralStudyConfig struct {
	Scale ScaleConfig
	// ChurnRate is the per-cable failure probability per flap wave for
	// the churn phase; 0 → 0.05 (the acceptance point).
	ChurnRate float64
	// Waves is the flap-wave count across the steady makespan; 0 → 20.
	Waves int
}

func (c *DecentralStudyConfig) fill() {
	c.Scale.fill()
	if c.ChurnRate == 0 {
		c.ChurnRate = 0.05
	}
	if c.Waves <= 0 {
		c.Waves = 20
	}
}

// FigDecentralResult reports the three phases.
type FigDecentralResult struct {
	Hosts int

	// Steady-state Fig 10 speedups over the baseline.
	SpeedupCentralized float64
	SpeedupMesh        float64
	SpeedupDecentral   float64
	CentralizedRatio   float64 // decentral / centralized (acceptance ≥ 0.95)

	// Convergence probe against the centralized Eq. 2 solve.
	ProbeApps  int
	ProbeIters int     // rounds to within 5% of the centralized rates
	ProbeTime  float64 // ProbeIters × decentral.DefaultSignalPeriod (s)
	ProbeGap   float64 // final max relative gap

	// Churn phase at ChurnRate.
	ChurnRate        float64
	ChurnCentralized float64
	ChurnMesh        float64
	ChurnDecentral   float64
	MeshRatio        float64 // decentral / mesh under churn (acceptance ≥ 0.90)

	// Telemetry evidence that the decentralized path actually ran.
	Rounds          uint64 // decentral.rounds consumed across the study
	ModeTransitions uint64 // sabalib.mode_transitions across the study
}

// FigDecentral runs the controller-free study.
func FigDecentral(cfg DecentralStudyConfig) (*FigDecentralResult, error) {
	cfg.fill()
	rounds0 := telemetry.Default.Counter("decentral.rounds").Value()
	trans0 := telemetry.Default.Counter("sabalib.mode_transitions").Value()

	env, err := newScaleEnv(cfg.Scale)
	if err != nil {
		return nil, err
	}
	out := &FigDecentralResult{Hosts: len(env.top.Hosts()), ChurnRate: cfg.ChurnRate}

	// Convergence probe on the study's own profiled models.
	if err := out.probe(env); err != nil {
		return nil, err
	}

	// Phase 1: steady-state Fig 10 comparison.
	base, err := env.run(core.PolicyBaseline, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("decentral steady baseline: %w", err)
	}
	policies := []core.Policy{core.PolicySaba, core.PolicySabaDistributed, core.PolicySabaDecentral}
	steady := make([]float64, len(policies))
	err = runCells(len(policies), func(p int) error {
		res, err := env.run(policies[p], 0, 4)
		if err != nil {
			return fmt.Errorf("decentral steady %v: %w", policies[p], err)
		}
		steady[p], err = speedupOf(env, base, res)
		return err
	})
	if err != nil {
		return nil, err
	}
	out.SpeedupCentralized, out.SpeedupMesh, out.SpeedupDecentral = steady[0], steady[1], steady[2]
	if out.SpeedupCentralized > 0 {
		out.CentralizedRatio = out.SpeedupDecentral / out.SpeedupCentralized
	}

	// Phase 2: the FigChurn point at ChurnRate. One cell per policy, each
	// with its own env (fault injection mutates topology liveness) but the
	// IDENTICAL flap schedule, so the comparison isolates the allocation
	// discipline from the failure pattern.
	period := base.Makespan / float64(cfg.Waves)
	horizon := 2 * maxf(base.Makespan, base.Makespan)
	for _, s := range steady {
		if s > 0 {
			horizon = maxf(horizon, 2*base.Makespan/s)
		}
	}
	churned := make([]float64, len(policies))
	err = runCells(len(policies), func(p int) error {
		cell, err := newScaleEnv(cfg.Scale)
		if err != nil {
			return err
		}
		flaps := faults.GenerateLinkFlaps(cell.top, faults.FlapScheduleConfig{
			Seed:     cfg.Scale.Seed + 1,
			Rate:     cfg.ChurnRate,
			Period:   period,
			Horizon:  horizon,
			CoreOnly: true,
		})
		install := func(e *netsim.Engine) error { return faults.InstallLinkFlaps(e, flaps) }
		baseC, err := cell.runWith(core.PolicyBaseline, 0, install)
		if err != nil {
			return fmt.Errorf("decentral churn baseline: %w", err)
		}
		resC, err := cell.runWith(policies[p], 4, install)
		if err != nil {
			return fmt.Errorf("decentral churn %v: %w", policies[p], err)
		}
		churned[p], err = speedupOf(cell, baseC, resC)
		return err
	})
	if err != nil {
		return nil, err
	}
	out.ChurnCentralized, out.ChurnMesh, out.ChurnDecentral = churned[0], churned[1], churned[2]
	if out.ChurnMesh > 0 {
		out.MeshRatio = out.ChurnDecentral / out.ChurnMesh
	}

	out.Rounds = telemetry.Default.Counter("decentral.rounds").Value() - rounds0
	out.ModeTransitions = telemetry.Default.Counter("sabalib.mode_transitions").Value() - trans0
	return out, nil
}

// probe measures convergence of the decentralized iteration against the
// centralized Eq. 2 solve over the study's own profiled models, in
// telemetry rounds and virtual beacon time.
func (r *FigDecentralResult) probe(env *scaleEnv) error {
	n := len(env.jobs)
	if n > 8 {
		n = 8
	}
	objs := make([]solver.Objective, 0, n)
	for i := 0; i < n; i++ {
		entry, ok := env.table.Get(env.jobs[i].Spec.Name)
		if !ok {
			continue
		}
		objs = append(objs, solver.NewMonotonePoly(entry.Coeffs))
	}
	if len(objs) < 2 {
		return fmt.Errorf("decentral probe: only %d profiled models", len(objs))
	}
	want, err := solver.Minimize(objs, solver.Options{Total: 1})
	if err != nil {
		return fmt.Errorf("decentral probe: centralized solve: %w", err)
	}
	gapTo := func(w []float64) float64 {
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if sum <= 0 {
			return math.Inf(1)
		}
		gap := 0.0
		for i, v := range w {
			if want[i] <= 0 {
				continue
			}
			if g := math.Abs(v/sum-want[i]) / want[i]; g > gap {
				gap = g
			}
		}
		return gap
	}
	port := decentral.NewPort(objs, decentral.Params{})
	r.ProbeApps = len(objs)
	r.ProbeIters = -1
	const maxRounds = 512
	for k := 1; k <= maxRounds; k++ {
		port.Step(port.Util())
		if g := gapTo(port.Weights()); g <= 0.05 && r.ProbeIters < 0 {
			r.ProbeIters = k
			r.ProbeGap = g
		}
		if r.ProbeIters >= 0 && port.Converged() {
			break
		}
	}
	r.ProbeGap = gapTo(port.Weights())
	if r.ProbeIters < 0 {
		return fmt.Errorf("decentral probe: no 5%% convergence within %d rounds (gap %.3f)", maxRounds, r.ProbeGap)
	}
	r.ProbeTime = float64(r.ProbeIters) * decentral.DefaultSignalPeriod
	return nil
}

// RunDecentralAtScale executes one decentralized at-scale run — the
// kernel of the DecentralConverge bench cell, exported so cmd/sabaexp
// can benchmark it against the decentral.rounds counter.
func RunDecentralAtScale(cfg ScaleConfig) error {
	env, err := newScaleEnv(cfg)
	if err != nil {
		return err
	}
	_, err = env.run(core.PolicySabaDecentral, 0, 0)
	return err
}

// String renders the study.
func (r *FigDecentralResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FigDecentral — controller-free allocation (%d hosts)\n", r.Hosts)
	fmt.Fprintf(&b, "convergence: %d apps to within 5%% of Eq. 2 in %d rounds (%.1fms of beacons, final gap %.1f%%)\n",
		r.ProbeApps, r.ProbeIters, 1e3*r.ProbeTime, 100*r.ProbeGap)
	fmt.Fprintf(&b, "steady:  centralized=%.2fx  mesh=%.2fx  decentral=%.2fx  (decentral/centralized=%.0f%%)\n",
		r.SpeedupCentralized, r.SpeedupMesh, r.SpeedupDecentral, 100*r.CentralizedRatio)
	fmt.Fprintf(&b, "churn %d%%: centralized=%.2fx  mesh=%.2fx  decentral=%.2fx  (decentral/mesh=%.0f%%)\n",
		int(100*r.ChurnRate), r.ChurnCentralized, r.ChurnMesh, r.ChurnDecentral, 100*r.MeshRatio)
	fmt.Fprintf(&b, "telemetry: %d decentral rounds, %d mode transitions, zero controller RPCs\n",
		r.Rounds, r.ModeTransitions)
	return b.String()
}
