package experiments

import (
	"saba/internal/controller"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/workload"
)

// EnforceScenario is the fixture behind sabaexp's ControllerEnforceAtScale
// benchmark: the Fig. 12 spine-leaf fabric carrying a homogeneous §8.3
// placement — every application spans every host — scaled to fabric size.
// That placement is the regime the cross-port solution memo targets: all
// aggregation and access ports observe the same application set, so one
// Eq. 2 solve and one PL→queue clustering serve the whole fabric. The
// expensive parts (profiling the synthetic catalog, routing every
// connection) happen once in NewEnforceScenario; NewController then stamps
// out controllers that differ only in Workers / NoSolutionCache so the
// serial, parallel and parallel+cache variants time the identical
// enforcement workload.
type EnforceScenario struct {
	top   *topology.Topology
	table *profiler.Table
	names []string
	conns [][2]topology.NodeID // per app: (src, dst) pairs, all hosts covered
}

// EnforceBenchApps is the active-application count of the benchmark
// scenario (the paper's mid bucket, |A|≤250, lands between the Fig. 12
// measurement points).
const EnforceBenchApps = 60

// NewEnforceScenario profiles the catalog and lays out the placement.
func NewEnforceScenario() (*EnforceScenario, error) {
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 3, ToRsPerPod: 3, LeavesPerPod: 2, Spines: 4, HostsPerToR: 12, Queues: 16,
	})
	if err != nil {
		return nil, err
	}
	tab, _, err := cachedCatalog(3)
	if err != nil {
		return nil, err
	}
	hosts := top.Hosts()
	s := &EnforceScenario{top: top, table: tab}
	s.names = make([]string, EnforceBenchApps)
	catalog := workload.Names()
	for i := range s.names {
		s.names[i] = catalog[i%len(catalog)]
	}
	// Each app builds a ring over all hosts with an app-specific stride, so
	// every host sources and sinks every app and all inter-switch ports see
	// the full set while the traffic matrix still differs per app.
	for a := range s.names {
		stride := 1 + a%(len(hosts)-1)
		for h := range hosts {
			s.conns = append(s.conns, [2]topology.NodeID{hosts[h], hosts[(h+stride)%len(hosts)]})
		}
	}
	return s, nil
}

// EnforceBench is one controller variant over the shared scenario.
type EnforceBench struct {
	ctrl *controller.Centralized
}

// NewController registers the scenario's apps and connections on a fresh
// centralized controller. PerPortWeights selects the paper's literal
// per-port Eq. 2 so per-port solves dominate — the work the parallel fan
// and the solution cache attack.
func (s *EnforceScenario) NewController(workers int, noCache bool) (*EnforceBench, error) {
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology:        s.top,
		Table:           s.table,
		Enforcer:        nullEnforcer{},
		PLs:             16,
		Seed:            DefaultSeed,
		PerPortWeights:  true,
		Workers:         workers,
		NoSolutionCache: noCache,
	})
	if err != nil {
		return nil, err
	}
	ids, err := ctrl.RegisterBatch(s.names)
	if err != nil {
		return nil, err
	}
	connsPerApp := len(s.conns) / len(ids)
	for i, pair := range s.conns {
		if _, err := ctrl.PreloadConn(ids[i/connsPerApp], pair[0], pair[1]); err != nil {
			return nil, err
		}
	}
	return &EnforceBench{ctrl: ctrl}, nil
}

// Recompute performs one full fabric recomputation — the benchmark body.
func (b *EnforceBench) Recompute() error {
	_, err := b.ctrl.RecomputeAll()
	return err
}
