package experiments

import (
	"testing"

	"saba/internal/workload"
)

func TestFig1aShape(t *testing.T) {
	r, err := Fig1a()
	if err != nil {
		t.Fatal(err)
	}
	lr := r.Slowdown["LR"]
	sort := r.Slowdown["Sort"]
	// Anchors from the paper: LR 1.3x@75%, 3.4x@25%; Sort ~1.1x@25%.
	if lr[1] < 3.0 || lr[1] > 3.8 {
		t.Errorf("LR slowdown@25%% = %.2f, want ~3.4", lr[1])
	}
	if lr[0] < 1.15 || lr[0] > 1.45 {
		t.Errorf("LR slowdown@75%% = %.2f, want ~1.3", lr[0])
	}
	if sort[1] > 1.25 {
		t.Errorf("Sort slowdown@25%% = %.2f, want ~1.1", sort[1])
	}
	// Sensitivity spread: every workload slowed more at 25% than 75%.
	for n, s := range r.Slowdown {
		if s[1] < s[0]-1e-9 {
			t.Errorf("%s: slowdown@25%% (%.2f) < @75%% (%.2f)", n, s[1], s[0])
		}
	}
	// Paper: average 25% slowdown ≈ 2.1x.
	if r.Mean25 < 1.8 || r.Mean25 > 2.4 {
		t.Errorf("mean slowdown@25%% = %.2f, want ~2.1", r.Mean25)
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig1bShape(t *testing.T) {
	r, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	// Qualitative shape: skewed helps LR substantially, costs PR little.
	if r.SkewedLR >= r.MaxMinLR {
		t.Errorf("skewed LR slowdown %.2f !< max-min %.2f", r.SkewedLR, r.MaxMinLR)
	}
	if r.SkewedPR > r.MaxMinPR*1.35 {
		t.Errorf("skewed PR slowdown %.2f degraded too much vs %.2f", r.SkewedPR, r.MaxMinPR)
	}
	// The average must improve (the §2.2 argument).
	if (r.SkewedLR+r.SkewedPR)/2 >= (r.MaxMinLR+r.MaxMinPR)/2 {
		t.Errorf("skewed average %.2f !< max-min average %.2f",
			(r.SkewedLR+r.SkewedPR)/2, (r.MaxMinLR+r.MaxMinPR)/2)
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig2Shapes(t *testing.T) {
	// LR (serial): no overlapped buckets. PR (overlapped): many.
	lr, err := Fig2("LR", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	both := 0
	for _, p := range lr.Series {
		if p.CPU > 80 && p.Net > 80 {
			both++
		}
	}
	if both > len(lr.Series)/10 {
		t.Errorf("LR shows %d/%d overlapped buckets; expected nearly none", both, len(lr.Series))
	}

	pr, err := Fig2("PR", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	both = 0
	for _, p := range pr.Series {
		if p.CPU > 80 && p.Net > 30 {
			both++
		}
	}
	if both < 5 {
		t.Errorf("PR shows only %d overlapped buckets; expected many", both)
	}

	// Fig 2's headline: reducing bandwidth 75%→25% stretches LR much more
	// than PR (paper: 2.59x vs 1.37x).
	lr25, err := Fig2("LR", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	pr25, err := Fig2("PR", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	lrStretch := lr25.Completed / lr.Completed
	prStretch := pr25.Completed / pr.Completed
	if lrStretch < 2.0 {
		t.Errorf("LR 75→25%% stretch = %.2f, want ~2.6", lrStretch)
	}
	if prStretch > 1.7 {
		t.Errorf("PR 75→25%% stretch = %.2f, want ~1.4", prStretch)
	}
	if lrStretch <= prStretch {
		t.Error("LR must stretch more than PR")
	}
	if _, err := Fig2("nope", 0.5); err == nil {
		t.Error("unknown workload should fail")
	}
}

func TestFig5Models(t *testing.T) {
	r, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SQL", "LR"} {
		if len(r.Samples[name]) == 0 {
			t.Fatalf("%s: no samples", name)
		}
		for k := 1; k <= 3; k++ {
			if r.Models[name][k].Degree() != k {
				t.Errorf("%s k=%d model has degree %d", name, k, r.Models[name][k].Degree())
			}
		}
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig6aDegreesImproveFit(t *testing.T) {
	r, err := Fig6a()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range workload.Names() {
		v := r.R2[n]
		if v[2] < v[0]-1e-9 {
			t.Errorf("%s: R²(k=3)=%.3f < R²(k=1)=%.3f", n, v[2], v[0])
		}
		if v[2] < 0.55 {
			t.Errorf("%s: R²(k=3)=%.3f too low", n, v[2])
		}
	}
	// SQL's non-linearity: k=1 fit markedly worse than k=3 (paper: 0.63→0.96).
	sql := r.R2["SQL"]
	if sql[2]-sql[0] < 0.05 {
		t.Errorf("SQL R² gain k1→k3 = %.3f, expected a visible jump", sql[2]-sql[0])
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig6bDatasetDrift(t *testing.T) {
	r, err := Fig6b()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range workload.Names() {
		v := r.R2[n]
		// Drifted scales stay predictive (the paper's point: R² above
		// 0.55 despite an order-of-magnitude dataset change; our band is
		// slightly wider because the simulated curves differ in range).
		if v[0] < 0.4 || v[2] < 0.4 {
			t.Errorf("%s: drifted R² too low: %.3f/%.3f", n, v[0], v[2])
		}
		if v[1] < 0.7 {
			t.Errorf("%s: matching-scale R² = %.3f", n, v[1])
		}
	}
	// Aggregate direction: the 10x drift costs accuracy on average.
	mean := func(idx int) float64 {
		s := 0.0
		for _, n := range workload.Names() {
			s += r.R2[n][idx]
		}
		return s / float64(len(workload.Names()))
	}
	if mean(2) >= mean(1) {
		t.Errorf("mean R² at 10x (%.3f) should fall below 1x (%.3f)", mean(2), mean(1))
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig6cNodeDrift(t *testing.T) {
	r, err := Fig6c()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range workload.Names() {
		v := r.R2[n]
		if len(v) != 5 {
			t.Fatalf("%s: %d scales", n, len(v))
		}
		// The 1x point is in-sample quality; drifted counts degrade
		// (some, like Sort at 4x, collapse below zero — the paper's 4x
		// cliff).
		if v[1] < 0.7 {
			t.Errorf("%s: R² at matching nodes = %.3f", n, v[1])
		}
		for i, x := range v {
			if x > 1+1e-9 {
				t.Errorf("%s: R² at %gx = %.3f > 1", n, r.NodeScales[i], x)
			}
		}
	}
	// Aggregate direction: mean R² at 4x below mean at 1x (Fig. 6c trend).
	mean := func(idx int) float64 {
		s := 0.0
		for _, n := range workload.Names() {
			s += r.R2[n][idx]
		}
		return s / float64(len(workload.Names()))
	}
	if mean(4) >= mean(1) {
		t.Errorf("mean R² at 4x (%.3f) should fall below 1x (%.3f)", mean(4), mean(1))
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig8SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("co-location study skipped in -short")
	}
	r, err := Fig8(3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedups.Average < 1.1 {
		t.Errorf("average Saba speedup = %.2f, want > 1.1 (paper 1.88)", r.Speedups.Average)
	}
	// Sensitive beat insensitive.
	if r.Speedups.ByWorkload["LR"] <= r.Speedups.ByWorkload["Sort"] {
		t.Errorf("LR speedup (%.2f) must exceed Sort (%.2f)",
			r.Speedups.ByWorkload["LR"], r.Speedups.ByWorkload["Sort"])
	}
	if len(r.CDF) != 3 || r.Summary.N != 3 {
		t.Errorf("CDF/Summary sized wrong: %d/%d", len(r.CDF), r.Summary.N)
	}
	if _, err := Fig8(0, 1); err == nil {
		t.Error("zero setups should fail")
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig9DegreeStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity study skipped in -short")
	}
	r, err := Fig9(Fig9Degree, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Averages) != 3 {
		t.Fatalf("degree study has %d points", len(r.Averages))
	}
	for i, avg := range r.Averages {
		if avg < 1.0 {
			t.Errorf("degree %s: average %.2f < 1", r.Labels[i], avg)
		}
	}
	if _, err := Fig9(Fig9Mode(9), 1); err == nil {
		t.Error("unknown mode should fail")
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig10SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("at-scale study skipped in -short")
	}
	r, err := Fig10(ScaleConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"saba", "ideal-maxmin", "homa", "sincronia"} {
		if r.Averages[name] <= 0 {
			t.Errorf("%s: no average", name)
		}
	}
	// Ideal max-min must beat the (CC-lossy) baseline, as in the paper.
	if r.Averages["ideal-maxmin"] <= 1.0 {
		t.Errorf("ideal max-min (%.2f) should beat the baseline", r.Averages["ideal-maxmin"])
	}
	// Known deviation (see EXPERIMENTS.md): with one job per server the
	// winners of Saba's fabric skew are NIC-capped, so Saba tracks the
	// baseline instead of beating ideal max-min as the paper reports.
	// Guard that it stays within a sane band rather than asserting the
	// paper's ordering.
	if r.Averages["saba"] < 0.85 {
		t.Errorf("saba (%.2f) collapsed at scale", r.Averages["saba"])
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFigDriftRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("drift-recovery study skipped in -short")
	}
	r, err := FigDrift(DriftStudyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Saba beats the FECN baseline in every phase; the headline acceptance
	// bar is that online relearning recovers at least 80% of the pre-drift
	// advantage (it lands well above — see EXPERIMENTS.md for why fair
	// share is a strong post-drift allocation in this simulator).
	for name, v := range map[string]float64{
		"steady": r.Steady, "stale": r.Stale, "quarantine": r.Quarantine,
		"recovered": r.Recovered, "oracle": r.Oracle,
	} {
		if v <= 1.0 {
			t.Errorf("%s speedup = %.2f, want > 1 over FECN", name, v)
		}
	}
	if r.Recovery < 0.8 {
		t.Errorf("online recovery = %.0f%% of pre-drift, want ≥ 80%%", 100*r.Recovery)
	}
	// The learner must close the loop for most of the catalog: every app
	// gets a verdict, a majority promote fresh models, and the conservative
	// failures (knee-shaped truths no monotone low-degree polynomial can
	// fit) stay a small minority pinned at fair share.
	total := len(r.Relearned) + len(r.Released) + len(r.Failed)
	if want := len(workload.Names()); total != want {
		t.Fatalf("verdicts for %d apps, want %d", total, want)
	}
	if len(r.Relearned) < total/2 {
		t.Errorf("only %d/%d apps relearned", len(r.Relearned), total)
	}
	if len(r.Failed) > total/3 {
		t.Errorf("%d/%d apps failed to relearn", len(r.Failed), total)
	}
	if r.MaxObs <= 0 {
		t.Error("no observation windows recorded")
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFig12Overhead(t *testing.T) {
	r, err := Fig12(Fig12Config{AppCounts: []int{20, 60}, Degrees: []int{1, 3}, Scenarios: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Keys) != 4 {
		t.Fatalf("keys = %v", r.Keys)
	}
	for _, key := range r.Keys {
		for _, d := range r.Durations[key] {
			if d <= 0 {
				t.Errorf("%s: non-positive duration", key)
			}
		}
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestFigDecentralConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("at-scale study skipped in -short")
	}
	r, err := FigDecentral(DecentralStudyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: the telemetry-only allocator lands within 5% of the
	// centralized Eq. 2 speedup on Fig 10 with no controller RPC on the
	// hot path...
	if r.CentralizedRatio < 0.95 {
		t.Errorf("decentral/centralized = %.0f%%, want ≥ 95%%", 100*r.CentralizedRatio)
	}
	// ...and retains ≥ 90% of the mesh controller's speedup under 5%
	// link churn.
	if r.MeshRatio < 0.90 {
		t.Errorf("decentral/mesh under churn = %.0f%%, want ≥ 90%%", 100*r.MeshRatio)
	}
	if r.ProbeGap > 0.05 {
		t.Errorf("probe gap = %.1f%%, want ≤ 5%%", 100*r.ProbeGap)
	}
	if r.ProbeIters <= 0 || r.ProbeTime <= 0 {
		t.Errorf("probe did not converge: iters=%d time=%v", r.ProbeIters, r.ProbeTime)
	}
	// The decentralized path must actually have run: telemetry rounds
	// accumulated and libraries entered ModeDecentral.
	if r.Rounds == 0 {
		t.Error("no decentral rounds recorded")
	}
	if r.ModeTransitions == 0 {
		t.Error("no mode transitions recorded")
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}
