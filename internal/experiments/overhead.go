package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"saba/internal/controller"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/workload"
)

// nullEnforcer discards switch configurations: the overhead study times
// the controller's calculation, not the (simulated) switch programming.
type nullEnforcer struct{}

func (nullEnforcer) Configure(topology.LinkID, netsim.PortConfig) error { return nil }

// Fig12Config parameterizes the controller-overhead study.
type Fig12Config struct {
	// AppCounts are the active-application set sizes to measure; nil
	// selects {50, 250, 1000} (the paper buckets |A|≤250 and ≤1000).
	AppCounts []int
	// Degrees are the polynomial degrees; nil selects {1, 2, 3}.
	Degrees []int
	// Scenarios per (size, degree); 0 selects 10 (the paper runs 30,000
	// scenarios total; percentiles stabilize far earlier).
	Scenarios int
	// InstancesPerApp is how many connections each application spreads
	// over the fabric; 0 selects 32 (paper: "32 instances of each
	// application are randomly distributed among nodes").
	InstancesPerApp int
	Seed            int64
}

func (c *Fig12Config) fill() {
	if c.AppCounts == nil {
		c.AppCounts = []int{50, 250, 1000}
	}
	if c.Degrees == nil {
		c.Degrees = []int{1, 2, 3}
	}
	if c.Scenarios == 0 {
		c.Scenarios = 10
	}
	if c.InstancesPerApp == 0 {
		c.InstancesPerApp = 32
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// Fig12Result reports controller calculation times.
type Fig12Result struct {
	// Durations[key] for key "k=<d>/|A|=<n>" holds one measured full
	// recomputation per scenario, in seconds.
	Durations map[string][]float64
	Keys      []string
}

// fig12TimeMu serializes the timed recomputation of concurrent Fig. 12
// cells: scenario construction (profiling, registration, thousands of
// path detections) runs fully parallel, but two measured sections never
// overlap, so one cell's recomputation cannot time another's contention.
var fig12TimeMu sync.Mutex

// Fig12 measures the centralized controller's bandwidth-calculation time
// across active-application set sizes and model degrees (§8.5). Apps use
// synthetic sensitivity profiles fitted at each degree; each app spreads
// InstancesPerApp connections over a spine-leaf fabric, and the measured
// quantity is one full recomputation of every active port. Scenarios are
// independent cells with per-cell RNGs; construction fans out across the
// experiment worker pool while the timed sections stay mutually
// exclusive (sabaexp -parallel 1 removes even construction background
// load for the cleanest timings).
func Fig12(cfg Fig12Config) (*Fig12Result, error) {
	cfg.fill()
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 3, ToRsPerPod: 3, LeavesPerPod: 2, Spines: 4, HostsPerToR: 12, Queues: 16,
	})
	if err != nil {
		return nil, err
	}
	hosts := top.Hosts()
	rng := rand.New(rand.NewSource(cfg.Seed))
	specs := workload.Synthetic(workload.SynthConfig{Count: 40}, rng)

	// Sensitivity tables, one independent profiling cell per degree.
	tables := make([]*profiler.Table, len(cfg.Degrees))
	err = runCells(len(cfg.Degrees), func(d int) error {
		table := profiler.NewTable()
		for _, spec := range specs {
			res, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{cfg.Degrees[d]})
			if err != nil {
				return err
			}
			if err := table.PutResult(res, cfg.Degrees[d]); err != nil {
				return err
			}
		}
		tables[d] = table
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Fig12Result{Durations: map[string][]float64{}}
	type cell struct {
		d, c, s int
		key     string
	}
	var cells []cell
	for d := range cfg.Degrees {
		for c := range cfg.AppCounts {
			key := fmt.Sprintf("k=%d/|A|=%d", cfg.Degrees[d], cfg.AppCounts[c])
			out.Keys = append(out.Keys, key)
			out.Durations[key] = make([]float64, cfg.Scenarios)
			for s := 0; s < cfg.Scenarios; s++ {
				cells = append(cells, cell{d: d, c: c, s: s, key: key})
			}
		}
	}
	err = runCells(len(cells), func(i int) error {
		cl := cells[i]
		count := cfg.AppCounts[cl.c]
		// Per-cell RNG: placement is deterministic per (seed, degree,
		// count, scenario) whatever order — or thread — cells run in.
		rng := cellRNG(cfg.Seed, int64(cfg.Degrees[cl.d]), int64(count), int64(cl.s))
		ctrl, err := controller.NewCentralized(controller.Config{
			Topology: top,
			Table:    tables[cl.d],
			Enforcer: nullEnforcer{},
			PLs:      16,
			Seed:     cfg.Seed + int64(cl.s),
		})
		if err != nil {
			return err
		}
		names := make([]string, count)
		for i := range names {
			names[i] = specs[i%len(specs)].Name
		}
		ids, err := ctrl.RegisterBatch(names)
		if err != nil {
			return err
		}
		for _, id := range ids {
			for c := 0; c < cfg.InstancesPerApp; c++ {
				src := hosts[rng.Intn(len(hosts))]
				dst := hosts[rng.Intn(len(hosts))]
				if src == dst {
					continue
				}
				if _, err := ctrl.PreloadConn(id, src, dst); err != nil {
					return err
				}
			}
		}
		fig12TimeMu.Lock()
		d, err := ctrl.RecomputeAll()
		fig12TimeMu.Unlock()
		if err != nil {
			return err
		}
		out.Durations[cl.key][cl.s] = d.Seconds()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the p50/p99 per configuration.
func (r *Fig12Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 12 — controller full-recomputation time (paper p99: k=3,|A|≤1000 → 1.13s)\n")
	for _, key := range r.Keys {
		ds := r.Durations[key]
		p50, p99 := percentileOf(ds, 0.50), percentileOf(ds, 0.99)
		fmt.Fprintf(&b, "%-16s p50=%.4fs p99=%.4fs (n=%d)\n", key, p50, p99, len(ds))
	}
	return b.String()
}

// percentileOf is a tiny local helper (metrics.Percentile needs a copy;
// here the slices are small).
func percentileOf(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for k := i; k > 0 && s[k] < s[k-1]; k-- {
			s[k], s[k-1] = s[k-1], s[k]
		}
	}
	idx := int(p * float64(len(s)-1))
	return s[idx]
}
