package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"saba/internal/netsim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// HyperscaleConfig parameterizes FigHyperscale (repo extension): a
// fabric one order of magnitude beyond the paper's 1,944 servers,
// driven directly through the simulation engine with pod-local flow
// waves so the per-pod sharded event loops have independent work. The
// zero value selects a 16-pod fabric with 10,240 hosts and ~1M flows.
type HyperscaleConfig struct {
	Topology     topology.SpineLeafConfig // zero → 16 pods × 16 ToRs × 40 hosts/ToR
	Waves        int                      // admission waves; 0 → 50
	FlowsPerWave int                      // flows admitted per wave; 0 → 4096
	WaveGap      float64                  // virtual seconds between waves; 0 → 2ms
	MeanBits     float64                  // mean flow size; 0 → 1e7 bits
	// CrossPod is the fraction of flows whose destination is in another
	// pod (0 = fully pod-local, the default). Pod-local traffic keeps
	// dirty components pod-sized — what both scoped recomputation and
	// the per-pod shards exploit. Even a few percent of cross-pod flows
	// chains every pod's component together through the spine links and
	// slows scoped recomputation by more than an order of magnitude at
	// this scale, so cross traffic is opt-in for sweeps that study it.
	CrossPod float64
	Seed     int64
	// Shards selects the engine sharding: 0 → one shard per pod (the
	// default this figure exists to exercise), 1 → the serial engine,
	// n ≥ 2 → n shards.
	Shards int
	// CompareSerial additionally replays the identical workload on the
	// serial engine and checks the completion digests match bit-for-bit.
	// Off by default: it roughly doubles the run time.
	CompareSerial bool
}

func (c *HyperscaleConfig) fill() {
	if c.Topology.Pods == 0 {
		c.Topology = topology.SpineLeafConfig{
			Pods: 16, ToRsPerPod: 16, LeavesPerPod: 4, Spines: 4,
			HostsPerToR: 40, Queues: 16,
		}
	}
	if c.Waves == 0 {
		c.Waves = 256
	}
	if c.FlowsPerWave == 0 {
		c.FlowsPerWave = 4096
	}
	if c.WaveGap == 0 {
		c.WaveGap = 2e-3
	}
	if c.MeanBits == 0 {
		c.MeanBits = 1e7
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Shards == 0 {
		c.Shards = -1 // engine convention: one shard per pod
	}
}

// hyperRun is the measurement of one engine pass over the workload.
type hyperRun struct {
	admitted  int
	completed int
	makespan  float64
	wallSecs  float64
	eventsSec float64
	digest    uint64
}

// HyperscaleResult reports a FigHyperscale run.
type HyperscaleResult struct {
	Hosts, Pods, Shards int
	Flows, Completed    int
	Makespan            float64 // virtual seconds
	WallSecs            float64
	EventsPerSec        float64
	// Serial comparison (zero / false unless CompareSerial was set).
	SerialWallSecs float64
	Speedup        float64
	DigestMatch    bool
}

// FigHyperscale builds a 10k+ host fabric and pushes pod-local flow
// waves through the sharded engine. It exists to demonstrate — and
// gate in CI — that the engine completes at a scale the serial path
// was never exercised at, and (with CompareSerial) that sharding does
// not change a single completion time even with hundreds of thousands
// of flows in play.
func FigHyperscale(cfg HyperscaleConfig) (*HyperscaleResult, error) {
	cfg.fill()
	top, err := topology.NewSpineLeaf(cfg.Topology)
	if err != nil {
		return nil, err
	}
	part := top.Partition()
	if len(part.HostsIn(0)) < 2 {
		return nil, fmt.Errorf("hyperscale: pods need at least 2 hosts for local traffic")
	}
	sharded, err := runHyperscale(top, cfg, cfg.Shards)
	if err != nil {
		return nil, err
	}
	out := &HyperscaleResult{
		Hosts:        len(top.Hosts()),
		Pods:         part.NumParts(),
		Shards:       shardCount(cfg.Shards, part),
		Flows:        sharded.admitted,
		Completed:    sharded.completed,
		Makespan:     sharded.makespan,
		WallSecs:     sharded.wallSecs,
		EventsPerSec: sharded.eventsSec,
	}
	if sharded.completed != sharded.admitted {
		return nil, fmt.Errorf("hyperscale: %d of %d flows never completed",
			sharded.admitted-sharded.completed, sharded.admitted)
	}
	if cfg.CompareSerial {
		serial, err := runHyperscale(top, cfg, 1)
		if err != nil {
			return nil, err
		}
		out.SerialWallSecs = serial.wallSecs
		if sharded.wallSecs > 0 {
			out.Speedup = serial.wallSecs / sharded.wallSecs
		}
		out.DigestMatch = serial.digest == sharded.digest &&
			serial.completed == sharded.completed
		if !out.DigestMatch {
			return nil, fmt.Errorf("hyperscale: sharded run diverged from serial (digest %x vs %x, completed %d vs %d)",
				sharded.digest, serial.digest, sharded.completed, serial.completed)
		}
	}
	return out, nil
}

func shardCount(shards int, part *topology.Partition) int {
	if shards < 0 {
		return part.NumParts()
	}
	if shards <= 1 {
		return 1
	}
	return shards
}

// runHyperscale replays the seeded workload once on a fresh network.
// The admission schedule is a pure function of the seed, so serial and
// sharded passes see byte-identical flow sequences.
func runHyperscale(top *topology.Topology, cfg HyperscaleConfig, shards int) (hyperRun, error) {
	// Event throughput is measured as a before/after delta on the
	// process-wide registry's event counter — the same counter the bench
	// harness meters — so a FigHyperscale bench cell reports real
	// events/sec instead of a private registry the harness never sees.
	events := telemetry.Default.Counter("netsim.events")
	net := netsim.NewNetwork(top)
	e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
	if shards > 1 || shards < 0 {
		e.SetShards(shards)
	}
	// The digest callback reads only e.Now() and folds into run-local
	// state, so the sharded engine may retire pod-local completions in
	// lookahead windows (the callbacks still fire in serial order at
	// serial virtual times).
	e.SetPureCallbacks(true)
	part := top.Partition()
	pods := part.NumParts()

	var run hyperRun
	// Completion digest: FNV-style fold over (flow id, completion time)
	// in callback order. Callback order is part of the engine's
	// determinism contract, so serial and sharded digests must collide
	// exactly or not at all.
	run.digest = 14695981039346656037
	record := func(e *netsim.Engine, id netsim.FlowID) {
		run.completed++
		run.digest = (run.digest ^ uint64(id)) * 1099511628211
		run.digest = (run.digest ^ math.Float64bits(e.Now())) * 1099511628211
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for w := 0; w < cfg.Waves; w++ {
		at := float64(w) * cfg.WaveGap
		if err := e.At(at, func(e *netsim.Engine) {
			specs := make([]netsim.FlowSpec, cfg.FlowsPerWave)
			for i := range specs {
				sp := rng.Intn(pods)
				hs := part.HostsIn(sp)
				src := hs[rng.Intn(len(hs))]
				var dst topology.NodeID
				if pods == 1 || rng.Float64() >= cfg.CrossPod {
					dst = hs[rng.Intn(len(hs))]
					for dst == src {
						dst = hs[rng.Intn(len(hs))]
					}
				} else {
					dp := rng.Intn(pods - 1)
					if dp >= sp {
						dp++
					}
					hd := part.HostsIn(dp)
					dst = hd[rng.Intn(len(hd))]
				}
				// Heavy-tailed sizes around the mean: a fixed floor plus an
				// exponential body.
				bits := cfg.MeanBits * (0.25 + 0.75*rng.ExpFloat64())
				specs[i] = netsim.FlowSpec{Src: src, Dst: dst, Bits: bits, Mult: 1}
			}
			if _, err := e.AddFlows(specs, record); err != nil {
				panic(err)
			}
			run.admitted += len(specs)
		}); err != nil {
			return run, err
		}
	}

	ev0 := events.Value()
	start := time.Now()
	if err := e.Run(math.Inf(1)); err != nil {
		return run, err
	}
	run.wallSecs = time.Since(start).Seconds()
	run.makespan = e.Now()
	if run.wallSecs > 0 {
		run.eventsSec = float64(events.Value()-ev0) / run.wallSecs
	}
	return run, nil
}

// String renders the run.
func (r *HyperscaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "FigHyperscale — sharded engine at hyperscale (repo extension)\n")
	fmt.Fprintf(&b, "hosts=%d pods=%d shards=%d\n", r.Hosts, r.Pods, r.Shards)
	fmt.Fprintf(&b, "flows=%d completed=%d makespan=%.4fs\n", r.Flows, r.Completed, r.Makespan)
	fmt.Fprintf(&b, "wall=%.2fs events/s=%.0f\n", r.WallSecs, r.EventsPerSec)
	if r.SerialWallSecs > 0 {
		fmt.Fprintf(&b, "serial wall=%.2fs speedup=%.2fx digest-match=%v\n",
			r.SerialWallSecs, r.Speedup, r.DigestMatch)
	}
	return b.String()
}
