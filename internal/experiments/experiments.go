// Package experiments reproduces every table and figure of the paper's
// motivation and evaluation sections. Each study is a function returning
// a typed result with a human-readable renderer; cmd/sabaexp prints them
// and the repository-root benchmarks wrap them.
//
// Studies accept scale knobs so the test suite can run reduced versions
// quickly; cmd/sabaexp -full reproduces the paper-sized parameter sweeps.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"saba/internal/core"
	"saba/internal/metrics"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/workload"
)

// DefaultSeed keeps every experiment deterministic unless overridden.
const DefaultSeed = 42

// ProfileCatalog profiles all ten Table-1 workloads with the simulated
// profiler and returns the sensitivity table (models of the requested
// degree) plus the raw per-workload profiling results keyed by name.
func ProfileCatalog(degree int) (*profiler.Table, map[string]profiler.Result, error) {
	tab := profiler.NewTable()
	results := map[string]profiler.Result{}
	for _, spec := range workload.Catalog() {
		res, err := profiler.Profile(spec.Name, &profiler.SimRunner{Spec: spec}, nil, []int{1, 2, 3})
		if err != nil {
			return nil, nil, fmt.Errorf("profile %s: %w", spec.Name, err)
		}
		if err := tab.PutResult(res, degree); err != nil {
			return nil, nil, err
		}
		results[spec.Name] = res
	}
	return tab, results, nil
}

// catalogCache memoizes ProfileCatalog per degree: profiling is
// deterministic, and most studies share the degree-3 table. Each entry
// carries a sync.Once so concurrent experiment cells profile a degree
// exactly once without serializing cells that need different degrees.
var (
	cacheMu      sync.Mutex
	catalogCache = map[int]*catalogEntry{}
)

type catalogEntry struct {
	once  sync.Once
	table *profiler.Table
	res   map[string]profiler.Result
	err   error
}

func cachedCatalog(degree int) (*profiler.Table, map[string]profiler.Result, error) {
	cacheMu.Lock()
	e := catalogCache[degree]
	if e == nil {
		e = &catalogEntry{}
		catalogCache[degree] = e
	}
	cacheMu.Unlock()
	e.once.Do(func() { e.table, e.res, e.err = ProfileCatalog(degree) })
	return e.table, e.res, e.err
}

// Speedups aggregates per-workload speedups (treatment over baseline).
type Speedups struct {
	// ByWorkload maps workload name to the geometric mean of its speedups.
	ByWorkload map[string]float64
	// All is every individual speedup sample.
	All []float64
	// Average is the geometric mean over All.
	Average float64
}

func newSpeedups() *Speedups {
	return &Speedups{ByWorkload: map[string]float64{}}
}

// collect computes the summary from raw per-workload samples. Names are
// visited in sorted order so the float accumulation — and therefore the
// result — is bit-identical run to run (map iteration order is not).
func collectSpeedups(samples map[string][]float64) (*Speedups, error) {
	out := newSpeedups()
	for _, name := range sortedKeys(samples) {
		xs := samples[name]
		g, err := metrics.GeoMean(xs)
		if err != nil {
			return nil, fmt.Errorf("speedups for %s: %w", name, err)
		}
		out.ByWorkload[name] = g
		out.All = append(out.All, xs...)
	}
	g, err := metrics.GeoMean(out.All)
	if err != nil {
		return nil, err
	}
	out.Average = g
	return out, nil
}

// render prints per-workload speedups in catalog order followed by the
// average, matching the layout of the paper's bar charts.
func (s *Speedups) render(b *strings.Builder, label string) {
	fmt.Fprintf(b, "%-28s", label)
	for _, n := range workload.Names() {
		if v, ok := s.ByWorkload[n]; ok {
			fmt.Fprintf(b, " %s=%.2f", n, v)
		}
	}
	fmt.Fprintf(b, " | avg=%.2f\n", s.Average)
}

// jobsFromSetup converts a workload placement to core job specs on the
// given hosts.
func jobsFromSetup(s workload.Setup, hosts []topology.NodeID) []core.JobSpec {
	jobs := make([]core.JobSpec, 0, len(s.Jobs))
	for _, p := range s.Jobs {
		nodes := make([]topology.NodeID, len(p.Servers))
		for i, idx := range p.Servers {
			nodes[i] = hosts[idx]
		}
		jobs = append(jobs, core.JobSpec{
			Spec:         p.Spec,
			DatasetScale: p.DatasetScale,
			Nodes:        nodes,
		})
	}
	return jobs
}

// homogeneousJobs builds the §8.3 setup: one instance of every catalog
// workload spanning all hosts, at the given dataset scale.
func homogeneousJobs(hosts []topology.NodeID, datasetScale float64) []core.JobSpec {
	var jobs []core.JobSpec
	for _, spec := range workload.Catalog() {
		jobs = append(jobs, core.JobSpec{
			Spec:         spec,
			DatasetScale: datasetScale,
			Nodes:        hosts,
		})
	}
	return jobs
}

// speedupsOf compares two runs job-by-job and groups by workload name.
func speedupsOf(jobs []core.JobSpec, base, treat core.Result) map[string][]float64 {
	out := map[string][]float64{}
	for i := range jobs {
		name := jobs[i].Spec.Name
		out[name] = append(out[name], base.Completions[i]/treat.Completions[i])
	}
	return out
}

// sortedKeys returns map keys in sorted order for stable rendering.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
