// Package rpc is the small control-plane RPC substrate the Saba library
// and controller communicate over (paper §7.3: "the connection manager
// uses RPC operations for all control-plane activities"). Messages are
// length-prefixed JSON frames over TCP: simple, debuggable, and free of
// schema registries. One request is outstanding per client at a time,
// which matches the connection manager's synchronous call pattern.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrameSize bounds a single message to keep a malformed peer from
// forcing huge allocations.
const MaxFrameSize = 16 << 20

// request is the wire format of a call.
type request struct {
	ID     uint64          `json:"id"`
	Method string          `json:"method"`
	Args   json.RawMessage `json:"args,omitempty"`
}

// response is the wire format of a reply.
type response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Errors returned by the package.
var (
	ErrFrameTooLarge   = errors.New("rpc: frame exceeds MaxFrameSize")
	ErrClientClosed    = errors.New("rpc: client closed")
	ErrUnknownMethod   = errors.New("rpc: unknown method")
	ErrServerClosed    = errors.New("rpc: server closed")
	ErrDuplicateMethod = errors.New("rpc: method already registered")
)

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Handler processes one call: it receives the raw JSON arguments and
// returns a result value to be JSON-encoded (nil is allowed).
type Handler func(args json.RawMessage) (any, error)

// Server dispatches calls to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer creates a server with no handlers.
func NewServer() *Server {
	return &Server{
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
	}
}

// Handle registers a handler for a method name.
func (s *Server) Handle(method string, h Handler) error {
	if method == "" || h == nil {
		return fmt.Errorf("rpc: invalid handler registration for %q", method)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateMethod, method)
	}
	s.handlers[method] = h
	return nil
}

// Listen binds the server to addr ("host:port"; ":0" picks a free port)
// and starts accepting in a background goroutine. It returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// serveConn processes requests from one connection sequentially.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		var req request
		if err := json.Unmarshal(frame, &req); err != nil {
			return // protocol violation: drop the connection
		}
		resp := s.dispatch(&req)
		out, err := json.Marshal(resp)
		if err != nil {
			out, _ = json.Marshal(response{ID: req.ID, Error: "rpc: unencodable result"})
		}
		if err := writeFrame(conn, out); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req *request) response {
	s.mu.RLock()
	h, ok := s.handlers[req.Method]
	s.mu.RUnlock()
	if !ok {
		return response{ID: req.ID, Error: fmt.Sprintf("%v: %s", ErrUnknownMethod, req.Method)}
	}
	result, err := h(req.Args)
	if err != nil {
		return response{ID: req.ID, Error: err.Error()}
	}
	if result == nil {
		return response{ID: req.ID}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{ID: req.ID, Error: fmt.Sprintf("rpc: encode result: %v", err)}
	}
	return response{ID: req.ID, Result: raw}
}

// Close stops accepting and tears down all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a synchronous RPC client.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	nextID  uint64
	timeout time.Duration
	closed  bool
}

// Dial connects to a server. timeout bounds both the dial and each call
// round-trip; 0 selects 5 seconds.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, timeout: timeout}, nil
}

// Call invokes method with args (JSON-encoded) and decodes the result
// into reply (which may be nil to discard it). Remote errors come back as
// *RemoteError.
func (c *Client) Call(method string, args any, reply any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.nextID++
	req := request{ID: c.nextID, Method: method}
	if args != nil {
		raw, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("rpc: encode args: %w", err)
		}
		req.Args = raw
	}
	frame, err := json.Marshal(req)
	if err != nil {
		return err
	}
	deadline := time.Now().Add(c.timeout)
	if err := c.conn.SetDeadline(deadline); err != nil {
		return err
	}
	if err := writeFrame(c.conn, frame); err != nil {
		return err
	}
	respFrame, err := readFrame(c.conn)
	if err != nil {
		return err
	}
	var resp response
	if err := json.Unmarshal(respFrame, &resp); err != nil {
		return err
	}
	if resp.ID != req.ID {
		return fmt.Errorf("rpc: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Error != "" {
		return &RemoteError{Method: method, Msg: resp.Error}
	}
	if reply != nil && resp.Result != nil {
		return json.Unmarshal(resp.Result, reply)
	}
	return nil
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// RemoteError is an error returned by the server-side handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}
