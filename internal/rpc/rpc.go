// Package rpc is the small control-plane RPC substrate the Saba library
// and controller communicate over (paper §7.3: "the connection manager
// uses RPC operations for all control-plane activities"). Messages are
// length-prefixed JSON frames over TCP: simple, debuggable, and free of
// schema registries. One request is outstanding per client at a time,
// which matches the connection manager's synchronous call pattern.
//
// The client is fault tolerant: transport errors (dial failures,
// timeouts, resets, half-read frames) discard the connection — it is
// never reused, so a late response can't be mis-delivered to a later
// call — and, when retries are enabled, the call is re-sent over a fresh
// connection after an exponential backoff with jitter. Request IDs are
// scoped to a client session that survives reconnection, and the server
// deduplicates by (session, id): a retried request whose first execution
// already completed is answered from the response cache instead of being
// executed twice, giving effective exactly-once semantics for the
// synchronous client.
package rpc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"saba/internal/telemetry"
)

// MaxFrameSize bounds a single message to keep a malformed peer from
// forcing huge allocations.
const MaxFrameSize = 16 << 20

// request is the wire format of a call. Session scopes the ID space to
// one client so the server can deduplicate retries across reconnects;
// session 0 means "no dedup" (pre-session peers simply omit the field).
type request struct {
	Session uint64          `json:"sess,omitempty"`
	ID      uint64          `json:"id"`
	Method  string          `json:"method"`
	Args    json.RawMessage `json:"args,omitempty"`
	// DeadlineMS is the caller's remaining time budget for this attempt in
	// milliseconds (relative, so client and server clocks need not agree).
	// A server that cannot finish inside the budget sheds the call with
	// ErrDeadline instead of letting the connection stall behind it.
	// 0 means no deadline (pre-deadline peers simply omit the field).
	DeadlineMS uint64 `json:"dl,omitempty"`
}

// response is the wire format of a reply.
type response struct {
	ID     uint64          `json:"id"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Errors returned by the package.
var (
	ErrFrameTooLarge   = errors.New("rpc: frame exceeds MaxFrameSize")
	ErrClientClosed    = errors.New("rpc: client closed")
	ErrUnknownMethod   = errors.New("rpc: unknown method")
	ErrServerClosed    = errors.New("rpc: server closed")
	ErrDuplicateMethod = errors.New("rpc: method already registered")
	// ErrCorruptResponse marks a response frame that decoded to garbage or
	// to the wrong request ID — symptoms of a torn write or a stale
	// connection. The connection is discarded and the call is retryable.
	ErrCorruptResponse = errors.New("rpc: corrupt response")
	// ErrDeadline marks a call that exceeded its time budget: either the
	// client's connection deadline fired mid round-trip, or the server's
	// watchdog shed an overrunning handler and answered with this error
	// instead of stalling the connection behind it. Deadline errors are
	// retryable — the retried request carries the same ID, so a call the
	// server already shed replays the cached deadline response instead of
	// executing twice, and the retry fails fast.
	ErrDeadline = errors.New("rpc: deadline exceeded")
)

// Retryable classifies an error from Call: true means the failure is a
// transport-level fault (dial failure, timeout, reset, EOF mid-frame,
// corrupt response) that a retry over a fresh connection may fix; false
// means the call was rejected by the remote handler (*RemoteError) or
// failed locally in a way no retry can cure (encode errors, client
// closed). Callers use this to decide between retrying / degrading and
// surfacing the error.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	if errors.Is(err, ErrClientClosed) || errors.Is(err, ErrFrameTooLarge) {
		return false
	}
	if errors.Is(err, ErrCorruptResponse) || errors.Is(err, ErrDeadline) {
		return true
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	// Header and payload go out in a single Write so a frame hits the wire
	// (or is lost) atomically: a lost header with a delivered payload would
	// desynchronize the peer's framing.
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Handler processes one call: it receives the raw JSON arguments and
// returns a result value to be JSON-encoded (nil is allowed).
type Handler func(args json.RawMessage) (any, error)

// clientMetrics holds the client-side instruments, resolved once at
// construction so the call path touches only atomics.
type clientMetrics struct {
	calls   *telemetry.Counter
	retries *telemetry.Counter
	redials *telemetry.Counter
	errors  *telemetry.Counter
	txBytes *telemetry.Counter
	rxBytes *telemetry.Counter
	latency *telemetry.Histogram
}

func newClientMetrics(reg *telemetry.Registry) clientMetrics {
	return clientMetrics{
		calls:   reg.Counter("rpc.client.calls"),
		retries: reg.Counter("rpc.client.retries"),
		redials: reg.Counter("rpc.client.redials"),
		errors:  reg.Counter("rpc.client.errors"),
		txBytes: reg.Counter("rpc.client.tx_bytes"),
		rxBytes: reg.Counter("rpc.client.rx_bytes"),
		latency: reg.Histogram("rpc.client.call_seconds"),
	}
}

// serverMetrics holds the server-side instruments.
type serverMetrics struct {
	calls     *telemetry.Counter
	dedupHits *telemetry.Counter
	errors    *telemetry.Counter
	sheds     *telemetry.Counter
	rxBytes   *telemetry.Counter
	txBytes   *telemetry.Counter
	conns     *telemetry.Gauge
	handle    *telemetry.Histogram
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	return serverMetrics{
		calls:     reg.Counter("rpc.server.calls"),
		dedupHits: reg.Counter("rpc.server.dedup_hits"),
		errors:    reg.Counter("rpc.server.errors"),
		sheds:     reg.Counter("rpc.server.deadline_sheds"),
		rxBytes:   reg.Counter("rpc.server.rx_bytes"),
		txBytes:   reg.Counter("rpc.server.tx_bytes"),
		conns:     reg.Gauge("rpc.server.conns"),
		handle:    reg.Histogram("rpc.server.handle_seconds"),
	}
}

// sessionState is the per-client dedup record: the highest request ID
// seen and its cached marshaled response. Its mutex is held across
// handler execution, so a duplicate of an in-flight request blocks until
// the first execution completes and then reads the cached response.
type sessionState struct {
	mu     sync.Mutex
	lastID uint64
	resp   []byte
}

// maxSessions bounds the dedup table; oldest sessions are evicted FIFO.
// An evicted session only loses dedup, not correctness of fresh calls.
const maxSessions = 4096

// Server dispatches calls to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	sessMu    sync.Mutex
	sessions  map[uint64]*sessionState
	sessOrder []uint64

	tel serverMetrics
}

// NewServer creates a server with no handlers, reporting telemetry to
// the default registry.
func NewServer() *Server {
	return &Server{
		handlers: map[string]Handler{},
		conns:    map[net.Conn]struct{}{},
		sessions: map[uint64]*sessionState{},
		tel:      newServerMetrics(telemetry.Default),
	}
}

// SetTelemetry rebinds the server's instruments to a registry; call it
// before Listen/Serve (tests use isolated registries).
func (s *Server) SetTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tel = newServerMetrics(reg)
}

// Handle registers a handler for a method name.
func (s *Server) Handle(method string, h Handler) error {
	if method == "" || h == nil {
		return fmt.Errorf("rpc: invalid handler registration for %q", method)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateMethod, method)
	}
	s.handlers[method] = h
	return nil
}

// Listen binds the server to addr ("host:port"; ":0" picks a free port)
// and starts accepting in a background goroutine. It returns the bound
// address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	return s.Serve(ln)
}

// Serve accepts connections from an existing listener — the hook fault
// injection uses to interpose a faulty transport between real client and
// server. It returns the listener's address.
func (s *Server) Serve(ln net.Listener) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// serveConn processes requests from one connection sequentially.
func (s *Server) serveConn(conn net.Conn) {
	s.mu.RLock()
	tel := s.tel
	s.mu.RUnlock()
	tel.conns.Add(1)
	defer func() {
		tel.conns.Add(-1)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		frame, err := readFrame(conn)
		if err != nil {
			return
		}
		tel.rxBytes.Add(uint64(len(frame)) + 4)
		var req request
		if err := json.Unmarshal(frame, &req); err != nil {
			return // protocol violation: drop the connection
		}
		tel.calls.Inc()
		out := s.respond(&req)
		tel.txBytes.Add(uint64(len(out)) + 4)
		if err := writeFrame(conn, out); err != nil {
			return
		}
	}
}

// respond produces the marshaled response for a request, consulting and
// updating the per-session dedup cache.
func (s *Server) respond(req *request) []byte {
	if req.Session == 0 {
		return s.execute(req)
	}
	st := s.session(req.Session)
	st.mu.Lock()
	defer st.mu.Unlock()
	if req.ID == st.lastID && st.resp != nil {
		s.tel.dedupHits.Inc()
		return st.resp // retried request: replay the cached response
	}
	if req.ID < st.lastID {
		out, _ := json.Marshal(response{ID: req.ID, Error: fmt.Sprintf("rpc: stale request id %d (session at %d)", req.ID, st.lastID)})
		return out
	}
	out := s.execute(req)
	st.lastID = req.ID
	st.resp = out
	return out
}

// session returns (creating if needed) the dedup state for a session.
func (s *Server) session(id uint64) *sessionState {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	st := s.sessions[id]
	if st == nil {
		st = &sessionState{}
		s.sessions[id] = st
		s.sessOrder = append(s.sessOrder, id)
		if len(s.sessOrder) > maxSessions {
			delete(s.sessions, s.sessOrder[0])
			s.sessOrder = s.sessOrder[1:]
		}
	}
	return st
}

// execute dispatches the request and marshals the response.
func (s *Server) execute(req *request) []byte {
	resp := s.dispatch(req)
	out, err := json.Marshal(resp)
	if err != nil {
		out, _ = json.Marshal(response{ID: req.ID, Error: "rpc: unencodable result"})
	}
	return out
}

func (s *Server) dispatch(req *request) response {
	s.mu.RLock()
	h, ok := s.handlers[req.Method]
	s.mu.RUnlock()
	if !ok {
		s.tel.errors.Inc()
		return response{ID: req.ID, Error: fmt.Sprintf("%v: %s", ErrUnknownMethod, req.Method)}
	}
	start := time.Now()
	result, err := s.invoke(h, req)
	s.tel.handle.Observe(time.Since(start).Seconds())
	if err != nil {
		s.tel.errors.Inc()
		return response{ID: req.ID, Error: err.Error()}
	}
	if result == nil {
		return response{ID: req.ID}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{ID: req.ID, Error: fmt.Sprintf("rpc: encode result: %v", err)}
	}
	return response{ID: req.ID, Result: raw}
}

// invoke runs the handler, under a deadline watchdog when the request
// carries a time budget. If the budget expires the call is shed: the
// response goes out (and into the dedup cache) as ErrDeadline while the
// orphaned handler finishes on its own goroutine with its result
// discarded. This is the server half of backpressure — a stalled
// handler cannot pin the connection (or the session's dedup lock, which
// respond holds across execution) past the client's patience.
func (s *Server) invoke(h Handler, req *request) (any, error) {
	if req.DeadlineMS == 0 {
		return h(req.Args)
	}
	type outcome struct {
		result any
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := h(req.Args)
		done <- outcome{r, err}
	}()
	timer := time.NewTimer(time.Duration(req.DeadlineMS) * time.Millisecond)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.result, out.err
	case <-timer.C:
		s.tel.sheds.Inc()
		return nil, ErrDeadline
	}
}

// Close stops accepting and tears down all live connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Options configures a client's fault-tolerance behavior.
type Options struct {
	// Timeout bounds the dial and each call attempt's round trip.
	// 0 selects 5 seconds.
	Timeout time.Duration
	// MaxRetries is how many additional attempts a Call makes after a
	// retryable transport failure (0 = fail fast; the connection is still
	// discarded so the next Call reconnects cleanly).
	MaxRetries int
	// BackoffBase is the first retry's backoff; attempts double it up to
	// BackoffMax, with ±50% jitter. 0 selects 10ms.
	BackoffBase time.Duration
	// BackoffMax caps the backoff. 0 selects 1 second.
	BackoffMax time.Duration
	// Seed makes the backoff jitter deterministic for tests. 0 draws a
	// random seed.
	Seed int64
	// Dialer overrides how connections are established (fault injection
	// wraps the returned conn). nil selects net.DialTimeout over TCP.
	Dialer func(addr string, timeout time.Duration) (net.Conn, error)
	// Telemetry is the registry the client reports into. nil selects
	// telemetry.Default.
	Telemetry *telemetry.Registry
}

func (o *Options) fill() {
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 10 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.Seed == 0 {
		o.Seed = rand.Int63()
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.Default
	}
}

// Client is a synchronous RPC client with automatic reconnect.
type Client struct {
	mu      sync.Mutex
	addr    string
	opts    Options
	conn    net.Conn
	session uint64
	nextID  uint64
	rng     *rand.Rand
	redials uint64
	closed  bool
	tel     clientMetrics
}

// newSession draws a nonzero session identifier.
func newSession() uint64 {
	for {
		if s := rand.Uint64(); s != 0 {
			return s
		}
	}
}

// NewClient creates a client without connecting: the first Call dials
// lazily. Use it when the server may not be reachable yet — the Saba
// library's degraded mode depends on construction never failing.
func NewClient(addr string, o Options) *Client {
	o.fill()
	return &Client{
		addr:    addr,
		opts:    o,
		session: newSession(),
		rng:     rand.New(rand.NewSource(o.Seed)),
		tel:     newClientMetrics(o.Telemetry),
	}
}

// Dial connects to a server. timeout bounds both the dial and each call
// round-trip; 0 selects 5 seconds. Retries are disabled; use DialOptions
// for a fault-tolerant client.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOptions(addr, Options{Timeout: timeout})
}

// DialOptions connects to a server with explicit fault-tolerance
// options, failing if the initial dial fails.
func DialOptions(addr string, o Options) (*Client, error) {
	c := NewClient(addr, o)
	conn, err := c.opts.Dialer(addr, c.opts.Timeout)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// Call invokes method with args (JSON-encoded) and decodes the result
// into reply (which may be nil to discard it). Remote errors come back
// as *RemoteError and are never retried; transport errors discard the
// connection and, with MaxRetries > 0, the call is retried over a fresh
// connection with exponential backoff. The request keeps its ID across
// attempts, so the server can suppress duplicate execution.
func (c *Client) Call(method string, args any, reply any) error {
	var rawArgs json.RawMessage
	if args != nil {
		raw, err := json.Marshal(args)
		if err != nil {
			return fmt.Errorf("rpc: encode args: %w", err)
		}
		rawArgs = raw
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.nextID++
	id := c.nextID
	c.tel.calls.Inc()
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.attemptLocked(id, method, rawArgs, reply)
		if err == nil {
			c.tel.latency.Observe(time.Since(start).Seconds())
			return nil
		}
		lastErr = err
		if !Retryable(err) || attempt >= c.opts.MaxRetries {
			c.tel.errors.Inc()
			return lastErr
		}
		c.tel.retries.Inc()
		time.Sleep(c.backoff(attempt))
		if c.closed {
			return ErrClientClosed
		}
	}
}

// backoff returns the sleep before retry number attempt (0-based):
// exponential from BackoffBase, capped at BackoffMax, with jitter drawn
// uniformly from [d/2, d] to desynchronize retry storms.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BackoffBase
	for i := 0; i < attempt && d < c.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > c.opts.BackoffMax {
		d = c.opts.BackoffMax
	}
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// attemptLocked performs one round trip, (re)connecting if needed. On
// any transport or protocol error the connection is closed and dropped:
// a half-read frame or an unconsumed late response must never leak into
// the next call.
func (c *Client) attemptLocked(id uint64, method string, args json.RawMessage, reply any) error {
	if c.conn == nil {
		conn, err := c.opts.Dialer(c.addr, c.opts.Timeout)
		if err != nil {
			return err
		}
		c.conn = conn
		c.redials++
		c.tel.redials.Inc()
	}
	frame, err := json.Marshal(request{
		Session: c.session, ID: id, Method: method, Args: args,
		DeadlineMS: uint64(c.opts.Timeout / time.Millisecond),
	})
	if err != nil {
		return err
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.opts.Timeout)); err != nil {
		c.dropConnLocked()
		return err
	}
	if err := writeFrame(c.conn, frame); err != nil {
		c.dropConnLocked()
		return deadlineOr(err)
	}
	c.tel.txBytes.Add(uint64(len(frame)) + 4)
	respFrame, err := readFrame(c.conn)
	if err != nil {
		c.dropConnLocked()
		if errors.Is(err, ErrFrameTooLarge) {
			// An absurd length on the response stream means framing
			// desynchronized (e.g. a torn write), not a real 16MB reply:
			// treat it as corruption so the call retries on a fresh conn.
			return ErrCorruptResponse
		}
		return deadlineOr(err)
	}
	c.tel.rxBytes.Add(uint64(len(respFrame)) + 4)
	var resp response
	if err := json.Unmarshal(respFrame, &resp); err != nil {
		c.dropConnLocked()
		return fmt.Errorf("%w: %v", ErrCorruptResponse, err)
	}
	if resp.ID != id {
		c.dropConnLocked()
		return fmt.Errorf("%w: response id %d for request %d", ErrCorruptResponse, resp.ID, id)
	}
	if resp.Error != "" {
		if resp.Error == ErrDeadline.Error() {
			// The server's watchdog shed the handler: surface the typed
			// deadline rather than an opaque RemoteError so callers can
			// distinguish "too slow" from "rejected".
			return fmt.Errorf("%w: server shed %s", ErrDeadline, method)
		}
		return &RemoteError{Method: method, Msg: resp.Error}
	}
	if reply != nil && resp.Result != nil {
		if err := json.Unmarshal(resp.Result, reply); err != nil {
			return fmt.Errorf("rpc: decode result: %v", err)
		}
	}
	return nil
}

// deadlineOr types a transport error: connection-deadline expiries become
// ErrDeadline (still carrying the underlying net error's text), anything
// else passes through unchanged.
func deadlineOr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrDeadline, err)
	}
	return err
}

// dropConnLocked discards the connection after a transport error.
func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Redials reports how many times the client re-established its
// connection (the first dial counts for clients created by NewClient).
func (c *Client) Redials() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.redials
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// RemoteError is an error returned by the server-side handler.
type RemoteError struct {
	Method string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote %s: %s", e.Method, e.Msg)
}
