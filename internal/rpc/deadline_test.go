// Deadline propagation tests live in an external test package so they
// can drive the client through the faults latency injector (faults
// imports the controller, which imports rpc).
package rpc_test

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"saba/internal/faults"
	"saba/internal/rpc"
	"saba/internal/telemetry"
)

// newTestServer starts a server with a "slow" method that blocks until
// release is closed and a "fast" method that returns immediately.
func newTestServer(t *testing.T) (addr string, release chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	srv := rpc.NewServer()
	srv.SetTelemetry(telemetry.NewRegistry())
	if err := srv.Handle("slow", func(args json.RawMessage) (any, error) {
		<-release
		return "late", nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Handle("fast", func(args json.RawMessage) (any, error) {
		return "ok", nil
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		close(release)
		srv.Close()
	})
	return addr, release
}

// TestDeadlineUnderLatencyInjection is the satellite contract: a call
// whose round trip is stalled past the client deadline by the faults
// latency injector must come back as a typed ErrDeadline promptly — it
// must not hang, and it must stay retryable so the session-dedup retry
// path keeps working.
func TestDeadlineUnderLatencyInjection(t *testing.T) {
	addr, _ := newTestServer(t)
	inj := faults.NewInjector(faults.Config{
		Seed:      42,
		DelayRate: 1, // every conn op stalls...
		Delay:     500 * time.Millisecond,
	})
	c := rpc.NewClient(addr, rpc.Options{
		Timeout:    100 * time.Millisecond, // ...past the call budget
		MaxRetries: 0,
		Dialer:     inj.Dialer(),
		Telemetry:  telemetry.NewRegistry(),
	})
	defer c.Close()
	start := time.Now()
	err := c.Call("fast", nil, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, rpc.ErrDeadline) {
		t.Fatalf("Call under latency = %v, want ErrDeadline", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("Call took %v, deadline did not cut it short", elapsed)
	}
	if !rpc.Retryable(err) {
		t.Error("deadline errors must stay retryable")
	}
}

// rawCall hand-frames a request so the test controls the wire deadline
// field independently of the client's connection deadline — that is the
// only way to observe the server-side watchdog deterministically.
func rawCall(t *testing.T, conn net.Conn, body string) (errMsg string, elapsed time.Duration) {
	t.Helper()
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	start := time.Now()
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	elapsed = time.Since(start)
	var resp struct {
		ID    uint64 `json:"id"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatalf("decode response %q: %v", buf, err)
	}
	return resp.Error, elapsed
}

// TestServerWatchdogShedsOverrunningHandler drives the server with a
// hand-framed request carrying a 50ms budget against a handler that
// never returns on its own: the watchdog must answer with the deadline
// marker instead of stalling the connection.
func TestServerWatchdogShedsOverrunningHandler(t *testing.T) {
	addr, _ := newTestServer(t)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	errMsg, elapsed := rawCall(t, conn, `{"id":1,"method":"slow","dl":50}`)
	if errMsg != rpc.ErrDeadline.Error() {
		t.Fatalf("shed response error = %q, want %q", errMsg, rpc.ErrDeadline.Error())
	}
	if elapsed > 3*time.Second {
		t.Fatalf("shed took %v, want ~50ms", elapsed)
	}
	// The connection must remain usable: the orphaned handler may not
	// hold the framing hostage.
	if errMsg, _ := rawCall(t, conn, `{"id":2,"method":"fast"}`); errMsg != "" {
		t.Fatalf("follow-up call after shed failed: %q", errMsg)
	}
}

// TestShedResponseIsCachedBySession asserts at-most-once semantics for
// shed calls: a retry of the same (session, id) replays the cached
// deadline response instead of re-executing the handler.
func TestShedResponseIsCachedBySession(t *testing.T) {
	addr, _ := newTestServer(t)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	req := `{"sess":7,"id":1,"method":"slow","dl":50}`
	first, _ := rawCall(t, conn, req)
	if first != rpc.ErrDeadline.Error() {
		t.Fatalf("first response = %q, want deadline marker", first)
	}
	second, elapsed := rawCall(t, conn, req)
	if second != first {
		t.Fatalf("retried response = %q, want cached %q", second, first)
	}
	if elapsed > time.Second {
		t.Fatalf("cached replay took %v, want immediate", elapsed)
	}
}

// TestClientTypesServerShed checks the full client path: when the
// server sheds, the client surfaces errors.Is(err, ErrDeadline), not an
// opaque *RemoteError. The latency injector keeps the link healthy here
// (zero rates) so the shed must come from the server watchdog; the
// client's conn deadline gets extra headroom via a generous dial-side
// budget race being acceptable — both paths type as ErrDeadline.
func TestClientTypesServerShed(t *testing.T) {
	addr, _ := newTestServer(t)
	c := rpc.NewClient(addr, rpc.Options{
		Timeout:    150 * time.Millisecond,
		MaxRetries: 1, // the retry replays the cached shed: still ErrDeadline
		Telemetry:  telemetry.NewRegistry(),
	})
	defer c.Close()
	start := time.Now()
	err := c.Call("slow", nil, nil)
	if !errors.Is(err, rpc.ErrDeadline) {
		t.Fatalf("Call(slow) = %v, want ErrDeadline", err)
	}
	var re *rpc.RemoteError
	if errors.As(err, &re) {
		t.Fatalf("shed surfaced as RemoteError %v, want typed ErrDeadline", re)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Call(slow) took %v, want bounded by deadline+retry", elapsed)
	}
}
