package rpc

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

type echoArgs struct {
	Msg string `json:"msg"`
	N   int    `json:"n"`
}

func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	if err := s.Handle("echo", func(args json.RawMessage) (any, error) {
		var a echoArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return echoArgs{Msg: a.Msg, N: a.N + 1}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Handle("fail", func(json.RawMessage) (any, error) {
		return nil, errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Handle("void", func(json.RawMessage) (any, error) {
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply echoArgs
	if err := c.Call("echo", echoArgs{Msg: "hi", N: 41}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "hi" || reply.N != 42 {
		t.Errorf("reply = %+v", reply)
	}
}

func TestCallSequenceOnOneConnection(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		var reply echoArgs
		if err := c.Call("echo", echoArgs{N: i}, &reply); err != nil {
			t.Fatal(err)
		}
		if reply.N != i+1 {
			t.Fatalf("call %d: reply.N = %d", i, reply.N)
		}
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr, time.Second)
	defer c.Close()
	err := c.Call("fail", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Msg != "boom" || re.Method != "fail" {
		t.Errorf("RemoteError = %+v", re)
	}
	if re.Error() == "" {
		t.Error("empty error string")
	}
}

func TestUnknownMethod(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr, time.Second)
	defer c.Close()
	err := c.Call("nope", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError for unknown method", err)
	}
}

func TestVoidCall(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr, time.Second)
	defer c.Close()
	if err := c.Call("void", nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				var reply echoArgs
				if err := c.Call("echo", echoArgs{N: g*100 + i}, &reply); err != nil {
					errs <- err
					return
				}
				if reply.N != g*100+i+1 {
					errs <- fmt.Errorf("bad reply %d", reply.N)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientClosed(t *testing.T) {
	_, addr := startServer(t)
	c, _ := Dial(addr, time.Second)
	c.Close()
	if err := c.Call("echo", echoArgs{}, nil); err != ErrClientClosed {
		t.Errorf("err = %v, want ErrClientClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("double close err = %v", err)
	}
}

func TestServerClose(t *testing.T) {
	s, addr := startServer(t)
	c, _ := Dial(addr, 300*time.Millisecond)
	defer c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("echo", echoArgs{}, nil); err == nil {
		t.Error("call after server close should fail")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double server close err = %v", err)
	}
	if _, err := s.Listen("127.0.0.1:0"); err != ErrServerClosed {
		t.Errorf("Listen after close err = %v, want ErrServerClosed", err)
	}
}

func TestHandleValidation(t *testing.T) {
	s := NewServer()
	defer s.Close()
	if err := s.Handle("", func(json.RawMessage) (any, error) { return nil, nil }); err == nil {
		t.Error("empty method should fail")
	}
	if err := s.Handle("x", nil); err == nil {
		t.Error("nil handler should fail")
	}
	if err := s.Handle("x", func(json.RawMessage) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := s.Handle("x", func(json.RawMessage) (any, error) { return nil, nil }); !errors.Is(err, ErrDuplicateMethod) {
		t.Errorf("duplicate registration err = %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dialing a closed port should fail")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"hello":"world"}`)
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("frame round trip = %q", got)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, MaxFrameSize+1)); err != ErrFrameTooLarge {
		t.Errorf("write err = %v, want ErrFrameTooLarge", err)
	}
	// A header advertising an oversized frame is rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); err != ErrFrameTooLarge {
		t.Errorf("read err = %v, want ErrFrameTooLarge", err)
	}
}

func TestCallTimeout(t *testing.T) {
	s := NewServer()
	s.Handle("slow", func(json.RawMessage) (any, error) {
		time.Sleep(500 * time.Millisecond)
		return nil, nil
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("slow", nil, nil); err == nil {
		t.Error("slow call should time out")
	}
}
