package rpc

import (
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// flakyListener closes the first `kills` accepted connections right
// away, simulating a server whose conns keep resetting.
type flakyListener struct {
	net.Listener
	kills int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if atomic.AddInt32(&l.kills, -1) >= 0 {
		c.Close()
	}
	return c, nil
}

func TestConnNotReusedAfterTimeout(t *testing.T) {
	// The old client kept the connection after a deadline expiry, so the
	// late response of a timed-out call could be read as the answer to
	// the next call. The conn must be discarded and redialed instead.
	s := NewServer()
	if err := s.Handle("slow", func(json.RawMessage) (any, error) {
		time.Sleep(150 * time.Millisecond)
		return echoArgs{Msg: "late"}, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Handle("echo", func(args json.RawMessage) (any, error) {
		var a echoArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return a, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(addr, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("slow", nil, nil); err == nil {
		t.Fatal("slow call should time out")
	}
	// Let the abandoned handler finish and emit its late response; with
	// the old connection-reuse bug that response would sit buffered and
	// be read as the answer to the next call.
	time.Sleep(200 * time.Millisecond)
	var reply echoArgs
	if err := c.Call("echo", echoArgs{Msg: "fresh"}, &reply); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	if reply.Msg != "fresh" {
		t.Errorf("reply = %q, want %q (stale response leaked)", reply.Msg, "fresh")
	}
	if c.Redials() == 0 {
		t.Error("client should have redialed after discarding the timed-out conn")
	}
}

func TestCallRetriesOverFreshConnections(t *testing.T) {
	s := NewServer()
	var calls int32
	if err := s.Handle("echo", func(args json.RawMessage) (any, error) {
		atomic.AddInt32(&calls, 1)
		var a echoArgs
		if err := json.Unmarshal(args, &a); err != nil {
			return nil, err
		}
		return a, nil
	}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: ln, kills: 2}
	addr, err := s.Serve(fl)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c := NewClient(addr, Options{
		Timeout:     200 * time.Millisecond,
		MaxRetries:  5,
		BackoffBase: time.Millisecond,
		Seed:        1,
	})
	defer c.Close()
	var reply echoArgs
	if err := c.Call("echo", echoArgs{Msg: "persist", N: 7}, &reply); err != nil {
		t.Fatalf("call with retries failed: %v", err)
	}
	if reply.N != 7 {
		t.Errorf("reply = %+v", reply)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("handler ran %d times, want 1", got)
	}
	if c.Redials() < 3 {
		t.Errorf("redials = %d, want >= 3 (two killed conns + success)", c.Redials())
	}
}

func TestRemoteErrorsNeverRetried(t *testing.T) {
	s := NewServer()
	var calls int32
	if err := s.Handle("fail", func(json.RawMessage) (any, error) {
		atomic.AddInt32(&calls, 1)
		return nil, errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := DialOptions(addr, Options{Timeout: time.Second, MaxRetries: 5, BackoffBase: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call("fail", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("handler ran %d times for a terminal error, want 1", got)
	}
}

func TestServerDedupsRetriedRequest(t *testing.T) {
	// A retried request (same session + id over a new connection) must
	// not execute twice: the server replays the cached response.
	s := NewServer()
	var calls int32
	if err := s.Handle("count", func(json.RawMessage) (any, error) {
		return echoArgs{N: int(atomic.AddInt32(&calls, 1))}, nil
	}); err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	send := func(sess, id uint64) echoArgs {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		frame, _ := json.Marshal(request{Session: sess, ID: id, Method: "count"})
		if err := writeFrame(conn, frame); err != nil {
			t.Fatal(err)
		}
		respFrame, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		var resp response
		if err := json.Unmarshal(respFrame, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Error != "" {
			t.Fatalf("remote error: %s", resp.Error)
		}
		var a echoArgs
		if err := json.Unmarshal(resp.Result, &a); err != nil {
			t.Fatal(err)
		}
		return a
	}

	first := send(42, 1)
	retry := send(42, 1) // same request over a new conn: dedup
	next := send(42, 2)  // new request: executes
	if first.N != 1 || retry.N != 1 || next.N != 2 {
		t.Errorf("responses = %d, %d, %d; want 1, 1, 2", first.N, retry.N, next.N)
	}
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Errorf("handler ran %d times, want 2", got)
	}
}

func TestLazyClientConnectsWhenServerAppears(t *testing.T) {
	// NewClient must not fail construction against a dead address; the
	// first successful Call happens once the server is up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	c := NewClient(addr, Options{Timeout: 200 * time.Millisecond, BackoffBase: time.Millisecond, Seed: 1})
	defer c.Close()
	if err := c.Call("echo", nil, nil); err == nil {
		t.Fatal("call against a dead server should fail")
	}

	s := NewServer()
	if err := s.Handle("echo", func(json.RawMessage) (any, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer s.Close()
	if err := c.Call("echo", nil, nil); err != nil {
		t.Fatalf("call after server came up: %v", err)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&RemoteError{Method: "m", Msg: "boom"}, false},
		{ErrClientClosed, false},
		{ErrFrameTooLarge, false},
		{ErrCorruptResponse, true},
		{net.ErrClosed, true},
		{&net.OpError{Op: "read", Err: errors.New("reset")}, true},
	}
	for i, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("case %d (%v): Retryable = %v, want %v", i, tc.err, got, tc.want)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	c := NewClient("127.0.0.1:1", Options{BackoffBase: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond, Seed: 7})
	prevMax := time.Duration(0)
	for attempt := 0; attempt < 8; attempt++ {
		d := c.backoff(attempt)
		ceil := 10 * time.Millisecond << attempt
		if ceil > 80*time.Millisecond {
			ceil = 80 * time.Millisecond
		}
		if d < ceil/2 || d > ceil {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, ceil/2, ceil)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax > 80*time.Millisecond {
		t.Errorf("backoff exceeded cap: %v", prevMax)
	}
}
