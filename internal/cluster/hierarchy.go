package cluster

import (
	"errors"
	"fmt"
)

// Hierarchy is the dendrogram Saba precomputes over priority levels
// (paper §5.3.2). Level 0 keeps every PL in its own cluster; each
// subsequent level merges the two closest clusters of the previous level,
// replacing them by their Euclidean midpoint, until the number of clusters
// equals the minimum queue count in the network. At runtime the controller
// walks the levels top-down to find, for any subset of PLs present at a
// switch port, the shallowest level that fits in the port's queue count.
type Hierarchy struct {
	levels []level
}

// level is one slice of the dendrogram: a partition of the original PLs.
type level struct {
	clusters []Cluster
}

// Cluster is a group of priority levels with a representative centroid.
type Cluster struct {
	Members  []int // original PL indices, sorted ascending
	Centroid Point
}

// ErrNoQueues is returned when a mapping is requested for zero queues.
var ErrNoQueues = errors.New("cluster: queue count must be >= 1")

// BuildHierarchy constructs the dendrogram from per-PL centroids (the
// k-means centroids of the application→PL step). minQueues is the minimum
// number of per-port queues across all switches; the hierarchy stops
// merging once that many clusters remain (or one, if minQueues < 1).
func BuildHierarchy(plCentroids []Point, minQueues int) (*Hierarchy, error) {
	if err := checkDims(plCentroids); err != nil {
		return nil, err
	}
	if minQueues < 1 {
		minQueues = 1
	}

	cur := make([]Cluster, len(plCentroids))
	for i, c := range plCentroids {
		cur[i] = Cluster{Members: []int{i}, Centroid: c.clone()}
	}
	h := &Hierarchy{}
	h.levels = append(h.levels, level{clusters: cloneClusters(cur)})

	for len(cur) > minQueues && len(cur) > 1 {
		// Find the closest pair of clusters by centroid distance.
		bi, bj, bd := -1, -1, -1.0
		for i := 0; i < len(cur); i++ {
			for j := i + 1; j < len(cur); j++ {
				d := Distance(cur[i].Centroid, cur[j].Centroid)
				if bi == -1 || d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		merged := Cluster{
			Members:  mergeSorted(cur[bi].Members, cur[bj].Members),
			Centroid: Midpoint(cur[bi].Centroid, cur[bj].Centroid),
		}
		next := make([]Cluster, 0, len(cur)-1)
		for i, c := range cur {
			if i != bi && i != bj {
				next = append(next, c)
			}
		}
		next = append(next, merged)
		cur = next
		h.levels = append(h.levels, level{clusters: cloneClusters(cur)})
	}
	return h, nil
}

func cloneClusters(cs []Cluster) []Cluster {
	out := make([]Cluster, len(cs))
	for i, c := range cs {
		out[i] = Cluster{
			Members:  append([]int(nil), c.Members...),
			Centroid: c.Centroid.clone(),
		}
	}
	return out
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// Levels returns the number of levels in the hierarchy.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// ClustersAt returns a copy of the partition at the given level
// (0 = finest).
func (h *Hierarchy) ClustersAt(lvl int) ([]Cluster, error) {
	if lvl < 0 || lvl >= len(h.levels) {
		return nil, fmt.Errorf("cluster: level %d out of range [0,%d)", lvl, len(h.levels))
	}
	return cloneClusters(h.levels[lvl].clusters), nil
}

// MapToQueues implements the paper's runtime search (§5.3.2 step 2): given
// the set of PLs whose flows traverse a switch output port and the port's
// queue count Q, it walks the hierarchy from the finest level and returns
// the first partition that groups the present PLs into at most Q clusters.
// Only clusters containing at least one present PL are returned, and their
// Members are filtered to the present PLs.
func (h *Hierarchy) MapToQueues(presentPLs []int, queues int) ([]Cluster, error) {
	if queues < 1 {
		return nil, ErrNoQueues
	}
	if len(presentPLs) == 0 {
		return nil, nil
	}
	present := make(map[int]bool, len(presentPLs))
	for _, pl := range presentPLs {
		present[pl] = true
	}
	for lvl := range h.levels {
		sel := selectPresent(h.levels[lvl].clusters, present)
		if len(sel) <= queues {
			return sel, nil
		}
	}
	// The deepest level has the fewest clusters; if even that does not fit
	// (port has fewer queues than the global minimum assumed at build
	// time), collapse the tail clusters into the last queue.
	sel := selectPresent(h.levels[len(h.levels)-1].clusters, present)
	return collapseTo(sel, queues), nil
}

func selectPresent(cs []Cluster, present map[int]bool) []Cluster {
	var out []Cluster
	for _, c := range cs {
		var members []int
		for _, pl := range c.Members {
			if present[pl] {
				members = append(members, pl)
			}
		}
		if len(members) > 0 {
			out = append(out, Cluster{Members: members, Centroid: c.Centroid.clone()})
		}
	}
	return out
}

// collapseTo folds the clusters beyond index queues-1 into the final
// cluster, merging centroids pairwise by midpoint.
func collapseTo(cs []Cluster, queues int) []Cluster {
	if len(cs) <= queues {
		return cs
	}
	out := cloneClusters(cs[:queues])
	last := &out[queues-1]
	for _, c := range cs[queues:] {
		last.Members = mergeSorted(last.Members, c.Members)
		last.Centroid = Midpoint(last.Centroid, c.Centroid)
	}
	return out
}
