package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistance(t *testing.T) {
	if d := Distance(Point{0, 0}, Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Errorf("Distance = %g, want 5", d)
	}
	if d := Distance(Point{1}, Point{1}); d != 0 {
		t.Errorf("Distance to self = %g, want 0", d)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(Point{0, 2}, Point{4, 6})
	if m[0] != 2 || m[1] != 4 {
		t.Errorf("Midpoint = %v, want [2 4]", m)
	}
}

func TestKMeansTwoObviousClusters(t *testing.T) {
	points := []Point{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{10, 10}, {10.1, 10}, {10, 10.1},
	}
	res, err := KMeans(points, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := validateResult(points, res); err != nil {
		t.Fatal(err)
	}
	// First three must share a cluster, last three another.
	if res.Assignment[0] != res.Assignment[1] || res.Assignment[1] != res.Assignment[2] {
		t.Errorf("low points split: %v", res.Assignment)
	}
	if res.Assignment[3] != res.Assignment[4] || res.Assignment[4] != res.Assignment[5] {
		t.Errorf("high points split: %v", res.Assignment)
	}
	if res.Assignment[0] == res.Assignment[3] {
		t.Errorf("clusters merged: %v", res.Assignment)
	}
}

func TestKMeansKGreaterThanPoints(t *testing.T) {
	points := []Point{{1}, {2}}
	res, err := KMeans(points, 16, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Errorf("centroids = %d, want 2 (one per point)", len(res.Centroids))
	}
	if res.Assignment[0] == res.Assignment[1] {
		t.Error("distinct points should get distinct clusters when k >= n")
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, 2, rand.New(rand.NewSource(1))); err != ErrNoPoints {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
	if _, err := KMeans([]Point{{1}, {2}}, 0, rand.New(rand.NewSource(1))); err != ErrBadK {
		t.Errorf("err = %v, want ErrBadK", err)
	}
	if _, err := KMeans([]Point{{1}, {1, 2}}, 1, rand.New(rand.NewSource(1))); err != ErrDimMix {
		t.Errorf("err = %v, want ErrDimMix", err)
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	points := []Point{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res, err := KMeans(points, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if in := Inertia(points, res); in != 0 {
		t.Errorf("inertia of identical points = %g, want 0", in)
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	points := make([]Point, 40)
	for i := range points {
		points[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
	}
	a, err := KMeans(points, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 4, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestKMeansInertiaNotWorseThanSingleCluster(t *testing.T) {
	// Property: k=2 inertia <= k=1 inertia for any point set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		}
		r1, err := KMeans(points, 1, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		r2, err := KMeans(points, 2, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return Inertia(points, r2) <= Inertia(points, r1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKMeansAssignmentIsNearest(t *testing.T) {
	// Invariant at convergence: each point is assigned to its nearest
	// centroid.
	rng := rand.New(rand.NewSource(5))
	points := make([]Point, 60)
	for i := range points {
		points[i] = Point{rng.NormFloat64(), rng.NormFloat64()}
	}
	res, err := KMeans(points, 5, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		dAssigned := Distance(p, res.Centroids[res.Assignment[i]])
		for c := range res.Centroids {
			if Distance(p, res.Centroids[c]) < dAssigned-1e-9 {
				t.Fatalf("point %d not assigned to nearest centroid", i)
			}
		}
	}
}
