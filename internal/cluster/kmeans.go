// Package cluster implements the two clustering algorithms Saba uses to
// map applications onto the limited number of priority levels and switch
// queues (paper §5.3): k-means for application→PL grouping and fast
// agglomerative hierarchical clustering for PL→queue mapping.
//
// Points are sensitivity-model coefficient vectors; distance is Euclidean.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Point is a coefficient vector in coefficient space.
type Point []float64

func (p Point) clone() Point { return append(Point(nil), p...) }

// Distance returns the Euclidean distance between two points of equal
// dimension.
func Distance(a, b Point) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Midpoint returns the Euclidean midpoint of two points (the paper merges
// hierarchical clusters by taking "the coordinates of the euclidean
// midpoint of the corresponding coefficients", §5.3.2).
func Midpoint(a, b Point) Point {
	m := make(Point, len(a))
	for i := range a {
		m[i] = (a[i] + b[i]) / 2
	}
	return m
}

// KMeansResult holds a k-means clustering outcome.
type KMeansResult struct {
	Centroids  []Point // len k
	Assignment []int   // Assignment[i] = centroid index of points[i]
	Iterations int
}

// Errors returned by the clustering routines.
var (
	ErrNoPoints = errors.New("cluster: no points")
	ErrBadK     = errors.New("cluster: k must be >= 1")
	ErrDimMix   = errors.New("cluster: points have mixed dimensions")
)

func checkDims(points []Point) error {
	if len(points) == 0 {
		return ErrNoPoints
	}
	d := len(points[0])
	for _, p := range points[1:] {
		if len(p) != d {
			return ErrDimMix
		}
	}
	return nil
}

// KMeans clusters points into at most k groups using Lloyd's algorithm
// with k-means++ seeding (paper §5.3.1). The rng makes seeding
// deterministic for a fixed seed. If k >= len(points), every point gets
// its own cluster.
func KMeans(points []Point, k int, rng *rand.Rand) (KMeansResult, error) {
	if err := checkDims(points); err != nil {
		return KMeansResult{}, err
	}
	if k < 1 {
		return KMeansResult{}, ErrBadK
	}
	if k >= len(points) {
		res := KMeansResult{Assignment: make([]int, len(points))}
		for i, p := range points {
			res.Centroids = append(res.Centroids, p.clone())
			res.Assignment[i] = i
		}
		return res, nil
	}

	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	const maxIters = 200
	iters := 0
	for ; iters < maxIters; iters++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				if d := Distance(p, cent); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iters > 0 {
			break
		}
		// Recompute centroids.
		dim := len(points[0])
		sums := make([]Point, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make(Point, dim)
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for j := range p {
				sums[c][j] += p[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster on the farthest point from its
				// centroid — keeps k clusters in play.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := Distance(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = points[far].clone()
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
	}
	return KMeansResult{Centroids: centroids, Assignment: assign, Iterations: iters}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ heuristic.
func seedPlusPlus(points []Point, k int, rng *rand.Rand) []Point {
	centroids := make([]Point, 0, k)
	centroids = append(centroids, points[rng.Intn(len(points))].clone())
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		sum := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := Distance(p, c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			sum += d2[i]
		}
		if sum == 0 {
			// All remaining points coincide with a centroid; duplicate one.
			centroids = append(centroids, points[rng.Intn(len(points))].clone())
			continue
		}
		r := rng.Float64() * sum
		acc := 0.0
		pick := len(points) - 1
		for i, d := range d2 {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, points[pick].clone())
	}
	return centroids
}

// Inertia returns the sum of squared distances of points to their assigned
// centroids — the k-means objective value.
func Inertia(points []Point, res KMeansResult) float64 {
	s := 0.0
	for i, p := range points {
		d := Distance(p, res.Centroids[res.Assignment[i]])
		s += d * d
	}
	return s
}

// validateResult sanity-checks a result against its inputs.
func validateResult(points []Point, res KMeansResult) error {
	if len(res.Assignment) != len(points) {
		return fmt.Errorf("cluster: assignment length %d != points %d", len(res.Assignment), len(points))
	}
	for i, a := range res.Assignment {
		if a < 0 || a >= len(res.Centroids) {
			return fmt.Errorf("cluster: point %d assigned to invalid centroid %d", i, a)
		}
	}
	return nil
}
