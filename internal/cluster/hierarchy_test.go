package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func plPoints() []Point {
	// 8 PL centroids along a sensitivity axis: two obvious super-groups.
	return []Point{
		{1.0}, {1.1}, {1.2}, {1.3},
		{5.0}, {5.1}, {5.2}, {5.3},
	}
}

func TestBuildHierarchyLevels(t *testing.T) {
	h, err := BuildHierarchy(plPoints(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 8 clusters merge down to 2: levels with 8,7,6,5,4,3,2 clusters.
	if h.Levels() != 7 {
		t.Errorf("Levels = %d, want 7", h.Levels())
	}
	first, err := h.ClustersAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 8 {
		t.Errorf("level 0 has %d clusters, want 8", len(first))
	}
	last, err := h.ClustersAt(h.Levels() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 2 {
		t.Errorf("deepest level has %d clusters, want 2", len(last))
	}
	if _, err := h.ClustersAt(99); err == nil {
		t.Error("out-of-range level should fail")
	}
}

func TestHierarchyMergesNearestFirst(t *testing.T) {
	// With the two super-groups far apart, no level below the last mixes
	// low PLs (0-3) with high PLs (4-7).
	h, err := BuildHierarchy(plPoints(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for lvl := 0; lvl < h.Levels()-1; lvl++ {
		cs, err := h.ClustersAt(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) == 2 {
			break // deepest partition may be the two super-groups
		}
		for _, c := range cs {
			hasLow, hasHigh := false, false
			for _, m := range c.Members {
				if m < 4 {
					hasLow = true
				} else {
					hasHigh = true
				}
			}
			if hasLow && hasHigh && len(cs) > 2 {
				t.Fatalf("level %d mixed super-groups: %+v", lvl, cs)
			}
		}
	}
}

func TestHierarchyEachLevelIsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
		}
		h, err := BuildHierarchy(pts, 1)
		if err != nil {
			return false
		}
		for lvl := 0; lvl < h.Levels(); lvl++ {
			cs, err := h.ClustersAt(lvl)
			if err != nil {
				return false
			}
			seen := map[int]bool{}
			for _, c := range cs {
				for _, m := range c.Members {
					if seen[m] {
						return false // duplicate membership
					}
					seen[m] = true
				}
			}
			if len(seen) != n {
				return false // lost a PL
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMapToQueuesFinePartitionWhenFits(t *testing.T) {
	h, err := BuildHierarchy(plPoints(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 3 PLs present, 8 queues: finest level fits, so each PL gets its own
	// queue.
	cs, err := h.MapToQueues([]int{0, 4, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 3 {
		t.Fatalf("got %d clusters, want 3 (one per present PL)", len(cs))
	}
}

func TestMapToQueuesCoarsensUnderPressure(t *testing.T) {
	h, err := BuildHierarchy(plPoints(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// All 8 PLs present but only 3 queues: must coarsen to <= 3 clusters
	// and still cover every present PL exactly once.
	cs, err := h.MapToQueues([]int{0, 1, 2, 3, 4, 5, 6, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) == 0 || len(cs) > 3 {
		t.Fatalf("got %d clusters, want 1..3", len(cs))
	}
	seen := map[int]bool{}
	for _, c := range cs {
		for _, m := range c.Members {
			if seen[m] {
				t.Fatalf("PL %d mapped twice", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("covered %d PLs, want 8", len(seen))
	}
}

func TestMapToQueuesFewerThanHierarchyMinimum(t *testing.T) {
	// Hierarchy built for min 4 queues, but one port has just 2: the
	// mapping must still collapse to 2.
	h, err := BuildHierarchy(plPoints(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := h.MapToQueues([]int{0, 1, 2, 3, 4, 5, 6, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) > 2 {
		t.Fatalf("got %d clusters for a 2-queue port", len(cs))
	}
	total := 0
	for _, c := range cs {
		total += len(c.Members)
	}
	if total != 8 {
		t.Fatalf("covered %d PLs, want 8", total)
	}
}

func TestMapToQueuesEdgeCases(t *testing.T) {
	h, err := BuildHierarchy(plPoints(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.MapToQueues([]int{1}, 0); err != ErrNoQueues {
		t.Errorf("err = %v, want ErrNoQueues", err)
	}
	cs, err := h.MapToQueues(nil, 4)
	if err != nil || cs != nil {
		t.Errorf("empty PL set: cs=%v err=%v, want nil,nil", cs, err)
	}
	// Single PL always maps to a single queue.
	cs, err = h.MapToQueues([]int{5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || len(cs[0].Members) != 1 || cs[0].Members[0] != 5 {
		t.Errorf("single PL mapping = %+v", cs)
	}
}

func TestMapToQueuesProperty(t *testing.T) {
	// Any subset of PLs and any queue count >= 1 yields a partition of the
	// subset into at most Q groups.
	pts := plPoints()
	h, err := BuildHierarchy(pts, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var present []int
		for pl := range pts {
			if rng.Intn(2) == 0 {
				present = append(present, pl)
			}
		}
		q := 1 + rng.Intn(8)
		cs, err := h.MapToQueues(present, q)
		if err != nil {
			return false
		}
		if len(present) == 0 {
			return cs == nil
		}
		if len(cs) > q {
			return false
		}
		seen := map[int]bool{}
		for _, c := range cs {
			for _, m := range c.Members {
				if seen[m] {
					return false
				}
				seen[m] = true
			}
		}
		return len(seen) == len(present)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBuildHierarchyErrors(t *testing.T) {
	if _, err := BuildHierarchy(nil, 2); err != ErrNoPoints {
		t.Errorf("err = %v, want ErrNoPoints", err)
	}
	if _, err := BuildHierarchy([]Point{{1}, {1, 2}}, 2); err != ErrDimMix {
		t.Errorf("err = %v, want ErrDimMix", err)
	}
	// Single point builds a trivial one-level hierarchy.
	h, err := BuildHierarchy([]Point{{1}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Levels() != 1 {
		t.Errorf("single-point Levels = %d, want 1", h.Levels())
	}
}
