package netsim

import (
	"slices"
)

// Bounded virtual-time lookahead for the sharded engine.
//
// The conservative barrier admits exactly one event time per round: every
// shard proposes its next completion, the minimum wins, and the round
// costs a full fan-out/join even when the winning shard's next dozen
// completions are all pod-local. Lookahead removes that cost for the
// common datacenter workload shape — most traffic stays inside a pod —
// by letting isolated shards advance many completions per round.
//
// A shard is *isolated* this round when no attached flow couples any of
// its pods to the rest of the fabric (Network.podCoupled: a flow couples
// a pod iff its path crosses a partition cut and touches the pod). Every
// flow sharing a link with an isolated pod's flow is itself pod-local and
// homed on the same shard, so the shard's completions, the recomputes
// they trigger, and the re-projections those produce are all confined to
// the shard until either (a) a non-isolated shard's event or (b) a
// scheduled timer runs. The earliest such external event is the safe
// horizon H = min(HorizonExcept(isolated), next timer, run horizon):
// below H (strictly, by timeSlack) an isolated shard may emulate serial
// steps locally — pop the due batch, detach the retired flows, recompute
// the seeded components at the batch time, re-project — without any other
// shard observing the difference.
//
// Bit-exactness rests on three properties. First, the serial engine runs
// the recompute triggered by a completion batch at the batch's own
// virtual time (the clock advances before the batch and the next step's
// recompute happens before the next advance), which is exactly when the
// window recomputes. Second, component allocation on a clone is
// bit-identical to the serial union allocation (the separability contract
// the differential gates establish). Third, everything order-sensitive —
// FlowID recycling, flow_seconds observations, completion callbacks — is
// deferred: windows only record retirements, and the coordinator applies
// them in merged (time, heap key, id) order, which is precisely the
// serial pop order. Callbacks therefore fire at their exact serial
// virtual times and in serial order, but *after* other shards have
// simulated past them — hence the purity gate (SetPureCallbacks).

// lookaheadReady reports whether this round may use lookahead windows:
// clones in force (component allocation proven separable for this
// allocator), no full-recompute escape hatch, no time-advance observer,
// and no completion callbacks unless declared pure.
func (e *Engine) lookaheadReady() bool {
	sh := e.sh
	sh.ensureClones(e.alloc)
	return sh.lookahead && sh.clones && !e.full && !e.dirtyAll &&
		e.OnAdvance == nil && (e.onDoneCount == 0 || e.pureCallbacks)
}

// computeIsolation refreshes the per-shard isolation flags from the
// network's pod-coupling counters.
func (e *Engine) computeIsolation() {
	sh := e.sh
	for i, s := range sh.shards {
		iso := true
		for _, p := range s.pods {
			if e.net.podCoupled(p) {
				iso = false
				break
			}
		}
		sh.isolated[i] = iso
	}
}

// runLookahead runs one lookahead round: every isolated shard with a
// completion strictly below the safe horizon h advances all its
// completions up to h in a local window, concurrently; the coordinator
// then applies the merged retirements in serial order. The caller
// guarantees at least one shard qualifies, and every window retires at
// least its first batch, so a round always makes progress.
// runShardWindow is the per-shard window phase body (bound to
// sh.windowFn), reading the round's safe horizon from sh.windowH.
func (e *Engine) runShardWindow(i int) {
	e.runWindow(e.sh.shards[i], e.sh.windowH)
}

func (e *Engine) runLookahead(h float64) error {
	sh := e.sh
	// Pre-grow the shared flow-mark array: workers mark flows during
	// window traversals and must never grow shared slices concurrently.
	for len(e.flowSeen) < len(e.net.flows) {
		e.flowSeen = append(e.flowSeen, 0)
	}
	sh.busy = sh.busy[:0]
	for i, s := range sh.shards {
		if !sh.isolated[i] {
			continue
		}
		if at, _, ok := s.completions.Min(); ok && at < h-timeSlack {
			sh.busy = append(sh.busy, i)
		}
	}
	sh.windowH = h
	sh.runPhase(sh.busy, sh.windowFn)

	declined := false
	recomputes, dirtyFlows := 0, 0
	sh.mergedR = sh.mergedR[:0]
	for _, i := range sh.busy {
		s := sh.shards[i]
		declined = declined || s.wDeclined
		recomputes += s.wRecs
		dirtyFlows += s.wDirty
		sh.mergedR = append(sh.mergedR, s.retired...)
	}
	if declined {
		// Defensive recovery (no shardable discipline declines today): the
		// declining window rolled its rates back, so the state is feasible
		// but no longer provably bit-exact. Latch lookahead off for the
		// run and schedule a full recompute rather than compound the
		// divergence.
		sh.lookahead = false
		e.dirty = true
		e.dirtyAll = true
	}
	// Merged (time, heap key, id) order is the serial engine's pop order:
	// time orders the steps, and within a step the heap pops by (key, id).
	slices.SortFunc(sh.mergedR, func(a, b retirement) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return a.id - b.id
		}
	})
	for _, r := range sh.mergedR {
		if r.at > e.clock.Now() {
			if err := e.clock.AdvanceTo(r.at); err != nil {
				return err
			}
			e.net.now = r.at
		}
		id := FlowID(r.id)
		fn := e.takeDone(id)
		e.tel.flowSeconds.Observe(r.at - e.net.flows[id].Start)
		// homeOf reads the flow's Src, which finishRemoved leaves intact.
		sh.shards[e.homeOf(id)].active--
		e.net.finishRemoved(id)
		e.tel.flowCompletions.Inc()
		if fn != nil {
			fn(e, id)
		}
	}

	e.tel.flowsActive.Set(float64(e.net.NumActive()))
	for _, i := range sh.busy {
		s := sh.shards[i]
		if s.gActive != nil {
			s.gActive.Set(float64(s.active))
		}
		if s.gHeap != nil {
			s.gHeap.Set(float64(s.completions.Len()))
		}
	}
	e.tel.heapSize.Set(float64(e.heapLen()))
	e.tel.rateRecomputes.Add(uint64(recomputes))
	e.tel.scopedRecomputes.Add(uint64(recomputes))
	e.tel.dirtyFlows.Add(uint64(dirtyFlows))
	e.tel.events.Add(uint64(len(sh.mergedR)))
	e.tel.lookaheadRounds.Inc()
	e.tel.lookaheadEvents.Add(uint64(len(sh.mergedR)))
	return nil
}

// runWindow advances one isolated shard through every completion
// strictly below the horizon, emulating the serial step loop locally:
// pop the due batch at the shard's next completion time, retire and
// detach the batch, recompute the components its freed links seed, and
// re-project — repeating until the shard's next completion reaches the
// horizon. Runs on a worker goroutine; touches only the shard's own
// flows, links, heap, and scratch (plus disjoint owner-only marks in the
// engine-shared flowSeen array).
func (e *Engine) runWindow(s *engineShard, h float64) {
	s.wDeclined = false
	s.retired = s.retired[:0]
	s.wRecs, s.wDirty = 0, 0
	for len(s.linkSeen) < len(e.net.linkFlows) {
		s.linkSeen = append(s.linkSeen, 0)
	}
	for {
		tb, _, ok := s.completions.Min()
		if !ok || tb >= h-timeSlack {
			return
		}
		// Pop every flow due at tb — the serial due predicate verbatim.
		// The first pop always passes (its key is tb), so every window
		// iteration retires at least one flow.
		s.seeds = s.seeds[:0]
		for {
			at, idInt, ok := s.completions.Min()
			if !ok {
				break
			}
			f := &e.net.flows[idInt]
			if at > tb && f.RemainingAt(tb) > completionSlack(f) {
				break
			}
			s.completions.Pop()
			f.Remaining = 0
			f.lastSet = tb
			s.seeds = append(s.seeds, f.Path...)
			e.net.detach(f, FlowID(idInt))
			s.retired = append(s.retired, retirement{at: tb, key: at, id: idInt})
		}
		e.windowRecompute(s, tb)
		if s.wDeclined {
			return
		}
	}
}

// windowRecompute is the window-local scoped recompute: expand the batch
// seeds into link-connected components (per-shard linkSeen marks, shared
// flowSeen with owner-only writes — isolation confines the components to
// the shard's own flows), allocate each component on the shard's clone,
// and re-project exactly as the serial reproject would at the batch time
// — skipping bitwise-unchanged rates, so lazy projections stay identical
// to the serial run's.
func (e *Engine) windowRecompute(s *engineShard, tb float64) {
	ep := e.epoch.Add(1)
	s.wIDs = s.wIDs[:0]
	s.wCompOff = s.wCompOff[:0]
	for _, seed := range s.seeds {
		if s.linkSeen[seed] == ep {
			continue
		}
		s.linkSeen[seed] = ep
		s.wStack = append(s.wStack[:0], seed)
		start := len(s.wIDs)
		for len(s.wStack) > 0 {
			l := s.wStack[len(s.wStack)-1]
			s.wStack = s.wStack[:len(s.wStack)-1]
			for _, fid := range e.net.linkFlows[l] {
				if e.flowSeen[fid] == ep {
					continue
				}
				e.flowSeen[fid] = ep
				s.wIDs = append(s.wIDs, fid)
				for _, fl := range e.net.flows[fid].Path {
					if s.linkSeen[fl] != ep {
						s.linkSeen[fl] = ep
						s.wStack = append(s.wStack, fl)
					}
				}
			}
		}
		if len(s.wIDs) > start {
			slices.Sort(s.wIDs[start:])
			s.wCompOff = append(s.wCompOff, start)
		}
	}
	s.wCompOff = append(s.wCompOff, len(s.wIDs))

	s.wOld = s.wOld[:0]
	for _, id := range s.wIDs {
		s.wOld = append(s.wOld, e.net.flows[id].Rate)
	}
	for c := 0; c+1 < len(s.wCompOff); c++ {
		comp := s.wIDs[s.wCompOff[c]:s.wCompOff[c+1]]
		if !s.alloc.AllocateScoped(e.net, comp) {
			// Roll every rate back to its saved in-force value so the
			// recovery recompute (runLookahead schedules a full one)
			// projects flow progress with the rates that actually applied.
			for j, id := range s.wIDs {
				e.net.flows[id].Rate = s.wOld[j]
			}
			s.wDeclined = true
			return
		}
	}
	for i, id := range s.wIDs {
		f := &e.net.flows[id]
		if !f.active {
			continue
		}
		old := s.wOld[i]
		if f.Rate == old {
			continue
		}
		if old > 0 && tb > f.lastSet {
			f.Remaining -= old * (tb - f.lastSet)
			if f.Remaining < 0 {
				f.Remaining = 0
			}
		}
		f.lastSet = tb
		if f.Rate > 0 {
			s.completions.Fix(int(id), tb+f.Remaining/f.Rate)
		} else {
			s.completions.Remove(int(id))
		}
	}
	s.wRecs++
	s.wDirty += len(s.wIDs)
}
