package netsim

import (
	"math"
	"testing"
)

func TestHomaShortFlowsPreempt(t *testing.T) {
	net, hosts := testbed(t, 3)
	short, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1000}) // < 10KB
	long, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e9})
	h := NewHoma(net, nil)
	h.Allocate(net)
	if r := rate(t, net, short); math.Abs(r-100) > 1e-6 {
		t.Errorf("short flow rate = %g, want full 100", r)
	}
	if r := rate(t, net, long); r > 1e-6 {
		t.Errorf("long flow rate = %g, want 0 while short is active", r)
	}
}

func TestHomaLongFlowsShareLeftover(t *testing.T) {
	net, hosts := testbed(t, 3)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e9})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 2e9})
	NewHoma(net, nil).Allocate(net)
	// Both long: same band, equal split.
	if ra, rb := rate(t, net, a), rate(t, net, b); math.Abs(ra-50) > 1e-6 || math.Abs(rb-50) > 1e-6 {
		t.Errorf("long flows = %g,%g; want 50,50", ra, rb)
	}
}

func TestHomaBandByRemainingSize(t *testing.T) {
	// A long flow whose Remaining has dropped below the cutoff moves into
	// the high-priority band (SRPT flavor).
	net, hosts := testbed(t, 3)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e9})
	f, _ := net.Flow(a)
	f.Remaining = 500 // nearly done
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e9})
	NewHoma(net, nil).Allocate(net)
	if ra := rate(t, net, a); math.Abs(ra-100) > 1e-6 {
		t.Errorf("nearly-done flow = %g, want 100", ra)
	}
	if rb := rate(t, net, b); rb > 1e-6 {
		t.Errorf("fresh long flow = %g, want 0", rb)
	}
}

func TestHomaCustomCutoffsSorted(t *testing.T) {
	net, _ := testbed(t, 2)
	h := NewHoma(net, []float64{5000, 100, 1000})
	for i := 1; i < len(h.Cutoffs); i++ {
		if h.Cutoffs[i] < h.Cutoffs[i-1] {
			t.Fatalf("cutoffs not sorted: %v", h.Cutoffs)
		}
	}
	if h.Name() != "homa" {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestSincroniaSmallBottleneckCoflowFirst(t *testing.T) {
	// Coflow 1 has far less demand on the shared bottleneck than coflow 2;
	// BSSI places coflow 2 last, so coflow 1 preempts it.
	net, hosts := testbed(t, 3)
	small, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e3, Coflow: 1})
	big, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e9, Coflow: 2})
	NewSincronia(net).Allocate(net)
	if r := rate(t, net, small); math.Abs(r-100) > 1e-6 {
		t.Errorf("small coflow rate = %g, want 100", r)
	}
	if r := rate(t, net, big); r > 1e-6 {
		t.Errorf("big coflow rate = %g, want 0", r)
	}
}

func TestSincroniaWithinCoflowFair(t *testing.T) {
	net, hosts := testbed(t, 3)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, Coflow: 1})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, Coflow: 1})
	NewSincronia(net).Allocate(net)
	if ra, rb := rate(t, net, a), rate(t, net, b); math.Abs(ra-50) > 1e-6 || math.Abs(rb-50) > 1e-6 {
		t.Errorf("same-coflow rates = %g,%g; want 50,50", ra, rb)
	}
}

func TestSincroniaLooseFlowsLast(t *testing.T) {
	net, hosts := testbed(t, 3)
	cf, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, Coflow: 3})
	loose, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, Coflow: NoCoflow})
	NewSincronia(net).Allocate(net)
	if r := rate(t, net, cf); math.Abs(r-100) > 1e-6 {
		t.Errorf("coflow rate = %g, want 100", r)
	}
	if r := rate(t, net, loose); r > 1e-6 {
		t.Errorf("loose flow rate = %g, want 0", r)
	}
}

func TestSincroniaDisjointCoflowsBothRun(t *testing.T) {
	// Coflows on disjoint links should not block each other (priority is
	// per-link residual, not global stop-and-go).
	net, hosts := testbed(t, 4)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1e6, Coflow: 1})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[2], Dst: hosts[3], Bits: 1e6, Coflow: 2})
	NewSincronia(net).Allocate(net)
	if ra, rb := rate(t, net, a), rate(t, net, b); math.Abs(ra-100) > 1e-6 || math.Abs(rb-100) > 1e-6 {
		t.Errorf("disjoint coflows = %g,%g; want 100,100", ra, rb)
	}
}

func TestSincroniaDeterministicOrder(t *testing.T) {
	mk := func() (*Network, []FlowID) {
		net, hosts := testbed(t, 4)
		var ids []FlowID
		for i, cf := range []CoflowID{1, 2, 3} {
			id, _ := net.AddFlow(0, FlowSpec{Src: hosts[i], Dst: hosts[3], Bits: float64(1e6 * (i + 1)), Coflow: cf})
			ids = append(ids, id)
		}
		NewSincronia(net).Allocate(net)
		return net, ids
	}
	n1, ids1 := mk()
	n2, ids2 := mk()
	for i := range ids1 {
		f1, _ := n1.Flow(ids1[i])
		f2, _ := n2.Flow(ids2[i])
		if f1.Rate != f2.Rate {
			t.Fatalf("non-deterministic sincronia rates: %g vs %g", f1.Rate, f2.Rate)
		}
	}
}
