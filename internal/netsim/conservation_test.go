package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saba/internal/telemetry"
	"saba/internal/topology"
)

// randomScenario builds a testbed network with a random flow population.
func randomScenario(seed int64, hosts int) (*Network, *topology.Topology) {
	top, _ := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: hosts, LinkCapacity: 100})
	net := NewNetwork(top)
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(25)
	hs := top.Hosts()
	for i := 0; i < n; i++ {
		s := hs[rng.Intn(len(hs))]
		d := hs[rng.Intn(len(hs))]
		if s == d {
			continue
		}
		net.AddFlow(0, FlowSpec{
			Src: s, Dst: d, Bits: 1e6,
			App:  AppID(rng.Intn(5)),
			PL:   rng.Intn(4),
			Mult: 1 + rng.Intn(3),
		})
	}
	return net, top
}

// saturatedOrSlack verifies the work-conservation invariant: every flow
// has at least one saturated link on its path (no capacity is left on the
// table that any flow could still use).
func saturatedOrSlack(t *testing.T, net *Network, top *topology.Topology) {
	t.Helper()
	net.ForEachActive(func(f *Flow) {
		if len(f.Path) == 0 {
			return
		}
		for _, l := range f.Path {
			sum := 0.0
			for _, fid := range net.FlowsOn(l) {
				ff, _ := net.Flow(fid)
				sum += ff.Rate
			}
			if sum >= net.Capacity(l)*(1-1e-6) {
				return // found the bottleneck
			}
		}
		t.Errorf("flow %d (rate %g) has slack on every link — allocation not work-conserving", f.ID, f.Rate)
	})
}

func TestWFQWorkConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		net, top := randomScenario(seed, 6)
		rng := rand.New(rand.NewSource(seed ^ 0x5aba))
		w := NewWFQ(net)
		for _, l := range top.Links() {
			// Random 4-queue weights, random PL mapping.
			weights := make([]float64, 4)
			for q := range weights {
				weights[q] = 0.05 + rng.Float64()
			}
			plq := map[int]int{}
			for pl := 0; pl < 4; pl++ {
				plq[pl] = rng.Intn(4)
			}
			if err := w.Configure(l.ID, PortConfig{Weights: weights, PLQueue: plq}); err != nil {
				return false
			}
		}
		w.Allocate(net)
		ok := true
		net.ForEachActive(func(fl *Flow) {
			if len(fl.Path) > 0 && fl.Rate <= 0 {
				ok = false // starvation
			}
		})
		if !ok {
			return false
		}
		// No link oversubscribed.
		for _, l := range top.Links() {
			sum := 0.0
			for _, fid := range net.FlowsOn(l.ID) {
				ff, _ := net.Flow(fid)
				sum += ff.Rate
			}
			if sum > net.Capacity(l.ID)*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWFQParetoEfficiencyProperty(t *testing.T) {
	// Every flow is bottlenecked somewhere: WFQ never strands capacity.
	for seed := int64(0); seed < 25; seed++ {
		net, top := randomScenario(seed, 5)
		w := NewWFQ(net)
		for _, l := range top.Links() {
			w.Configure(l.ID, PortConfig{
				Weights: []float64{0.6, 0.25, 0.1, 0.05},
				PLQueue: map[int]int{0: 0, 1: 1, 2: 2, 3: 3},
			})
		}
		w.Allocate(net)
		saturatedOrSlack(t, net, top)
	}
}

func TestHomaConservationProperty(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		net, top := randomScenario(seed, 5)
		NewHoma(net, nil).Allocate(net)
		saturatedOrSlack(t, net, top)
	}
}

func TestSincroniaConservationProperty(t *testing.T) {
	top, _ := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 5, LinkCapacity: 100})
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(top)
	hs := top.Hosts()
	for i := 0; i < 15; i++ {
		s, d := hs[rng.Intn(5)], hs[rng.Intn(5)]
		if s == d {
			continue
		}
		net.AddFlow(0, FlowSpec{Src: s, Dst: d, Bits: 1e5 * float64(1+rng.Intn(9)), Coflow: CoflowID(rng.Intn(4))})
	}
	NewSincronia(net).Allocate(net)
	saturatedOrSlack(t, net, top)
}

func TestMultEquivalence(t *testing.T) {
	// One flow with Mult=3 must receive exactly the aggregate rate of
	// three separate unit flows between the same endpoints.
	top, _ := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 3, LinkCapacity: 100})

	split := NewNetwork(top)
	hs := top.Hosts()
	for i := 0; i < 3; i++ {
		split.AddFlow(0, FlowSpec{Src: hs[0], Dst: hs[2], Bits: 1e6})
	}
	other, _ := split.AddFlow(0, FlowSpec{Src: hs[1], Dst: hs[2], Bits: 1e6})
	NewIdealMaxMin(split).Allocate(split)
	aggr := 0.0
	split.ForEachActive(func(f *Flow) {
		if f.Src == hs[0] {
			aggr += f.Rate
		}
	})
	fo, _ := split.Flow(other)
	otherRate := fo.Rate

	merged := NewNetwork(top)
	m, _ := merged.AddFlow(0, FlowSpec{Src: hs[0], Dst: hs[2], Bits: 3e6, Mult: 3})
	o2, _ := merged.AddFlow(0, FlowSpec{Src: hs[1], Dst: hs[2], Bits: 1e6})
	NewIdealMaxMin(merged).Allocate(merged)
	fm, _ := merged.Flow(m)
	fo2, _ := merged.Flow(o2)

	if math.Abs(fm.Rate-aggr) > 1e-6 {
		t.Errorf("Mult=3 flow rate %g != aggregate of 3 unit flows %g", fm.Rate, aggr)
	}
	if math.Abs(fo2.Rate-otherRate) > 1e-6 {
		t.Errorf("competing flow rate %g != %g under Mult aggregation", fo2.Rate, otherRate)
	}
}

// TestConservationUnderLinkFlaps runs every allocator through a seeded
// workload with core-cable flaps and checks, on every time advance, that
// (a) no active flow's path crosses a down link, (b) stalled flows carry
// rate zero, and (c) no link is allocated past capacity. At the end every
// flow must have completed — flaps may delay traffic, never strand it.
func TestConservationUnderLinkFlaps(t *testing.T) {
	const eps = 1e-6
	for _, name := range []string{"ideal-maxmin", "fecn", "wfq", "homa", "sincronia", "decentral"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			top := diffFabric(t)
			net := NewNetwork(top)
			alloc := diffAllocator(name, net, telemetry.NewRegistry())
			e := NewEngine(net, alloc)

			rng := rand.New(rand.NewSource(99))
			hosts := top.Hosts()
			remaining := map[FlowID]bool{}
			for w := 0; w < 8; w++ {
				n := 1 + rng.Intn(5)
				specs := make([]FlowSpec, n)
				for i := range specs {
					s := hosts[rng.Intn(len(hosts))]
					d := hosts[rng.Intn(len(hosts))]
					for d == s {
						d = hosts[rng.Intn(len(hosts))]
					}
					specs[i] = FlowSpec{
						Src: s, Dst: d,
						Bits: float64((1 + rng.Intn(4000)) * 64),
						App:  AppID(rng.Intn(4)),
						PL:   rng.Intn(8),
						Mult: 1 + rng.Intn(2),
					}
				}
				if err := e.At(float64(w)*0.5, func(e *Engine) {
					ids, err := e.AddFlows(specs, func(e *Engine, id FlowID) { delete(remaining, id) })
					if err != nil {
						panic(err)
					}
					for _, id := range ids {
						remaining[id] = true
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			cables := coreCables(top)
			frng := rand.New(rand.NewSource(7))
			for w := 0; w < 5; w++ {
				at := 0.3 + 0.9*float64(w)
				cable := cables[frng.Intn(len(cables))]
				if err := e.At(at, func(e *Engine) {
					if err := e.FailLinks(cable...); err != nil {
						panic(err)
					}
				}); err != nil {
					t.Fatal(err)
				}
				if err := e.At(at+0.45, func(e *Engine) {
					if err := e.RestoreLinks(cable...); err != nil {
						panic(err)
					}
				}); err != nil {
					t.Fatal(err)
				}
			}
			load := map[topology.LinkID]float64{}
			e.OnAdvance = func(e *Engine, t0, t1 float64) {
				clear(load)
				net.ForEachActive(func(f *Flow) {
					if f.Stalled() {
						if f.Rate != 0 {
							t.Errorf("stalled flow %d has rate %g during [%g,%g)", f.ID, f.Rate, t0, t1)
						}
						return
					}
					for _, l := range f.Path {
						if !top.LinkUp(l) {
							t.Errorf("flow %d crosses down link %d during [%g,%g)", f.ID, l, t0, t1)
						}
						load[l] += f.Rate
					}
				})
				for l, sum := range load {
					if c := net.Capacity(l); sum > c*(1+eps) {
						t.Errorf("link %d oversubscribed during [%g,%g): %g > %g", l, t0, t1, sum, c)
					}
				}
			}
			if err := e.Run(math.Inf(1)); err != nil {
				t.Fatal(err)
			}
			if len(remaining) != 0 {
				t.Errorf("%d flows never completed across the flap schedule", len(remaining))
			}
			if e.StalledFlows() != 0 {
				t.Errorf("StalledFlows = %d at end, want 0", e.StalledFlows())
			}
		})
	}
}

func BenchmarkIdealMaxMinAllocate(b *testing.B) {
	top, _ := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 32})
	net := NewNetwork(top)
	rng := rand.New(rand.NewSource(1))
	hs := top.Hosts()
	for i := 0; i < 2000; i++ {
		s, d := hs[rng.Intn(32)], hs[rng.Intn(32)]
		if s == d {
			continue
		}
		net.AddFlow(0, FlowSpec{Src: s, Dst: d, Bits: 1e9, App: AppID(i % 16)})
	}
	a := NewIdealMaxMin(net)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Allocate(net)
	}
}

func BenchmarkWFQAllocate(b *testing.B) {
	top, _ := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 32, Queues: 8})
	net := NewNetwork(top)
	w := NewWFQ(net)
	for _, l := range top.Links() {
		w.Configure(l.ID, PortConfig{
			Weights: []float64{0.3, 0.25, 0.15, 0.1, 0.08, 0.06, 0.04, 0.02},
			PLQueue: map[int]int{0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5, 6: 6, 7: 7},
		})
	}
	rng := rand.New(rand.NewSource(1))
	hs := top.Hosts()
	for i := 0; i < 2000; i++ {
		s, d := hs[rng.Intn(32)], hs[rng.Intn(32)]
		if s == d {
			continue
		}
		net.AddFlow(0, FlowSpec{Src: s, Dst: d, Bits: 1e9, App: AppID(i % 16), PL: i % 8})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Allocate(net)
	}
}

func BenchmarkSpineLeafRouting(b *testing.B) {
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 3, ToRsPerPod: 3, LeavesPerPod: 4, Spines: 8, HostsPerToR: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	hs := top.Hosts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := top.Route(hs[i%len(hs)], hs[(i*7+13)%len(hs)]); err != nil && hs[i%len(hs)] != hs[(i*7+13)%len(hs)] {
			b.Fatal(err)
		}
	}
}
