package netsim

import (
	"encoding/binary"
	"math"
	"sort"

	"saba/internal/decentral"
	"saba/internal/solver"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// DecentralConfig tunes the decentralized allocator.
type DecentralConfig struct {
	// Params tune the per-port price iteration (gain, damping, epsilon,
	// managed fraction). The zero value selects the protocol defaults.
	Params decentral.Params
}

// Decentral is the sixth allocator: Saba's Eq. 2 sensitivity weighting
// achieved with no controller in the loop. Each contended port runs the
// decentralized price iteration (internal/decentral) that end hosts
// would execute against the port's broadcast telemetry signal — the
// simulator fast-forwards the per-beacon dynamics to their fixed point,
// which is the per-port Eq. 2 optimum — and the resulting per-app
// weights drive the same generalized water-fill WFQ uses. Because hosts
// self-pace (virtual queues, not switch queues), the port is not limited
// by the switch's queue count: every application gets its own weight,
// the ∞-queue column of Fig. 11b.
//
// Per-port solutions are a pure function of the (sorted) application set
// sharing the port, so they are cached across allocations and shared
// across ports — the decentralized analogue of the controller's
// cross-port solution cache.
type Decentral struct {
	par    decentral.Params
	filler *Filler
	objs   map[AppID]solver.Objective

	// Cross-port solution cache: distinct app set → converged port state.
	sols map[string]*portSol

	// Per-link solution in force, epoch-gated: linkSol[l] is meaningful
	// to the classifier only when linkEpoch[l] == epoch (set while that
	// link was touched by the current allocation); it persists afterwards
	// so heartbeats can re-broadcast the last price.
	linkSol   []*portSol
	linkEpoch []int64
	epoch     int64

	channel *decentral.Channel

	// cfgGen counts objective-model generations: SetObjective bumps it,
	// and shard clones compare their snapshot (srcGen) against the
	// parent's (src) on every allocation to invalidate their private
	// solution caches. objs itself is shared with clones — it is only
	// written from serial engine phases.
	cfgGen uint64
	src    *Decentral
	srcGen uint64

	// Scratch, reused across allocations.
	appsBuf []AppID
	appMark []int64
	appEp   int64
	keyBuf  []byte
	links   []int // touched links this allocation
	slack   []FlowID
	sigBuf  []decentral.PortSignal

	rounds      *telemetry.Counter // decentral.rounds
	solves      *telemetry.Counter // decentral.solves
	cacheHits   *telemetry.Counter // decentral.solve_cache_hits
	unconverged *telemetry.Counter // decentral.unconverged

	nRounds, nSolves, nHits, nUnconverged uint64
}

// portSol is one converged per-port iteration: the app set it was solved
// for (ascending), the Filler class table carrying the weights, and the
// signal state hosts would have observed at the fixed point.
type portSol struct {
	apps      []AppID
	specs     []ClassSpec
	price     float64
	rounds    int
	converged bool
}

// NewDecentral creates the decentralized allocator for net.
func NewDecentral(net *Network, cfg DecentralConfig) *Decentral {
	d := &Decentral{
		par:       cfg.Params,
		filler:    NewFiller(net),
		objs:      make(map[AppID]solver.Objective),
		sols:      make(map[string]*portSol),
		linkSol:   make([]*portSol, len(net.Topology().Links())),
		linkEpoch: make([]int64, len(net.Topology().Links())),
	}
	d.SetTelemetry(telemetry.Default)
	return d
}

// SetTelemetry rebinds the allocator's instruments to reg.
func (d *Decentral) SetTelemetry(reg *telemetry.Registry) {
	d.rounds = reg.Counter("decentral.rounds")
	d.solves = reg.Counter("decentral.solves")
	d.cacheHits = reg.Counter("decentral.solve_cache_hits")
	d.unconverged = reg.Counter("decentral.unconverged")
}

// Name implements Allocator.
func (*Decentral) Name() string { return "saba-decentral" }

// SetObjective installs (or replaces) an application's sensitivity
// model. Applications without one iterate with the moderate default
// (decentral.DefaultCoeffs). Changing a model invalidates the solution
// cache.
func (d *Decentral) SetObjective(app AppID, o solver.Objective) {
	d.objs[app] = o
	clear(d.sols)
	d.epoch++  // stale per-link solutions must not be reused
	d.cfgGen++ // shard clones invalidate their caches on next allocation
}

// SetChannel attaches the simulated in-band telemetry channel; after
// every allocation the touched ports' signals are broadcast into it for
// sabalib instances to poll.
func (d *Decentral) SetChannel(c *decentral.Channel) { d.channel = c }

// DecentralStats is a plain-value snapshot of the allocator's counters.
type DecentralStats struct {
	Rounds      uint64 // total price-iteration rounds across all solves
	Solves      uint64 // distinct per-port iterations run
	CacheHits   uint64 // allocations served from the solution cache
	Unconverged uint64 // solves that hit MaxIters before epsilon
}

// Stats returns the allocator's counters.
func (d *Decentral) Stats() DecentralStats {
	return DecentralStats{Rounds: d.nRounds, Solves: d.nSolves, CacheHits: d.nHits, Unconverged: d.nUnconverged}
}

// Allocate implements Allocator.
func (d *Decentral) Allocate(net *Network) {
	d.AllocateScoped(net, net.ActiveIDs())
}

// AllocateScoped implements Allocator. Each contended link's weight
// vector depends only on the set of applications crossing it — the
// decentralized iteration is a pure per-port function — and the
// water-fill is separable across link-connected components, so running
// both over only the dirty component reproduces the global result
// bit-for-bit.
func (d *Decentral) AllocateScoped(net *Network, ids []FlowID) bool {
	if d.src != nil && d.srcGen != d.src.cfgGen {
		clear(d.sols)
		d.srcGen = d.src.cfgGen
	}
	// Phase 1: per contended link, the fixed point of the decentralized
	// price iteration over the distinct applications sharing it.
	d.epoch++
	ep := d.epoch
	d.links = d.links[:0]
	for _, id := range ids {
		f := &net.flows[id]
		if !f.active || len(f.Path) == 0 {
			continue
		}
		for _, l := range f.Path {
			if d.linkEpoch[l] == ep {
				continue
			}
			d.linkEpoch[l] = ep
			d.linkSol[l] = d.solveLink(net, l)
			d.links = append(d.links, int(l))
		}
	}

	// Phase 2: generalized water-fill with one fixed-weight class per
	// application, plus WFQ-style top-up passes so the discipline stays
	// work-conserving (structurally incapable of oversubscribing a link).
	cls := decentralClassifier{d}
	d.filler.ResetFor(net, ids)
	d.filler.Run(net, ids, cls)
	const maxTopUps = 4
	for pass := 0; pass < maxTopUps; pass++ {
		slack := d.slack[:0]
		for _, id := range ids {
			f := &net.flows[id]
			if !f.active || len(f.Path) == 0 {
				continue
			}
			minResidual := math.Inf(1)
			for _, l := range f.Path {
				if r := d.filler.capRem[l]; r < minResidual {
					minResidual = r
				}
			}
			if minResidual > 1e-6 {
				slack = append(slack, id)
			}
		}
		d.slack = slack
		if len(slack) == 0 {
			break
		}
		d.filler.additive = true
		d.filler.Run(net, slack, cls)
		d.filler.additive = false
	}

	d.publish(net)
	return true
}

// solveLink returns the converged port solution for the applications
// currently sharing link l, from the cache when the same app set was
// solved before (on this or any other port).
func (d *Decentral) solveLink(net *Network, l topology.LinkID) *portSol {
	// Distinct applications on the link, ascending. NoApp (-1) counts as
	// its own application (unattributed traffic gets the default model).
	d.appEp++
	aep := d.appEp
	d.appsBuf = d.appsBuf[:0]
	for _, fid := range net.FlowsOn(l) {
		slot := int(net.flows[fid].App) + 1 // NoApp occupies slot 0
		for slot >= len(d.appMark) {
			d.appMark = append(d.appMark, 0)
		}
		if d.appMark[slot] == aep {
			continue
		}
		d.appMark[slot] = aep
		d.appsBuf = append(d.appsBuf, net.flows[fid].App)
	}
	if len(d.appsBuf) == 0 {
		return nil
	}
	sort.Slice(d.appsBuf, func(i, j int) bool { return d.appsBuf[i] < d.appsBuf[j] })

	d.keyBuf = d.keyBuf[:0]
	for _, a := range d.appsBuf {
		d.keyBuf = binary.AppendVarint(d.keyBuf, int64(a))
	}
	if sol, ok := d.sols[string(d.keyBuf)]; ok {
		d.cacheHits.Inc()
		d.nHits++
		return sol
	}

	apps := append([]AppID(nil), d.appsBuf...)
	sol := &portSol{apps: apps, specs: make([]ClassSpec, len(apps))}
	if len(apps) == 1 {
		// A lone application keeps the whole managed capacity; no
		// iteration, no congestion price.
		sol.specs[0] = ClassSpec{Weight: 1, PerFlow: false}
		sol.converged = true
	} else {
		objs := make([]solver.Objective, len(apps))
		for i, a := range apps {
			if o, ok := d.objs[a]; ok {
				objs[i] = o
			} else {
				objs[i] = solver.PolyObjective{Coeffs: decentral.DefaultCoeffs}
			}
		}
		port := decentral.NewPort(objs, d.par)
		sol.converged = port.Solve()
		sol.rounds = port.Rounds()
		sol.price = port.Price()
		for i, w := range port.Weights() {
			sol.specs[i] = ClassSpec{Weight: w, PerFlow: false}
		}
		d.rounds.Add(uint64(port.Rounds()))
		d.nRounds += uint64(port.Rounds())
		if !sol.converged {
			d.unconverged.Inc()
			d.nUnconverged++
		}
	}
	d.solves.Inc()
	d.nSolves++
	d.sols[string(d.keyBuf)] = sol
	return sol
}

// publish broadcasts the touched ports' signals into the telemetry
// channel: observed utilization of the just-filled links plus the
// congestion price and population of each port's solution.
func (d *Decentral) publish(net *Network) {
	if d.channel == nil {
		return
	}
	d.sigBuf = d.sigBuf[:0]
	for _, li := range d.links {
		l := topology.LinkID(li)
		sol := d.linkSol[l]
		if sol == nil {
			continue
		}
		d.sigBuf = append(d.sigBuf, decentral.PortSignal{
			Port:  li,
			Util:  net.LinkUtilization(l),
			Price: sol.price,
			Apps:  len(sol.apps),
		})
	}
	d.channel.Publish(net.Now(), d.sigBuf)
}

// Heartbeat re-broadcasts the current utilization of every port with a
// known solution (and bumps the channel's sequence number even when no
// port qualifies), keeping the signal fresh through steady periods when
// no allocation runs. core.RunJobs schedules this on the telemetry
// beaconing period.
func (d *Decentral) Heartbeat(net *Network, now float64) {
	if d.channel == nil {
		return
	}
	d.sigBuf = d.sigBuf[:0]
	for li, sol := range d.linkSol {
		if sol == nil {
			continue
		}
		l := topology.LinkID(li)
		if len(net.FlowsOn(l)) == 0 {
			continue
		}
		d.sigBuf = append(d.sigBuf, decentral.PortSignal{
			Port:  li,
			Util:  net.LinkUtilization(l),
			Price: sol.price,
			Apps:  len(sol.apps),
		})
	}
	d.channel.Publish(now, d.sigBuf)
}

// ShardClone implements ShardableAllocator. Per-port solutions are a
// pure function of the sorted application set and the shared objective
// models, so per-clone solution caches stay bit-exact with the parent's
// — a cache hit and a fresh solve yield the same weights. Clones share
// objs (written only from serial phases), the atomic telemetry
// counters, and the filler's per-link arrays (cloneScoped); solution
// caches, per-link solution state and run scratch are owned, and
// the plain Stats() counters stay clone-local (only the parent's are
// reported). With a telemetry channel attached the allocator is not
// shardable — the per-recompute publish sequence must match the serial
// run — so ShardClone returns nil and the engine keeps the union path.
func (d *Decentral) ShardClone() Allocator {
	if d.channel != nil {
		return nil
	}
	c := &Decentral{
		par:       d.par,
		filler:    d.filler.cloneScoped(),
		objs:      d.objs,
		sols:      make(map[string]*portSol),
		linkSol:   make([]*portSol, len(d.linkSol)),
		linkEpoch: make([]int64, len(d.linkEpoch)),
		src:       d,
		srcGen:    d.cfgGen,
	}
	c.rounds, c.solves, c.cacheHits, c.unconverged = d.rounds, d.solves, d.cacheHits, d.unconverged
	return c
}

// decentralClassifier adapts the per-link port solutions to the Filler:
// one fixed-weight class per application on solved links, the flat
// per-flow class anywhere the current allocation holds no solution.
type decentralClassifier struct{ d *Decentral }

func (c decentralClassifier) LinkClasses(l topology.LinkID) []ClassSpec {
	if c.d.linkEpoch[l] == c.d.epoch {
		if sol := c.d.linkSol[l]; sol != nil {
			return sol.specs
		}
	}
	return flatClasses
}

func (c decentralClassifier) FlowClass(f *Flow, l topology.LinkID) int {
	if c.d.linkEpoch[l] != c.d.epoch {
		return 0
	}
	sol := c.d.linkSol[l]
	if sol == nil {
		return 0
	}
	// Binary search the ascending app set.
	lo, hi := 0, len(sol.apps)
	for lo < hi {
		mid := (lo + hi) / 2
		if sol.apps[mid] < f.App {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sol.apps) && sol.apps[lo] == f.App {
		return lo
	}
	return 0
}
