package netsim

import (
	"math"
	"testing"

	"saba/internal/decentral"
	"saba/internal/solver"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// decentralSingleSwitch builds a one-switch network with two hosts per
// app sending through the same uplink, so the shared port is genuinely
// contended between applications.
func decentralFixture(t *testing.T, apps int) (*Network, *Decentral) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 2 * apps, Queues: 8, LinkCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork(top)
	d := NewDecentral(net, DecentralConfig{})
	d.SetTelemetry(telemetry.NewRegistry())
	return net, d
}

// Weights on a contended port must match the centralized Eq. 2 solve for
// the same sensitivity models, within the protocol's 5% bound.
func TestDecentralMatchesEq2OnContendedPort(t *testing.T) {
	net, d := decentralFixture(t, 2)
	hosts := net.Topology().Hosts()

	coeffs := [][]float64{{4.0, -4.5, 1.6}, {1.2, -0.21}}
	objs := make([]solver.Objective, len(coeffs))
	for i, c := range coeffs {
		objs[i] = solver.PolyObjective{Coeffs: c}
		d.SetObjective(AppID(i), objs[i])
	}

	// Both apps send to host 0, so its downlink is the contended port.
	for i := 1; i < 4; i++ {
		app := AppID(0)
		if i >= 2 {
			app = AppID(1)
		}
		if _, err := net.AddFlow(0, FlowSpec{Src: hosts[i], Dst: hosts[0], Bits: 1e9, App: app}); err != nil {
			t.Fatal(err)
		}
	}
	d.Allocate(net)

	want, err := solver.Minimize(objs, solver.Options{Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Per-app aggregate rate on the contended downlink.
	got := make([]float64, 2)
	for _, id := range net.ActiveIDs() {
		f, _ := net.Flow(id)
		got[f.App] += f.Rate
	}
	sum := got[0] + got[1]
	for i := range got {
		gap := math.Abs(got[i]/sum-want[i]) / want[i]
		if gap > 0.05 {
			t.Errorf("app %d share %.4f, centralized %.4f (gap %.1f%%)", i, got[i]/sum, want[i], gap*100)
		}
	}

	st := d.Stats()
	if st.Solves == 0 || st.Rounds == 0 {
		t.Errorf("stats not recorded: %+v", st)
	}
}

// The per-port solution must be reused across allocations and across
// ports sharing the same app set.
func TestDecentralSolutionCache(t *testing.T) {
	net, d := decentralFixture(t, 2)
	hosts := net.Topology().Hosts()
	d.SetObjective(0, solver.PolyObjective{Coeffs: []float64{4.0, -4.5, 1.6}})
	d.SetObjective(1, solver.PolyObjective{Coeffs: []float64{1.2, -0.21}})
	for i := 1; i < 4; i++ {
		app := AppID(i % 2)
		if _, err := net.AddFlow(0, FlowSpec{Src: hosts[i], Dst: hosts[0], Bits: 1e9, App: app}); err != nil {
			t.Fatal(err)
		}
	}
	d.Allocate(net)
	s1 := d.Stats()
	d.Allocate(net)
	s2 := d.Stats()
	if s2.Solves != s1.Solves {
		t.Errorf("re-allocation re-solved: %d -> %d solves", s1.Solves, s2.Solves)
	}
	if s2.CacheHits <= s1.CacheHits {
		t.Errorf("re-allocation did not hit the cache: %d -> %d hits", s1.CacheHits, s2.CacheHits)
	}
	// Changing a model invalidates the cache.
	d.SetObjective(0, solver.PolyObjective{Coeffs: []float64{2.0, -1.0}})
	d.Allocate(net)
	if s3 := d.Stats(); s3.Solves == s2.Solves {
		t.Error("SetObjective did not invalidate the solution cache")
	}
}

// The allocator must never oversubscribe a link, whatever the weights.
func TestDecentralConservation(t *testing.T) {
	net, d := decentralFixture(t, 3)
	hosts := net.Topology().Hosts()
	d.SetObjective(0, solver.PolyObjective{Coeffs: []float64{4.0, -4.5, 1.6}})
	d.SetObjective(1, solver.PolyObjective{Coeffs: []float64{2.4, -1.87, 0.47}})
	for i := 1; i < len(hosts); i++ {
		if _, err := net.AddFlow(0, FlowSpec{Src: hosts[i], Dst: hosts[(i+1)%3], Bits: 1e9, App: AppID(i % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	d.Allocate(net)
	for _, lk := range net.Topology().Links() {
		load := 0.0
		for _, id := range net.FlowsOn(lk.ID) {
			f, _ := net.Flow(id)
			load += f.Rate * float64(f.Mult)
		}
		if c := net.Capacity(lk.ID); load > c*(1+1e-9) {
			t.Errorf("link %d: load %.3f exceeds capacity %.3f", lk.ID, load, c)
		}
	}
}

// The channel must carry the touched ports' signals after an allocation
// and heartbeats must keep it fresh without changing port state.
func TestDecentralPublishesSignals(t *testing.T) {
	net, d := decentralFixture(t, 2)
	hosts := net.Topology().Hosts()
	ch := decentral.NewChannel()
	d.SetChannel(ch)
	d.SetObjective(0, solver.PolyObjective{Coeffs: []float64{4.0, -4.5, 1.6}})
	d.SetObjective(1, solver.PolyObjective{Coeffs: []float64{1.2, -0.21}})
	for i := 1; i < 4; i++ {
		if _, err := net.AddFlow(0, FlowSpec{Src: hosts[i], Dst: hosts[0], Bits: 1e9, App: AppID(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	d.Allocate(net)
	sig, ok := ch.Signal()
	if !ok {
		t.Fatal("no signal after allocation")
	}
	if sig.Apps != 2 {
		t.Errorf("hottest port apps = %d, want 2", sig.Apps)
	}
	if sig.Util <= 0 {
		t.Errorf("hottest port util = %v, want > 0", sig.Util)
	}
	seq := sig.Seq
	d.Heartbeat(net, 1.0)
	sig2, _ := ch.Signal()
	if sig2.Seq <= seq || sig2.Time != 1.0 {
		t.Errorf("heartbeat did not refresh: seq %d -> %d, time %v", seq, sig2.Seq, sig2.Time)
	}
}
