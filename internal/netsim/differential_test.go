package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"saba/internal/solver"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// The differential test is the gate on the incremental engine: for every
// allocator, a seeded random workload — batched admissions, cancels, and
// (for WFQ) mid-run reconfigurations — must produce bit-for-bit identical
// completion times whether rates are recomputed globally after every
// change (SetFullRecompute(true)) or scoped to the dirty component.

func diffFabric(t testing.TB) *topology.Topology {
	t.Helper()
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2,
		HostsPerToR: 4, Queues: 8, LinkCapacity: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

// diffAllocator builds one of the six disciplines against a network,
// configuring WFQ's ports the way the controller would.
func diffAllocator(name string, net *Network, reg *telemetry.Registry) Allocator {
	switch name {
	case "ideal-maxmin":
		return NewIdealMaxMin(net)
	case "fecn":
		return NewFECN(net, 0)
	case "homa":
		return NewHoma(net, nil)
	case "sincronia":
		return NewSincronia(net)
	case "wfq":
		w := NewWFQ(net)
		w.SetTelemetry(reg)
		configureWFQPorts(w, net, 0)
		return w
	case "decentral":
		d := NewDecentral(net, DecentralConfig{})
		d.SetTelemetry(reg)
		// Deterministic convex sensitivity models for the scenario's four
		// applications, spanning sensitive to indifferent.
		d.SetObjective(0, solver.PolyObjective{Coeffs: []float64{4.0, -4.5, 1.6}})
		d.SetObjective(1, solver.PolyObjective{Coeffs: []float64{2.4, -1.87, 0.47}})
		d.SetObjective(2, solver.PolyObjective{Coeffs: []float64{1.8, -1.0, 0.25}})
		d.SetObjective(3, solver.PolyObjective{Coeffs: []float64{1.2, -0.21}})
		return d
	}
	panic("unknown allocator " + name)
}

// configureWFQPorts installs deterministic per-port queue configs; round
// varies the weights so mid-run reconfiguration genuinely changes them.
func configureWFQPorts(w *WFQ, net *Network, round int) {
	for _, lk := range net.Topology().Links() {
		weights := make([]float64, 8)
		for q := range weights {
			weights[q] = float64(1 + (q*7+int(lk.ID)+round*3)%5)
		}
		plq := map[int]int{}
		for pl := 0; pl < 8; pl++ {
			plq[pl] = (pl + round) % len(weights)
		}
		if err := w.Configure(lk.ID, PortConfig{Weights: weights, PLQueue: plq}); err != nil {
			panic(err)
		}
	}
}

// runDifferential drives one seeded scenario and returns the completion
// time of every admission (-1 when cancelled), in admission order.
func runDifferential(t *testing.T, name string, seed int64, full bool, reg *telemetry.Registry) []float64 {
	return runDifferentialScenario(t, name, seed, full, reg, false, 0)
}

// runDifferentialScenario is runDifferential with an optional seeded
// link-flap schedule layered on top (see faults_test.go) and an engine
// shard count (0 = serial path, -1 = one shard per pod; see shard.go).
func runDifferentialScenario(t *testing.T, name string, seed int64, full bool, reg *telemetry.Registry, withFlaps bool, shards int) []float64 {
	t.Helper()
	top := diffFabric(t)
	net := NewNetwork(top)
	alloc := diffAllocator(name, net, reg)
	e := NewEngine(net, alloc)
	e.SetTelemetry(reg)
	e.SetFullRecompute(full)
	e.SetShards(shards)
	// The record callback only reads e.Now() and writes scenario-local
	// slices, so the sharded runs may use lookahead windows.
	e.SetPureCallbacks(true)

	rng := rand.New(rand.NewSource(seed))
	hosts := top.Hosts()

	var (
		done   []float64 // per admission index; -1 = still open / cancelled
		ids    []FlowID  // per admission index
		idxOf  = map[FlowID]int{}
		record = func(e *Engine, id FlowID) {
			done[idxOf[id]] = e.Now()
		}
	)

	const waves = 30
	for w := 0; w < waves; w++ {
		at := float64(w) * 0.37
		batch := 1 + rng.Intn(6)
		specs := make([]FlowSpec, batch)
		for i := range specs {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if rng.Intn(5) > 0 {
				for dst == src {
					dst = hosts[rng.Intn(len(hosts))]
				}
			} else {
				dst = src // ~20% loopback
			}
			coflow := CoflowID(rng.Intn(6))
			if rng.Intn(3) == 0 {
				coflow = NoCoflow
			}
			specs[i] = FlowSpec{
				Src: src, Dst: dst,
				Bits:   float64((1 + rng.Intn(5000)) * 64),
				App:    AppID(rng.Intn(4)),
				PL:     rng.Intn(8),
				Mult:   1 + rng.Intn(2),
				Coflow: coflow,
			}
		}
		if err := e.At(at, func(e *Engine) {
			newIDs, err := e.AddFlows(specs, record)
			if err != nil {
				panic(err)
			}
			for _, id := range newIDs {
				idxOf[id] = len(ids)
				ids = append(ids, id)
				done = append(done, -1)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if w%5 == 2 {
			// Cancel a pseudo-random earlier admission; a no-op error when
			// it already completed (identically in both modes, since the
			// rate histories must match).
			victim := rng.Intn((w + 1) * 3)
			if err := e.At(at+0.11, func(e *Engine) {
				if victim < len(ids) && done[victim] < 0 {
					_ = e.CancelFlow(ids[victim])
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if withFlaps {
		// Layer a seeded link-flap schedule over the workload: both
		// directions of a pseudo-random core (switch-to-switch) cable go
		// down and come back while admissions and cancels keep arriving.
		// A separate RNG keeps the admission sequence identical to the
		// flap-free scenario for the same seed.
		cables := coreCables(top)
		frng := rand.New(rand.NewSource(seed ^ 0x5eed))
		for w := 0; w < 6; w++ {
			at := 1.3 + 1.6*float64(w)
			cable := cables[frng.Intn(len(cables))]
			if err := e.At(at, func(e *Engine) {
				if err := e.FailLinks(cable...); err != nil {
					panic(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if err := e.At(at+0.7, func(e *Engine) {
				if err := e.RestoreLinks(cable...); err != nil {
					panic(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if name == "wfq" {
		// Reconfigure every port mid-run, as the controller does when the
		// application mix shifts, and invalidate all rates.
		if err := e.At(15*0.37+0.05, func(e *Engine) {
			configureWFQPorts(alloc.(*WFQ), net, 1)
			e.MarkDirty()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatalf("%s seed %d full=%v: %v", name, seed, full, err)
	}
	return done
}

func TestDifferentialScopedMatchesFull(t *testing.T) {
	allocators := []string{"ideal-maxmin", "fecn", "wfq", "homa", "sincronia", "decentral"}
	scopable := map[string]bool{"ideal-maxmin": true, "fecn": true, "wfq": true, "decentral": true}
	for _, name := range allocators {
		name := name
		t.Run(name, func(t *testing.T) {
			scopedEngaged := false
			for seed := int64(1); seed <= 5; seed++ {
				fullReg := telemetry.NewRegistry()
				scopedReg := telemetry.NewRegistry()
				want := runDifferential(t, name, seed, true, fullReg)
				got := runDifferential(t, name, seed, false, scopedReg)
				if len(want) != len(got) {
					t.Fatalf("seed %d: admission counts differ: full %d, scoped %d", seed, len(want), len(got))
				}
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Errorf("seed %d admission %d: completion %v (full) vs %v (scoped); diff %g",
							seed, i, want[i], got[i], got[i]-want[i])
					}
				}
				if fullReg.Counter("netsim.scoped_recomputes").Value() != 0 {
					t.Errorf("seed %d: full mode performed scoped recomputes", seed)
				}
				if scopedReg.Counter("netsim.scoped_recomputes").Value() > 0 {
					scopedEngaged = true
				}
			}
			if scopable[name] && !scopedEngaged {
				t.Errorf("%s: scoped mode never performed a scoped recompute", name)
			}
			if !scopable[name] && scopedEngaged {
				t.Errorf("%s: non-scopable allocator reported scoped recomputes", name)
			}
		})
	}
}

// TestDifferentialExample documents the shape of the gate for one seed so
// failures print a digestible vector, and exercises fmt in the helper.
func TestDifferentialCompletionVectorNonTrivial(t *testing.T) {
	reg := telemetry.NewRegistry()
	done := runDifferential(t, "ideal-maxmin", 1, false, reg)
	completed := 0
	for _, d := range done {
		if d >= 0 {
			completed++
		}
	}
	if completed < len(done)/2 {
		t.Fatalf("scenario too degenerate: only %d/%d completions (%s)",
			completed, len(done), fmt.Sprint(done[:min(8, len(done))]))
	}
}
