package netsim

import (
	"sort"
)

// DefaultHomaCutoff is the flow-size boundary (in bits) between Homa's
// high-priority short-flow class and the shared long-flow queue. The
// paper's study 5 notes "Homa assigns all flows longer than a certain
// size (10KB) to the same priority queue".
const DefaultHomaCutoff = 10 * 1024 * 8 // 10 KB in bits

// Homa approximates the Homa transport (receiver-driven priorities): flows
// are partitioned into strict-priority bands by remaining size — shorter
// flows preempt longer ones, SRPT-style — and flows within a band share
// max-min fairly. Cutoffs are the band boundaries in ascending order; a
// flow with remaining size < Cutoffs[i] lands in band i, everything
// larger in the final band.
type Homa struct {
	Cutoffs []float64 // bits, ascending
	filler  *Filler
	bands   [][]FlowID
}

// NewHoma creates a Homa allocator. Empty cutoffs select the paper's
// single 10 KB boundary (two bands).
func NewHoma(net *Network, cutoffs []float64) *Homa {
	if len(cutoffs) == 0 {
		cutoffs = []float64{DefaultHomaCutoff}
	}
	cs := append([]float64(nil), cutoffs...)
	sort.Float64s(cs)
	return &Homa{
		Cutoffs: cs,
		filler:  NewFiller(net),
		bands:   make([][]FlowID, len(cs)+1),
	}
}

// Name implements Allocator.
func (*Homa) Name() string { return "homa" }

// band returns the strict-priority band of a flow (0 = highest priority)
// by its residual size projected to virtual time now.
func (h *Homa) band(f *Flow, now float64) int {
	r := f.RemainingAt(now)
	for i, c := range h.Cutoffs {
		if r < c {
			return i
		}
	}
	return len(h.Cutoffs)
}

// Allocate implements Allocator: progressive filling per band, highest
// priority first, each band consuming the previous bands' leftovers.
func (h *Homa) Allocate(net *Network) {
	now := net.Now()
	for i := range h.bands {
		h.bands[i] = h.bands[i][:0]
	}
	net.ForEachActive(func(f *Flow) {
		b := h.band(f, now)
		h.bands[b] = append(h.bands[b], f.ID)
	})
	h.filler.Reset(net)
	for _, band := range h.bands {
		h.filler.Run(net, band, FlatClassifier{})
	}
}

// AllocateScoped implements Allocator by declining: bands depend on
// residual size, so a full recompute can legitimately re-rank (and
// re-rate) flows in components the dirty set never touched — a flow
// draining across a cutoff changes its band even though no flow was
// added or removed near it. Scoping would freeze those stale rates.
func (h *Homa) AllocateScoped(*Network, []FlowID) bool { return false }
