package netsim

import (
	"math"
	"math/rand"
	"testing"

	"saba/internal/telemetry"
	"saba/internal/topology"
)

// coreCables enumerates the bidirectional switch-to-switch cables of a
// fabric as [forward, reverse] link-ID pairs, in deterministic order.
// Failing both directions together models a cable pull, the dominant
// datacenter failure mode.
func coreCables(top *topology.Topology) [][]topology.LinkID {
	nodes := top.Nodes()
	reverse := map[[2]topology.NodeID]topology.LinkID{}
	for _, l := range top.Links() {
		reverse[[2]topology.NodeID{l.From, l.To}] = l.ID
	}
	var cables [][]topology.LinkID
	for _, l := range top.Links() {
		if l.From >= l.To {
			continue
		}
		if nodes[l.From].Kind != topology.Switch || nodes[l.To].Kind != topology.Switch {
			continue
		}
		if r, ok := reverse[[2]topology.NodeID{l.To, l.From}]; ok {
			cables = append(cables, []topology.LinkID{l.ID, r})
		}
	}
	return cables
}

// TestDifferentialWithFlaps is the fault-path extension of the
// differential gate: with a seeded link-flap schedule disrupting,
// rerouting, and stalling flows mid-run, scoped recomputation must still
// produce bit-for-bit the completion times of full recomputation, for
// every allocator — and the whole scenario must replay identically.
func TestDifferentialWithFlaps(t *testing.T) {
	allocators := []string{"ideal-maxmin", "fecn", "wfq", "homa", "sincronia", "decentral"}
	for _, name := range allocators {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				fullReg := telemetry.NewRegistry()
				scopedReg := telemetry.NewRegistry()
				replayReg := telemetry.NewRegistry()
				want := runDifferentialScenario(t, name, seed, true, fullReg, true, 0)
				got := runDifferentialScenario(t, name, seed, false, scopedReg, true, 0)
				again := runDifferentialScenario(t, name, seed, false, replayReg, true, 0)
				if len(want) != len(got) || len(want) != len(again) {
					t.Fatalf("seed %d: admission counts differ: full %d, scoped %d, replay %d",
						seed, len(want), len(got), len(again))
				}
				for i := range want {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Errorf("seed %d admission %d: completion %v (full) vs %v (scoped); diff %g",
							seed, i, want[i], got[i], got[i]-want[i])
					}
					if math.Float64bits(got[i]) != math.Float64bits(again[i]) {
						t.Errorf("seed %d admission %d: replay diverged: %v vs %v",
							seed, i, got[i], again[i])
					}
				}
				if scopedReg.Counter("netsim.link_failures").Value() == 0 {
					t.Errorf("seed %d: flap schedule failed no links", seed)
				}
				if scopedReg.Counter("netsim.link_restores").Value() !=
					scopedReg.Counter("netsim.link_failures").Value() {
					t.Errorf("seed %d: restores do not match failures", seed)
				}
			}
		})
	}
}

// TestStallAndResumeOnRestore: cutting a host's only uplink stalls its
// flow at rate zero; restoring the link resumes it, and the completion
// time reflects exactly the outage window — no permanent stall.
func TestStallAndResumeOnRestore(t *testing.T) {
	top := diffFabric(t)
	net := NewNetwork(top)
	reg := telemetry.NewRegistry()
	e := NewEngine(net, NewIdealMaxMin(net))
	e.SetTelemetry(reg)

	hosts := top.Hosts()
	doneAt := -1.0
	// Alone on a 1000 bps fabric the flow runs at 1000: 2000 bits → 2s.
	id, err := e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 2000, Mult: 1},
		func(e *Engine, _ FlowID) { doneAt = e.Now() })
	if err != nil {
		t.Fatal(err)
	}
	uplink := top.OutLinks(hosts[0])[0]
	if err := e.At(1.0, func(e *Engine) {
		if err := e.FailLink(uplink); err != nil {
			t.Errorf("FailLink: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.At(2.0, func(e *Engine) {
		if e.StalledFlows() != 1 {
			t.Errorf("StalledFlows = %d mid-outage, want 1", e.StalledFlows())
		}
		f, err := net.Flow(id)
		if err != nil {
			t.Errorf("Flow(%d): %v", id, err)
			return
		}
		if !f.Stalled() || f.Rate != 0 {
			t.Errorf("stalled flow: Stalled=%v Rate=%g, want true/0", f.Stalled(), f.Rate)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.At(3.0, func(e *Engine) {
		if err := e.RestoreLink(uplink); err != nil {
			t.Errorf("RestoreLink: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// 1s of transfer before the cut (1000 bits), 2s stalled, then the
	// remaining 1000 bits: completion at t=4 exactly.
	if math.Abs(doneAt-4.0) > 1e-9 {
		t.Errorf("completion at %g, want 4.0 (2s outage inserted)", doneAt)
	}
	if e.StalledFlows() != 0 {
		t.Errorf("StalledFlows = %d after restore, want 0", e.StalledFlows())
	}
	if v := reg.Counter("netsim.flow_stalls").Value(); v != 1 {
		t.Errorf("flow_stalls = %d, want 1", v)
	}
	if v := reg.Counter("netsim.flow_resumes").Value(); v != 1 {
		t.Errorf("flow_resumes = %d, want 1", v)
	}
}

// TestRerouteKeepsFlowRunning: failing a middle hop of an inter-pod path
// with a live alternate reroutes the flow immediately — no stall, and the
// flow still completes.
func TestRerouteKeepsFlowRunning(t *testing.T) {
	top := diffFabric(t)
	net := NewNetwork(top)
	reg := telemetry.NewRegistry()
	e := NewEngine(net, NewIdealMaxMin(net))
	e.SetTelemetry(reg)

	hosts := top.Hosts()
	doneAt := -1.0
	id, err := e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[len(hosts)-1], Bits: 2000, Mult: 1},
		func(e *Engine, _ FlowID) { doneAt = e.Now() })
	if err != nil {
		t.Fatal(err)
	}
	var failed topology.LinkID
	if err := e.At(0.5, func(e *Engine) {
		f, err := net.Flow(id)
		if err != nil {
			t.Fatalf("Flow(%d): %v", id, err)
		}
		failed = f.Path[len(f.Path)/2]
		if err := e.FailLink(failed); err != nil {
			t.Fatalf("FailLink: %v", err)
		}
		if e.StalledFlows() != 0 {
			t.Errorf("flow stalled despite a live alternate")
		}
		for _, l := range f.Path {
			if l == failed {
				t.Errorf("rerouted path still crosses failed link %d", l)
			}
			if !top.LinkUp(l) {
				t.Errorf("rerouted path crosses down link %d", l)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if doneAt < 0 {
		t.Fatal("flow never completed after reroute")
	}
	if v := reg.Counter("netsim.flow_reroutes").Value(); v != 1 {
		t.Errorf("flow_reroutes = %d, want 1", v)
	}
	if v := reg.Counter("netsim.flow_stalls").Value(); v != 0 {
		t.Errorf("flow_stalls = %d, want 0", v)
	}
}

// TestEngineFailSwitch exercises switch-level failure end to end: traffic
// across pods survives a mid-run spine failure and completes once (or
// before) the switch returns.
func TestEngineFailSwitch(t *testing.T) {
	top := diffFabric(t)
	net := NewNetwork(top)
	reg := telemetry.NewRegistry()
	e := NewEngine(net, NewIdealMaxMin(net))
	e.SetTelemetry(reg)

	hosts := top.Hosts()
	rng := rand.New(rand.NewSource(17))
	open := map[FlowID]bool{}
	for i := 0; i < 12; i++ {
		src := hosts[rng.Intn(len(hosts)/2)]
		dst := hosts[len(hosts)/2+rng.Intn(len(hosts)/2)]
		id, err := e.AddFlow(FlowSpec{Src: src, Dst: dst, Bits: float64(500 + rng.Intn(3000)), Mult: 1},
			func(e *Engine, id FlowID) { delete(open, id) })
		if err != nil {
			t.Fatal(err)
		}
		open[id] = true
	}
	// Identify a transit switch from one flow's current path.
	var spine topology.NodeID
	for id := range open {
		f, err := net.Flow(id)
		if err != nil {
			t.Fatal(err)
		}
		lk, _ := top.Link(f.Path[len(f.Path)/2])
		spine = lk.From
		break
	}
	if err := e.At(0.4, func(e *Engine) {
		if err := e.FailSwitch(spine); err != nil {
			t.Errorf("FailSwitch(%d): %v", spine, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.At(1.4, func(e *Engine) {
		if err := e.RestoreSwitch(spine); err != nil {
			t.Errorf("RestoreSwitch(%d): %v", spine, err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if len(open) != 0 {
		t.Errorf("%d flows never completed across the switch failure", len(open))
	}
	if e.StalledFlows() != 0 {
		t.Errorf("StalledFlows = %d at end, want 0", e.StalledFlows())
	}
	if reg.Counter("netsim.link_failures").Value() == 0 {
		t.Error("FailSwitch recorded no link failures")
	}
	if reg.Counter("netsim.link_restores").Value() != reg.Counter("netsim.link_failures").Value() {
		t.Error("restores do not match failures after RestoreSwitch")
	}
}
