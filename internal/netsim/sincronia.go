package netsim

import (
	"slices"

	"saba/internal/topology"
)

// Sincronia approximates the clairvoyant coflow scheduler of Agarwal et
// al. (SIGCOMM'18), the paper's study 6 comparison. It orders all
// unfinished coflows with the BSSI greedy rule (Bottleneck-Select-
// Scale-Iterate): repeatedly find the most-bottlenecked port, pick the
// coflow with the largest remaining demand on it, and place that coflow
// *last*; the resulting order is enforced by strict priority, with
// per-flow max-min inside each coflow and non-coflow traffic lowest.
// Flow sizes are assumed known a priori, exactly as Sincronia requires.
type Sincronia struct {
	filler *Filler

	// Scratch reused across allocations. Per-link accumulators are dense
	// slices guarded by epoch marks instead of maps, and demand sums are
	// always accumulated in ascending coflow order over each coflow's
	// flows in ID order — so the float totals, and the tie-breaks they
	// feed, are deterministic run to run.
	flows    map[CoflowID][]FlowID
	loose    []FlowID
	live     []CoflowID     // sorted; parallel to vecs/placed
	vecs     [][]linkDemand // vecs[i] = demand vector of live[i]
	placed   []bool
	order    []CoflowID
	demandAt []float64 // scratch: per-link demand of the current coflow
	totalAt  []float64 // per-link demand over unplaced coflows
	links    []topology.LinkID
	linkMark []int64
	epoch    int64
}

// linkDemand is one (link, bits) entry of a coflow's demand vector.
type linkDemand struct {
	link topology.LinkID
	bits float64
}

// NewSincronia creates the coflow allocator.
func NewSincronia(net *Network) *Sincronia {
	return &Sincronia{
		filler: NewFiller(net),
		flows:  map[CoflowID][]FlowID{},
	}
}

// Name implements Allocator.
func (*Sincronia) Name() string { return "sincronia" }

// Allocate implements Allocator.
func (s *Sincronia) Allocate(net *Network) {
	// Gather flows per coflow. Buckets left empty by the previous
	// allocation belong to finished coflows; drop them so the map stays
	// proportional to the live set.
	for c, fs := range s.flows {
		if len(fs) == 0 {
			delete(s.flows, c)
		} else {
			s.flows[c] = fs[:0]
		}
	}
	s.loose = s.loose[:0]
	net.ForEachActive(func(f *Flow) {
		if f.Coflow == NoCoflow {
			s.loose = append(s.loose, f.ID)
			return
		}
		s.flows[f.Coflow] = append(s.flows[f.Coflow], f.ID)
	})
	s.live = s.live[:0]
	for c, fs := range s.flows {
		if len(fs) > 0 {
			s.live = append(s.live, c)
		}
	}
	slices.Sort(s.live)

	s.buildDemands(net)
	order := s.bssiOrder()

	// Strict priority in coflow order, residual capacity flowing down.
	s.filler.Reset(net)
	for _, c := range order {
		s.filler.Run(net, s.flows[c], FlatClassifier{})
	}
	s.filler.Run(net, s.loose, FlatClassifier{})
}

// AllocateScoped implements Allocator by declining: BSSI is a single
// total order over every unfinished coflow, computed from global
// bottleneck demands. Adding or draining one coflow can reshuffle the
// priority of coflows in entirely disjoint components, so no dirty set
// smaller than the whole network is sound.
func (s *Sincronia) AllocateScoped(*Network, []FlowID) bool { return false }

// buildDemands computes each live coflow's per-link demand vector and
// the cross-coflow per-link totals. Demands are residual sizes projected
// to the current virtual time (Remaining itself is materialized lazily).
func (s *Sincronia) buildDemands(net *Network) {
	now := net.Now()
	for len(s.demandAt) < len(net.linkFlows) {
		s.demandAt = append(s.demandAt, 0)
		s.totalAt = append(s.totalAt, 0)
		s.linkMark = append(s.linkMark, 0)
	}
	s.links = s.links[:0]
	s.epoch++
	runEp := s.epoch
	for len(s.vecs) < len(s.live) {
		s.vecs = append(s.vecs, nil)
	}
	for i, c := range s.live {
		s.epoch++
		ep := s.epoch
		d := s.vecs[i][:0]
		for _, id := range s.flows[c] {
			f := &net.flows[id]
			r := f.RemainingAt(now)
			for _, l := range f.Path {
				if s.linkMark[l] != ep {
					if s.linkMark[l] < runEp {
						// First demand on this link this allocation.
						s.totalAt[l] = 0
						s.links = append(s.links, l)
					}
					s.linkMark[l] = ep
					s.demandAt[l] = 0
					d = append(d, linkDemand{link: l})
				}
				s.demandAt[l] += r
			}
		}
		for j := range d {
			d[j].bits = s.demandAt[d[j].link]
			s.totalAt[d[j].link] += d[j].bits
		}
		s.vecs[i] = d
	}
	slices.Sort(s.links)
}

// bssiOrder returns unfinished coflows from first (highest priority) to
// last, built back-to-front per BSSI. Per-link totals over the unplaced
// coflows are maintained incrementally: placing a coflow subtracts its
// demand vector instead of re-summing everything each position.
func (s *Sincronia) bssiOrder() []CoflowID {
	n := len(s.live)
	s.order = append(s.order[:0], s.live...)
	s.placed = s.placed[:0]
	for i := 0; i < n; i++ {
		s.placed = append(s.placed, false)
	}
	for pos := n - 1; pos >= 0; pos-- {
		// Most-bottlenecked port over unplaced coflows; ties prefer the
		// lowest link (ascending scan, strict >).
		var bott topology.LinkID = -1
		best := -1.0
		for _, l := range s.links {
			if d := s.totalAt[l]; d > best {
				bott, best = l, d
			}
		}
		// Coflow with the largest demand on that port goes last; ties
		// prefer the highest coflow ID (ascending scan, >=). Coflows with
		// no demand on the bottleneck are preferred earlier (they are
		// chosen only when everything else is placed).
		pick := -1
		pickD := -1.0
		for i := 0; i < n; i++ {
			if s.placed[i] {
				continue
			}
			d := 0.0
			for _, ld := range s.vecs[i] {
				if ld.link == bott {
					d = ld.bits
					break
				}
			}
			if d >= pickD {
				pick, pickD = i, d
			}
		}
		s.order[pos] = s.live[pick]
		s.placed[pick] = true
		for _, ld := range s.vecs[pick] {
			s.totalAt[ld.link] -= ld.bits
		}
	}
	return s.order
}
