package netsim

import (
	"sort"

	"saba/internal/topology"
)

// Sincronia approximates the clairvoyant coflow scheduler of Agarwal et
// al. (SIGCOMM'18), the paper's study 6 comparison. It orders all
// unfinished coflows with the BSSI greedy rule (Bottleneck-Select-
// Scale-Iterate): repeatedly find the most-bottlenecked port, pick the
// coflow with the largest remaining demand on it, and place that coflow
// *last*; the resulting order is enforced by strict priority, with
// per-flow max-min inside each coflow and non-coflow traffic lowest.
// Flow sizes are assumed known a priori, exactly as Sincronia requires.
type Sincronia struct {
	filler *Filler

	// scratch
	demand map[CoflowID]map[topology.LinkID]float64
	flows  map[CoflowID][]FlowID
	loose  []FlowID
}

// NewSincronia creates the coflow allocator.
func NewSincronia(net *Network) *Sincronia {
	return &Sincronia{
		filler: NewFiller(net),
		demand: map[CoflowID]map[topology.LinkID]float64{},
		flows:  map[CoflowID][]FlowID{},
	}
}

// Name implements Allocator.
func (*Sincronia) Name() string { return "sincronia" }

// Allocate implements Allocator.
func (s *Sincronia) Allocate(net *Network) {
	// Gather per-coflow state.
	clear(s.demand)
	clear(s.flows)
	s.loose = s.loose[:0]
	net.ForEachActive(func(f *Flow) {
		if f.Coflow == NoCoflow {
			s.loose = append(s.loose, f.ID)
			return
		}
		s.flows[f.Coflow] = append(s.flows[f.Coflow], f.ID)
		d := s.demand[f.Coflow]
		if d == nil {
			d = map[topology.LinkID]float64{}
			s.demand[f.Coflow] = d
		}
		for _, l := range f.Path {
			d[l] += f.Remaining
		}
	})

	order := s.bssiOrder()

	// Strict priority in coflow order, residual capacity flowing down.
	s.filler.Reset(net)
	for _, c := range order {
		s.filler.Run(net, s.flows[c], FlatClassifier{})
	}
	s.filler.Run(net, s.loose, FlatClassifier{})
}

// bssiOrder returns unfinished coflows from first (highest priority) to
// last, built back-to-front per BSSI.
func (s *Sincronia) bssiOrder() []CoflowID {
	// Deterministic iteration: sort coflow IDs.
	var live []CoflowID
	for c := range s.demand {
		live = append(live, c)
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })

	order := make([]CoflowID, len(live))
	pos := len(live) - 1
	remaining := make(map[CoflowID]bool, len(live))
	for _, c := range live {
		remaining[c] = true
	}

	for pos >= 0 {
		// Most-bottlenecked port over remaining coflows.
		total := map[topology.LinkID]float64{}
		for c := range remaining {
			for l, d := range s.demand[c] {
				total[l] += d
			}
		}
		var bott topology.LinkID = -1
		best := -1.0
		for l, d := range total {
			if d > best || (d == best && l < bott) {
				bott, best = l, d
			}
		}
		// Coflow with the largest demand on that port goes last. Coflows
		// with no demand on the bottleneck are preferred earlier (they are
		// chosen only when everything else is placed).
		var pick CoflowID = -1
		pickD := -1.0
		for _, c := range live {
			if !remaining[c] {
				continue
			}
			d := s.demand[c][bott]
			if d > pickD || (d == pickD && c > pick) {
				pick, pickD = c, d
			}
		}
		order[pos] = pick
		pos--
		delete(remaining, pick)
	}
	return order
}
