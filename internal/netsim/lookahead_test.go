package netsim

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"saba/internal/telemetry"
	"saba/internal/topology"
)

// runPodLocal drives a seeded workload that stays overwhelmingly inside
// single pods — the shape lookahead windows exist for — plus one
// cross-pod flow mid-run so the coupling counters are seen to gate
// windows off and back on. Returns completion times in admission order.
func runPodLocal(t *testing.T, seed int64, shards int, pure bool, reg *telemetry.Registry, reshard bool) []float64 {
	t.Helper()
	top := diffFabric(t)
	part := top.Partition()
	net := NewNetwork(top)
	e := NewEngine(net, NewIdealMaxMin(net))
	e.SetTelemetry(reg)
	e.SetShards(shards)
	e.SetPureCallbacks(pure)

	rng := rand.New(rand.NewSource(seed))
	podHosts := make([][]topology.NodeID, part.NumParts())
	for p := range podHosts {
		podHosts[p] = part.HostsIn(p)
	}

	var (
		done   []float64
		ids    []FlowID
		idxOf  = map[FlowID]int{}
		record = func(e *Engine, id FlowID) {
			done[idxOf[id]] = e.Now()
		}
	)
	admit := func(at float64, specs []FlowSpec) {
		if err := e.At(at, func(e *Engine) {
			newIDs, err := e.AddFlows(specs, record)
			if err != nil {
				panic(err)
			}
			for _, id := range newIDs {
				idxOf[id] = len(ids)
				ids = append(ids, id)
				done = append(done, -1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}

	const waves = 24
	for w := 0; w < waves; w++ {
		at := float64(w) * 0.25
		batch := 2 + rng.Intn(5)
		specs := make([]FlowSpec, batch)
		for i := range specs {
			hs := podHosts[rng.Intn(len(podHosts))]
			src := hs[rng.Intn(len(hs))]
			dst := hs[rng.Intn(len(hs))]
			for dst == src {
				dst = hs[rng.Intn(len(hs))]
			}
			specs[i] = FlowSpec{Src: src, Dst: dst, Bits: float64((1 + rng.Intn(4000)) * 64)}
		}
		admit(at, specs)
	}
	// One short cross-pod flow couples both pods for its lifetime:
	// windows must stop while it is attached and resume after it
	// completes (small enough to retire long before the run ends).
	admit(waves/3*0.25+0.01, []FlowSpec{{
		Src: podHosts[0][0], Dst: podHosts[1][0], Bits: 2e3,
	}})
	if reshard {
		for i, n := range []int{5, 2, -1} {
			n := n
			if err := e.At(0.8+0.9*float64(i), func(e *Engine) { e.SetShards(n) }); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	return done
}

// The lookahead gate: pod-local traffic must engage windows (several
// completions per barrier round) and stay bit-for-bit identical to the
// serial engine.
func TestLookaheadPodLocalMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		serialReg := telemetry.NewRegistry()
		shardReg := telemetry.NewRegistry()
		want := runPodLocal(t, seed, 0, true, serialReg, false)
		got := runPodLocal(t, seed, -1, true, shardReg, false)
		assertSameVector(t, "pod-local", want, got)
		rounds := shardReg.Counter("netsim.lookahead_rounds").Value()
		events := shardReg.Counter("netsim.lookahead_completions").Value()
		if rounds == 0 {
			t.Fatalf("seed %d: pod-local workload never entered a lookahead window", seed)
		}
		if events <= rounds {
			t.Errorf("seed %d: %d lookahead completions over %d rounds; windows should retire several per round",
				seed, events, rounds)
		}
	}
}

// Without the purity declaration, registered completion callbacks must
// keep lookahead off — and the result must still match serial through
// the plain barrier path.
func TestLookaheadGatedOffByImpureCallbacks(t *testing.T) {
	serialReg := telemetry.NewRegistry()
	shardReg := telemetry.NewRegistry()
	want := runPodLocal(t, 1, 0, false, serialReg, false)
	got := runPodLocal(t, 1, -1, false, shardReg, false)
	assertSameVector(t, "impure", want, got)
	if rounds := shardReg.Counter("netsim.lookahead_rounds").Value(); rounds != 0 {
		t.Fatalf("lookahead ran %d rounds despite undeclared callbacks", rounds)
	}
}

// Stress the persistent-worker runtime with real parallelism: windows,
// barrier rounds, and mid-run reshards (worker-pool teardown and
// rebuild) under GOMAXPROCS=4, checked bit-for-bit against serial. Run
// with -race in CI.
func TestLookaheadReshardStressParallel(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	for seed := int64(1); seed <= 2; seed++ {
		serialReg := telemetry.NewRegistry()
		shardReg := telemetry.NewRegistry()
		want := runPodLocal(t, seed, 0, true, serialReg, false)
		got := runPodLocal(t, seed, -1, true, shardReg, true)
		assertSameVector(t, "reshard stress", want, got)
	}
}

// Satellite regression: the per-shard flows_active and
// completion_heap_size gauges must drain to zero when their shard
// retires — SetShards shrinking the count or dropping to serial.
func TestShardGaugesDrainOnRetire(t *testing.T) {
	top := diffFabric(t)
	part := top.Partition()
	net := NewNetwork(top)
	e := NewEngine(net, NewIdealMaxMin(net))
	reg := telemetry.NewRegistry()
	e.SetTelemetry(reg)
	for p := 0; p < part.NumParts(); p++ {
		hs := part.HostsIn(p)
		for i := 0; i < 3; i++ {
			if _, err := e.AddFlow(FlowSpec{Src: hs[i], Dst: hs[i+3], Bits: 1e9}, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	gauge := func(name string, shard string) float64 {
		return reg.Gauge(telemetry.Label(name, "engine", e.engineID, "shard", shard)).Value()
	}
	e.SetShards(3) // 2 pods folded onto 3 shards: shard 2 owns no pod
	if got := gauge("netsim.flows_active", "0"); got != 3 {
		t.Fatalf("shard 0 flows_active = %v, want 3", got)
	}
	if got := gauge("netsim.flows_active", "1"); got != 3 {
		t.Fatalf("shard 1 flows_active = %v, want 3", got)
	}
	// Project completions onto the shard heaps with one bounded step.
	stop := false
	if err := e.At(1e-6, func(*Engine) { stop = true }); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(math.Inf(1), func() bool { return stop }); err != nil {
		t.Fatal(err)
	}
	if got := gauge("netsim.completion_heap_size", "0"); got != 3 {
		t.Fatalf("shard 0 heap gauge = %v, want 3", got)
	}

	e.SetShards(2) // shard 2 retires; 0 and 1 rebind
	if got := gauge("netsim.flows_active", "2"); got != 0 {
		t.Errorf("retired shard 2 flows_active = %v, want 0", got)
	}
	if got := gauge("netsim.completion_heap_size", "2"); got != 0 {
		t.Errorf("retired shard 2 heap gauge = %v, want 0", got)
	}
	if got := gauge("netsim.flows_active", "0") + gauge("netsim.flows_active", "1"); got != 6 {
		t.Errorf("surviving shards' flows_active sum = %v, want 6", got)
	}

	e.SetShards(1) // serial: every shard gauge drains
	for _, shard := range []string{"0", "1", "2"} {
		if got := gauge("netsim.flows_active", shard); got != 0 {
			t.Errorf("serial mode: shard %s flows_active = %v, want 0", shard, got)
		}
		if got := gauge("netsim.completion_heap_size", shard); got != 0 {
			t.Errorf("serial mode: shard %s heap gauge = %v, want 0", shard, got)
		}
	}
}

// Satellite regression: splitDirty must be allocation-free at steady
// state — the scratch (component arrays, seen marks, stack) is grown
// once and reused for the run's remaining recomputes.
func TestSplitDirtySteadyStateAllocFree(t *testing.T) {
	top := diffFabric(t)
	net := NewNetwork(top)
	e := NewEngine(net, NewIdealMaxMin(net))
	e.SetTelemetry(telemetry.NewRegistry())
	e.SetShards(-1)
	hosts := top.Hosts()
	var paths [][]topology.LinkID
	for i := 0; i < 12; i++ {
		id, err := e.AddFlow(FlowSpec{Src: hosts[i], Dst: hosts[(i+2)%len(hosts)], Bits: 1e9}, nil)
		if err != nil {
			t.Fatal(err)
		}
		f, _ := net.Flow(id)
		paths = append(paths, f.Path)
	}
	seed := func() {
		e.seedLinks = e.seedLinks[:0]
		for _, p := range paths {
			e.seedLinks = append(e.seedLinks, p...)
		}
	}
	seed()
	e.splitDirty() // warm the scratch
	allocs := testing.AllocsPerRun(100, func() {
		seed()
		e.splitDirty()
	})
	if allocs != 0 {
		t.Fatalf("splitDirty allocates %v times per call at steady state, want 0", allocs)
	}
}
