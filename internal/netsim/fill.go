package netsim

import (
	"math"
	"sync/atomic"

	"saba/internal/topology"
)

// markEpoch issues process-unique epochs for the mark-array pattern the
// allocators use ("was this link/app seen during the current pass?"):
// a mark array holds the epoch of its last visit and a slot is fresh
// iff it equals the pass's epoch. Drawing epochs from one global atomic
// counter makes every pass's epoch unique across all allocator
// instances and goroutines, which is what lets shard clones share mark
// arrays (cloneScoped): a stale value written by another clone can
// never collide with a fresh epoch. Epoch values never influence
// allocation arithmetic, so global sequencing cannot perturb results.
var markEpoch atomic.Int64

// LocalRate is the rate assigned to flows whose source and destination are
// the same host (they never touch the network).
const LocalRate = 1e15 // bits/sec

// ClassSpec describes one scheduling class at a link.
//
// PerFlow=true means every flow in the class carries Weight on its own
// (per-flow max-min: the class contributes Weight × count to the link's
// demand). PerFlow=false means the class has a fixed aggregate Weight
// split equally among its backlogged flows (a WFQ queue).
type ClassSpec struct {
	Weight  float64
	PerFlow bool
}

// Classifier maps flows to scheduling classes per link. Implementations
// encode the arbitration discipline: per-flow fairness, WFQ queues, etc.
type Classifier interface {
	// LinkClasses returns the class table of a link. The result must be
	// stable for the duration of one Fill run.
	LinkClasses(l topology.LinkID) []ClassSpec
	// FlowClass returns the index (into LinkClasses(l)) of the class that
	// flow f occupies at link l.
	FlowClass(f *Flow, l topology.LinkID) int
}

// FlatClassifier implements plain per-flow max-min: one per-flow class of
// weight 1 at every link.
type FlatClassifier struct{}

var flatClasses = []ClassSpec{{Weight: 1, PerFlow: true}}

// LinkClasses returns the single per-flow class.
func (FlatClassifier) LinkClasses(topology.LinkID) []ClassSpec { return flatClasses }

// FlowClass puts every flow in class 0.
func (FlatClassifier) FlowClass(*Flow, topology.LinkID) int { return 0 }

// Filler computes max-min-style rate allocations via progressive filling
// (water-filling) generalized to hierarchical per-link classes: in each
// round every contended link advertises a fair share per class, every
// unfixed flow takes the minimum entitlement along its path, and the
// flows at the global minimum are frozen there. State is reused across
// calls to avoid per-allocation garbage.
type Filler struct {
	capRem  []float64
	sumW    []float64 // weighted demand of unfixed flows per link
	cnt     [][]int32 // per link, per class: unfixed-flow count
	touched []topology.LinkID
	inRun   []bool   // per link: appears in the current Run
	pending []FlowID // flows registered in the current run
	freeze  []FlowID // per-round scratch: flows of the bottleneck class

	// The bottleneck search keeps one cached minimum per link — its
	// smallest per-class unit entitlement — so each round scans one float
	// per touched link instead of every class of every link, and a freeze
	// refreshes only the links the frozen flows cross. Scanning keyv in
	// registration order with a strict < reproduces the exhaustive scan's
	// pick (including exact ties) bit for bit.
	keyv     []float64 // per touched index: cached min unit entitlement
	bestc    []int32   // per touched index: arg-min class; -1 = no demand
	cntFlat  []int32   // per link: unfixed-flow count (flat fast path)
	tidx     []int32   // per link: index into touched (valid while inRun)
	mark     []int64   // per link: last freeze round that refreshed its key
	affected []topology.LinkID

	// additive makes fix() add to existing rates instead of overwriting —
	// the WFQ top-up passes raise already-allocated flows using residual
	// capacity.
	additive bool
}

// NewFiller creates a Filler sized for the network's link count.
func NewFiller(net *Network) *Filler {
	nl := len(net.Topology().Links())
	return &Filler{
		capRem:  make([]float64, nl),
		sumW:    make([]float64, nl),
		cnt:     make([][]int32, nl),
		cntFlat: make([]int32, nl),
		inRun:   make([]bool, nl),
		tidx:    make([]int32, nl),
		mark:    make([]int64, nl),
	}
}

// cloneScoped returns a Filler for concurrent scoped runs that SHARES
// the parent's per-link arrays (capRem, sumW, cnt, cntFlat, inRun,
// tidx, mark) and owns only the per-run compact scratch. Sharing is
// safe because every concurrent caller operates on a distinct
// link-connected component — two components share no link by
// construction, so element writes to the per-link arrays never
// collide — and pass freshness is tracked through globally unique
// markEpoch values, so stale marks left by another clone can never
// alias a live pass. This is what the sharded engine hands each
// allocator clone (shard.go): clones cost O(1) memory instead of
// re-allocating (and re-growing) seven link-sized arrays each.
func (fl *Filler) cloneScoped() *Filler {
	return &Filler{
		capRem:   fl.capRem,
		sumW:     fl.sumW,
		cnt:      fl.cnt,
		cntFlat:  fl.cntFlat,
		inRun:    fl.inRun,
		tidx:     fl.tidx,
		mark:     fl.mark,
		additive: fl.additive,
	}
}

// Reset initializes remaining capacities from the network (honoring
// overrides). Call once per allocation epoch, before the first Run.
func (fl *Filler) Reset(net *Network) {
	for i := range fl.capRem {
		fl.capRem[i] = net.Capacity(topology.LinkID(i))
	}
}

// ResetFor initializes remaining capacities for exactly the links crossed
// by the given flows — the scoped equivalent of Reset. When ids is a
// union of link-connected components (so no other flow touches those
// links) a subsequent Run over ids reads only the links reset here,
// making the allocation epoch O(Σ path length) instead of O(links).
func (fl *Filler) ResetFor(net *Network, ids []FlowID) {
	for _, id := range ids {
		f := &net.flows[id]
		if !f.active {
			continue
		}
		for _, l := range f.Path {
			fl.capRem[l] = net.Capacity(l)
		}
	}
}

// Run allocates rates for the given flows against the remaining
// capacities, decrementing them so subsequent Runs see only the leftover
// (strict-priority composition). Flows not in ids are ignored entirely;
// their demand must already be reflected in capRem by a previous Run.
func (fl *Filler) Run(net *Network, ids []FlowID, cls Classifier) {
	if len(ids) == 0 {
		return
	}
	if _, flat := cls.(FlatClassifier); flat {
		// The four flat disciplines dominate simulation time; the
		// specialized loop below computes bit-identical results (single
		// class of weight 1, so every float expression degenerates to the
		// same operations) without interface dispatch or per-class state.
		fl.runFlat(net, ids)
		return
	}
	// Register per-link class occupancy for this run.
	fl.touched = fl.touched[:0]
	fl.pending = fl.pending[:0]
	for _, id := range ids {
		f := &net.flows[id]
		if !f.active {
			continue
		}
		if f.stalled {
			// Detached by link failure with no live path: transmits
			// nothing until the Engine re-attaches it.
			f.Rate = 0
			continue
		}
		if len(f.Path) == 0 {
			f.Rate = LocalRate
			continue
		}
		if !fl.additive {
			f.Rate = 0
		}
		f.inRun = true
		fl.pending = append(fl.pending, id)
		for _, l := range f.Path {
			if !fl.inRun[l] {
				fl.inRun[l] = true
				fl.tidx[l] = int32(len(fl.touched))
				fl.touched = append(fl.touched, l)
				nc := len(cls.LinkClasses(l))
				if cap(fl.cnt[l]) < nc {
					fl.cnt[l] = make([]int32, nc)
				} else {
					fl.cnt[l] = fl.cnt[l][:nc]
					for i := range fl.cnt[l] {
						fl.cnt[l][i] = 0
					}
				}
			}
			fl.cnt[l][cls.FlowClass(f, l)] += int32(f.Mult)
		}
	}
	for _, l := range fl.touched {
		fl.sumW[l] = fl.demand(l, cls)
	}

	// Generalized water-filling over (link, class) groups. A flow's
	// per-connection entitlement is the minimum over its path of the
	// link's per-class unit share: share_l × W_q (per-flow class) or
	// share_l × W_q / count_q (WFQ queue), with share_l = capRem_l /
	// weighted demand_l and count_q weighted by connection multiplicity;
	// the flow's rate is that unit entitlement times its Mult. The key
	// observation making this fast: the globally minimal unit entitlement
	// is attained by the (link, class) pair minimizing the per-class
	// share, and *every* unfixed flow in that pair has exactly that unit
	// entitlement (it crosses the pair, so it cannot be higher; the pair
	// is the global minimum, so it cannot be lower). Each round therefore
	// scans the per-link cached minima, freezes a whole class at once,
	// and re-keys only the links the frozen flows cross.
	fl.keyv = fl.keyv[:0]
	fl.bestc = fl.bestc[:0]
	for _, l := range fl.touched {
		key, q := fl.linkKey(l, cls)
		fl.keyv = append(fl.keyv, key)
		fl.bestc = append(fl.bestc, int32(q))
	}
	remaining := len(fl.pending)
	for remaining > 0 {
		best := math.Inf(1)
		ti := -1
		for i, key := range fl.keyv {
			if key < best {
				best, ti = key, i
			}
		}
		if ti < 0 {
			break // no demand left (cannot happen while remaining > 0)
		}
		bl := fl.touched[ti]
		bc := int(fl.bestc[ti])
		// Collect then freeze the bottleneck class (fix mutates counters).
		fl.freeze = fl.freeze[:0]
		for _, fid := range net.linkFlows[bl] {
			f := &net.flows[fid]
			if f.active && f.inRun && cls.FlowClass(f, bl) == bc {
				fl.freeze = append(fl.freeze, fid)
			}
		}
		ep := markEpoch.Add(1)
		fl.affected = fl.affected[:0]
		for _, fid := range fl.freeze {
			f := &net.flows[fid]
			fl.fix(f, best*float64(f.Mult), cls)
			remaining--
			for _, l := range f.Path {
				if fl.mark[l] != ep {
					fl.mark[l] = ep
					fl.affected = append(fl.affected, l)
				}
			}
		}
		if len(fl.freeze) == 0 {
			break // inconsistent counters; avoid spinning
		}
		for _, l := range fl.affected {
			ati := int(fl.tidx[l])
			key, q := fl.linkKey(l, cls)
			fl.keyv[ati], fl.bestc[ati] = key, int32(q)
		}
	}

	// Clear run markers.
	for _, l := range fl.touched {
		fl.inRun[l] = false
	}
	if remaining > 0 {
		for _, id := range fl.pending {
			net.flows[id].inRun = false
		}
	}
}

// runFlat is Run specialized to FlatClassifier: per-flow max-min with one
// weight-1 class per link. cnt/demand/linkKey collapse to a single
// per-link connection count, and a link's key is capRem/count directly
// (share × weight 1.0 and weight-1 demand sums are bitwise identical to
// the generic expressions).
func (fl *Filler) runFlat(net *Network, ids []FlowID) {
	fl.touched = fl.touched[:0]
	fl.pending = fl.pending[:0]
	for _, id := range ids {
		f := &net.flows[id]
		if !f.active {
			continue
		}
		if f.stalled {
			f.Rate = 0
			continue
		}
		if len(f.Path) == 0 {
			f.Rate = LocalRate
			continue
		}
		if !fl.additive {
			f.Rate = 0
		}
		f.inRun = true
		fl.pending = append(fl.pending, id)
		for _, l := range f.Path {
			if !fl.inRun[l] {
				fl.inRun[l] = true
				fl.tidx[l] = int32(len(fl.touched))
				fl.touched = append(fl.touched, l)
				fl.cntFlat[l] = 0
			}
			fl.cntFlat[l] += int32(f.Mult)
		}
	}
	fl.keyv = fl.keyv[:0]
	for _, l := range fl.touched {
		n := fl.cntFlat[l]
		fl.sumW[l] = float64(n)
		if n <= 0 {
			fl.keyv = append(fl.keyv, math.Inf(1))
			continue
		}
		c := fl.capRem[l]
		if c < 0 {
			c = 0
		}
		fl.keyv = append(fl.keyv, c/float64(n))
	}
	remaining := len(fl.pending)
	for remaining > 0 {
		best := math.Inf(1)
		ti := -1
		for i, key := range fl.keyv {
			if key < best {
				best, ti = key, i
			}
		}
		if ti < 0 {
			break // no demand left (cannot happen while remaining > 0)
		}
		bl := fl.touched[ti]
		fl.freeze = fl.freeze[:0]
		for _, fid := range net.linkFlows[bl] {
			f := &net.flows[fid]
			if f.active && f.inRun {
				fl.freeze = append(fl.freeze, fid)
			}
		}
		ep := markEpoch.Add(1)
		fl.affected = fl.affected[:0]
		for _, fid := range fl.freeze {
			f := &net.flows[fid]
			rate := best * float64(f.Mult)
			if fl.additive {
				f.Rate += rate
			} else {
				f.Rate = rate
			}
			f.inRun = false
			remaining--
			for _, l := range f.Path {
				r := fl.capRem[l] - rate
				if r < 0 {
					r = 0
				}
				fl.capRem[l] = r
				fl.cntFlat[l] -= int32(f.Mult)
				fl.sumW[l] -= 1 * float64(f.Mult)
				if fl.mark[l] != ep {
					fl.mark[l] = ep
					fl.affected = append(fl.affected, l)
				}
			}
		}
		if len(fl.freeze) == 0 {
			break // inconsistent counters; avoid spinning
		}
		for _, l := range fl.affected {
			ati := int(fl.tidx[l])
			n := fl.cntFlat[l]
			if n <= 0 || fl.sumW[l] <= 1e-12 {
				fl.keyv[ati] = math.Inf(1)
				continue
			}
			c := fl.capRem[l]
			if c < 0 {
				c = 0
			}
			fl.keyv[ati] = c / fl.sumW[l]
		}
	}
	for _, l := range fl.touched {
		fl.inRun[l] = false
	}
	if remaining > 0 {
		for _, id := range fl.pending {
			net.flows[id].inRun = false
		}
	}
}

// fix assigns the final rate to f and removes its demand from every link
// it crosses, maintaining the weighted-demand sums incrementally.
func (fl *Filler) fix(f *Flow, rate float64, cls Classifier) {
	if fl.additive {
		f.Rate += rate
	} else {
		f.Rate = rate
	}
	f.inRun = false
	for _, l := range f.Path {
		fl.capRem[l] -= rate
		if fl.capRem[l] < 0 {
			fl.capRem[l] = 0
		}
		c := cls.FlowClass(f, l)
		fl.cnt[l][c] -= int32(f.Mult)
		spec := cls.LinkClasses(l)[c]
		if spec.PerFlow {
			fl.sumW[l] -= spec.Weight * float64(f.Mult)
		} else if fl.cnt[l][c] <= 0 {
			fl.sumW[l] -= spec.Weight
		}
	}
}

// linkKey returns a link's minimum per-class unit entitlement and the
// class attaining it (ties prefer the lowest class, matching an
// ascending scan), or (+Inf, -1) when the link has no unfixed demand —
// the sentinel keeps spent links out of the bottleneck scan for free.
func (fl *Filler) linkKey(l topology.LinkID, cls Classifier) (float64, int) {
	w := fl.sumW[l]
	if w <= 1e-12 {
		return math.Inf(1), -1
	}
	c := fl.capRem[l]
	if c < 0 {
		c = 0
	}
	share := c / w
	specs := cls.LinkClasses(l)
	best := -1.0
	bq := -1
	for q, n := range fl.cnt[l] {
		if n <= 0 {
			continue
		}
		ent := share * specs[q].Weight
		if !specs[q].PerFlow {
			ent /= float64(n)
		}
		if bq < 0 || ent < best {
			best, bq = ent, q
		}
	}
	if bq < 0 {
		return math.Inf(1), -1
	}
	return best, bq
}

// demand returns the weighted demand of unfixed run-flows at link l.
func (fl *Filler) demand(l topology.LinkID, cls Classifier) float64 {
	specs := cls.LinkClasses(l)
	w := 0.0
	for c, n := range fl.cnt[l] {
		if n <= 0 {
			continue
		}
		if specs[c].PerFlow {
			w += specs[c].Weight * float64(n)
		} else {
			w += specs[c].Weight
		}
	}
	return w
}
