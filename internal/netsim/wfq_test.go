package netsim

import (
	"math"
	"testing"

	"saba/internal/topology"
)

// configurePort sets a 2-queue 75/25 config on every link of the testbed,
// mapping PL 0 → queue 0 (weight w0) and PL 1 → queue 1 (weight w1).
func configureAllPorts(t *testing.T, net *Network, w *WFQ, w0, w1 float64) {
	t.Helper()
	for _, l := range net.Topology().Links() {
		err := w.Configure(l.ID, PortConfig{
			Weights: []float64{w0, w1},
			PLQueue: map[int]int{0: 0, 1: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWFQSkewedSplit(t *testing.T) {
	// The paper's §2.2 skewed experiment: 75/25 split between two apps
	// sharing one congested downlink.
	net, hosts := testbed(t, 3)
	w := NewWFQ(net)
	configureAllPorts(t, net, w, 0.75, 0.25)
	lr, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, App: 0, PL: 0})
	pr, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, App: 1, PL: 1})
	w.Allocate(net)
	if r := rate(t, net, lr); math.Abs(r-75) > 1e-6 {
		t.Errorf("PL0 rate = %g, want 75", r)
	}
	if r := rate(t, net, pr); math.Abs(r-25) > 1e-6 {
		t.Errorf("PL1 rate = %g, want 25", r)
	}
}

func TestWFQWithinQueueEqualSplit(t *testing.T) {
	net, hosts := testbed(t, 4)
	w := NewWFQ(net)
	configureAllPorts(t, net, w, 0.5, 0.5)
	// Two flows in queue 0, one in queue 1, all into h3.
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[3], Bits: 1e6, PL: 0})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[3], Bits: 1e6, PL: 0})
	c, _ := net.AddFlow(0, FlowSpec{Src: hosts[2], Dst: hosts[3], Bits: 1e6, PL: 1})
	w.Allocate(net)
	if r := rate(t, net, a); math.Abs(r-25) > 1e-6 {
		t.Errorf("queue0 flow a = %g, want 25", r)
	}
	if r := rate(t, net, b); math.Abs(r-25) > 1e-6 {
		t.Errorf("queue0 flow b = %g, want 25", r)
	}
	if r := rate(t, net, c); math.Abs(r-50) > 1e-6 {
		t.Errorf("queue1 flow c = %g, want 50", r)
	}
}

func TestWFQWorkConserving(t *testing.T) {
	// Queue 1 has no flows: queue 0's flows must absorb the full link
	// (paper §5.2: WFQ is work-conserving).
	net, hosts := testbed(t, 3)
	w := NewWFQ(net)
	configureAllPorts(t, net, w, 0.25, 0.75)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, PL: 0})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, PL: 0})
	w.Allocate(net)
	if r := rate(t, net, a); math.Abs(r-50) > 1e-6 {
		t.Errorf("flow a = %g, want 50 (work conservation)", r)
	}
	if r := rate(t, net, b); math.Abs(r-50) > 1e-6 {
		t.Errorf("flow b = %g, want 50", r)
	}
}

func TestWFQNoStarvation(t *testing.T) {
	// Even with extreme weights every queue with backlog progresses
	// (paper §5.2: "WFQ is not subject to starvation").
	net, hosts := testbed(t, 3)
	w := NewWFQ(net)
	configureAllPorts(t, net, w, 0.999, 0.001)
	net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, PL: 0})
	lo, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, PL: 1})
	w.Allocate(net)
	if r := rate(t, net, lo); r <= 0 {
		t.Errorf("low-weight flow starved: rate = %g", r)
	}
}

func TestWFQUnconfiguredPortIsPerFlowFair(t *testing.T) {
	net, hosts := testbed(t, 3)
	w := NewWFQ(net)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, PL: 0})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, PL: 5})
	w.Allocate(net)
	if ra, rb := rate(t, net, a), rate(t, net, b); math.Abs(ra-50) > 1e-6 || math.Abs(rb-50) > 1e-6 {
		t.Errorf("unconfigured rates = %g,%g; want 50,50", ra, rb)
	}
}

func TestWFQUnmappedPLFallsToDefaultQueue(t *testing.T) {
	net, hosts := testbed(t, 3)
	w := NewWFQ(net)
	for _, l := range net.Topology().Links() {
		if err := w.Configure(l.ID, PortConfig{
			Weights:      []float64{0.8, 0.2},
			PLQueue:      map[int]int{0: 0},
			DefaultQueue: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, PL: 0})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, PL: 7}) // unmapped
	w.Allocate(net)
	if r := rate(t, net, a); math.Abs(r-80) > 1e-6 {
		t.Errorf("mapped flow = %g, want 80", r)
	}
	if r := rate(t, net, b); math.Abs(r-20) > 1e-6 {
		t.Errorf("unmapped flow = %g, want 20 (default queue)", r)
	}
}

func TestWFQConfigValidation(t *testing.T) {
	net, _ := testbed(t, 2)
	w := NewWFQ(net)
	l := net.Topology().Links()[0].ID
	if err := w.Configure(l, PortConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	if err := w.Configure(l, PortConfig{Weights: []float64{-1}}); err == nil {
		t.Error("negative weight should fail")
	}
	if err := w.Configure(l, PortConfig{Weights: []float64{1}, DefaultQueue: 3}); err == nil {
		t.Error("out-of-range default queue should fail")
	}
	if err := w.Configure(l, PortConfig{Weights: []float64{1}, PLQueue: map[int]int{0: 5}}); err == nil {
		t.Error("out-of-range PL mapping should fail")
	}
}

func TestWFQConfigureIsolatedFromCaller(t *testing.T) {
	net, _ := testbed(t, 2)
	w := NewWFQ(net)
	l := net.Topology().Links()[0].ID
	weights := []float64{0.5, 0.5}
	plq := map[int]int{0: 0}
	if err := w.Configure(l, PortConfig{Weights: weights, PLQueue: plq}); err != nil {
		t.Fatal(err)
	}
	weights[0] = 99 // mutate the caller's slices
	plq[0] = 1
	cfg := w.Config(l)
	if cfg.Weights[0] != 0.5 || cfg.PLQueue[0] != 0 {
		t.Error("Configure did not deep-copy its input")
	}
	w.Deconfigure(l)
	if w.Config(l) != nil {
		t.Error("Deconfigure did not remove the config")
	}
}

func TestWFQHierarchicalAcrossTwoLinks(t *testing.T) {
	// A PL0 flow bottlenecked upstream leaves its queue share to nobody;
	// the other queue takes the slack (work conservation through the
	// fabric). h0 uplink throttled to 10: PL0 flow capped at 10; PL1 flow
	// into same destination gets 90.
	net, hosts := testbed(t, 3)
	w := NewWFQ(net)
	configureAllPorts(t, net, w, 0.75, 0.25)
	up0 := net.Topology().OutLinks(hosts[0])[0]
	if err := net.SetCapacityOverride(up0, 10); err != nil {
		t.Fatal(err)
	}
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6, PL: 0})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6, PL: 1})
	w.Allocate(net)
	if r := rate(t, net, a); math.Abs(r-10) > 1e-6 {
		t.Errorf("throttled PL0 flow = %g, want 10", r)
	}
	if r := rate(t, net, b); math.Abs(r-90) > 1e-6 {
		t.Errorf("PL1 flow = %g, want 90 (absorbs slack)", r)
	}
}

func TestWFQName(t *testing.T) {
	net, _ := testbed(t, 2)
	if NewWFQ(net).Name() != "saba-wfq" {
		t.Error("unexpected allocator name")
	}
}

var _ Allocator = (*WFQ)(nil)
var _ Allocator = (*IdealMaxMin)(nil)
var _ Allocator = (*FECN)(nil)
var _ Allocator = (*Homa)(nil)
var _ Allocator = (*Sincronia)(nil)

// Guard: topology import used by helpers in other files of this package.
var _ = topology.Gbps
