package netsim

import (
	"math"
	"testing"

	"saba/internal/telemetry"
	"saba/internal/topology"
)

// The sharded differential gate: for every allocator, the sharded
// engine (per-pod heaps, allocator clones, barrier-coordinated due
// collection) must produce bit-for-bit the completion times of the
// serial engine — with and without a link-flap schedule, and with a
// shard count that both matches and exceeds the pod count.

func assertSameVector(t *testing.T, ctx string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: admission counts differ: %d vs %d", ctx, len(want), len(got))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Errorf("%s admission %d: completion %v (serial) vs %v (sharded); diff %g",
				ctx, i, want[i], got[i], got[i]-want[i])
		}
	}
}

func TestDifferentialShardedMatchesSerial(t *testing.T) {
	allocators := []string{"ideal-maxmin", "fecn", "wfq", "homa", "sincronia", "decentral"}
	shardable := map[string]bool{"ideal-maxmin": true, "fecn": true, "wfq": true, "decentral": true}
	for _, name := range allocators {
		name := name
		t.Run(name, func(t *testing.T) {
			scopedEngaged := false
			for seed := int64(1); seed <= 3; seed++ {
				serialReg := telemetry.NewRegistry()
				shardReg := telemetry.NewRegistry()
				oddReg := telemetry.NewRegistry()
				want := runDifferentialScenario(t, name, seed, false, serialReg, false, 0)
				got := runDifferentialScenario(t, name, seed, false, shardReg, false, -1)
				// A shard count exceeding the pod count folds ownership via
				// modulo; the result must not change.
				odd := runDifferentialScenario(t, name, seed, false, oddReg, false, 5)
				assertSameVector(t, name, want, got)
				assertSameVector(t, name+" shards=5", want, odd)
				if shardReg.Counter("netsim.scoped_recomputes").Value() > 0 {
					scopedEngaged = true
				}
			}
			if shardable[name] && !scopedEngaged {
				t.Errorf("%s: sharded mode never ran a scoped recompute", name)
			}
			if !shardable[name] && scopedEngaged {
				t.Errorf("%s: non-shardable allocator reported scoped recomputes", name)
			}
		})
	}
}

func TestDifferentialShardedWithFlaps(t *testing.T) {
	allocators := []string{"ideal-maxmin", "fecn", "wfq", "homa", "sincronia", "decentral"}
	for _, name := range allocators {
		name := name
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 2; seed++ {
				serialReg := telemetry.NewRegistry()
				shardReg := telemetry.NewRegistry()
				want := runDifferentialScenario(t, name, seed, false, serialReg, true, 0)
				got := runDifferentialScenario(t, name, seed, false, shardReg, true, -1)
				assertSameVector(t, name, want, got)
				if shardReg.Counter("netsim.link_failures").Value() == 0 {
					t.Errorf("seed %d: flap schedule failed no links", seed)
				}
			}
		})
	}
}

// Sharded mode must also reproduce the FULL-recompute engine exactly:
// the union fallback path (dirtyAll, non-shardable configurations)
// shares its code, so one allocator with flaps suffices here.
func TestDifferentialShardedFullRecompute(t *testing.T) {
	serialReg := telemetry.NewRegistry()
	shardReg := telemetry.NewRegistry()
	want := runDifferentialScenario(t, "ideal-maxmin", 2, true, serialReg, true, 0)
	got := runDifferentialScenario(t, "ideal-maxmin", 2, true, shardReg, true, -1)
	assertSameVector(t, "full-recompute", want, got)
}

// SetShards mid-run migrates projected completions between the serial
// and shard heaps without disturbing the outcome.
func TestSetShardsMidRunMigration(t *testing.T) {
	run := func(reshard bool) []float64 {
		top := diffFabric(t)
		net := NewNetwork(top)
		e := NewEngine(net, NewIdealMaxMin(net))
		e.SetTelemetry(telemetry.NewRegistry())
		hosts := top.Hosts()
		var done []float64
		for i := 0; i < 24; i++ {
			i := i
			src, dst := hosts[i%len(hosts)], hosts[(i*7+3)%len(hosts)]
			if src == dst {
				dst = hosts[(i*7+4)%len(hosts)]
			}
			done = append(done, -1)
			at := 0.01 * float64(i)
			spec := FlowSpec{Src: src, Dst: dst, Bits: float64(6400 + 320*i)}
			if err := e.At(at, func(e *Engine) {
				if _, err := e.AddFlow(spec, func(e *Engine, _ FlowID) { done[i] = e.Now() }); err != nil {
					t.Fatal(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		if reshard {
			// Flip serial → sharded → serial → sharded while flows are in
			// flight; each flip migrates the projected completions.
			for i, n := range []int{-1, 1, 3} {
				n := n
				if err := e.At(0.05+0.1*float64(i), func(e *Engine) { e.SetShards(n) }); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e.Run(math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		return done
	}
	want := run(false)
	got := run(true)
	assertSameVector(t, "mid-run reshard", want, got)
}

// Satellite regression: netsim.flows_active and
// netsim.completion_heap_size carry the per-engine label the
// utilization gauges got earlier, so two engines running concurrently
// (sabaexp -parallel) no longer overwrite each other's readings.
func TestEngineGaugesCarryEngineLabel(t *testing.T) {
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 4, LinkCapacity: 1000})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	mk := func(n int) *Engine {
		net := NewNetwork(top)
		e := NewEngine(net, NewIdealMaxMin(net))
		e.SetTelemetry(reg)
		hosts := top.Hosts()
		for i := 0; i < n; i++ {
			if _, err := e.AddFlow(FlowSpec{Src: hosts[i%3], Dst: hosts[3], Bits: 1e9}, nil); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}
	e1, e2 := mk(1), mk(3)
	if e1.engineID == e2.engineID {
		t.Fatalf("engines share id %q", e1.engineID)
	}
	g1 := reg.Gauge(telemetry.Label("netsim.flows_active", "engine", e1.engineID))
	g2 := reg.Gauge(telemetry.Label("netsim.flows_active", "engine", e2.engineID))
	if g1.Value() != 1 || g2.Value() != 3 {
		t.Errorf("flows_active gauges = %v, %v; want 1, 3 (per-engine, not shared)", g1.Value(), g2.Value())
	}
	unlabeled := reg.Gauge("netsim.flows_active")
	if unlabeled.Value() != 0 {
		t.Errorf("unlabeled flows_active gauge written: %v", unlabeled.Value())
	}
	if err := e1.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// e1's run projected its one flow: its labeled heap gauge was written
	// while e2's (and the unlabeled name) never were.
	h1 := reg.Gauge(telemetry.Label("netsim.completion_heap_size", "engine", e1.engineID))
	h2 := reg.Gauge(telemetry.Label("netsim.completion_heap_size", "engine", e2.engineID))
	if h1.Value() != 1 {
		t.Errorf("e1 heap gauge = %v, want 1 (its single projected flow)", h1.Value())
	}
	if h2.Value() != 0 {
		t.Errorf("e2 heap gauge = %v, want 0 (e2 never stepped)", h2.Value())
	}
	if reg.Gauge("netsim.completion_heap_size").Value() != 0 {
		t.Errorf("unlabeled completion_heap_size gauge written")
	}
}

// Partition-aware ownership: every flow lands on the heap of its source
// pod's shard when the shard count matches the pod count.
func TestShardOwnershipFollowsSourcePod(t *testing.T) {
	top := diffFabric(t) // 2 pods
	part := top.Partition()
	net := NewNetwork(top)
	e := NewEngine(net, NewIdealMaxMin(net))
	e.SetTelemetry(telemetry.NewRegistry())
	e.SetShards(-1)
	if e.Shards() != 2 {
		t.Fatalf("Shards() = %d, want 2 (one per pod)", e.Shards())
	}
	hosts := top.Hosts()
	var ids []FlowID
	for i := 0; i < 8; i++ {
		src, dst := hosts[i], hosts[(i+5)%len(hosts)]
		id, err := e.AddFlow(FlowSpec{Src: src, Dst: dst, Bits: 1e6}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// One step (up to a timer well before any completion) rates the flows
	// and projects completions onto the shard heaps.
	stop := false
	if err := e.At(1e-6, func(*Engine) { stop = true }); err != nil {
		t.Fatal(err)
	}
	if err := e.RunUntil(math.Inf(1), func() bool { return stop }); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		f, err := e.net.Flow(id)
		if err != nil {
			continue // already completed
		}
		want := int(part.OfNode(f.Src))
		if !e.sh.shards[want].completions.Contains(int(id)) {
			t.Errorf("flow %d (src pod %d) not on its home shard heap", id, want)
		}
	}
}
