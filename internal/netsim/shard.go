package netsim

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"strconv"

	"saba/internal/sim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// This file implements the sharded event loop: the engine split by
// fabric partition into per-pod shards, each owning a completion heap
// and (when the discipline supports it) an allocator clone, coordinated
// by a conservative virtual-time barrier. Every round, shards propose
// their earliest projected completion, the coordinator advances the
// clock to the minimum across shards and timers, and the shards'
// intra-pod work — component allocation, due-completion collection,
// and bounded lookahead windows (lookahead.go) — runs concurrently on a
// persistent worker pool (workers.go). The loop is bit-for-bit
// identical to the serial engine; DESIGN.md §13 carries the determinism
// argument, and the differential gate asserts it for all six allocators
// including under link-flap schedules.

// dueCand is one completion candidate popped during due collection: the
// flow and the heap key it carried when popped.
type dueCand struct {
	at float64
	id int
}

// retirement is one completion committed inside a lookahead window:
// the virtual time of the step that retired it (the serial step time),
// the heap key the flow carried when popped (the serial pop order
// within a step), and the flow. Sorting merged retirements by
// (at, key, id) reproduces the serial engine's completion sequence.
type retirement struct {
	at  float64
	key float64
	id  int
}

// engineShard is one per-partition event shard.
type engineShard struct {
	completions sim.IndexedHeap
	alloc       Allocator // per-shard clone; nil while the union path is in force
	comps       []int     // component indices assigned this recompute
	cands       []dueCand // due-collection candidates this round
	stopAt      float64   // first (key, id) that failed the due predicate;
	stopID      int       // +Inf when the shard's heap was exhausted
	declined    bool      // a clone declined AllocateScoped this recompute

	pods   []int32 // fabric partitions folded onto this shard
	active int     // active flows homed here (per-shard gauge source)

	// Per-shard labeled gauges, resolved at SetShards/SetTelemetry so
	// the event loop never does registry lookups (telemetry.Label
	// allocates). Zeroed when the shard retires (SetShards shrink).
	gActive *telemetry.Gauge // netsim.flows_active{engine,shard}
	gHeap   *telemetry.Gauge // netsim.completion_heap_size{engine,shard}

	// Lookahead-window scratch, owned by the shard's worker during a
	// window phase (lookahead.go). linkSeen is per-shard because window
	// traversals run concurrently; flow marks live in the engine-shared
	// flowSeen array, which is safe because an isolated shard's
	// components reach only its own flows.
	wIDs      []FlowID
	wOld      []float64
	wCompOff  []int
	wStack    []topology.LinkID
	linkSeen  []int64
	seeds     []topology.LinkID
	retired   []retirement
	wDeclined bool
	wRecs     int // window recomputes this round (telemetry, applied merged)
	wDirty    int // flows re-rated by window recomputes this round
}

// shardedState is the coordinator side of the sharded engine.
type shardedState struct {
	part    *topology.Partition
	barrier *sim.Barrier
	shards  []*engineShard
	workers *shardWorkers // nil when one schedulable slot: phases run inline

	clonedFrom Allocator // allocator the clones were derived from
	clones     bool      // clones usable: component-parallel allocation on
	// cloneCache pools derived clone sets per source allocator, so
	// swapping allocators back and forth (SetAllocator A→B→A) reuses
	// A's clones — and their internal scratch — instead of rederiving.
	cloneCache map[Allocator][]Allocator

	compOff  []int     // e.ids[compOff[c]:compOff[c+1]] = component c (ascending)
	merged   []dueCand // cross-shard due merge scratch
	busy     []int     // shard indices with work in the current phase
	isolated []bool    // per-shard: no flow couples its pods this round
	mergedR  []retirement

	// Persistent phase bodies, bound once in SetShards. The hot loop
	// hands runPhase these instead of fresh closures — a func literal
	// with captures allocates at every evaluation, and the per-step
	// due-collection and allocation closures were the last ~11k
	// allocs/op separating the sharded Fig10 bench from serial. The
	// per-round parameters travel through dueT / windowH instead of
	// captures.
	dueFn    func(int)
	allocFn  func(int)
	windowFn func(int)
	dueT     float64 // collectDue's tNext for the round in flight
	windowH  float64 // runLookahead's safe horizon for the round in flight

	// lookahead gates the window optimization for this run. It starts
	// true and latches false if a clone ever declines inside a window
	// (defensively: no shardable discipline declines today) — the
	// recovery recompute is rate-correct but not provably bit-exact, so
	// windows stop rather than compound.
	lookahead bool
}

// SetShards splits the engine into n per-partition event shards
// coordinated by a conservative virtual-time barrier. n <= 1 restores
// the serial legacy path (the zero value); n < 0 derives one shard per
// fabric partition of the topology. Safe to call between steps, even
// mid-run: projected completions migrate to their owning heaps. Flow
// ownership is the fabric partition of the flow's source host folded
// onto the shard count, so any n >= 2 is valid on any topology.
func (e *Engine) SetShards(n int) {
	part := e.net.partition()
	if n < 0 {
		n = part.NumParts()
	}
	if n <= 1 {
		if e.sh == nil {
			return
		}
		old := e.sh
		e.sh = nil
		e.stopShards(old)
		for _, s := range old.shards {
			drainHeap(&s.completions, &e.completions)
		}
		retireShardGauges(old, 0)
		return
	}
	old := e.sh
	sh := &shardedState{
		part:      part,
		barrier:   sim.NewBarrier(n),
		shards:    make([]*engineShard, n),
		isolated:  make([]bool, n),
		lookahead: true,
	}
	shardBuf := make([]engineShard, n) // one block, not n tiny allocations
	for i := range sh.shards {
		shardBuf[i].cands = make([]dueCand, 0, 32)
		sh.shards[i] = &shardBuf[i]
	}
	sh.busy = make([]int, 0, n)
	sh.merged = make([]dueCand, 0, 64)
	for p := 0; p < part.NumParts(); p++ {
		s := sh.shards[p%n]
		s.pods = append(s.pods, int32(p))
	}
	sh.dueFn = e.collectShardDue
	sh.allocFn = e.allocShardComps
	sh.windowFn = e.runShardWindow
	e.sh = sh // homeOf consults e.sh
	if old != nil {
		e.stopShards(old)
		for _, s := range old.shards {
			e.redistribute(&s.completions)
		}
		retireShardGauges(old, 0)
	} else {
		e.redistribute(&e.completions)
	}
	// Per-shard active counts include stalled and zero-rate flows, which
	// live on no heap; recount from the network.
	for i := range e.net.flows {
		if e.net.flows[i].active {
			sh.shards[e.homeOf(FlowID(i))].active++
		}
	}
	e.bindShardGauges()
	if ps := poolSize(n); ps >= 2 {
		sh.workers = newShardWorkers(ps)
		// Backstop for engines dropped mid-run without SetShards(1): the
		// workers reference only the pool (never the engine between
		// phases), so an abandoned engine becomes unreachable and the
		// finalizer releases them. Registered once per engine — the
		// closure reads e.sh at finalization time, so it covers every
		// later pool too.
		if !e.poolFinalizer {
			e.poolFinalizer = true
			runtime.SetFinalizer(e, func(e *Engine) {
				if e.sh != nil && e.sh.workers != nil {
					e.sh.workers.close()
				}
			})
		}
	}
}

// stopShards releases a previous sharded state's worker pool.
func (e *Engine) stopShards(old *shardedState) {
	if old.workers != nil {
		old.workers.close()
		old.workers = nil
	}
}

// retireShardGauges drains the per-shard gauges of every shard with
// index >= keep to zero, so a shard retired by a shrinking SetShards (or
// a switch to the serial path) does not leak its last reading into the
// telemetry snapshot forever.
func retireShardGauges(old *shardedState, keep int) {
	for i := keep; i < len(old.shards); i++ {
		s := old.shards[i]
		if s.gActive != nil {
			s.gActive.Set(0)
		}
		if s.gHeap != nil {
			s.gHeap.Set(0)
		}
	}
}

// bindShardGauges resolves the per-shard labeled gauges against the
// engine's current registry and publishes the current readings. Called
// from SetShards and SetTelemetry.
func (e *Engine) bindShardGauges() {
	for i, s := range e.sh.shards {
		shard := strconv.Itoa(i)
		s.gActive = e.tel.reg.Gauge(telemetry.Label("netsim.flows_active",
			"engine", e.tel.engineID, "shard", shard))
		s.gHeap = e.tel.reg.Gauge(telemetry.Label("netsim.completion_heap_size",
			"engine", e.tel.engineID, "shard", shard))
		s.gActive.Set(float64(s.active))
		s.gHeap.Set(float64(s.completions.Len()))
	}
}

// noteShardFlow tracks the per-shard active-flow count as flows are
// admitted and cancelled outside the step loops.
func (e *Engine) noteShardFlow(id FlowID, d int) {
	if e.sh == nil {
		return
	}
	s := e.sh.shards[e.homeOf(id)]
	s.active += d
	if s.gActive != nil {
		s.gActive.Set(float64(s.active))
	}
}

// Shards returns the number of event shards (1 = serial path).
func (e *Engine) Shards() int {
	if e.sh == nil {
		return 1
	}
	return len(e.sh.shards)
}

// drainHeap pops every entry of src into dst, preserving keys.
func drainHeap(src, dst *sim.IndexedHeap) {
	for {
		at, id, ok := src.Min()
		if !ok {
			return
		}
		src.Pop()
		dst.Fix(id, at)
	}
}

// redistribute moves every entry of src onto its owner's shard heap.
func (e *Engine) redistribute(src *sim.IndexedHeap) {
	for {
		at, id, ok := src.Min()
		if !ok {
			return
		}
		src.Pop()
		e.sh.shards[e.homeOf(FlowID(id))].completions.Fix(id, at)
	}
}

// homeOf maps a flow to its owning shard: the fabric partition of its
// source host, folded onto the shard count. Src is immutable for the
// life of a FlowID slot, so ownership never moves while a flow is
// active — reroutes and stalls keep a flow on its home heap, and the
// FlowID-recycling free list never changes a slot's owner mid-flight.
func (e *Engine) homeOf(id FlowID) int {
	p := int(e.sh.part.OfNode(e.net.flows[id].Src))
	if p < 0 {
		p = 0 // defensive: sources are hosts, never spine-layer nodes
	}
	return p % len(e.sh.shards)
}

// heapFix (re)keys a flow's projected completion on the owning heap —
// the serial heap, or the flow's home shard heap in sharded mode. All
// heap traffic outside the two step loops (reproject, cancel, link
// failures) goes through these two helpers so both modes share the
// recompute and fault machinery.
func (e *Engine) heapFix(id FlowID, key float64) {
	if e.sh != nil {
		s := e.sh.shards[e.homeOf(id)]
		s.completions.Fix(int(id), key)
		if s.gHeap != nil {
			s.gHeap.Set(float64(s.completions.Len())) // one atomic store
		}
		return
	}
	e.completions.Fix(int(id), key)
}

// heapRemove drops a flow's projection from the owning heap.
func (e *Engine) heapRemove(id FlowID) {
	if e.sh != nil {
		s := e.sh.shards[e.homeOf(id)]
		s.completions.Remove(int(id))
		if s.gHeap != nil {
			s.gHeap.Set(float64(s.completions.Len()))
		}
		return
	}
	e.completions.Remove(int(id))
}

// heapLen is the total number of projected completions across heaps.
func (e *Engine) heapLen() int {
	if e.sh == nil {
		return e.completions.Len()
	}
	n := 0
	for _, s := range e.sh.shards {
		n += s.completions.Len()
	}
	return n
}

// runPhase invokes fn for every listed shard — concurrently when more
// than one has work, fanned across the persistent worker pool (inline
// when the pool is absent: one schedulable core, or a single busy
// shard).
func (sh *shardedState) runPhase(busy []int, fn func(i int)) {
	sh.workers.run(busy, fn)
}

// stepSharded is the barrier-coordinated counterpart of step: shards
// propose their earliest projected completion, the clock advances to
// the conservative minimum across shards and timers, and due
// completions are collected per shard and applied in the serial
// engine's exact (time, id) order. When the earliest event belongs to a
// shard whose pods no cross-pod flow touches, the round instead runs
// bounded lookahead windows (lookahead.go): every such isolated shard
// advances all its completions below the cross-shard horizon in one
// barrier round-trip.
//
// Event accounting differs deliberately from the serial loop, which
// counts one netsim.events per loop iteration no matter how many
// completions the iteration retires in bulk. The sharded loop meters
// the discrete events themselves — completions retired plus timers
// fired, minimum one per barrier round — so events/s measures
// simulation throughput rather than iteration count. The bench cells
// note the same caveat where the two modes are compared.
func (e *Engine) stepSharded(horizon float64) error {
	sh := e.sh
	if e.dirty {
		e.recomputeSharded()
		e.dirty = false
		e.tel.rateRecomputes.Inc()
		e.observeUtilization()
	}

	sh.barrier.Reset()
	tFlow := math.Inf(1)
	minShard := -1
	for i, s := range sh.shards {
		if at, _, ok := s.completions.Min(); ok {
			sh.barrier.Propose(i, at)
			if at < tFlow {
				tFlow, minShard = at, i
			}
		}
	}
	tEvent := math.Inf(1)
	if at, ok := e.events.PeekTime(); ok {
		tEvent = at
	}
	tNext := math.Min(tFlow, tEvent)
	if math.IsInf(tNext, 1) {
		e.tel.events.Inc()
		if e.net.NumActive() > 0 {
			return ErrDeadlock
		}
		return nil
	}
	if tNext > horizon {
		e.tel.events.Inc()
		return fmt.Errorf("%w: next event at %gs > horizon %gs", ErrHorizon, tNext, horizon)
	}

	if tFlow < tEvent && minShard >= 0 && e.lookaheadReady() {
		e.computeIsolation()
		if sh.isolated[minShard] {
			h := sh.barrier.HorizonExcept(sh.isolated)
			h = math.Min(h, tEvent)
			h = math.Min(h, horizon)
			if tFlow < h-timeSlack {
				return e.runLookahead(h)
			}
		}
	}

	t0 := e.Now()
	if err := e.clock.AdvanceTo(tNext); err != nil {
		e.tel.events.Inc()
		return err
	}
	e.net.now = tNext
	if e.OnAdvance != nil && tNext > t0 {
		e.OnAdvance(e, t0, tNext)
	}

	e.collectDue(tNext)
	for _, id := range e.done {
		fn := e.takeDone(id)
		f, err := e.net.Flow(id)
		if err != nil {
			return err
		}
		e.tel.flowSeconds.Observe(tNext - f.Start)
		e.seedLinks = append(e.seedLinks, f.Path...)
		e.noteShardFlow(id, -1)
		if err := e.net.RemoveFlow(id); err != nil {
			return err
		}
		e.tel.flowCompletions.Inc()
		e.dirty = true
		if fn != nil {
			fn(e, id)
		}
	}
	completions := len(e.done)
	if completions > 0 {
		e.tel.flowsActive.Set(float64(e.net.NumActive()))
		for _, i := range sh.busy {
			s := sh.shards[i]
			if s.gHeap != nil {
				s.gHeap.Set(float64(s.completions.Len()))
			}
		}
	}

	timers := 0
	for {
		at, ok := e.events.PeekTime()
		if !ok || at > e.Now()+timeSlack {
			break
		}
		ev, _ := e.events.Pop()
		ev.Fn()
		timers++
	}
	n := completions + timers
	if n == 0 {
		n = 1
	}
	e.tel.events.Add(uint64(n))
	return nil
}

// collectDue gathers every flow due by tNext into e.done in the exact
// order the serial pop loop would produce. Each shard pops its heap
// while the due predicate passes and records the first (key, id) that
// fails; the globally first failure — the lexicographic minimum across
// shards — is where the serial loop would have stopped, because every
// element ordered before it passes the predicate (the predicate is
// intrinsic to the flow, not to pop order). Candidates at or beyond the
// stop are re-inserted with their original keys (the indexed heap's
// order is a pure function of (key, id), so the re-insert is observably
// identical), and the survivors — merged and sorted by (key, id) —
// reproduce the serial completion sequence, and with it the callback
// and FlowID-recycling order.
// collectShardDue is the per-shard due-collection phase body (bound to
// sh.dueFn): pop every projected completion at or before sh.dueT — by
// the serial engine's slack predicate — into the shard's candidate
// list, recording the first survivor as the shard's stop marker.
func (e *Engine) collectShardDue(i int) {
	sh := e.sh
	tNext := sh.dueT
	s := sh.shards[i]
	s.cands = s.cands[:0]
	s.stopAt = math.Inf(1)
	s.stopID = 0
	for {
		at, idInt, ok := s.completions.Min()
		if !ok {
			break
		}
		f := &e.net.flows[idInt]
		if at > tNext && f.RemainingAt(tNext) > completionSlack(f) {
			s.stopAt, s.stopID = at, idInt
			break
		}
		s.completions.Pop()
		s.cands = append(s.cands, dueCand{at: at, id: idInt})
	}
}

func (e *Engine) collectDue(tNext float64) {
	sh := e.sh
	sh.busy = sh.busy[:0]
	for i, s := range sh.shards {
		if s.completions.Len() > 0 {
			sh.busy = append(sh.busy, i)
		}
	}
	sh.dueT = tNext
	sh.runPhase(sh.busy, sh.dueFn)

	stopAt, stopID := math.Inf(1), 0
	for _, i := range sh.busy {
		s := sh.shards[i]
		if s.stopAt < stopAt || (s.stopAt == stopAt && s.stopID < stopID) {
			stopAt, stopID = s.stopAt, s.stopID
		}
	}
	sh.merged = sh.merged[:0]
	for _, i := range sh.busy {
		s := sh.shards[i]
		for _, c := range s.cands {
			if c.at > stopAt || (c.at == stopAt && c.id >= stopID) {
				s.completions.Fix(c.id, c.at) // past the serial stop: put back
				continue
			}
			sh.merged = append(sh.merged, c)
		}
	}
	slices.SortFunc(sh.merged, func(a, b dueCand) int {
		switch {
		case a.at < b.at:
			return -1
		case a.at > b.at:
			return 1
		default:
			return a.id - b.id
		}
	})
	e.done = e.done[:0]
	for _, c := range sh.merged {
		f := &e.net.flows[c.id]
		f.Remaining = 0
		f.lastSet = tNext
		e.done = append(e.done, FlowID(c.id))
	}
}

// recomputeSharded routes the dirty components to their owning shards'
// allocator clones and runs the shards' allocations concurrently. It
// falls back to the serial recompute — which already routes heap
// updates through the shard heaps — whenever scoping is off for this
// round, the allocator cannot be cloned, or a clone declines.
// allocShardComps is the per-shard allocation phase body (bound to
// sh.allocFn): run the shard's clone over each component assigned to
// it this recompute, flagging a decline for the coordinator.
func (e *Engine) allocShardComps(i int) {
	sh := e.sh
	s := sh.shards[i]
	for _, c := range s.comps {
		comp := e.ids[sh.compOff[c]:sh.compOff[c+1]]
		if !s.alloc.AllocateScoped(e.net, comp) {
			s.declined = true
			return
		}
	}
}

func (e *Engine) recomputeSharded() {
	sh := e.sh
	scoped := !e.full && !e.dirtyAll
	if scoped {
		// Clones derive lazily, at the first recompute that can actually
		// use them: runs that only ever take the union path (full
		// recomputes, non-shardable disciplines) never pay for them.
		sh.ensureClones(e.alloc)
	}
	if !scoped || !sh.clones {
		e.recompute()
		return
	}
	now := e.clock.Now()
	// Pre-size each shard's heap for its active population before the
	// re-projections below re-key them one Fix at a time. The floor
	// skips the first few doubling steps of a population growing from
	// near zero — a handful of kilobytes per shard buys allocation-free
	// ramp-up in workloads that add flows in waves.
	for _, s := range sh.shards {
		n := s.active
		if n < 256 {
			n = 256
		}
		s.completions.Grow(len(e.net.flows)-1, n)
	}
	e.splitDirty()
	e.saveOldRates()
	if len(e.ids) == 0 {
		// Mirror the serial no-op: shardable disciplines accept an empty
		// scope without observable side effects, so nothing runs.
		e.reproject(now)
		e.clearSeeds()
		return
	}

	// Assign each component to the home shard of its lowest flow. A
	// component may span pods (cross-pod flows couple them through cut
	// links); ownership by lowest member keeps the assignment
	// deterministic and every component on exactly one shard.
	nc := len(sh.compOff) - 1
	for _, s := range sh.shards {
		s.comps = s.comps[:0]
		s.declined = false
	}
	sh.busy = sh.busy[:0]
	for c := 0; c < nc; c++ {
		home := e.homeOf(e.ids[sh.compOff[c]])
		s := sh.shards[home]
		if len(s.comps) == 0 {
			sh.busy = append(sh.busy, home)
		}
		s.comps = append(s.comps, c)
	}
	sh.runPhase(sh.busy, sh.allocFn)
	declined := false
	for _, i := range sh.busy {
		declined = declined || sh.shards[i].declined
	}
	if declined {
		// A clone declined mid-way (no shardable discipline does today,
		// but the contract allows it): undo any partial rate writes — the
		// union's saved rates cover every flow a clone may have touched —
		// then widen to the full active set exactly like the serial path.
		for i, id := range e.ids {
			e.net.flows[id].Rate = e.oldRates[i]
		}
		e.ids = e.net.ActiveInto(e.ids[:0])
		e.saveOldRates()
		e.alloc.Allocate(e.net)
	} else {
		e.tel.scopedRecomputes.Inc()
		e.tel.dirtyFlows.Add(uint64(len(e.ids)))
	}
	e.reproject(now)
	e.clearSeeds()
}

// ensureClones (re)derives per-shard allocator clones when the engine's
// allocator changed since the last recompute, pooling previously
// derived clone sets so an allocator swapped back in reuses its clones
// (and their internal caches and scratch) instead of rebuilding them.
// Without a worker pool the shards simply share the parent allocator. A
// nil clone marks the allocator (or its current configuration)
// non-shardable; component allocation then stays on the serial union
// path while the sharded event loop keeps running. Non-shardable
// outcomes are deliberately not cached: a configuration change (e.g. a
// Decentral channel detach) can make the same allocator shardable
// later.
func (sh *shardedState) ensureClones(alloc Allocator) {
	if sh.clonedFrom == alloc {
		return
	}
	sh.clonedFrom = alloc
	sh.clones = false
	if cached, ok := sh.cloneCache[alloc]; ok {
		for i, s := range sh.shards {
			s.alloc = cached[i]
		}
		sh.clones = true
		return
	}
	sa, ok := alloc.(ShardableAllocator)
	if !ok {
		for _, s := range sh.shards {
			s.alloc = nil
		}
		return
	}
	clones := make([]Allocator, len(sh.shards))
	if sh.workers == nil {
		// One schedulable slot: phases run inline, one shard after
		// another on the coordinator goroutine, so every shard can
		// allocate with the parent itself. A scoped clone shares all
		// per-link state with the parent anyway — sequentially they are
		// the same computation — and skipping derivation skips the
		// per-clone run scratch entirely. Probe shardability once so a
		// non-shardable configuration still declines to the union path.
		if sa.ShardClone() == nil {
			for _, s := range sh.shards {
				s.alloc = nil
			}
			return
		}
		for i := range clones {
			clones[i] = alloc
		}
	} else {
		for i := range sh.shards {
			c := sa.ShardClone()
			if c == nil {
				for _, s2 := range sh.shards {
					s2.alloc = nil
				}
				return
			}
			clones[i] = c
		}
	}
	for i, s := range sh.shards {
		s.alloc = clones[i]
	}
	if sh.cloneCache == nil {
		sh.cloneCache = map[Allocator][]Allocator{}
	}
	sh.cloneCache[alloc] = clones
	sh.clones = true
}

// splitDirty expands the recompute seeds (dirty links and flows)
// directly into their link-connected components in one traversal: e.ids
// holds every component's flows contiguously (each sorted ascending)
// and compOff the boundaries. The expansion rules are dirtyComponent's
// exactly — inactive seed flows are skipped, detached stalled flows
// seed their last known path — so the concatenation of the parts is
// always exactly the union the serial path would compute, without
// paying a second traversal over it or a union-wide sort (the serial
// recompute needs the union globally sorted because it hands the whole
// thing to one AllocateScoped call; here every consumer of e.ids either
// pairs it positionally with oldRates or slices it per component, and
// the allocator contract only requires each component ascending).
//
// Seed order is deterministic, so discovery order — and with it the
// component list — is too. Component order across shards is free:
// components share no links by construction, so AllocateScoped on one
// is independent of every other, which the concurrent per-shard
// allocation phase already relies on.
func (e *Engine) splitDirty() {
	sh := e.sh
	e.ids = e.ids[:0]
	sh.compOff = sh.compOff[:0]
	ep := e.epoch.Add(1)
	for len(e.linkSeen) < len(e.net.linkFlows) {
		e.linkSeen = append(e.linkSeen, 0)
	}
	for len(e.flowSeen) < len(e.net.flows) {
		e.flowSeen = append(e.flowSeen, 0)
	}
	for _, l := range e.seedLinks {
		if e.linkSeen[l] == ep {
			continue
		}
		e.linkSeen[l] = ep
		e.stack = append(e.stack[:0], l)
		e.growComponent(ep, len(e.ids))
	}
	for _, id := range e.seedFlows {
		f := &e.net.flows[id]
		if !f.active || e.flowSeen[id] == ep {
			continue // e.g. admitted then cancelled before this recompute
		}
		start := len(e.ids)
		e.flowSeen[id] = ep
		e.ids = append(e.ids, id)
		e.stack = e.stack[:0]
		for _, l := range f.Path {
			if e.linkSeen[l] != ep {
				e.linkSeen[l] = ep
				e.stack = append(e.stack, l)
			}
		}
		e.growComponent(ep, start)
	}
	sh.compOff = append(sh.compOff, len(e.ids))
}

// growComponent drains the link stack into e.ids and closes out the
// component that started at start (dropped when the seed reached no
// flows). A method rather than a closure inside splitDirty: the closure
// captured locals and escaped, costing one heap allocation per scoped
// recompute on the hot path.
func (e *Engine) growComponent(ep int64, start int) {
	sh := e.sh
	for len(e.stack) > 0 {
		l := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		for _, fid := range e.net.linkFlows[l] {
			if e.flowSeen[fid] == ep {
				continue
			}
			e.flowSeen[fid] = ep
			e.ids = append(e.ids, fid)
			for _, fl := range e.net.flows[fid].Path {
				if e.linkSeen[fl] != ep {
					e.linkSeen[fl] = ep
					e.stack = append(e.stack, fl)
				}
			}
		}
	}
	if len(e.ids) > start {
		slices.Sort(e.ids[start:])
		sh.compOff = append(sh.compOff, start)
	}
}
