package netsim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saba/internal/topology"
)

func rate(t *testing.T, net *Network, id FlowID) float64 {
	t.Helper()
	f, err := net.Flow(id)
	if err != nil {
		t.Fatal(err)
	}
	return f.Rate
}

func TestMaxMinSingleFlowGetsLineRate(t *testing.T) {
	net, hosts := testbed(t, 2)
	id, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1000})
	NewIdealMaxMin(net).Allocate(net)
	if r := rate(t, net, id); math.Abs(r-100) > 1e-9 {
		t.Errorf("single flow rate = %g, want 100", r)
	}
}

func TestMaxMinEqualSplitOnSharedLink(t *testing.T) {
	// Two flows into the same destination share its downlink equally.
	net, hosts := testbed(t, 3)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1000})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1000})
	NewIdealMaxMin(net).Allocate(net)
	if ra := rate(t, net, a); math.Abs(ra-50) > 1e-9 {
		t.Errorf("flow a rate = %g, want 50", ra)
	}
	if rb := rate(t, net, b); math.Abs(rb-50) > 1e-9 {
		t.Errorf("flow b rate = %g, want 50", rb)
	}
}

func TestMaxMinWaterFilling(t *testing.T) {
	// Classic water-filling: flows A(h0→h2), B(h1→h2), C(h0→h3).
	// h2's downlink carries A+B → bottleneck 50 each. h0's uplink carries
	// A+C: A fixed at 50, so C gets the remaining 50... then C's only
	// other constraint (h3 downlink, 100) is slack. All rates 50 — but if
	// B did not exist, A and C would split h0's uplink 50/50 anyway. Make
	// it sharper: throttle h2's downlink to 40: A,B get 20; C gets 80.
	net, hosts := testbed(t, 4)
	top := net.Topology()
	sw := top.Switches()[0]
	var down2 topology.LinkID = -1
	for _, l := range top.OutLinks(sw) {
		lk, _ := top.Link(l)
		if lk.To == hosts[2] {
			down2 = l
		}
	}
	if err := net.SetCapacityOverride(down2, 40); err != nil {
		t.Fatal(err)
	}
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6})
	c, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[3], Bits: 1e6})
	NewIdealMaxMin(net).Allocate(net)
	if ra := rate(t, net, a); math.Abs(ra-20) > 1e-9 {
		t.Errorf("A = %g, want 20", ra)
	}
	if rb := rate(t, net, b); math.Abs(rb-20) > 1e-9 {
		t.Errorf("B = %g, want 20", rb)
	}
	if rc := rate(t, net, c); math.Abs(rc-80) > 1e-9 {
		t.Errorf("C = %g, want 80 (work conservation)", rc)
	}
}

func TestMaxMinNoLinkOversubscribed(t *testing.T) {
	// Property: after allocation, no link carries more than its capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 6, LinkCapacity: 100})
		if err != nil {
			return false
		}
		net := NewNetwork(top)
		hosts := top.Hosts()
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			s := hosts[rng.Intn(len(hosts))]
			d := hosts[rng.Intn(len(hosts))]
			if s == d {
				continue
			}
			net.AddFlow(0, FlowSpec{Src: s, Dst: d, Bits: 1e6})
		}
		NewIdealMaxMin(net).Allocate(net)
		for _, l := range top.Links() {
			sum := 0.0
			for _, fid := range net.FlowsOn(l.ID) {
				fl, _ := net.Flow(fid)
				sum += fl.Rate
			}
			if sum > net.Capacity(l.ID)*(1+1e-9) {
				return false
			}
		}
		// And every flow got a strictly positive rate (no starvation).
		ok := true
		net.ForEachActive(func(fl *Flow) {
			if fl.Rate <= 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaxMinBottleneckSaturation(t *testing.T) {
	// Property of max-min: every flow is bottlenecked at some saturated
	// link on its path (Pareto efficiency).
	net, hosts := testbed(t, 5)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 12; i++ {
		s := hosts[rng.Intn(len(hosts))]
		d := hosts[rng.Intn(len(hosts))]
		if s == d {
			continue
		}
		net.AddFlow(0, FlowSpec{Src: s, Dst: d, Bits: 1e6})
	}
	NewIdealMaxMin(net).Allocate(net)
	net.ForEachActive(func(f *Flow) {
		saturated := false
		for _, l := range f.Path {
			sum := 0.0
			for _, fid := range net.FlowsOn(l) {
				ff, _ := net.Flow(fid)
				sum += ff.Rate
			}
			if sum >= net.Capacity(l)*(1-1e-6) {
				saturated = true
			}
		}
		if !saturated {
			t.Errorf("flow %d (rate %g) has no saturated link on its path", f.ID, f.Rate)
		}
	})
}

func TestFECNUncongestedEqualsIdeal(t *testing.T) {
	net, hosts := testbed(t, 4)
	// One flow: no congestion → full line rate, no derating.
	id, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1e6})
	NewFECN(net, 0.9).Allocate(net)
	if r := rate(t, net, id); math.Abs(r-100) > 1e-9 {
		t.Errorf("uncongested FECN rate = %g, want 100", r)
	}
}

func TestFECNDeratesCongestedLinks(t *testing.T) {
	net, hosts := testbed(t, 3)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1e6})
	NewFECN(net, 0.9).Allocate(net)
	// h2 downlink congested: 100 × 0.9 / 2 = 45 each.
	if ra := rate(t, net, a); math.Abs(ra-45) > 1e-9 {
		t.Errorf("FECN flow a = %g, want 45", ra)
	}
	if rb := rate(t, net, b); math.Abs(rb-45) > 1e-9 {
		t.Errorf("FECN flow b = %g, want 45", rb)
	}
}

func TestFECNDefaultEfficiency(t *testing.T) {
	net, _ := testbed(t, 2)
	a := NewFECN(net, 0)
	if a.Efficiency != DefaultFECNEfficiency {
		t.Errorf("default efficiency = %g, want %g", a.Efficiency, DefaultFECNEfficiency)
	}
	if a.Name() != "fecn-baseline" {
		t.Errorf("Name = %q", a.Name())
	}
}

func TestLocalFlowCompletesAtLocalRate(t *testing.T) {
	net, hosts := testbed(t, 2)
	id, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[0], Bits: 1e6})
	NewIdealMaxMin(net).Allocate(net)
	if r := rate(t, net, id); r != LocalRate {
		t.Errorf("loopback rate = %g, want LocalRate", r)
	}
}
