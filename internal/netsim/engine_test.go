package netsim

import (
	"math"
	"testing"
)

func TestEngineSingleFlowCompletionTime(t *testing.T) {
	net, hosts := testbed(t, 2)
	e := NewEngine(net, NewIdealMaxMin(net))
	var doneAt float64 = -1
	_, err := e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1000}, func(e *Engine, id FlowID) {
		doneAt = e.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// 1000 bits at 100 bits/sec = 10 seconds.
	if math.Abs(doneAt-10) > 1e-6 {
		t.Errorf("completion at %g, want 10", doneAt)
	}
	if !e.Idle() {
		t.Error("engine should be idle after Run")
	}
}

func TestEngineTwoFlowsSequentialCompletion(t *testing.T) {
	// Two flows share a downlink at 50 each; the short one finishes first,
	// after which the long one speeds up to 100.
	net, hosts := testbed(t, 3)
	e := NewEngine(net, NewIdealMaxMin(net))
	times := map[string]float64{}
	e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 500}, func(e *Engine, id FlowID) {
		times["short"] = e.Now()
	})
	e.AddFlow(FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 2000}, func(e *Engine, id FlowID) {
		times["long"] = e.Now()
	})
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// Short: 500/50 = 10s. Long: 10s at 50 (500 sent) + 1500/100 = 25s.
	if math.Abs(times["short"]-10) > 1e-6 {
		t.Errorf("short done at %g, want 10", times["short"])
	}
	if math.Abs(times["long"]-25) > 1e-6 {
		t.Errorf("long done at %g, want 25", times["long"])
	}
}

func TestEngineScheduledEventsAddFlows(t *testing.T) {
	net, hosts := testbed(t, 2)
	e := NewEngine(net, NewIdealMaxMin(net))
	var doneAt float64
	if err := e.At(5, func(e *Engine) {
		e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 100}, func(e *Engine, id FlowID) {
			doneAt = e.Now()
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if math.Abs(doneAt-6) > 1e-6 { // starts at 5, 100 bits / 100 bps = 1s
		t.Errorf("flow done at %g, want 6", doneAt)
	}
}

func TestEngineAfterAndPastEvent(t *testing.T) {
	net, _ := testbed(t, 2)
	e := NewEngine(net, NewIdealMaxMin(net))
	if err := e.After(-1, func(*Engine) {}); err == nil {
		t.Error("negative After should fail")
	}
	e.After(1, func(*Engine) {})
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if err := e.At(0.5, func(*Engine) {}); err == nil {
		t.Error("At in the past should fail")
	}
}

func TestEngineCancelFlow(t *testing.T) {
	net, hosts := testbed(t, 2)
	e := NewEngine(net, NewIdealMaxMin(net))
	fired := false
	id, _ := e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1e9}, func(*Engine, FlowID) {
		fired = true
	})
	if err := e.CancelFlow(id); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("cancelled flow's callback fired")
	}
	if err := e.CancelFlow(id); err == nil {
		t.Error("double cancel should fail")
	}
}

func TestEngineHorizon(t *testing.T) {
	net, hosts := testbed(t, 2)
	e := NewEngine(net, NewIdealMaxMin(net))
	e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1e9}, nil) // 1e7 seconds
	if err := e.Run(100); err == nil {
		t.Error("Run past horizon should fail")
	}
}

func TestEngineRunUntil(t *testing.T) {
	net, hosts := testbed(t, 2)
	e := NewEngine(net, NewIdealMaxMin(net))
	done := 0
	for i := 0; i < 3; i++ {
		bits := float64(100 * (i + 1))
		e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: bits}, func(*Engine, FlowID) { done++ })
	}
	if err := e.RunUntil(math.Inf(1), func() bool { return done >= 1 }); err != nil {
		t.Fatal(err)
	}
	if done != 1 {
		t.Errorf("RunUntil stopped after %d completions, want 1", done)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if done != 3 {
		t.Errorf("total completions = %d, want 3", done)
	}
}

func TestEngineLoopbackFlow(t *testing.T) {
	net, hosts := testbed(t, 2)
	e := NewEngine(net, NewIdealMaxMin(net))
	var doneAt float64 = -1
	e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[0], Bits: 1e9}, func(e *Engine, id FlowID) {
		doneAt = e.Now()
	})
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if doneAt < 0 || doneAt > 1e-3 {
		t.Errorf("loopback flow done at %g, want ~0", doneAt)
	}
}

func TestEngineSetAllocatorMidRun(t *testing.T) {
	net, hosts := testbed(t, 3)
	e := NewEngine(net, NewIdealMaxMin(net))
	w := NewWFQ(net)
	for _, l := range net.Topology().Links() {
		w.Configure(l.ID, PortConfig{Weights: []float64{0.9, 0.1}, PLQueue: map[int]int{0: 0, 1: 1}})
	}
	var t0, t1 float64
	e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 4000, PL: 0}, func(e *Engine, id FlowID) { t0 = e.Now() })
	e.AddFlow(FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 4000, PL: 1}, func(e *Engine, id FlowID) { t1 = e.Now() })
	// Switch to WFQ at t=0 via event.
	e.At(0, func(e *Engine) { e.SetAllocator(w) })
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if t0 >= t1 {
		t.Errorf("PL0 (weight .9) finished at %g, PL1 at %g; want PL0 first", t0, t1)
	}
	if e.Allocator() != w {
		t.Error("Allocator() should return the swapped allocator")
	}
}

func TestEngineConservationOfBytes(t *testing.T) {
	// The sum of all flow sizes equals capacity × busy time on the shared
	// link when it is the single bottleneck throughout.
	net, hosts := testbed(t, 3)
	e := NewEngine(net, NewIdealMaxMin(net))
	total := 0.0
	for i := 0; i < 10; i++ {
		bits := float64(1000 + 100*i)
		total += bits
		src := hosts[i%2]
		e.AddFlow(FlowSpec{Src: src, Dst: hosts[2], Bits: bits}, nil)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// Shared downlink capacity 100; all traffic crosses it; last bit at
	// total/100 seconds (work conservation on the bottleneck).
	want := total / 100
	if math.Abs(e.Now()-want) > 1e-6*want {
		t.Errorf("makespan = %g, want %g", e.Now(), want)
	}
}

func TestEngineDeadlockDetection(t *testing.T) {
	// An allocator that assigns zero rates with no pending events must
	// surface ErrDeadlock instead of spinning.
	net, hosts := testbed(t, 2)
	e := NewEngine(net, zeroAllocator{})
	e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 100}, nil)
	err := e.Run(math.Inf(1))
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

type zeroAllocator struct{}

func (zeroAllocator) Name() string { return "zero" }
func (zeroAllocator) Allocate(net *Network) {
	net.ForEachActive(func(f *Flow) { f.Rate = 0 })
}
func (zeroAllocator) AllocateScoped(net *Network, ids []FlowID) bool {
	for _, id := range ids {
		net.flows[id].Rate = 0
	}
	return true
}

func TestEngineHomaEndToEndSRPT(t *testing.T) {
	// Under Homa, a burst of short flows finishes before a long flow even
	// when started together; under max-min the long flow would finish at
	// its fair-share pace. Verify total ordering.
	net, hosts := testbed(t, 3)
	e := NewEngine(net, NewHoma(net, nil))
	var longDone, lastShort float64
	e.AddFlow(FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1e6}, func(e *Engine, id FlowID) { longDone = e.Now() })
	for i := 0; i < 5; i++ {
		e.AddFlow(FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1000}, func(e *Engine, id FlowID) { lastShort = e.Now() })
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if lastShort >= longDone {
		t.Errorf("shorts finished at %g, long at %g; want shorts strictly first", lastShort, longDone)
	}
}
