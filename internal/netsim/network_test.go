package netsim

import (
	"math"
	"testing"

	"saba/internal/topology"
)

func testbed(t *testing.T, hosts int) (*Network, []topology.NodeID) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{
		Hosts: hosts, LinkCapacity: 100, // 100 bits/sec: easy arithmetic
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewNetwork(top), top.Hosts()
}

func TestAddRemoveFlow(t *testing.T) {
	net, hosts := testbed(t, 4)
	id, err := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1000, App: 1, PL: 2, Coflow: NoCoflow})
	if err != nil {
		t.Fatal(err)
	}
	f, err := net.Flow(id)
	if err != nil {
		t.Fatal(err)
	}
	if f.Remaining != 1000 || f.App != 1 || f.PL != 2 {
		t.Errorf("flow state wrong: %+v", f)
	}
	if len(f.Path) != 2 {
		t.Errorf("path length = %d, want 2", len(f.Path))
	}
	if net.NumActive() != 1 {
		t.Errorf("NumActive = %d, want 1", net.NumActive())
	}
	for _, l := range f.Path {
		if got := net.FlowsOn(l); len(got) != 1 || got[0] != id {
			t.Errorf("FlowsOn(%d) = %v", l, got)
		}
	}
	if err := net.RemoveFlow(id); err != nil {
		t.Fatal(err)
	}
	if net.NumActive() != 0 {
		t.Errorf("NumActive after remove = %d", net.NumActive())
	}
	if err := net.RemoveFlow(id); err == nil {
		t.Error("double remove should fail")
	}
	if _, err := net.Flow(id); err == nil {
		t.Error("Flow on removed id should fail")
	}
}

func TestAddFlowValidation(t *testing.T) {
	net, hosts := testbed(t, 2)
	if _, err := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 0}); err == nil {
		t.Error("zero-size flow should fail")
	}
	if _, err := net.AddFlow(0, FlowSpec{Src: topology.NodeID(99), Dst: hosts[1], Bits: 1}); err == nil {
		t.Error("unknown src should fail")
	}
}

func TestFlowIDRecycling(t *testing.T) {
	net, hosts := testbed(t, 2)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1})
	net.RemoveFlow(a)
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[0], Bits: 1})
	if a != b {
		t.Errorf("freed ID not recycled: got %d, want %d", b, a)
	}
}

func TestCapacityOverrides(t *testing.T) {
	net, hosts := testbed(t, 2)
	top := net.Topology()
	up := top.OutLinks(hosts[0])[0]
	if c := net.Capacity(up); c != 100 {
		t.Fatalf("capacity = %g, want 100", c)
	}
	if err := net.SetCapacityOverride(up, 25); err != nil {
		t.Fatal(err)
	}
	if c := net.Capacity(up); c != 25 {
		t.Errorf("overridden capacity = %g, want 25", c)
	}
	net.ClearCapacityOverride(up)
	if c := net.Capacity(up); c != 100 {
		t.Errorf("restored capacity = %g, want 100", c)
	}
	if err := net.SetCapacityOverride(up, 0); err == nil {
		t.Error("zero override should fail")
	}
}

func TestThrottleHost(t *testing.T) {
	net, hosts := testbed(t, 3)
	if err := net.ThrottleHost(hosts[0], 0.25); err != nil {
		t.Fatal(err)
	}
	top := net.Topology()
	up := top.OutLinks(hosts[0])[0]
	if c := net.Capacity(up); math.Abs(c-25) > 1e-9 {
		t.Errorf("throttled egress = %g, want 25", c)
	}
	// The switch→host direction must be throttled too.
	lk, _ := top.Link(up)
	for _, down := range top.OutLinks(lk.To) {
		dl, _ := top.Link(down)
		if dl.To == hosts[0] {
			if c := net.Capacity(down); math.Abs(c-25) > 1e-9 {
				t.Errorf("throttled ingress = %g, want 25", c)
			}
		}
	}
	net.UnthrottleHost(hosts[0])
	if c := net.Capacity(up); c != 100 {
		t.Errorf("unthrottled = %g, want 100", c)
	}

	if err := net.ThrottleHost(hosts[0], 0); err == nil {
		t.Error("zero fraction should fail")
	}
	if err := net.ThrottleHost(hosts[0], 1.5); err == nil {
		t.Error("fraction > 1 should fail")
	}
	if err := net.ThrottleHost(net.Topology().Switches()[0], 0.5); err == nil {
		t.Error("throttling a switch should fail")
	}
}

func TestLinkUtilization(t *testing.T) {
	net, hosts := testbed(t, 2)
	id, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1000})
	f, _ := net.Flow(id)
	f.Rate = 50
	up := net.Topology().OutLinks(hosts[0])[0]
	if u := net.LinkUtilization(up); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %g, want 0.5", u)
	}
	f.Rate = 200 // overload clamps at 1
	if u := net.LinkUtilization(up); u != 1 {
		t.Errorf("overloaded utilization = %g, want 1", u)
	}
}

func TestAddFlowsRollsBackOnError(t *testing.T) {
	net, hosts := testbed(t, 4)
	pre, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 500})
	specs := []FlowSpec{
		{Src: hosts[0], Dst: hosts[2], Bits: 1000},
		{Src: hosts[1], Dst: hosts[3], Bits: 1000},
		{Src: hosts[2], Dst: hosts[3], Bits: 0}, // invalid: must poison the batch
	}
	ids, err := net.AddFlows(0, specs)
	if err == nil {
		t.Fatal("batch with an invalid spec admitted")
	}
	if ids != nil {
		t.Errorf("failed batch returned ids %v", ids)
	}
	if net.NumActive() != 1 {
		t.Errorf("NumActive = %d after rollback, want 1 (the pre-existing flow)", net.NumActive())
	}
	for _, lk := range net.Topology().Links() {
		for _, fid := range net.FlowsOn(lk.ID) {
			if fid != pre {
				t.Errorf("link %d still lists rolled-back flow %d", lk.ID, fid)
			}
		}
	}
	// The network remains usable: the same valid prefix admits cleanly.
	ids, err = net.AddFlows(0, specs[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || net.NumActive() != 3 {
		t.Errorf("post-rollback admission: ids %v, active %d", ids, net.NumActive())
	}
}

// checkLinkIndex verifies the linkFlows/pathPos cross-index invariant:
// every active flow appears exactly once on each path link, at the
// position its pathPos records.
func checkLinkIndex(t *testing.T, net *Network) {
	t.Helper()
	for id := range net.flows {
		f := &net.flows[id]
		if !f.active {
			continue
		}
		for k, l := range f.Path {
			fs := net.linkFlows[l]
			i := int(f.pathPos[k])
			if i < 0 || i >= len(fs) || fs[i] != FlowID(id) {
				t.Fatalf("flow %d link %d: pathPos %d does not point back (len %d)", id, l, i, len(fs))
			}
		}
	}
	for l, fs := range net.linkFlows {
		for _, fid := range fs {
			if !net.flows[fid].active {
				t.Fatalf("link %d lists inactive flow %d", l, fid)
			}
		}
	}
}

func TestRemoveFlowKeepsIndexConsistent(t *testing.T) {
	net, hosts := testbed(t, 4)
	var ids []FlowID
	// Many overlapping flows so swap-removes genuinely relocate entries.
	for i := 0; i < 12; i++ {
		id, err := net.AddFlow(0, FlowSpec{
			Src: hosts[i%4], Dst: hosts[(i+1+i%3)%4], Bits: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	checkLinkIndex(t, net)
	// Remove out of order: middle, head, tail, then the rest interleaved.
	order := []int{5, 0, 11, 3, 8, 1, 10, 2, 7, 4, 9, 6}
	for _, k := range order {
		if err := net.RemoveFlow(ids[k]); err != nil {
			t.Fatalf("remove %d: %v", ids[k], err)
		}
		checkLinkIndex(t, net)
	}
	if net.NumActive() != 0 {
		t.Errorf("NumActive = %d after removing all", net.NumActive())
	}
}
