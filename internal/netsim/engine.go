package netsim

import (
	"errors"
	"fmt"
	"math"

	"saba/internal/sim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// engineMetrics holds the simulator's telemetry instruments, resolved
// once at construction so the event loop never does registry lookups.
// flowSeconds records *virtual* durations (sim-time clock semantics):
// under a fixed seed the histogram is bit-for-bit reproducible.
type engineMetrics struct {
	reg             *telemetry.Registry
	events          *telemetry.Counter // netsim.events
	rateRecomputes  *telemetry.Counter // netsim.rate_recomputes
	flowCompletions *telemetry.Counter // netsim.flow_completions
	flowsActive     *telemetry.Gauge   // netsim.flows_active
	flowSeconds     *telemetry.Histogram

	// Per-allocator port-utilization gauges, cached by allocator name
	// (allocators can be swapped mid-run via SetAllocator).
	utilMax  map[string]*telemetry.Gauge // netsim.port_util_max{alloc=...}
	utilMean map[string]*telemetry.Gauge // netsim.port_util_mean{alloc=...}
}

func newEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	return &engineMetrics{
		reg:             reg,
		events:          reg.Counter("netsim.events"),
		rateRecomputes:  reg.Counter("netsim.rate_recomputes"),
		flowCompletions: reg.Counter("netsim.flow_completions"),
		flowsActive:     reg.Gauge("netsim.flows_active"),
		flowSeconds:     reg.Histogram("netsim.flow_seconds"),
		utilMax:         map[string]*telemetry.Gauge{},
		utilMean:        map[string]*telemetry.Gauge{},
	}
}

// utilGauges returns the utilization gauges for the named allocator,
// creating them on first use.
func (m *engineMetrics) utilGauges(alloc string) (max, mean *telemetry.Gauge) {
	max = m.utilMax[alloc]
	if max == nil {
		max = m.reg.Gauge(telemetry.Label("netsim.port_util_max", "alloc", alloc))
		m.utilMax[alloc] = max
	}
	mean = m.utilMean[alloc]
	if mean == nil {
		mean = m.reg.Gauge(telemetry.Label("netsim.port_util_mean", "alloc", alloc))
		m.utilMean[alloc] = mean
	}
	return max, mean
}

// Engine is the fluid discrete-event driver: it alternates between
// recomputing flow rates (whenever the flow set changes) and advancing
// virtual time to the next flow completion or scheduled event.
type Engine struct {
	net    *Network
	alloc  Allocator
	clock  sim.Clock
	events sim.Queue
	dirty  bool
	onDone map[FlowID]func(*Engine, FlowID)
	tel    *engineMetrics

	// OnAdvance, when set, observes every time advance [t0, t1) with the
	// flow rates that were in force during it — the hook used by the
	// utilization tracer (Fig. 2). It runs after flows have progressed but
	// before completion callbacks fire.
	OnAdvance func(e *Engine, t0, t1 float64)

	// completed scratch buffer
	done []FlowID
}

// Errors returned by Run.
var (
	ErrDeadlock = errors.New("netsim: zero-rate flows with no pending events (allocation deadlock)")
	ErrHorizon  = errors.New("netsim: simulation horizon exceeded")
)

// NewEngine creates an engine over the network with the given allocator.
func NewEngine(net *Network, alloc Allocator) *Engine {
	return &Engine{
		net:    net,
		alloc:  alloc,
		onDone: map[FlowID]func(*Engine, FlowID){},
		tel:    newEngineMetrics(telemetry.Default),
	}
}

// SetTelemetry rebinds the engine's instruments to reg (tests use this to
// isolate from the process-wide default registry).
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	e.tel = newEngineMetrics(reg)
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.clock.Now() }

// Network returns the underlying network.
func (e *Engine) Network() *Network { return e.net }

// Allocator returns the active allocator.
func (e *Engine) Allocator() Allocator { return e.alloc }

// SetAllocator swaps the bandwidth-sharing discipline; rates are
// recomputed on the next step.
func (e *Engine) SetAllocator(a Allocator) {
	e.alloc = a
	e.dirty = true
}

// MarkDirty forces a rate recomputation on the next step (used after
// out-of-band configuration changes such as new WFQ weights).
func (e *Engine) MarkDirty() { e.dirty = true }

// AddFlow activates a flow; onDone (optional) fires when it completes.
func (e *Engine) AddFlow(spec FlowSpec, onDone func(*Engine, FlowID)) (FlowID, error) {
	id, err := e.net.AddFlow(e.Now(), spec)
	if err != nil {
		return 0, err
	}
	if onDone != nil {
		e.onDone[id] = onDone
	}
	e.dirty = true
	e.tel.flowsActive.Set(float64(e.net.NumActive()))
	return id, nil
}

// CancelFlow removes a flow without firing its completion callback.
func (e *Engine) CancelFlow(id FlowID) error {
	if err := e.net.RemoveFlow(id); err != nil {
		return err
	}
	delete(e.onDone, id)
	e.dirty = true
	e.tel.flowsActive.Set(float64(e.net.NumActive()))
	return nil
}

// At schedules fn at absolute virtual time t (>= Now).
func (e *Engine) At(t float64, fn func(*Engine)) error {
	if t < e.Now() {
		return fmt.Errorf("%w: %g < %g", sim.ErrPastEvent, t, e.Now())
	}
	e.events.Schedule(t, func() { fn(e) })
	return nil
}

// After schedules fn dt seconds from now.
func (e *Engine) After(dt float64, fn func(*Engine)) error {
	if dt < 0 {
		return fmt.Errorf("netsim: negative delay %g", dt)
	}
	return e.At(e.Now()+dt, fn)
}

// Idle reports whether nothing remains to simulate.
func (e *Engine) Idle() bool {
	return e.net.NumActive() == 0 && e.events.Len() == 0
}

// Run advances the simulation until idle or until virtual time exceeds
// horizon (seconds; use math.Inf(1) for no limit).
func (e *Engine) Run(horizon float64) error {
	for !e.Idle() {
		if err := e.step(horizon); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances until the predicate holds, the simulation idles, or
// the horizon passes.
func (e *Engine) RunUntil(horizon float64, pred func() bool) error {
	for !e.Idle() && !pred() {
		if err := e.step(horizon); err != nil {
			return err
		}
	}
	return nil
}

// step performs one event iteration: reallocate if needed, advance to the
// next completion/event, fire callbacks.
func (e *Engine) step(horizon float64) error {
	e.tel.events.Inc()
	if e.dirty {
		e.alloc.Allocate(e.net)
		e.dirty = false
		e.tel.rateRecomputes.Inc()
		e.observeUtilization()
	}

	// Earliest flow completion.
	dtFlow := math.Inf(1)
	e.net.ForEachActive(func(f *Flow) {
		if f.Rate > 0 {
			if dt := f.Remaining / f.Rate; dt < dtFlow {
				dtFlow = dt
			}
		}
	})
	tFlow := e.Now() + dtFlow

	tEvent := math.Inf(1)
	if at, ok := e.events.PeekTime(); ok {
		tEvent = at
	}

	tNext := math.Min(tFlow, tEvent)
	if math.IsInf(tNext, 1) {
		if e.net.NumActive() > 0 {
			return ErrDeadlock
		}
		return nil
	}
	if tNext > horizon {
		return fmt.Errorf("%w: next event at %gs > horizon %gs", ErrHorizon, tNext, horizon)
	}

	// Advance all flows by dt and collect completions.
	dt := tNext - e.Now()
	e.done = e.done[:0]
	e.net.ForEachActive(func(f *Flow) {
		if f.Rate > 0 && dt > 0 {
			f.Remaining -= f.Rate * dt
		}
		if f.Remaining <= completionSlack(f) {
			f.Remaining = 0
			e.done = append(e.done, f.ID)
		}
	})
	t0 := e.Now()
	if err := e.clock.AdvanceTo(tNext); err != nil {
		return err
	}
	if e.OnAdvance != nil && dt > 0 {
		e.OnAdvance(e, t0, tNext)
	}

	for _, id := range e.done {
		fn := e.onDone[id]
		delete(e.onDone, id)
		if f, err := e.net.Flow(id); err == nil {
			e.tel.flowSeconds.Observe(e.Now() - f.Start)
		}
		if err := e.net.RemoveFlow(id); err != nil {
			return err
		}
		e.tel.flowCompletions.Inc()
		e.dirty = true
		if fn != nil {
			fn(e, id)
		}
	}
	if len(e.done) > 0 {
		e.tel.flowsActive.Set(float64(e.net.NumActive()))
	}

	// Fire all events due now.
	for {
		at, ok := e.events.PeekTime()
		if !ok || at > e.Now()+timeSlack {
			break
		}
		ev, _ := e.events.Pop()
		ev.Fn()
	}
	return nil
}

// observeUtilization refreshes the per-allocator port-utilization gauges
// after a rate recomputation: the max and mean utilization across all
// links carrying at least one flow (idle links are excluded so sparse
// topologies don't drown the mean).
func (e *Engine) observeUtilization() {
	var sum, max float64
	n := 0
	for l := range e.net.linkFlows {
		if len(e.net.linkFlows[l]) == 0 {
			continue
		}
		u := e.net.LinkUtilization(topology.LinkID(l))
		sum += u
		if u > max {
			max = u
		}
		n++
	}
	gMax, gMean := e.tel.utilGauges(e.alloc.Name())
	gMax.Set(max)
	if n > 0 {
		gMean.Set(sum / float64(n))
	} else {
		gMean.Set(0)
	}
}

// timeSlack absorbs floating-point drift when comparing event times.
const timeSlack = 1e-9

// completionSlack is the residual size below which a flow counts as
// finished: absolute floor plus a relative component for huge transfers.
func completionSlack(f *Flow) float64 {
	return 1e-6 + f.Size*1e-12
}
