package netsim

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"strconv"
	"sync/atomic"

	"saba/internal/sim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// engineSeq hands every engine a process-unique id for its telemetry
// label set. Before this, the utilization gauges were keyed by allocator
// name alone, so two engines running the same allocator concurrently
// (sabaexp -parallel) raced on one shared gauge and overwrote each
// other's readings.
var engineSeq atomic.Uint64

// engineMetrics holds the simulator's telemetry instruments, resolved
// once at construction so the event loop never does registry lookups.
// flowSeconds records *virtual* durations (sim-time clock semantics):
// under a fixed seed the histogram is bit-for-bit reproducible.
type engineMetrics struct {
	reg              *telemetry.Registry
	events           *telemetry.Counter // netsim.events
	rateRecomputes   *telemetry.Counter // netsim.rate_recomputes
	scopedRecomputes *telemetry.Counter // netsim.scoped_recomputes
	dirtyFlows       *telemetry.Counter // netsim.dirty_flows
	flowCompletions  *telemetry.Counter // netsim.flow_completions
	linkFailures     *telemetry.Counter // netsim.link_failures
	linkRestores     *telemetry.Counter // netsim.link_restores
	flowReroutes     *telemetry.Counter // netsim.flow_reroutes
	flowStalls       *telemetry.Counter // netsim.flow_stalls
	flowResumes      *telemetry.Counter // netsim.flow_resumes
	lookaheadRounds  *telemetry.Counter // netsim.lookahead_rounds
	lookaheadEvents  *telemetry.Counter // netsim.lookahead_completions
	flowsActive      *telemetry.Gauge   // netsim.flows_active{engine=...}
	heapSize         *telemetry.Gauge   // netsim.completion_heap_size{engine=...}
	flowSeconds      *telemetry.Histogram

	// Per-allocator port-utilization gauges, cached by (allocator name)
	// within this engine's metrics (allocators can be swapped mid-run via
	// SetAllocator). The label set additionally carries the engine id so
	// two engines running the same allocator concurrently never share a
	// gauge.
	engineID string
	utilMax  map[string]*telemetry.Gauge // netsim.port_util_max{alloc=...,engine=...}
	utilMean map[string]*telemetry.Gauge // netsim.port_util_mean{alloc=...,engine=...}
}

func newEngineMetrics(reg *telemetry.Registry, engineID string) *engineMetrics {
	return &engineMetrics{
		reg:              reg,
		engineID:         engineID,
		events:           reg.Counter("netsim.events"),
		rateRecomputes:   reg.Counter("netsim.rate_recomputes"),
		scopedRecomputes: reg.Counter("netsim.scoped_recomputes"),
		dirtyFlows:       reg.Counter("netsim.dirty_flows"),
		flowCompletions:  reg.Counter("netsim.flow_completions"),
		linkFailures:     reg.Counter("netsim.link_failures"),
		linkRestores:     reg.Counter("netsim.link_restores"),
		flowReroutes:     reg.Counter("netsim.flow_reroutes"),
		flowStalls:       reg.Counter("netsim.flow_stalls"),
		flowResumes:      reg.Counter("netsim.flow_resumes"),
		lookaheadRounds:  reg.Counter("netsim.lookahead_rounds"),
		lookaheadEvents:  reg.Counter("netsim.lookahead_completions"),
		flowsActive:      reg.Gauge(telemetry.Label("netsim.flows_active", "engine", engineID)),
		heapSize:         reg.Gauge(telemetry.Label("netsim.completion_heap_size", "engine", engineID)),
		flowSeconds:      reg.Histogram("netsim.flow_seconds"),
		utilMax:          map[string]*telemetry.Gauge{},
		utilMean:         map[string]*telemetry.Gauge{},
	}
}

// utilGauges returns the utilization gauges for the named allocator,
// creating them on first use.
func (m *engineMetrics) utilGauges(alloc string) (max, mean *telemetry.Gauge) {
	max = m.utilMax[alloc]
	if max == nil {
		max = m.reg.Gauge(telemetry.Label("netsim.port_util_max", "alloc", alloc, "engine", m.engineID))
		m.utilMax[alloc] = max
	}
	mean = m.utilMean[alloc]
	if mean == nil {
		mean = m.reg.Gauge(telemetry.Label("netsim.port_util_mean", "alloc", alloc, "engine", m.engineID))
		m.utilMean[alloc] = mean
	}
	return max, mean
}

// Engine is the fluid discrete-event driver: it alternates between
// recomputing flow rates (whenever the flow set changes) and advancing
// virtual time to the next flow completion or scheduled event.
//
// Two structures make each step cheap in large networks. First, an
// indexed min-heap of projected completion times replaces the per-step
// scan over all active flows: a flow's heap key is lastSet +
// Remaining/Rate, recomputed only when its rate actually changes, so
// finding the next completion is O(1). Second, rate recomputation is
// scoped to the dirty component — the flows transitively link-connected
// to whatever was added or removed — because bandwidth sharing across
// disjoint components is independent for separable disciplines.
// Allocators that cannot localize (Homa, Sincronia) decline via
// AllocateScoped and fall back to a full recompute; SetFullRecompute
// forces the pre-refactor global path for A/B validation.
type Engine struct {
	net      *Network
	alloc    Allocator
	clock    sim.Clock
	events   sim.Queue
	onDone   []func(*Engine, FlowID) // indexed by FlowID; nil = no callback
	tel      *engineMetrics
	engineID string // process-unique telemetry label, from engineSeq

	dirty    bool
	dirtyAll bool // recompute cannot be scoped (allocator swap, reconfig)
	full     bool // FullRecompute escape hatch: never scope

	// Dirty-set seeds accumulated since the last recompute: flows added
	// (their components must be rated) and links whose capacity was
	// released by removed flows (their surviving flows' components must
	// be re-rated).
	seedFlows []FlowID
	seedLinks []topology.LinkID

	// completions maps every active flow with a positive rate to its
	// projected completion time. In sharded mode (sh != nil) this heap is
	// empty: projections live in the per-shard heaps instead, and all heap
	// traffic goes through heapFix/heapRemove so both modes share the
	// recompute, cancel and failure machinery.
	completions sim.IndexedHeap

	// sh, when non-nil, holds the sharded-engine state: per-partition
	// completion heaps and allocator clones coordinated by a conservative
	// virtual-time barrier. nil selects the serial legacy path, which is
	// the zero value and stays bit-for-bit reproducible. See shard.go.
	sh *shardedState

	// Recompute scratch, reused across steps. epoch is atomic because
	// the sharded engine's lookahead windows run component traversals
	// concurrently (per-shard linkSeen arrays, shared flowSeen with
	// owner-only writes) and draw their epochs from the same counter as
	// the serial phases; the serial path pays one uncontended atomic add
	// per recompute.
	ids      []FlowID  // flows handed to the allocator last recompute
	oldRates []float64 // parallel to ids: rates before the recompute
	linkSeen []int64   // epoch marks for the component BFS
	flowSeen []int64
	epoch    atomic.Int64
	stack    []topology.LinkID // BFS worklist
	done     []FlowID          // completions of the current step

	// Completion-callback accounting for the lookahead gate: windows
	// reorder when callbacks run relative to other shards' simulation
	// work, which is only safe when every registered callback is pure
	// (PureCallbacks) or none is registered at all (onDoneCount == 0).
	onDoneCount   int
	pureCallbacks bool
	poolFinalizer bool // worker-pool cleanup finalizer registered

	// Stalled-flow tracking: flows parked with no live path after a link
	// failure. stalled may hold stale or duplicate entries (slots recycle);
	// resumeStalled filters on the per-flow flag, and stalledCount is the
	// exact live count.
	stalled      []FlowID
	stalledCount int

	// OnAdvance, when set, observes every time advance [t0, t1) with the
	// flow rates that were in force during it — the hook used by the
	// utilization tracer (Fig. 2). It runs after flows have progressed but
	// before completion callbacks fire.
	OnAdvance func(e *Engine, t0, t1 float64)

	// OnTopologyChange, when set, fires after every applied link or switch
	// failure/restore with the new topology liveness epoch. core.RunJobs
	// wires it to the controller's reconvergence path.
	OnTopologyChange func(e *Engine, epoch uint64)
}

// Errors returned by Run.
var (
	ErrDeadlock = errors.New("netsim: zero-rate flows with no pending events (allocation deadlock)")
	ErrHorizon  = errors.New("netsim: simulation horizon exceeded")
)

// NewEngine creates an engine over the network with the given allocator.
func NewEngine(net *Network, alloc Allocator) *Engine {
	id := strconv.FormatUint(engineSeq.Add(1), 10)
	return &Engine{
		net:      net,
		alloc:    alloc,
		engineID: id,
		tel:      newEngineMetrics(telemetry.Default, id),
	}
}

// SetTelemetry rebinds the engine's instruments to reg (tests use this to
// isolate from the process-wide default registry).
func (e *Engine) SetTelemetry(reg *telemetry.Registry) {
	e.tel = newEngineMetrics(reg, e.engineID)
	if e.sh != nil {
		e.bindShardGauges()
	}
}

// SetFullRecompute disables (true) or re-enables (false) scoped rate
// recomputation: with full recompute every flow-set change re-rates the
// entire network, the pre-incremental behavior. The differential test
// drives both modes and checks bit-for-bit identical completion times.
func (e *Engine) SetFullRecompute(full bool) { e.full = full }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.clock.Now() }

// Network returns the underlying network.
func (e *Engine) Network() *Network { return e.net }

// Allocator returns the active allocator.
func (e *Engine) Allocator() Allocator { return e.alloc }

// SetAllocator swaps the bandwidth-sharing discipline; rates are
// recomputed on the next step.
func (e *Engine) SetAllocator(a Allocator) {
	e.alloc = a
	e.dirty = true
	e.dirtyAll = true
}

// MarkDirty forces a full rate recomputation on the next step (used after
// out-of-band configuration changes such as new WFQ weights, which can
// shift rates on links no flow was added to or removed from).
func (e *Engine) MarkDirty() {
	e.dirty = true
	e.dirtyAll = true
}

// AddFlow activates a flow; onDone (optional) fires when it completes.
func (e *Engine) AddFlow(spec FlowSpec, onDone func(*Engine, FlowID)) (FlowID, error) {
	id, err := e.net.AddFlow(e.Now(), spec)
	if err != nil {
		return 0, err
	}
	if onDone != nil {
		e.setDone(id, onDone)
	}
	e.seedFlows = append(e.seedFlows, id)
	e.registerIfStalled(id)
	e.noteShardFlow(id, +1)
	e.dirty = true
	e.tel.flowsActive.Set(float64(e.net.NumActive()))
	return id, nil
}

// AddFlows atomically activates a batch of flows under a single pending
// rate recomputation — a job stage's shuffle fan-out admits all its
// flows for the cost of one allocator invocation instead of one per
// flow. onDone (optional) fires once per completing flow.
func (e *Engine) AddFlows(specs []FlowSpec, onDone func(*Engine, FlowID)) ([]FlowID, error) {
	ids, err := e.net.AddFlows(e.Now(), specs)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if onDone != nil {
			e.setDone(id, onDone)
		}
		e.seedFlows = append(e.seedFlows, id)
		e.registerIfStalled(id)
		e.noteShardFlow(id, +1)
	}
	e.dirty = true
	e.tel.flowsActive.Set(float64(e.net.NumActive()))
	return ids, nil
}

// CancelFlow removes a flow without firing its completion callback.
func (e *Engine) CancelFlow(id FlowID) error {
	f, err := e.net.Flow(id)
	if err != nil {
		return err
	}
	e.seedLinks = append(e.seedLinks, f.Path...)
	if f.stalled {
		e.stalledCount--
	}
	e.noteShardFlow(id, -1)
	if err := e.net.RemoveFlow(id); err != nil {
		return err
	}
	e.heapRemove(id)
	e.takeDone(id)
	e.dirty = true
	e.tel.flowsActive.Set(float64(e.net.NumActive()))
	return nil
}

// At schedules fn at absolute virtual time t (>= Now).
func (e *Engine) At(t float64, fn func(*Engine)) error {
	if t < e.Now() {
		return fmt.Errorf("%w: %g < %g", sim.ErrPastEvent, t, e.Now())
	}
	e.events.Schedule(t, func() { fn(e) })
	return nil
}

// After schedules fn dt seconds from now.
func (e *Engine) After(dt float64, fn func(*Engine)) error {
	if dt < 0 {
		return fmt.Errorf("netsim: negative delay %g", dt)
	}
	return e.At(e.Now()+dt, fn)
}

// Idle reports whether nothing remains to simulate.
func (e *Engine) Idle() bool {
	return e.net.NumActive() == 0 && e.events.Len() == 0
}

// Run advances the simulation until idle or until virtual time exceeds
// horizon (seconds; use math.Inf(1) for no limit).
func (e *Engine) Run(horizon float64) error {
	for !e.Idle() {
		if err := e.stepAny(horizon); err != nil {
			return err
		}
	}
	return nil
}

// RunUntil advances until the predicate holds, the simulation idles, or
// the horizon passes.
func (e *Engine) RunUntil(horizon float64, pred func() bool) error {
	for !e.Idle() && !pred() {
		if err := e.stepAny(horizon); err != nil {
			return err
		}
	}
	return nil
}

// stepAny dispatches one event iteration to the serial or sharded loop.
func (e *Engine) stepAny(horizon float64) error {
	if e.sh != nil {
		return e.stepSharded(horizon)
	}
	return e.step(horizon)
}

// step performs one event iteration: reallocate if needed, advance to the
// next completion/event, fire callbacks.
func (e *Engine) step(horizon float64) error {
	e.tel.events.Inc()
	if e.dirty {
		e.recompute()
		e.dirty = false
		e.tel.rateRecomputes.Inc()
		e.observeUtilization()
	}

	// Earliest flow completion: the heap minimum.
	tFlow := math.Inf(1)
	if at, _, ok := e.completions.Min(); ok {
		tFlow = at
	}
	tEvent := math.Inf(1)
	if at, ok := e.events.PeekTime(); ok {
		tEvent = at
	}

	tNext := math.Min(tFlow, tEvent)
	if math.IsInf(tNext, 1) {
		if e.net.NumActive() > 0 {
			return ErrDeadlock
		}
		return nil
	}
	if tNext > horizon {
		return fmt.Errorf("%w: next event at %gs > horizon %gs", ErrHorizon, tNext, horizon)
	}

	t0 := e.Now()
	if err := e.clock.AdvanceTo(tNext); err != nil {
		return err
	}
	e.net.now = tNext
	if e.OnAdvance != nil && tNext > t0 {
		e.OnAdvance(e, t0, tNext)
	}

	// Pop every flow due by tNext. The residual check mirrors the heap
	// key within completionSlack: a flow whose projected residual at
	// tNext is below the slack floor finishes now even if its exact
	// completion time lies marginally beyond.
	e.done = e.done[:0]
	for {
		at, idInt, ok := e.completions.Min()
		if !ok {
			break
		}
		f := &e.net.flows[idInt]
		if at > tNext && f.RemainingAt(tNext) > completionSlack(f) {
			break
		}
		e.completions.Pop()
		f.Remaining = 0
		f.lastSet = tNext
		e.done = append(e.done, FlowID(idInt))
	}
	for _, id := range e.done {
		fn := e.takeDone(id)
		f, err := e.net.Flow(id)
		if err != nil {
			return err
		}
		e.tel.flowSeconds.Observe(tNext - f.Start)
		e.seedLinks = append(e.seedLinks, f.Path...)
		if err := e.net.RemoveFlow(id); err != nil {
			return err
		}
		e.tel.flowCompletions.Inc()
		e.dirty = true
		if fn != nil {
			fn(e, id)
		}
	}
	if len(e.done) > 0 {
		e.tel.flowsActive.Set(float64(e.net.NumActive()))
	}

	// Fire all events due now.
	for {
		at, ok := e.events.PeekTime()
		if !ok || at > e.Now()+timeSlack {
			break
		}
		ev, _ := e.events.Pop()
		ev.Fn()
	}
	return nil
}

// SetPureCallbacks declares that every completion callback registered
// with this engine is pure with respect to the simulation: it may read
// the engine (Now, telemetry) and record results externally, but never
// adds, cancels, reconfigures, or otherwise mutates engine or network
// state. The sharded engine uses the promise to run bounded virtual-time
// lookahead windows: isolated shards retire several completions per
// barrier round, and the callbacks — though fired in the exact serial
// order and at the exact serial virtual times — fire after other shards
// have already simulated past them, which only an effect-free callback
// cannot observe. Without the promise, lookahead stays off whenever any
// callback is registered.
func (e *Engine) SetPureCallbacks(pure bool) { e.pureCallbacks = pure }

// setDone records a completion callback for id.
func (e *Engine) setDone(id FlowID, fn func(*Engine, FlowID)) {
	for int(id) >= len(e.onDone) {
		e.onDone = append(e.onDone, nil)
	}
	if e.onDone[id] == nil {
		e.onDoneCount++
	}
	e.onDone[id] = fn
}

// takeDone removes and returns id's completion callback, if any.
func (e *Engine) takeDone(id FlowID) func(*Engine, FlowID) {
	if int(id) >= len(e.onDone) {
		return nil
	}
	fn := e.onDone[id]
	if fn != nil {
		e.onDoneCount--
	}
	e.onDone[id] = nil
	return fn
}

// recompute re-rates the flows affected by the accumulated flow-set
// changes and re-projects their completion times. With scoping in
// force, the affected set is the dirty component: every flow reachable
// from the seeds through shared links. Disciplines that cannot localize
// decline AllocateScoped and are re-run globally.
func (e *Engine) recompute() {
	now := e.clock.Now()
	scoped := !e.full && !e.dirtyAll
	e.ids = e.ids[:0]
	if scoped {
		e.ids = e.dirtyComponent(e.ids)
	} else {
		e.ids = e.net.ActiveInto(e.ids)
	}
	// An empty dirty set is still offered to the allocator: separable
	// disciplines accept it as a no-op (no link they bill changed), while
	// decliners like Homa must re-rank the whole network on every change
	// — exactly what the widened path below does.
	e.saveOldRates()
	if !e.alloc.AllocateScoped(e.net, e.ids) {
		if scoped {
			// Allocator declined: widen to the full active set.
			e.ids = e.net.ActiveInto(e.ids[:0])
			e.saveOldRates()
			scoped = false
		}
		e.alloc.Allocate(e.net)
	} else if scoped && len(e.ids) > 0 {
		e.tel.scopedRecomputes.Inc()
		e.tel.dirtyFlows.Add(uint64(len(e.ids)))
	}
	e.reproject(now)
	e.clearSeeds()
}

// dirtyComponent expands the seed flows and links into the union of
// link-connected components they touch, appended to buf in ascending
// FlowID order (the order the allocator contract requires).
func (e *Engine) dirtyComponent(buf []FlowID) []FlowID {
	ep := e.epoch.Add(1)
	for len(e.linkSeen) < len(e.net.linkFlows) {
		e.linkSeen = append(e.linkSeen, 0)
	}
	for len(e.flowSeen) < len(e.net.flows) {
		e.flowSeen = append(e.flowSeen, 0)
	}
	e.stack = e.stack[:0]
	for _, l := range e.seedLinks {
		if e.linkSeen[l] != ep {
			e.linkSeen[l] = ep
			e.stack = append(e.stack, l)
		}
	}
	for _, id := range e.seedFlows {
		f := &e.net.flows[id]
		if !f.active || e.flowSeen[id] == ep {
			continue // e.g. admitted then cancelled before this recompute
		}
		e.flowSeen[id] = ep
		buf = append(buf, id)
		for _, l := range f.Path {
			if e.linkSeen[l] != ep {
				e.linkSeen[l] = ep
				e.stack = append(e.stack, l)
			}
		}
	}
	for len(e.stack) > 0 {
		l := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		for _, fid := range e.net.linkFlows[l] {
			if e.flowSeen[fid] == ep {
				continue
			}
			e.flowSeen[fid] = ep
			buf = append(buf, fid)
			for _, fl := range e.net.flows[fid].Path {
				if e.linkSeen[fl] != ep {
					e.linkSeen[fl] = ep
					e.stack = append(e.stack, fl)
				}
			}
		}
	}
	slices.Sort(buf)
	return buf
}

func (e *Engine) saveOldRates() {
	e.oldRates = e.oldRates[:0]
	for _, id := range e.ids {
		e.oldRates = append(e.oldRates, e.net.flows[id].Rate)
	}
}

// reproject materializes Remaining and re-keys the completion heap for
// every flow whose rate actually changed. Flows whose recomputed rate is
// bitwise unchanged are left alone — their lazy projection (and heap
// key) is still exact, which is what makes scoped and full recomputes
// bit-for-bit identical: both skip exactly the flows whose rates agree.
func (e *Engine) reproject(now float64) {
	for i, id := range e.ids {
		f := &e.net.flows[id]
		if !f.active {
			continue
		}
		old := e.oldRates[i]
		if f.Rate == old {
			continue
		}
		if old > 0 && now > f.lastSet {
			f.Remaining -= old * (now - f.lastSet)
			if f.Remaining < 0 {
				f.Remaining = 0
			}
		}
		f.lastSet = now
		if f.Rate > 0 {
			e.heapFix(id, now+f.Remaining/f.Rate)
		} else {
			e.heapRemove(id)
		}
	}
	e.tel.heapSize.Set(float64(e.heapLen()))
}

func (e *Engine) clearSeeds() {
	e.seedFlows = e.seedFlows[:0]
	e.seedLinks = e.seedLinks[:0]
	e.dirtyAll = false
}

// observeUtilization refreshes the per-allocator port-utilization gauges
// after a rate recomputation: the max and mean utilization across the
// busy links touched by the last allocation (under a full recompute that
// is every busy link; under a scoped one, the dirty component's links —
// the only ones whose utilization can have changed).
func (e *Engine) observeUtilization() {
	ep := e.epoch.Add(1)
	for len(e.linkSeen) < len(e.net.linkFlows) {
		e.linkSeen = append(e.linkSeen, 0)
	}
	var sum, max float64
	n := 0
	for _, id := range e.ids {
		f := &e.net.flows[id]
		if !f.active {
			continue
		}
		for _, l := range f.Path {
			if e.linkSeen[l] == ep || len(e.net.linkFlows[l]) == 0 {
				continue
			}
			e.linkSeen[l] = ep
			u := e.net.LinkUtilization(l)
			sum += u
			if u > max {
				max = u
			}
			n++
		}
	}
	gMax, gMean := e.tel.utilGauges(e.alloc.Name())
	gMax.Set(max)
	if n > 0 {
		gMean.Set(sum / float64(n))
	} else {
		gMean.Set(0)
	}
}

// timeSlack absorbs floating-point drift when comparing event times.
const timeSlack = 1e-9

// completionSlack is the residual size below which a flow counts as
// finished: absolute floor plus a relative component for huge transfers.
func completionSlack(f *Flow) float64 {
	return 1e-6 + f.Size*1e-12
}
