// Package netsim is a flow-level (fluid) simulator of a datacenter
// network. Flows traverse the directed links of a topology; a pluggable
// Allocator assigns each active flow a transmission rate according to the
// bandwidth-sharing discipline under study:
//
//   - NewIdealMaxMin: per-flow max-min fairness via progressive filling —
//     the paper's "ideal max-min" upper bound (§8.4, study 4).
//   - NewFECN: the InfiniBand baseline — max-min with the utilization loss
//     of end-to-end FECN congestion management (§8.1).
//   - NewWFQ: Saba's enforcement — per-port queues with weights, flows
//     mapped to queues via PLs (§5.2, §5.3).
//   - NewHoma: flow-size priority classes (§8.4, study 5).
//   - NewSincronia: clairvoyant coflow ordering (§8.4, study 6).
//
// Between rate changes the Engine advances virtual time analytically to
// the next flow or scheduled-event completion, which makes simulating
// hours of cluster time cheap.
package netsim

import (
	"errors"
	"fmt"
	"math"

	"saba/internal/topology"
)

// FlowID indexes a flow within a Network. IDs are recycled after removal.
type FlowID int

// AppID identifies the application a flow belongs to (Saba registration).
type AppID int

// CoflowID groups related flows of one application stage (for Sincronia).
type CoflowID int

// NoApp marks flows that belong to no registered application.
const NoApp AppID = -1

// NoCoflow marks flows outside any coflow.
const NoCoflow CoflowID = -1

// Flow is one active transfer.
//
// Remaining is materialized lazily: it is exact as of virtual time
// lastSet (when the flow was admitted or its rate last changed), and the
// true residual at a later time t is Remaining - Rate×(t - lastSet).
// Use RemainingAt to read the projected value; the Engine materializes
// the field only when the rate actually changes, so a stable flow's
// completion time is computed once instead of being eroded by one
// subtraction per simulation event.
type Flow struct {
	ID        FlowID
	Src, Dst  topology.NodeID
	Path      []topology.LinkID
	Size      float64 // bits, original
	Remaining float64 // bits, as of lastSet (see RemainingAt)
	Rate      float64 // bits/sec, set by the Allocator
	App       AppID
	PL        int // priority level (Saba service level); -1 if unassigned
	Mult      int // parallel-connection multiplicity: counts as Mult flows under per-flow fairness
	Coflow    CoflowID
	Start     float64 // virtual time the flow was added
	lastSet   float64 // virtual time Remaining was last materialized
	active    bool
	inRun     bool // scratch: member of the current Filler run
	// stalled marks a flow detached from the fabric by link failure with
	// no live alternate path: it transmits nothing (allocators rate it 0)
	// until a restore lets the Engine re-attach it.
	stalled bool
	pathPos []int32 // pathPos[k] = this flow's index within linkFlows[Path[k]]
}

// Stalled reports whether the flow is parked without a live path after a
// failure (it holds zero rate until the Engine re-attaches it).
func (f *Flow) Stalled() bool { return f.stalled }

// RemainingAt projects the flow's residual bits at virtual time t,
// assuming its current rate has been in force since lastSet. Allocators
// whose decisions depend on residual size (Homa's bands, Sincronia's
// coflow demands) read this instead of Remaining.
func (f *Flow) RemainingAt(t float64) float64 {
	if f.Rate <= 0 || t <= f.lastSet {
		return f.Remaining
	}
	r := f.Remaining - f.Rate*(t-f.lastSet)
	if r < 0 {
		return 0
	}
	return r
}

// Network is the dynamic state layered over a static topology: the set of
// active flows, per-link flow indexes and capacity overrides (used by the
// profiler's NIC throttling).
type Network struct {
	top       *topology.Topology
	flows     []Flow
	free      []FlowID
	linkFlows [][]FlowID                   // linkFlows[link] = active flows crossing it
	capEff    []float64                    // effective capacity per link (overrides applied)
	routes    map[uint64][]topology.LinkID // (src,dst) → path memo, shared read-only
	// routeEpoch is the topology liveness epoch the memo was filled under;
	// any failure or restore invalidates every memoized path wholesale.
	routeEpoch uint64
	active     int
	now        float64 // virtual time, advanced by the Engine

	// Pod-coupling bookkeeping for the sharded engine's lookahead
	// windows. part caches the topology's static partition view (it is
	// failure-epoch-invariant but rebuilt on every Topology().Partition()
	// call); coupled[p] counts the attached flows whose path both crosses
	// a partition cut and touches partition p. A partition with zero
	// coupled flows shares no link with any flow of another partition,
	// which is exactly the isolation the lookahead horizon needs.
	// partition() seeds the counters from the flows already attached at
	// first use (SetShards can arrive mid-run); attach/detach maintain
	// them incrementally from then on.
	part    *topology.Partition
	coupled []int32
}

// NewNetwork creates an empty network over the topology.
func NewNetwork(top *topology.Topology) *Network {
	links := top.Links()
	capEff := make([]float64, len(links))
	for i := range links {
		capEff[i] = links[i].Capacity
	}
	return &Network{
		top:       top,
		linkFlows: make([][]FlowID, len(links)),
		capEff:    capEff,
		routes:    map[uint64][]topology.LinkID{},
	}
}

// Topology returns the underlying static topology.
func (n *Network) Topology() *topology.Topology { return n.top }

// partition returns the cached partition view, building it — and
// seeding the pod-coupling counters from every currently attached flow —
// on first use.
func (n *Network) partition() *topology.Partition {
	if n.part == nil {
		n.part = n.top.Partition()
		n.coupled = make([]int32, n.part.NumParts())
		for i := range n.flows {
			f := &n.flows[i]
			if f.active {
				n.noteCoupling(f, +1)
			}
		}
	}
	return n.part
}

// noteCoupling adjusts the pod-coupling counters for one attached flow.
// A flow couples pods only when its path crosses a partition cut; then
// every partition it touches — via its endpoints or any on-path link —
// is coupled to flows outside that partition and counts the flow. The
// counters are a no-op until partition() has run (coupled == nil), so
// engines that never shard pay nothing but the nil check.
func (n *Network) noteCoupling(f *Flow, delta int32) {
	if n.coupled == nil {
		return
	}
	cut := false
	for _, l := range f.Path {
		if n.part.IsCut(l) {
			cut = true
			break
		}
	}
	if !cut {
		return
	}
	// Paths are a handful of links; dedup the touched partitions with a
	// tiny fixed-size scan instead of a map.
	var touched [10]int32
	nt := 0
	add := func(p int32) {
		if p < 0 {
			return // spine layer owns no shard
		}
		for i := 0; i < nt; i++ {
			if touched[i] == p {
				return
			}
		}
		if nt < len(touched) {
			touched[nt] = p
			nt++
		}
	}
	add(n.part.OfNode(f.Src))
	add(n.part.OfNode(f.Dst))
	for _, l := range f.Path {
		add(n.part.OfLink(l))
	}
	for i := 0; i < nt; i++ {
		n.coupled[touched[i]] += delta
	}
}

// podCoupled reports whether partition p currently has any attached flow
// coupling it to another partition. Valid only after partition().
func (n *Network) podCoupled(p int32) bool {
	if p < 0 || int(p) >= len(n.coupled) {
		return false
	}
	return n.coupled[p] != 0
}

// Now returns the current virtual time as last advanced by the Engine
// (zero for networks driven directly in tests). Allocators combine it
// with Flow.RemainingAt to observe residual sizes.
func (n *Network) Now() float64 { return n.now }

// Errors returned by flow operations.
var (
	ErrBadSize     = errors.New("netsim: flow size must be positive")
	ErrUnknownFlow = errors.New("netsim: unknown or inactive flow")
)

// FlowSpec describes a flow to add.
type FlowSpec struct {
	Src, Dst topology.NodeID
	Bits     float64
	App      AppID
	PL       int
	// Mult aggregates parallel connections between the same endpoints
	// into one simulated flow that receives Mult fair shares (0 → 1).
	Mult   int
	Coflow CoflowID
}

// AddFlow routes and activates a flow, returning its ID. Flows between a
// host and itself never touch the network and are modeled with an empty
// path (the Engine completes them at local-memory speed).
func (n *Network) AddFlow(now float64, spec FlowSpec) (FlowID, error) {
	if spec.Bits <= 0 {
		return 0, fmt.Errorf("%w: %g", ErrBadSize, spec.Bits)
	}
	path, err := n.routeLive(spec.Src, spec.Dst)
	stalled := false
	if err != nil {
		// Under churn a flow may arrive while its only path is down;
		// admit it stalled (zero rate) so workloads survive the outage
		// and the Engine resumes it when a link comes back.
		if errors.Is(err, topology.ErrNoRoute) && n.top.NumDown() > 0 {
			path, stalled = nil, true
		} else {
			return 0, err
		}
	}
	var id FlowID
	if len(n.free) > 0 {
		id = n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
	} else {
		id = FlowID(len(n.flows))
		n.flows = append(n.flows, Flow{})
	}
	mult := spec.Mult
	if mult <= 0 {
		mult = 1
	}
	pathPos := n.flows[id].pathPos[:0] // recycle the slot's index storage
	n.flows[id] = Flow{
		ID: id, Src: spec.Src, Dst: spec.Dst, Path: path,
		Size: spec.Bits, Remaining: spec.Bits,
		App: spec.App, PL: spec.PL, Mult: mult, Coflow: spec.Coflow,
		Start: now, lastSet: now, active: true, stalled: stalled,
	}
	f := &n.flows[id]
	for _, l := range path {
		pathPos = append(pathPos, int32(len(n.linkFlows[l])))
		n.linkFlows[l] = append(n.linkFlows[l], id)
	}
	f.pathPos = pathPos
	n.noteCoupling(f, +1)
	n.active++
	return id, nil
}

// AddFlows admits a batch of flows atomically: either every spec is
// routed and activated (in order, returning their IDs) or none is. The
// Engine uses it to admit a job stage's whole shuffle fan-out under a
// single rate recomputation.
func (n *Network) AddFlows(now float64, specs []FlowSpec) ([]FlowID, error) {
	ids := make([]FlowID, 0, len(specs))
	for _, spec := range specs {
		id, err := n.AddFlow(now, spec)
		if err != nil {
			for _, prev := range ids {
				n.RemoveFlow(prev)
			}
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// RemoveFlow deactivates a flow (on completion or cancellation). Each
// link's flow list is updated by swap-remove in O(1) using the per-flow
// position index, so removal costs O(path length) regardless of how many
// flows share the links.
func (n *Network) RemoveFlow(id FlowID) error {
	f, err := n.flow(id)
	if err != nil {
		return err
	}
	n.detach(f, id)
	f.active = false
	f.stalled = false
	n.free = append(n.free, id)
	n.active--
	return nil
}

// finishRemoved completes the removal of a flow that was already
// detached: deactivation, FlowID recycling, the active count. The
// sharded engine's lookahead windows detach completed flows inside
// concurrent per-shard phases (each shard owns its pod's links) but
// must recycle FlowIDs in the globally merged completion order to match
// the serial engine bit-for-bit, so the free-list push is deferred to
// the coordinator's apply phase.
func (n *Network) finishRemoved(id FlowID) {
	f := &n.flows[id]
	f.active = false
	f.stalled = false
	n.free = append(n.free, id)
	n.active--
}

// routeLive returns a path over live links only, memoizing successes. The
// memo is valid for a single topology liveness epoch: any FailLink/Restore
// bumps the epoch and the next lookup drops every cached path wholesale.
func (n *Network) routeLive(src, dst topology.NodeID) ([]topology.LinkID, error) {
	if ep := n.top.Epoch(); ep != n.routeEpoch {
		clear(n.routes)
		n.routeEpoch = ep
	}
	rkey := uint64(uint32(src))<<32 | uint64(uint32(dst))
	if path, ok := n.routes[rkey]; ok {
		return path, nil
	}
	path, err := n.top.Route(src, dst)
	if err != nil {
		return nil, err
	}
	n.routes[rkey] = path
	return path, nil
}

// detach removes the flow from every link it occupies (swap-remove in
// O(path length)) and clears its path. The flow stays active; the caller
// either deactivates it (RemoveFlow) or re-attaches it on a new path.
func (n *Network) detach(f *Flow, id FlowID) {
	n.noteCoupling(f, -1)
	for k, l := range f.Path {
		fs := n.linkFlows[l]
		i := int(f.pathPos[k])
		last := len(fs) - 1
		moved := fs[last]
		fs[i] = moved
		n.linkFlows[l] = fs[:last]
		if moved != id {
			// Repoint the moved flow's index entry for this link.
			mf := &n.flows[moved]
			for kk, ml := range mf.Path {
				if ml == l && int(mf.pathPos[kk]) == last {
					mf.pathPos[kk] = int32(i)
					break
				}
			}
		}
	}
	f.Path = nil
	f.pathPos = f.pathPos[:0]
}

// attach places an already-active flow on a new path, registering it on
// every link. Used by the Engine to reroute or resume flows after topology
// changes.
func (n *Network) attach(f *Flow, id FlowID, path []topology.LinkID) {
	pathPos := f.pathPos[:0]
	for _, l := range path {
		pathPos = append(pathPos, int32(len(n.linkFlows[l])))
		n.linkFlows[l] = append(n.linkFlows[l], id)
	}
	f.Path = path
	f.pathPos = pathPos
	n.noteCoupling(f, +1)
}

func (n *Network) flow(id FlowID) (*Flow, error) {
	if int(id) < 0 || int(id) >= len(n.flows) || !n.flows[id].active {
		return nil, fmt.Errorf("%w: %d", ErrUnknownFlow, id)
	}
	return &n.flows[id], nil
}

// Flow returns a pointer to an active flow. The pointer is valid until
// the flow is removed.
func (n *Network) Flow(id FlowID) (*Flow, error) { return n.flow(id) }

// NumActive returns the number of active flows.
func (n *Network) NumActive() int { return n.active }

// ForEachActive calls fn for every active flow.
func (n *Network) ForEachActive(fn func(*Flow)) {
	for i := range n.flows {
		if n.flows[i].active {
			fn(&n.flows[i])
		}
	}
}

// ActiveIDs returns the IDs of all active flows (freshly allocated), in
// ascending order.
func (n *Network) ActiveIDs() []FlowID {
	return n.ActiveInto(make([]FlowID, 0, n.active))
}

// ActiveInto appends the IDs of all active flows to buf in ascending
// order and returns it — the allocation-free variant of ActiveIDs for
// hot paths that reuse scratch.
func (n *Network) ActiveInto(buf []FlowID) []FlowID {
	for i := range n.flows {
		if n.flows[i].active {
			buf = append(buf, FlowID(i))
		}
	}
	return buf
}

// FlowsOn returns the active flows crossing a link. The slice is owned by
// the Network; callers must not mutate it.
func (n *Network) FlowsOn(l topology.LinkID) []FlowID { return n.linkFlows[l] }

// Capacity returns the effective capacity of a link, honoring overrides.
func (n *Network) Capacity(l topology.LinkID) float64 {
	if int(l) < 0 || int(l) >= len(n.capEff) {
		return 0
	}
	return n.capEff[l]
}

// SetCapacityOverride caps a link at the given bits/sec (the profiler's
// token-bucket NIC throttle). A non-positive value returns an error.
func (n *Network) SetCapacityOverride(l topology.LinkID, bps float64) error {
	if bps <= 0 {
		return fmt.Errorf("netsim: capacity override must be positive, got %g", bps)
	}
	if int(l) < 0 || int(l) >= len(n.capEff) {
		return fmt.Errorf("netsim: unknown link %d", l)
	}
	n.capEff[l] = bps
	return nil
}

// ClearCapacityOverride restores a link's native capacity.
func (n *Network) ClearCapacityOverride(l topology.LinkID) {
	if lk, err := n.top.Link(l); err == nil {
		n.capEff[l] = lk.Capacity
	}
}

// ThrottleHost caps both directions of a host's access link to fraction
// of their native capacity — the profiler's "limit the bandwidth of NICs
// of all nodes to a certain percentage of link capacity" (§4.1).
func (n *Network) ThrottleHost(h topology.NodeID, fraction float64) error {
	if fraction <= 0 || fraction > 1 {
		return fmt.Errorf("netsim: throttle fraction %g out of (0,1]", fraction)
	}
	node, err := n.top.Node(h)
	if err != nil {
		return err
	}
	if node.Kind != topology.Host {
		return fmt.Errorf("netsim: node %d is not a host", h)
	}
	for _, up := range n.top.OutLinks(h) {
		lk, _ := n.top.Link(up)
		if err := n.SetCapacityOverride(up, lk.Capacity*fraction); err != nil {
			return err
		}
		// The reverse direction: the peer's link back to the host.
		for _, down := range n.top.OutLinks(lk.To) {
			dl, _ := n.top.Link(down)
			if dl.To == h {
				if err := n.SetCapacityOverride(down, dl.Capacity*fraction); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// UnthrottleHost removes the overrides installed by ThrottleHost.
func (n *Network) UnthrottleHost(h topology.NodeID) {
	for _, up := range n.top.OutLinks(h) {
		n.ClearCapacityOverride(up)
		lk, _ := n.top.Link(up)
		for _, down := range n.top.OutLinks(lk.To) {
			dl, _ := n.top.Link(down)
			if dl.To == h {
				n.ClearCapacityOverride(down)
			}
		}
	}
}

// LinkUtilization returns, for a link, the fraction of its effective
// capacity consumed by current flow rates (post-allocation).
func (n *Network) LinkUtilization(l topology.LinkID) float64 {
	c := n.Capacity(l)
	if c <= 0 {
		return 0
	}
	sum := 0.0
	for _, fid := range n.linkFlows[l] {
		sum += n.flows[fid].Rate
	}
	return math.Min(sum/c, 1)
}
