package netsim

import (
	"runtime"

	"saba/internal/sim"
)

// shardWorkers is the persistent worker runtime behind the sharded
// engine's concurrent phases. SetShards used to satisfy each phase by
// spawning one goroutine per busy shard and joining them on a WaitGroup
// — O(busy) spawns and stack setups per virtual-time step. Instead the
// pool parks one long-lived worker goroutine per schedulable slot
// (min(shards, GOMAXPROCS at SetShards time)), feeds it through a
// per-worker mailbox channel, and joins the phase on a reusable latch,
// so a step costs two synchronization points: the fan-out sends and one
// latch wait.
//
// Workers hold no reference to the Engine between phases — the phase
// closure is published before the wakes and cleared after the join — so
// an abandoned engine becomes unreachable as soon as the caller drops
// it; a finalizer then closes stop and the goroutines exit. SetShards
// also stops the pool explicitly when resharding or going serial, so
// finalization is only the backstop for engines dropped mid-run.
type shardWorkers struct {
	wake  []chan struct{} // one mailbox per worker
	stop  chan struct{}
	latch *sim.Latch

	// Phase state, published by the coordinator before the wakes (the
	// channel send is the happens-before edge) and cleared after the
	// latch join. lists[w] holds the shard indices worker w runs this
	// phase.
	fn    func(i int)
	lists [][]int
}

// newShardWorkers parks n worker goroutines. n must be >= 2: a pool of
// one would just move inline work onto a channel round-trip.
func newShardWorkers(n int) *shardWorkers {
	sw := &shardWorkers{
		wake:  make([]chan struct{}, n),
		stop:  make(chan struct{}),
		latch: sim.NewLatch(),
		lists: make([][]int, n),
	}
	for w := range sw.wake {
		sw.wake[w] = make(chan struct{}, 1)
		go sw.worker(w)
	}
	return sw
}

func (sw *shardWorkers) worker(w int) {
	for {
		select {
		case <-sw.stop:
			return
		case <-sw.wake[w]:
			fn := sw.fn
			for _, i := range sw.lists[w] {
				fn(i)
			}
			sw.latch.Arrive()
		}
	}
}

// close releases the worker goroutines. Idempotence is not required:
// every pool is closed at most once (by SetShards or the finalizer,
// never both — SetShards clears the engine's reference first).
func (sw *shardWorkers) close() {
	close(sw.stop)
}

// run executes fn(i) for every shard index in busy, fanning the list
// across the parked workers. The calling goroutine runs the first
// worker's share inline so a phase never pays for more wake-ups than it
// has remote workers; with one busy shard (or no pool) everything stays
// inline and the phase is synchronization-free.
func (sw *shardWorkers) run(busy []int, fn func(i int)) {
	if len(busy) <= 1 || sw == nil {
		for _, i := range busy {
			fn(i)
		}
		return
	}
	n := len(sw.wake)
	if len(busy) < n {
		n = len(busy)
	}
	for w := 0; w < n; w++ {
		sw.lists[w] = sw.lists[w][:0]
	}
	for k, i := range busy {
		w := k % n
		sw.lists[w] = append(sw.lists[w], i)
	}
	sw.fn = fn
	sw.latch.Start(n - 1)
	for w := 1; w < n; w++ {
		sw.wake[w] <- struct{}{}
	}
	for _, i := range sw.lists[0] {
		fn(i)
	}
	sw.latch.Wait()
	sw.fn = nil
}

// poolSize is the worker count for a shard count: one schedulable slot
// per shard, bounded by the cores the runtime will actually schedule.
func poolSize(shards int) int {
	n := runtime.GOMAXPROCS(0)
	if shards < n {
		n = shards
	}
	return n
}
