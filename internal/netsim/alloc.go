package netsim

import (
	"saba/internal/topology"
)

// Allocator assigns a Rate to every active flow of a network. Allocators
// are invoked by the Engine whenever the flow set changes.
type Allocator interface {
	// Name identifies the discipline in reports.
	Name() string
	// Allocate recomputes all flow rates in place.
	Allocate(net *Network)
}

// IdealMaxMin is per-flow max-min fairness computed by progressive
// filling — the idealized upper bound of any congestion-control protocol
// targeting max-min fairness (paper §8.1, §8.4 study 4: per-queue
// round-robin with one flow per queue).
type IdealMaxMin struct {
	filler *Filler
}

// NewIdealMaxMin creates the ideal max-min allocator for net.
func NewIdealMaxMin(net *Network) *IdealMaxMin {
	return &IdealMaxMin{filler: NewFiller(net)}
}

// Name implements Allocator.
func (*IdealMaxMin) Name() string { return "ideal-maxmin" }

// Allocate implements Allocator.
func (a *IdealMaxMin) Allocate(net *Network) {
	a.filler.Reset(net)
	a.filler.Run(net, net.ActiveIDs(), FlatClassifier{})
}

// DefaultFECNEfficiency is the fraction of a congested link's capacity
// that the InfiniBand FECN/BECN control loop delivers with two competing
// flows. The sawtooth of rate reduction on congestion notification and
// gradual recovery leaves headroom; measurements of CC-enabled InfiniBand
// under incast place goodput at roughly 85-90% of line rate.
const DefaultFECNEfficiency = 0.88

// CrowdPenalty is how much additional utilization each extra competing
// application costs on a congested port, down to MinFECNEfficiency. With
// many uncoordinated QPs sharing one queue, CC oscillation, head-of-line
// blocking and victim flows compound — the severe many-flow interference
// measured on real InfiniBand switches (Katebzadeh et al., ISPASS'20) —
// whereas Saba's per-application VL separation sidesteps it.
const (
	CrowdPenalty       = 0.12
	MinFECNEfficiency  = 0.28
	crowdReferenceApps = 2 // DefaultFECNEfficiency is calibrated at 2 apps
)

// FECN models the paper's baseline: per-flow max-min fairness as
// approximated by InfiniBand's end-to-end congestion management. It
// performs progressive filling twice: a first pass finds which links are
// saturated; a second pass derates exactly those links by the efficiency
// factor, capturing that only congested links suffer the control-loop
// loss (an uncontended flow still reaches line rate).
type FECN struct {
	Efficiency float64
	// Crowd and MinEff shape how efficiency decays with the number of
	// applications sharing a congested port. The defaults model the
	// hardware testbed baseline (real InfiniBand, severe many-flow
	// interference); SimProfile yields the paper's OMNeT-style simulated
	// baseline, whose CC model loses far less (its ideal-max-min gap is
	// only 1.14x, §8.4).
	Crowd   float64
	MinEff  float64
	filler  *Filler
	derated map[topology.LinkID]float64
}

// NewFECN creates the baseline allocator with the given efficiency; 0
// selects DefaultFECNEfficiency.
func NewFECN(net *Network, efficiency float64) *FECN {
	if efficiency <= 0 || efficiency > 1 {
		efficiency = DefaultFECNEfficiency
	}
	return &FECN{
		Efficiency: efficiency,
		Crowd:      CrowdPenalty,
		MinEff:     MinFECNEfficiency,
		filler:     NewFiller(net),
		derated:    map[topology.LinkID]float64{},
	}
}

// SimProfile switches the baseline to the milder congestion-management
// model of the paper's packet simulator: modest utilization loss and a
// gentle crowd effect.
func (a *FECN) SimProfile() *FECN {
	a.Crowd = 0.02
	a.MinEff = 0.72
	return a
}

// Name implements Allocator.
func (*FECN) Name() string { return "fecn-baseline" }

// Allocate implements Allocator.
func (a *FECN) Allocate(net *Network) {
	ids := net.ActiveIDs()
	// Pass 1: ideal rates to discover saturated links.
	a.filler.Reset(net)
	a.filler.Run(net, ids, FlatClassifier{})

	clear(a.derated)
	for i := range net.flows {
		f := &net.flows[i]
		if !f.active {
			continue
		}
		for _, l := range f.Path {
			if _, seen := a.derated[l]; seen {
				continue
			}
			// FECN marking needs actual queue buildup: a saturated link
			// with at least two competing flows. A lone flow at line rate
			// keeps queues empty and is never marked. Beyond two
			// competitors, every extra application sharing the single
			// queue costs additional goodput (CC oscillation + HOL).
			c := net.Capacity(l)
			if c > 0 && len(net.FlowsOn(l)) >= 2 && net.LinkUtilization(l) >= 0.999 {
				apps := map[AppID]bool{}
				for _, fid := range net.FlowsOn(l) {
					apps[net.flows[fid].App] = true
				}
				eff := a.Efficiency - a.Crowd*float64(len(apps)-crowdReferenceApps)
				if eff < a.MinEff {
					eff = a.MinEff
				}
				if eff > a.Efficiency {
					eff = a.Efficiency
				}
				a.derated[l] = c * eff
			}
		}
	}
	if len(a.derated) == 0 {
		return // nothing congested: ideal rates stand
	}
	// Pass 2: refill with congested links derated.
	a.filler.Reset(net)
	for l, c := range a.derated {
		a.filler.capRem[l] = c
	}
	a.filler.Run(net, ids, FlatClassifier{})
}
