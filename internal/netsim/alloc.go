package netsim

import (
	"saba/internal/topology"
)

// Allocator assigns a Rate to every active flow of a network. Allocators
// are invoked by the Engine whenever the flow set changes.
type Allocator interface {
	// Name identifies the discipline in reports.
	Name() string
	// Allocate recomputes all flow rates in place.
	Allocate(net *Network)
	// AllocateScoped recomputes rates for exactly the given flows and
	// returns true, or returns false without side effects when the
	// discipline cannot localize (the caller must then fall back to a
	// full Allocate).
	//
	// The contract: ids is a union of link-connected components of the
	// active flow set, in ascending order — every active flow sharing a
	// link with a member is itself a member. Max-min water-filling is
	// separable across such components (no link couples them), so
	// disciplines built on progressive filling produce rates bit-for-bit
	// identical to a global recompute restricted to ids. Globally-coupled
	// disciplines — Sincronia's coflow ordering, Homa's residual-size
	// bands — decline by returning false.
	AllocateScoped(net *Network, ids []FlowID) bool
}

// ShardableAllocator marks disciplines whose AllocateScoped may run
// concurrently on disjoint link-connected components — the property the
// sharded engine exploits to allocate per-pod dirty sets in parallel.
// ShardClone returns an allocator that shares this one's configuration
// (weights, objectives, port tables — state mutated only from serial
// engine phases) but owns all scratch and caches, or nil when the
// current configuration cannot be sharded (e.g. Decentral with a
// telemetry channel attached, whose publish sequence must match the
// serial run exactly). Globally-coupled disciplines (Homa, Sincronia)
// simply do not implement the interface.
type ShardableAllocator interface {
	Allocator
	ShardClone() Allocator
}

// IdealMaxMin is per-flow max-min fairness computed by progressive
// filling — the idealized upper bound of any congestion-control protocol
// targeting max-min fairness (paper §8.1, §8.4 study 4: per-queue
// round-robin with one flow per queue).
type IdealMaxMin struct {
	filler *Filler
}

// NewIdealMaxMin creates the ideal max-min allocator for net.
func NewIdealMaxMin(net *Network) *IdealMaxMin {
	return &IdealMaxMin{filler: NewFiller(net)}
}

// Name implements Allocator.
func (*IdealMaxMin) Name() string { return "ideal-maxmin" }

// Allocate implements Allocator.
func (a *IdealMaxMin) Allocate(net *Network) {
	a.AllocateScoped(net, net.ActiveIDs())
}

// AllocateScoped implements Allocator: progressive filling is link-local,
// so filling only the dirty components reproduces the global result.
func (a *IdealMaxMin) AllocateScoped(net *Network, ids []FlowID) bool {
	a.filler.ResetFor(net, ids)
	a.filler.Run(net, ids, FlatClassifier{})
	return true
}

// ShardClone implements ShardableAllocator: the discipline carries no
// state beyond Filler scratch, so a clone is a scoped view of the
// parent's Filler (shared per-link arrays, owned run scratch).
func (a *IdealMaxMin) ShardClone() Allocator {
	return &IdealMaxMin{filler: a.filler.cloneScoped()}
}

// DefaultFECNEfficiency is the fraction of a congested link's capacity
// that the InfiniBand FECN/BECN control loop delivers with two competing
// flows. The sawtooth of rate reduction on congestion notification and
// gradual recovery leaves headroom; measurements of CC-enabled InfiniBand
// under incast place goodput at roughly 85-90% of line rate.
const DefaultFECNEfficiency = 0.88

// CrowdPenalty is how much additional utilization each extra competing
// application costs on a congested port, down to MinFECNEfficiency. With
// many uncoordinated QPs sharing one queue, CC oscillation, head-of-line
// blocking and victim flows compound — the severe many-flow interference
// measured on real InfiniBand switches (Katebzadeh et al., ISPASS'20) —
// whereas Saba's per-application VL separation sidesteps it.
const (
	CrowdPenalty       = 0.12
	MinFECNEfficiency  = 0.28
	crowdReferenceApps = 2 // DefaultFECNEfficiency is calibrated at 2 apps
)

// FECN models the paper's baseline: per-flow max-min fairness as
// approximated by InfiniBand's end-to-end congestion management. It
// performs progressive filling twice: a first pass finds which links are
// saturated; a second pass derates exactly those links by the efficiency
// factor, capturing that only congested links suffer the control-loop
// loss (an uncontended flow still reaches line rate).
type FECN struct {
	Efficiency float64
	// Crowd and MinEff shape how efficiency decays with the number of
	// applications sharing a congested port. The defaults model the
	// hardware testbed baseline (real InfiniBand, severe many-flow
	// interference); SimProfile yields the paper's OMNeT-style simulated
	// baseline, whose CC model loses far less (its ideal-max-min gap is
	// only 1.14x, §8.4).
	Crowd  float64
	MinEff float64
	filler *Filler

	// src, on a shard clone, points at the allocator the clone was
	// derived from; the clone re-reads the shared profile from it on
	// every allocation so SimProfile (and future drift adjustments),
	// which mutate the parent from serial engine phases, reach clones.
	src *FECN

	// Scratch: the congested links found by pass 1 with their derated
	// capacities, plus epoch marks so each link is inspected once per
	// allocation and each app counted once per link.
	derLinks []topology.LinkID
	derCap   []float64
	linkMark []int64
	appMark  []int64
}

// NewFECN creates the baseline allocator with the given efficiency; 0
// selects DefaultFECNEfficiency.
func NewFECN(net *Network, efficiency float64) *FECN {
	if efficiency <= 0 || efficiency > 1 {
		efficiency = DefaultFECNEfficiency
	}
	return &FECN{
		Efficiency: efficiency,
		Crowd:      CrowdPenalty,
		MinEff:     MinFECNEfficiency,
		filler:     NewFiller(net),
		linkMark:   make([]int64, len(net.Topology().Links())),
	}
}

// SimProfile switches the baseline to the milder congestion-management
// model of the paper's packet simulator: modest utilization loss and a
// gentle crowd effect.
func (a *FECN) SimProfile() *FECN {
	a.Crowd = 0.02
	a.MinEff = 0.72
	return a
}

// Name implements Allocator.
func (*FECN) Name() string { return "fecn-baseline" }

// Allocate implements Allocator.
func (a *FECN) Allocate(net *Network) {
	a.AllocateScoped(net, net.ActiveIDs())
}

// AllocateScoped implements Allocator. Both the discovery of saturated
// links and the derating are per-link decisions over the flows crossing
// that link, and a dirty component owns its links outright, so scoping
// the two filling passes to the component reproduces the global result.
func (a *FECN) AllocateScoped(net *Network, ids []FlowID) bool {
	if a.src != nil {
		a.Efficiency, a.Crowd, a.MinEff = a.src.Efficiency, a.src.Crowd, a.src.MinEff
	}
	// Pass 1: ideal rates to discover saturated links.
	a.filler.ResetFor(net, ids)
	a.filler.Run(net, ids, FlatClassifier{})

	a.derLinks = a.derLinks[:0]
	a.derCap = a.derCap[:0]
	runEp := markEpoch.Add(1)
	for _, id := range ids {
		f := &net.flows[id]
		if !f.active {
			continue
		}
		for _, l := range f.Path {
			if a.linkMark[l] == runEp {
				continue // already inspected this allocation
			}
			a.linkMark[l] = runEp
			// FECN marking needs actual queue buildup: a saturated link
			// with at least two competing flows. A lone flow at line rate
			// keeps queues empty and is never marked. Beyond two
			// competitors, every extra application sharing the single
			// queue costs additional goodput (CC oscillation + HOL).
			c := net.Capacity(l)
			if c > 0 && len(net.FlowsOn(l)) >= 2 && net.LinkUtilization(l) >= 0.999 {
				appEp := markEpoch.Add(1)
				apps := 0
				for _, fid := range net.FlowsOn(l) {
					slot := int(net.flows[fid].App) + 1 // NoApp occupies slot 0
					for slot >= len(a.appMark) {
						a.appMark = append(a.appMark, 0)
					}
					if a.appMark[slot] != appEp {
						a.appMark[slot] = appEp
						apps++
					}
				}
				eff := a.Efficiency - a.Crowd*float64(apps-crowdReferenceApps)
				if eff < a.MinEff {
					eff = a.MinEff
				}
				if eff > a.Efficiency {
					eff = a.Efficiency
				}
				a.derLinks = append(a.derLinks, l)
				a.derCap = append(a.derCap, c*eff)
			}
		}
	}
	if len(a.derLinks) == 0 {
		return true // nothing congested: ideal rates stand
	}
	// Pass 2: refill with congested links derated.
	a.filler.ResetFor(net, ids)
	for i, l := range a.derLinks {
		a.filler.capRem[l] = a.derCap[i]
	}
	a.filler.Run(net, ids, FlatClassifier{})
	return true
}

// ShardClone implements ShardableAllocator: per-link derating is a pure
// function of the flows crossing a link. The filler and linkMark are
// shared with the parent (clones allocate on disjoint link-connected
// components, so per-link element writes never collide, and linkMark
// freshness is epoch-gated by globally unique markEpoch values);
// appMark is app-indexed — two clones' components can contain the same
// application — so it stays clone-owned, as do derLinks/derCap. The
// profile parameters are re-read from src on every allocation (see
// AllocateScoped).
func (a *FECN) ShardClone() Allocator {
	return &FECN{
		Efficiency: a.Efficiency,
		Crowd:      a.Crowd,
		MinEff:     a.MinEff,
		filler:     a.filler.cloneScoped(),
		linkMark:   a.linkMark,
		src:        a,
	}
}
