package netsim

import (
	"fmt"
	"math"

	"saba/internal/telemetry"
	"saba/internal/topology"
)

// PortConfig is the queue configuration of one switch output port (one
// directed link): queue weights plus the PL→queue mapping the controller
// installed (paper §5.2-§5.3). Weights need not sum to 1; they are
// normalized by the scheduler. Flows whose PL is missing from PLQueue (or
// negative) fall into DefaultQueue.
type PortConfig struct {
	Weights      []float64   // per-queue WFQ weight
	PLQueue      map[int]int // priority level → queue index
	DefaultQueue int         // queue for unmapped flows

	specs []ClassSpec // cached Filler class table, built on Configure
	plq   []int       // dense PL→queue lookup (-1 = default), built on Configure
}

// validate checks internal consistency.
func (p *PortConfig) validate() error {
	if len(p.Weights) == 0 {
		return fmt.Errorf("netsim: port config has no queues")
	}
	for q, w := range p.Weights {
		if w < 0 {
			return fmt.Errorf("netsim: negative weight %g on queue %d", w, q)
		}
	}
	if p.DefaultQueue < 0 || p.DefaultQueue >= len(p.Weights) {
		return fmt.Errorf("netsim: default queue %d out of range", p.DefaultQueue)
	}
	for pl, q := range p.PLQueue {
		if q < 0 || q >= len(p.Weights) {
			return fmt.Errorf("netsim: PL %d maps to queue %d out of range", pl, q)
		}
	}
	return nil
}

// WFQ enforces Saba's allocations: each configured port splits bandwidth
// among its queues in proportion to their weights (work-conserving: a
// queue with no backlogged flows yields its share), and flows within a
// queue share equally. Ports without a config behave as per-flow max-min,
// which is how an unconfigured InfiniBand port with a single active VL
// behaves.
type WFQ struct {
	filler *Filler
	ports  []*PortConfig // dense, indexed by LinkID; nil = unconfigured
	slack  []FlowID      // top-up pass scratch

	portsConfigured   *telemetry.Counter // netsim.ports_configured
	portsDeconfigured *telemetry.Counter // netsim.ports_deconfigured
}

// NewWFQ creates the WFQ allocator with an initially empty configuration.
func NewWFQ(net *Network) *WFQ {
	w := &WFQ{
		filler: NewFiller(net),
		ports:  make([]*PortConfig, len(net.Topology().Links())),
	}
	w.SetTelemetry(telemetry.Default)
	return w
}

// SetTelemetry rebinds the allocator's instruments to reg.
func (w *WFQ) SetTelemetry(reg *telemetry.Registry) {
	w.portsConfigured = reg.Counter("netsim.ports_configured")
	w.portsDeconfigured = reg.Counter("netsim.ports_deconfigured")
}

// Name implements Allocator.
func (*WFQ) Name() string { return "saba-wfq" }

// Configure installs (or replaces) the queue configuration of a port.
// This is the switch-configuration operation the controller performs.
func (w *WFQ) Configure(port topology.LinkID, cfg PortConfig) error {
	if int(port) < 0 || int(port) >= len(w.ports) {
		return fmt.Errorf("netsim: unknown port %d", port)
	}
	if err := cfg.validate(); err != nil {
		return err
	}
	// Deep-copy to decouple from the caller.
	cp := PortConfig{
		Weights:      append([]float64(nil), cfg.Weights...),
		PLQueue:      make(map[int]int, len(cfg.PLQueue)),
		DefaultQueue: cfg.DefaultQueue,
	}
	maxPL := -1
	for pl, q := range cfg.PLQueue {
		cp.PLQueue[pl] = q
		if pl > maxPL {
			maxPL = pl
		}
	}
	cp.plq = make([]int, maxPL+1)
	for i := range cp.plq {
		cp.plq[i] = -1
	}
	for pl, q := range cp.PLQueue {
		if pl >= 0 {
			cp.plq[pl] = q
		}
	}
	cp.specs = make([]ClassSpec, len(cp.Weights))
	for q, wt := range cp.Weights {
		cp.specs[q] = ClassSpec{Weight: wt, PerFlow: false}
	}
	w.ports[port] = &cp
	w.portsConfigured.Inc()
	return nil
}

// Deconfigure removes a port's configuration, reverting it to per-flow
// fairness.
func (w *WFQ) Deconfigure(port topology.LinkID) {
	if int(port) >= 0 && int(port) < len(w.ports) {
		if w.ports[port] != nil {
			w.portsDeconfigured.Inc()
		}
		w.ports[port] = nil
	}
}

// Config returns the current configuration of a port, or nil.
func (w *WFQ) Config(port topology.LinkID) *PortConfig {
	if int(port) < 0 || int(port) >= len(w.ports) {
		return nil
	}
	return w.ports[port]
}

// Allocate implements Allocator.
func (w *WFQ) Allocate(net *Network) {
	w.AllocateScoped(net, net.ActiveIDs())
}

// AllocateScoped implements Allocator.
//
// The generalized water-filling pass freezes whole (port, queue) groups
// at their minimum entitlement; in a multi-hop hierarchy a queue frozen
// early can be left below capacity when another queue's flows turn out
// to be bottlenecked elsewhere. True WFQ is work-conserving, so the
// allocation runs top-up passes: flows with slack on every link of their
// path re-enter a supplemental fill over the residual capacities until
// no flow can be raised (bounded passes; each strictly consumes residual
// capacity). Both the fill and the top-ups read only links crossed by
// ids, and a dirty component owns its links outright, so scoping
// reproduces the global result.
func (w *WFQ) AllocateScoped(net *Network, ids []FlowID) bool {
	cls := wfqClassifier{w}
	w.filler.ResetFor(net, ids)
	w.filler.Run(net, ids, cls)

	const maxTopUps = 4
	for pass := 0; pass < maxTopUps; pass++ {
		slack := w.slack[:0]
		for _, id := range ids {
			f := &net.flows[id]
			if !f.active || len(f.Path) == 0 {
				continue
			}
			minResidual := math.Inf(1)
			for _, l := range f.Path {
				if r := w.filler.capRem[l]; r < minResidual {
					minResidual = r
				}
			}
			if minResidual > 1e-6 {
				slack = append(slack, id)
			}
		}
		w.slack = slack
		if len(slack) == 0 {
			return true
		}
		w.filler.additive = true
		w.filler.Run(net, slack, cls)
		w.filler.additive = false
	}
	return true
}

// ShardClone implements ShardableAllocator. Clones share the parent's
// port-configuration table: the slice is sized to the link count at
// construction and never grows, and Configure/Deconfigure replace
// elements in place from serial engine phases only, so clones observe
// reconfigurations through the shared backing array. The filler is a
// scoped view of the parent's (shared per-link arrays, owned run
// scratch; see cloneScoped); the configuration counters are shared
// (Configure only ever runs on the parent).
func (w *WFQ) ShardClone() Allocator {
	return &WFQ{
		filler:            w.filler.cloneScoped(),
		ports:             w.ports,
		portsConfigured:   w.portsConfigured,
		portsDeconfigured: w.portsDeconfigured,
	}
}

// wfqClassifier adapts the port configurations to the Filler. Configured
// ports expose one fixed-weight class per queue; unconfigured ports
// expose the flat per-flow class.
type wfqClassifier struct{ w *WFQ }

func (c wfqClassifier) LinkClasses(l topology.LinkID) []ClassSpec {
	cfg := c.w.ports[l]
	if cfg == nil {
		return flatClasses
	}
	return cfg.specs
}

func (c wfqClassifier) FlowClass(f *Flow, l topology.LinkID) int {
	cfg := c.w.ports[l]
	if cfg == nil {
		return 0
	}
	if f.PL >= 0 && f.PL < len(cfg.plq) {
		if q := cfg.plq[f.PL]; q >= 0 {
			return q
		}
	}
	return cfg.DefaultQueue
}
