package netsim

import (
	"slices"

	"saba/internal/topology"
)

// Data-plane fault handling. Failing a link (or a switch: every link it
// touches) disrupts the flows crossing it: each victim's progress is
// materialized under its old rate, the flow is detached, and it is either
// rerouted onto a live alternate path or stalled at zero rate until a
// restore brings one back. Both outcomes seed the dirty set so the next
// step re-rates exactly the touched components. Restores resume stalled
// flows but never move rerouted flows back: a flow keeps its detour until
// it completes, so a flapping link cannot thrash the allocation.
//
// With no failures injected these paths are never entered and the engine's
// output is bit-for-bit identical to the failure-free build.

// FailLink fails one directed link. See FailLinks.
func (e *Engine) FailLink(id topology.LinkID) error { return e.FailLinks(id) }

// FailLinks fails a batch of directed links as one topology event: all
// liveness flips are applied first, then every flow crossing any newly
// failed link is disrupted (in ascending FlowID order, for run-to-run
// determinism), then OnTopologyChange fires once. Already-down links are
// skipped. On an unknown link ID the valid links are still processed and
// the first error is returned.
func (e *Engine) FailLinks(ids ...topology.LinkID) error {
	var changed []topology.LinkID
	var firstErr error
	for _, l := range ids {
		ch, err := e.net.top.FailLink(l)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ch {
			changed = append(changed, l)
			e.tel.linkFailures.Inc()
		}
	}
	if len(changed) == 0 {
		return firstErr
	}
	e.disruptOn(changed)
	e.notifyTopologyChange()
	return firstErr
}

// RestoreLink restores one directed link. See RestoreLinks.
func (e *Engine) RestoreLink(id topology.LinkID) error { return e.RestoreLinks(id) }

// RestoreLinks restores a batch of directed links as one topology event,
// then attempts to resume every stalled flow over the recovered fabric.
// Flows that were rerouted around the failure keep their detours.
func (e *Engine) RestoreLinks(ids ...topology.LinkID) error {
	changed := false
	var firstErr error
	for _, l := range ids {
		ch, err := e.net.top.RestoreLink(l)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if ch {
			changed = true
			e.tel.linkRestores.Inc()
		}
	}
	if !changed {
		return firstErr
	}
	e.resumeStalled()
	e.notifyTopologyChange()
	return firstErr
}

// FailSwitch fails every link attached to the switch (both directions),
// disrupting the flows crossing any of them.
func (e *Engine) FailSwitch(n topology.NodeID) error {
	changed, err := e.net.top.FailSwitch(n)
	if err != nil {
		return err
	}
	if len(changed) == 0 {
		return nil
	}
	e.tel.linkFailures.Add(uint64(len(changed)))
	e.disruptOn(changed)
	e.notifyTopologyChange()
	return nil
}

// RestoreSwitch restores every link attached to the switch and resumes
// stalled flows.
func (e *Engine) RestoreSwitch(n topology.NodeID) error {
	changed, err := e.net.top.RestoreSwitch(n)
	if err != nil {
		return err
	}
	if len(changed) == 0 {
		return nil
	}
	e.tel.linkRestores.Add(uint64(len(changed)))
	e.resumeStalled()
	e.notifyTopologyChange()
	return nil
}

// StalledFlows returns the number of active flows currently parked with
// no live path.
func (e *Engine) StalledFlows() int { return e.stalledCount }

// disruptOn disrupts every flow crossing any of the given links. Victims
// are collected up front (disruption mutates the per-link flow lists),
// deduplicated, and processed in ascending FlowID order so the resulting
// float state is identical run to run.
func (e *Engine) disruptOn(links []topology.LinkID) {
	var victims []FlowID
	seen := make(map[FlowID]bool)
	for _, l := range links {
		for _, fid := range e.net.linkFlows[l] {
			if !seen[fid] {
				seen[fid] = true
				victims = append(victims, fid)
			}
		}
	}
	slices.Sort(victims)
	for _, fid := range victims {
		e.disrupt(fid)
	}
}

// disrupt tears one flow off its (now partially dead) path: progress under
// the old rate is materialized, the flow is detached and its old links are
// seeded for recomputation, then it is re-attached on a live alternate
// path if one exists or stalled at zero rate otherwise.
func (e *Engine) disrupt(id FlowID) {
	f := &e.net.flows[id]
	if !f.active || f.stalled {
		return
	}
	now := e.Now()
	if f.Rate > 0 && now > f.lastSet {
		f.Remaining = f.RemainingAt(now)
	}
	f.lastSet = now
	f.Rate = 0
	e.heapRemove(id)
	e.seedLinks = append(e.seedLinks, f.Path...)
	e.net.detach(f, id)
	e.seedFlows = append(e.seedFlows, id)
	e.dirty = true

	if path, err := e.net.routeLive(f.Src, f.Dst); err == nil {
		e.net.attach(f, id, path)
		e.seedLinks = append(e.seedLinks, path...)
		e.tel.flowReroutes.Inc()
		return
	}
	f.stalled = true
	e.stalled = append(e.stalled, id)
	e.stalledCount++
	e.tel.flowStalls.Inc()
}

// resumeStalled re-attaches every stalled flow for which a live path now
// exists. Flows whose endpoints are still cut off stay parked.
func (e *Engine) resumeStalled() {
	if e.stalledCount == 0 {
		e.stalled = e.stalled[:0]
		return
	}
	keep := e.stalled[:0]
	for _, id := range e.stalled {
		f := &e.net.flows[id]
		if !f.active || !f.stalled {
			continue // slot recycled, or a duplicate entry already resumed
		}
		path, err := e.net.routeLive(f.Src, f.Dst)
		if err != nil {
			keep = append(keep, id)
			continue
		}
		f.stalled = false
		f.lastSet = e.Now()
		e.net.attach(f, id, path)
		e.seedFlows = append(e.seedFlows, id)
		e.seedLinks = append(e.seedLinks, path...)
		e.stalledCount--
		e.tel.flowResumes.Inc()
		e.dirty = true
	}
	e.stalled = keep
}

// registerIfStalled tracks a freshly admitted flow that arrived while its
// only path was down (Network.AddFlow admits it parked).
func (e *Engine) registerIfStalled(id FlowID) {
	if f := &e.net.flows[id]; f.stalled {
		e.stalled = append(e.stalled, id)
		e.stalledCount++
		e.tel.flowStalls.Inc()
	}
}

// notifyTopologyChange fires the reconvergence hook with the new liveness
// epoch.
func (e *Engine) notifyTopologyChange() {
	if e.OnTopologyChange != nil {
		e.OnTopologyChange(e, e.net.top.Epoch())
	}
}
