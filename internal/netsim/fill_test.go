package netsim

import (
	"math"
	"testing"
	"time"

	"saba/internal/topology"
)

// flipClassifier registers flows under class 0 but reports class 1 on
// every later query — an intentionally inconsistent classifier that makes
// the bottleneck class come up empty at freeze time. Run must detect the
// empty freeze set and bail out instead of spinning.
type flipClassifier struct {
	seen map[FlowID]bool
}

func (c *flipClassifier) LinkClasses(topology.LinkID) []ClassSpec {
	return []ClassSpec{{Weight: 1, PerFlow: true}, {Weight: 1, PerFlow: true}}
}

func (c *flipClassifier) FlowClass(f *Flow, l topology.LinkID) int {
	if !c.seen[f.ID] {
		c.seen[f.ID] = true
		return 0
	}
	return 1
}

func TestFillerRunEmptyFreezeBreaks(t *testing.T) {
	net, hosts := testbed(t, 2)
	id, err := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1000})
	if err != nil {
		t.Fatal(err)
	}
	fl := NewFiller(net)
	fl.Reset(net)
	cls := &flipClassifier{seen: map[FlowID]bool{}}
	done := make(chan struct{})
	go func() {
		fl.Run(net, []FlowID{id}, cls)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run spun on an empty freeze set")
	}
	f, _ := net.Flow(id)
	if f.inRun {
		t.Error("flow left marked inRun after aborted Run")
	}
	if f.Rate != 0 {
		t.Errorf("aborted Run fixed a rate: %g", f.Rate)
	}
}

func TestFillerZeroCapacityLink(t *testing.T) {
	net, hosts := testbed(t, 3)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1000})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1000})
	fl := NewFiller(net)
	fl.Reset(net)
	// Starve the shared downlink outright. Progressive filling must still
	// terminate, freezing both flows at rate zero.
	fa, _ := net.Flow(a)
	fl.capRem[fa.Path[len(fa.Path)-1]] = 0
	fl.Run(net, []FlowID{a, b}, FlatClassifier{})
	for _, id := range []FlowID{a, b} {
		f, _ := net.Flow(id)
		if f.Rate != 0 {
			t.Errorf("flow %d: rate %g on a zero-capacity bottleneck, want 0", id, f.Rate)
		}
		if f.inRun {
			t.Errorf("flow %d left marked inRun", id)
		}
	}
	// The generic (classed) path must agree.
	fl.Reset(net)
	fl.capRem[fa.Path[len(fa.Path)-1]] = 0
	fl.Run(net, []FlowID{a, b}, constClassifier{})
	for _, id := range []FlowID{a, b} {
		f, _ := net.Flow(id)
		if f.Rate != 0 {
			t.Errorf("classed path, flow %d: rate %g, want 0", id, f.Rate)
		}
	}
}

// constClassifier is a two-queue WFQ-style classifier putting every flow
// in queue 0; it forces the generic (non-flat) Run path.
type constClassifier struct{}

func (constClassifier) LinkClasses(topology.LinkID) []ClassSpec {
	return []ClassSpec{{Weight: 3, PerFlow: false}, {Weight: 1, PerFlow: false}}
}
func (constClassifier) FlowClass(*Flow, topology.LinkID) int { return 0 }

func TestFillerCapacityOverrideRejectsNonPositive(t *testing.T) {
	net, _ := testbed(t, 2)
	links := net.Topology().Links()
	if err := net.SetCapacityOverride(links[0].ID, 0); err == nil {
		t.Error("zero-capacity override accepted")
	}
	if err := net.SetCapacityOverride(links[0].ID, -5); err == nil {
		t.Error("negative-capacity override accepted")
	}
	if err := net.SetCapacityOverride(topology.LinkID(len(links)), 10); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := net.SetCapacityOverride(links[0].ID, 40); err != nil {
		t.Fatal(err)
	}
	if got := net.Capacity(links[0].ID); got != 40 {
		t.Errorf("override not applied: capacity %g, want 40", got)
	}
	net.ClearCapacityOverride(links[0].ID)
	if got := net.Capacity(links[0].ID); got != links[0].Capacity {
		t.Errorf("override not cleared: capacity %g, want %g", got, links[0].Capacity)
	}
}

func TestFillerAdditiveTopUpComposes(t *testing.T) {
	net, hosts := testbed(t, 3)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[2], Bits: 1000})
	b, _ := net.AddFlow(0, FlowSpec{Src: hosts[1], Dst: hosts[2], Bits: 1000})
	fl := NewFiller(net)

	// First pass: only b runs, but its uplink is throttled to 10, leaving
	// 90 of the shared downlink unconsumed.
	fl.Reset(net)
	fb, _ := net.Flow(b)
	fl.capRem[fb.Path[0]] = 10
	fl.Run(net, []FlowID{b}, FlatClassifier{})
	if fb.Rate != 10 {
		t.Fatalf("throttled flow rate %g, want 10", fb.Rate)
	}

	// Top-up pass: a already holds a rate from elsewhere; additive mode
	// must add its entitlement (the residual 90) instead of overwriting.
	fa, _ := net.Flow(a)
	fa.Rate = 5
	fl.additive = true
	fl.Run(net, []FlowID{a}, FlatClassifier{})
	fl.additive = false
	if math.Abs(fa.Rate-95) > 1e-9 {
		t.Errorf("additive top-up: rate %g, want 95 (5 kept + 90 residual)", fa.Rate)
	}

	// Non-additive runs overwrite.
	fl.Reset(net)
	fl.Run(net, []FlowID{a, b}, FlatClassifier{})
	if math.Abs(fa.Rate-50) > 1e-9 || math.Abs(fb.Rate-50) > 1e-9 {
		t.Errorf("plain rerun: rates %g/%g, want 50/50", fa.Rate, fb.Rate)
	}
}

func TestFillerResetForTouchesOnlyPathLinks(t *testing.T) {
	net, hosts := testbed(t, 4)
	a, _ := net.AddFlow(0, FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 1000})
	fl := NewFiller(net)
	for i := range fl.capRem {
		fl.capRem[i] = -1 // poison
	}
	fl.ResetFor(net, []FlowID{a})
	fa, _ := net.Flow(a)
	onPath := map[topology.LinkID]bool{}
	for _, l := range fa.Path {
		onPath[l] = true
		if fl.capRem[l] != net.Capacity(l) {
			t.Errorf("path link %d not reset: %g", l, fl.capRem[l])
		}
	}
	for i, c := range fl.capRem {
		if !onPath[topology.LinkID(i)] && c != -1 {
			t.Errorf("off-path link %d touched by ResetFor", i)
		}
	}
}
