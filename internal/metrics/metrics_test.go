package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestGeoMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{2}, 2},
		{"pair", []float64{1, 4}, 2},
		{"identity", []float64{3, 3, 3}, 3},
		{"powers", []float64{1, 2, 4, 8}, math.Pow(64, 0.25)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := GeoMean(tt.in)
			if err != nil {
				t.Fatalf("GeoMean(%v) error: %v", tt.in, err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("GeoMean(%v) = %g, want %g", tt.in, got, tt.want)
			}
		})
	}
}

func TestGeoMeanErrors(t *testing.T) {
	if _, err := GeoMean(nil); err != ErrEmpty {
		t.Errorf("GeoMean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("GeoMean with negative value should fail")
	}
	if _, err := GeoMean([]float64{0}); err == nil {
		t.Error("GeoMean with zero should fail")
	}
}

func TestGeoMeanLeqArithmeticMean(t *testing.T) {
	// AM-GM inequality must hold for any positive sample set.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Abs(x)+0.001)
			}
		}
		if len(xs) == 0 {
			return true
		}
		gm, err := GeoMean(xs)
		if err != nil {
			return false
		}
		am, _ := Mean(xs)
		return gm <= am*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Fatalf("Mean = %v err=%v, want 5", m, err)
	}
	sd, err := StdDev(xs)
	if err != nil || !almostEqual(sd, 2, 1e-12) {
		t.Fatalf("StdDev = %v err=%v, want 2", sd, err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v err=%v, want -1", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v err=%v, want 7", mx, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("Min(nil) should return ErrEmpty")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil) should return ErrEmpty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%g) error: %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
}

func TestPercentileInputNotMutated(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should return ErrEmpty")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("negative percentile should fail")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile > 100 should fail")
	}
}

func TestCDF(t *testing.T) {
	pts, err := CDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("CDF len = %d, want 4", len(pts))
	}
	if pts[0].Value != 1 || pts[3].Value != 3 {
		t.Errorf("CDF not sorted: %+v", pts)
	}
	if pts[3].Frac != 1 {
		t.Errorf("last CDF fraction = %g, want 1", pts[3].Frac)
	}
	// Monotone non-decreasing in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value || pts[i].Frac < pts[i-1].Frac {
			t.Errorf("CDF not monotone at %d: %+v", i, pts)
		}
	}
}

func TestCDFAt(t *testing.T) {
	pts, _ := CDF([]float64{1, 2, 3, 4})
	tests := []struct {
		v    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := CDFAt(pts, tt.v); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CDFAt(%g) = %g, want %g", tt.v, got, tt.want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(10, 5)
	if err != nil || s != 2 {
		t.Errorf("Speedup(10,5) = %v err=%v, want 2", s, err)
	}
	if _, err := Speedup(0, 5); err == nil {
		t.Error("Speedup with zero baseline should fail")
	}
	if _, err := Speedup(5, -1); err == nil {
		t.Error("Speedup with negative treatment should fail")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 {
		t.Errorf("N = %d, want 3", s.N)
	}
	if !almostEqual(s.GeoMean, 2, 1e-12) {
		t.Errorf("GeoMean = %g, want 2", s.GeoMean)
	}
	if s.Min != 1 || s.Max != 4 {
		t.Errorf("Min/Max = %g/%g, want 1/4", s.Min, s.Max)
	}
	if s.String() == "" {
		t.Error("Summary.String should not be empty")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should return ErrEmpty")
	}
}

func TestPercentileMatchesCDF(t *testing.T) {
	// Property: for sorted data the p50 sits within [min, max] and CDFAt(p50) >= 0.5.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p50, err := Percentile(xs, 50)
		if err != nil {
			return false
		}
		pts, err := CDF(xs)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return p50 >= mn && p50 <= mx && CDFAt(pts, p50+1e-9) >= 0.5-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
