// Package metrics provides the statistical helpers used throughout the
// Saba evaluation: geometric means, percentiles, CDFs and speedup
// summaries. The paper reports average speedups as geometric means
// (§8.1 "the average speedup reports the geometric mean of the results"),
// so that convention is followed here.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("metrics: empty sample set")

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	logSum, sum := 0.0, 0.0
	lo := math.Inf(1)
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("metrics: geometric mean requires positive values, got %g", x)
		}
		logSum += math.Log(x)
		sum += x
		lo = math.Min(lo, x)
	}
	// AM-GM bounds the result in [min, arithmetic mean]; the exp/log
	// round trip can drift outside (even overflowing to +Inf for inputs
	// near MaxFloat64), so clamp it back into the mathematical range.
	gm := math.Exp(logSum / float64(len(xs)))
	if am := sum / float64(len(xs)); am < gm {
		gm = am
	}
	return math.Max(lo, gm), nil
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %g out of range [0,100]", p)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo], nil
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// CDFPoint is a single point of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value
	Frac  float64 // fraction of samples <= Value, in (0, 1]
}

// CDF returns the empirical cumulative distribution of xs as a sorted
// sequence of (value, fraction) points, one per sample.
func CDF(xs []float64) ([]CDFPoint, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pts := make([]CDFPoint, len(s))
	for i, v := range s {
		pts[i] = CDFPoint{Value: v, Frac: float64(i+1) / float64(len(s))}
	}
	return pts, nil
}

// CDFAt evaluates an empirical CDF at value v: the fraction of samples <= v.
func CDFAt(pts []CDFPoint, v float64) float64 {
	// Binary search for the last point with Value <= v.
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if pts[mid].Value <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return pts[lo-1].Frac
}

// Speedup is the performance ratio of a treatment run over a baseline run
// for one workload: baseline time / treatment time (>1 means faster).
func Speedup(baselineTime, treatmentTime float64) (float64, error) {
	if baselineTime <= 0 || treatmentTime <= 0 {
		return 0, fmt.Errorf("metrics: speedup requires positive times, got base=%g treat=%g", baselineTime, treatmentTime)
	}
	return baselineTime / treatmentTime, nil
}

// Summary aggregates a set of per-workload speedups.
type Summary struct {
	N       int
	GeoMean float64
	Mean    float64
	Min     float64
	Max     float64
	P50     float64
	P99     float64
}

// Summarize computes a Summary over speedup samples.
func Summarize(speedups []float64) (Summary, error) {
	if len(speedups) == 0 {
		return Summary{}, ErrEmpty
	}
	gm, err := GeoMean(speedups)
	if err != nil {
		return Summary{}, err
	}
	mean, _ := Mean(speedups)
	mn, _ := Min(speedups)
	mx, _ := Max(speedups)
	p50, _ := Percentile(speedups, 50)
	p99, _ := Percentile(speedups, 99)
	return Summary{
		N:       len(speedups),
		GeoMean: gm,
		Mean:    mean,
		Min:     mn,
		Max:     mx,
		P50:     p50,
		P99:     p99,
	}, nil
}

// String renders a one-line human-readable summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d geomean=%.3f mean=%.3f min=%.3f max=%.3f p50=%.3f p99=%.3f",
		s.N, s.GeoMean, s.Mean, s.Min, s.Max, s.P50, s.P99)
}
