package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"saba/internal/netsim"
	"saba/internal/topology"
)

// Data-plane fault schedules. A schedule is a seeded, fully deterministic
// list of link flaps in *virtual* time, generated offline from the
// topology and installed on an Engine as timed events — replaying the
// same seed against the same topology reproduces the identical failure
// sequence, which is what makes churn experiments comparable across
// allocation policies.

// LinkFlap takes a set of directed links down over a virtual-time window.
// Links holds both directions of a physical cable so a flap models a
// cable (or transceiver) outage rather than a half-duplex oddity.
type LinkFlap struct {
	Links  []topology.LinkID
	DownAt float64 // virtual seconds
	UpAt   float64 // virtual seconds (> DownAt)
}

// FlapScheduleConfig parameterizes GenerateLinkFlaps.
type FlapScheduleConfig struct {
	// Seed makes the schedule deterministic.
	Seed int64
	// Rate is the per-cable probability of failing in each flap wave
	// (the paper-style "x% link failure rate").
	Rate float64
	// Period is the spacing between flap waves in virtual seconds
	// (0 → 1s).
	Period float64
	// Downtime is how long a failed cable stays down (0 → 0.3×Period).
	Downtime float64
	// Horizon bounds the schedule: no wave is generated at or beyond it.
	Horizon float64
	// CoreOnly restricts flaps to switch-to-switch cables, where the
	// fabric has path redundancy; host uplinks (single-attached) are
	// spared. This models the common case — core links vastly outnumber
	// and out-fail last-meter links that would just partition a host.
	CoreOnly bool
}

// GenerateLinkFlaps builds a deterministic flap schedule: at every
// multiple of Period before Horizon, each candidate cable independently
// fails with probability Rate and comes back Downtime later. Cables are
// enumerated in link-ID order and the RNG is seeded, so the schedule is a
// pure function of (topology shape, cfg).
func GenerateLinkFlaps(top *topology.Topology, cfg FlapScheduleConfig) []LinkFlap {
	if cfg.Period <= 0 {
		cfg.Period = 1.0
	}
	if cfg.Downtime <= 0 {
		cfg.Downtime = 0.3 * cfg.Period
	}
	if cfg.Rate <= 0 || cfg.Horizon <= cfg.Period {
		return nil
	}

	// Enumerate physical cables: pair each directed link with its
	// reverse, keyed by the lower link ID so each cable appears once.
	nodes := top.Nodes()
	var cables [][]topology.LinkID
	for _, l := range top.Links() {
		if l.From >= l.To {
			continue // the (To, From) side enumerates this cable
		}
		if cfg.CoreOnly && (nodes[l.From].Kind != topology.Switch || nodes[l.To].Kind != topology.Switch) {
			continue
		}
		cable := []topology.LinkID{l.ID}
		for _, rid := range top.OutLinks(l.To) {
			if rl, err := top.Link(rid); err == nil && rl.To == l.From {
				cable = append(cable, rid)
			}
		}
		cables = append(cables, cable)
	}
	if len(cables) == 0 {
		return nil
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var flaps []LinkFlap
	for t := cfg.Period; t < cfg.Horizon; t += cfg.Period {
		for _, cable := range cables {
			if rng.Float64() >= cfg.Rate {
				continue
			}
			flaps = append(flaps, LinkFlap{
				Links:  cable,
				DownAt: t,
				UpAt:   t + cfg.Downtime,
			})
		}
	}
	return flaps
}

// InstallLinkFlaps schedules every flap on the engine as a pair of timed
// events: a batched FailLinks at DownAt and a batched RestoreLinks at
// UpAt. Overlapping flaps of the same cable are benign (fail/restore are
// idempotent). Install before Run; flaps scheduled in the past error.
func InstallLinkFlaps(e *netsim.Engine, flaps []LinkFlap) error {
	// Stable event insertion order regardless of how the caller built or
	// filtered the slice.
	ordered := make([]LinkFlap, len(flaps))
	copy(ordered, flaps)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].DownAt < ordered[j].DownAt })
	for _, fl := range ordered {
		links := fl.Links
		if fl.UpAt <= fl.DownAt {
			return fmt.Errorf("faults: flap of %v heals at %g before failing at %g", links, fl.UpAt, fl.DownAt)
		}
		if err := e.At(fl.DownAt, func(e *netsim.Engine) {
			// Idempotent: a link already downed by an overlapping flap
			// is skipped inside FailLinks.
			_ = e.FailLinks(links...)
		}); err != nil {
			return err
		}
		if err := e.At(fl.UpAt, func(e *netsim.Engine) {
			_ = e.RestoreLinks(links...)
		}); err != nil {
			return err
		}
	}
	return nil
}
