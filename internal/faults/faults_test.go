package faults

import (
	"errors"
	"net"
	"testing"
	"time"

	"saba/internal/rpc"
)

// startEcho runs a TCP server that echoes every byte it reads.
func startEcho(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func TestZeroConfigPassesThrough(t *testing.T) {
	addr := startEcho(t)
	inj := NewInjector(Config{Seed: 1})
	conn, err := inj.Dialer()(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Errorf("echo = %q", buf)
	}
	if s := inj.Stats(); s != (Stats{}) {
		t.Errorf("zero config injected faults: %+v", s)
	}
}

func TestResetsAreRetryableNetErrors(t *testing.T) {
	addr := startEcho(t)
	inj := NewInjector(Config{Seed: 42, ResetRate: 1})
	conn, err := inj.Dialer()(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, werr := conn.Write([]byte("x"))
	if werr == nil {
		t.Fatal("write with ResetRate=1 should fail")
	}
	var ne net.Error
	if !errors.As(werr, &ne) {
		t.Errorf("injected error %v is not a net.Error", werr)
	}
	if !rpc.Retryable(werr) {
		t.Errorf("injected reset %v should classify retryable", werr)
	}
	if inj.Stats().Resets == 0 {
		t.Error("reset not counted")
	}
}

func TestDropsSwallowWrites(t *testing.T) {
	addr := startEcho(t)
	inj := NewInjector(Config{Seed: 7, DropRate: 1})
	conn, err := inj.Dialer()(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("vanishes")); err != nil {
		t.Fatalf("dropped write must report success, got %v", err)
	}
	// Nothing reached the peer: the echo read times out.
	conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err == nil {
		t.Error("dropped write still produced an echo")
	}
	if inj.Stats().Drops == 0 {
		t.Error("drop not counted")
	}
}

func TestPartialWriteTearsFrame(t *testing.T) {
	addr := startEcho(t)
	inj := NewInjector(Config{Seed: 3, PartialWriteRate: 1})
	conn, err := inj.Dialer()(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	n, werr := conn.Write([]byte("0123456789"))
	if werr == nil {
		t.Fatal("partial write should error")
	}
	if n >= 10 || !rpc.Retryable(werr) {
		t.Errorf("partial write: n=%d err=%v", n, werr)
	}
	if inj.Stats().PartialWrites == 0 {
		t.Error("partial write not counted")
	}
}

func TestDelayStalls(t *testing.T) {
	addr := startEcho(t)
	inj := NewInjector(Config{Seed: 9, DelayRate: 1, Delay: 30 * time.Millisecond})
	conn, err := inj.Dialer()(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	startT := time.Now()
	if _, err := conn.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(startT); d < 25*time.Millisecond {
		t.Errorf("delayed write returned in %v, want >= ~30ms", d)
	}
	if inj.Stats().Delays == 0 {
		t.Error("delay not counted")
	}
}

func TestSetConfigHealsTheNetwork(t *testing.T) {
	addr := startEcho(t)
	inj := NewInjector(Config{Seed: 11, ResetRate: 1})
	d := inj.Dialer()
	conn, err := d(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Fatal("pre-heal write should fail")
	}
	conn.Close()
	inj.SetConfig(Config{})
	conn2, err := d(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("y")); err != nil {
		t.Errorf("post-heal write failed: %v", err)
	}
}

func TestFaultySequencesAreDeterministic(t *testing.T) {
	run := func() []bool {
		inj := NewInjector(Config{Seed: 123, ResetRate: 0.3})
		out := make([]bool, 50)
		for i := range out {
			out[i] = inj.roll(inj.cfgSnapshot().ResetRate)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault decision %d differs across identically-seeded runs", i)
		}
	}
}

func TestWrapListenerInjectsServerSide(t *testing.T) {
	inj := NewInjector(Config{Seed: 5, ResetRate: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := inj.WrapListener(ln)
	defer fl.Close()
	go func() {
		c, err := fl.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 8)
		c.Read(buf) // injected reset fires here
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("x"))
	conn.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 8)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server-side reset should surface to the client")
	}
	if inj.Stats().Resets == 0 {
		t.Error("server-side reset not counted")
	}
}
