// Package faults is the fault-injection substrate the control-plane
// robustness tests run on. It wraps net.Conn / net.Listener (and the
// Saba library's controller transport) with an Injector that flips
// seeded-random faults — dropped writes, delays, partial writes, and
// connection resets — so any test can subject the RPC path to the
// failure modes a production datacenter control plane actually sees,
// deterministically.
//
// Injected errors are *net.OpError values carrying ECONNRESET/EPIPE, so
// they classify as retryable by rpc.Retryable exactly like their
// real-world counterparts.
package faults

import (
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"saba/internal/controller"
	"saba/internal/topology"
)

// Config sets per-operation fault probabilities (each in [0,1]).
type Config struct {
	// Seed makes the fault sequence deterministic.
	Seed int64
	// DropRate is the probability a Write is silently swallowed: the
	// caller sees success, the peer sees nothing and times out.
	DropRate float64
	// ResetRate is the probability an operation closes the connection
	// abruptly and fails with ECONNRESET.
	ResetRate float64
	// PartialWriteRate is the probability a Write sends only a prefix of
	// the payload and then fails with EPIPE, leaving a torn frame on the
	// wire.
	PartialWriteRate float64
	// DelayRate is the probability an operation stalls for Delay first.
	DelayRate float64
	// Delay is the stall applied on a delay fault. 0 selects 5ms.
	Delay time.Duration
	// CallFailRate is the probability a FaultyTransport call fails before
	// reaching the controller (the request never executed).
	CallFailRate float64
	// CallBlackholeRate is the probability a FaultyTransport call executes
	// but its response is lost (the caller sees a transport error).
	CallBlackholeRate float64
	// Sleep is the clock source delay faults block on. nil selects
	// time.Sleep (wall clock); simulation harnesses inject a virtual-clock
	// sleeper so fault schedules are deterministic and replayable.
	Sleep func(time.Duration)
}

// Stats counts injected faults.
type Stats struct {
	Drops, Resets, PartialWrites, Delays, CallFails, Blackholes uint64
}

// Injector decides, from a seeded RNG, which operations fault.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	cfg   Config
	stats Stats
}

// NewInjector creates an injector for the given fault mix.
func NewInjector(cfg Config) *Injector {
	if cfg.Delay <= 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	return &Injector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// SetConfig swaps the fault mix at runtime — tests use it to heal (or
// degrade) the network mid-run. The seed/RNG stream is unchanged, and a
// nil Sleep keeps the previously installed clock source.
func (i *Injector) SetConfig(cfg Config) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if cfg.Delay <= 0 {
		cfg.Delay = 5 * time.Millisecond
	}
	cfg.Seed = i.cfg.Seed
	if cfg.Sleep == nil {
		cfg.Sleep = i.cfg.Sleep
	}
	i.cfg = cfg
}

// Stats returns a snapshot of the injected-fault counters.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// roll draws one fault decision.
func (i *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rng.Float64() < rate
}

// delayIfFaulted applies a delay fault, returning the chosen duration
// so the caller sleeps outside the injector lock.
func (i *Injector) delayIfFaulted() {
	i.mu.Lock()
	if i.cfg.DelayRate <= 0 || i.rng.Float64() >= i.cfg.DelayRate {
		i.mu.Unlock()
		return
	}
	i.stats.Delays++
	d := i.cfg.Delay
	sleep := i.cfg.Sleep
	i.mu.Unlock()
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

func (i *Injector) count(c *uint64) {
	i.mu.Lock()
	*c++
	i.mu.Unlock()
}

func (i *Injector) cfgSnapshot() Config {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg
}

// resetErr mimics a peer reset; pipeErr mimics a torn local write. Both
// are net.OpErrors, so rpc.Retryable treats them like the real thing.
func resetErr(op string) error { return &net.OpError{Op: op, Net: "tcp", Err: syscall.ECONNRESET} }
func pipeErr(op string) error  { return &net.OpError{Op: op, Net: "tcp", Err: syscall.EPIPE} }

// WrapConn wraps a connection with fault injection on Read and Write.
func (i *Injector) WrapConn(c net.Conn) net.Conn {
	return &FaultyConn{Conn: c, inj: i}
}

// FaultyConn injects faults into one connection's reads and writes.
type FaultyConn struct {
	net.Conn
	inj *Injector
}

// Read delays or resets per the injector's fault mix.
func (f *FaultyConn) Read(p []byte) (int, error) {
	f.inj.delayIfFaulted()
	cfg := f.inj.cfgSnapshot()
	if f.inj.roll(cfg.ResetRate) {
		f.inj.count(&f.inj.stats.Resets)
		f.Conn.Close()
		return 0, resetErr("read")
	}
	return f.Conn.Read(p)
}

// Write delays, drops, truncates, or resets per the fault mix.
func (f *FaultyConn) Write(p []byte) (int, error) {
	f.inj.delayIfFaulted()
	cfg := f.inj.cfgSnapshot()
	switch {
	case f.inj.roll(cfg.ResetRate):
		f.inj.count(&f.inj.stats.Resets)
		f.Conn.Close()
		return 0, resetErr("write")
	case f.inj.roll(cfg.DropRate):
		// Swallow the payload: the caller believes it was sent.
		f.inj.count(&f.inj.stats.Drops)
		return len(p), nil
	case f.inj.roll(cfg.PartialWriteRate) && len(p) > 1:
		f.inj.count(&f.inj.stats.PartialWrites)
		n, _ := f.Conn.Write(p[:len(p)/2])
		f.Conn.Close()
		return n, pipeErr("write")
	}
	return f.Conn.Write(p)
}

// WrapListener returns a listener whose accepted connections are faulty —
// the server-side interposition point (rpc.Server.Serve accepts it).
func (i *Injector) WrapListener(ln net.Listener) net.Listener {
	return &faultyListener{Listener: ln, inj: i}
}

type faultyListener struct {
	net.Listener
	inj *Injector
}

func (l *faultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(c), nil
}

// Dialer returns an rpc.Options-compatible dial function whose
// connections are faulty — the client-side interposition point.
func (i *Injector) Dialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return i.WrapConn(c), nil
	}
}

// Transport mirrors sabalib.Transport structurally (declared here to
// keep this package import-cycle-free with the library's tests), so a
// *FaultyTransport satisfies sabalib.Transport and vice versa.
type Transport interface {
	Register(name string) (controller.AppID, int, error)
	Deregister(id controller.AppID) error
	ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error)
	ConnDestroy(cid controller.ConnID) error
	PL(id controller.AppID) (int, error)
	ObserveSlowdown(id controller.AppID, bwFraction, observed float64) (bool, error)
	Close() error
}

// FaultyTransport injects call-level faults above any controller
// transport: CallFailRate fails the call before it executes,
// CallBlackholeRate executes it but loses the response — the two ways a
// real control-plane RPC can fail, which require different recovery.
type FaultyTransport struct {
	T   Transport
	inj *Injector
}

// NewFaultyTransport wraps a transport with an injector.
func NewFaultyTransport(t Transport, inj *Injector) *FaultyTransport {
	return &FaultyTransport{T: t, inj: inj}
}

// fault decides the fate of one call: failed before execution, or
// executed-then-blackholed.
func (ft *FaultyTransport) fault() (failBefore, blackhole bool) {
	ft.inj.delayIfFaulted()
	cfg := ft.inj.cfgSnapshot()
	if ft.inj.roll(cfg.CallFailRate) {
		ft.inj.count(&ft.inj.stats.CallFails)
		return true, false
	}
	if ft.inj.roll(cfg.CallBlackholeRate) {
		ft.inj.count(&ft.inj.stats.Blackholes)
		return false, true
	}
	return false, false
}

// Register implements Transport.
func (ft *FaultyTransport) Register(name string) (controller.AppID, int, error) {
	failBefore, blackhole := ft.fault()
	if failBefore {
		return 0, 0, resetErr("call")
	}
	id, pl, err := ft.T.Register(name)
	if blackhole {
		return 0, 0, resetErr("call")
	}
	return id, pl, err
}

// Deregister implements Transport.
func (ft *FaultyTransport) Deregister(id controller.AppID) error {
	failBefore, blackhole := ft.fault()
	if failBefore {
		return resetErr("call")
	}
	err := ft.T.Deregister(id)
	if blackhole {
		return resetErr("call")
	}
	return err
}

// ConnCreate implements Transport.
func (ft *FaultyTransport) ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error) {
	failBefore, blackhole := ft.fault()
	if failBefore {
		return 0, resetErr("call")
	}
	cid, err := ft.T.ConnCreate(id, src, dst)
	if blackhole {
		return 0, resetErr("call")
	}
	return cid, err
}

// ConnDestroy implements Transport.
func (ft *FaultyTransport) ConnDestroy(cid controller.ConnID) error {
	failBefore, blackhole := ft.fault()
	if failBefore {
		return resetErr("call")
	}
	err := ft.T.ConnDestroy(cid)
	if blackhole {
		return resetErr("call")
	}
	return err
}

// PL implements Transport.
func (ft *FaultyTransport) PL(id controller.AppID) (int, error) {
	failBefore, blackhole := ft.fault()
	if failBefore {
		return 0, resetErr("call")
	}
	pl, err := ft.T.PL(id)
	if blackhole {
		return 0, resetErr("call")
	}
	return pl, err
}

// TenantTransport mirrors sabalib.TenantTransport structurally (same
// import-cycle reasoning as Transport above): the tenant guarantee
// calls a transport may optionally carry.
type TenantTransport interface {
	RegisterTenant(name string, min float64) (controller.TenantID, error)
	RegisterIn(tenant controller.TenantID, name string) (controller.AppID, int, error)
}

// RegisterTenant implements TenantTransport, faulting the call like any
// other control-plane RPC. A blackholed registration is the interesting
// case for admission: the controller admitted the tenant but the caller
// never learned the ID, so the retry must not double-count the
// guarantee (the controller's idempotent-by-name registration absorbs
// it).
func (ft *FaultyTransport) RegisterTenant(name string, min float64) (controller.TenantID, error) {
	tt, ok := ft.T.(TenantTransport)
	if !ok {
		return 0, controller.ErrNoTenants
	}
	failBefore, blackhole := ft.fault()
	if failBefore {
		return 0, resetErr("call")
	}
	tid, err := tt.RegisterTenant(name, min)
	if blackhole {
		return 0, resetErr("call")
	}
	return tid, err
}

// RegisterIn implements TenantTransport.
func (ft *FaultyTransport) RegisterIn(tenant controller.TenantID, name string) (controller.AppID, int, error) {
	tt, ok := ft.T.(TenantTransport)
	if !ok {
		return 0, 0, controller.ErrNoTenants
	}
	failBefore, blackhole := ft.fault()
	if failBefore {
		return 0, 0, resetErr("call")
	}
	id, pl, err := tt.RegisterIn(tenant, name)
	if blackhole {
		return 0, 0, resetErr("call")
	}
	return id, pl, err
}

// ObserveSlowdown implements Transport.
func (ft *FaultyTransport) ObserveSlowdown(id controller.AppID, bwFraction, observed float64) (bool, error) {
	failBefore, blackhole := ft.fault()
	if failBefore {
		return false, resetErr("call")
	}
	changed, err := ft.T.ObserveSlowdown(id, bwFraction, observed)
	if blackhole {
		return false, resetErr("call")
	}
	return changed, err
}

// Close implements Transport (never faulted: teardown must succeed).
func (ft *FaultyTransport) Close() error { return ft.T.Close() }
