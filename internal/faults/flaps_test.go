package faults

import (
	"math"
	"reflect"
	"testing"
	"time"

	"saba/internal/netsim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

func flapFabric(t testing.TB) *topology.Topology {
	t.Helper()
	top, err := topology.NewSpineLeaf(topology.SpineLeafConfig{
		Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2, Spines: 2,
		HostsPerToR: 4, Queues: 8, LinkCapacity: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestGenerateLinkFlapsDeterministic(t *testing.T) {
	top := flapFabric(t)
	cfg := FlapScheduleConfig{Seed: 11, Rate: 0.4, Period: 0.5, Horizon: 4, CoreOnly: true}
	a := GenerateLinkFlaps(top, cfg)
	b := GenerateLinkFlaps(top, cfg)
	if len(a) == 0 {
		t.Fatal("schedule empty at 40% rate over 7 waves")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (topology, config) produced different schedules")
	}
	cfg2 := cfg
	cfg2.Seed = 12
	if c := GenerateLinkFlaps(top, cfg2); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}

	nodes := top.Nodes()
	for _, fl := range a {
		if fl.UpAt <= fl.DownAt {
			t.Fatalf("flap heals at %g before failing at %g", fl.UpAt, fl.DownAt)
		}
		if fl.DownAt < cfg.Period || fl.DownAt >= cfg.Horizon {
			t.Fatalf("flap at %g outside (0, horizon)", fl.DownAt)
		}
		if len(fl.Links) != 2 {
			t.Fatalf("cable has %d directed links, want 2", len(fl.Links))
		}
		for _, l := range fl.Links {
			lk, err := top.Link(l)
			if err != nil {
				t.Fatal(err)
			}
			if nodes[lk.From].Kind != topology.Switch || nodes[lk.To].Kind != topology.Switch {
				t.Fatalf("CoreOnly schedule flaps host link %d", l)
			}
		}
	}

	if got := GenerateLinkFlaps(top, FlapScheduleConfig{Seed: 1, Rate: 0, Horizon: 4}); got != nil {
		t.Fatal("zero rate should produce no schedule")
	}
	if got := GenerateLinkFlaps(top, FlapScheduleConfig{Seed: 1, Rate: 1, Period: 2, Horizon: 2}); got != nil {
		t.Fatal("horizon within one period should produce no schedule")
	}
}

// TestInstallLinkFlapsEndToEnd drives a real engine through a generated
// schedule: flaps must disrupt traffic (the failure counters move) while
// every flow still completes, since each flap heals and restores resume
// stalled flows.
func TestInstallLinkFlapsEndToEnd(t *testing.T) {
	top := flapFabric(t)
	net := netsim.NewNetwork(top)
	reg := telemetry.NewRegistry()
	e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
	e.SetTelemetry(reg)

	hosts := top.Hosts()
	open := map[netsim.FlowID]bool{}
	for i := 0; i < 10; i++ {
		id, err := e.AddFlow(netsim.FlowSpec{
			Src:  hosts[i%len(hosts)],
			Dst:  hosts[(i*5+7)%len(hosts)],
			Bits: 4000,
			Mult: 1,
		}, func(e *netsim.Engine, id netsim.FlowID) { delete(open, id) })
		if err != nil {
			t.Fatal(err)
		}
		open[id] = true
	}
	flaps := GenerateLinkFlaps(top, FlapScheduleConfig{Seed: 3, Rate: 0.5, Period: 0.5, Horizon: 3, CoreOnly: true})
	if len(flaps) == 0 {
		t.Fatal("empty schedule")
	}
	if err := InstallLinkFlaps(e, flaps); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if len(open) != 0 {
		t.Errorf("%d flows never completed under the flap schedule", len(open))
	}
	if e.StalledFlows() != 0 {
		t.Errorf("StalledFlows = %d after all flaps healed, want 0", e.StalledFlows())
	}
	fails := reg.Counter("netsim.link_failures").Value()
	if fails == 0 {
		t.Error("schedule installed but no link failures recorded")
	}
	if rest := reg.Counter("netsim.link_restores").Value(); rest != fails {
		t.Errorf("link_restores = %d, link_failures = %d; every flap must heal", rest, fails)
	}
}

func TestInstallLinkFlapsRejectsBadWindow(t *testing.T) {
	top := flapFabric(t)
	net := netsim.NewNetwork(top)
	e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
	bad := []LinkFlap{{Links: []topology.LinkID{0}, DownAt: 2, UpAt: 2}}
	if err := InstallLinkFlaps(e, bad); err == nil {
		t.Fatal("flap with UpAt <= DownAt should be rejected")
	}
}

// TestInjectedSleepUsesVirtualClock covers the injectable clock source:
// with a recording Sleep installed, delay faults must route through it —
// no wall-clock stall — and SetConfig with a nil Sleep must keep the
// installed sleeper rather than silently reverting to time.Sleep.
func TestInjectedSleepUsesVirtualClock(t *testing.T) {
	var slept []time.Duration
	record := func(d time.Duration) { slept = append(slept, d) }

	const delay = 500 * time.Millisecond
	inj := NewInjector(Config{Seed: 9, DelayRate: 1, Delay: delay, Sleep: record})
	addr := startEcho(t)
	conn, err := inj.Dialer()(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	start := time.Now()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= delay {
		t.Fatalf("write blocked %v on the wall clock; the injected sleeper should have absorbed the delay", elapsed)
	}
	if len(slept) == 0 {
		t.Fatal("delay fault did not call the injected sleeper")
	}
	for _, d := range slept {
		if d != delay {
			t.Errorf("injected sleeper got %v, want %v", d, delay)
		}
	}

	// SetConfig without a Sleep keeps the recording sleeper installed.
	inj.SetConfig(Config{DelayRate: 1, Delay: delay})
	before := len(slept)
	if _, err := conn.Write([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if len(slept) == before {
		t.Fatal("SetConfig with nil Sleep reverted to the wall clock")
	}
}
