// Package trace records CPU and network utilization timelines of a
// simulated run — the instrumentation behind the paper's Fig. 2, which
// shows why bandwidth sensitivity arises (serial communication phases
// stretch as bandwidth shrinks while overlapped ones hide).
package trace

import (
	"errors"
	"fmt"
	"io"

	"saba/internal/netsim"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// Point is one sample of the normalized utilization timeline.
type Point struct {
	Time float64 // bucket start, seconds
	CPU  float64 // percent of aggregate CPU capacity in use
	Net  float64 // percent of aggregate NIC egress capacity in use
}

// Recorder accumulates utilization into fixed-width time buckets for a
// set of traced nodes.
//
// By default the whole timeline is retained; SetMaxSamples switches the
// recorder into ring-buffer mode with bounded memory, keeping only the
// most recent buckets.
type Recorder struct {
	interval float64
	nodes    map[topology.NodeID]bool
	capacity float64 // per-node egress capacity, bits/sec

	// Both series share the same base offset: bucket i of either slice
	// covers [ (base+i)·interval, (base+i+1)·interval ).
	base    int
	cpuBusy []float64 // busy node-seconds per bucket
	netBits []float64 // egress bits per bucket

	maxSamples int // > 0: ring-buffer mode, retain at most this many buckets
	dropped    int // buckets discarded by the sliding window

	droppedCtr *telemetry.Counter // trace.buckets_dropped
}

// NewRecorder traces the given nodes with buckets of `interval` seconds.
// capacity is the per-node egress capacity used for normalization.
func NewRecorder(interval float64, nodes []topology.NodeID, capacity float64) (*Recorder, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("trace: interval %g must be positive", interval)
	}
	if len(nodes) == 0 {
		return nil, errors.New("trace: no nodes to trace")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("trace: capacity %g must be positive", capacity)
	}
	set := make(map[topology.NodeID]bool, len(nodes))
	for _, n := range nodes {
		set[n] = true
	}
	return &Recorder{
		interval:   interval,
		nodes:      set,
		capacity:   capacity,
		droppedCtr: telemetry.Default.Counter("trace.buckets_dropped"),
	}, nil
}

// SetMaxSamples bounds the retained timeline to the most recent n
// buckets (a sliding window of n×interval seconds): once the simulation
// advances past the window, the oldest buckets are discarded and memory
// stays O(n). n <= 0 restores the default unbounded mode.
func (r *Recorder) SetMaxSamples(n int) { r.maxSamples = n }

// Dropped returns how many buckets the sliding window has discarded.
func (r *Recorder) Dropped() int { return r.dropped }

// Attach hooks the recorder into the engine's advance callback, chaining
// any previously installed hook.
func (r *Recorder) Attach(e *netsim.Engine) {
	prev := e.OnAdvance
	e.OnAdvance = func(e *netsim.Engine, t0, t1 float64) {
		if prev != nil {
			prev(e, t0, t1)
		}
		r.observe(e, t0, t1)
	}
}

// observe integrates the egress rates of traced nodes over [t0, t1).
func (r *Recorder) observe(e *netsim.Engine, t0, t1 float64) {
	if t1 <= t0 {
		return
	}
	total := 0.0
	e.Network().ForEachActive(func(f *netsim.Flow) {
		if r.nodes[f.Src] {
			total += f.Rate
		}
	})
	if total > 0 {
		r.spread(&r.netBits, t0, t1, total)
	}
}

// MarkCPU records that `nodes` traced nodes were computing during
// [from, to). Jobs report their compute windows through this.
func (r *Recorder) MarkCPU(from, to float64, nodes int) {
	if to <= from || nodes <= 0 {
		return
	}
	r.spread(&r.cpuBusy, from, to, float64(nodes))
}

// spread adds value×overlap to every bucket intersecting [from, to).
// value is a rate (per second): bits/sec for the network series,
// busy-node count for the CPU series.
func (r *Recorder) spread(buckets *[]float64, from, to, value float64) {
	first := int(from / r.interval)
	last := int(to / r.interval)
	if float64(last)*r.interval >= to {
		last-- // `to` falls exactly on a bucket boundary: exclusive end
	}
	if last < first {
		last = first
	}
	if r.maxSamples > 0 && last-r.base >= r.maxSamples {
		r.advanceBase(last + 1 - r.maxSamples)
	}
	if last < r.base {
		return // entirely before the retained window
	}
	if first < r.base {
		first = r.base
	}
	if needed := last - r.base + 1; needed > len(*buckets) {
		grown := make([]float64, needed)
		copy(grown, *buckets)
		*buckets = grown
	}
	for b := first; b <= last; b++ {
		bStart := float64(b) * r.interval
		bEnd := bStart + r.interval
		lo := from
		if bStart > lo {
			lo = bStart
		}
		hi := to
		if bEnd < hi {
			hi = bEnd
		}
		if hi > lo {
			(*buckets)[b-r.base] += value * (hi - lo)
		}
	}
}

// advanceBase slides the retained window forward so its first bucket is
// newBase, trimming both series in place (they share the base offset).
func (r *Recorder) advanceBase(newBase int) {
	d := newBase - r.base
	if d <= 0 {
		return
	}
	trim := func(s []float64) []float64 {
		if d >= len(s) {
			return s[:0]
		}
		copy(s, s[d:])
		return s[:len(s)-d]
	}
	r.cpuBusy = trim(r.cpuBusy)
	r.netBits = trim(r.netBits)
	r.base = newBase
	r.dropped += d
	r.droppedCtr.Add(uint64(d))
}

// Series returns the normalized timeline: CPU% and Net% per bucket. In
// ring-buffer mode it covers only the retained window; each Point's Time
// is still the absolute bucket start.
func (r *Recorder) Series() []Point {
	n := len(r.cpuBusy)
	if len(r.netBits) > n {
		n = len(r.netBits)
	}
	pts := make([]Point, n)
	nodeCount := float64(len(r.nodes))
	for b := 0; b < n; b++ {
		pts[b].Time = float64(r.base+b) * r.interval
		if b < len(r.cpuBusy) {
			pts[b].CPU = 100 * r.cpuBusy[b] / (nodeCount * r.interval)
		}
		if b < len(r.netBits) {
			pts[b].Net = 100 * r.netBits[b] / (nodeCount * r.capacity * r.interval)
		}
		if pts[b].CPU > 100 {
			pts[b].CPU = 100
		}
		if pts[b].Net > 100 {
			pts[b].Net = 100
		}
	}
	return pts
}

// WriteCSV renders the timeline as "time,cpu,net" rows with a header.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_s,cpu_pct,net_pct"); err != nil {
		return err
	}
	for _, p := range r.Series() {
		if _, err := fmt.Fprintf(w, "%.2f,%.2f,%.2f\n", p.Time, p.CPU, p.Net); err != nil {
			return err
		}
	}
	return nil
}
