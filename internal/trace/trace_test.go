package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"saba/internal/netsim"
	"saba/internal/topology"
	"saba/internal/workload"
)

func TestRecorderValidation(t *testing.T) {
	nodes := []topology.NodeID{1}
	if _, err := NewRecorder(0, nodes, 100); err == nil {
		t.Error("zero interval should fail")
	}
	if _, err := NewRecorder(1, nil, 100); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := NewRecorder(1, nodes, 0); err == nil {
		t.Error("zero capacity should fail")
	}
}

func TestMarkCPUBuckets(t *testing.T) {
	r, err := NewRecorder(1, []topology.NodeID{1, 2}, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Both nodes busy for 1.5s starting at 0.5: buckets 0 gets 0.5s×2,
	// bucket 1 gets 1.0s×2.
	r.MarkCPU(0.5, 2.0, 2)
	pts := r.Series()
	if len(pts) < 2 {
		t.Fatalf("series too short: %d", len(pts))
	}
	if math.Abs(pts[0].CPU-50) > 1e-9 {
		t.Errorf("bucket0 CPU = %g, want 50", pts[0].CPU)
	}
	if math.Abs(pts[1].CPU-100) > 1e-9 {
		t.Errorf("bucket1 CPU = %g, want 100", pts[1].CPU)
	}
	// No-ops.
	r.MarkCPU(5, 5, 2)
	r.MarkCPU(3, 2, 2)
	r.MarkCPU(1, 2, 0)
}

func TestNetworkObservation(t *testing.T) {
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 2, LinkCapacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
	hosts := top.Hosts()
	r, err := NewRecorder(1, hosts[:1], 100)
	if err != nil {
		t.Fatal(err)
	}
	r.Attach(e)
	// 400 bits at 100 bps: node 0 at 100% egress for 4s.
	e.AddFlow(netsim.FlowSpec{Src: hosts[0], Dst: hosts[1], Bits: 400}, nil)
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	pts := r.Series()
	if len(pts) < 4 {
		t.Fatalf("series too short: %d buckets", len(pts))
	}
	for b := 0; b < 4; b++ {
		if math.Abs(pts[b].Net-100) > 1e-6 {
			t.Errorf("bucket %d Net = %g, want 100", b, pts[b].Net)
		}
	}
}

func TestFig2ShapeSerialVsOverlap(t *testing.T) {
	// The Fig. 2 mechanism: for a serial workload (LR-like) CPU and
	// network are anti-correlated; for an overlapped one (PR-like) they
	// are simultaneously high. Verify with two single-stage jobs.
	run := func(overlap float64) []Point {
		top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8})
		if err != nil {
			t.Fatal(err)
		}
		net := netsim.NewNetwork(top)
		e := netsim.NewEngine(net, netsim.NewIdealMaxMin(net))
		rec, err := NewRecorder(1, top.Hosts(), topology.DefaultLinkCapacity)
		if err != nil {
			t.Fatal(err)
		}
		rec.Attach(e)
		spec := workload.Spec{Name: "t", Stages: []workload.Stage{{
			ComputeSeconds:   10,
			CommBytesPerNode: 10 * 56e9 / 8, // 10s at line rate
			Overlap:          overlap,
		}}}
		j := &workload.Job{ID: 1, Spec: spec, Nodes: top.Hosts()}
		j.OnPhase = func(tm float64, stage int, p workload.Phase) {
			if p == workload.PhaseComputeStart {
				st := j.ScaledStages()[stage]
				rec.MarkCPU(tm, tm+st.ComputeSeconds, len(j.Nodes))
			}
		}
		if err := j.Start(e); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		return rec.Series()
	}

	serial := run(0)
	// Serial: no bucket has both CPU and network high.
	for _, p := range serial {
		if p.CPU > 80 && p.Net > 80 {
			t.Errorf("serial job overlaps CPU (%g) and net (%g) at t=%g", p.CPU, p.Net, p.Time)
		}
	}

	overlapped := run(1)
	both := 0
	for _, p := range overlapped {
		if p.CPU > 80 && p.Net > 80 {
			both++
		}
	}
	if both < 5 {
		t.Errorf("overlapped job shows only %d buckets with simultaneous CPU+net", both)
	}
}

func TestWriteCSV(t *testing.T) {
	r, _ := NewRecorder(1, []topology.NodeID{1}, 100)
	r.MarkCPU(0, 2, 1)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_s,cpu_pct,net_pct" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Errorf("CSV has %d lines, want 3", len(lines))
	}
}

func TestRingBufferBoundedMemory(t *testing.T) {
	r, err := NewRecorder(1, []topology.NodeID{1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	const cap = 64
	r.SetMaxSamples(cap)
	// Drive the recorder far past the window: 10k seconds of activity on
	// both series, one second at a time.
	for s := 0; s < 10000; s++ {
		from, to := float64(s), float64(s)+1
		r.MarkCPU(from, to, 1)
		r.spread(&r.netBits, from, to, 100) // full line rate
	}
	if len(r.cpuBusy) > cap || len(r.netBits) > cap {
		t.Fatalf("buckets exceed cap: cpu=%d net=%d, cap=%d",
			len(r.cpuBusy), len(r.netBits), cap)
	}
	pts := r.Series()
	if len(pts) > cap {
		t.Fatalf("series has %d points, cap %d", len(pts), cap)
	}
	// The retained window must be the most recent buckets, with absolute
	// timestamps and intact data on both series.
	if got, want := pts[len(pts)-1].Time, float64(9999); got != want {
		t.Errorf("last bucket time = %g, want %g", got, want)
	}
	if got, want := pts[0].Time, float64(10000-cap); got != want {
		t.Errorf("first bucket time = %g, want %g", got, want)
	}
	for _, p := range pts {
		if math.Abs(p.CPU-100) > 1e-9 || math.Abs(p.Net-100) > 1e-9 {
			t.Fatalf("bucket t=%g: CPU=%g Net=%g, want 100/100", p.Time, p.CPU, p.Net)
		}
	}
	if r.Dropped() != 10000-cap {
		t.Errorf("Dropped() = %d, want %d", r.Dropped(), 10000-cap)
	}
}

func TestRingBufferSpanningWrite(t *testing.T) {
	// A single interval wider than the window keeps only its tail.
	r, _ := NewRecorder(1, []topology.NodeID{1}, 100)
	r.SetMaxSamples(4)
	r.MarkCPU(0, 100, 1)
	pts := r.Series()
	if len(pts) != 4 {
		t.Fatalf("series has %d points, want 4", len(pts))
	}
	if pts[0].Time != 96 {
		t.Errorf("first bucket time = %g, want 96", pts[0].Time)
	}
	for _, p := range pts {
		if math.Abs(p.CPU-100) > 1e-9 {
			t.Errorf("bucket t=%g CPU=%g, want 100", p.Time, p.CPU)
		}
	}
	// Writes entirely before the window are dropped silently.
	r.MarkCPU(0, 1, 1)
	if got := r.Series()[0].CPU; math.Abs(got-100) > 1e-9 {
		t.Errorf("stale write corrupted window: CPU=%g", got)
	}
}

func TestSeriesClampsAt100(t *testing.T) {
	r, _ := NewRecorder(1, []topology.NodeID{1}, 100)
	r.MarkCPU(0, 1, 5) // 5 busy nodes reported for 1 traced node
	if pts := r.Series(); pts[0].CPU != 100 {
		t.Errorf("CPU = %g, want clamped 100", pts[0].CPU)
	}
}
