// Package solver implements the constrained optimizer behind Saba's
// per-port weight calculation (paper Eq. 2):
//
//	W = argmin Σᵢ Dᵢ(wᵢ)   subject to   Σᵢ wᵢ = C,  lo ≤ wᵢ ≤ hi
//
// where each Dᵢ is an application's sensitivity model (a polynomial in the
// bandwidth fraction). The paper uses NLopt's SLSQP; this package provides
// an equivalent pure-Go minimizer: projected gradient descent onto the
// scaled simplex with box constraints, refined with a KKT water-filling
// step when the objective is convex on the feasible region. A brute-force
// grid solver is included for cross-checking in tests.
package solver

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Objective is one additive term of the optimization: a differentiable
// function of the bandwidth fraction allocated to one application.
type Objective interface {
	// Value returns D(w), the predicted slowdown at bandwidth fraction w.
	Value(w float64) float64
	// Deriv returns dD/dw at w.
	Deriv(w float64) float64
}

// PolyObjective adapts a coefficient vector (c0 + c1·w + …) to Objective.
type PolyObjective struct {
	Coeffs []float64
}

// Value evaluates the polynomial at w by Horner's method.
func (p PolyObjective) Value(w float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*w + p.Coeffs[i]
	}
	return v
}

// Deriv evaluates the polynomial derivative at w.
func (p PolyObjective) Deriv(w float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 1; i-- {
		v = v*w + float64(i)*p.Coeffs[i]
	}
	return v
}

// Options configure Minimize.
type Options struct {
	Total float64 // Σ wᵢ (the C_saba fraction of the port); default 1
	// MinShare is the per-weight floor. The default (0) selects half of
	// the max-min fair share Total/n: polynomial sensitivity models are
	// extrapolations below the profiled range and systematically
	// underestimate how badly real transfers starve, so the floor keeps
	// every application within a bounded distance of its fair share —
	// the no-starvation property §5.2 highlights. The skew Saba applies
	// on top redistributes the remaining slack plus whatever
	// work-conservation frees up.
	MinShare float64
	MaxShare float64 // upper bound per weight; default Total
	MaxIters int     // projected-gradient iterations; default 500
	Tol      float64 // convergence tolerance on the objective; default 1e-9
}

func (o *Options) fill(n int) error {
	if o.Total <= 0 {
		o.Total = 1
	}
	if o.MinShare < 0 {
		return fmt.Errorf("solver: negative MinShare %g", o.MinShare)
	}
	if o.MinShare == 0 {
		o.MinShare = 0.5 * o.Total / float64(n)
	}
	if o.MaxShare == 0 {
		// Bound the upside symmetrically: model predictions far above the
		// fair operating point are extrapolations too, and letting one
		// application absorb the whole port overfits them.
		o.MaxShare = 3 * o.Total / float64(n)
	}
	if o.MaxShare < 0 || o.MaxShare > o.Total {
		o.MaxShare = o.Total
	}
	if o.MinShare*float64(n) > o.Total+1e-12 {
		// Infeasible lower bounds: relax proportionally so every app still
		// receives a (smaller) guaranteed share.
		o.MinShare = o.Total / float64(n)
	}
	if o.MaxShare*float64(n) < o.Total-1e-12 {
		return fmt.Errorf("solver: MaxShare %g too small for %d objectives with total %g", o.MaxShare, n, o.Total)
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return nil
}

// ErrNoObjectives is returned when Minimize is called without objectives.
var ErrNoObjectives = errors.New("solver: no objectives")

// Minimize solves Eq. 2 and returns the weight vector (same order as objs)
// summing to opts.Total.
func Minimize(objs []Objective, opts Options) ([]float64, error) {
	n := len(objs)
	if n == 0 {
		return nil, ErrNoObjectives
	}
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	if n == 1 {
		return []float64{opts.Total}, nil
	}

	// Start from the max-min point (equal split) — also the fallback if
	// the models are pathological.
	w := make([]float64, n)
	for i := range w {
		w[i] = opts.Total / float64(n)
	}
	best := append([]float64(nil), w...)
	bestVal := total(objs, w)

	// Projected gradient descent with diminishing step and box+simplex
	// projection. Sensitivity polynomials are low-degree and smooth, so
	// this converges quickly; we track the incumbent to be safe against
	// non-convexity.
	grad := make([]float64, n)
	step := opts.Total / 4
	prev := bestVal
	for it := 0; it < opts.MaxIters; it++ {
		gnorm := 0.0
		for i, o := range objs {
			grad[i] = o.Deriv(w[i])
			gnorm += grad[i] * grad[i]
		}
		gnorm = math.Sqrt(gnorm)
		if gnorm < 1e-15 {
			break
		}
		for i := range w {
			w[i] -= step * grad[i] / gnorm
		}
		projectSimplexBox(w, opts.Total, opts.MinShare, opts.MaxShare)
		v := total(objs, w)
		if v < bestVal {
			bestVal = v
			copy(best, w)
		}
		if v > prev { // overshoot: shrink the step
			step *= 0.5
			copy(w, best)
		}
		if math.Abs(prev-v) < opts.Tol && it > 10 {
			break
		}
		prev = v
	}

	// A Lagrangian water-filling pass is cheap (O(n log(1/ε))) and exact
	// for convex objectives; keep it if it wins.
	if lw, ok := lagrangian(objs, opts); ok {
		if v := total(objs, lw); v < bestVal {
			bestVal = v
			copy(best, lw)
		}
	}

	// Polish with a pairwise coordinate exchange: move mass between pairs
	// whose marginal costs differ. This recovers the exact KKT point for
	// convex objectives and improves non-convex incumbents. Quadratic in
	// n, so reserved for small ports; large instances rely on the
	// gradient + Lagrangian passes.
	if n <= 40 {
		copy(w, best)
		polishPairwise(objs, w, opts, 200)
		if v := total(objs, w); v < bestVal {
			bestVal = v
			copy(best, w)
		}
	}
	return best, nil
}

// lagrangian solves Eq. 2 by dualizing the sum constraint: for a
// multiplier λ each weight independently minimizes Dᵢ(w) − λw over the
// box, and λ is bisected until the weights sum to Total. Exact for convex
// Dᵢ; for non-convex models the bisection may not close the duality gap,
// in which case the caller's incumbent stands.
func lagrangian(objs []Objective, opts Options) ([]float64, bool) {
	n := len(objs)
	w := make([]float64, n)
	fill := func(lambda float64) float64 {
		s := 0.0
		for i, o := range objs {
			w[i] = proxMin(o, lambda, opts.MinShare, opts.MaxShare)
			s += w[i]
		}
		return s
	}
	// Bracket λ. Larger λ rewards larger w (we minimize D − λw), so the
	// sum is non-decreasing in λ for convex D.
	lo, hi := -1.0, 1.0
	for i := 0; fill(lo) > opts.Total && i < 80; i++ {
		lo *= 2
	}
	for i := 0; fill(hi) < opts.Total && i < 80; i++ {
		hi *= 2
	}
	if fill(lo) > opts.Total || fill(hi) < opts.Total {
		return nil, false
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if fill(mid) < opts.Total {
			lo = mid
		} else {
			hi = mid
		}
	}
	s := fill(hi)
	// Distribute residual drift over interior coordinates.
	drift := opts.Total - s
	if math.Abs(drift) > 1e-9*opts.Total {
		for i := range w {
			if drift == 0 {
				break
			}
			nx := clamp(w[i]+drift, opts.MinShare, opts.MaxShare)
			drift -= nx - w[i]
			w[i] = nx
		}
		if math.Abs(drift) > 1e-6*opts.Total {
			return nil, false
		}
	}
	return w, true
}

// proxMin minimizes D(w) − λw over [lo, hi] by checking the stationary
// points of the (low-degree polynomial) objective plus the endpoints.
func proxMin(o Objective, lambda, lo, hi float64) float64 {
	bestW := lo
	bestV := o.Value(lo) - lambda*lo
	try := func(w float64) {
		if w < lo || w > hi {
			return
		}
		if v := o.Value(w) - lambda*w; v < bestV {
			bestV, bestW = v, w
		}
	}
	try(hi)
	// Stationary points: D'(w) = λ. For the polynomial objectives used in
	// practice D' has degree ≤ 2; solve directly when possible, otherwise
	// scan a coarse grid.
	if p, ok := o.(PolyObjective); ok && len(p.Coeffs) <= 4 {
		switch len(p.Coeffs) {
		case 0, 1:
			// constant: endpoints only
		case 2:
			// D' = c1 (constant): no interior stationary point.
		case 3:
			// D' = c1 + 2c2·w = λ
			if p.Coeffs[2] != 0 {
				try((lambda - p.Coeffs[1]) / (2 * p.Coeffs[2]))
			}
		case 4:
			// D' = c1 + 2c2·w + 3c3·w² = λ
			a, b, c := 3*p.Coeffs[3], 2*p.Coeffs[2], p.Coeffs[1]-lambda
			if a == 0 {
				if b != 0 {
					try(-c / b)
				}
			} else if disc := b*b - 4*a*c; disc >= 0 {
				sq := math.Sqrt(disc)
				try((-b + sq) / (2 * a))
				try((-b - sq) / (2 * a))
			}
		}
		return bestW
	}
	// Generic objective: coarse scan + local refinement.
	const steps = 32
	for i := 0; i <= steps; i++ {
		try(lo + (hi-lo)*float64(i)/steps)
	}
	return bestW
}

func total(objs []Objective, w []float64) float64 {
	v := 0.0
	for i, o := range objs {
		v += o.Value(w[i])
	}
	return v
}

// polishPairwise performs exact line searches on pairs (i, j), transferring
// δ from j to i, which preserves the simplex constraint by construction.
func polishPairwise(objs []Objective, w []float64, opts Options, rounds int) {
	n := len(objs)
	for r := 0; r < rounds; r++ {
		improved := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if transferSearch(objs, w, i, j, opts) {
					improved = true
				}
			}
		}
		if !improved {
			return
		}
	}
}

// transferSearch finds the δ minimizing D_i(w_i+δ)+D_j(w_j−δ) over the
// feasible interval via golden-section search. Returns true if it moved.
func transferSearch(objs []Objective, w []float64, i, j int, opts Options) bool {
	lo := math.Max(opts.MinShare-w[i], w[j]-opts.MaxShare) // most-negative δ
	hi := math.Min(opts.MaxShare-w[i], w[j]-opts.MinShare) // most-positive δ
	if hi-lo < 1e-12 {
		return false
	}
	f := func(d float64) float64 {
		return objs[i].Value(w[i]+d) + objs[j].Value(w[j]-d)
	}
	const phi = 0.6180339887498949
	a, b := lo, hi
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for k := 0; k < 60 && b-a > 1e-10; k++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	d := (a + b) / 2
	if f(d) < f(0)-1e-12 {
		w[i] += d
		w[j] -= d
		return true
	}
	return false
}

// projectSimplexBox projects w onto {w : Σw = total, lo ≤ wᵢ ≤ hi} in
// Euclidean norm using bisection on the dual variable (a box-constrained
// variant of Michelot's simplex projection).
func projectSimplexBox(w []float64, totalSum, lo, hi float64) {
	clampSum := func(tau float64) float64 {
		s := 0.0
		for _, x := range w {
			s += clamp(x-tau, lo, hi)
		}
		return s
	}
	// Bracket tau: shifting by ±(max deviation) certainly brackets.
	tauLo, tauHi := -1.0, 1.0
	for clampSum(tauLo) < totalSum {
		tauLo *= 2
		if tauLo < -1e12 {
			break
		}
	}
	for clampSum(tauHi) > totalSum {
		tauHi *= 2
		if tauHi > 1e12 {
			break
		}
	}
	for k := 0; k < 100; k++ {
		mid := (tauLo + tauHi) / 2
		if clampSum(mid) > totalSum {
			tauLo = mid
		} else {
			tauHi = mid
		}
	}
	tau := (tauLo + tauHi) / 2
	for i := range w {
		w[i] = clamp(w[i]-tau, lo, hi)
	}
	// Fix residual rounding drift by nudging an interior coordinate.
	s := 0.0
	for _, x := range w {
		s += x
	}
	drift := totalSum - s
	if drift != 0 {
		for i := range w {
			nx := w[i] + drift
			if nx >= lo && nx <= hi {
				w[i] = nx
				break
			}
		}
	}
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// GridMinimize exhaustively searches the simplex at the given resolution
// (number of discrete units that sum to Total). It is exponential in the
// number of objectives and exists to validate Minimize in tests and for
// tiny problem instances.
func GridMinimize(objs []Objective, opts Options, units int) ([]float64, error) {
	n := len(objs)
	if n == 0 {
		return nil, ErrNoObjectives
	}
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	if units < n {
		return nil, fmt.Errorf("solver: grid of %d units cannot cover %d objectives", units, n)
	}
	best := make([]float64, n)
	bestVal := math.Inf(1)
	cur := make([]int, n)
	var rec func(idx, remaining int)
	rec = func(idx, remaining int) {
		if idx == n-1 {
			cur[idx] = remaining
			w := make([]float64, n)
			for i, u := range cur {
				w[i] = float64(u) / float64(units) * opts.Total
				if w[i] < opts.MinShare-1e-9 || w[i] > opts.MaxShare+1e-9 {
					return
				}
			}
			if v := total(objs, w); v < bestVal {
				bestVal = v
				copy(best, w)
			}
			return
		}
		for u := 0; u <= remaining; u++ {
			cur[idx] = u
			rec(idx+1, remaining-u)
		}
	}
	rec(0, units)
	if math.IsInf(bestVal, 1) {
		return nil, errors.New("solver: grid search found no feasible point")
	}
	return best, nil
}

// EqualSplit returns the max-min fair weight vector (the baseline the
// paper contrasts with): every objective receives Total/n.
func EqualSplit(n int, totalShare float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = totalShare / float64(n)
	}
	return w
}

// SortedByWeight returns indices of w ordered by descending weight;
// useful for reporting which applications won bandwidth.
func SortedByWeight(w []float64) []int {
	idx := make([]int, len(w))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	return idx
}
