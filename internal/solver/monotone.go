package solver

// MonotonePoly wraps a polynomial sensitivity model with its monotone
// non-increasing envelope: D̂(w) = max over w' ∈ [w, hi] of D(w').
//
// Low-degree polynomial fits of kinked slowdown curves (a workload whose
// communication hides under compute until some bandwidth threshold has a
// perfectly flat region followed by a steep one) oscillate: they dip
// below slowdown 1.0 and develop spurious bumps. A bump makes Eq. 2
// believe giving an application more bandwidth would *hurt* it, which is
// physically impossible — more bandwidth never slows a job. Enforcing
// monotonicity restores that physical prior without changing the fit
// itself. The envelope is precomputed on a dense grid and evaluated by
// linear interpolation; derivatives are the interpolant's slopes.
type MonotonePoly struct {
	lo, hi float64
	step   float64
	vals   []float64 // envelope at lo + i·step
}

// monotoneGrid is the envelope resolution. 257 points over [0,1] put
// grid error far below any sensitivity model's fidelity.
const monotoneGrid = 257

// NewMonotonePoly builds the envelope of the polynomial with the given
// coefficients over [0, 1].
func NewMonotonePoly(coeffs []float64) MonotonePoly {
	p := PolyObjective{Coeffs: coeffs}
	m := MonotonePoly{lo: 0, hi: 1}
	m.step = (m.hi - m.lo) / (monotoneGrid - 1)
	m.vals = make([]float64, monotoneGrid)
	for i := range m.vals {
		m.vals[i] = p.Value(m.lo + float64(i)*m.step)
	}
	// Suffix max makes the curve non-increasing left-to-right.
	for i := monotoneGrid - 2; i >= 0; i-- {
		if m.vals[i] < m.vals[i+1] {
			m.vals[i] = m.vals[i+1]
		}
	}
	return m
}

// Value implements Objective by interpolating the envelope.
func (m MonotonePoly) Value(w float64) float64 {
	if w <= m.lo {
		return m.vals[0]
	}
	if w >= m.hi {
		return m.vals[len(m.vals)-1]
	}
	f := (w - m.lo) / m.step
	i := int(f)
	frac := f - float64(i)
	return m.vals[i]*(1-frac) + m.vals[i+1]*frac
}

// Deriv implements Objective with the interpolant's segment slope.
func (m MonotonePoly) Deriv(w float64) float64 {
	if w <= m.lo || w >= m.hi {
		return 0
	}
	i := int((w - m.lo) / m.step)
	if i >= len(m.vals)-1 {
		i = len(m.vals) - 2
	}
	return (m.vals[i+1] - m.vals[i]) / m.step
}
