package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sens builds a typical decreasing-in-bandwidth sensitivity objective:
// slowdown = 1 + a/(w+eps) approximated by its cubic fit is overkill here;
// tests use explicit polynomials instead.
func polyObj(coeffs ...float64) Objective { return PolyObjective{Coeffs: coeffs} }

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestPolyObjective(t *testing.T) {
	p := PolyObjective{Coeffs: []float64{4, -6, 2}} // 4 - 6w + 2w²
	if got := p.Value(1); math.Abs(got-0) > 1e-12 {
		t.Errorf("Value(1) = %g, want 0", got)
	}
	if got := p.Deriv(1); math.Abs(got-(-2)) > 1e-12 {
		t.Errorf("Deriv(1) = %g, want -2", got)
	}
	if got := p.Deriv(0); math.Abs(got-(-6)) > 1e-12 {
		t.Errorf("Deriv(0) = %g, want -6", got)
	}
}

func TestMinimizeSingleObjective(t *testing.T) {
	w, err := Minimize([]Objective{polyObj(5, -1)}, Options{Total: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 1 || math.Abs(w[0]-0.8) > 1e-12 {
		t.Errorf("single objective weights = %v, want [0.8]", w)
	}
}

func TestMinimizeNoObjectives(t *testing.T) {
	if _, err := Minimize(nil, Options{}); err != ErrNoObjectives {
		t.Errorf("err = %v, want ErrNoObjectives", err)
	}
}

func TestMinimizeSymmetricSplitsEqually(t *testing.T) {
	// Identical convex objectives must yield the equal split.
	obj := polyObj(4, -6, 3) // convex, decreasing on [0,1]
	w, err := Minimize([]Objective{obj, obj, obj, obj}, Options{Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range w {
		if math.Abs(x-0.25) > 1e-4 {
			t.Errorf("w[%d] = %g, want 0.25", i, x)
		}
	}
}

func TestMinimizeFavorsSensitiveApp(t *testing.T) {
	// LR-like (steep) vs PR-like (flat) sensitivity: the steep app must
	// receive strictly more bandwidth. Mirrors the paper's skewed
	// allocation experiment (§2.2: 75%/25% split for LR vs PR).
	lr := polyObj(5.2, -6.0, 1.8) // steep decrease
	pr := polyObj(1.5, -0.6, 0.1) // nearly flat
	w, err := Minimize([]Objective{lr, pr}, Options{Total: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w[0] <= w[1] {
		t.Fatalf("sensitive app got %g, insensitive got %g; want sensitive > insensitive", w[0], w[1])
	}
	if w[0] < 0.6 {
		t.Errorf("sensitive app share = %g, expected a strongly skewed split", w[0])
	}
	if math.Abs(sum(w)-1) > 1e-6 {
		t.Errorf("weights sum to %g, want 1", sum(w))
	}
}

func TestMinimizeRespectsTotalConstraint(t *testing.T) {
	objs := []Objective{polyObj(3, -2), polyObj(2, -1), polyObj(4, -3, 0.5)}
	for _, totalShare := range []float64{0.5, 0.9, 1.0} {
		w, err := Minimize(objs, Options{Total: totalShare})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sum(w)-totalShare) > 1e-6 {
			t.Errorf("Total=%g: weights sum to %g", totalShare, sum(w))
		}
	}
}

func TestMinimizeRespectsMinShare(t *testing.T) {
	// Even a completely insensitive app keeps the floor share (WFQ's
	// no-starvation property, paper §5.2).
	steep := polyObj(10, -15, 6)
	flat := polyObj(1) // constant: gradient zero
	w, err := Minimize([]Objective{steep, flat}, Options{Total: 1, MinShare: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if w[1] < 0.05-1e-9 {
		t.Errorf("flat app share = %g, want >= MinShare 0.05", w[1])
	}
}

func TestMinimizeInfeasibleMinShareRelaxed(t *testing.T) {
	// 30 objectives with MinShare 0.05 would need 1.5 total; the solver
	// relaxes the floor instead of failing.
	objs := make([]Objective, 30)
	for i := range objs {
		objs[i] = polyObj(2, -1)
	}
	w, err := Minimize(objs, Options{Total: 1, MinShare: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum(w)-1) > 1e-6 {
		t.Errorf("sum = %g, want 1", sum(w))
	}
}

func TestMinimizeMatchesGridOnConvexInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		objs := make([]Objective, n)
		for i := range objs {
			// Convex decreasing quadratics: a - b·w + c·w², b>0, c>0,
			// with minimum beyond w=1 so objectives stay decreasing.
			c := 0.2 + rng.Float64()
			b := 2*c + rng.Float64()*4
			a := 1 + b // keeps values positive on [0,1]
			objs[i] = polyObj(a, -b, c)
		}
		opts := Options{Total: 1, MinShare: 0.02}
		w, err := Minimize(objs, opts)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GridMinimize(objs, opts, 50)
		if err != nil {
			t.Fatal(err)
		}
		vw, vg := 0.0, 0.0
		for i := range objs {
			vw += objs[i].Value(w[i])
			vg += objs[i].Value(g[i])
		}
		// Grid is coarse: Minimize must be at least as good (within grid error).
		if vw > vg+1e-3 {
			t.Errorf("trial %d: Minimize objective %g worse than grid %g (w=%v g=%v)", trial, vw, vg, w, g)
		}
	}
}

func TestMinimizeNeverWorseThanEqualSplit(t *testing.T) {
	// Property: the optimizer must never do worse than max-min's equal
	// split — otherwise Saba would lose to its own baseline.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		objs := make([]Objective, n)
		for i := range objs {
			objs[i] = polyObj(1+5*rng.Float64(), -5*rng.Float64(), 3*rng.Float64(), -rng.Float64())
		}
		w, err := Minimize(objs, Options{Total: 1})
		if err != nil {
			return false
		}
		eq := EqualSplit(n, 1)
		vw, ve := 0.0, 0.0
		for i := range objs {
			vw += objs[i].Value(w[i])
			ve += objs[i].Value(eq[i])
		}
		return vw <= ve+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProjectSimplexBox(t *testing.T) {
	w := []float64{0.9, 0.9, 0.9}
	projectSimplexBox(w, 1, 0.01, 1)
	if math.Abs(sum(w)-1) > 1e-9 {
		t.Errorf("projection sum = %g, want 1", sum(w))
	}
	for i, x := range w {
		if x < 0.01-1e-12 || x > 1+1e-12 {
			t.Errorf("w[%d] = %g out of box", i, x)
		}
	}
	// Equal inputs project to equal outputs.
	if math.Abs(w[0]-w[1]) > 1e-9 || math.Abs(w[1]-w[2]) > 1e-9 {
		t.Errorf("symmetric projection broke symmetry: %v", w)
	}
}

func TestProjectSimplexBoxProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		w := make([]float64, n)
		for i := range w {
			w[i] = rng.Float64()*4 - 2
		}
		lo := 0.01
		projectSimplexBox(w, 1, lo, 1)
		if math.Abs(sum(w)-1) > 1e-6 {
			return false
		}
		for _, x := range w {
			if x < lo-1e-9 || x > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGridMinimizeErrors(t *testing.T) {
	if _, err := GridMinimize(nil, Options{}, 10); err != ErrNoObjectives {
		t.Errorf("err = %v, want ErrNoObjectives", err)
	}
	objs := []Objective{polyObj(1), polyObj(1), polyObj(1)}
	if _, err := GridMinimize(objs, Options{}, 2); err == nil {
		t.Error("grid smaller than objective count should fail")
	}
}

func TestEqualSplit(t *testing.T) {
	w := EqualSplit(4, 0.8)
	for _, x := range w {
		if math.Abs(x-0.2) > 1e-12 {
			t.Errorf("EqualSplit = %v, want all 0.2", w)
		}
	}
}

func TestSortedByWeight(t *testing.T) {
	idx := SortedByWeight([]float64{0.1, 0.7, 0.2})
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Errorf("SortedByWeight = %v, want [1 2 0]", idx)
	}
}

func BenchmarkMinimize8Apps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	objs := make([]Objective, 8)
	for i := range objs {
		objs[i] = polyObj(1+5*rng.Float64(), -4*rng.Float64(), 2*rng.Float64(), -0.5*rng.Float64())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Minimize(objs, Options{Total: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
