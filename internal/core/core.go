// Package core is Saba's top-level harness: it wires a topology, the
// fluid network simulator, a bandwidth-allocation policy, the controller
// (for the Saba policies) and a set of workload jobs into one run, and
// reports per-job completion times. Every experiment of the paper's
// evaluation is a thin loop over this package.
package core

import (
	"errors"
	"fmt"

	"saba/internal/controller"
	"saba/internal/decentral"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/sabalib"
	"saba/internal/solver"
	"saba/internal/topology"
	"saba/internal/workload"
)

// Policy selects the bandwidth-allocation discipline of a run.
type Policy int

// Policies under study (paper §8).
const (
	// PolicyBaseline is InfiniBand's FECN congestion management — the
	// paper's testbed baseline.
	PolicyBaseline Policy = iota
	// PolicyIdealMaxMin is the idealized per-flow max-min upper bound.
	PolicyIdealMaxMin
	// PolicySaba is Saba with the centralized controller.
	PolicySaba
	// PolicySabaDistributed is Saba with the distributed controller mesh.
	PolicySabaDistributed
	// PolicyHoma is the flow-size-priority transport (study 5).
	PolicyHoma
	// PolicySincronia is the clairvoyant coflow scheduler (study 6).
	PolicySincronia
	// PolicySabaDecentral is Saba with no controller at all: hosts
	// self-adjust toward the Eq. 2 weights from broadcast telemetry
	// signals (the Söze-style deployment mode).
	PolicySabaDecentral
)

func (p Policy) String() string {
	switch p {
	case PolicyBaseline:
		return "baseline"
	case PolicyIdealMaxMin:
		return "ideal-maxmin"
	case PolicySaba:
		return "saba"
	case PolicySabaDistributed:
		return "saba-distributed"
	case PolicyHoma:
		return "homa"
	case PolicySincronia:
		return "sincronia"
	case PolicySabaDecentral:
		return "saba-decentral"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// JobSpec is one job of a run: a workload placed on concrete hosts.
type JobSpec struct {
	Spec         workload.Spec
	DatasetScale float64 // 0 selects 1
	Nodes        []topology.NodeID
}

// RunConfig parameterizes RunJobs.
type RunConfig struct {
	Policy Policy
	// Table is the sensitivity table (required for the Saba policies).
	Table *profiler.Table
	// PLs is the priority-level count for the Saba policies; 0 → 16.
	PLs int
	// CSaba is the capacity fraction managed by Saba; 0 → 1.
	CSaba float64
	// Shards is the distributed-controller shard count; 0 → 4.
	Shards int
	// EngineShards selects the simulation engine's event-loop sharding
	// (netsim.Engine.SetShards): 0 keeps the serial legacy path, -1
	// derives one shard per fabric partition (pod), and n >= 2 uses n
	// shards. Distinct from Shards, which shards the distributed
	// controller mesh, not the simulator.
	EngineShards int
	// FECNEfficiency tunes the baseline's congested-link utilization;
	// 0 → netsim.DefaultFECNEfficiency.
	FECNEfficiency float64
	// SimBaseline selects the packet-simulator congestion model for the
	// baseline (mild losses) instead of the hardware-testbed profile —
	// the large-scale studies (Fig. 10/11) compare against the former.
	SimBaseline bool
	// FanOut bounds per-node shuffle partners; 0 → workload.DefaultFanOut.
	FanOut int
	// ComputeStretch multiplies every job's compute time relative to its
	// profiled (dedicated-node) speed — the paper's testbed studies pin
	// each job to one of the 16 cores per server, so they pass 16.
	// 0 → 1 (dedicated).
	ComputeStretch float64
	// Horizon bounds simulated time in seconds; 0 → 1e7.
	Horizon float64
	// Seed drives the controller's clustering determinism.
	Seed int64
	// FullRecompute disables the engine's scoped (dirty-component) rate
	// recomputation, forcing a global allocator pass after every change —
	// the escape hatch for validating the incremental path against the
	// reference behavior.
	FullRecompute bool
	// BeforeRun, when set, is invoked on the fully assembled engine just
	// before the simulation starts — the hook churn experiments use to
	// install fault schedules (faults.InstallLinkFlaps).
	BeforeRun func(*netsim.Engine) error
	// Drift parameterizes the centralized controller's profile-drift
	// quarantine and online learner. The zero value keeps the defaults.
	Drift controller.DriftConfig
	// AfterRegister, when set, is invoked once every application has
	// registered (and announced its connections) but before any job
	// starts. apps[i] is job i's controller-assigned ID. The drift
	// experiment uses it to pre-quarantine stale-profile apps.
	AfterRegister func(ctrl controller.API, apps []netsim.AppID) error
}

// Result reports a run.
type Result struct {
	Policy Policy
	// Completions[i] is the completion time (seconds) of jobs[i].
	Completions []float64
	// Makespan is the completion time of the last job.
	Makespan float64
	// ControllerCalc is the most recent weight-calculation time for
	// centralized Saba runs (zero otherwise).
	ControllerCalc float64
}

// ErrNoJobs is returned when RunJobs is invoked without jobs.
var ErrNoJobs = errors.New("core: no jobs")

// RunJobs executes the jobs concurrently from t=0 on the topology under
// the configured policy and returns their completion times.
func RunJobs(top *topology.Topology, jobs []JobSpec, cfg RunConfig) (Result, error) {
	if len(jobs) == 0 {
		return Result{}, ErrNoJobs
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 1e7
	}
	net := netsim.NewNetwork(top)

	var alloc netsim.Allocator
	var ctrl controller.API
	var dec *netsim.Decentral
	var decChannel *decentral.Channel
	switch cfg.Policy {
	case PolicyBaseline:
		fecn := netsim.NewFECN(net, cfg.FECNEfficiency)
		if cfg.SimBaseline {
			fecn.SimProfile()
		}
		alloc = fecn
	case PolicyIdealMaxMin:
		alloc = netsim.NewIdealMaxMin(net)
	case PolicyHoma:
		alloc = netsim.NewHoma(net, nil)
	case PolicySincronia:
		alloc = netsim.NewSincronia(net)
	case PolicySaba:
		if cfg.Table == nil {
			return Result{}, errors.New("core: Saba policy requires a sensitivity table")
		}
		wfq := netsim.NewWFQ(net)
		c, err := controller.NewCentralized(controller.Config{
			Topology: top,
			Table:    cfg.Table,
			Enforcer: wfq,
			PLs:      cfg.PLs,
			CSaba:    cfg.CSaba,
			Seed:     cfg.Seed,
			Drift:    cfg.Drift,
		})
		if err != nil {
			return Result{}, err
		}
		alloc, ctrl = wfq, c
	case PolicySabaDistributed:
		if cfg.Table == nil {
			return Result{}, errors.New("core: Saba policy requires a sensitivity table")
		}
		wfq := netsim.NewWFQ(net)
		pls := cfg.PLs
		if pls == 0 {
			pls = 16
		}
		db, err := controller.BuildMappingDB(cfg.Table, pls, minQueues(top), cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		shards := cfg.Shards
		if shards == 0 {
			shards = 4
		}
		mesh, err := controller.NewMesh(top, db, wfq, shards, cfg.CSaba, 0)
		if err != nil {
			return Result{}, err
		}
		alloc, ctrl = wfq, mesh
	case PolicySabaDecentral:
		if cfg.Table == nil {
			return Result{}, errors.New("core: Saba policy requires a sensitivity table")
		}
		dec = netsim.NewDecentral(net, netsim.DecentralConfig{
			Params: decentral.Params{Total: cfg.CSaba},
		})
		decChannel = decentral.NewChannel()
		dec.SetChannel(decChannel)
		alloc = dec
	default:
		return Result{}, fmt.Errorf("core: unknown policy %d", cfg.Policy)
	}

	e := netsim.NewEngine(net, alloc)
	e.SetFullRecompute(cfg.FullRecompute)
	e.SetShards(cfg.EngineShards)
	res := Result{Policy: cfg.Policy, Completions: make([]float64, len(jobs))}

	type jobCtl struct {
		lib   *sabalib.Library
		conns []*sabalib.Conn
	}
	ctls := make([]jobCtl, len(jobs))
	jobRefs := make([]*workload.Job, len(jobs))

	var runErr error
	remaining := len(jobs)
	for i, js := range jobs {
		if len(js.Nodes) == 0 {
			return Result{}, fmt.Errorf("core: job %d (%s) has no nodes", i, js.Spec.Name)
		}
		i := i
		j := &workload.Job{
			ID:             i + 1,
			Spec:           js.Spec,
			Nodes:          js.Nodes,
			App:            netsim.AppID(i + 1),
			DatasetScale:   js.DatasetScale,
			FanOut:         cfg.FanOut,
			ComputeStretch: cfg.ComputeStretch,
		}
		jobRefs[i] = j
		if ctrl != nil {
			// The real registration path: the Saba library registers the
			// application, learns its PL, and announces every connection
			// the shuffle will use (they persist across stages, like
			// Spark's shuffle connections).
			lib := sabalib.New(&sabalib.DirectTransport{API: ctrl})
			if err := lib.Register(js.Spec.Name); err != nil {
				return Result{}, err
			}
			app, _ := lib.App()
			j.App = app
			for _, pair := range shufflePairs(js.Nodes, cfg.FanOut) {
				conn, err := lib.ConnCreate(pair[0], pair[1])
				if err != nil {
					return Result{}, err
				}
				ctls[i].conns = append(ctls[i].conns, conn)
			}
			ctls[i].lib = lib
		} else if dec != nil {
			// Controller-free registration: the library is transportless —
			// Fig. 7's calls resolve locally — and the allocator learns the
			// application's sensitivity model the way hosts would announce
			// it (a one-time broadcast, not a hot-path RPC).
			obj := decentralObjective(cfg.Table, js.Spec.Name)
			dec.SetObjective(j.App, obj)
			lib := sabalib.NewDecentral(sabalib.Options{
				Decentral: &sabalib.DecentralOptions{
					Source:    decChannel,
					Objective: obj,
					Params:    decentral.Params{Total: cfg.CSaba},
					Now:       func() float64 { return e.Now() },
				},
			})
			if err := lib.Register(js.Spec.Name); err != nil {
				return Result{}, err
			}
			if err := lib.EnterDecentral(); err != nil {
				return Result{}, err
			}
			for _, pair := range shufflePairs(js.Nodes, cfg.FanOut) {
				conn, err := lib.ConnCreate(pair[0], pair[1])
				if err != nil {
					return Result{}, err
				}
				ctls[i].conns = append(ctls[i].conns, conn)
			}
			ctls[i].lib = lib
		}
		j.OnDone = func(e *netsim.Engine, j *workload.Job) {
			res.Completions[i] = j.CompletionTime()
			remaining--
			if c := ctls[i]; c.lib != nil {
				for _, conn := range c.conns {
					if err := conn.Destroy(); err != nil && runErr == nil {
						runErr = fmt.Errorf("core: conn destroy: %w", err)
					}
				}
				if err := c.lib.Deregister(); err != nil && runErr == nil {
					runErr = fmt.Errorf("core: deregister: %w", err)
				}
				e.MarkDirty()
			}
		}
	}

	if cfg.AfterRegister != nil && ctrl != nil {
		apps := make([]netsim.AppID, len(jobRefs))
		for i, j := range jobRefs {
			apps[i] = j.App
		}
		if err := cfg.AfterRegister(ctrl, apps); err != nil {
			return Result{}, fmt.Errorf("core: after-register hook: %w", err)
		}
	}

	// Start jobs only after every application has registered: late
	// registrations re-cluster PLs, so refresh each job's PL from the
	// controller before its flows are stamped.
	for i, j := range jobRefs {
		if ctls[i].lib != nil {
			pl, err := ctls[i].lib.RefreshPL()
			if err != nil {
				return Result{}, err
			}
			j.PL = pl
		}
		if err := j.Start(e); err != nil {
			return Result{}, err
		}
	}

	// Data-plane fault tolerance: when the controller can reconverge,
	// every applied failure/restore triggers path re-detection and port
	// re-enforcement, and the engine re-rates the fabric under the new
	// weights.
	if tc, ok := ctrl.(interface{ TopologyChanged() error }); ok {
		e.OnTopologyChange = func(e *netsim.Engine, _ uint64) {
			if err := tc.TopologyChanged(); err != nil && runErr == nil {
				runErr = fmt.Errorf("core: reconvergence: %w", err)
			}
			e.MarkDirty()
		}
	}
	// Controller-free deployments keep the telemetry channel alive with a
	// periodic heartbeat: the allocator re-broadcasts port utilization and
	// every library polls its share, exercising the host-side response
	// (and the staleness machinery) throughout the run. The sampler stops
	// rescheduling itself once all jobs are done so the engine can idle.
	if dec != nil {
		const beatPeriod = 0.5 // virtual seconds between broadcasts
		var beat func(*netsim.Engine)
		beat = func(e *netsim.Engine) {
			dec.Heartbeat(e.Network(), e.Now())
			for i := range ctls {
				if ctls[i].lib == nil {
					continue
				}
				if _, _, err := ctls[i].lib.DecentralShare(); err != nil && runErr == nil {
					runErr = fmt.Errorf("core: decentral share: %w", err)
				}
			}
			if remaining > 0 {
				if err := e.After(beatPeriod, beat); err != nil && runErr == nil {
					runErr = fmt.Errorf("core: heartbeat: %w", err)
				}
			}
		}
		if err := e.After(beatPeriod, beat); err != nil {
			return Result{}, fmt.Errorf("core: heartbeat: %w", err)
		}
	}
	if cfg.BeforeRun != nil {
		if err := cfg.BeforeRun(e); err != nil {
			return Result{}, fmt.Errorf("core: before-run hook: %w", err)
		}
	}

	if err := e.Run(cfg.Horizon); err != nil {
		return Result{}, fmt.Errorf("core: %s run: %w", cfg.Policy, err)
	}
	if runErr != nil {
		return Result{}, runErr
	}
	if remaining != 0 {
		return Result{}, fmt.Errorf("core: %d jobs never completed", remaining)
	}
	for _, c := range res.Completions {
		if c > res.Makespan {
			res.Makespan = c
		}
	}
	if cc, ok := ctrl.(*controller.Centralized); ok {
		res.ControllerCalc = cc.LastCalcDuration().Seconds()
	}
	return res, nil
}

// decentralObjective builds an application's sensitivity objective from
// the profiled table, with the controller's moderate default for
// unprofiled names — the same clamped-monotone envelope the centralized
// Eq. 2 solve uses, so both deployments optimize the identical model.
func decentralObjective(tab *profiler.Table, name string) solver.Objective {
	if entry, ok := tab.Get(name); ok && len(entry.Coeffs) > 0 {
		return solver.NewMonotonePoly(entry.Coeffs)
	}
	return solver.NewMonotonePoly(decentral.DefaultCoeffs)
}

// shufflePairs enumerates the (src, dst) connection pairs a job's shuffle
// uses: each node to its next fanOut ring neighbors (mirrors
// workload.Job's flow launch pattern).
func shufflePairs(nodes []topology.NodeID, fanOut int) [][2]topology.NodeID {
	n := len(nodes)
	if fanOut <= 0 {
		fanOut = workload.DefaultFanOut
	}
	if fanOut > n-1 {
		fanOut = n - 1
	}
	var pairs [][2]topology.NodeID
	for i, src := range nodes {
		for k := 1; k <= fanOut; k++ {
			pairs = append(pairs, [2]topology.NodeID{src, nodes[(i+k)%n]})
		}
	}
	return pairs
}

// minQueues returns the smallest per-port queue count in the topology.
func minQueues(top *topology.Topology) int {
	minQ := 0
	for _, n := range top.Nodes() {
		if n.Queues > 0 && (minQ == 0 || n.Queues < minQ) {
			minQ = n.Queues
		}
	}
	if minQ == 0 {
		minQ = 1
	}
	return minQ
}
