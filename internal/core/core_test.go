package core

import (
	"testing"

	"saba/internal/metrics"
	"saba/internal/profiler"
	"saba/internal/topology"
	"saba/internal/workload"
)

// buildTable profiles the named catalog workloads on the simulator —
// exactly the offline step the paper performs before every experiment.
func buildTable(t testing.TB, names []string, degree int) *profiler.Table {
	t.Helper()
	tab := profiler.NewTable()
	for _, n := range names {
		spec, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("unknown workload %s", n)
		}
		res, err := profiler.Profile(n, &profiler.SimRunner{Spec: spec}, nil, []int{degree})
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.PutResult(res, degree); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func testbedTop(t testing.TB, hosts int) *topology.Topology {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: hosts, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestRunJobsValidation(t *testing.T) {
	top := testbedTop(t, 4)
	if _, err := RunJobs(top, nil, RunConfig{}); err != ErrNoJobs {
		t.Errorf("err = %v, want ErrNoJobs", err)
	}
	lr, _ := workload.ByName("LR")
	jobs := []JobSpec{{Spec: lr}}
	if _, err := RunJobs(top, jobs, RunConfig{Policy: PolicyBaseline}); err == nil {
		t.Error("job without nodes should fail")
	}
	jobs[0].Nodes = top.Hosts()
	if _, err := RunJobs(top, jobs, RunConfig{Policy: PolicySaba}); err == nil {
		t.Error("Saba without table should fail")
	}
	if _, err := RunJobs(top, jobs, RunConfig{Policy: Policy(99)}); err == nil {
		t.Error("unknown policy should fail")
	}
}

func TestPolicyString(t *testing.T) {
	for p := PolicyBaseline; p <= PolicySincronia; p++ {
		if p.String() == "" {
			t.Errorf("Policy(%d).String empty", p)
		}
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestSingleJobSameAcrossFairPolicies(t *testing.T) {
	// A lone job sees no contention: ideal max-min and Saba must give it
	// the same completion time (Saba's WFQ is work-conserving), and the
	// FECN baseline must be no faster.
	top := testbedTop(t, 8)
	lr, _ := workload.ByName("LR")
	jobs := []JobSpec{{Spec: lr, Nodes: top.Hosts()}}
	tab := buildTable(t, []string{"LR"}, 3)

	ideal, err := RunJobs(top, jobs, RunConfig{Policy: PolicyIdealMaxMin})
	if err != nil {
		t.Fatal(err)
	}
	saba, err := RunJobs(top, jobs, RunConfig{Policy: PolicySaba, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunJobs(top, jobs, RunConfig{Policy: PolicyBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if rel := saba.Completions[0] / ideal.Completions[0]; rel < 0.99 || rel > 1.01 {
		t.Errorf("saba/ideal = %.3f for a lone job, want ~1", rel)
	}
	if base.Completions[0] < ideal.Completions[0]*0.99 {
		t.Errorf("baseline (%.1fs) faster than ideal (%.1fs)", base.Completions[0], ideal.Completions[0])
	}
}

func TestSabaSkewedBeatsBaselineOnLRPR(t *testing.T) {
	// The paper's motivating experiment (§2.2 / Fig. 1b): LR + PR
	// co-running. Saba must cut LR's completion time substantially while
	// PR degrades only mildly, improving the average.
	top := testbedTop(t, 8)
	lr, _ := workload.ByName("LR")
	pr, _ := workload.ByName("PR")
	jobs := []JobSpec{
		{Spec: lr, Nodes: top.Hosts()},
		{Spec: pr, Nodes: top.Hosts()},
	}
	tab := buildTable(t, []string{"LR", "PR"}, 3)

	base, err := RunJobs(top, jobs, RunConfig{Policy: PolicyBaseline})
	if err != nil {
		t.Fatal(err)
	}
	saba, err := RunJobs(top, jobs, RunConfig{Policy: PolicySaba, Table: tab})
	if err != nil {
		t.Fatal(err)
	}

	lrSpeedup := base.Completions[0] / saba.Completions[0]
	prSpeedup := base.Completions[1] / saba.Completions[1]
	if lrSpeedup < 1.2 {
		t.Errorf("LR speedup = %.2f, want > 1.2 (paper: ~1.5)", lrSpeedup)
	}
	if prSpeedup < 0.80 {
		t.Errorf("PR slowdown too harsh: speedup %.2f", prSpeedup)
	}
	avg, err := metrics.GeoMean([]float64{lrSpeedup, prSpeedup})
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 1.0 {
		t.Errorf("average speedup = %.2f, want > 1 (Saba must win on average)", avg)
	}
	t.Logf("LR speedup %.2f, PR speedup %.2f, avg %.2f", lrSpeedup, prSpeedup, avg)
}

func TestDistributedCloseToCentralized(t *testing.T) {
	// Study 7: the distributed controller loses only a little performance
	// to the centralized one.
	top := testbedTop(t, 8)
	lr, _ := workload.ByName("LR")
	sort, _ := workload.ByName("Sort")
	jobs := []JobSpec{
		{Spec: lr, Nodes: top.Hosts()},
		{Spec: sort, Nodes: top.Hosts()},
	}
	tab := buildTable(t, []string{"LR", "Sort"}, 3)

	cent, err := RunJobs(top, jobs, RunConfig{Policy: PolicySaba, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunJobs(top, jobs, RunConfig{Policy: PolicySabaDistributed, Table: tab, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		rel := dist.Completions[i] / cent.Completions[i]
		if rel < 0.8 || rel > 1.25 {
			t.Errorf("job %d: distributed/centralized = %.2f, want within 25%%", i, rel)
		}
	}
}

func TestHomaAndSincroniaRun(t *testing.T) {
	top := testbedTop(t, 8)
	lr, _ := workload.ByName("LR")
	wc, _ := workload.ByName("WC")
	jobs := []JobSpec{
		{Spec: lr, Nodes: top.Hosts()},
		{Spec: wc, Nodes: top.Hosts()},
	}
	for _, p := range []Policy{PolicyHoma, PolicySincronia} {
		res, err := RunJobs(top, jobs, RunConfig{Policy: p})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		for i, c := range res.Completions {
			if c <= 0 {
				t.Errorf("%v: job %d completion %g", p, i, c)
			}
		}
		if res.Makespan <= 0 {
			t.Errorf("%v: zero makespan", p)
		}
	}
}

func TestDatasetScaleLengthensJobs(t *testing.T) {
	top := testbedTop(t, 8)
	sql, _ := workload.ByName("SQL")
	small, err := RunJobs(top, []JobSpec{{Spec: sql, Nodes: top.Hosts(), DatasetScale: 0.1}},
		RunConfig{Policy: PolicyIdealMaxMin})
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunJobs(top, []JobSpec{{Spec: sql, Nodes: top.Hosts(), DatasetScale: 10}},
		RunConfig{Policy: PolicyIdealMaxMin})
	if err != nil {
		t.Fatal(err)
	}
	if big.Completions[0] <= small.Completions[0]*10 {
		t.Errorf("10x dataset (%.1fs) should be >10x the 0.1x run (%.1fs) — scaling is mildly super-linear",
			big.Completions[0], small.Completions[0])
	}
}

func TestControllerCalcReported(t *testing.T) {
	top := testbedTop(t, 8)
	lr, _ := workload.ByName("LR")
	tab := buildTable(t, []string{"LR"}, 1)
	res, err := RunJobs(top, []JobSpec{{Spec: lr, Nodes: top.Hosts()}},
		RunConfig{Policy: PolicySaba, Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	if res.ControllerCalc < 0 {
		t.Error("negative controller calc time")
	}
}

func TestShufflePairs(t *testing.T) {
	nodes := []topology.NodeID{10, 11, 12, 13}
	pairs := shufflePairs(nodes, 2)
	if len(pairs) != 8 {
		t.Fatalf("pairs = %d, want 8", len(pairs))
	}
	// fanOut clamps at n-1.
	pairs = shufflePairs(nodes, 99)
	if len(pairs) != 12 {
		t.Fatalf("clamped pairs = %d, want 12", len(pairs))
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Error("self-pair generated")
		}
	}
}
