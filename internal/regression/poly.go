// Package regression implements the polynomial least-squares machinery
// behind Saba's sensitivity models (paper §4, Eq. 1).
//
// A sensitivity model for an application maps available bandwidth fraction
// b ∈ (0, 1] to predicted slowdown D(b) = c0 + c1·b + c2·b² + … + ck·bᵏ.
// The profiler fits the coefficients to measured (bandwidth, slowdown)
// samples; the controller later evaluates and differentiates the model
// when computing per-port weights (Eq. 2).
package regression

import (
	"errors"
	"fmt"
	"math"
)

// Sample is one profiling observation: the bandwidth fraction made
// available to the application and the measured slowdown relative to the
// unthrottled run.
type Sample struct {
	Bandwidth float64 // fraction of link capacity in (0, 1]
	Slowdown  float64 // completion time ratio, >= 1 in practice
}

// Polynomial is a dense univariate polynomial; Coeffs[i] multiplies xⁱ.
type Polynomial struct {
	Coeffs []float64
}

// Degree returns the degree of the polynomial (len(Coeffs)-1), or -1 for
// an empty polynomial.
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates the polynomial at x using Horner's method.
func (p Polynomial) Eval(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Derivative returns the first derivative polynomial.
func (p Polynomial) Derivative() Polynomial {
	if len(p.Coeffs) <= 1 {
		return Polynomial{Coeffs: []float64{0}}
	}
	d := make([]float64, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i++ {
		d[i-1] = float64(i) * p.Coeffs[i]
	}
	return Polynomial{Coeffs: d}
}

// String renders the polynomial in conventional order, e.g.
// "3.0000 - 2.0000·b + 1.0000·b^2".
func (p Polynomial) String() string {
	if len(p.Coeffs) == 0 {
		return "0"
	}
	s := fmt.Sprintf("%.4f", p.Coeffs[0])
	for i := 1; i < len(p.Coeffs); i++ {
		c := p.Coeffs[i]
		op := "+"
		if c < 0 {
			op = "-"
			c = -c
		}
		if i == 1 {
			s += fmt.Sprintf(" %s %.4f·b", op, c)
		} else {
			s += fmt.Sprintf(" %s %.4f·b^%d", op, c, i)
		}
	}
	return s
}

// Errors returned by Fit.
var (
	ErrTooFewSamples = errors.New("regression: need at least degree+1 samples")
	ErrBadDegree     = errors.New("regression: degree must be >= 0")
	// ErrIllConditioned flags degenerate sample sets: fewer distinct
	// bandwidths than coefficients, or normal equations whose pivots are
	// negligible relative to the matrix scale. Fits on such inputs would
	// produce wildly unstable coefficients, so they are refused.
	ErrIllConditioned = errors.New("regression: ill-conditioned normal equations (degenerate samples)")
)

// ErrSingular is the historical name for ErrIllConditioned; errors.Is
// treats them as the same error.
var ErrSingular = ErrIllConditioned

// Fit computes the least-squares polynomial of the given degree through
// the samples by solving the normal equations VᵀV c = Vᵀy with Gaussian
// elimination and partial pivoting, where V is the Vandermonde matrix of
// the sample bandwidths.
func Fit(samples []Sample, degree int) (Polynomial, error) {
	return FitWeighted(samples, degree, nil)
}

// FitWeighted is Fit with per-sample weights (nil means all 1). The
// profiler weights each sample by 1/slowdown², turning the fit into a
// relative-error minimization: slowdown curves span more than an order of
// magnitude between 5% and 100% bandwidth, and an unweighted low-degree
// fit lets the extreme low-bandwidth points bend the polynomial until it
// loses monotonicity in the operating range the controller optimizes
// over.
func FitWeighted(samples []Sample, degree int, weights []float64) (Polynomial, error) {
	if degree < 0 {
		return Polynomial{}, ErrBadDegree
	}
	if weights != nil && len(weights) != len(samples) {
		return Polynomial{}, fmt.Errorf("regression: %d weights for %d samples", len(weights), len(samples))
	}
	n := degree + 1
	if len(samples) < n {
		return Polynomial{}, fmt.Errorf("%w: degree %d with %d samples", ErrTooFewSamples, degree, len(samples))
	}
	// A degree-k fit needs k+1 distinct abscissae; duplicated bandwidths
	// contribute no new information and make the Vandermonde matrix rank
	// deficient. Detect it up front (O(n²) over a handful of samples) so
	// callers get a typed error rather than elimination noise.
	if distinctBandwidths(samples) < n {
		return Polynomial{}, fmt.Errorf("%w: degree %d with %d distinct bandwidths", ErrIllConditioned, degree, distinctBandwidths(samples))
	}

	// Build the weighted normal equations. A is n×n, rhs is n.
	// A[i][j] = Σ w·x^(i+j), rhs[i] = Σ w·y·x^i.
	pow := make([]float64, 2*n-1)
	rhs := make([]float64, n)
	for si, s := range samples {
		w := 1.0
		if weights != nil {
			w = weights[si]
			if w < 0 {
				return Polynomial{}, fmt.Errorf("regression: negative weight %g", w)
			}
		}
		xp := 1.0
		for k := 0; k < len(pow); k++ {
			pow[k] += w * xp
			if k < n {
				rhs[k] += w * s.Slowdown * xp
			}
			xp *= s.Bandwidth
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = pow[i+j]
		}
	}

	coeffs, err := solveLinear(a, rhs)
	if err != nil {
		return Polynomial{}, err
	}
	return Polynomial{Coeffs: coeffs}, nil
}

// distinctBandwidths counts samples with pairwise-distinct abscissae.
// Two bandwidths closer than 1e-9 (fractions live in (0,1], so this is
// a relative tolerance too) are treated as the same profiling point.
func distinctBandwidths(samples []Sample) int {
	distinct := 0
	for i, s := range samples {
		dup := false
		for j := 0; j < i; j++ {
			if math.Abs(samples[j].Bandwidth-s.Bandwidth) < 1e-9 {
				dup = true
				break
			}
		}
		if !dup {
			distinct++
		}
	}
	return distinct
}

// solveLinear solves a·x = b in place using Gaussian elimination with
// partial pivoting. a and b are clobbered. Pivots are judged against the
// matrix's own scale (max absolute entry), not an absolute epsilon: the
// normal equations of well-spread samples with large weights can have
// entries in the thousands, where an absolute 1e-12 test would pass a
// pivot that is numerically zero at that scale.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	scale := 0.0
	for _, row := range a {
		for _, v := range row {
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
	}
	if scale == 0 {
		return nil, ErrIllConditioned
	}
	tol := scale * float64(n) * 1e-13
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < tol {
			return nil, ErrIllConditioned
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := b[i]
		for j := i + 1; j < n; j++ {
			v -= a[i][j] * x[j]
		}
		x[i] = v / a[i][i]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of the model over the
// samples (paper §4.2). R²=1 means the model explains all variance; values
// can be negative for models worse than the mean predictor. If the samples
// have zero variance, RSquared returns 1 when the model is exact and 0
// otherwise.
func RSquared(p Polynomial, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	mean := 0.0
	for _, s := range samples {
		mean += s.Slowdown
	}
	mean /= float64(len(samples))

	ssRes, ssTot := 0.0, 0.0
	for _, s := range samples {
		r := s.Slowdown - p.Eval(s.Bandwidth)
		ssRes += r * r
		d := s.Slowdown - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes < 1e-18 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// CrossValidateR2 estimates out-of-sample R² over an independent
// evaluation set: it reuses the fitted model p but scores it against eval
// samples (used by the dataset-size / node-count studies, Fig. 6b/6c).
func CrossValidateR2(p Polynomial, eval []Sample) float64 {
	return RSquared(p, eval)
}

// validateGrid is the number of evaluation points ValidateSlowdownModel
// checks over [lo, 1]. 257 matches the solver's monotone-envelope grid,
// so a model that passes here is (up to grid resolution) exactly the
// curve the weight solve will use.
const validateGrid = 257

// ValidateSlowdownModel reports whether p is a physically plausible
// slowdown curve over bandwidth fractions [lo, 1]: finite, monotone
// non-increasing in bandwidth, and never below 1 (an application cannot
// run faster than its unthrottled baseline). lo <= 0 selects 0. The
// online profile learner refuses to promote refitted models that fail
// this check — a noisy or adversarial sample cloud can produce an
// excellent in-sample R² and still be nonsense outside the sampled
// window.
func ValidateSlowdownModel(p Polynomial, lo float64) bool {
	if len(p.Coeffs) == 0 {
		return false
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= 1 {
		lo = 0
	}
	prev := math.Inf(1)
	for i := 0; i < validateGrid; i++ {
		b := lo + (1-lo)*float64(i)/float64(validateGrid-1)
		v := p.Eval(b)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		if v < 1-1e-9 {
			return false
		}
		// Allow tiny upward wiggle from floating-point noise, nothing more.
		if v > prev+1e-9 {
			return false
		}
		prev = v
	}
	return true
}
