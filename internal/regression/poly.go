// Package regression implements the polynomial least-squares machinery
// behind Saba's sensitivity models (paper §4, Eq. 1).
//
// A sensitivity model for an application maps available bandwidth fraction
// b ∈ (0, 1] to predicted slowdown D(b) = c0 + c1·b + c2·b² + … + ck·bᵏ.
// The profiler fits the coefficients to measured (bandwidth, slowdown)
// samples; the controller later evaluates and differentiates the model
// when computing per-port weights (Eq. 2).
package regression

import (
	"errors"
	"fmt"
	"math"
)

// Sample is one profiling observation: the bandwidth fraction made
// available to the application and the measured slowdown relative to the
// unthrottled run.
type Sample struct {
	Bandwidth float64 // fraction of link capacity in (0, 1]
	Slowdown  float64 // completion time ratio, >= 1 in practice
}

// Polynomial is a dense univariate polynomial; Coeffs[i] multiplies xⁱ.
type Polynomial struct {
	Coeffs []float64
}

// Degree returns the degree of the polynomial (len(Coeffs)-1), or -1 for
// an empty polynomial.
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// Eval evaluates the polynomial at x using Horner's method.
func (p Polynomial) Eval(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Derivative returns the first derivative polynomial.
func (p Polynomial) Derivative() Polynomial {
	if len(p.Coeffs) <= 1 {
		return Polynomial{Coeffs: []float64{0}}
	}
	d := make([]float64, len(p.Coeffs)-1)
	for i := 1; i < len(p.Coeffs); i++ {
		d[i-1] = float64(i) * p.Coeffs[i]
	}
	return Polynomial{Coeffs: d}
}

// String renders the polynomial in conventional order, e.g.
// "3.0000 - 2.0000·b + 1.0000·b^2".
func (p Polynomial) String() string {
	if len(p.Coeffs) == 0 {
		return "0"
	}
	s := fmt.Sprintf("%.4f", p.Coeffs[0])
	for i := 1; i < len(p.Coeffs); i++ {
		c := p.Coeffs[i]
		op := "+"
		if c < 0 {
			op = "-"
			c = -c
		}
		if i == 1 {
			s += fmt.Sprintf(" %s %.4f·b", op, c)
		} else {
			s += fmt.Sprintf(" %s %.4f·b^%d", op, c, i)
		}
	}
	return s
}

// Errors returned by Fit.
var (
	ErrTooFewSamples = errors.New("regression: need at least degree+1 samples")
	ErrBadDegree     = errors.New("regression: degree must be >= 0")
	ErrSingular      = errors.New("regression: singular normal equations (degenerate samples)")
)

// Fit computes the least-squares polynomial of the given degree through
// the samples by solving the normal equations VᵀV c = Vᵀy with Gaussian
// elimination and partial pivoting, where V is the Vandermonde matrix of
// the sample bandwidths.
func Fit(samples []Sample, degree int) (Polynomial, error) {
	return FitWeighted(samples, degree, nil)
}

// FitWeighted is Fit with per-sample weights (nil means all 1). The
// profiler weights each sample by 1/slowdown², turning the fit into a
// relative-error minimization: slowdown curves span more than an order of
// magnitude between 5% and 100% bandwidth, and an unweighted low-degree
// fit lets the extreme low-bandwidth points bend the polynomial until it
// loses monotonicity in the operating range the controller optimizes
// over.
func FitWeighted(samples []Sample, degree int, weights []float64) (Polynomial, error) {
	if degree < 0 {
		return Polynomial{}, ErrBadDegree
	}
	if weights != nil && len(weights) != len(samples) {
		return Polynomial{}, fmt.Errorf("regression: %d weights for %d samples", len(weights), len(samples))
	}
	n := degree + 1
	if len(samples) < n {
		return Polynomial{}, fmt.Errorf("%w: degree %d with %d samples", ErrTooFewSamples, degree, len(samples))
	}

	// Build the weighted normal equations. A is n×n, rhs is n.
	// A[i][j] = Σ w·x^(i+j), rhs[i] = Σ w·y·x^i.
	pow := make([]float64, 2*n-1)
	rhs := make([]float64, n)
	for si, s := range samples {
		w := 1.0
		if weights != nil {
			w = weights[si]
			if w < 0 {
				return Polynomial{}, fmt.Errorf("regression: negative weight %g", w)
			}
		}
		xp := 1.0
		for k := 0; k < len(pow); k++ {
			pow[k] += w * xp
			if k < n {
				rhs[k] += w * s.Slowdown * xp
			}
			xp *= s.Bandwidth
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = pow[i+j]
		}
	}

	coeffs, err := solveLinear(a, rhs)
	if err != nil {
		return Polynomial{}, err
	}
	return Polynomial{Coeffs: coeffs}, nil
}

// solveLinear solves a·x = b in place using Gaussian elimination with
// partial pivoting. a and b are clobbered.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Partial pivot: pick the row with the largest magnitude in col.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := b[i]
		for j := i + 1; j < n; j++ {
			v -= a[i][j] * x[j]
		}
		x[i] = v / a[i][i]
	}
	return x, nil
}

// RSquared returns the coefficient of determination of the model over the
// samples (paper §4.2). R²=1 means the model explains all variance; values
// can be negative for models worse than the mean predictor. If the samples
// have zero variance, RSquared returns 1 when the model is exact and 0
// otherwise.
func RSquared(p Polynomial, samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	mean := 0.0
	for _, s := range samples {
		mean += s.Slowdown
	}
	mean /= float64(len(samples))

	ssRes, ssTot := 0.0, 0.0
	for _, s := range samples {
		r := s.Slowdown - p.Eval(s.Bandwidth)
		ssRes += r * r
		d := s.Slowdown - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes < 1e-18 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// CrossValidateR2 estimates out-of-sample R² over an independent
// evaluation set: it reuses the fitted model p but scores it against eval
// samples (used by the dataset-size / node-count studies, Fig. 6b/6c).
func CrossValidateR2(p Polynomial, eval []Sample) float64 {
	return RSquared(p, eval)
}
