package regression

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEvalHorner(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, -2, 3}} // 1 - 2x + 3x²
	tests := []struct {
		x, want float64
	}{
		{0, 1}, {1, 2}, {2, 9}, {-1, 6},
	}
	for _, tt := range tests {
		if got := p.Eval(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Eval(%g) = %g, want %g", tt.x, got, tt.want)
		}
	}
}

func TestEvalEmpty(t *testing.T) {
	var p Polynomial
	if got := p.Eval(5); got != 0 {
		t.Errorf("empty polynomial Eval = %g, want 0", got)
	}
	if p.Degree() != -1 {
		t.Errorf("empty polynomial Degree = %d, want -1", p.Degree())
	}
}

func TestDerivative(t *testing.T) {
	p := Polynomial{Coeffs: []float64{5, 3, -2, 1}} // 5 + 3x - 2x² + x³
	d := p.Derivative()
	want := []float64{3, -4, 3} // 3 - 4x + 3x²
	if len(d.Coeffs) != len(want) {
		t.Fatalf("Derivative coeffs = %v, want %v", d.Coeffs, want)
	}
	for i := range want {
		if math.Abs(d.Coeffs[i]-want[i]) > 1e-12 {
			t.Errorf("Derivative coeff[%d] = %g, want %g", i, d.Coeffs[i], want[i])
		}
	}
	// Derivative of a constant is zero.
	c := Polynomial{Coeffs: []float64{7}}
	dc := c.Derivative()
	if dc.Eval(3) != 0 {
		t.Error("derivative of constant should be 0")
	}
}

func TestFitExactPolynomial(t *testing.T) {
	// Fitting points generated from a known polynomial must recover it.
	truth := Polynomial{Coeffs: []float64{4.2, -3.5, 2.0, -0.5}}
	var samples []Sample
	for _, b := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		samples = append(samples, Sample{Bandwidth: b, Slowdown: truth.Eval(b)})
	}
	got, err := Fit(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Coeffs {
		if math.Abs(got.Coeffs[i]-truth.Coeffs[i]) > 1e-6 {
			t.Errorf("coeff[%d] = %g, want %g", i, got.Coeffs[i], truth.Coeffs[i])
		}
	}
	if r2 := RSquared(got, samples); r2 < 1-1e-9 {
		t.Errorf("R² of exact fit = %g, want ~1", r2)
	}
}

func TestFitLinear(t *testing.T) {
	// y = 2 + 3x exactly.
	samples := []Sample{{0.1, 2.3}, {0.5, 3.5}, {1.0, 5.0}}
	p, err := Fit(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Coeffs[0]-2) > 1e-9 || math.Abs(p.Coeffs[1]-3) > 1e-9 {
		t.Errorf("linear fit coeffs = %v, want [2 3]", p.Coeffs)
	}
}

func TestFitDegreeZero(t *testing.T) {
	samples := []Sample{{0.25, 2}, {0.5, 4}, {1, 6}}
	p, err := Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Coeffs[0]-4) > 1e-9 {
		t.Errorf("degree-0 fit = %g, want mean 4", p.Coeffs[0])
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]Sample{{1, 1}}, -1); err == nil {
		t.Error("negative degree should fail")
	}
	if _, err := Fit([]Sample{{1, 1}, {0.5, 2}}, 2); err == nil {
		t.Error("too few samples should fail")
	}
	// Duplicate x values make degree-1 normal equations singular.
	dup := []Sample{{0.5, 1}, {0.5, 2}, {0.5, 3}}
	if _, err := Fit(dup, 2); err == nil {
		t.Error("degenerate samples should fail")
	}
}

func TestHigherDegreeNeverWorseInSample(t *testing.T) {
	// In-sample R² is monotone non-decreasing in model degree: a degree-k+1
	// fit can always represent the degree-k optimum. Mirrors Fig. 6a's trend.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		var samples []Sample
		for _, b := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			samples = append(samples, Sample{
				Bandwidth: b,
				Slowdown:  1 + 3/(b+0.2) + rng.NormFloat64()*0.2,
			})
		}
		prev := math.Inf(-1)
		for k := 0; k <= 3; k++ {
			p, err := Fit(samples, k)
			if err != nil {
				t.Fatal(err)
			}
			r2 := RSquared(p, samples)
			if r2 < prev-1e-9 {
				t.Fatalf("trial %d: R² decreased from %g (k=%d) to %g (k=%d)", trial, prev, k-1, r2, k)
			}
			prev = r2
		}
	}
}

func TestRSquaredBounds(t *testing.T) {
	samples := []Sample{{0.1, 5}, {0.5, 2}, {1, 1}}
	p, err := Fit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2 := RSquared(p, samples)
	if r2 < 0 || r2 > 1+1e-12 {
		t.Errorf("in-sample R² of LSQ fit = %g, want within [0,1]", r2)
	}
	// Against an unrelated model, R² can be arbitrarily poor but finite.
	bad := Polynomial{Coeffs: []float64{100}}
	if r := RSquared(bad, samples); math.IsNaN(r) || r > 0 {
		t.Errorf("R² of terrible model = %g, want negative and finite", r)
	}
}

func TestRSquaredZeroVariance(t *testing.T) {
	flat := []Sample{{0.25, 2}, {0.5, 2}, {1, 2}}
	exact := Polynomial{Coeffs: []float64{2}}
	if r := RSquared(exact, flat); r != 1 {
		t.Errorf("R² of exact model on flat data = %g, want 1", r)
	}
	wrong := Polynomial{Coeffs: []float64{3}}
	if r := RSquared(wrong, flat); r != 0 {
		t.Errorf("R² of wrong model on flat data = %g, want 0", r)
	}
	if r := RSquared(exact, nil); r != 0 {
		t.Errorf("R² with no samples = %g, want 0", r)
	}
}

func TestFitResidualOrthogonality(t *testing.T) {
	// Property of least squares: residuals are orthogonal to each basis
	// vector (columns of the Vandermonde matrix).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var samples []Sample
		for _, b := range []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
			samples = append(samples, Sample{Bandwidth: b, Slowdown: 1 + 5*rng.Float64()})
		}
		p, err := Fit(samples, 2)
		if err != nil {
			return false
		}
		for k := 0; k <= 2; k++ {
			dot := 0.0
			for _, s := range samples {
				dot += (s.Slowdown - p.Eval(s.Bandwidth)) * math.Pow(s.Bandwidth, float64(k))
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPolynomialString(t *testing.T) {
	p := Polynomial{Coeffs: []float64{3, -2, 1}}
	s := p.String()
	if s != "3.0000 - 2.0000·b + 1.0000·b^2" {
		t.Errorf("String() = %q", s)
	}
	var empty Polynomial
	if empty.String() != "0" {
		t.Errorf("empty String() = %q, want 0", empty.String())
	}
}

func TestFitIllConditioned(t *testing.T) {
	tests := []struct {
		name    string
		samples []Sample
		degree  int
		wantErr bool
	}{
		{
			name:    "duplicate x, quadratic",
			samples: []Sample{{0.5, 1}, {0.5, 2}, {0.5, 3}},
			degree:  2,
			wantErr: true,
		},
		{
			name:    "two distinct x, quadratic",
			samples: []Sample{{0.25, 3}, {0.25, 3.1}, {0.75, 1.2}},
			degree:  2,
			wantErr: true,
		},
		{
			name:    "near-duplicate x below tolerance",
			samples: []Sample{{0.5, 2}, {0.5 + 1e-12, 2.1}},
			degree:  1,
			wantErr: true,
		},
		{
			name:    "duplicate x but enough distinct points",
			samples: []Sample{{0.25, 3}, {0.25, 3.1}, {0.5, 2}, {1, 1}},
			degree:  2,
			wantErr: false,
		},
		{
			name:    "well-spread profile points",
			samples: []Sample{{0.05, 9}, {0.1, 6}, {0.25, 3.5}, {0.5, 2}, {0.75, 1.4}, {0.9, 1.1}, {1, 1}},
			degree:  3,
			wantErr: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Fit(tt.samples, tt.degree)
			if tt.wantErr {
				if !errors.Is(err, ErrIllConditioned) {
					t.Fatalf("Fit err = %v, want ErrIllConditioned", err)
				}
				if !errors.Is(err, ErrSingular) {
					t.Fatal("ErrSingular alias must match ErrIllConditioned")
				}
			} else if err != nil {
				t.Fatalf("Fit err = %v, want nil", err)
			}
		})
	}
}

func TestSolveLinearNearSingular(t *testing.T) {
	tests := []struct {
		name    string
		a       [][]float64
		b       []float64
		wantErr bool
	}{
		{
			name:    "exactly singular rows",
			a:       [][]float64{{1, 2}, {2, 4}},
			b:       []float64{1, 2},
			wantErr: true,
		},
		{
			name: "near-singular relative to scale",
			// Second row differs from a multiple of the first by ~1e-15
			// of the matrix scale — numerically rank one at this scale.
			a:       [][]float64{{1e6, 2e6}, {2e6, 4e6 + 1e-9}},
			b:       []float64{1, 2},
			wantErr: true,
		},
		{
			name:    "zero matrix",
			a:       [][]float64{{0, 0}, {0, 0}},
			b:       []float64{0, 0},
			wantErr: true,
		},
		{
			name:    "well-conditioned",
			a:       [][]float64{{2, 1}, {1, 3}},
			b:       []float64{3, 5},
			wantErr: false,
		},
		{
			name: "small but well-conditioned entries",
			// An absolute 1e-12 pivot threshold would wrongly reject this.
			a:       [][]float64{{2e-13, 1e-13}, {1e-13, 3e-13}},
			b:       []float64{3e-13, 5e-13},
			wantErr: false,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x, err := solveLinear(tt.a, tt.b)
			if tt.wantErr {
				if !errors.Is(err, ErrIllConditioned) {
					t.Fatalf("solveLinear err = %v, want ErrIllConditioned", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("solveLinear err = %v, want nil", err)
			}
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("solution contains non-finite value: %v", x)
				}
			}
		})
	}
}

func TestValidateSlowdownModel(t *testing.T) {
	tests := []struct {
		name string
		p    Polynomial
		lo   float64
		want bool
	}{
		{"sane decreasing curve", Polynomial{Coeffs: []float64{5.2, -6, 1.8}}, 0, true},
		{"constant one", Polynomial{Coeffs: []float64{1}}, 0, true},
		{"dips below one", Polynomial{Coeffs: []float64{2, -1.5}}, 0, false},
		{"increasing in bandwidth", Polynomial{Coeffs: []float64{1, 0.5}}, 0, false},
		{"non-monotone bump", Polynomial{Coeffs: []float64{3, -8, 6}}, 0, false},
		{"empty polynomial", Polynomial{}, 0, false},
		{"NaN coefficient", Polynomial{Coeffs: []float64{math.NaN(), 1}}, 0, false},
		// 2 + 0.1b - b² peaks at b=0.05: non-monotone from 0, but monotone
		// decreasing and >= 1 over [0.1, 1].
		{"non-monotone near zero", Polynomial{Coeffs: []float64{2, 0.1, -1}}, 0, false},
		{"lo excludes the bump", Polynomial{Coeffs: []float64{2, 0.1, -1}}, 0.1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ValidateSlowdownModel(tt.p, tt.lo); got != tt.want {
				t.Errorf("ValidateSlowdownModel(%v, lo=%g) = %v, want %v", tt.p.Coeffs, tt.lo, got, tt.want)
			}
		})
	}
}

func TestCrossValidateR2(t *testing.T) {
	truth := Polynomial{Coeffs: []float64{1, 0, 4}}
	var train, eval []Sample
	for _, b := range []float64{0.05, 0.25, 0.5, 0.75, 1.0} {
		train = append(train, Sample{b, truth.Eval(b)})
	}
	for _, b := range []float64{0.1, 0.4, 0.9} {
		eval = append(eval, Sample{b, truth.Eval(b)})
	}
	p, err := Fit(train, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r := CrossValidateR2(p, eval); r < 1-1e-9 {
		t.Errorf("cross-validated R² on clean data = %g, want ~1", r)
	}
}
