// Package sabalib is the Saba library of paper §6: the ~350-LOC shim
// applications link against to become Saba-compliant. It has the two
// components the paper describes — a connection manager that talks to the
// controller over RPC and caches the assigned Priority Level, and the
// four-call software interface of Fig. 7 (register, conn_create,
// conn_destroy, deregister). Connections are created with the cached PL
// attached, so connection setup adds no control-plane round-trip beyond
// the paper's "inform the controller" notification.
//
// The connection manager is fault tolerant: with Options.Degrade set,
// a controller that stays unreachable after the transport's retries
// does not block the application. The library falls back to a local
// default PL — traffic lands in the switches' default queue, which is
// exactly the baseline fair-share the paper's FECN baseline provides —
// queues the registration and connection operations, and a background
// reconciler replays them in order once the controller answers again.
package sabalib

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"saba/internal/controller"
	"saba/internal/rpc"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// libMetrics holds the connection manager's instruments.
type libMetrics struct {
	reg             *telemetry.Registry
	degradedEntries *telemetry.Counter // transitions into fair-share fallback
	queuedOps       *telemetry.Counter // operations queued while degraded
	replayedOps     *telemetry.Counter // queued operations the reconciler landed
	droppedOps      *telemetry.Counter // replays the controller rejected terminally
	droppedObs      *telemetry.Counter // slowdown observations dropped while degraded
	rejectedOps     *telemetry.Counter // sabalib.admission_rejected (all reasons)
	modeTransitions *telemetry.Counter // sabalib.mode_transitions (all mode changes)
	modeTo          [modeCount]*telemetry.Counter
}

func newLibMetrics(reg *telemetry.Registry) libMetrics {
	m := libMetrics{
		reg:             reg,
		degradedEntries: reg.Counter("sabalib.degraded_entries"),
		queuedOps:       reg.Counter("sabalib.queued_ops"),
		replayedOps:     reg.Counter("sabalib.replayed_ops"),
		droppedOps:      reg.Counter("sabalib.dropped_ops"),
		droppedObs:      reg.Counter("sabalib.dropped_observations"),
		rejectedOps:     reg.Counter("sabalib.admission_rejected"),
		modeTransitions: reg.Counter("sabalib.mode_transitions"),
	}
	for mode := Mode(0); mode < modeCount; mode++ {
		m.modeTo[mode] = reg.Counter(telemetry.Label("sabalib.mode_transitions", "to", mode.String()))
	}
	return m
}

// rejected counts one admission rejection under its reason label. The
// registry's Counter is get-or-create, so unforeseen reasons (new
// controller rungs) show up without a sabalib release.
func (m *libMetrics) rejected(reason string) {
	m.rejectedOps.Inc()
	m.reg.Counter(telemetry.Label("sabalib.admission_rejected", "reason", reason)).Inc()
}

// Transport abstracts how the connection manager reaches the controller:
// over the wire (RPCTransport) or in-process for simulations
// (DirectTransport).
type Transport interface {
	Register(name string) (controller.AppID, int, error)
	Deregister(id controller.AppID) error
	ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error)
	ConnDestroy(cid controller.ConnID) error
	PL(id controller.AppID) (int, error)
	ObserveSlowdown(id controller.AppID, bwFraction, observed float64) (bool, error)
	Close() error
}

// TenantTransport is the optional Transport extension for the tenant
// guarantee layer: registering tenants with guaranteed minimums and
// registering applications under them. Both standard transports
// implement it; whether the far end does depends on the deployment
// (Mesh answers controller.ErrNoTenants).
type TenantTransport interface {
	RegisterTenant(name string, min float64) (controller.TenantID, error)
	RegisterIn(tenant controller.TenantID, name string) (controller.AppID, int, error)
}

// RPCTransport reaches a controller service over TCP.
type RPCTransport struct {
	client *rpc.Client
}

// DialController connects to a controller's RPC endpoint.
func DialController(addr string, timeout time.Duration) (*RPCTransport, error) {
	c, err := rpc.Dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("sabalib: dial controller: %w", err)
	}
	return &RPCTransport{client: c}, nil
}

// DialControllerOptions creates a transport with explicit RPC
// fault-tolerance options (retries, backoff, fault-injecting dialer).
// The connection is lazy — a currently-unreachable controller does not
// fail construction, which the degraded mode depends on.
func DialControllerOptions(addr string, o rpc.Options) *RPCTransport {
	return &RPCTransport{client: rpc.NewClient(addr, o)}
}

// Register implements Transport.
func (t *RPCTransport) Register(name string) (controller.AppID, int, error) {
	var reply controller.RegisterReply
	err := t.client.Call(controller.MethodAppRegister, controller.RegisterArgs{Name: name}, &reply)
	if err != nil {
		return 0, 0, err
	}
	return reply.App, reply.PL, nil
}

// Deregister implements Transport.
func (t *RPCTransport) Deregister(id controller.AppID) error {
	return t.client.Call(controller.MethodAppDeregister, controller.DeregisterArgs{App: id}, nil)
}

// ConnCreate implements Transport.
func (t *RPCTransport) ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error) {
	var reply controller.ConnCreateReply
	err := t.client.Call(controller.MethodConnCreate, controller.ConnCreateArgs{App: id, Src: src, Dst: dst}, &reply)
	if err != nil {
		return 0, err
	}
	return reply.Conn, nil
}

// ConnDestroy implements Transport.
func (t *RPCTransport) ConnDestroy(cid controller.ConnID) error {
	return t.client.Call(controller.MethodConnDestroy, controller.ConnDestroyArgs{Conn: cid}, nil)
}

// PL implements Transport.
func (t *RPCTransport) PL(id controller.AppID) (int, error) {
	var reply controller.PLReply
	err := t.client.Call(controller.MethodAppPL, controller.PLArgs{App: id}, &reply)
	if err != nil {
		return 0, err
	}
	return reply.PL, nil
}

// RegisterTenant implements TenantTransport.
func (t *RPCTransport) RegisterTenant(name string, min float64) (controller.TenantID, error) {
	var reply controller.TenantRegisterReply
	err := t.client.Call(controller.MethodTenantRegister,
		controller.TenantRegisterArgs{Name: name, Min: min}, &reply)
	if err != nil {
		return 0, err
	}
	return reply.Tenant, nil
}

// RegisterIn implements TenantTransport.
func (t *RPCTransport) RegisterIn(tenant controller.TenantID, name string) (controller.AppID, int, error) {
	var reply controller.RegisterReply
	err := t.client.Call(controller.MethodAppRegisterIn,
		controller.RegisterInArgs{Tenant: tenant, Name: name}, &reply)
	if err != nil {
		return 0, 0, err
	}
	return reply.App, reply.PL, nil
}

// ObserveSlowdown implements Transport.
func (t *RPCTransport) ObserveSlowdown(id controller.AppID, bwFraction, observed float64) (bool, error) {
	var reply controller.ObserveReply
	err := t.client.Call(controller.MethodObserveSlowdown,
		controller.ObserveArgs{App: id, Fraction: bwFraction, Slowdown: observed}, &reply)
	if err != nil {
		return false, err
	}
	return reply.Changed, nil
}

// Close implements Transport.
func (t *RPCTransport) Close() error { return t.client.Close() }

// DirectTransport calls a controller API in-process (used by the
// simulator harness, where the data plane is simulated but the control
// logic is the real thing).
type DirectTransport struct {
	API controller.API
}

// Register implements Transport.
func (t *DirectTransport) Register(name string) (controller.AppID, int, error) {
	return t.API.Register(name)
}

// Deregister implements Transport.
func (t *DirectTransport) Deregister(id controller.AppID) error { return t.API.Deregister(id) }

// ConnCreate implements Transport.
func (t *DirectTransport) ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error) {
	return t.API.ConnCreate(id, src, dst)
}

// ConnDestroy implements Transport.
func (t *DirectTransport) ConnDestroy(cid controller.ConnID) error {
	return t.API.ConnDestroy(cid)
}

// PL implements Transport.
func (t *DirectTransport) PL(id controller.AppID) (int, error) { return t.API.PL(id) }

// RegisterTenant implements TenantTransport. A deployment without the
// guarantee layer (Mesh) returns controller.ErrNoTenants, mirroring
// what the RPC service answers.
func (t *DirectTransport) RegisterTenant(name string, min float64) (controller.TenantID, error) {
	tr, ok := t.API.(controller.TenantRegistrar)
	if !ok {
		return 0, controller.ErrNoTenants
	}
	return tr.RegisterTenant(name, min)
}

// RegisterIn implements TenantTransport.
func (t *DirectTransport) RegisterIn(tenant controller.TenantID, name string) (controller.AppID, int, error) {
	tr, ok := t.API.(controller.TenantRegistrar)
	if !ok {
		return 0, 0, controller.ErrNoTenants
	}
	return tr.RegisterIn(tenant, name)
}

// ObserveSlowdown implements Transport. A deployment without runtime
// feedback (Mesh) returns controller.ErrNoObserver, mirroring what the
// RPC service answers.
func (t *DirectTransport) ObserveSlowdown(id controller.AppID, bwFraction, observed float64) (bool, error) {
	obs, ok := t.API.(controller.SlowdownObserver)
	if !ok {
		return false, controller.ErrNoObserver
	}
	return obs.ObserveSlowdown(id, bwFraction, observed)
}

// Close implements Transport.
func (t *DirectTransport) Close() error { return nil }

// Both standard transports carry the tenant extension.
var (
	_ TenantTransport = (*RPCTransport)(nil)
	_ TenantTransport = (*DirectTransport)(nil)
)

// Conn is a Saba-managed connection: the application-visible handle plus
// the Service Level (PL) the connection manager stamped on it. While the
// controller is unreachable, connections carry a provisional negative ID
// until the reconciler replays them.
type Conn struct {
	ID       controller.ConnID
	Src, Dst topology.NodeID
	SL       int // the PL carried by every packet of this connection
	lib      *Library
	closed   bool
}

// Options configures the connection manager's failure handling.
type Options struct {
	// Degrade enables graceful degradation: when the controller is
	// unreachable (transport errors rpc.Retryable classifies as such),
	// registration and connection operations succeed locally at
	// FallbackPL and are queued for replay. Off by default: without it,
	// transport errors surface to the caller unchanged.
	Degrade bool
	// FallbackPL is the PL stamped on connections made while degraded.
	// The default 0 is indistinguishable from unprioritized traffic: the
	// switch's default queue serves it fair-share, the FECN baseline.
	FallbackPL int
	// RetryInterval is how often the background reconciler re-tries the
	// controller. 0 selects 100ms.
	RetryInterval time.Duration
	// Telemetry is the registry the library reports into. nil selects
	// telemetry.Default.
	Telemetry *telemetry.Registry
	// Decentral configures the controller-free deployment mode (see
	// decentral.go): the library reads broadcast telemetry signals
	// instead of controller plans. Required for NewDecentral; optional
	// otherwise (a controller-backed library may also carry it as a
	// last-resort path).
	Decentral *DecentralOptions
}

// Library is the connection manager: one per application process.
type Library struct {
	mu         sync.Mutex
	transport  Transport
	opts       Options
	app        controller.AppID
	appName    string
	tenant     controller.TenantID // 0 = untenanted
	pl         int
	registered bool
	conns      map[controller.ConnID]*Conn

	// Degraded-mode state: queued operations in submission order plus the
	// reconciler's lifecycle handles.
	degraded     bool
	pendingReg   bool
	pendingConns []*Conn             // provisional conns awaiting replay
	pendingDests []controller.ConnID // controller-known conns to destroy
	pendingDereg bool
	dropped      int // replay ops rejected by the controller (terminal)
	nextLocal    controller.ConnID
	reconRunning bool
	stop         chan struct{}
	wg           sync.WaitGroup
	closed       bool
	tel          libMetrics

	// Deployment-mode state (see decentral.go): which path is currently
	// primary, plus the decentralized share iteration's memory.
	mode      Mode
	prevShare float64 // last decentralized share (0 = cold)
	lastApps  int     // port population from the last fresh signal
}

// New creates a library instance over a transport with failure handling
// disabled (errors surface to the caller).
func New(t Transport) *Library {
	return NewWithOptions(t, Options{})
}

// NewWithOptions creates a library instance with explicit failure
// handling.
func NewWithOptions(t Transport, o Options) *Library {
	if o.RetryInterval <= 0 {
		o.RetryInterval = 100 * time.Millisecond
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.Default
	}
	return &Library{
		transport: t,
		opts:      o,
		conns:     map[controller.ConnID]*Conn{},
		stop:      make(chan struct{}),
		tel:       newLibMetrics(o.Telemetry),
	}
}

// Errors returned by the library.
var (
	ErrNotRegistered     = errors.New("sabalib: application not registered")
	ErrAlreadyRegistered = errors.New("sabalib: application already registered")
	ErrConnClosed        = errors.New("sabalib: connection already destroyed")
	ErrLiveConns         = errors.New("sabalib: connections still open")
	// ErrDegraded reports that the requested datum is unavailable while
	// the controller is unreachable (e.g. the controller-assigned app ID
	// before the registration has been replayed).
	ErrDegraded = errors.New("sabalib: controller unreachable, running degraded at fair share")
)

// unreachableLocked reports whether err should trigger degradation
// rather than surfacing. Admission rejections never qualify: the
// controller answered — with a "no" — so queueing the operation as a
// degraded fallback would re-submit work the controller just shed.
func (l *Library) unreachableLocked(err error) bool {
	return l.opts.Degrade && rpc.Retryable(err)
}

// noteRejectionLocked classifies an admission rejection (typed, or
// string-flattened across the RPC boundary) and counts it under
// sabalib.admission_rejected with its reason label — a separate ledger
// from the degraded-fallback counters, since a rejection is the
// controller shedding load, not the library losing the controller.
// Reports whether err was a rejection.
func (l *Library) noteRejectionLocked(err error) bool {
	if re, ok := controller.AsRejected(err); ok {
		l.tel.rejected(re.Reason)
		return true
	}
	if controller.IsInfeasible(err) {
		l.tel.rejected("infeasible")
		return true
	}
	return false
}

// RetryAfter extracts the controller's advisory backoff from an
// admission-rejected error, in whatever form it reached the caller
// (typed locally, string-flattened over RPC). Callers that fail fast on
// rejection use it to schedule the re-attempt instead of hammering an
// overloaded controller.
func RetryAfter(err error) (time.Duration, bool) {
	if re, ok := controller.AsRejected(err); ok {
		return re.RetryAfter, true
	}
	return 0, false
}

// IsRejected reports whether err is a controller admission rejection
// (rate-limited or shed), as opposed to an unreachable controller or a
// permanent failure.
func IsRejected(err error) bool {
	_, ok := controller.AsRejected(err)
	return ok
}

// Register performs saba_app_register (Fig. 7 ①-③): it announces the
// application and caches the PL for future connections. With degradation
// enabled, an unreachable controller leaves the application registered
// locally at the fallback PL; the reconciler completes the registration
// in the background.
func (l *Library) Register(appName string) error {
	return l.registerAs(0, appName)
}

// RegisterTenant admits (idempotently, by name) a tenant with a
// guaranteed minimum share on the controller. It is a synchronous
// control decision and is never queued for replay: an infeasible or
// rate-limited guarantee surfaces typed (see IsRejected / RetryAfter),
// and an unreachable controller surfaces the transport error — a
// locally-faked admission would be a promise nobody is backing.
func (l *Library) RegisterTenant(name string, min float64) (controller.TenantID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.transport == nil {
		return 0, controller.ErrNoTenants
	}
	tt, ok := l.transport.(TenantTransport)
	if !ok {
		return 0, controller.ErrNoTenants
	}
	tid, err := tt.RegisterTenant(name, min)
	if err != nil {
		l.noteRejectionLocked(err)
		return 0, fmt.Errorf("sabalib: register tenant %s: %w", name, err)
	}
	return tid, nil
}

// RegisterUnder performs saba_app_register under a tenant, so the
// application's allocation counts toward the tenant's guaranteed
// minimum. Degradation semantics match Register: an unreachable
// controller leaves the application running at the fallback PL and the
// reconciler replays the tenant-scoped registration.
func (l *Library) RegisterUnder(tenant controller.TenantID, appName string) error {
	if tenant == 0 {
		return l.registerAs(0, appName)
	}
	if l.transport == nil {
		return controller.ErrNoTenants
	}
	if _, ok := l.transport.(TenantTransport); !ok {
		return controller.ErrNoTenants
	}
	return l.registerAs(tenant, appName)
}

// transportRegister issues the right registration call for the tenant
// binding.
func (l *Library) transportRegister(tenant controller.TenantID, name string) (controller.AppID, int, error) {
	if tenant != 0 {
		return l.transport.(TenantTransport).RegisterIn(tenant, name)
	}
	return l.transport.Register(name)
}

func (l *Library) registerAs(tenant controller.TenantID, appName string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.registered {
		return ErrAlreadyRegistered
	}
	if l.transport == nil {
		// Controller-free deployment: registration is purely local. No
		// replay is queued — there is no controller to replay against.
		l.appName = appName
		l.pl = l.opts.FallbackPL
		l.registered = true
		return nil
	}
	id, pl, err := l.transportRegister(tenant, appName)
	if err == nil {
		l.app = id
		l.appName = appName
		l.tenant = tenant
		l.pl = pl
		l.registered = true
		return nil
	}
	if !l.unreachableLocked(err) {
		l.noteRejectionLocked(err)
		return fmt.Errorf("sabalib: register %s: %w", appName, err)
	}
	l.app = 0
	l.appName = appName
	l.pl = l.opts.FallbackPL
	l.registered = true
	if !l.degraded {
		l.degraded = true
		l.tel.degradedEntries.Inc()
	}
	l.setModeLocked(ModeDegraded)
	l.pendingReg = true
	l.tel.queuedOps.Inc()
	l.startReconcilerLocked()
	return nil
}

// PL returns the cached priority level (the fallback PL while degraded).
func (l *Library) PL() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return 0, ErrNotRegistered
	}
	return l.pl, nil
}

// RefreshPL re-reads the priority level from the controller: a burst of
// registrations after ours can re-cluster and move us to a different PL.
// While degraded it returns the cached PL without a round trip.
func (l *Library) RefreshPL() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return 0, ErrNotRegistered
	}
	if l.degraded || l.transport == nil {
		return l.pl, nil
	}
	pl, err := l.transport.PL(l.app)
	if err != nil {
		if l.unreachableLocked(err) {
			l.enterDegradedLocked()
			return l.pl, nil
		}
		return 0, fmt.Errorf("sabalib: refresh PL: %w", err)
	}
	l.pl = pl
	return pl, nil
}

// App returns the controller-assigned application ID. While the
// registration is still queued it returns ErrDegraded.
func (l *Library) App() (controller.AppID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return 0, ErrNotRegistered
	}
	if l.pendingReg {
		return 0, ErrDegraded
	}
	return l.app, nil
}

// ReportSlowdown feeds one runtime measurement window upstream: the
// bandwidth fraction the application saw and the slowdown relative to
// its unthrottled baseline (the same normalization as the profiler's
// samples). The controller cross-checks it against the sensitivity model
// and drives the drift quarantine / online profile learner. It returns
// whether the observation changed the allocation.
//
// Unlike registrations and connection ops, observations are perishable:
// a measurement describes a past window, and replaying stale windows
// after an outage would feed the drift detector fiction. While degraded
// (or when the registration is still queued, so no controller-side app
// ID exists) observations are therefore dropped, not queued.
func (l *Library) ReportSlowdown(bwFraction, observed float64) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return false, ErrNotRegistered
	}
	if l.degraded || l.pendingReg || l.transport == nil {
		l.tel.droppedObs.Inc()
		return false, nil
	}
	changed, err := l.transport.ObserveSlowdown(l.app, bwFraction, observed)
	if err != nil {
		if l.unreachableLocked(err) {
			l.enterDegradedLocked()
			l.tel.droppedObs.Inc()
			return false, nil
		}
		return false, fmt.Errorf("sabalib: observe_slowdown: %w", err)
	}
	return changed, nil
}

// Degraded reports whether the library is currently in the fair-share
// fallback mode.
func (l *Library) Degraded() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.degraded
}

// PendingOps returns how many queued operations await replay.
func (l *Library) PendingOps() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.pendingConns) + len(l.pendingDests)
	if l.pendingReg {
		n++
	}
	if l.pendingDereg {
		n++
	}
	return n
}

// DroppedOps returns how many queued operations the controller rejected
// terminally during replay (e.g. an unroutable connection); these are
// discarded rather than retried forever.
func (l *Library) DroppedOps() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// ConnCreate performs saba_conn_create (Fig. 7 ④-⑦): the connection is
// created with the cached PL (no extra latency on the data path) and the
// controller is informed so it can reallocate. While degraded the
// connection proceeds at the fallback PL and the notification is queued.
func (l *Library) ConnCreate(src, dst topology.NodeID) (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return nil, ErrNotRegistered
	}
	if l.transport == nil {
		// Controller-free: the connection exists only host-side. It gets a
		// local ID without entering the replay queue (nothing will ever
		// drain it).
		l.nextLocal--
		c := &Conn{ID: l.nextLocal, Src: src, Dst: dst, SL: l.pl, lib: l}
		l.conns[c.ID] = c
		return c, nil
	}
	if l.degraded {
		return l.localConnLocked(src, dst), nil
	}
	cid, err := l.transport.ConnCreate(l.app, src, dst)
	if err != nil {
		if l.unreachableLocked(err) {
			l.enterDegradedLocked()
			return l.localConnLocked(src, dst), nil
		}
		// A rejection fails fast and typed — it is never converted into a
		// degraded local connection, because the controller explicitly
		// declined the work (RetryAfter recovers the advisory backoff).
		l.noteRejectionLocked(err)
		return nil, fmt.Errorf("sabalib: conn_create: %w", err)
	}
	c := &Conn{ID: cid, Src: src, Dst: dst, SL: l.pl, lib: l}
	l.conns[cid] = c
	return c, nil
}

// localConnLocked creates a provisional connection while degraded: it
// gets a negative local ID and the current cached PL (the fallback if we
// never reached the controller), and queues the create for replay.
func (l *Library) localConnLocked(src, dst topology.NodeID) *Conn {
	l.nextLocal--
	c := &Conn{ID: l.nextLocal, Src: src, Dst: dst, SL: l.pl, lib: l}
	l.conns[c.ID] = c
	l.pendingConns = append(l.pendingConns, c)
	l.tel.queuedOps.Inc()
	return c
}

// enterDegradedLocked flips to degraded mode and ensures the reconciler
// is running.
func (l *Library) enterDegradedLocked() {
	if !l.degraded {
		l.degraded = true
		l.tel.degradedEntries.Inc()
	}
	l.setModeLocked(ModeDegraded)
	l.startReconcilerLocked()
}

// Destroy performs saba_conn_destroy (Fig. 7 ⑧-⑪). A provisional
// connection that never reached the controller is torn down locally; a
// controller-known connection whose destroy can't be delivered is
// closed locally and the destroy queued.
func (c *Conn) Destroy() error {
	l := c.lib
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	if c.ID < 0 {
		// Still provisional: the reconciler skips closed pending conns.
		c.closed = true
		delete(l.conns, c.ID)
		return nil
	}
	if err := l.transport.ConnDestroy(c.ID); err != nil {
		if !l.unreachableLocked(err) {
			return fmt.Errorf("sabalib: conn_destroy: %w", err)
		}
		c.closed = true
		delete(l.conns, c.ID)
		l.pendingDests = append(l.pendingDests, c.ID)
		l.tel.queuedOps.Inc()
		l.enterDegradedLocked()
		return nil
	}
	c.closed = true
	delete(l.conns, c.ID)
	return nil
}

// OpenConns returns the number of live connections.
func (l *Library) OpenConns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}

// Deregister performs saba_app_deregister (Fig. 7 ⑫-⑬). All connections
// must have been destroyed first. While degraded the deregistration is
// queued behind the other replays.
func (l *Library) Deregister() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return ErrNotRegistered
	}
	if len(l.conns) > 0 {
		return fmt.Errorf("%w: %d", ErrLiveConns, len(l.conns))
	}
	if l.transport == nil {
		l.registered = false
		return nil
	}
	if l.degraded {
		if l.pendingReg && len(l.pendingConns) == 0 && len(l.pendingDests) == 0 {
			// The controller never saw us: nothing to undo remotely.
			l.pendingReg = false
		} else {
			l.pendingDereg = true
			l.tel.queuedOps.Inc()
		}
		l.registered = false
		return nil
	}
	if err := l.transport.Deregister(l.app); err != nil {
		if l.unreachableLocked(err) {
			l.pendingDereg = true
			l.tel.queuedOps.Inc()
			l.registered = false
			l.enterDegradedLocked()
			return nil
		}
		return fmt.Errorf("sabalib: deregister: %w", err)
	}
	l.registered = false
	return nil
}

// Close stops the reconciler and releases the transport. A registered
// application is deregistered best-effort first.
func (l *Library) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.stop)
	registered := l.registered && !l.degraded && len(l.conns) == 0
	app := l.app
	l.mu.Unlock()
	l.wg.Wait()
	if l.transport == nil {
		return nil
	}
	if registered {
		// Best effort; the controller GCs state on connection loss anyway.
		_ = l.transport.Deregister(app)
	}
	return l.transport.Close()
}

// startReconcilerLocked launches the background replay goroutine if it
// isn't already running.
func (l *Library) startReconcilerLocked() {
	if l.reconRunning || l.closed {
		return
	}
	l.reconRunning = true
	l.wg.Add(1)
	go l.reconcile()
}

// reconcile periodically replays queued operations until the queue
// drains, then exits (a later failure starts a fresh reconciler).
func (l *Library) reconcile() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.opts.RetryInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			l.mu.Lock()
			l.reconRunning = false
			l.mu.Unlock()
			return
		case <-ticker.C:
		}
		if l.reconcileStep() {
			return
		}
	}
}

// reconcileStep attempts one full replay sweep. It returns true once
// everything is drained and the library has left degraded mode.
func (l *Library) reconcileStep() bool {
	// 1. Registration first: replayed conns need the app ID. The replay
	// keeps the tenant binding the application registered under.
	l.mu.Lock()
	pendingReg, name, tenant := l.pendingReg, l.appName, l.tenant
	l.mu.Unlock()
	if pendingReg {
		id, pl, err := l.transportRegister(tenant, name)
		if err != nil {
			return false // still unreachable (or rejected): keep trying
		}
		l.mu.Lock()
		l.app = id
		// Future connections get the controller's PL; connections made
		// while degraded keep the fallback SL their packets already carry.
		l.pl = pl
		l.pendingReg = false
		l.tel.replayedOps.Inc()
		if !l.registered {
			// Deregistered locally while the replay was in flight: undo
			// the registration that just landed.
			l.pendingDereg = true
			l.tel.queuedOps.Inc()
		}
		l.mu.Unlock()
	}
	// 2. Connection creates, in submission order.
	for {
		l.mu.Lock()
		if len(l.pendingConns) == 0 {
			l.mu.Unlock()
			break
		}
		c := l.pendingConns[0]
		if c.closed {
			// Destroyed before it ever reached the controller.
			l.pendingConns = l.pendingConns[1:]
			l.mu.Unlock()
			continue
		}
		app := l.app
		l.mu.Unlock()
		cid, err := l.transport.ConnCreate(app, c.Src, c.Dst)
		l.mu.Lock()
		if err != nil {
			if rpc.Retryable(err) {
				l.mu.Unlock()
				return false
			}
			// Terminal rejection (e.g. unroutable): drop the op. An
			// admission rejection is additionally counted under its own
			// ledger, distinct from the generic replay drop.
			l.noteRejectionLocked(err)
			l.pendingConns = l.pendingConns[1:]
			delete(l.conns, c.ID)
			c.closed = true
			l.dropped++
			l.tel.droppedOps.Inc()
			l.mu.Unlock()
			continue
		}
		l.pendingConns = l.pendingConns[1:]
		l.tel.replayedOps.Inc()
		if c.closed {
			// Raced with Destroy while the create was in flight.
			l.pendingDests = append(l.pendingDests, cid)
			l.tel.queuedOps.Inc()
		} else {
			delete(l.conns, c.ID)
			c.ID = cid
			l.conns[cid] = c
		}
		l.mu.Unlock()
	}
	// 3. Destroys of controller-known connections.
	for {
		l.mu.Lock()
		if len(l.pendingDests) == 0 {
			l.mu.Unlock()
			break
		}
		cid := l.pendingDests[0]
		l.mu.Unlock()
		err := l.transport.ConnDestroy(cid)
		l.mu.Lock()
		if err != nil && rpc.Retryable(err) {
			l.mu.Unlock()
			return false
		}
		if err != nil {
			l.dropped++
			l.tel.droppedOps.Inc()
		} else {
			l.tel.replayedOps.Inc()
		}
		l.pendingDests = l.pendingDests[1:]
		l.mu.Unlock()
	}
	// 4. Deregistration last.
	l.mu.Lock()
	pendingDereg, app := l.pendingDereg, l.app
	l.mu.Unlock()
	if pendingDereg {
		err := l.transport.Deregister(app)
		if err != nil && rpc.Retryable(err) {
			return false
		}
		l.mu.Lock()
		if err != nil {
			l.dropped++
			l.tel.droppedOps.Inc()
		} else {
			l.tel.replayedOps.Inc()
		}
		l.pendingDereg = false
		l.mu.Unlock()
	}
	// 5. Drained? Leave degraded mode atomically with the check, so an
	// operation queued concurrently is either seen here or issued
	// directly by its caller.
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pendingReg || len(l.pendingConns) > 0 || len(l.pendingDests) > 0 || l.pendingDereg {
		return false
	}
	l.degraded = false
	l.reconRunning = false
	l.setModeLocked(ModeController)
	return true
}
