// Package sabalib is the Saba library of paper §6: the ~350-LOC shim
// applications link against to become Saba-compliant. It has the two
// components the paper describes — a connection manager that talks to the
// controller over RPC and caches the assigned Priority Level, and the
// four-call software interface of Fig. 7 (register, conn_create,
// conn_destroy, deregister). Connections are created with the cached PL
// attached, so connection setup adds no control-plane round-trip beyond
// the paper's "inform the controller" notification.
package sabalib

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"saba/internal/controller"
	"saba/internal/rpc"
	"saba/internal/topology"
)

// Transport abstracts how the connection manager reaches the controller:
// over the wire (RPCTransport) or in-process for simulations
// (DirectTransport).
type Transport interface {
	Register(name string) (controller.AppID, int, error)
	Deregister(id controller.AppID) error
	ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error)
	ConnDestroy(cid controller.ConnID) error
	PL(id controller.AppID) (int, error)
	Close() error
}

// RPCTransport reaches a controller service over TCP.
type RPCTransport struct {
	client *rpc.Client
}

// DialController connects to a controller's RPC endpoint.
func DialController(addr string, timeout time.Duration) (*RPCTransport, error) {
	c, err := rpc.Dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("sabalib: dial controller: %w", err)
	}
	return &RPCTransport{client: c}, nil
}

// Register implements Transport.
func (t *RPCTransport) Register(name string) (controller.AppID, int, error) {
	var reply controller.RegisterReply
	err := t.client.Call(controller.MethodAppRegister, controller.RegisterArgs{Name: name}, &reply)
	if err != nil {
		return 0, 0, err
	}
	return reply.App, reply.PL, nil
}

// Deregister implements Transport.
func (t *RPCTransport) Deregister(id controller.AppID) error {
	return t.client.Call(controller.MethodAppDeregister, controller.DeregisterArgs{App: id}, nil)
}

// ConnCreate implements Transport.
func (t *RPCTransport) ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error) {
	var reply controller.ConnCreateReply
	err := t.client.Call(controller.MethodConnCreate, controller.ConnCreateArgs{App: id, Src: src, Dst: dst}, &reply)
	if err != nil {
		return 0, err
	}
	return reply.Conn, nil
}

// ConnDestroy implements Transport.
func (t *RPCTransport) ConnDestroy(cid controller.ConnID) error {
	return t.client.Call(controller.MethodConnDestroy, controller.ConnDestroyArgs{Conn: cid}, nil)
}

// PL implements Transport.
func (t *RPCTransport) PL(id controller.AppID) (int, error) {
	var reply controller.RegisterReply
	err := t.client.Call(controller.MethodAppPL, controller.DeregisterArgs{App: id}, &reply)
	if err != nil {
		return 0, err
	}
	return reply.PL, nil
}

// Close implements Transport.
func (t *RPCTransport) Close() error { return t.client.Close() }

// DirectTransport calls a controller API in-process (used by the
// simulator harness, where the data plane is simulated but the control
// logic is the real thing).
type DirectTransport struct {
	API controller.API
}

// Register implements Transport.
func (t *DirectTransport) Register(name string) (controller.AppID, int, error) {
	return t.API.Register(name)
}

// Deregister implements Transport.
func (t *DirectTransport) Deregister(id controller.AppID) error { return t.API.Deregister(id) }

// ConnCreate implements Transport.
func (t *DirectTransport) ConnCreate(id controller.AppID, src, dst topology.NodeID) (controller.ConnID, error) {
	return t.API.ConnCreate(id, src, dst)
}

// ConnDestroy implements Transport.
func (t *DirectTransport) ConnDestroy(cid controller.ConnID) error {
	return t.API.ConnDestroy(cid)
}

// PL implements Transport.
func (t *DirectTransport) PL(id controller.AppID) (int, error) { return t.API.PL(id) }

// Close implements Transport.
func (t *DirectTransport) Close() error { return nil }

// Conn is a Saba-managed connection: the application-visible handle plus
// the Service Level (PL) the connection manager stamped on it.
type Conn struct {
	ID       controller.ConnID
	Src, Dst topology.NodeID
	SL       int // the PL carried by every packet of this connection
	lib      *Library
	closed   bool
}

// Library is the connection manager: one per application process.
type Library struct {
	mu         sync.Mutex
	transport  Transport
	app        controller.AppID
	appName    string
	pl         int
	registered bool
	conns      map[controller.ConnID]*Conn
}

// New creates a library instance over a transport.
func New(t Transport) *Library {
	return &Library{transport: t, conns: map[controller.ConnID]*Conn{}}
}

// Errors returned by the library.
var (
	ErrNotRegistered     = errors.New("sabalib: application not registered")
	ErrAlreadyRegistered = errors.New("sabalib: application already registered")
	ErrConnClosed        = errors.New("sabalib: connection already destroyed")
	ErrLiveConns         = errors.New("sabalib: connections still open")
)

// Register performs saba_app_register (Fig. 7 ①-③): it announces the
// application and caches the PL for future connections.
func (l *Library) Register(appName string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.registered {
		return ErrAlreadyRegistered
	}
	id, pl, err := l.transport.Register(appName)
	if err != nil {
		return fmt.Errorf("sabalib: register %s: %w", appName, err)
	}
	l.app = id
	l.appName = appName
	l.pl = pl
	l.registered = true
	return nil
}

// PL returns the cached priority level.
func (l *Library) PL() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return 0, ErrNotRegistered
	}
	return l.pl, nil
}

// RefreshPL re-reads the priority level from the controller: a burst of
// registrations after ours can re-cluster and move us to a different PL.
func (l *Library) RefreshPL() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return 0, ErrNotRegistered
	}
	pl, err := l.transport.PL(l.app)
	if err != nil {
		return 0, fmt.Errorf("sabalib: refresh PL: %w", err)
	}
	l.pl = pl
	return pl, nil
}

// App returns the controller-assigned application ID.
func (l *Library) App() (controller.AppID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return 0, ErrNotRegistered
	}
	return l.app, nil
}

// ConnCreate performs saba_conn_create (Fig. 7 ④-⑦): the connection is
// created with the cached PL (no extra latency on the data path) and the
// controller is informed so it can reallocate.
func (l *Library) ConnCreate(src, dst topology.NodeID) (*Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return nil, ErrNotRegistered
	}
	cid, err := l.transport.ConnCreate(l.app, src, dst)
	if err != nil {
		return nil, fmt.Errorf("sabalib: conn_create: %w", err)
	}
	c := &Conn{ID: cid, Src: src, Dst: dst, SL: l.pl, lib: l}
	l.conns[cid] = c
	return c, nil
}

// Destroy performs saba_conn_destroy (Fig. 7 ⑧-⑪).
func (c *Conn) Destroy() error {
	l := c.lib
	l.mu.Lock()
	defer l.mu.Unlock()
	if c.closed {
		return ErrConnClosed
	}
	if err := l.transport.ConnDestroy(c.ID); err != nil {
		return fmt.Errorf("sabalib: conn_destroy: %w", err)
	}
	c.closed = true
	delete(l.conns, c.ID)
	return nil
}

// OpenConns returns the number of live connections.
func (l *Library) OpenConns() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.conns)
}

// Deregister performs saba_app_deregister (Fig. 7 ⑫-⑬). All connections
// must have been destroyed first.
func (l *Library) Deregister() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.registered {
		return ErrNotRegistered
	}
	if len(l.conns) > 0 {
		return fmt.Errorf("%w: %d", ErrLiveConns, len(l.conns))
	}
	if err := l.transport.Deregister(l.app); err != nil {
		return fmt.Errorf("sabalib: deregister: %w", err)
	}
	l.registered = false
	return nil
}

// Close releases the transport. A registered application is deregistered
// best-effort first.
func (l *Library) Close() error {
	l.mu.Lock()
	registered := l.registered && len(l.conns) == 0
	app := l.app
	l.mu.Unlock()
	if registered {
		// Best effort; the controller GCs state on connection loss anyway.
		_ = l.transport.Deregister(app)
	}
	return l.transport.Close()
}
