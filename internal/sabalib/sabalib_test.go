package sabalib

import (
	"testing"
	"time"

	"saba/internal/controller"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/rpc"
	"saba/internal/topology"
)

// rig builds a centralized controller over an 8-host testbed and serves
// it over a real TCP RPC endpoint.
func rigService(t *testing.T) (addr string, top *topology.Topology, wfq *netsim.WFQ) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq = netsim.NewWFQ(net)
	tab := profiler.NewTable()
	tab.Put(profiler.Entry{Name: "LR", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}})
	tab.Put(profiler.Entry{Name: "PR", Degree: 2, Coeffs: []float64{1.5, -0.6, 0.1}})
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top, Table: tab, Enforcer: wfq, PLs: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := rpc.NewServer()
	if err := controller.Serve(srv, ctrl); err != nil {
		t.Fatal(err)
	}
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, top, wfq
}

func TestFullLifecycleOverRPC(t *testing.T) {
	// The complete Fig. 7 interaction over real sockets: register →
	// conn_create → conn_destroy → deregister, with the switch actually
	// reconfigured along the way.
	addr, top, wfq := rigService(t)
	tr, err := DialController(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lib := New(tr)
	defer lib.Close()

	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	pl, err := lib.PL()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lib.App(); err != nil {
		t.Fatal(err)
	}

	hosts := top.Hosts()
	conn, err := lib.ConnCreate(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if conn.SL != pl {
		t.Errorf("connection SL %d != registered PL %d", conn.SL, pl)
	}
	if lib.OpenConns() != 1 {
		t.Errorf("OpenConns = %d, want 1", lib.OpenConns())
	}
	// The enforcement actually reached the switch.
	path, _ := top.Route(hosts[0], hosts[1])
	if wfq.Config(path[0]) == nil {
		t.Error("controller did not configure the path")
	}

	if err := conn.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := conn.Destroy(); err != ErrConnClosed {
		t.Errorf("double destroy err = %v, want ErrConnClosed", err)
	}
	if err := lib.Deregister(); err != nil {
		t.Fatal(err)
	}
}

func TestReportSlowdownOverRPC(t *testing.T) {
	// The drift-feedback path end to end over real sockets: three drifted
	// windows quarantine the app (the controller answers changed=true).
	addr, top, _ := rigService(t)
	tr, err := DialController(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lib := New(tr)
	defer lib.Close()
	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	conn, err := lib.ConnCreate(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Destroy()

	// "LR" predicts 2.65 at half bandwidth; observing 10 is far drifted.
	for i := 0; i < 2; i++ {
		changed, err := lib.ReportSlowdown(0.5, 10)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			t.Fatalf("allocation changed after %d windows, want 3", i+1)
		}
	}
	changed, err := lib.ReportSlowdown(0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("third drifted window did not change the allocation")
	}
}

func TestReportSlowdownDroppedWhileDegraded(t *testing.T) {
	// Observations are perishable: while the controller is unreachable
	// they are dropped, never queued for replay — a stale window replayed
	// later would feed the drift detector fiction.
	tr := DialControllerOptions("127.0.0.1:1", rpc.Options{
		Timeout: 50 * time.Millisecond,
	})
	lib := NewWithOptions(tr, Options{Degrade: true})
	defer lib.Close()
	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	if !lib.Degraded() {
		t.Fatal("library should be degraded against an unreachable controller")
	}
	pending := lib.PendingOps()
	changed, err := lib.ReportSlowdown(0.5, 10)
	if err != nil {
		t.Fatalf("degraded ReportSlowdown err = %v, want nil (dropped)", err)
	}
	if changed {
		t.Error("dropped observation reported an allocation change")
	}
	if got := lib.PendingOps(); got != pending {
		t.Errorf("observation was queued: pending %d → %d", pending, got)
	}
}

// noObserverAPI is a controller.API without slowdown feedback (like Mesh).
type noObserverAPI struct{ controller.API }

func TestReportSlowdownNoObserver(t *testing.T) {
	// Wrap a real API so DirectTransport's type assertion fails — the
	// Mesh situation. The library must surface the error (it is not
	// retryable), not degrade or queue.
	top, _ := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 2, Queues: 8})
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	tab := profiler.NewTable()
	tab.Put(profiler.Entry{Name: "LR", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}})
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top, Table: tab, Enforcer: wfq, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := New(&DirectTransport{API: noObserverAPI{API: ctrl}})
	defer lib.Close()
	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.ReportSlowdown(0.5, 10); err == nil {
		t.Fatal("ReportSlowdown against a non-observing deployment should error")
	}
}

func TestLibraryStateMachine(t *testing.T) {
	addr, top, _ := rigService(t)
	tr, err := DialController(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lib := New(tr)
	defer lib.Close()
	hosts := top.Hosts()

	// Everything requires registration.
	if _, err := lib.PL(); err != ErrNotRegistered {
		t.Errorf("PL before register err = %v", err)
	}
	if _, err := lib.App(); err != ErrNotRegistered {
		t.Errorf("App before register err = %v", err)
	}
	if _, err := lib.ConnCreate(hosts[0], hosts[1]); err != ErrNotRegistered {
		t.Errorf("ConnCreate before register err = %v", err)
	}
	if err := lib.Deregister(); err != ErrNotRegistered {
		t.Errorf("Deregister before register err = %v", err)
	}

	if err := lib.Register("PR"); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register("PR"); err != ErrAlreadyRegistered {
		t.Errorf("double register err = %v", err)
	}

	// Deregister blocked while a connection is open.
	conn, err := lib.ConnCreate(hosts[2], hosts[3])
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Deregister(); err == nil {
		t.Error("Deregister with open conns should fail")
	}
	if err := conn.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := lib.Deregister(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoAppsGetDistinctPLs(t *testing.T) {
	addr, _, _ := rigService(t)
	tr1, _ := DialController(addr, time.Second)
	tr2, _ := DialController(addr, time.Second)
	lr := New(tr1)
	pr := New(tr2)
	defer lr.Close()
	defer pr.Close()
	if err := lr.Register("LR"); err != nil {
		t.Fatal(err)
	}
	if err := pr.Register("PR"); err != nil {
		t.Fatal(err)
	}
	plLR, _ := lr.PL()
	plPR, _ := pr.PL()
	if plLR == plPR {
		t.Errorf("LR and PR share PL %d despite distinct sensitivities", plLR)
	}
}

func TestConnCreateUnroutable(t *testing.T) {
	addr, top, _ := rigService(t)
	tr, _ := DialController(addr, time.Second)
	lib := New(tr)
	defer lib.Close()
	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.ConnCreate(top.Hosts()[0], topology.NodeID(9999)); err == nil {
		t.Error("unroutable ConnCreate should surface the remote error")
	}
	if lib.OpenConns() != 0 {
		t.Error("failed ConnCreate leaked a connection")
	}
}

func TestDirectTransport(t *testing.T) {
	// The in-process transport used by the simulation harness behaves
	// identically to the RPC path.
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 4, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	tab := profiler.NewTable()
	tab.Put(profiler.Entry{Name: "X", Degree: 1, Coeffs: []float64{3, -2}})
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top, Table: tab, Enforcer: netsim.NewWFQ(net), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := New(&DirectTransport{API: ctrl})
	if err := lib.Register("X"); err != nil {
		t.Fatal(err)
	}
	hosts := top.Hosts()
	conn, err := lib.ConnCreate(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := lib.Deregister(); err != nil {
		t.Fatal(err)
	}
	if err := lib.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialControllerFailure(t *testing.T) {
	if _, err := DialController("127.0.0.1:1", 100*time.Millisecond); err == nil {
		t.Error("dialing a dead controller should fail")
	}
}
