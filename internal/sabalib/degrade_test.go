// Graceful-degradation tests: the library over a transport whose calls
// fail, falling back to local fair-share and replaying once healed.
// External test package so it can import faults (which imports
// controller, as sabalib does).
package sabalib_test

import (
	"testing"
	"time"

	"saba/internal/controller"
	"saba/internal/faults"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/sabalib"
	"saba/internal/topology"
)

// degradeRig wires a real centralized controller behind a fault-injecting
// transport, with the library configured to degrade.
func degradeRig(t *testing.T, cfg faults.Config, opts sabalib.Options) (*sabalib.Library, *faults.Injector, *controller.Centralized, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	wfq := netsim.NewWFQ(netsim.NewNetwork(top))
	tab := profiler.NewTable()
	if err := tab.Put(profiler.Entry{Name: "LR", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}}); err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top, Table: tab, Enforcer: wfq, PLs: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(cfg)
	ft := faults.NewFaultyTransport(&sabalib.DirectTransport{API: ctrl}, inj)
	opts.Degrade = true
	if opts.RetryInterval == 0 {
		opts.RetryInterval = 5 * time.Millisecond
	}
	lib := sabalib.NewWithOptions(ft, opts)
	t.Cleanup(func() { lib.Close() })
	return lib, inj, ctrl, top
}

// waitHealthy polls until the library leaves degraded mode.
func waitHealthy(t *testing.T, lib *sabalib.Library) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for lib.Degraded() || lib.PendingOps() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("library never recovered: degraded=%v pending=%d", lib.Degraded(), lib.PendingOps())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDegradeToFairShareAndReplay(t *testing.T) {
	lib, inj, ctrl, top := degradeRig(t,
		faults.Config{Seed: 1, CallFailRate: 1},
		sabalib.Options{FallbackPL: 0},
	)
	hosts := top.Hosts()

	// With every call failing, Register still succeeds — locally, in
	// degraded mode, at the fallback PL.
	if err := lib.Register("LR"); err != nil {
		t.Fatalf("degraded register: %v", err)
	}
	if !lib.Degraded() {
		t.Fatal("library should be degraded with CallFailRate=1")
	}
	pl, err := lib.PL()
	if err != nil {
		t.Fatal(err)
	}
	if pl != 0 {
		t.Errorf("degraded PL = %d, want fallback 0 (fair share)", pl)
	}

	// Connections work too: provisional negative IDs, fallback SL.
	c, err := lib.ConnCreate(hosts[0], hosts[1])
	if err != nil {
		t.Fatalf("degraded conn create: %v", err)
	}
	if c.ID >= 0 {
		t.Errorf("degraded conn ID = %d, want provisional (negative)", c.ID)
	}
	if c.SL != 0 {
		t.Errorf("degraded conn SL = %d, want fallback 0", c.SL)
	}
	if ctrl.Apps() != 0 || ctrl.Conns() != 0 {
		t.Fatalf("controller saw traffic while unreachable: %d apps %d conns", ctrl.Apps(), ctrl.Conns())
	}

	// Heal the network: the reconciler replays register + conn create.
	inj.SetConfig(faults.Config{})
	waitHealthy(t, lib)
	if ctrl.Apps() != 1 {
		t.Errorf("controller Apps = %d after replay, want 1", ctrl.Apps())
	}
	if ctrl.Conns() != 1 {
		t.Errorf("controller Conns = %d after replay, want 1", ctrl.Conns())
	}
	if c.ID <= 0 {
		t.Errorf("conn ID = %d after replay, want real (positive)", c.ID)
	}
	// The app now holds whatever PL the controller actually assigned.
	id, err := lib.App()
	if err != nil {
		t.Fatalf("App after replay: %v", err)
	}
	ctrlPL, err := ctrl.PL(id)
	if err != nil {
		t.Fatal(err)
	}
	if pl, err := lib.PL(); err != nil || pl != ctrlPL {
		t.Errorf("post-replay PL = %d, %v; controller says %d", pl, err, ctrlPL)
	}
	// And normal teardown goes straight through.
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := lib.Deregister(); err != nil {
		t.Fatal(err)
	}
	if ctrl.Apps() != 0 || ctrl.Conns() != 0 {
		t.Errorf("leaked controller state: %d apps %d conns", ctrl.Apps(), ctrl.Conns())
	}
}

func TestConnClosedBeforeHealNeverReachesController(t *testing.T) {
	lib, inj, ctrl, top := degradeRig(t,
		faults.Config{Seed: 2, CallFailRate: 1},
		sabalib.Options{},
	)
	hosts := top.Hosts()
	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	c, err := lib.ConnCreate(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	// The app tears the provisional conn down before the network heals:
	// the replay must skip it entirely.
	if err := c.Destroy(); err != nil {
		t.Fatalf("destroying provisional conn: %v", err)
	}
	if lib.OpenConns() != 0 {
		t.Errorf("OpenConns = %d, want 0", lib.OpenConns())
	}
	inj.SetConfig(faults.Config{})
	waitHealthy(t, lib)
	if ctrl.Conns() != 0 {
		t.Errorf("closed provisional conn leaked to controller: Conns = %d", ctrl.Conns())
	}
	if ctrl.Apps() != 1 {
		t.Errorf("Apps = %d, want 1 (register still replays)", ctrl.Apps())
	}
}

func TestDegradedDeregisterCancelsPendingRegister(t *testing.T) {
	lib, inj, ctrl, _ := degradeRig(t,
		faults.Config{Seed: 3, CallFailRate: 1},
		sabalib.Options{},
	)
	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	// Register never reached the controller; deregistering while degraded
	// cancels it locally — nothing should ever reach the controller.
	if err := lib.Deregister(); err != nil {
		t.Fatalf("degraded deregister: %v", err)
	}
	inj.SetConfig(faults.Config{})
	time.Sleep(50 * time.Millisecond)
	if ctrl.Apps() != 0 {
		t.Errorf("cancelled registration leaked: Apps = %d", ctrl.Apps())
	}
}

func TestMidRunOutageQueuesAndReplays(t *testing.T) {
	lib, inj, ctrl, top := degradeRig(t,
		faults.Config{Seed: 4},
		sabalib.Options{},
	)
	hosts := top.Hosts()
	// Healthy start: register and one conn go straight through.
	if err := lib.Register("LR"); err != nil {
		t.Fatal(err)
	}
	healthyPL, err := lib.PL()
	if err != nil {
		t.Fatal(err)
	}
	c1, err := lib.ConnCreate(hosts[0], hosts[1])
	if err != nil {
		t.Fatal(err)
	}
	if lib.Degraded() || c1.ID <= 0 {
		t.Fatalf("healthy path degraded: %v id=%d", lib.Degraded(), c1.ID)
	}
	if c1.SL != healthyPL {
		t.Errorf("healthy conn SL = %d, want %d", c1.SL, healthyPL)
	}

	// Outage: the next create degrades but still succeeds locally.
	inj.SetConfig(faults.Config{CallFailRate: 1})
	c2, err := lib.ConnCreate(hosts[2], hosts[3])
	if err != nil {
		t.Fatalf("create during outage: %v", err)
	}
	if !lib.Degraded() || c2.ID >= 0 {
		t.Fatalf("outage not detected: degraded=%v id=%d", lib.Degraded(), c2.ID)
	}
	// Destroying a controller-known conn during the outage queues the
	// destroy for replay.
	if err := c1.Destroy(); err != nil {
		t.Fatalf("destroy during outage: %v", err)
	}

	// Heal: c2 replays, c1's destroy replays.
	inj.SetConfig(faults.Config{})
	waitHealthy(t, lib)
	if ctrl.Conns() != 1 {
		t.Errorf("controller Conns = %d after replay, want 1 (c2 only)", ctrl.Conns())
	}
	if c2.ID <= 0 {
		t.Errorf("c2 ID = %d after replay, want real", c2.ID)
	}
	if lib.DroppedOps() != 0 {
		t.Errorf("DroppedOps = %d, want 0", lib.DroppedOps())
	}
}

func TestNoDegradeOptionSurfacesErrors(t *testing.T) {
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 4, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	wfq := netsim.NewWFQ(netsim.NewNetwork(top))
	tab := profiler.NewTable()
	if err := tab.Put(profiler.Entry{Name: "LR", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}}); err != nil {
		t.Fatal(err)
	}
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top, Table: tab, Enforcer: wfq, PLs: 16, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Config{Seed: 5, CallFailRate: 1})
	lib := sabalib.New(faults.NewFaultyTransport(&sabalib.DirectTransport{API: ctrl}, inj))
	defer lib.Close()
	if err := lib.Register("LR"); err == nil {
		t.Fatal("register over a dead transport without Degrade should fail")
	}
	if lib.Degraded() {
		t.Error("library degraded without the Degrade option")
	}
}
