package sabalib

import (
	"errors"
	"testing"
	"time"

	"saba/internal/controller"
	"saba/internal/netsim"
	"saba/internal/profiler"
	"saba/internal/telemetry"
	"saba/internal/topology"
)

// rigAdmitted builds a centralized controller with admission control on
// for in-process (DirectTransport) tenant tests.
func rigAdmitted(t *testing.T, adm controller.AdmissionConfig) (*controller.Centralized, *topology.Topology) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: 8, Queues: 8})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	wfq := netsim.NewWFQ(net)
	tab := profiler.NewTable()
	tab.Put(profiler.Entry{Name: "LR", Degree: 2, Coeffs: []float64{5.2, -6.0, 1.8}})
	tab.Put(profiler.Entry{Name: "PR", Degree: 2, Coeffs: []float64{1.5, -0.6, 0.1}})
	ctrl, err := controller.NewCentralized(controller.Config{
		Topology: top, Table: tab, Enforcer: wfq, PLs: 16, Seed: 1,
		Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl, top
}

func TestTenantLifecycleOverRPC(t *testing.T) {
	// Tenant registration and tenant-scoped app registration across real
	// sockets: the guarantee must land controller-side and the app must
	// count toward it.
	addr, _, _ := rigService(t)
	tr, err := DialController(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	lib := New(tr)
	defer lib.Close()

	tid, err := lib.RegisterTenant("latency-tier", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if tid == 0 {
		t.Fatal("RegisterTenant returned the reserved untenanted ID")
	}
	// Idempotent replay across the wire: same name+min, same ID.
	again, err := lib.RegisterTenant("latency-tier", 0.3)
	if err != nil || again != tid {
		t.Fatalf("replayed RegisterTenant = %d,%v, want %d,nil", again, err, tid)
	}
	if _, err := lib.RegisterTenant("latency-tier", 0.5); err == nil {
		t.Error("conflicting guarantee accepted over RPC")
	}
	if err := lib.RegisterUnder(tid, "LR"); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.App(); err != nil {
		t.Fatalf("App() after RegisterUnder: %v", err)
	}
}

func TestRegisterTenantInfeasibleCounted(t *testing.T) {
	ctrl, _ := rigAdmitted(t, controller.AdmissionConfig{})
	reg := telemetry.NewRegistry()
	lib := NewWithOptions(&DirectTransport{API: ctrl}, Options{Telemetry: reg})
	defer lib.Close()

	if _, err := lib.RegisterTenant("big", 0.7); err != nil {
		t.Fatal(err)
	}
	_, err := lib.RegisterTenant("greedy", 0.6)
	if err == nil {
		t.Fatal("over-cap guarantee accepted")
	}
	if !controller.IsInfeasible(err) {
		t.Errorf("infeasible rejection lost its type: %v", err)
	}
	if got := reg.Counter("sabalib.admission_rejected").Value(); got != 1 {
		t.Errorf("admission_rejected = %d, want 1", got)
	}
	label := telemetry.Label("sabalib.admission_rejected", "reason", "infeasible")
	if got := reg.Counter(label).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", label, got)
	}
}

func TestRejectedConnCreateFailsFastNotDegraded(t *testing.T) {
	// A rate-limited ConnCreate must surface typed with the controller's
	// advisory backoff and must NOT be queued as a degraded fallback —
	// the two ledgers (admission_rejected vs queued_ops) stay disjoint.
	ctrl, top := rigAdmitted(t, controller.AdmissionConfig{
		Enabled:     true,
		TenantRate:  0.001, // no refill during the test
		TenantBurst: 1,
		RetryAfter:  70 * time.Millisecond,
	})
	hosts := top.Hosts()
	reg := telemetry.NewRegistry()
	lib := NewWithOptions(&DirectTransport{API: ctrl}, Options{
		Degrade:   true, // degradation armed, must still not swallow rejections
		Telemetry: reg,
	})
	defer lib.Close()

	tid, err := lib.RegisterTenant("busy", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.RegisterUnder(tid, "LR"); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.ConnCreate(hosts[0], hosts[1]); err != nil {
		t.Fatalf("within-burst create rejected: %v", err)
	}
	_, err = lib.ConnCreate(hosts[2], hosts[3])
	if err == nil {
		t.Fatal("over-budget create succeeded")
	}
	if !IsRejected(err) {
		t.Fatalf("rejection lost its type through the library: %v", err)
	}
	if after, ok := RetryAfter(err); !ok || after != 70*time.Millisecond {
		t.Errorf("RetryAfter = %v,%v, want 70ms,true", after, ok)
	}
	if lib.Degraded() {
		t.Error("rejection flipped the library into degraded mode")
	}
	if lib.PendingOps() != 0 {
		t.Errorf("PendingOps = %d, want 0 (rejections are not queued)", lib.PendingOps())
	}
	label := telemetry.Label("sabalib.admission_rejected", "reason", "tenant_rate")
	if got := reg.Counter(label).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", label, got)
	}
	if got := reg.Counter("sabalib.queued_ops").Value(); got != 0 {
		t.Errorf("queued_ops = %d, want 0", got)
	}
}

func TestTenantCallsWithoutTenantLayer(t *testing.T) {
	// A deployment without the guarantee layer (here: a bare API hidden
	// behind the same wrapper trick noObserverAPI uses) answers
	// ErrNoTenants for the whole tenant surface.
	ctrl, _ := rigAdmitted(t, controller.AdmissionConfig{})
	lib := New(&DirectTransport{API: noObserverAPI{API: ctrl}})
	defer lib.Close()

	if _, err := lib.RegisterTenant("acme", 0.1); !errors.Is(err, controller.ErrNoTenants) {
		t.Errorf("RegisterTenant = %v, want ErrNoTenants", err)
	}
	if err := lib.RegisterUnder(7, "LR"); !errors.Is(err, controller.ErrNoTenants) {
		t.Errorf("RegisterUnder = %v, want ErrNoTenants", err)
	}
	// RegisterUnder(0) is plain registration: no tenant layer needed.
	if err := lib.RegisterUnder(0, "LR"); err != nil {
		t.Errorf("untenanted RegisterUnder failed: %v", err)
	}
}
