package sabalib

import (
	"math"
	"testing"

	"saba/internal/decentral"
	"saba/internal/solver"
	"saba/internal/telemetry"
)

func decentralLib(t *testing.T, ch *decentral.Channel, now func() float64) (*Library, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	l := NewDecentral(Options{
		Telemetry: reg,
		Decentral: &DecentralOptions{
			Source:    ch,
			Objective: solver.PolyObjective{Coeffs: []float64{2.4, -1.87, 0.47}},
			Now:       now,
		},
	})
	t.Cleanup(func() { l.Close() })
	return l, reg
}

// The transportless library must support the full Fig. 7 call sequence
// locally, with nothing queued for a reconciler that will never run.
func TestDecentralLifecycleWithoutTransport(t *testing.T) {
	l, _ := decentralLib(t, decentral.NewChannel(), nil)
	if err := l.Register("ML-training"); err != nil {
		t.Fatal(err)
	}
	if err := l.Register("ML-training"); err != ErrAlreadyRegistered {
		t.Fatalf("second register: %v", err)
	}
	c, err := l.ConnCreate(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID >= 0 {
		t.Errorf("controller-free conn got non-local ID %d", c.ID)
	}
	if n := l.PendingOps(); n != 0 {
		t.Errorf("PendingOps = %d, want 0 (no reconciler exists)", n)
	}
	if err := l.Deregister(); err == nil {
		t.Error("deregister with live conns should fail")
	}
	if err := c.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := l.Deregister(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// A fresh signal drives the share toward the sensitivity-weighted
// response; a quiet signal falls back to fair share; and the
// degraded↔decentral transitions are idempotent, counted once per
// actual change.
func TestDecentralShareAndStaleness(t *testing.T) {
	ch := decentral.NewChannel()
	now := 0.0
	l, reg := decentralLib(t, ch, func() float64 { return now })
	if err := l.Register("app"); err != nil {
		t.Fatal(err)
	}
	if err := l.EnterDecentral(); err != nil {
		t.Fatal(err)
	}
	if m := l.Mode(); m != ModeDecentral {
		t.Fatalf("mode after EnterDecentral = %v", m)
	}

	// No signal ever published: degrade, share unknown (0).
	share, fresh, err := l.DecentralShare()
	if err != nil || fresh || share != 0 {
		t.Fatalf("quiet cold: share=%v fresh=%v err=%v", share, fresh, err)
	}
	if m := l.Mode(); m != ModeDegraded {
		t.Fatalf("mode after quiet signal = %v", m)
	}

	// Signal appears: back to decentral with a real share.
	ch.Publish(0, []decentral.PortSignal{{Port: 1, Util: 1.0, Price: 0.8, Apps: 4}})
	share, fresh, err = l.DecentralShare()
	if err != nil || !fresh || share <= 0 {
		t.Fatalf("fresh: share=%v fresh=%v err=%v", share, fresh, err)
	}
	if m := l.Mode(); m != ModeDecentral {
		t.Fatalf("mode after fresh signal = %v", m)
	}
	// Repeated fresh polls are idempotent on the mode counter.
	for i := 0; i < 5; i++ {
		if _, _, err := l.DecentralShare(); err != nil {
			t.Fatal(err)
		}
	}

	// Signal ages out: fall back to fair share over the last population.
	now = 10 // signal time 0, staleness default 2.0
	share, fresh, err = l.DecentralShare()
	if err != nil || fresh {
		t.Fatalf("stale: fresh=%v err=%v", fresh, err)
	}
	if want := 1.0 / 4; math.Abs(share-want) > 1e-9 {
		t.Errorf("stale fallback share = %v, want fair share %v", share, want)
	}
	if m := l.Mode(); m != ModeDegraded {
		t.Fatalf("mode after stale signal = %v", m)
	}

	// Heartbeats revive it.
	ch.Publish(10, nil)
	if _, fresh, _ = l.DecentralShare(); !fresh {
		t.Fatal("heartbeat did not refresh the signal")
	}

	// decentral→degraded→decentral→degraded→decentral = 5 transitions
	// from the initial ModeController (1 enter + 4 flips).
	if got := reg.Counter("sabalib.mode_transitions").Value(); got != 5 {
		t.Errorf("mode_transitions = %d, want 5", got)
	}
	toDec := reg.Counter(telemetry.Label("sabalib.mode_transitions", "to", "decentral")).Value()
	toDeg := reg.Counter(telemetry.Label("sabalib.mode_transitions", "to", "degraded")).Value()
	if toDec != 3 || toDeg != 2 {
		t.Errorf("labeled transitions: to=decentral %d (want 3), to=degraded %d (want 2)", toDec, toDeg)
	}
}

// Successive fresh responses must converge (damped iteration against a
// fixed price), not oscillate.
func TestDecentralShareConverges(t *testing.T) {
	ch := decentral.NewChannel()
	l, _ := decentralLib(t, ch, nil)
	if err := l.Register("app"); err != nil {
		t.Fatal(err)
	}
	ch.Publish(0, []decentral.PortSignal{{Port: 1, Util: 1.0, Price: 0.9, Apps: 3}})
	prev := -1.0
	var last float64
	for i := 0; i < 64; i++ {
		s, fresh, err := l.DecentralShare()
		if err != nil || !fresh {
			t.Fatalf("iter %d: fresh=%v err=%v", i, fresh, err)
		}
		prev, last = last, s
	}
	if math.Abs(last-prev) > 1e-6 {
		t.Errorf("share did not settle: %v -> %v", prev, last)
	}
}

// DecentralShare without configuration must error, not panic.
func TestDecentralShareUnconfigured(t *testing.T) {
	l := NewDecentral(Options{Telemetry: telemetry.NewRegistry()})
	defer l.Close()
	if _, _, err := l.DecentralShare(); err != ErrNoDecentral {
		t.Fatalf("err = %v, want ErrNoDecentral", err)
	}
	if err := l.EnterDecentral(); err != ErrNoDecentral {
		t.Fatalf("EnterDecentral err = %v, want ErrNoDecentral", err)
	}
}
