package sabalib

import (
	"errors"
	"math"

	"saba/internal/decentral"
	"saba/internal/solver"
)

// Mode identifies which allocation path is currently primary for a
// library instance. The ROADMAP's end state inverts PR 1's hierarchy:
// in a controller-free deployment ModeDecentral is the primary path and
// ModeDegraded (local fair share) is the fallback when the telemetry
// signal goes quiet, with no controller anywhere.
type Mode int

const (
	// ModeController: allocations come from controller plans (the PR 1
	// default, also the state a degraded library returns to after replay).
	ModeController Mode = iota
	// ModeDegraded: the controller or the telemetry signal is
	// unreachable; traffic runs at the local fair-share fallback.
	ModeDegraded
	// ModeDecentral: shares come from broadcast telemetry signals — the
	// controller-free deployment mode.
	ModeDecentral

	modeCount = iota
)

// String returns the operator-facing mode name (used as the telemetry
// label value).
func (m Mode) String() string {
	switch m {
	case ModeController:
		return "controller"
	case ModeDegraded:
		return "degraded"
	case ModeDecentral:
		return "decentral"
	}
	return "unknown"
}

// DecentralOptions configures the controller-free deployment mode.
type DecentralOptions struct {
	// Source is the telemetry channel the library polls for broadcast
	// signals (in production, in-band network telemetry; in the
	// simulator, the netsim allocator's decentral.Channel).
	Source decentral.Source
	// Objective is this application's sensitivity model. nil selects the
	// moderate default (decentral.DefaultCoeffs) — the same assumption
	// the controller makes for unprofiled applications.
	Objective solver.Objective
	// Params tune the host-side response (gain, damping, box).
	Params decentral.Params
	// MaxStaleness bounds how old (in the Source's time base, virtual
	// seconds in the simulator) a signal may be before the library falls
	// back to local fair share. 0 selects 2.0.
	MaxStaleness float64
	// Now returns the current time in the Source's time base, used for
	// the staleness check. nil disables staleness checking (a signal is
	// fresh as long as one exists).
	Now func() float64
}

// DefaultMaxStaleness is the signal age beyond which a decentralized
// library abandons the telemetry path: ~2000 beacon intervals — far
// past any plausible broadcast jitter, so tripping it means real signal
// loss, not scheduling noise.
const DefaultMaxStaleness = 2.0

// ErrNoDecentral reports that the library was not configured with
// DecentralOptions.
var ErrNoDecentral = errors.New("sabalib: decentral mode not configured")

// NewDecentral creates a controller-free library instance: no transport,
// no reconciler, no RPC — registration and connection management are
// purely local, and shares come from DecentralShare. The four-call
// interface of Fig. 7 keeps working so applications are agnostic to the
// deployment mode.
func NewDecentral(o Options) *Library {
	l := NewWithOptions(nil, o)
	return l
}

// setModeLocked records a deployment-mode change, idempotently: calling
// it with the current mode is a no-op (no counter increment), so
// repeated degraded→decentral→degraded oscillations count each actual
// transition exactly once.
func (l *Library) setModeLocked(to Mode) {
	if l.mode == to {
		return
	}
	l.mode = to
	l.tel.modeTransitions.Inc()
	if to >= 0 && int(to) < len(l.tel.modeTo) {
		l.tel.modeTo[to].Inc()
	}
}

// Mode returns the library's current deployment mode.
func (l *Library) Mode() Mode {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mode
}

// EnterDecentral switches the library onto the telemetry path
// explicitly (normally DecentralShare flips the mode on its own as
// signals arrive; this lets a harness assert the starting state). It is
// idempotent.
func (l *Library) EnterDecentral() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Decentral == nil || l.opts.Decentral.Source == nil {
		return ErrNoDecentral
	}
	l.setModeLocked(ModeDecentral)
	return nil
}

// DecentralShare returns the application's current bandwidth share of
// the hottest contended port, computed purely from broadcast telemetry:
// one damped proximal response to the advertised congestion price, with
// the previous share as the iteration's memory. fresh reports whether a
// live signal was used; when the signal is missing or older than
// MaxStaleness the library falls back to the local fair share over the
// last-known port population (0 before any signal was ever seen) and
// flips to ModeDegraded until the signal returns. Transitions in both
// directions are idempotent and counted in sabalib.mode_transitions.
func (l *Library) DecentralShare() (share float64, fresh bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cfg := l.opts.Decentral
	if cfg == nil || cfg.Source == nil {
		return 0, false, ErrNoDecentral
	}
	maxStale := cfg.MaxStaleness
	if maxStale <= 0 {
		maxStale = DefaultMaxStaleness
	}
	sig, ok := cfg.Source.Signal()
	stale := !ok
	if ok && cfg.Now != nil {
		if age := cfg.Now() - sig.Time; age > maxStale || math.IsNaN(age) {
			stale = true
		}
	}
	if stale {
		l.setModeLocked(ModeDegraded)
		if l.lastApps == 0 {
			return 0, false, nil
		}
		return decentral.FairShare(cfg.Params, l.lastApps), false, nil
	}
	l.setModeLocked(ModeDecentral)
	obj := cfg.Objective
	if obj == nil {
		obj = solver.PolyObjective{Coeffs: decentral.DefaultCoeffs}
	}
	share = decentral.Respond(obj, sig, l.prevShare, cfg.Params)
	l.prevShare = share
	if sig.Apps > 0 {
		l.lastApps = sig.Apps
	}
	return share, true, nil
}
