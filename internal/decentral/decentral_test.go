package decentral

import (
	"math"
	"testing"

	"saba/internal/solver"
)

func objs(coeffs ...[]float64) []solver.Objective {
	out := make([]solver.Objective, len(coeffs))
	for i, c := range coeffs {
		out[i] = solver.PolyObjective{Coeffs: c}
	}
	return out
}

// monotoneObjs builds the clamped-monotone envelopes the controller uses
// in production, so the parity test runs against the real model class.
func monotoneObjs(coeffs ...[]float64) []solver.Objective {
	out := make([]solver.Objective, len(coeffs))
	for i, c := range coeffs {
		out[i] = solver.NewMonotonePoly(c)
	}
	return out
}

func maxRelGap(got, want []float64) float64 {
	gap := 0.0
	for i := range got {
		if want[i] <= 0 {
			continue
		}
		if g := math.Abs(got[i]-want[i]) / want[i]; g > gap {
			gap = g
		}
	}
	return gap
}

// The decentralized fixed point must land within 5% of the centralized
// Eq. 2 solve for convex sensitivity models — the core claim of the
// protocol.
func TestPortMatchesCentralizedSolve(t *testing.T) {
	cases := []struct {
		name string
		objs []solver.Objective
	}{
		{"two-apps-convex", objs(
			[]float64{3.0, -2.5, 0.6},
			[]float64{1.5, -0.55},
		)},
		{"three-apps-mixed", objs(
			[]float64{2.4, -1.87, 0.47},
			[]float64{4.0, -4.5, 1.6},
			[]float64{1.2, -0.21},
		)},
		{"monotone-envelopes", monotoneObjs(
			[]float64{2.4, -1.87, 0.47},
			[]float64{3.2, -3.1, 1.0},
			[]float64{1.8, -1.0, 0.25},
			[]float64{2.0, -1.4, 0.4},
		)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := solver.Minimize(tc.objs, solver.Options{Total: 1})
			if err != nil {
				t.Fatalf("Minimize: %v", err)
			}
			p := NewPort(tc.objs, Params{})
			converged := p.Solve()
			if !converged {
				t.Fatalf("port did not converge in %d rounds", p.Rounds())
			}
			if gap := maxRelGap(p.Weights(), want); gap > 0.05 {
				t.Fatalf("gap %.3f > 5%%: got %v want %v", gap, p.Weights(), want)
			}
		})
	}
}

func TestPortDeterministic(t *testing.T) {
	o := objs([]float64{2.4, -1.87, 0.47}, []float64{4.0, -4.5, 1.6})
	a := NewPort(o, Params{})
	b := NewPort(o, Params{})
	a.Solve()
	b.Solve()
	for i := range a.Weights() {
		if math.Float64bits(a.Weights()[i]) != math.Float64bits(b.Weights()[i]) {
			t.Fatalf("non-deterministic weight %d: %v vs %v", i, a.Weights()[i], b.Weights()[i])
		}
	}
	if a.Rounds() != b.Rounds() {
		t.Fatalf("non-deterministic rounds: %d vs %d", a.Rounds(), b.Rounds())
	}
}

func TestNormalizeSumsToTotal(t *testing.T) {
	p := NewPort(objs([]float64{2.4, -1.87, 0.47}, []float64{1.5, -0.55}), Params{Total: 4})
	p.Solve()
	s := 0.0
	for _, w := range p.Weights() {
		s += w
	}
	if math.Abs(s-4) > 1e-9 {
		t.Fatalf("weights sum %v, want 4", s)
	}
}

func TestShareRatesNeverExceedCapacity(t *testing.T) {
	p := NewPort(objs([]float64{2.4, -1.87, 0.47}, []float64{4.0, -4.5, 1.6}), Params{})
	p.Solve()
	rates := p.ShareRates(1000)
	s := 0.0
	for _, r := range rates {
		if r < 0 || math.IsNaN(r) {
			t.Fatalf("bad rate %v", r)
		}
		s += r
	}
	if s > 1000+1e-6 {
		t.Fatalf("rates sum %v exceeds capacity", s)
	}
	for _, c := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		for _, r := range p.ShareRates(c) {
			if r != 0 {
				t.Fatalf("capacity %v should yield zero rates, got %v", c, r)
			}
		}
	}
}

func TestSingleAppTakesTotal(t *testing.T) {
	p := NewPort(objs([]float64{2.4, -1.87, 0.47}), Params{})
	p.Solve()
	if math.Abs(p.Weights()[0]-1) > 1e-9 {
		t.Fatalf("single app weight %v, want 1", p.Weights()[0])
	}
}

// Hostile parameters must sanitize to the defaults rather than corrupt
// the iteration.
func TestParamsSanitize(t *testing.T) {
	bad := Params{
		Gain:     math.NaN(),
		Damping:  math.Inf(1),
		Epsilon:  -3,
		MaxIters: -1,
		Total:    math.Inf(-1),
		MinShare: math.NaN(),
		MaxShare: -7,
	}
	p := NewPort(objs([]float64{2.4, -1.87, 0.47}, []float64{1.5, -0.55}), bad)
	p.Solve()
	for i, w := range p.Weights() {
		if !finite(w) || w < 0 {
			t.Fatalf("weight %d = %v under hostile params", i, w)
		}
	}
}

// A corrupted signal stream (NaN, Inf, negative) must never push the
// weights out of the box or onto NaN.
func TestStepHostileSignals(t *testing.T) {
	p := NewPort(objs([]float64{2.4, -1.87, 0.47}, []float64{4.0, -4.5, 1.6}), Params{})
	for _, u := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 1e300, 0, 0.5, 2} {
		p.Step(u)
		for i, w := range p.Weights() {
			if !finite(w) || w < p.par.MinShare-1e-12 || w > p.par.MaxShare+1e-12 {
				t.Fatalf("signal %v drove weight %d to %v", u, i, w)
			}
		}
	}
}

func TestRespondConvergesToPortWeight(t *testing.T) {
	o := objs([]float64{2.4, -1.87, 0.47}, []float64{4.0, -4.5, 1.6}, []float64{1.2, -0.21})
	p := NewPort(o, Params{})
	p.Solve()
	// A host that only sees the broadcast price should converge to the
	// same weight the full port state computed for its objective.
	sig := Signal{Seq: 1, Time: 0, PortSignal: PortSignal{Util: p.Util(), Price: p.Price(), Apps: len(o)}}
	for i, obj := range o {
		share := 0.0
		for k := 0; k < 64; k++ {
			share = Respond(obj, sig, share, Params{})
		}
		// Compare pre-normalization targets: Respond sees the raw price.
		target := prox(obj, -p.Price(), p.par.MinShare, p.par.MaxShare)
		if math.Abs(share-target) > 0.02 {
			t.Fatalf("app %d: Respond settled at %v, port prox target %v", i, share, target)
		}
	}
}

func TestRespondHostileInputs(t *testing.T) {
	obj := solver.PolyObjective{Coeffs: DefaultCoeffs}
	sigs := []Signal{
		{PortSignal: PortSignal{Util: math.NaN(), Price: math.NaN(), Apps: -3}},
		{PortSignal: PortSignal{Util: math.Inf(1), Price: math.Inf(-1), Apps: 0}},
		{PortSignal: PortSignal{Util: -1, Price: 1e300, Apps: 1000000}},
	}
	for _, sig := range sigs {
		w := Respond(obj, sig, math.NaN(), Params{Gain: math.Inf(1)})
		if !finite(w) || w < 0 {
			t.Fatalf("Respond(%+v) = %v", sig, w)
		}
	}
}

func TestFairShare(t *testing.T) {
	if got := FairShare(Params{Total: 8}, 4); math.Abs(got-2) > 1e-12 {
		t.Fatalf("FairShare = %v, want 2", got)
	}
	if got := FairShare(Params{}, 0); !finite(got) || got <= 0 {
		t.Fatalf("FairShare n=0 = %v", got)
	}
}

func TestChannelSignalHottestPort(t *testing.T) {
	c := NewChannel()
	if _, ok := c.Signal(); ok {
		t.Fatal("empty channel reported a signal")
	}
	c.Publish(1.5, []PortSignal{
		{Port: 3, Util: 0.8, Price: 0.1, Apps: 2},
		{Port: 7, Util: 1.2, Price: 0.4, Apps: 3},
		{Port: 5, Util: 1.2, Price: 0.3, Apps: 1},
	})
	sig, ok := c.Signal()
	if !ok {
		t.Fatal("no signal after publish")
	}
	if sig.Port != 5 {
		t.Fatalf("hottest port %d, want 5 (tie to lowest id)", sig.Port)
	}
	if sig.Seq != 1 || sig.Time != 1.5 {
		t.Fatalf("seq/time = %d/%v", sig.Seq, sig.Time)
	}
	// Heartbeat bumps seq/time without touching port state.
	c.Publish(2.5, nil)
	sig2, _ := c.Signal()
	if sig2.Seq != 2 || sig2.Time != 2.5 || sig2.Port != 5 {
		t.Fatalf("heartbeat signal %+v", sig2)
	}
	if ps, ok := c.Port(3); !ok || ps.Util != 0.8 {
		t.Fatalf("Port(3) = %+v, %v", ps, ok)
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestProxStaysInBox(t *testing.T) {
	o := solver.PolyObjective{Coeffs: []float64{2.4, -1.87, 0.47}}
	for _, lambda := range []float64{-1e6, -1, 0, 1, 1e6, math.NaN()} {
		w := prox(o, lambda, 0.1, 0.7)
		if !(w >= 0.1 && w <= 0.7) {
			t.Fatalf("prox(λ=%v) = %v outside [0.1, 0.7]", lambda, w)
		}
	}
	if w := prox(o, 1, 0.5, 0.5); w != 0.5 {
		t.Fatalf("degenerate box: %v", w)
	}
}
