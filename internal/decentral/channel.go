package decentral

import "sync"

// PortSignal is one port's slice of a telemetry broadcast: the observed
// utilization of the managed capacity, the congestion price the
// decentralized state implies, and the number of applications sharing
// the port (hosts need it only for the fair-share cold start and the
// quiet-signal fallback).
type PortSignal struct {
	Port  int
	Util  float64
	Price float64
	Apps  int
}

// Signal is what a host receives from the in-band telemetry channel: the
// hottest port's state stamped with a monotone sequence number and the
// virtual time of the broadcast. Hosts use Seq/Time for bounded-staleness
// checks.
type Signal struct {
	Seq  uint64
	Time float64
	PortSignal
}

// Source is anything a sabalib instance can poll for the latest
// broadcast. ok is false until the first broadcast is published.
type Source interface {
	Signal() (Signal, bool)
}

// Channel is the simulated in-band telemetry channel: the netsim
// Decentral allocator publishes per-port signals into it after each
// recompute (and on heartbeats), and sabalib instances poll it. It
// models a broadcast medium — every reader sees the same latest state —
// with a mutex standing in for the wire.
type Channel struct {
	mu    sync.Mutex
	ports map[int]PortSignal
	seq   uint64
	time  float64
}

// NewChannel creates an empty channel; Signal reports ok=false until
// the first Publish.
func NewChannel() *Channel {
	return &Channel{ports: make(map[int]PortSignal)}
}

// Publish broadcasts a batch of per-port signals at the given virtual
// time, bumping the sequence number. An empty batch is a heartbeat: it
// refreshes Seq/Time so pollers know the network is alive even when no
// port state changed.
func (c *Channel) Publish(now float64, updates []PortSignal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, u := range updates {
		c.ports[u.Port] = u
	}
	c.seq++
	c.time = now
}

// Signal returns the hottest port's broadcast (highest utilization,
// ties to the lowest port id) — the single scalar signal Söze-style
// hosts react to. ok is false before the first publish.
func (c *Channel) Signal() (Signal, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.seq == 0 {
		return Signal{}, false
	}
	var best PortSignal
	found := false
	for id, ps := range c.ports {
		if !found || ps.Util > best.Util || (ps.Util == best.Util && id < best.Port) {
			best = ps
			found = true
		}
	}
	return Signal{Seq: c.seq, Time: c.time, PortSignal: best}, true
}

// Port returns the latest broadcast for one port.
func (c *Channel) Port(id int) (PortSignal, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ps, ok := c.ports[id]
	return ps, ok
}

// Len reports how many distinct ports have been broadcast.
func (c *Channel) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ports)
}
