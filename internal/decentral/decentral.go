// Package decentral implements Saba's telemetry-only decentralized
// allocation protocol — the Söze-style deployment mode with no controller
// on the hot path. Instead of a per-port Eq. 2 solve pushed down as WFQ
// weights, every end host observes one broadcast congestion signal per
// port (the utilization the switch already exports through the telemetry
// gauges) and reacts locally:
//
//	λ ← λ − gain·(util − 1)              (shared price estimate)
//	wᵢ ← (1−d)·wᵢ + d·argmin Dᵢ(w) − λw  (damped proximal response)
//
// where Dᵢ is the application's sensitivity model and the argmin runs
// over the same per-app box [MinShare, MaxShare] the centralized solver
// uses. The price update is the multiplicative AIMD-style piece: the
// effective gain halves every time the utilization error changes sign
// (multiplicative decrease on overshoot, additive price motion
// otherwise), which settles the loop even for the non-convex piecewise
// models the profiler emits. At a fixed point Σwᵢ = Total and
// Dᵢ'(wᵢ) = λ for every interior weight — exactly the KKT conditions of
// the per-port Eq. 2 optimum — so the decentralized iteration converges
// to the same sensitivity-weighted allocation the controller would have
// installed, without any RPC.
//
// Every host runs the identical deterministic update from the identical
// cold start against the identical broadcast signal, so all hosts hold
// the same (λ, w) trajectory without coordinating — the property that
// makes the protocol controller-free rather than merely
// controller-optional.
package decentral

import (
	"math"

	"saba/internal/solver"
)

// DefaultSignalPeriod is the assumed interval between in-band telemetry
// broadcasts (one iteration of the update loop per signal), used to
// convert convergence iterations into virtual time. 1ms is the
// RTT-scale beaconing interval of INT-style switch telemetry.
const DefaultSignalPeriod = 1e-3 // seconds

// DefaultCoeffs is the sensitivity polynomial assumed for applications
// without a profiled model — the same moderate-sensitivity default the
// centralized controller uses (slowdown ≈ 2x at 25% bandwidth).
var DefaultCoeffs = []float64{2.4, -1.87, 0.47}

// Clamps keeping the iteration finite under arbitrary (fuzzed) inputs:
// utilization signals are bounded before use and the price estimate is
// kept in a fixed range far wider than any sensitivity derivative.
const (
	maxSignal = 16.0
	maxPrice  = 1e6
	maxGain   = 64.0
)

// Params tune the decentralized update. The zero value selects defaults
// mirroring the centralized solver's box (MinShare = Total/2n,
// MaxShare = 3·Total/n). All fields are sanitized — non-finite or
// out-of-range values fall back to defaults — so any parameter set
// yields a bounded iteration.
type Params struct {
	// Gain is the initial price step per unit of utilization error.
	// 0 → 0.5. The effective gain halves on every error sign flip.
	Gain float64
	// Damping is the fraction of the proximal response applied per
	// round, in (0, 1]. 0 → 0.5.
	Damping float64
	// Epsilon is the relative convergence tolerance on both the
	// utilization error and the largest per-round weight move. 0 → 1e-3.
	Epsilon float64
	// MaxIters bounds Solve; 0 → 256.
	MaxIters int
	// Total is the capacity fraction under management (C_saba); 0 → 1.
	Total float64
	// MinShare / MaxShare bound each weight; 0 → solver defaults.
	MinShare float64
	MaxShare float64
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// fill sanitizes the parameters for a port shared by n applications.
func (p *Params) fill(n int) {
	if n < 1 {
		n = 1
	}
	if !finite(p.Total) || p.Total <= 0 {
		p.Total = 1
	}
	if !finite(p.Gain) || p.Gain <= 0 {
		p.Gain = 0.5
	}
	if p.Gain > maxGain {
		p.Gain = maxGain
	}
	if !finite(p.Damping) || p.Damping <= 0 || p.Damping > 1 {
		p.Damping = 0.5
	}
	if !finite(p.Epsilon) || p.Epsilon <= 0 {
		p.Epsilon = 1e-3
	}
	if p.MaxIters <= 0 {
		p.MaxIters = 256
	}
	fn := float64(n)
	if !finite(p.MinShare) || p.MinShare <= 0 {
		p.MinShare = 0.5 * p.Total / fn
	}
	if !finite(p.MaxShare) || p.MaxShare <= 0 || p.MaxShare > p.Total {
		p.MaxShare = 3 * p.Total / fn
		if p.MaxShare > p.Total {
			p.MaxShare = p.Total
		}
	}
	// Relax infeasible boxes instead of failing: the loop must always
	// have a reachable operating point.
	if p.MinShare*fn > p.Total {
		p.MinShare = p.Total / fn
	}
	if p.MaxShare*fn < p.Total {
		p.MaxShare = p.Total
	}
	if p.MaxShare < p.MinShare {
		p.MaxShare = p.MinShare
	}
}

// Port is the iteration state one host maintains for one contended port:
// the shared price estimate plus the per-application weights. All hosts
// observing the port's signal hold identical copies.
type Port struct {
	par      Params
	objs     []solver.Objective
	lambda   float64
	gain     float64 // effective gain after AIMD halvings
	prevErr  float64
	w        []float64
	rounds   int
	lastMove float64
}

// NewPort creates the cold-start state for a port shared by the given
// applications: zero price, fair-share weights. Cold starts make the
// trajectory a pure function of (objectives, params), which the scoped
// vs. full differential gate relies on.
func NewPort(objs []solver.Objective, par Params) *Port {
	par.fill(len(objs))
	p := &Port{par: par, objs: objs, gain: par.Gain, w: make([]float64, len(objs))}
	fair := par.Total / float64(len(objs))
	if fair < par.MinShare {
		fair = par.MinShare
	}
	if fair > par.MaxShare {
		fair = par.MaxShare
	}
	for i := range p.w {
		p.w[i] = fair
	}
	return p
}

// Step consumes one telemetry broadcast: the port's observed utilization
// (1.0 = the managed capacity exactly subscribed). Non-finite or
// negative signals are treated as "no information" (util = 1), so a
// corrupted or lost beacon holds the state rather than poisoning it.
func (p *Port) Step(util float64) {
	if !finite(util) || util < 0 {
		util = 1
	}
	if util > maxSignal {
		util = maxSignal
	}
	err := util - 1
	// AIMD on the price step: crossing the target flips the error sign;
	// halve the step so the loop spirals in instead of ringing.
	if p.rounds > 0 && err*p.prevErr < 0 {
		p.gain *= 0.5
	}
	p.prevErr = err
	p.lambda -= p.gain * err
	if p.lambda > maxPrice {
		p.lambda = maxPrice
	} else if p.lambda < -maxPrice {
		p.lambda = -maxPrice
	}
	d := p.par.Damping
	move := 0.0
	for i, o := range p.objs {
		target := prox(o, p.lambda, p.par.MinShare, p.par.MaxShare)
		nw := (1-d)*p.w[i] + d*target
		if !finite(nw) {
			nw = p.w[i] // pathological model: hold
		}
		if nw < p.par.MinShare {
			nw = p.par.MinShare
		} else if nw > p.par.MaxShare {
			nw = p.par.MaxShare
		}
		if dv := math.Abs(nw - p.w[i]); dv > move {
			move = dv
		}
		p.w[i] = nw
	}
	p.rounds++
	p.lastMove = move
}

// Util returns the utilization the port's own weights imply — the signal
// the closed loop feeds back when the iteration runs to convergence
// in-place (the simulator's fast-forward of the per-beacon dynamics).
func (p *Port) Util() float64 {
	s := 0.0
	for _, w := range p.w {
		s += w
	}
	return s / p.par.Total
}

// Converged reports whether the last round met the epsilon criteria:
// utilization within Epsilon of the target and the largest weight move
// below Epsilon·Total.
func (p *Port) Converged() bool {
	if p.rounds == 0 {
		return false
	}
	return math.Abs(p.Util()-1) <= p.par.Epsilon && p.lastMove <= p.par.Epsilon*p.par.Total
}

// Solve runs the closed loop to convergence (or MaxIters), normalizes
// the weights onto the Total simplex, and reports whether the epsilon
// criteria were met.
func (p *Port) Solve() bool {
	converged := false
	for r := 0; r < p.par.MaxIters; r++ {
		p.Step(p.Util())
		if p.Converged() {
			converged = true
			break
		}
	}
	p.Normalize()
	return converged
}

// Normalize scales the weights to sum exactly to Total. The relative
// weights are what the scheduler enforces, so this is presentation — it
// removes the residual utilization error without moving the ratios.
func (p *Port) Normalize() {
	s := 0.0
	for _, w := range p.w {
		s += w
	}
	if !finite(s) || s <= 0 {
		return
	}
	scale := p.par.Total / s
	for i := range p.w {
		p.w[i] *= scale
	}
}

// Weights returns the current weight vector (read-only; owned by the
// port).
func (p *Port) Weights() []float64 { return p.w }

// Rounds returns how many signal rounds the port has consumed.
func (p *Port) Rounds() int { return p.rounds }

// Price returns the congestion price the port's state implies — the
// negated dual estimate (positive when bandwidth is scarce for the
// profiled models, whose derivatives are negative).
func (p *Port) Price() float64 { return -p.lambda }

// ShareRates converts the weights into host pacing rates on a link of
// the given capacity: proportional shares that never sum past the
// capacity. A non-positive or non-finite capacity yields zero rates.
func (p *Port) ShareRates(capacity float64) []float64 {
	rates := make([]float64, len(p.w))
	if !finite(capacity) || capacity <= 0 {
		return rates
	}
	s := 0.0
	for _, w := range p.w {
		s += w
	}
	if !finite(s) || s <= 0 {
		return rates
	}
	for i, w := range p.w {
		rates[i] = capacity * w / s
	}
	return rates
}

// Respond computes one host-side reaction to a broadcast signal: the
// damped proximal response of the application's sensitivity model to the
// advertised price. prev is the host's previous share (≤ 0 selects the
// fair-share cold start). This is the sabalib-facing half of the
// protocol: a host that cannot run the full per-port loop (it sees only
// the channel, not the port's full membership) still converges to its
// own weight because the price already encodes everyone else's demand.
func Respond(o solver.Objective, sig Signal, prev float64, par Params) float64 {
	n := sig.Apps
	if n < 1 {
		n = 1
	}
	par.fill(n)
	if prev <= 0 || !finite(prev) {
		prev = par.Total / float64(n)
	}
	lambda := -sig.Price
	if !finite(lambda) {
		lambda = 0
	} else if lambda > maxPrice {
		lambda = maxPrice
	} else if lambda < -maxPrice {
		lambda = -maxPrice
	}
	target := prox(o, lambda, par.MinShare, par.MaxShare)
	w := (1-par.Damping)*prev + par.Damping*target
	if !finite(w) || w < par.MinShare {
		w = par.MinShare
	} else if w > par.MaxShare {
		w = par.MaxShare
	}
	return w
}

// FairShare is the local fallback share when the signal goes quiet: the
// equal split of the managed capacity among the port's last-known
// population — the same operating point sabalib's degraded mode provides
// through the switches' default queue.
func FairShare(par Params, n int) float64 {
	if n < 1 {
		n = 1
	}
	par.fill(n)
	return par.Total / float64(n)
}

// prox minimizes D(w) − λ·w over [lo, hi]: a dense grid scan (the
// profiler's piecewise-linear models attain minima at breakpoints, which
// the grid resolves) refined by golden-section search around the best
// cell for smooth models. Candidates never leave [lo, hi], so the result
// is always in the box regardless of the objective's behavior.
func prox(o solver.Objective, lambda, lo, hi float64) float64 {
	if !(hi > lo) {
		return lo
	}
	const steps = 64
	h := (hi - lo) / steps
	bestW := lo
	bestV := o.Value(lo) - lambda*lo
	for i := 1; i <= steps; i++ {
		w := lo + h*float64(i)
		if v := o.Value(w) - lambda*w; v < bestV {
			bestV, bestW = v, w
		}
	}
	a := bestW - h
	if a < lo {
		a = lo
	}
	b := bestW + h
	if b > hi {
		b = hi
	}
	f := func(w float64) float64 { return o.Value(w) - lambda*w }
	const phi = 0.6180339887498949
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, f2 := f(x1), f(x2)
	for k := 0; k < 48 && b-a > 1e-12; k++ {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2 = f(x2)
		}
	}
	if m := (a + b) / 2; f(m) < bestV {
		bestW = m
	}
	return bestW
}
