package decentral

import (
	"math"
	"testing"

	"saba/internal/solver"
)

// FuzzDecentralUpdate drives the full update loop with arbitrary gain,
// damping, model coefficients, and an arbitrary signal sequence, and
// asserts the two safety invariants of the protocol: weights (and the
// rates derived from them) are never NaN or negative, and the derived
// rates never oversubscribe the link capacity.
func FuzzDecentralUpdate(f *testing.F) {
	f.Add(0.5, 0.5, 2.4, -1.87, 0.47, 1.3, 0.7, 1.0, uint8(3))
	f.Add(64.0, 1.0, -5.0, 10.0, -3.0, 0.0, 100.0, -2.0, uint8(7))
	f.Add(math.Inf(1), math.NaN(), 0.0, 0.0, 0.0, math.NaN(), math.Inf(-1), 1e308, uint8(1))
	f.Fuzz(func(t *testing.T, gain, damping, c0, c1, c2, s0, s1, s2 float64, n uint8) {
		apps := int(n%6) + 1
		os := make([]solver.Objective, apps)
		for i := range os {
			// Perturb the coefficients per app so the port is asymmetric.
			os[i] = solver.PolyObjective{Coeffs: []float64{c0 + float64(i)*0.1, c1, c2}}
		}
		par := Params{Gain: gain, Damping: damping}
		p := NewPort(os, par)
		sigs := []float64{s0, s1, s2, s0 * s1, s1 - s2, -s0}
		for r := 0; r < 48; r++ {
			p.Step(sigs[r%len(sigs)])
			for i, w := range p.Weights() {
				if math.IsNaN(w) || w < 0 {
					t.Fatalf("round %d: weight[%d] = %v", r, i, w)
				}
			}
		}
		p.Normalize()
		const capacity = 1000.0
		sum := 0.0
		for i, r := range p.ShareRates(capacity) {
			if math.IsNaN(r) || r < 0 {
				t.Fatalf("rate[%d] = %v", i, r)
			}
			sum += r
		}
		if sum > capacity*(1+1e-9) {
			t.Fatalf("rates sum %v exceed capacity %v", sum, capacity)
		}
		// Respond must hold the same invariants for a lone host.
		sig := Signal{Seq: 1, PortSignal: PortSignal{Util: s0, Price: s1, Apps: apps}}
		w := Respond(os[0], sig, s2, par)
		if math.IsNaN(w) || w < 0 {
			t.Fatalf("Respond = %v", w)
		}
	})
}
