package workload

import (
	"math"
	"testing"

	"saba/internal/netsim"
	"saba/internal/topology"
)

// rig builds an engine over a single-switch testbed with the given number
// of hosts at full 56 Gb/s capacity.
func rig(t *testing.T, hosts int) (*netsim.Engine, []topology.NodeID) {
	t.Helper()
	top, err := topology.NewSingleSwitch(topology.SingleSwitchConfig{Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(top)
	return netsim.NewEngine(net, netsim.NewIdealMaxMin(net)), top.Hosts()
}

// runJob executes a job standalone and returns its completion time.
func runJob(t *testing.T, spec Spec, nodes []topology.NodeID, e *netsim.Engine) float64 {
	t.Helper()
	j := &Job{ID: 1, Spec: spec, Nodes: nodes, App: 1, PL: 0}
	if err := j.Start(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if !j.Done() {
		t.Fatal("job did not complete")
	}
	return j.CompletionTime()
}

func TestJobSerialStageTiming(t *testing.T) {
	// One stage: 10s compute then 56Gb of shuffle per node. At full
	// bandwidth each node's egress drains in 1s → total 11s.
	e, hosts := rig(t, 4)
	spec := Spec{Name: "t", Stages: []Stage{{
		ComputeSeconds:   10,
		CommBytesPerNode: 56e9 / 8,
	}}}
	// Use RefNodes scaling: instantiate with exactly 4 nodes would shrink
	// per-node work; build the spec so the run uses scale-neutral values.
	j := &Job{ID: 1, Spec: spec, Nodes: hosts, App: 1}
	j.DatasetScale = 1
	if err := j.Start(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// 4 nodes vs RefNodes=8: per-node compute ×2 (20s), comm ×2 (2s).
	want := 22.0
	if got := j.CompletionTime(); math.Abs(got-want) > 0.01 {
		t.Errorf("completion = %g, want %g", got, want)
	}
}

func TestJobOverlapHidesComm(t *testing.T) {
	// Full overlap: comm (1s at line rate) entirely hidden under 10s of
	// compute.
	e, hosts := rig(t, 8)
	spec := Spec{Name: "t", Stages: []Stage{{
		ComputeSeconds:   10,
		CommBytesPerNode: 56e9 / 8, // 1s at line rate
		Overlap:          1,
	}}}
	got := runJob(t, spec, hosts, e)
	if math.Abs(got-10) > 0.01 {
		t.Errorf("fully-overlapped completion = %g, want 10", got)
	}
}

func TestJobPartialOverlap(t *testing.T) {
	// overlap 0.5, compute 10s, comm 8s at line rate: comm starts at 5s,
	// ends at 13s > compute end 10s → total 13s.
	e, hosts := rig(t, 8)
	spec := Spec{Name: "t", Stages: []Stage{{
		ComputeSeconds:   10,
		CommBytesPerNode: 8 * 56e9 / 8,
		Overlap:          0.5,
	}}}
	got := runJob(t, spec, hosts, e)
	if math.Abs(got-13) > 0.01 {
		t.Errorf("partially-overlapped completion = %g, want 13", got)
	}
}

func TestJobMultiStageAccumulates(t *testing.T) {
	e, hosts := rig(t, 8)
	spec := Spec{Name: "t", Stages: []Stage{
		{ComputeSeconds: 5},
		{ComputeSeconds: 7},
		{ComputeSeconds: 3, CommBytesPerNode: 56e9 / 8}, // +1s comm
	}}
	got := runJob(t, spec, hosts, e)
	if math.Abs(got-16) > 0.01 {
		t.Errorf("multi-stage completion = %g, want 16", got)
	}
}

func TestJobThrottledSlowdownMatchesModel(t *testing.T) {
	// The analytic slowdown for a serial stage is (1+u/b)/(1+u); verify
	// the simulated job reproduces it when the NICs are throttled — this
	// is the mechanism behind every profiling figure.
	const u = 4.0
	spec := Spec{Name: "t", Stages: stages(3, 5, u, 0)}

	measure := func(frac float64) float64 {
		e, hosts := rig(t, 8)
		for _, h := range hosts {
			if err := e.Network().ThrottleHost(h, frac); err != nil {
				t.Fatal(err)
			}
		}
		return runJob(t, spec, hosts, e)
	}
	full := measure(1.0)
	quarter := measure(0.25)
	slowdown := quarter / full
	want := (1 + u/0.25) / (1 + u) // 3.4
	if math.Abs(slowdown-want) > 0.05 {
		t.Errorf("slowdown@25%% = %.3f, want %.3f", slowdown, want)
	}
}

func TestJobPhaseCallbacks(t *testing.T) {
	e, hosts := rig(t, 8)
	spec := Spec{Name: "t", Stages: []Stage{
		{ComputeSeconds: 2, CommBytesPerNode: 56e9 / 8},
	}}
	var phases []Phase
	j := &Job{ID: 1, Spec: spec, Nodes: hosts,
		OnPhase: func(tm float64, stage int, p Phase) { phases = append(phases, p) }}
	if err := j.Start(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	want := []Phase{PhaseComputeStart, PhaseCommStart, PhaseStageDone, PhaseJobDone}
	if len(phases) != len(want) {
		t.Fatalf("phases = %v, want %v", phases, want)
	}
	for i := range want {
		if phases[i] != want[i] {
			t.Fatalf("phases = %v, want %v", phases, want)
		}
	}
}

func TestJobOnDoneAndAccessors(t *testing.T) {
	e, hosts := rig(t, 8)
	spec := Spec{Name: "t", Stages: []Stage{{ComputeSeconds: 1}}}
	var done *Job
	j := &Job{ID: 9, Spec: spec, Nodes: hosts,
		OnDone: func(e *netsim.Engine, j *Job) { done = j }}
	if err := j.Start(e); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(e); err != ErrJobRunning {
		t.Errorf("double start err = %v, want ErrJobRunning", err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if done != j {
		t.Error("OnDone did not fire with the job")
	}
	if j.Stage() != 1 {
		t.Errorf("final Stage() = %d, want 1", j.Stage())
	}
}

func TestJobStartValidation(t *testing.T) {
	e, _ := rig(t, 2)
	j := &Job{Spec: Spec{Name: "t", Stages: []Stage{{ComputeSeconds: 1}}}}
	if err := j.Start(e); err != ErrNoNodes {
		t.Errorf("err = %v, want ErrNoNodes", err)
	}
	bad := &Job{Spec: Spec{Name: "t"}, Nodes: []topology.NodeID{0}}
	if err := bad.Start(e); err == nil {
		t.Error("invalid spec should fail to start")
	}
}

func TestJobSingleNode(t *testing.T) {
	// A job on one node runs compute-only, including comm-only stages.
	e, hosts := rig(t, 2)
	spec := Spec{Name: "t", Stages: []Stage{
		{ComputeSeconds: 4, CommBytesPerNode: 1e9},
		{CommBytesPerNode: 1e9}, // becomes empty on a single node
		{ComputeSeconds: 2},
	}}
	j := &Job{ID: 1, Spec: spec, Nodes: hosts[:1]}
	if err := j.Start(e); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	// 4×8 + 0 + 2×8 seconds (1 node vs RefNodes 8 doubles... ×8 per-node).
	want := (4 + 2) * 8.0
	if got := j.CompletionTime(); math.Abs(got-want) > 0.01 {
		t.Errorf("single-node completion = %g, want %g", got, want)
	}
}

func TestTwoJobsContendFairly(t *testing.T) {
	// Two identical comm-heavy jobs on the same nodes take about twice as
	// long as one alone under max-min (they halve each other's bandwidth
	// during overlapping comm phases).
	spec := Spec{Name: "t", Stages: stages(4, 0.5, 4, 0)}

	e1, hosts1 := rig(t, 8)
	alone := runJob(t, spec, hosts1, e1)

	e2, hosts2 := rig(t, 8)
	j1 := &Job{ID: 1, Spec: spec, Nodes: hosts2, App: 1}
	j2 := &Job{ID: 2, Spec: spec, Nodes: hosts2, App: 2}
	if err := j1.Start(e2); err != nil {
		t.Fatal(err)
	}
	if err := j2.Start(e2); err != nil {
		t.Fatal(err)
	}
	if err := e2.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	slowdown := j1.CompletionTime() / alone
	// Comm is 80% of the job; doubling comm time → ~1.8x.
	if slowdown < 1.5 || slowdown > 2.1 {
		t.Errorf("co-run slowdown = %.2f, want ~1.8", slowdown)
	}
}
