package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// SynthConfig parameterizes the synthetic workload generator used by the
// large-scale simulation study (§8.1: 20 distinct synthetic workloads
// whose computation, communication and stage counts vary to emulate
// varying degrees of bandwidth sensitivity).
type SynthConfig struct {
	Count       int     // number of workloads; 0 selects 20
	MinStages   int     // 0 selects 2
	MaxStages   int     // 0 selects 12
	MinCommComp float64 // minimum comm/comp ratio u; 0 selects 0.05
	MaxCommComp float64 // maximum comm/comp ratio u; 0 selects 4.0
	MaxOverlap  float64 // maximum overlap; 0 selects 0.6
	// TargetRuntime is the rough unthrottled completion time in seconds;
	// 0 selects 240.
	TargetRuntime float64
}

func (c *SynthConfig) fill() {
	if c.Count == 0 {
		c.Count = 20
	}
	if c.MinStages == 0 {
		c.MinStages = 2
	}
	if c.MaxStages == 0 {
		c.MaxStages = 12
	}
	if c.MinCommComp == 0 {
		c.MinCommComp = 0.05
	}
	if c.MaxCommComp == 0 {
		c.MaxCommComp = 4.0
	}
	if c.MaxOverlap == 0 {
		c.MaxOverlap = 0.6
	}
	if c.TargetRuntime == 0 {
		c.TargetRuntime = 240
	}
}

// Synthetic generates cfg.Count workload specs spanning a wide range of
// bandwidth sensitivities, deterministically for a given rng seed. The
// comm/comp ratio is sampled log-uniformly so insensitive and highly
// sensitive workloads are equally represented, mirroring the paper's mix.
func Synthetic(cfg SynthConfig, rng *rand.Rand) []Spec {
	cfg.fill()
	specs := make([]Spec, cfg.Count)
	for i := range specs {
		nStages := cfg.MinStages + rng.Intn(cfg.MaxStages-cfg.MinStages+1)
		// Log-uniform comm/comp ratio.
		lo, hi := cfg.MinCommComp, cfg.MaxCommComp
		u := lo * math.Pow(hi/lo, rng.Float64())
		overlap := rng.Float64() * cfg.MaxOverlap
		// Split the runtime target across stages: unthrottled stage time
		// is roughly c·((1-o) + max(o, u)).
		perStage := cfg.TargetRuntime / float64(nStages)
		denom := (1 - overlap) + math.Max(overlap, u)
		c := perStage / denom
		sts := make([]Stage, nStages)
		for s := range sts {
			// ±25% deterministic variation across stages.
			jitter := 0.75 + 0.5*rng.Float64()
			sts[s] = Stage{
				ComputeSeconds:   c * jitter,
				CommBytesPerNode: u * c * jitter * hostRate,
				Overlap:          overlap,
			}
		}
		specs[i] = Spec{
			Name:        fmt.Sprintf("synth-%02d", i),
			Class:       "Synthetic",
			DatasetDesc: fmt.Sprintf("u=%.2f o=%.2f stages=%d", u, overlap, nStages),
			Stages:      sts,
			ConnFactor:  1 + rng.Intn(3),
		}
	}
	return specs
}
