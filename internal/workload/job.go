package workload

import (
	"errors"
	"fmt"

	"saba/internal/netsim"
	"saba/internal/topology"
)

// DefaultFanOut bounds each node's shuffle partners per stage. All-to-all
// is used when the job has at most DefaultFanOut+1 nodes; larger jobs
// stripe their shuffle volume over this many peers, which keeps the
// fluid simulation tractable at datacenter scale without changing any
// node's egress volume.
const DefaultFanOut = 8

// Phase identifies a job-lifecycle moment reported to OnPhase.
type Phase int

// Phases.
const (
	PhaseComputeStart Phase = iota
	PhaseCommStart
	PhaseStageDone
	PhaseJobDone
)

func (p Phase) String() string {
	switch p {
	case PhaseComputeStart:
		return "compute-start"
	case PhaseCommStart:
		return "comm-start"
	case PhaseStageDone:
		return "stage-done"
	case PhaseJobDone:
		return "job-done"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Job is a running instance of a workload: a Spec instantiated on a
// concrete set of nodes, executed as a state machine on the fluid engine.
type Job struct {
	ID           int
	Spec         Spec
	Nodes        []topology.NodeID
	App          netsim.AppID
	PL           int
	DatasetScale float64
	FanOut       int // 0 selects DefaultFanOut
	// ComputeStretch multiplies per-node compute time at runtime relative
	// to profiling. The paper's co-location studies assign each job one
	// core per server (§8.2) while the profiler ran on dedicated nodes,
	// so runtime computation runs roughly coresPerServer times slower
	// than profiled. 0 selects 1 (dedicated nodes).
	ComputeStretch float64

	// OnDone fires when the final stage completes.
	OnDone func(e *netsim.Engine, j *Job)
	// OnPhase (optional) observes stage transitions for tracing.
	OnPhase func(t float64, stage int, p Phase)

	StartTime float64
	EndTime   float64

	stages      []ScaledStage
	stage       int
	specs       []netsim.FlowSpec // launchShuffle batch scratch
	commPending int
	computeDone bool
	commDone    bool
	running     bool
}

// Errors returned by Start.
var (
	ErrNoNodes    = errors.New("workload: job has no nodes")
	ErrJobRunning = errors.New("workload: job already started")
)

// Start instantiates the job's stages and begins execution on the engine.
func (j *Job) Start(e *netsim.Engine) error {
	if j.running {
		return ErrJobRunning
	}
	if len(j.Nodes) == 0 {
		return ErrNoNodes
	}
	if j.DatasetScale == 0 {
		j.DatasetScale = 1
	}
	stages, err := j.Spec.Instantiate(j.DatasetScale, len(j.Nodes))
	if err != nil {
		return err
	}
	if j.ComputeStretch > 0 && j.ComputeStretch != 1 {
		for i := range stages {
			stages[i].ComputeSeconds *= j.ComputeStretch
		}
	}
	j.stages = stages
	j.stage = 0
	j.running = true
	j.StartTime = e.Now()
	j.EndTime = 0
	j.startStage(e)
	return nil
}

// Done reports whether the job has completed all stages.
func (j *Job) Done() bool { return !j.running && j.EndTime > 0 }

// CompletionTime returns the job's end-to-end duration; it is only
// meaningful after completion.
func (j *Job) CompletionTime() float64 { return j.EndTime - j.StartTime }

// Stage returns the index of the stage currently executing.
func (j *Job) Stage() int { return j.stage }

// ScaledStages returns the concrete stage parameters of a started job
// (nil before Start). Tracing uses it to reconstruct compute windows.
func (j *Job) ScaledStages() []ScaledStage { return j.stages }

func (j *Job) phase(t float64, p Phase) {
	if j.OnPhase != nil {
		j.OnPhase(t, j.stage, p)
	}
}

func (j *Job) startStage(e *netsim.Engine) {
	st := j.stages[j.stage]
	j.computeDone = false
	j.commDone = false
	j.phase(e.Now(), PhaseComputeStart)

	stage := j.stage // guard against events outliving the stage
	if st.ComputeSeconds > 0 {
		e.After(st.ComputeSeconds, func(e *netsim.Engine) {
			if j.stage != stage || !j.running {
				return
			}
			j.computeDone = true
			j.maybeAdvance(e)
		})
	} else {
		j.computeDone = true
	}

	commDelay := (1 - st.Overlap) * st.ComputeSeconds
	if st.CommBytesPerNode > 0 && len(j.Nodes) > 1 {
		e.After(commDelay, func(e *netsim.Engine) {
			if j.stage != stage || !j.running {
				return
			}
			j.launchShuffle(e, st)
		})
	} else {
		j.commDone = true
	}

	// A stage that is instantly complete (e.g. a shuffle-only stage
	// running on a single node, where Instantiate zeroed the shuffle)
	// must still advance the state machine.
	if j.computeDone && j.commDone {
		e.After(0, func(e *netsim.Engine) {
			if j.stage != stage || !j.running {
				return
			}
			j.maybeAdvance(e)
		})
	}
}

// launchShuffle starts the stage's flows: each node sends an equal slice
// of its per-node volume to its next FanOut ring neighbors.
func (j *Job) launchShuffle(e *netsim.Engine, st ScaledStage) {
	n := len(j.Nodes)
	fan := j.FanOut
	if fan <= 0 {
		fan = DefaultFanOut
	}
	if fan > n-1 {
		fan = n - 1
	}
	connFactor := j.Spec.ConnFactor
	if connFactor <= 0 {
		connFactor = 1
	}
	// The ConnFactor parallel connections to one peer are simulated as a
	// single flow with multiplicity ConnFactor: identical rates, far
	// fewer simulation events.
	perPeerBits := st.CommBytesPerNode * 8 / float64(fan)
	coflow := netsim.CoflowID(j.ID*10_000 + j.stage)
	j.commPending = 0
	j.phase(e.Now(), PhaseCommStart)
	specs := j.specs[:0]
	for i, src := range j.Nodes {
		for k := 1; k <= fan; k++ {
			dst := j.Nodes[(i+k)%n]
			specs = append(specs, netsim.FlowSpec{
				Src: src, Dst: dst, Bits: perPeerBits,
				App: j.App, PL: j.PL, Mult: connFactor, Coflow: coflow,
			})
		}
	}
	j.specs = specs
	ids, err := e.AddFlows(specs, j.flowDone)
	if err != nil {
		// Routing failures are programming errors in the harness; a
		// stuck job would hide them, so panic.
		panic(fmt.Sprintf("workload %s: add flows: %v", j.Spec.Name, err))
	}
	j.commPending = len(ids)
	if j.commPending == 0 {
		j.commDone = true
		j.maybeAdvance(e)
	}
}

func (j *Job) flowDone(e *netsim.Engine, _ netsim.FlowID) {
	j.commPending--
	if j.commPending == 0 {
		j.commDone = true
		j.maybeAdvance(e)
	}
}

func (j *Job) maybeAdvance(e *netsim.Engine) {
	if !j.computeDone || !j.commDone || !j.running {
		return
	}
	j.phase(e.Now(), PhaseStageDone)
	j.stage++
	if j.stage >= len(j.stages) {
		j.running = false
		j.EndTime = e.Now()
		j.phase(e.Now(), PhaseJobDone)
		if j.OnDone != nil {
			j.OnDone(e, j)
		}
		return
	}
	j.startStage(e)
}
