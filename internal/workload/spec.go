// Package workload models the distributed data-parallel applications Saba
// allocates bandwidth for: Spark/Flink-style jobs structured as a sequence
// of stages, each with a per-node computation phase and an all-to-all (or
// bounded fan-out) shuffle, optionally overlapping the two (paper §2.3).
//
// The package carries three workload sources:
//
//   - Catalog(): the ten HiBench-derived workloads of Table 1, calibrated
//     so that stand-alone profiling reproduces the slowdown anchors the
//     paper reports in Fig. 1a / Fig. 5.
//   - Synthetic(): the 20 generated workloads of the large-scale
//     simulation (§8.1: "Each workload emulates the computation and
//     communication stages … the amount of computation, communication,
//     and the number of stages varies").
//   - NewSetup(): the randomized 16-job cluster setups of §8.2.
package workload

import (
	"errors"
	"fmt"
	"math"
)

// RefNodes is the node count the profiler uses and all reference stage
// parameters are expressed against (paper: 8 nodes).
const RefNodes = 8

// Stage is one computation+shuffle phase of a job, parameterized at the
// reference node count and dataset scale 1.
type Stage struct {
	// ComputeSeconds is per-node computation time.
	ComputeSeconds float64
	// CommBytesPerNode is the shuffle volume each node must transmit.
	CommBytesPerNode float64
	// Overlap is the fraction of the computation that can proceed
	// concurrently with the shuffle, in [0, 1]. 0 = strictly serial
	// (compute, then communicate); higher values hide communication the
	// way PageRank does in the paper's Fig. 2b.
	Overlap float64
}

// Spec is a workload definition.
type Spec struct {
	Name string
	// Class is the benchmark family from Table 1 (ML, Graph, Websearch,
	// SQL, Micro).
	Class string
	// DatasetDesc is the human-readable profiling dataset size (Table 1).
	DatasetDesc string
	Stages      []Stage
	// ConnFactor is how many parallel connections each node opens per
	// shuffle partner (0 → 1). Shuffle-heavy frameworks open many
	// partition streams per peer while iterative ML jobs open few; under
	// per-flow fairness the many-flow application grabs a proportionally
	// larger share, which is exactly the application-agnosticism the
	// paper's §2 critiques. Standalone completion times are unaffected.
	ConnFactor int
}

// Validate checks the spec for structural errors.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return errors.New("workload: empty name")
	}
	if len(s.Stages) == 0 {
		return fmt.Errorf("workload %s: no stages", s.Name)
	}
	if s.ConnFactor < 0 {
		return fmt.Errorf("workload %s: negative ConnFactor %d", s.Name, s.ConnFactor)
	}
	for i, st := range s.Stages {
		if st.ComputeSeconds < 0 || st.CommBytesPerNode < 0 {
			return fmt.Errorf("workload %s stage %d: negative parameters", s.Name, i)
		}
		if st.ComputeSeconds == 0 && st.CommBytesPerNode == 0 {
			return fmt.Errorf("workload %s stage %d: empty stage", s.Name, i)
		}
		if st.Overlap < 0 || st.Overlap > 1 {
			return fmt.Errorf("workload %s stage %d: overlap %g out of [0,1]", s.Name, i, st.Overlap)
		}
	}
	return nil
}

// Scaling exponents. Real data-parallel systems scale slightly
// super-linearly in communication (shuffle fan-in, spill) and slightly
// sub-linearly in computation (cache effects) as the dataset grows, and
// pay a coordination/straggler penalty as the worker count grows past the
// profiled size. These small non-linearities are what erode the
// sensitivity model's accuracy when runtime conditions diverge from the
// profiling configuration (paper §4.2, Fig. 6b/6c).
const (
	commDatasetExp    = 1.08
	computeDatasetExp = 0.92
	barrierFactor     = 0.06 // extra per-stage compute per doubling beyond RefNodes
)

// ScaledStage is a stage instantiated for a concrete run.
type ScaledStage struct {
	ComputeSeconds   float64
	CommBytesPerNode float64
	Overlap          float64
}

// Instantiate scales the spec's stages to a dataset scale (1 = the
// profiling dataset) and a node count. Total work is fixed: per-node
// compute and shuffle volume shrink as nodes grow, with a barrier penalty
// beyond the reference size.
func (s *Spec) Instantiate(datasetScale float64, nodes int) ([]ScaledStage, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if datasetScale <= 0 {
		return nil, fmt.Errorf("workload %s: dataset scale %g must be positive", s.Name, datasetScale)
	}
	if nodes < 1 {
		return nil, fmt.Errorf("workload %s: node count %d must be >= 1", s.Name, nodes)
	}
	nodeRatio := float64(nodes) / RefNodes
	barrier := 1.0
	if nodeRatio > 1 {
		barrier += barrierFactor * math.Log2(nodeRatio) * nodeRatio
	}
	out := make([]ScaledStage, len(s.Stages))
	for i, st := range s.Stages {
		out[i] = ScaledStage{
			ComputeSeconds: st.ComputeSeconds * math.Pow(datasetScale, computeDatasetExp) / nodeRatio * barrier,
			CommBytesPerNode: st.CommBytesPerNode *
				math.Pow(datasetScale, commDatasetExp) / nodeRatio,
			Overlap: st.Overlap,
		}
		if nodes == 1 {
			// A single-node run has nobody to shuffle with.
			out[i].CommBytesPerNode = 0
		}
	}
	return out, nil
}

// TotalComputeSeconds returns the per-node compute time summed over
// stages at reference scale.
func (s *Spec) TotalComputeSeconds() float64 {
	t := 0.0
	for _, st := range s.Stages {
		t += st.ComputeSeconds
	}
	return t
}

// TotalCommBytesPerNode returns the per-node shuffle volume summed over
// stages at reference scale.
func (s *Spec) TotalCommBytesPerNode() float64 {
	b := 0.0
	for _, st := range s.Stages {
		b += st.CommBytesPerNode
	}
	return b
}
