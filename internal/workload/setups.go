package workload

import (
	"fmt"
	"math/rand"
)

// Placement is one job of a cluster setup: which catalog workload runs,
// at what dataset scale, on which server indices.
type Placement struct {
	Spec         Spec
	DatasetScale float64
	Servers      []int // indices into the cluster's host list
}

// Setup is one randomized co-location scenario of the testbed study
// (paper §8.2): 16 jobs drawn with replacement from the catalog, each
// with a random dataset scale and instance count, placed on the servers
// under the paper's two constraints (at most one instance of a job per
// server; at most MaxJobsPerServer jobs per server).
type Setup struct {
	Jobs []Placement
}

// SetupConfig parameterizes NewSetup.
type SetupConfig struct {
	Servers          int       // cluster size; 0 selects 32
	JobsPerSetup     int       // 0 selects 16
	DatasetScales    []float64 // nil selects {0.1, 1, 10}
	MinInstanceScale float64   // instances = scale × RefNodes; 0 selects 0.5
	MaxInstanceScale float64   // 0 selects 4
	MaxJobsPerServer int       // 0 selects 16
}

func (c *SetupConfig) fill() {
	if c.Servers == 0 {
		c.Servers = 32
	}
	if c.JobsPerSetup == 0 {
		c.JobsPerSetup = 16
	}
	if c.DatasetScales == nil {
		c.DatasetScales = []float64{0.1, 1, 10}
	}
	if c.MinInstanceScale == 0 {
		c.MinInstanceScale = 0.5
	}
	if c.MaxInstanceScale == 0 {
		c.MaxInstanceScale = 4
	}
	if c.MaxJobsPerServer == 0 {
		c.MaxJobsPerServer = 16
	}
}

// NewSetup draws one cluster setup. Placement retries until the
// constraints are satisfied; the configuration is always satisfiable for
// the paper's parameters (16 jobs × ≤32 instances on 32 servers with 16
// slots each).
func NewSetup(cfg SetupConfig, rng *rand.Rand) (Setup, error) {
	cfg.fill()
	catalog := Catalog()
	load := make([]int, cfg.Servers)
	var setup Setup
	for j := 0; j < cfg.JobsPerSetup; j++ {
		spec := catalog[rng.Intn(len(catalog))]
		scale := cfg.DatasetScales[rng.Intn(len(cfg.DatasetScales))]
		// Instance count: uniform over {0.5x, 1x, 2x, 3x, 4x}-style
		// multiples of RefNodes, like the paper's study.
		span := cfg.MaxInstanceScale - cfg.MinInstanceScale
		instScale := cfg.MinInstanceScale + span*rng.Float64()
		instances := int(instScale*RefNodes + 0.5)
		if instances < 2 {
			instances = 2
		}
		if instances > cfg.Servers {
			instances = cfg.Servers
		}
		servers, err := placeInstances(instances, load, cfg.MaxJobsPerServer, rng)
		if err != nil {
			return Setup{}, fmt.Errorf("setup job %d (%s): %w", j, spec.Name, err)
		}
		setup.Jobs = append(setup.Jobs, Placement{
			Spec:         spec,
			DatasetScale: scale,
			Servers:      servers,
		})
	}
	return setup, nil
}

// placeInstances picks `instances` distinct servers with remaining
// capacity, preferring the least-loaded (with random tie-breaking) so the
// paper's per-server job cap is always honored when capacity exists.
func placeInstances(instances int, load []int, maxLoad int, rng *rand.Rand) ([]int, error) {
	type slot struct {
		server int
		load   int
		key    float64
	}
	var free []slot
	for s, l := range load {
		if l < maxLoad {
			free = append(free, slot{server: s, load: l, key: rng.Float64()})
		}
	}
	if len(free) < instances {
		return nil, fmt.Errorf("workload: need %d servers, only %d have capacity", instances, len(free))
	}
	// Least-loaded first, random among equals.
	for i := 1; i < len(free); i++ {
		for k := i; k > 0 && (free[k].load < free[k-1].load ||
			(free[k].load == free[k-1].load && free[k].key < free[k-1].key)); k-- {
			free[k], free[k-1] = free[k-1], free[k]
		}
	}
	servers := make([]int, instances)
	for i := 0; i < instances; i++ {
		servers[i] = free[i].server
		load[free[i].server]++
	}
	return servers, nil
}
