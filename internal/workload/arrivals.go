package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// ArrivalConfig parameterizes the open-loop arrival-storm generator
// (see arrivals.go package notes below). The zero value selects a
// 1000 conn/s Poisson storm over 8 tenants for 10 seconds of virtual
// time — the "thousands of short connections per second" regime the
// overload study drives the controller with.
type ArrivalConfig struct {
	// Rate is the mean arrival rate in connections per second. The
	// process is open-loop: arrivals keep coming at this rate no matter
	// how the controller is doing, which is exactly what distinguishes
	// an overload storm from a closed-loop benchmark that politely slows
	// down when the server does. 0 selects 1000.
	Rate float64
	// Duration is the virtual-time horizon of the storm. 0 selects 10s.
	Duration time.Duration
	// Tenants is the tenant population arrivals are drawn from. 0
	// selects 8.
	Tenants int
	// ZipfS is the Zipf skew exponent (>1): tenant 0 is the most
	// popular, mirroring the few-hot-tenants shape of real clusters. 0
	// selects 1.2.
	ZipfS float64
	// ZipfV is the Zipf value parameter (>=1). 0 selects 1.
	ZipfV float64
	// MeanHold is the mean of the exponential connection hold time —
	// short-lived connections stress admission, not steady-state
	// enforcement. 0 selects 50ms.
	MeanHold time.Duration
	// Hosts is the host population for endpoint selection. 0 selects 8.
	Hosts int
	// Seed makes the storm deterministic and replayable: the same seed
	// yields the same arrival sequence, which the crash-recovery test
	// depends on.
	Seed int64
}

func (c *ArrivalConfig) fill() error {
	if c.Rate == 0 {
		c.Rate = 1000
	}
	if c.Duration == 0 {
		c.Duration = 10 * time.Second
	}
	if c.Tenants == 0 {
		c.Tenants = 8
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfV == 0 {
		c.ZipfV = 1
	}
	if c.MeanHold == 0 {
		c.MeanHold = 50 * time.Millisecond
	}
	if c.Hosts == 0 {
		c.Hosts = 8
	}
	if c.Rate < 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("workload: arrival rate %g must be positive finite", c.Rate)
	}
	if c.Duration < 0 {
		return fmt.Errorf("workload: storm duration %v negative", c.Duration)
	}
	if c.Tenants < 1 {
		return fmt.Errorf("workload: tenant population %d < 1", c.Tenants)
	}
	if c.ZipfS <= 1 || c.ZipfV < 1 {
		return fmt.Errorf("workload: Zipf parameters s=%g v=%g (need s>1, v>=1)", c.ZipfS, c.ZipfV)
	}
	if c.MeanHold <= 0 {
		return fmt.Errorf("workload: mean hold %v must be positive", c.MeanHold)
	}
	if c.Hosts < 2 {
		return fmt.Errorf("workload: host population %d < 2", c.Hosts)
	}
	return nil
}

// Arrival is one open-loop connection request.
type Arrival struct {
	At     time.Duration // virtual time since storm start
	Tenant int           // 0-based tenant index; 0 is the Zipf-hottest
	Hold   time.Duration // how long the connection stays open
	Src    int           // host index
	Dst    int           // host index, != Src
}

// Storm is an open-loop Poisson arrival process with Zipf tenant
// popularity and exponential connection holds, generated lazily on a
// virtual clock. It never blocks and never reacts to the consumer:
// offered load is a property of the storm, not of the system under
// test.
type Storm struct {
	cfg  ArrivalConfig
	rng  *rand.Rand
	zipf *rand.Zipf
	now  time.Duration
}

// NewStorm validates the config and builds a deterministic generator.
func NewStorm(cfg ArrivalConfig) (*Storm, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Storm{
		cfg:  cfg,
		rng:  rng,
		zipf: rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Tenants-1)),
	}, nil
}

// Next returns the next arrival, or ok=false once the storm's horizon
// is exhausted.
func (s *Storm) Next() (Arrival, bool) {
	dt := time.Duration(s.rng.ExpFloat64() / s.cfg.Rate * float64(time.Second))
	if dt < 1 { // quantize sub-nanosecond gaps at extreme rates
		dt = 1
	}
	s.now += dt
	if s.now > s.cfg.Duration {
		return Arrival{}, false
	}
	hold := time.Duration(s.rng.ExpFloat64() * float64(s.cfg.MeanHold))
	if hold < 1 {
		hold = 1
	}
	src := s.rng.Intn(s.cfg.Hosts)
	dst := s.rng.Intn(s.cfg.Hosts - 1)
	if dst >= src {
		dst++
	}
	return Arrival{
		At:     s.now,
		Tenant: int(s.zipf.Uint64()),
		Hold:   hold,
		Src:    src,
		Dst:    dst,
	}, true
}

// Generate materializes the whole storm. Convenience for tests and
// drivers that want to replay the same schedule twice (crash recovery);
// large storms should prefer the lazy Next.
func (s *Storm) Generate() []Arrival {
	var out []Arrival
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}
