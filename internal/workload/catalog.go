package workload

// The ten workloads of Table 1, expressed as stage models. Each model is
// calibrated so stand-alone profiling on the reference 8-node 56 Gb/s
// testbed reproduces the paper's slowdown anchors (Fig. 1a, Fig. 5):
//
//	workload  slowdown@75%  slowdown@25%   notes
//	LR        1.3           3.4            most bandwidth-sensitive
//	RF        1.25          3.2
//	SVM       1.25          2.8
//	GBT       1.2           2.5
//	NW        1.15          2.2
//	NI        1.15          2.0
//	PR        ~1.0          1.4            comm overlapped with compute
//	SQL       ~1.0          1.2 (2.2@10%)  non-linear: flat then steep
//	WC        ~1.0          1.15
//	Sort      ~1.0          1.1            least sensitive
//
// For a strictly serial stage (overlap 0) with compute c and a
// communication-to-computation ratio u (comm time at full bandwidth =
// u·c), the profiled slowdown is s(b) = (1 + u/b)/(1 + u); with overlap o
// it is s(b) = ((1-o) + max(o, u/b)) / ((1-o) + max(o, u)). The u values
// below are solved from the anchors. Communication bytes are u·c·(C/8)
// with C the 56 Gb/s link rate.

// hostRate is the full-bandwidth egress rate in bytes/sec used to convert
// communication-time ratios to shuffle bytes.
const hostRate = 56e9 / 8

// stages builds n identical stages.
func stages(n int, computeSec, commRatio, overlap float64) []Stage {
	st := Stage{
		ComputeSeconds:   computeSec,
		CommBytesPerNode: commRatio * computeSec * hostRate,
		Overlap:          overlap,
	}
	out := make([]Stage, n)
	for i := range out {
		out[i] = st
	}
	return out
}

// Catalog returns the ten named workloads of Table 1 in the paper's
// order. The returned specs are fresh copies; callers may mutate them.
func Catalog() []Spec {
	return []Spec{
		{Name: "LR", Class: "ML", DatasetDesc: "10k samples",
			Stages: stages(10, 3.5, 4.0, 0), ConnFactor: 1},
		{Name: "RF", Class: "ML", DatasetDesc: "20k samples",
			Stages: stages(8, 4.0, 2.75, 0), ConnFactor: 1},
		{Name: "GBT", Class: "ML", DatasetDesc: "1k samples",
			Stages: stages(12, 2.5, 1.0, 0), ConnFactor: 1},
		{Name: "SVM", Class: "ML", DatasetDesc: "150k samples",
			Stages: stages(9, 4.0, 1.5, 0), ConnFactor: 1},
		{Name: "NW", Class: "Graph", DatasetDesc: "4250M graph edges",
			Stages: stages(6, 12.0, 0.667, 0), ConnFactor: 1},
		{Name: "NI", Class: "Websearch", DatasetDesc: "100G samples",
			Stages: stages(4, 20.0, 0.5, 0), ConnFactor: 1},
		{Name: "PR", Class: "Websearch", DatasetDesc: "50M pages",
			Stages: stages(8, 35.0, 0.325, 0.9), ConnFactor: 1},
		{Name: "SQL", Class: "SQL", DatasetDesc: "two tables: 5G & 120M records",
			Stages: stages(3, 40.0, 0.1667, 0.4667), ConnFactor: 1},
		{Name: "WC", Class: "Micro", DatasetDesc: "300GB",
			Stages: stages(2, 80.0, 0.0526, 0), ConnFactor: 1},
		{Name: "Sort", Class: "Micro", DatasetDesc: "280GB",
			Stages: stages(2, 60.0, 0.0345, 0), ConnFactor: 1},
	}
}

// ByName returns the catalog workload with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the catalog workload names in order.
func Names() []string {
	cat := Catalog()
	out := make([]string, len(cat))
	for i, s := range cat {
		out[i] = s.Name
	}
	return out
}
