package workload

import (
	"math"
	"testing"
	"time"
)

func TestStormDeterministic(t *testing.T) {
	cfg := ArrivalConfig{Rate: 500, Duration: 2 * time.Second, Seed: 42}
	a, err := NewStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.Generate(), b.Generate()
	if len(as) == 0 {
		t.Fatal("empty storm")
	}
	if len(as) != len(bs) {
		t.Fatalf("replay length %d != %d", len(bs), len(as))
	}
	for i := range as {
		if as[i] != bs[i] {
			t.Fatalf("arrival %d diverged: %+v vs %+v", i, as[i], bs[i])
		}
	}
	// A different seed must not reproduce the schedule.
	cfg.Seed = 43
	c, _ := NewStorm(cfg)
	cs := c.Generate()
	if len(cs) == len(as) {
		same := true
		for i := range as {
			if as[i] != cs[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced an identical storm")
		}
	}
}

func TestStormOpenLoopRate(t *testing.T) {
	// Over a long horizon the empirical rate must track the configured
	// one — the generator is the offered load, nothing throttles it.
	s, err := NewStorm(ArrivalConfig{Rate: 2000, Duration: 20 * time.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n := len(s.Generate())
	want := 2000.0 * 20
	if math.Abs(float64(n)-want)/want > 0.05 {
		t.Errorf("generated %d arrivals over 20s at 2000/s, want ~%g (±5%%)", n, want)
	}
}

func TestStormZipfSkewAndHolds(t *testing.T) {
	cfg := ArrivalConfig{
		Rate: 5000, Duration: 10 * time.Second,
		Tenants: 16, MeanHold: 40 * time.Millisecond, Seed: 3,
	}
	s, err := NewStorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.Tenants)
	var holdSum time.Duration
	var n int
	prev := time.Duration(-1)
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		if a.At <= prev {
			t.Fatalf("arrivals not strictly ordered: %v after %v", a.At, prev)
		}
		prev = a.At
		if a.Tenant < 0 || a.Tenant >= cfg.Tenants {
			t.Fatalf("tenant %d out of range", a.Tenant)
		}
		if a.Src == a.Dst || a.Src < 0 || a.Dst < 0 || a.Src >= 8 || a.Dst >= 8 {
			t.Fatalf("bad endpoints %d->%d", a.Src, a.Dst)
		}
		if a.Hold <= 0 {
			t.Fatalf("non-positive hold %v", a.Hold)
		}
		counts[a.Tenant]++
		holdSum += a.Hold
		n++
	}
	if n == 0 {
		t.Fatal("empty storm")
	}
	// Zipf popularity: the hottest tenant dominates the coldest.
	if counts[0] <= counts[cfg.Tenants-1]*4 {
		t.Errorf("Zipf skew too flat: hot=%d cold=%d", counts[0], counts[cfg.Tenants-1])
	}
	mean := holdSum / time.Duration(n)
	if math.Abs(float64(mean-cfg.MeanHold))/float64(cfg.MeanHold) > 0.1 {
		t.Errorf("mean hold = %v, want ~%v (±10%%)", mean, cfg.MeanHold)
	}
}

func TestStormConfigValidation(t *testing.T) {
	bad := []ArrivalConfig{
		{Rate: -5},
		{Rate: math.NaN()},
		{Tenants: -1},
		{ZipfS: 0.5},
		{ZipfV: 0.2},
		{MeanHold: -time.Second},
		{Hosts: 1},
		{Duration: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewStorm(cfg); err == nil {
			t.Errorf("bad arrival config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewStorm(ArrivalConfig{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
