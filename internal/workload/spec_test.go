package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 10 {
		t.Fatalf("catalog has %d workloads, want 10", len(cat))
	}
	wantNames := []string{"LR", "RF", "GBT", "SVM", "NW", "NI", "PR", "SQL", "WC", "Sort"}
	for i, s := range cat {
		if s.Name != wantNames[i] {
			t.Errorf("catalog[%d] = %s, want %s", i, s.Name, wantNames[i])
		}
		if err := s.Validate(); err != nil {
			t.Errorf("catalog %s invalid: %v", s.Name, err)
		}
		if s.DatasetDesc == "" || s.Class == "" {
			t.Errorf("catalog %s missing Table 1 metadata", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	s, ok := ByName("LR")
	if !ok || s.Name != "LR" {
		t.Errorf("ByName(LR) = %v,%v", s.Name, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should report !ok")
	}
	if len(Names()) != 10 {
		t.Error("Names() should list 10 workloads")
	}
}

func TestValidate(t *testing.T) {
	bad := []Spec{
		{Name: "", Stages: []Stage{{ComputeSeconds: 1}}},
		{Name: "x"},
		{Name: "x", Stages: []Stage{{}}},
		{Name: "x", Stages: []Stage{{ComputeSeconds: -1}}},
		{Name: "x", Stages: []Stage{{ComputeSeconds: 1, Overlap: 1.5}}},
		{Name: "x", Stages: []Stage{{ComputeSeconds: 1, Overlap: -0.1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
	good := Spec{Name: "ok", Stages: []Stage{{ComputeSeconds: 1, CommBytesPerNode: 5, Overlap: 0.5}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestInstantiateScaling(t *testing.T) {
	spec := Spec{Name: "x", Stages: []Stage{{ComputeSeconds: 10, CommBytesPerNode: 1e9}}}
	base, err := spec.Instantiate(1, RefNodes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base[0].ComputeSeconds-10) > 1e-9 || math.Abs(base[0].CommBytesPerNode-1e9) > 1 {
		t.Errorf("reference instantiation changed parameters: %+v", base[0])
	}

	// Larger dataset: both grow, comm slightly faster (super-linear).
	big, _ := spec.Instantiate(10, RefNodes)
	if big[0].ComputeSeconds <= base[0].ComputeSeconds {
		t.Error("compute should grow with dataset")
	}
	if big[0].CommBytesPerNode <= 10*base[0].CommBytesPerNode*0.99 {
		t.Error("comm should grow super-linearly with dataset")
	}

	// More nodes: per-node work shrinks, but a barrier penalty appears.
	wide, _ := spec.Instantiate(1, RefNodes*4)
	if wide[0].CommBytesPerNode >= base[0].CommBytesPerNode {
		t.Error("per-node comm should shrink with more nodes")
	}
	ideal := base[0].ComputeSeconds / 4
	if wide[0].ComputeSeconds <= ideal {
		t.Error("barrier penalty should make 4x-node compute worse than ideal scaling")
	}

	// Single node: no shuffle partners.
	solo, _ := spec.Instantiate(1, 1)
	if solo[0].CommBytesPerNode != 0 {
		t.Error("single-node instantiation should have no comm")
	}
}

func TestInstantiateValidation(t *testing.T) {
	spec := Spec{Name: "x", Stages: []Stage{{ComputeSeconds: 1}}}
	if _, err := spec.Instantiate(0, 8); err == nil {
		t.Error("zero dataset scale should fail")
	}
	if _, err := spec.Instantiate(1, 0); err == nil {
		t.Error("zero nodes should fail")
	}
	bad := Spec{Name: "x"}
	if _, err := bad.Instantiate(1, 8); err == nil {
		t.Error("invalid spec should fail to instantiate")
	}
}

func TestTotals(t *testing.T) {
	spec := Spec{Name: "x", Stages: []Stage{
		{ComputeSeconds: 2, CommBytesPerNode: 10},
		{ComputeSeconds: 3, CommBytesPerNode: 20},
	}}
	if got := spec.TotalComputeSeconds(); got != 5 {
		t.Errorf("TotalComputeSeconds = %g, want 5", got)
	}
	if got := spec.TotalCommBytesPerNode(); got != 30 {
		t.Errorf("TotalCommBytesPerNode = %g, want 30", got)
	}
}

func TestSensitivityOrdering(t *testing.T) {
	// The catalog must order the workloads by bandwidth sensitivity
	// consistently with Fig. 1a: LR most sensitive, Sort least. Use the
	// analytic stage-model slowdown at 25% bandwidth as the metric:
	// s(b) = Σ((1-o)c + max(oc, uc/b)) / Σ((1-o)c + max(oc, uc)).
	ratio := func(name string) float64 {
		s, _ := ByName(name)
		full, quarter := 0.0, 0.0
		for _, st := range s.Stages {
			c := st.ComputeSeconds
			commFull := st.CommBytesPerNode / hostRate
			full += (1-st.Overlap)*c + math.Max(st.Overlap*c, commFull)
			quarter += (1-st.Overlap)*c + math.Max(st.Overlap*c, commFull/0.25)
		}
		return quarter / full
	}
	order := []string{"LR", "RF", "SVM", "GBT", "NW", "NI", "PR", "SQL", "WC", "Sort"}
	for i := 1; i < len(order); i++ {
		if ratio(order[i]) > ratio(order[i-1])+1e-9 {
			t.Errorf("sensitivity ordering violated: %s (%.3f) > %s (%.3f)",
				order[i], ratio(order[i]), order[i-1], ratio(order[i-1]))
		}
	}
}

func TestSyntheticGenerator(t *testing.T) {
	specs := Synthetic(SynthConfig{}, rand.New(rand.NewSource(42)))
	if len(specs) != 20 {
		t.Fatalf("default synthetic count = %d, want 20", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("synthetic %s invalid: %v", s.Name, err)
		}
		if len(s.Stages) < 2 || len(s.Stages) > 12 {
			t.Errorf("synthetic %s has %d stages, want 2..12", s.Name, len(s.Stages))
		}
	}
	// Deterministic for a fixed seed.
	again := Synthetic(SynthConfig{}, rand.New(rand.NewSource(42)))
	for i := range specs {
		if specs[i].Name != again[i].Name || len(specs[i].Stages) != len(again[i].Stages) {
			t.Fatal("synthetic generation not deterministic")
		}
		if specs[i].Stages[0].CommBytesPerNode != again[i].Stages[0].CommBytesPerNode {
			t.Fatal("synthetic stage parameters not deterministic")
		}
	}
	// Sensitivity diversity: both comm-light and comm-heavy workloads.
	light, heavy := false, false
	for _, s := range specs {
		u := s.TotalCommBytesPerNode() / hostRate / s.TotalComputeSeconds()
		if u < 0.3 {
			light = true
		}
		if u > 1.5 {
			heavy = true
		}
	}
	if !light || !heavy {
		t.Error("synthetic mix lacks sensitivity diversity")
	}
}

func TestNewSetupConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		setup, err := NewSetup(SetupConfig{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(setup.Jobs) != 16 {
			t.Fatalf("setup has %d jobs, want 16", len(setup.Jobs))
		}
		load := map[int]int{}
		for _, p := range setup.Jobs {
			seen := map[int]bool{}
			for _, s := range p.Servers {
				if s < 0 || s >= 32 {
					t.Fatalf("server index %d out of range", s)
				}
				if seen[s] {
					t.Fatal("job placed twice on the same server")
				}
				seen[s] = true
				load[s]++
			}
			if len(p.Servers) < 2 {
				t.Fatalf("job %s has %d instances", p.Spec.Name, len(p.Servers))
			}
			okScale := false
			for _, ds := range []float64{0.1, 1, 10} {
				if p.DatasetScale == ds {
					okScale = true
				}
			}
			if !okScale {
				t.Fatalf("unexpected dataset scale %g", p.DatasetScale)
			}
		}
		for s, l := range load {
			if l > 16 {
				t.Fatalf("server %d hosts %d jobs, cap is 16", s, l)
			}
		}
	}
}

func TestPhaseString(t *testing.T) {
	for p := PhaseComputeStart; p <= PhaseJobDone; p++ {
		if p.String() == "" {
			t.Errorf("Phase(%d).String empty", p)
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase should still render")
	}
}
