package ratelimit

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a virtual clock whose Sleep advances time instantly.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(0, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func (c *fakeClock) advance(d time.Duration) { c.Sleep(d) }

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10, nil); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := New(-5, 10, nil); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := New(10, 0, nil); err == nil {
		t.Error("zero burst should fail")
	}
}

func TestStartsFull(t *testing.T) {
	clk := newFakeClock()
	b, err := New(100, 50, clk)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 50 {
		t.Errorf("initial tokens = %g, want 50", got)
	}
	if !b.TryTake(50) {
		t.Error("full bucket should allow a burst-sized take")
	}
	if b.TryTake(1) {
		t.Error("empty bucket should reject takes")
	}
}

func TestRefill(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(100, 50, clk) // 100 tokens/sec
	b.TryTake(50)
	clk.advance(100 * time.Millisecond) // +10 tokens
	if !b.TryTake(10) {
		t.Error("should have refilled 10 tokens after 100ms")
	}
	if b.TryTake(1) {
		t.Error("should be empty again")
	}
}

func TestRefillCapsAtBurst(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(1000, 20, clk)
	clk.advance(time.Hour)
	if got := b.Available(); got != 20 {
		t.Errorf("tokens after long idle = %g, want burst cap 20", got)
	}
}

func TestTryTakeZeroOrNegative(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(10, 10, clk)
	if !b.TryTake(0) {
		t.Error("TryTake(0) should always succeed")
	}
	if !b.TryTake(-3) {
		t.Error("TryTake(negative) should always succeed")
	}
	if got := b.Available(); got != 10 {
		t.Errorf("tokens after no-op takes = %g, want 10", got)
	}
}

func TestTakeBlocksForExpectedVirtualTime(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(100, 100, clk) // 100 B/s, 100 B burst
	b.Take(100)                // drains instantly
	start := clk.Now()
	b.Take(50) // needs 0.5s of refill
	elapsed := clk.Now().Sub(start)
	if elapsed < 490*time.Millisecond || elapsed > 510*time.Millisecond {
		t.Errorf("Take(50) took %v of virtual time, want ~500ms", elapsed)
	}
}

func TestTakeLargerThanBurst(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(100, 10, clk) // tiny burst
	start := clk.Now()
	b.Take(100) // must be served in 10-token slices: ~0.9s of refills
	elapsed := clk.Now().Sub(start).Seconds()
	if elapsed < 0.85 || elapsed > 1.0 {
		t.Errorf("Take(100) over burst=10 took %.3fs of virtual time, want ~0.9s", elapsed)
	}
}

func TestThroughputMatchesRate(t *testing.T) {
	// Transferring N bytes through a bucket of rate R takes ~N/R seconds:
	// this is exactly the NIC-throttling semantics the profiler relies on.
	clk := newFakeClock()
	const rate = 7e9 / 8 // 7 Gb/s in bytes/sec
	b, _ := New(rate, rate/100, clk)
	b.Take(b.Available()) // drain initial burst
	start := clk.Now()
	const total = 10 * rate // 10 seconds worth of bytes
	for sent := 0.0; sent < total; sent += rate / 10 {
		b.Take(rate / 10)
	}
	elapsed := clk.Now().Sub(start).Seconds()
	if elapsed < 9.9 || elapsed > 10.1 {
		t.Errorf("10s worth of bytes took %.3fs of virtual time", elapsed)
	}
}

func TestSetRate(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(100, 100, clk)
	b.Take(100)
	if err := b.SetRate(200); err != nil {
		t.Fatal(err)
	}
	clk.advance(100 * time.Millisecond) // +20 at the new rate
	if !b.TryTake(20) {
		t.Error("expected 20 tokens after rate change")
	}
	if err := b.SetRate(0); err == nil {
		t.Error("SetRate(0) should fail")
	}
	if b.Rate() != 200 {
		t.Errorf("Rate = %g, want 200 (failed SetRate must not apply)", b.Rate())
	}
}

func TestAccessors(t *testing.T) {
	b, _ := New(42, 17, newFakeClock())
	if b.Rate() != 42 || b.Burst() != 17 {
		t.Errorf("Rate/Burst = %g/%g, want 42/17", b.Rate(), b.Burst())
	}
}

func TestConcurrentTryTakeConservesTokens(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(1, 1000, clk) // effectively no refill during the test
	var wg sync.WaitGroup
	var granted int64
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if b.TryTake(1) {
					mu.Lock()
					granted++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if granted > 1000 {
		t.Errorf("granted %d tokens from a 1000-token bucket", granted)
	}
	if granted < 1000 {
		t.Errorf("granted only %d of 1000 available tokens", granted)
	}
}

func TestNewRejectsNonFinite(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	for _, c := range []struct{ rate, burst float64 }{
		{nan, 10}, {inf, 10}, {10, nan}, {10, inf}, {nan, nan},
	} {
		if _, err := New(c.rate, c.burst, nil); err == nil {
			t.Errorf("New(%g, %g) should fail", c.rate, c.burst)
		}
	}
}

func TestSetRateRejectsNonFinite(t *testing.T) {
	b, _ := New(100, 100, newFakeClock())
	for _, r := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -1} {
		if err := b.SetRate(r); err == nil {
			t.Errorf("SetRate(%g) should fail", r)
		}
	}
	if b.Rate() != 100 {
		t.Errorf("Rate = %g after rejected sets, want 100", b.Rate())
	}
}

func TestSetBurstClampsTokens(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(100, 100, clk) // starts full with 100 tokens
	if err := b.SetBurst(30); err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 30 {
		t.Errorf("tokens after shrink = %g, want clamp to 30", got)
	}
	if err := b.SetBurst(200); err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 30 {
		t.Errorf("tokens after grow = %g, want 30 (no retroactive grant)", got)
	}
	clk.advance(10 * time.Second)
	if got := b.Available(); got != 200 {
		t.Errorf("tokens after refill = %g, want new burst 200", got)
	}
	for _, v := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := b.SetBurst(v); err == nil {
			t.Errorf("SetBurst(%g) should fail", v)
		}
	}
	if b.Burst() != 200 {
		t.Errorf("Burst = %g after rejected sets, want 200", b.Burst())
	}
}

func TestBackwardsClockIsMonotone(t *testing.T) {
	clk := newFakeClock()
	b, _ := New(100, 100, clk)
	b.TryTake(60) // 40 left
	clk.advance(-time.Hour)
	if got := b.Available(); got != 40 {
		t.Errorf("tokens after clock rewind = %g, want 40 (rewind must not drain)", got)
	}
	// Time has to catch back up to the high-water mark before refill resumes.
	clk.advance(time.Hour - time.Second)
	if got := b.Available(); got != 40 {
		t.Errorf("tokens before catching up = %g, want 40", got)
	}
	clk.advance(time.Second + 100*time.Millisecond)
	if got := b.Available(); got != 50 {
		t.Errorf("tokens after catching up +100ms = %g, want 50", got)
	}
}

func TestTryTakeNaNIsNoOp(t *testing.T) {
	b, _ := New(10, 10, newFakeClock())
	if !b.TryTake(math.NaN()) {
		t.Error("TryTake(NaN) should succeed as a no-op")
	}
	if got := b.Available(); got != 10 {
		t.Errorf("tokens after TryTake(NaN) = %g, want 10", got)
	}
}

func TestTryTakeOverBurstFailsFast(t *testing.T) {
	b, _ := New(1000, 10, newFakeClock())
	if b.TryTake(11) {
		t.Error("TryTake above burst can never succeed")
	}
	if got := b.Available(); got != 10 {
		t.Errorf("tokens after failed take = %g, want 10 (no partial drain)", got)
	}
}

func TestReserveWaitCapped(t *testing.T) {
	// A near-zero rate against a full-burst deficit computes an absurd
	// refill horizon; the wait must clamp instead of overflowing the
	// Duration conversion into something negative or nonsensical.
	clk := newFakeClock()
	b, _ := New(1e-300, 100, clk)
	b.tokens = 0 // bypass the sliced Take loop, probe reserve directly
	wait := b.reserve(100)
	if wait <= 0 || wait > maxWait {
		t.Errorf("reserve wait = %v, want in (0, %v]", wait, maxWait)
	}
}

func TestWallClock(t *testing.T) {
	var c WallClock
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(t0) {
		t.Error("wall clock did not advance across Sleep")
	}
}
